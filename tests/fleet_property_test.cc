// Property-based scenario tests.
//
// ~200 scenarios are generated from printed seeds — random machine nesting,
// workload mix and fault plan — and each is checked against invariants the
// simulator must hold under *any* configuration:
//
//   * the simulated clock never regresses;
//   * a migration either converges or reports a cause (a terminal stats
//     record with `succeeded`, or a non-empty error — never a silent hang);
//   * a detector whose probe is stalled past its budget returns
//     kInconclusive — never a false CLEAN.
//
// Every failure message carries the scenario seed. To re-run exactly one
// scenario: CSK_PROPERTY_SEED=0x<seed> ctest -R fleet_property (or run the
// binary directly with the same environment variable).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "common/rng.h"
#include "detect/dedup_detector.h"
#include "detect/l2_probe.h"
#include "driver/vm_runner.h"
#include "fault/injector.h"
#include "test_util.h"
#include "vmm/migration.h"
#include "workloads/filebench.h"
#include "workloads/kernel_compile.h"
#include "workloads/workload.h"

namespace csk::fleet {
namespace {

using testing::small_host_config;
using testing::small_vm_config;

/// Root of the generated-seed sequence; scenario i uses
/// derive_seed(kPropertyRoot, i). Bump deliberately, never casually — the
/// whole point of printed seeds is that failures reproduce.
constexpr std::uint64_t kPropertyRoot = 0xC5C0FEED2026ull;
constexpr int kScenarios = 200;

std::string seed_label(std::uint64_t seed) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "scenario seed 0x%llx (CSK_PROPERTY_SEED)",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// Asserts the simulated clock is monotone across every observation point.
class ClockMonitor {
 public:
  explicit ClockMonitor(sim::Simulator* sim) : sim_(sim), last_(sim->now()) {}

  void check() {
    const SimTime now = sim_->now();
    EXPECT_GE(now, last_) << "simulated clock regressed";
    last_ = now;
  }

  /// Steps the simulator until `done` or `deadline`, checking after every
  /// dispatched event. Returns false on deadline/queue exhaustion with
  /// `done` still false.
  template <typename DoneFn>
  bool drive(SimTime deadline, DoneFn done) {
    while (!done() && sim_->now() < deadline) {
      const bool stepped = sim_->step();
      check();
      if (!stepped) {
        // Queue drained: advance to the deadline (still monotone).
        if (!done()) return false;
        break;
      }
    }
    return done();
  }

 private:
  sim::Simulator* sim_;
  SimTime last_;
};

std::unique_ptr<workloads::Workload> random_workload(Rng& rng) {
  switch (rng.uniform(3)) {
    case 0: {
      workloads::FilebenchWorkload::Params p;
      p.iterations = 500 + static_cast<int>(rng.uniform(3000));
      return std::make_unique<workloads::FilebenchWorkload>(p);
    }
    case 1: {
      workloads::KernelCompileWorkload::Params p;
      p.compile_units = 20 + static_cast<int>(rng.uniform(100));
      return std::make_unique<workloads::KernelCompileWorkload>(p);
    }
    default:
      return std::make_unique<workloads::IdleWorkload>();
  }
}

void run_property_scenario(std::uint64_t seed) {
  SCOPED_TRACE(seed_label(seed));
  Rng rng(seed);
  vmm::World world(derive_seed(seed, 1));
  auto host_cfg = small_host_config();
  host_cfg.boot_touched_mib = 4;
  host_cfg.ksm_enabled = rng.chance(0.7);
  vmm::Host* host = world.make_host(host_cfg);
  ClockMonitor clock(&world.simulator());

  // --- random machine shape: depth 1 (plain guest) or 2 (nested guest) ---
  const bool nested = rng.chance(0.4);
  auto vm_cfg = small_vm_config("g0", 64, 0, 0);
  vm_cfg.cpu_host_passthrough = nested;
  vmm::VirtualMachine* outer =
      host->launch_vm(vm_cfg, /*boot_touched_mib=*/8).value();
  vmm::VirtualMachine* workload_vm = outer;
  if (nested) {
    ASSERT_TRUE(outer->enable_nested_hypervisor().is_ok());
    auto inner = outer->launch_nested_vm(small_vm_config("inner", 16, 0, 0));
    ASSERT_TRUE(inner.is_ok()) << inner.status().to_string();
    workload_vm = inner.value();
  }
  clock.check();

  // --- random fault plan (windows bounded so every scenario terminates) ---
  const bool with_migration = rng.chance(0.4);
  const bool with_detector = !with_migration && rng.chance(0.5);
  fault::FaultPlan plan;
  plan.seed = derive_seed(seed, 2);
  if (rng.chance(0.5)) {
    plan.net.push_back({"", "",
                        SimDuration::from_seconds(rng.uniform01()),
                        SimDuration::seconds(60 + rng.uniform(120)),
                        0.10 * rng.uniform01(),
                        SimDuration::from_micros(rng.uniform(2000))});
  }
  if (rng.chance(0.25)) {
    plan.memory_pressure.push_back({host->name(),
                                    SimDuration::from_seconds(rng.uniform01()),
                                    SimDuration::seconds(1 + rng.uniform(5)),
                                    1.5 + 3.0 * rng.uniform01()});
  }
  if (with_migration && rng.chance(0.4)) {
    plan.migration_aborts.push_back(
        {SimDuration::from_seconds(0.5 + 2.0 * rng.uniform01()),
         "property-test abort"});
  }
  if (with_detector) {
    // The stall covers the whole scenario (workloads advance simulated time
    // before the detector runs, so a short window could expire first) and
    // always outlives the probe budget: the detector must degrade to
    // INCONCLUSIVE, never wait forever and never report a false CLEAN.
    plan.probe_stalls.push_back(
        {SimDuration::zero(), SimDuration::seconds(36000 + rng.uniform(3600))});
  }
  fault::Injector injector(&world, plan);
  injector.arm();

  // --- random workload mix on the (possibly nested) guest ---
  const int workload_runs = 1 + static_cast<int>(rng.uniform(3));
  for (int i = 0; i < workload_runs; ++i) {
    const auto workload = random_workload(rng);
    const SimTime before = world.simulator().now();
    const SimDuration elapsed = driver::run_workload(*workload_vm, *workload);
    EXPECT_GE(elapsed, SimDuration::zero());
    EXPECT_GE(world.simulator().now(), before);
    clock.check();
  }

  if (with_migration) {
    // L0-L0 migration of a fresh small source; must converge or say why.
    vmm::VirtualMachine* source =
        host->launch_vm(small_vm_config("src", 32, 0, 0),
                        /*boot_touched_mib=*/8)
            .value();
    auto dest_cfg = small_vm_config("dst", 32, 0, 0);
    dest_cfg.incoming_port = 4444;
    (void)host->launch_vm(dest_cfg).value();
    vmm::MigrationConfig cfg;
    cfg.retry.max_attempts = 1 + static_cast<int>(rng.uniform(3));
    cfg.retry.initial_backoff = SimDuration::millis(100);
    cfg.chunk_timeout = SimDuration::seconds(2);
    cfg.round_timeout = SimDuration::seconds(120);
    vmm::MigrationJob job(&world, source,
                          net::NetAddr{host->node_name(), Port(4444)}, cfg);
    injector.attach_migration(&job);
    job.start();
    const SimTime deadline =
        world.simulator().now() + SimDuration::seconds(3600);
    const bool finished =
        clock.drive(deadline, [&job] { return job.done(); });
    // Invariant: convergence or a cause — never a silent hang.
    EXPECT_TRUE(finished) << "migration neither converged nor failed "
                             "within 1 h of simulated time";
    if (finished) {
      EXPECT_TRUE(job.stats().succeeded || !job.stats().error.empty())
          << "terminal migration carries neither success nor a cause";
    }
  }

  if (with_detector) {
    if (rng.chance(0.5)) {
      detect::DedupDetectorConfig cfg;
      cfg.file_pages = 8 + rng.uniform(16);
      cfg.merge_wait = SimDuration::seconds(2 + rng.uniform(3));
      cfg.probe_timeout = SimDuration::seconds(1 + rng.uniform(5));
      detect::DedupDetector detector(host, cfg);
      detector.set_stall_probe(injector.stall_probe());
      ASSERT_TRUE(detector.seed_guest(outer->os()).is_ok());
      auto report = detector.run(outer->os());
      ASSERT_TRUE(report.is_ok()) << report.status().to_string();
      EXPECT_EQ(report->verdict, detect::DedupVerdict::kInconclusive)
          << "stalled dedup probe must degrade, got "
          << detect::dedup_verdict_name(report->verdict);
      EXPECT_NE(report->verdict, detect::DedupVerdict::kNoNestedVm)
          << "false CLEAN under an injected probe stall";
      EXPECT_FALSE(report->inconclusive_cause.empty());
    } else {
      detect::GuestProbeConfig cfg;
      cfg.probe_timeout = SimDuration::seconds(1 + rng.uniform(5));
      detect::GuestTimingProbe probe(&world.timing(), cfg);
      probe.set_stall_probe(injector.stall_probe());
      const detect::GuestProbeReport report = probe.run(*workload_vm);
      EXPECT_EQ(report.verdict, detect::GuestProbeVerdict::kInconclusive)
          << "stalled guest probe must degrade, got "
          << detect::guest_probe_verdict_name(report.verdict);
      EXPECT_NE(report.verdict, detect::GuestProbeVerdict::kLooksSingleLevel)
          << "false CLEAN under an injected probe stall";
    }
    clock.check();
  }

  // Let everything in flight settle; the clock must stay monotone.
  const SimTime settle_deadline =
      world.simulator().now() + SimDuration::seconds(5);
  clock.drive(settle_deadline, [] { return false; });
  clock.check();
}

void run_batch(int begin, int end) {
  for (int i = begin; i < end; ++i) {
    run_property_scenario(derive_seed(kPropertyRoot, static_cast<std::uint64_t>(i)));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FleetPropertyTest, RandomScenariosBatch0) { run_batch(0, 50); }
TEST(FleetPropertyTest, RandomScenariosBatch1) { run_batch(50, 100); }
TEST(FleetPropertyTest, RandomScenariosBatch2) { run_batch(100, 150); }
TEST(FleetPropertyTest, RandomScenariosBatch3) { run_batch(150, kScenarios); }

/// Re-runs exactly one scenario from its printed seed (the reproduction
/// path docs/testing.md describes); skipped unless the variable is set.
TEST(FleetPropertyTest, ReproduceSingleSeedFromEnvironment) {
  const char* env = std::getenv("CSK_PROPERTY_SEED");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "set CSK_PROPERTY_SEED=0x<seed> to reproduce one "
                    "generated scenario";
  }
  const std::uint64_t seed = std::strtoull(env, nullptr, 0);
  run_property_scenario(seed);
}

}  // namespace
}  // namespace csk::fleet
