// Workload tests: kernel compile ratios (Fig 2), netperf statistics (Fig 3),
// filebench, lmbench suite output (Tables II-IV shape).
#include <gtest/gtest.h>

#include <array>

#include "common/stats.h"

#include "workloads/filebench.h"
#include "workloads/kernel_compile.h"
#include "workloads/lmbench.h"
#include "workloads/netperf.h"
#include "workloads/workload.h"

namespace csk::workloads {
namespace {

hv::ExecEnv env_at(hv::Layer layer, const hv::TimingModel& model,
                   bool ccache = false) {
  return hv::ExecEnv{layer, &model, ccache};
}

class WorkloadEnvTest : public ::testing::Test {
 protected:
  hv::TimingModel model_;
};

// ---------------------------------------------------------- kernel compile

TEST_F(WorkloadEnvTest, KernelCompileReproducesFig2Ratios) {
  KernelCompileWorkload compile;
  // Paper setup: ccache live at L0 only (footnote 1).
  const double l0 =
      compile.run(env_at(hv::Layer::kL0, model_, true)).seconds_f();
  const double l1 =
      compile.run(env_at(hv::Layer::kL1, model_, false)).seconds_f();
  const double l2 =
      compile.run(env_at(hv::Layer::kL2, model_, false)).seconds_f();
  // +280 % L0 -> L1 (the ccache artifact) and +25.7 % L1 -> L2.
  EXPECT_NEAR(l1 / l0, 3.80, 0.45);
  EXPECT_NEAR(l2 / l1, 1.257, 0.06);
  // Plausible absolute scale for a 4.0.5 kernel build on an i7-4790.
  EXPECT_GT(l0, 60.0);
  EXPECT_LT(l2, 2000.0);
}

TEST_F(WorkloadEnvTest, KernelCompileWithCcacheEverywhereIsVirtOnly) {
  KernelCompileWorkload compile;
  const double l0 =
      compile.run(env_at(hv::Layer::kL0, model_, true)).seconds_f();
  const double l1 =
      compile.run(env_at(hv::Layer::kL1, model_, true)).seconds_f();
  EXPECT_LT(l1 / l0, 1.10);  // without the artifact, L1 is a few % off L0
}

TEST_F(WorkloadEnvTest, KernelCompileDirtyRateIsSteadyAndHigh) {
  KernelCompileWorkload compile;
  EXPECT_GT(compile.dirty_rate(SimDuration::seconds(1)), 4000.0);
  EXPECT_EQ(compile.dirty_rate(SimDuration::seconds(1)),
            compile.dirty_rate(SimDuration::seconds(100)));
}

TEST_F(WorkloadEnvTest, RunNoisyVariesButStaysNearMean) {
  KernelCompileWorkload compile;
  Rng rng(3);
  const double base =
      compile.run(env_at(hv::Layer::kL1, model_, false)).seconds_f();
  csk::RunningStats stats;
  for (int i = 0; i < 50; ++i) {
    stats.add(compile.run_noisy(env_at(hv::Layer::kL1, model_, false), rng, 0.03)
                  .seconds_f());
  }
  EXPECT_NEAR(stats.mean(), base, base * 0.02);
  EXPECT_GT(stats.stddev(), 0.0);
}

// ----------------------------------------------------------------- netperf

TEST_F(WorkloadEnvTest, NetperfLayersOverlapWithinNoise) {
  NetperfWorkload netperf;
  Rng rng(17);
  std::array<csk::RunningStats, 3> stats;
  for (int layer = 0; layer < 3; ++layer) {
    for (int run = 0; run < 5; ++run) {
      stats[layer].add(netperf.throughput_bps(
          env_at(static_cast<hv::Layer>(layer), model_), rng));
    }
  }
  // All three means within 15 % of each other — the paper's conclusion.
  const double l0 = stats[0].mean();
  for (int layer = 1; layer < 3; ++layer) {
    EXPECT_NEAR(stats[layer].mean() / l0, 1.0, 0.15);
  }
}

TEST_F(WorkloadEnvTest, NetperfNoiseMatchesPaperOrdering) {
  // Paper stddevs: L0 1.11 %, L1 10.32 %, L2 3.96 % — L1 noisiest.
  NetperfWorkload netperf;
  Rng rng(29);
  std::array<csk::RunningStats, 3> stats;
  for (int layer = 0; layer < 3; ++layer) {
    for (int run = 0; run < 400; ++run) {
      stats[layer].add(netperf.throughput_bps(
          env_at(static_cast<hv::Layer>(layer), model_), rng));
    }
  }
  EXPECT_LT(stats[0].rel_stddev_pct(), 2.0);
  EXPECT_NEAR(stats[1].rel_stddev_pct(), 10.3, 2.0);
  EXPECT_NEAR(stats[2].rel_stddev_pct(), 4.0, 1.2);
  EXPECT_GT(stats[1].rel_stddev_pct(), stats[2].rel_stddev_pct());
  EXPECT_GT(stats[2].rel_stddev_pct(), stats[0].rel_stddev_pct());
}

TEST_F(WorkloadEnvTest, NetperfSendCostScalesWithDuration) {
  NetperfWorkload::Params p;
  p.duration_sec = 1.0;
  NetperfWorkload one(p);
  p.duration_sec = 10.0;
  NetperfWorkload ten(p);
  const auto env = env_at(hv::Layer::kL1, model_);
  EXPECT_NEAR(static_cast<double>(ten.run(env).ns()) /
                  static_cast<double>(one.run(env).ns()),
              10.0, 0.5);
}

// --------------------------------------------------------------- filebench

TEST_F(WorkloadEnvTest, FilebenchOpsDegradeGentlyWithLayers) {
  FilebenchWorkload fb;
  const double l0 = fb.ops_per_second(env_at(hv::Layer::kL0, model_));
  const double l1 = fb.ops_per_second(env_at(hv::Layer::kL1, model_));
  const double l2 = fb.ops_per_second(env_at(hv::Layer::kL2, model_));
  EXPECT_GT(l0, l1);
  EXPECT_GT(l1, l2);
  EXPECT_GT(l2, 0.5 * l0);  // page-cache IO does not crater at L2
}

TEST_F(WorkloadEnvTest, FilebenchDirtyRateModerate) {
  FilebenchWorkload fb;
  EXPECT_NEAR(fb.dirty_rate(SimDuration::zero()), 1024.0, 1.0);
}

// ------------------------------------------------------------------ idle

TEST_F(WorkloadEnvTest, IdleIsNearlyFreeButTrickles) {
  IdleWorkload idle;
  EXPECT_EQ(idle.run(env_at(hv::Layer::kL2, model_)).ns(), 0);
  EXPECT_GT(idle.dirty_rate(SimDuration::zero()), 0.0);
  EXPECT_LT(idle.dirty_rate(SimDuration::zero()), 200.0);
}

// ---------------------------------------------------------------- lmbench

TEST_F(WorkloadEnvTest, LmbenchArithRowsMatchTableII) {
  LmbenchSuite suite;
  const auto l0 = suite.run_arith(env_at(hv::Layer::kL0, model_));
  ASSERT_EQ(l0.size(), 10u);
  // L0 column is the calibration source: exact match expected.
  for (std::size_t i = 0; i < l0.size(); ++i) {
    EXPECT_NEAR(l0[i].ns, LmbenchSuite::arith_ops_l0_ns()[i].second, 0.01);
  }
  // Spot-check the paper's L2 column shape: integer div 5.94 -> 6.14.
  const auto l2 = suite.run_arith(env_at(hv::Layer::kL2, model_));
  EXPECT_NEAR(l2[2].ns, 6.14, 0.06);
}

TEST_F(WorkloadEnvTest, LmbenchProcRowsCoverTableIII) {
  LmbenchSuite suite;
  const auto rows = suite.run_proc(env_at(hv::Layer::kL1, model_));
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[3].op, "pipe latency");
  EXPECT_NEAR(rows[3].us, 6.75, 0.4);
}

TEST_F(WorkloadEnvTest, LmbenchFsRatesMatchTableIVShape) {
  LmbenchSuite suite;
  const auto l0 = suite.run_fs(env_at(hv::Layer::kL0, model_));
  ASSERT_EQ(l0.size(), 4u);
  // Paper L0 row: creations 126418 / 99112 / 99627 / 79869,
  //               deletions 379158 / 280884 / 279893 / 214767.
  EXPECT_NEAR(l0[0].creations_per_sec, 126418, 126418 * 0.05);
  EXPECT_NEAR(l0[1].creations_per_sec, 99112, 99112 * 0.05);
  EXPECT_NEAR(l0[3].creations_per_sec, 79869, 79869 * 0.05);
  EXPECT_NEAR(l0[0].deletions_per_sec, 379158, 379158 * 0.05);
  EXPECT_NEAR(l0[3].deletions_per_sec, 214767, 214767 * 0.05);
  // 4K cells run ~8 % off the paper (its 1K ~= 4K wobble is not modeled).
  EXPECT_NEAR(l0[2].creations_per_sec, 99627, 99627 * 0.12);

  // Layer shape: L1 within ~6 % of L0; L2 slower but same order.
  const auto l1 = suite.run_fs(env_at(hv::Layer::kL1, model_));
  const auto l2 = suite.run_fs(env_at(hv::Layer::kL2, model_));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(l1[i].creations_per_sec, 0.90 * l0[i].creations_per_sec);
    EXPECT_LT(l2[i].creations_per_sec, l1[i].creations_per_sec);
    EXPECT_GT(l2[i].creations_per_sec, 0.5 * l0[i].creations_per_sec);
  }
}

TEST_F(WorkloadEnvTest, LmbenchUnknownOpAborts) {
  LmbenchSuite suite;
  EXPECT_DEATH(suite.proc_op_us("teleport", env_at(hv::Layer::kL0, model_)),
               "unknown lmbench proc op");
}

// Property: every lmbench proc op is (weakly) monotone L1 -> L2, and never
// more than ~5 % faster at L1 than L0 (paper's fork inversion allowed).
class LmbenchMonotoneSweep
    : public WorkloadEnvTest,
      public ::testing::WithParamInterface<std::string> {};

TEST_P(LmbenchMonotoneSweep, LayerOrdering) {
  LmbenchSuite suite;
  const double l0 = suite.proc_op_us(GetParam(), env_at(hv::Layer::kL0, model_));
  const double l1 = suite.proc_op_us(GetParam(), env_at(hv::Layer::kL1, model_));
  const double l2 = suite.proc_op_us(GetParam(), env_at(hv::Layer::kL2, model_));
  EXPECT_GE(l1, l0 * 0.95);
  EXPECT_GT(l2, l1);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, LmbenchMonotoneSweep,
    ::testing::ValuesIn(LmbenchSuite::proc_op_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace csk::workloads
