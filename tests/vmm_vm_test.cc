// Host / VirtualMachine lifecycle tests: launching, nesting, process table,
// monitor commands, hostfwd plumbing, dirty-page sources.
#include <gtest/gtest.h>

#include "test_util.h"
#include "vmm/host.h"
#include "vmm/monitor.h"

namespace csk::vmm {
namespace {

using csk::testing::small_host_config;
using csk::testing::small_vm_config;

class HostTest : public ::testing::Test {
 protected:
  HostTest() { host_ = world_.make_host(small_host_config()); }

  vmm::World world_;
  Host* host_ = nullptr;
};

// ------------------------------------------------------------------- host

TEST_F(HostTest, LaunchBootsAndRuns) {
  auto vm = host_->launch_vm(small_vm_config());
  ASSERT_TRUE(vm.is_ok()) << vm.status().to_string();
  EXPECT_EQ(vm.value()->state(), VmState::kRunning);
  EXPECT_EQ(vm.value()->layer(), hv::Layer::kL1);
  ASSERT_NE(vm.value()->os(), nullptr);
  EXPECT_TRUE(vm.value()->os()->booted());
}

TEST_F(HostTest, IncomingVmWaitsPaused) {
  auto cfg = small_vm_config("dst", 64, 0, 0);
  cfg.incoming_port = 4444;
  auto vm = host_->launch_vm(cfg);
  ASSERT_TRUE(vm.is_ok());
  EXPECT_EQ(vm.value()->state(), VmState::kIncoming);
  EXPECT_EQ(vm.value()->os(), nullptr);
  EXPECT_FALSE(vm.value()->resume().is_ok());  // nothing to run yet
}

TEST_F(HostTest, PsShowsQemuProcessWithCmdline) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  bool found = false;
  for (const auto& p : host_->ps()) {
    if (p.vm == vm->id()) {
      found = true;
      EXPECT_EQ(p.comm, "qemu-system-x86");
      EXPECT_EQ(p.cmdline, small_vm_config().to_command_line());
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(HostTest, LaunchCmdlineAppendsHistory) {
  const std::string cmd = small_vm_config().to_command_line();
  ASSERT_TRUE(host_->launch_vm_cmdline(cmd).is_ok());
  ASSERT_EQ(host_->shell_history().size(), 1u);
  EXPECT_EQ(host_->shell_history()[0], cmd);
}

TEST_F(HostTest, KillRemovesVmAndProcess) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  const VmId id = vm->id();
  ASSERT_TRUE(host_->kill_vm(id).is_ok());
  EXPECT_FALSE(host_->find_vm(id).is_ok());
  EXPECT_FALSE(host_->pid_of_vm(id).is_ok());
  EXPECT_TRUE(host_->vms().empty());
  EXPECT_FALSE(host_->kill_vm(id).is_ok());
}

TEST_F(HostTest, PidSwapRespectsCollisions) {
  auto a = host_->launch_vm(small_vm_config("a", 64, 0, 0)).value();
  auto b = host_->launch_vm(small_vm_config("b", 64, 0, 0)).value();
  const Pid pid_a = host_->pid_of_vm(a->id()).value();
  EXPECT_FALSE(host_->swap_process_pid(b->id(), pid_a).is_ok());
  ASSERT_TRUE(host_->kill_vm(a->id()).is_ok());
  EXPECT_TRUE(host_->swap_process_pid(b->id(), pid_a).is_ok());
  EXPECT_EQ(host_->pid_of_vm(b->id()).value(), pid_a);
  EXPECT_EQ(host_->vm_of_pid(pid_a).value(), b->id());
}

TEST_F(HostTest, ConnectMonitorByTelnetPort) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  auto mon = host_->connect_monitor(5555);
  ASSERT_TRUE(mon.is_ok());
  EXPECT_EQ(mon.value()->vm(), vm);
  EXPECT_FALSE(host_->connect_monitor(5599).is_ok());
  EXPECT_FALSE(host_->connect_monitor(0).is_ok());
}

TEST_F(HostTest, DuplicateVmNamesAreAllowed) {
  ASSERT_TRUE(host_->launch_vm(small_vm_config("guest0", 64, 0, 0)).is_ok());
  ASSERT_TRUE(host_->launch_vm(small_vm_config("guest0", 64, 0, 0)).is_ok());
  EXPECT_EQ(host_->vms().size(), 2u);
}

TEST_F(HostTest, WorldFindHost) {
  EXPECT_TRUE(world_.find_host("host0").is_ok());
  EXPECT_FALSE(world_.find_host("mars").is_ok());
}

// --------------------------------------------------------------------- VM

TEST_F(HostTest, PauseResumeLifecycle) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  EXPECT_TRUE(vm->pause().is_ok());
  EXPECT_EQ(vm->state(), VmState::kPaused);
  EXPECT_FALSE(vm->pause().is_ok());
  EXPECT_TRUE(vm->resume().is_ok());
  EXPECT_EQ(vm->state(), VmState::kRunning);
  EXPECT_FALSE(vm->resume().is_ok());
}

TEST_F(HostTest, GuestRamRegisteredWithKsm) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  EXPECT_TRUE(host_->ksm().is_registered(&vm->memory()));
  vm->shutdown();
  EXPECT_FALSE(host_->ksm().is_registered(&vm->memory()));
}

TEST_F(HostTest, DirtySourceGeneratesDirtyPages) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  vm->memory().enable_dirty_log();
  vm->set_dirty_page_source([](SimDuration) { return 1000.0; });
  world_.simulator().run_for(SimDuration::seconds(1));
  const std::size_t dirty = vm->memory().dirty_count();
  EXPECT_NEAR(static_cast<double>(dirty), 1000.0, 100.0);
}

TEST_F(HostTest, DirtySourcePausesWithTheVm) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  vm->memory().enable_dirty_log();
  vm->set_dirty_page_source([](SimDuration) { return 1000.0; });
  ASSERT_TRUE(vm->pause().is_ok());
  world_.simulator().run_for(SimDuration::seconds(1));
  EXPECT_EQ(vm->memory().dirty_count(), 0u);
}

TEST_F(HostTest, HostfwdDeliversToGuestPort) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  int rx = 0;
  ASSERT_TRUE(vm->bind_guest_port(Port(22), [&](net::Packet) { ++rx; }).is_ok());
  net::Packet p;
  p.conn = world_.network().new_conn();
  p.src = {"client", Port(1)};
  p.reply_to = p.src;
  p.wire_bytes = 50;
  world_.network().send({host_->node_name(), Port(2222)}, p);
  world_.simulator().run_for(SimDuration::seconds(1));
  EXPECT_EQ(rx, 1);
}

TEST_F(HostTest, UptimeAdvancesWithClock) {
  auto vm = host_->launch_vm(small_vm_config()).value();
  world_.simulator().run_for(SimDuration::seconds(3));
  EXPECT_EQ(vm->uptime().ns(), SimDuration::seconds(3).ns());
}

// ----------------------------------------------------------------- nested

TEST_F(HostTest, NestedHypervisorRequiresVmx) {
  auto plain = host_->launch_vm(small_vm_config("plain", 64, 0, 0)).value();
  EXPECT_FALSE(plain->enable_nested_hypervisor().is_ok());

  auto cfg = small_vm_config("vmx", 64, 0, 0);
  cfg.cpu_host_passthrough = true;
  auto vmx = host_->launch_vm(cfg).value();
  EXPECT_TRUE(vmx->enable_nested_hypervisor().is_ok());
  EXPECT_NE(vmx->nested_hypervisor(), nullptr);
  // Idempotent.
  EXPECT_TRUE(vmx->enable_nested_hypervisor().is_ok());
}

TEST_F(HostTest, NestedVmRunsAtL2InsideParentMemory) {
  auto cfg = small_vm_config("guestx", 64, 0, 0);
  cfg.cpu_host_passthrough = true;
  auto parent = host_->launch_vm(cfg).value();
  ASSERT_TRUE(parent->enable_nested_hypervisor().is_ok());
  auto nested = parent->launch_nested_vm(small_vm_config("inner", 16, 0, 0));
  ASSERT_TRUE(nested.is_ok()) << nested.status().to_string();
  EXPECT_EQ(nested.value()->layer(), hv::Layer::kL2);
  EXPECT_EQ(nested.value()->parent(), parent);
  EXPECT_TRUE(nested.value()->memory().is_view());
  EXPECT_EQ(nested.value()->memory().root(), &parent->memory());
  // The inner QEMU is a process in the parent guest.
  EXPECT_TRUE(parent->os()->find_process_by_name("qemu-system-x86").is_ok());
}

TEST_F(HostTest, NestedLaunchWithoutHypervisorFails) {
  auto parent = host_->launch_vm(small_vm_config()).value();
  EXPECT_FALSE(
      parent->launch_nested_vm(small_vm_config("inner", 16, 0, 0)).is_ok());
}

TEST_F(HostTest, NoThirdLevelNesting) {
  auto cfg = small_vm_config("guestx", 64, 0, 0);
  cfg.cpu_host_passthrough = true;
  auto parent = host_->launch_vm(cfg).value();
  ASSERT_TRUE(parent->enable_nested_hypervisor().is_ok());
  auto inner_cfg = small_vm_config("inner", 16, 0, 0);
  inner_cfg.cpu_host_passthrough = true;  // asks for VMX at L2
  EXPECT_FALSE(parent->launch_nested_vm(inner_cfg).is_ok());
}

TEST_F(HostTest, DestroyNestedVmFreesParentRegion) {
  auto cfg = small_vm_config("guestx", 64, 0, 0);
  cfg.cpu_host_passthrough = true;
  auto parent = host_->launch_vm(cfg).value();
  ASSERT_TRUE(parent->enable_nested_hypervisor().is_ok());
  auto nested =
      parent->launch_nested_vm(small_vm_config("inner", 16, 0, 0)).value();
  const VmId id = nested->id();
  ASSERT_TRUE(parent->destroy_nested_vm(id).is_ok());
  EXPECT_TRUE(parent->nested_vms().empty());
  // Region reuse: another nested VM fits again.
  EXPECT_TRUE(
      parent->launch_nested_vm(small_vm_config("inner2", 16, 0, 0)).is_ok());
}

TEST_F(HostTest, FindNestedVmByName) {
  auto cfg = small_vm_config("guestx", 64, 0, 0);
  cfg.cpu_host_passthrough = true;
  auto parent = host_->launch_vm(cfg).value();
  ASSERT_TRUE(parent->enable_nested_hypervisor().is_ok());
  ASSERT_TRUE(
      parent->launch_nested_vm(small_vm_config("inner", 16, 0, 0)).is_ok());
  EXPECT_TRUE(parent->find_nested_vm("inner").is_ok());
  EXPECT_FALSE(parent->find_nested_vm("outer").is_ok());
}

TEST_F(HostTest, ShutdownCascadesToNestedVms) {
  auto cfg = small_vm_config("guestx", 64, 0, 0);
  cfg.cpu_host_passthrough = true;
  auto parent = host_->launch_vm(cfg).value();
  ASSERT_TRUE(parent->enable_nested_hypervisor().is_ok());
  auto nested =
      parent->launch_nested_vm(small_vm_config("inner", 16, 0, 0)).value();
  parent->shutdown();
  EXPECT_EQ(parent->state(), VmState::kShutdown);
  EXPECT_TRUE(parent->nested_vms().empty());
  (void)nested;  // destroyed by the cascade
}

// ---------------------------------------------------------------- monitor

class MonitorTest : public HostTest {
 protected:
  MonitorTest() { vm_ = host_->launch_vm(small_vm_config()).value(); }
  VirtualMachine* vm_;
};

TEST_F(MonitorTest, InfoStatusTracksState) {
  auto out = vm_->monitor().execute("info status");
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), "VM status: running");
  ASSERT_TRUE(vm_->monitor().execute("stop").is_ok());
  EXPECT_EQ(vm_->monitor().execute("info status").value(),
            "VM status: paused");
  ASSERT_TRUE(vm_->monitor().execute("cont").is_ok());
  EXPECT_EQ(vm_->state(), VmState::kRunning);
}

TEST_F(MonitorTest, InfoQtreeListsDevices) {
  const std::string out = vm_->monitor().execute("info qtree").value();
  EXPECT_NE(out.find("virtio-net-pci"), std::string::npos);
  EXPECT_NE(out.find("virtio-blk-pci"), std::string::npos);
  EXPECT_NE(out.find("guest0.qcow2"), std::string::npos);
}

TEST_F(MonitorTest, InfoMtreeShowsRam) {
  const std::string out = vm_->monitor().execute("info mtree").value();
  EXPECT_NE(out.find("pc.ram size=64M"), std::string::npos);
}

TEST_F(MonitorTest, InfoNetworkShowsHostfwd) {
  const std::string out = vm_->monitor().execute("info network").value();
  EXPECT_NE(out.find("hostfwd=tcp::2222-:22"), std::string::npos);
}

TEST_F(MonitorTest, InfoKvmAndCpus) {
  EXPECT_NE(vm_->monitor().execute("info kvm").value().find("enabled"),
            std::string::npos);
  EXPECT_NE(vm_->monitor().execute("info cpus").value().find("CPU #0"),
            std::string::npos);
}

TEST_F(MonitorTest, InfoMigrateBeforeAnyMigration) {
  EXPECT_NE(vm_->monitor().execute("info migrate").value().find("none"),
            std::string::npos);
}

TEST_F(MonitorTest, UnknownCommandsError) {
  EXPECT_FALSE(vm_->monitor().execute("teleport").is_ok());
  EXPECT_FALSE(vm_->monitor().execute("info").is_ok());
  auto unknown_info = vm_->monitor().execute("info qx");
  ASSERT_TRUE(unknown_info.is_ok());
  EXPECT_NE(unknown_info.value().find("unknown topic"), std::string::npos);
}

TEST_F(MonitorTest, MigrateSetSpeedParsesSuffixes) {
  ASSERT_TRUE(vm_->monitor().execute("migrate_set_speed 64m").is_ok());
  EXPECT_DOUBLE_EQ(vm_->monitor().migrate_speed_bytes_per_sec(),
                   64.0 * 1024 * 1024);
  ASSERT_TRUE(vm_->monitor().execute("migrate_set_speed 1g").is_ok());
  EXPECT_DOUBLE_EQ(vm_->monitor().migrate_speed_bytes_per_sec(),
                   1024.0 * 1024 * 1024);
  EXPECT_FALSE(vm_->monitor().execute("migrate_set_speed fast").is_ok());
}

TEST_F(MonitorTest, MigrateRequiresTcpUri) {
  EXPECT_FALSE(vm_->monitor().execute("migrate").is_ok());
  EXPECT_FALSE(vm_->monitor().execute("migrate exec:cat").is_ok());
  EXPECT_FALSE(vm_->monitor().execute("migrate tcp:host0:notaport").is_ok());
}

TEST_F(MonitorTest, QuitKillsTheVm) {
  const VmId id = vm_->id();
  ASSERT_TRUE(vm_->monitor().execute("quit").is_ok());
  // The teardown is deferred to a zero-delay event (the monitor cannot
  // destroy the VM that owns it mid-command); the VM is gone once that
  // event fires. run_for(zero) dispatches exactly the events due now —
  // the host's ksmd reschedules forever, so run_until_idle never returns.
  EXPECT_TRUE(host_->find_vm(id).is_ok());
  world_.simulator().run_for(SimDuration::zero());
  EXPECT_FALSE(host_->find_vm(id).is_ok());
}

}  // namespace
}  // namespace csk::vmm
