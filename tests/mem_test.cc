// Memory substrate tests: frames, address spaces, views, dirty logging and
// the KSM daemon — the invariants DESIGN.md §6 lists for `mem`.
#include <gtest/gtest.h>

#include "mem/addr_space.h"
#include "mem/ksm.h"
#include "mem/phys_mem.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace csk::mem {
namespace {

PageData synth(std::uint64_t tag) {
  return PageData::synthetic(ContentHash{tag});
}

PageData bytes_page(std::uint8_t fill, std::size_t len = 64) {
  PageBytes b(len, fill);
  return PageData::from_bytes(std::move(b));
}

// ---------------------------------------------------------------- PageData

TEST(PageDataTest, FromBytesDerivesHash) {
  PageData a = bytes_page(0x42);
  PageData b = bytes_page(0x42);
  PageData c = bytes_page(0x43);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_NE(a.hash, c.hash);
}

TEST(PageDataTest, ZeroBytesHashToZeroPage) {
  PageBytes zeros(kPageSize, 0);
  EXPECT_TRUE(PageData::from_bytes(std::move(zeros)).is_zero());
}

TEST(PageDataTest, SameContentComparesBytesWhenPresent) {
  PageData a = bytes_page(1);
  PageData b = bytes_page(1);
  EXPECT_TRUE(a.same_content(b));
  // Hash-only vs bytes: hash equality decides.
  PageData c = PageData::synthetic(a.hash);
  EXPECT_TRUE(a.same_content(c));
}

// ---------------------------------------------------- HostPhysicalMemory

TEST(PhysMemTest, AllocateAndFreeViaMappings) {
  HostPhysicalMemory phys;
  AddressSpace as(&phys, 32, "a");
  const FrameNumber f = phys.allocate(synth(7));
  EXPECT_TRUE(phys.is_live(f));
  phys.add_mapping(f, &as, Gfn(0));
  EXPECT_EQ(phys.frame(f).refcount(), 1u);
  phys.remove_mapping(f, &as, Gfn(0));
  EXPECT_FALSE(phys.is_live(f));
  EXPECT_EQ(phys.stats().frames_freed, 1u);
}

TEST(PhysMemTest, WriteToExclusiveFrameIsInPlace) {
  HostPhysicalMemory phys;
  AddressSpace as(&phys, 32, "a");
  as.write_page(Gfn(3), synth(1));
  const FrameNumber before = as.translate(Gfn(3));
  const WriteResult w = as.write_page(Gfn(3), synth(2));
  EXPECT_FALSE(w.cow_broken);
  EXPECT_EQ(as.translate(Gfn(3)), before);
  EXPECT_EQ(as.read_hash(Gfn(3)), ContentHash{2});
}

TEST(PhysMemTest, CowWriteIsMuchSlowerThanRegular) {
  MemTimingModel timing;
  timing.jitter_rel_stddev = 0.0;
  HostPhysicalMemory phys(timing);
  AddressSpace a(&phys, 8, "a");
  AddressSpace b(&phys, 8, "b");
  a.write_page(Gfn(0), synth(9));
  b.write_page(Gfn(0), synth(9));
  phys.merge_frames(a.translate(Gfn(0)), b.translate(Gfn(0)));
  const WriteResult regular = a.write_page(Gfn(1), synth(1));
  const WriteResult cow = a.write_page(Gfn(0), synth(2));
  EXPECT_TRUE(cow.cow_broken);
  EXPECT_GT(cow.cost.ns(), 10 * regular.cost.ns());
}

TEST(PhysMemTest, MergeRepointsAllMappers) {
  HostPhysicalMemory phys;
  AddressSpace a(&phys, 8, "a");
  AddressSpace b(&phys, 8, "b");
  AddressSpace c(&phys, 8, "c");
  a.write_page(Gfn(0), synth(5));
  b.write_page(Gfn(1), synth(5));
  c.write_page(Gfn(2), synth(5));
  const FrameNumber canon = a.translate(Gfn(0));
  phys.merge_frames(canon, b.translate(Gfn(1)));
  phys.merge_frames(canon, c.translate(Gfn(2)));
  EXPECT_EQ(b.translate(Gfn(1)), canon);
  EXPECT_EQ(c.translate(Gfn(2)), canon);
  EXPECT_EQ(phys.frame(canon).refcount(), 3u);
  EXPECT_TRUE(phys.frame(canon).ksm_shared);
}

TEST(PhysMemTest, CowSplitLeavesOtherSharersIntact) {
  HostPhysicalMemory phys;
  AddressSpace a(&phys, 8, "a");
  AddressSpace b(&phys, 8, "b");
  a.write_page(Gfn(0), synth(5));
  b.write_page(Gfn(0), synth(5));
  const FrameNumber canon = a.translate(Gfn(0));
  phys.merge_frames(canon, b.translate(Gfn(0)));

  const WriteResult w = b.write_page(Gfn(0), synth(99));
  EXPECT_TRUE(w.cow_broken);
  EXPECT_EQ(a.read_hash(Gfn(0)), ContentHash{5});   // untouched sharer
  EXPECT_EQ(b.read_hash(Gfn(0)), ContentHash{99});  // writer's private copy
  EXPECT_NE(a.translate(Gfn(0)), b.translate(Gfn(0)));
  EXPECT_EQ(phys.stats().cow_breaks, 1u);
}

TEST(PhysMemTest, MergeOfDifferentContentAborts) {
  HostPhysicalMemory phys;
  AddressSpace a(&phys, 8, "a");
  AddressSpace b(&phys, 8, "b");
  a.write_page(Gfn(0), synth(1));
  b.write_page(Gfn(0), synth(2));
  EXPECT_DEATH(
      phys.merge_frames(a.translate(Gfn(0)), b.translate(Gfn(0))), "content");
}

// ----------------------------------------------------------- AddressSpace

TEST(AddressSpaceTest, UntouchedPagesReadAsZero) {
  HostPhysicalMemory phys;
  AddressSpace as(&phys, 16, "a");
  EXPECT_TRUE(as.read_hash(Gfn(7)).is_zero_page());
  EXPECT_FALSE(as.is_mapped(Gfn(7)));
  EXPECT_TRUE(as.read_bytes(Gfn(7)) == nullptr);
  EXPECT_TRUE(as.read_page(Gfn(7)).is_zero());
}

TEST(AddressSpaceTest, WriteMaterializesLazily) {
  HostPhysicalMemory phys;
  AddressSpace as(&phys, 16, "a");
  EXPECT_EQ(phys.live_frames(), 0u);
  as.write_page(Gfn(0), synth(1));
  EXPECT_EQ(phys.live_frames(), 1u);
  EXPECT_EQ(as.mapped_gfns().size(), 1u);
}

TEST(AddressSpaceTest, OutOfRangeAccessAborts) {
  HostPhysicalMemory phys;
  AddressSpace as(&phys, 4, "a");
  EXPECT_DEATH(as.read_hash(Gfn(4)), "out of range");
}

TEST(AddressSpaceTest, DestructionFreesFrames) {
  HostPhysicalMemory phys;
  {
    AddressSpace as(&phys, 16, "a");
    for (int i = 0; i < 8; ++i) as.write_page(Gfn(i), synth(i + 1));
    EXPECT_EQ(phys.live_frames(), 8u);
  }
  EXPECT_EQ(phys.live_frames(), 0u);
}

TEST(AddressSpaceTest, BytesRoundTrip) {
  HostPhysicalMemory phys;
  AddressSpace as(&phys, 4, "a");
  as.write_page(Gfn(1), bytes_page(0xAB));
  const auto bytes = as.read_bytes(Gfn(1));
  ASSERT_TRUE(bytes != nullptr);
  EXPECT_EQ((*bytes)[0], 0xAB);
}

TEST(AddressSpaceTest, DirtyLogTracksAndResets) {
  HostPhysicalMemory phys;
  AddressSpace as(&phys, 16, "a");
  as.enable_dirty_log();
  as.write_page(Gfn(2), synth(1));
  as.write_page(Gfn(5), synth(2));
  as.write_page(Gfn(2), synth(3));  // re-dirty collapses
  EXPECT_TRUE(as.is_dirty(Gfn(2)));
  EXPECT_EQ(as.dirty_count(), 2u);
  const std::vector<Gfn> dirty = as.fetch_and_reset_dirty();
  EXPECT_EQ(dirty, (std::vector<Gfn>{Gfn(2), Gfn(5)}));
  EXPECT_EQ(as.dirty_count(), 0u);
}

TEST(AddressSpaceTest, DirtyLogDisabledRecordsNothing) {
  HostPhysicalMemory phys;
  AddressSpace as(&phys, 16, "a");
  as.write_page(Gfn(2), synth(1));
  EXPECT_EQ(as.dirty_count(), 0u);
}

// ------------------------------------------------------------------ views

TEST(ViewTest, ViewAliasesParentFrames) {
  HostPhysicalMemory phys;
  AddressSpace parent(&phys, 64, "parent");
  AddressSpace view(&parent, {Gfn(10), Gfn(11), Gfn(12)}, "view");
  view.write_page(Gfn(0), synth(77));
  EXPECT_EQ(parent.read_hash(Gfn(10)), ContentHash{77});
  EXPECT_EQ(view.translate(Gfn(0)), parent.translate(Gfn(10)));
  EXPECT_EQ(view.root(), &parent);
}

TEST(ViewTest, ParentWriteVisibleThroughView) {
  HostPhysicalMemory phys;
  AddressSpace parent(&phys, 64, "parent");
  AddressSpace view(&parent, {Gfn(3)}, "view");
  parent.write_page(Gfn(3), synth(5));
  EXPECT_EQ(view.read_hash(Gfn(0)), ContentHash{5});
}

TEST(ViewTest, WriteThroughViewDirtiesEveryLevel) {
  HostPhysicalMemory phys;
  AddressSpace parent(&phys, 64, "parent");
  AddressSpace view(&parent, {Gfn(20), Gfn(21)}, "view");
  parent.enable_dirty_log();
  view.enable_dirty_log();
  view.write_page(Gfn(1), synth(9));
  EXPECT_TRUE(view.is_dirty(Gfn(1)));
  EXPECT_TRUE(parent.is_dirty(Gfn(21)));
}

TEST(ViewTest, TwoLevelViewChainResolvesToRoot) {
  HostPhysicalMemory phys;
  AddressSpace root(&phys, 64, "root");
  AddressSpace mid(&root, {Gfn(8), Gfn(9), Gfn(10), Gfn(11)}, "mid");
  AddressSpace leaf(&mid, {Gfn(2), Gfn(3)}, "leaf");
  leaf.write_page(Gfn(0), synth(42));
  EXPECT_EQ(root.read_hash(Gfn(10)), ContentHash{42});
  EXPECT_EQ(leaf.root(), &root);
}

TEST(ViewTest, CowThroughViewUpdatesRootTable) {
  HostPhysicalMemory phys;
  AddressSpace root(&phys, 64, "root");
  AddressSpace other(&phys, 8, "other");
  AddressSpace view(&root, {Gfn(0)}, "view");
  root.write_page(Gfn(0), synth(5));
  other.write_page(Gfn(0), synth(5));
  phys.merge_frames(root.translate(Gfn(0)), other.translate(Gfn(0)));
  const WriteResult w = view.write_page(Gfn(0), synth(6));
  EXPECT_TRUE(w.cow_broken);
  EXPECT_EQ(root.read_hash(Gfn(0)), ContentHash{6});
  EXPECT_EQ(other.read_hash(Gfn(0)), ContentHash{5});
}

TEST(ViewTest, ViewWindowOutsideParentAborts) {
  HostPhysicalMemory phys;
  AddressSpace parent(&phys, 8, "parent");
  EXPECT_DEATH(AddressSpace(&parent, {Gfn(8)}, "bad"), "window");
}

// ------------------------------------------------------------------- KSM

class KsmTest : public ::testing::Test {
 protected:
  KsmTest() : phys_(no_jitter()), ksm_(&sim_, &phys_, fast_config()) {}

  static MemTimingModel no_jitter() {
    MemTimingModel t;
    t.jitter_rel_stddev = 0.0;
    return t;
  }
  static KsmConfig fast_config() {
    KsmConfig c;
    c.scan_interval = SimDuration::millis(10);
    c.pages_per_scan = 500;
    return c;
  }

  sim::Simulator sim_;
  HostPhysicalMemory phys_;
  KsmDaemon ksm_;
};

TEST_F(KsmTest, MergesIdenticalPagesAcrossSpaces) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  a.write_page(Gfn(0), synth(11));
  b.write_page(Gfn(0), synth(11));
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  ksm_.full_pass();
  ksm_.full_pass();
  EXPECT_EQ(a.translate(Gfn(0)), b.translate(Gfn(0)));
  EXPECT_EQ(ksm_.shared_frames(), 1u);
  EXPECT_EQ(ksm_.pages_sharing(), 1u);
  EXPECT_GE(ksm_.stats().merges, 1u);
}

TEST_F(KsmTest, PublishesScanAndMergeMetrics) {
  const obs::MetricsSnapshot before = obs::metrics().snapshot();
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  a.write_page(Gfn(0), synth(11));
  b.write_page(Gfn(0), synth(11));
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  ksm_.full_pass();
  ksm_.full_pass();
  const obs::MetricsSnapshot after = obs::metrics().snapshot();
  EXPECT_EQ(after.counter_or("mem.ksm.merges") -
                before.counter_or("mem.ksm.merges"),
            ksm_.stats().merges);
  EXPECT_EQ(after.counter_or("mem.ksm.pages_scanned") -
                before.counter_or("mem.ksm.pages_scanned"),
            ksm_.stats().pages_scanned);
  EXPECT_GE(after.counter_or("mem.ksm.full_passes") -
                before.counter_or("mem.ksm.full_passes"),
            2u);
}

TEST_F(KsmTest, RequiresTwoStableEncounters) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  a.write_page(Gfn(0), synth(11));
  b.write_page(Gfn(0), synth(11));
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  // One batch sees each page once: checksums recorded, nothing merged yet.
  ksm_.scan_batch(2);
  EXPECT_EQ(ksm_.stats().merges, 0u);
}

TEST_F(KsmTest, VolatilePagesAreNotMerged) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  b.write_page(Gfn(0), synth(30));
  for (int round = 0; round < 6; ++round) {
    // The page changes between every encounter: never stable.
    a.write_page(Gfn(0), synth(30));
    ksm_.scan_batch(2);
    a.write_page(Gfn(0), synth(100 + round));
    ksm_.scan_batch(2);
  }
  EXPECT_EQ(ksm_.stats().merges, 0u);
}

TEST_F(KsmTest, ThreeWayMergeSharesOneFrame) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  AddressSpace c(&phys_, 8, "c");
  for (AddressSpace* as : {&a, &b, &c}) {
    as->write_page(Gfn(0), synth(50));
    ksm_.register_region(as);
  }
  ksm_.full_pass();
  ksm_.full_pass();
  EXPECT_EQ(a.translate(Gfn(0)), b.translate(Gfn(0)));
  EXPECT_EQ(b.translate(Gfn(0)), c.translate(Gfn(0)));
  EXPECT_EQ(phys_.frame(a.translate(Gfn(0))).refcount(), 3u);
  EXPECT_EQ(ksm_.pages_sharing(), 2u);
}

TEST_F(KsmTest, WriteAfterMergeRestoresExclusivity) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  a.write_page(Gfn(0), synth(60));
  b.write_page(Gfn(0), synth(60));
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  ksm_.full_pass();
  ksm_.full_pass();
  ASSERT_EQ(a.translate(Gfn(0)), b.translate(Gfn(0)));
  b.write_page(Gfn(0), synth(61));
  EXPECT_NE(a.translate(Gfn(0)), b.translate(Gfn(0)));
  EXPECT_EQ(a.read_hash(Gfn(0)), ContentHash{60});
}

TEST_F(KsmTest, LateArrivalJoinsStableTree) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  a.write_page(Gfn(0), synth(70));
  b.write_page(Gfn(0), synth(70));
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  ksm_.full_pass();
  ksm_.full_pass();
  ASSERT_EQ(ksm_.pages_sharing(), 1u);
  // A third copy appears later and must join the existing stable node.
  AddressSpace c(&phys_, 8, "c");
  c.write_page(Gfn(0), synth(70));
  ksm_.register_region(&c);
  ksm_.full_pass();
  ksm_.full_pass();
  EXPECT_EQ(c.translate(Gfn(0)), a.translate(Gfn(0)));
  EXPECT_EQ(ksm_.pages_sharing(), 2u);
}

TEST_F(KsmTest, PeriodicDaemonMergesOnSimClock) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  a.write_page(Gfn(0), synth(80));
  b.write_page(Gfn(0), synth(80));
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  ksm_.start();
  sim_.run_for(SimDuration::seconds(1));
  EXPECT_EQ(a.translate(Gfn(0)), b.translate(Gfn(0)));
  ksm_.stop();
}

TEST_F(KsmTest, UnregisterStopsScanningButKeepsMerges) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  a.write_page(Gfn(0), synth(90));
  b.write_page(Gfn(0), synth(90));
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  ksm_.full_pass();
  ksm_.full_pass();
  ASSERT_EQ(a.translate(Gfn(0)), b.translate(Gfn(0)));
  ksm_.unregister_region(&b);
  EXPECT_FALSE(ksm_.is_registered(&b));
  // Still shared; a write still COW-splits.
  const WriteResult w = b.write_page(Gfn(0), synth(91));
  EXPECT_TRUE(w.cow_broken);
}

TEST_F(KsmTest, ByteBackedPagesMergeOnContent) {
  AddressSpace a(&phys_, 8, "a");
  AddressSpace b(&phys_, 8, "b");
  a.write_page(Gfn(0), bytes_page(0x11, kPageSize));
  b.write_page(Gfn(0), bytes_page(0x11, kPageSize));
  ksm_.register_region(&a);
  ksm_.register_region(&b);
  ksm_.full_pass();
  ksm_.full_pass();
  EXPECT_EQ(a.translate(Gfn(0)), b.translate(Gfn(0)));
}

TEST_F(KsmTest, ViewPagesMergeThroughRoot) {
  // The CloudSkulk detection topology in miniature: a nested guest's page
  // (a view into the rootkit VM) merging with a detector buffer.
  AddressSpace rootkit(&phys_, 64, "rootkit");
  AddressSpace nested(&rootkit, {Gfn(30), Gfn(31)}, "nested");
  AddressSpace detector(&phys_, 8, "detector");
  nested.write_page(Gfn(0), bytes_page(0x77, kPageSize));
  detector.write_page(Gfn(0), bytes_page(0x77, kPageSize));
  ksm_.register_region(&rootkit);
  ksm_.register_region(&detector);
  ksm_.full_pass();
  ksm_.full_pass();
  EXPECT_EQ(nested.translate(Gfn(0)), detector.translate(Gfn(0)));
}

TEST_F(KsmTest, RegisteringViewAborts) {
  AddressSpace root(&phys_, 8, "root");
  AddressSpace view(&root, {Gfn(0)}, "view");
  EXPECT_DEATH(ksm_.register_region(&view), "root");
}

// Property sweep: N identical copies always collapse to one frame with
// refcount N, regardless of how many spaces hold them.
class KsmMergeSweep : public KsmTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(KsmMergeSweep, NCopiesCollapseToOneFrame) {
  const int n = GetParam();
  std::vector<std::unique_ptr<AddressSpace>> spaces;
  for (int i = 0; i < n; ++i) {
    spaces.push_back(
        std::make_unique<AddressSpace>(&phys_, 8, "s" + std::to_string(i)));
    spaces.back()->write_page(Gfn(0), synth(123));
    ksm_.register_region(spaces.back().get());
  }
  ksm_.full_pass();
  ksm_.full_pass();
  const FrameNumber canon = spaces[0]->translate(Gfn(0));
  for (const auto& s : spaces) EXPECT_EQ(s->translate(Gfn(0)), canon);
  EXPECT_EQ(phys_.frame(canon).refcount(), static_cast<std::size_t>(n));
  EXPECT_EQ(ksm_.pages_sharing(), static_cast<std::size_t>(n - 1));
}

INSTANTIATE_TEST_SUITE_P(Copies, KsmMergeSweep,
                         ::testing::Values(2, 3, 5, 8, 16));

}  // namespace
}  // namespace csk::mem
