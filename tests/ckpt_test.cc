// Checkpoint/restore tests: bit-exact codecs, the durability protocol of
// the store (atomic rename + manifest journal), typed rejection of torn and
// corrupted files, and in-process resume determinism (a resumed fleet run's
// deterministic bytes equal an uninterrupted run's).
//
// The out-of-process half — actually SIGKILLing a child mid-write — lives
// in ckpt_crash_test.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "ckpt/ckpt.h"
#include "common/hexcodec.h"
#include "common/rng.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"

namespace csk::ckpt {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- hex codecs

TEST(HexCodecTest, U64RoundTripsIncludingExtremes) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeef},
        (std::uint64_t{1} << 53) + 1,  // would lose bits as a JSON double
        std::numeric_limits<std::uint64_t>::max()}) {
    const std::string s = hex_u64(v);
    EXPECT_EQ(s.size(), 18u);
    auto back = parse_hex_u64(s);
    ASSERT_TRUE(back.is_ok()) << s;
    EXPECT_EQ(back.value(), v);
  }
}

TEST(HexCodecTest, RejectsNonCanonicalForms) {
  EXPECT_FALSE(parse_hex_u64("").is_ok());
  EXPECT_FALSE(parse_hex_u64("0x0").is_ok());             // not fixed-width
  EXPECT_FALSE(parse_hex_u64("0x00000000000000FF").is_ok());  // uppercase
  EXPECT_FALSE(parse_hex_u64("0x00000000000000g0").is_ok());  // bad digit
  EXPECT_FALSE(parse_hex_u64("1x0000000000000000").is_ok());
}

TEST(HexCodecTest, DoubleRoundTripsBitPatterns) {
  for (double d : {0.0, -0.0, 1.0, -1.5, 0.1, 1e300, 5e-324,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()}) {
    auto back = parse_hex_double(hex_double(d));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.value()),
              std::bit_cast<std::uint64_t>(d));
  }
  auto nan = parse_hex_double(hex_double(std::nan("")));
  ASSERT_TRUE(nan.is_ok());
  EXPECT_TRUE(std::isnan(nan.value()));
}

// ---------------------------------------------------- exact metrics codec

TEST(ExactSnapshotTest, RoundTripsByteForByte) {
  obs::MetricsRegistry reg;
  reg.counter("big").add((std::uint64_t{1} << 60) + 7);
  reg.gauge("level", {{"k", "v"}}).set(0.1 + 0.2);  // not representable
  auto& h = reg.histogram("lat");
  h.observe(0.3);
  h.observe(1e-9);
  h.observe(12345.678);
  const obs::MetricsSnapshot snap = reg.snapshot();
  auto back = obs::MetricsSnapshot::from_exact_json(snap.to_exact_json());
  ASSERT_TRUE(back.is_ok());
  // Byte-equality of the exact rendering is the real contract.
  EXPECT_EQ(back.value().to_exact_json().dump(), snap.to_exact_json().dump());
  EXPECT_EQ(back.value().counter_or("big"), snap.counter_or("big"));
}

TEST(ExactSnapshotTest, RejectsLossyEncodings) {
  // A plain to_json() snapshot (human numbers) is not an exact snapshot.
  obs::MetricsRegistry reg;
  reg.counter("c").add(1);
  EXPECT_FALSE(
      obs::MetricsSnapshot::from_exact_json(reg.snapshot().to_json()).is_ok());
}

// -------------------------------------------------------- payload codec

FleetCheckpoint sample_checkpoint() {
  FleetCheckpoint c;
  c.root_seed = 0x0123456789abcdefull;
  c.shard_count = 4;
  ShardRecord r;
  r.index = 2;
  r.name = "cell-2";
  r.seed = derive_seed(c.root_seed, 2);
  r.values["total_s"] = 1.25;
  r.values["weird"] = 0.1 + 0.2;
  r.faults.push_back({1'500'000'000, "net.drop", "loss window"});
  r.status_code = StatusCode::kUnavailable;
  r.status_message = "deliberate failure";
  obs::MetricsRegistry reg;
  reg.counter("events").add(12345);
  reg.histogram("lat").observe(0.25);
  r.metrics = reg.snapshot();
  r.digest = "digest-bytes";
  r.wall_ns = 42;
  c.completed.push_back(r);
  return c;
}

TEST(PayloadCodecTest, RoundTripsByteForByte) {
  const FleetCheckpoint c = sample_checkpoint();
  auto back = FleetCheckpoint::from_payload(c.to_payload());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().to_payload().dump(), c.to_payload().dump());
  EXPECT_EQ(back.value().completed[0].status_code, StatusCode::kUnavailable);
  EXPECT_EQ(back.value().completed[0].faults[0].at_ns, 1'500'000'000);
}

TEST(PayloadCodecTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(FleetCheckpoint::from_payload(obs::JsonValue()).is_ok());
  EXPECT_FALSE(
      FleetCheckpoint::from_payload(obs::JsonValue::object()).is_ok());
  obs::JsonValue bad = sample_checkpoint().to_payload();
  bad.set("root_seed", "not-hex");
  EXPECT_FALSE(FleetCheckpoint::from_payload(bad).is_ok());
}

// ------------------------------------------------------------------ store

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() {
    dir_ = (fs::temp_directory_path() /
            ("csk_ckpt_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~StoreTest() override { fs::remove_all(dir_); }

  std::string path_of(std::uint64_t seq) const {
    return dir_ + "/" + CheckpointStore::checkpoint_filename(seq);
  }

  std::string dir_;
};

TEST_F(StoreTest, WriteThenLoadLatestRoundTrips) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  auto seq = store.write(sample_checkpoint());
  ASSERT_TRUE(seq.is_ok()) << seq.status().to_string();
  EXPECT_EQ(seq.value(), 1u);
  EXPECT_EQ(store.writes(), 1u);
  ASSERT_EQ(store.manifest().size(), 1u);
  EXPECT_EQ(store.manifest()[0].completed_shards, 1u);

  auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  FleetCheckpoint expected = sample_checkpoint();
  expected.sequence = seq.value();  // write() stamps the assigned sequence
  EXPECT_EQ(loaded.value().to_payload().dump(),
            expected.to_payload().dump());
  // No stray temp files after a clean commit.
  for (const auto& de : fs::directory_iterator(dir_)) {
    EXPECT_FALSE(de.path().string().ends_with(".tmp"));
  }
}

TEST_F(StoreTest, SequenceNumberingSurvivesReopen) {
  {
    CheckpointStore store(dir_);
    ASSERT_TRUE(store.init().is_ok());
    ASSERT_TRUE(store.write(sample_checkpoint()).is_ok());
    ASSERT_TRUE(store.write(sample_checkpoint()).is_ok());
  }
  CheckpointStore reopened(dir_);
  ASSERT_TRUE(reopened.init().is_ok());
  EXPECT_EQ(reopened.manifest().size(), 2u);
  auto seq = reopened.write(sample_checkpoint());
  ASSERT_TRUE(seq.is_ok());
  EXPECT_EQ(seq.value(), 3u);  // never reuses a name
}

TEST_F(StoreTest, LoadLatestPrefersTheNewestGoodCheckpoint) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  FleetCheckpoint first = sample_checkpoint();
  ASSERT_TRUE(store.write(first).is_ok());
  FleetCheckpoint second = sample_checkpoint();
  second.completed[0].wall_ns = 99;
  ASSERT_TRUE(store.write(second).is_ok());
  auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().completed[0].wall_ns, 99);
}

TEST_F(StoreTest, OrphanedCheckpointIsFoundWithoutTheManifest) {
  // Simulates a crash between the checkpoint rename and the manifest
  // rename: the file exists, the journal has never heard of it.
  {
    CheckpointStore store(dir_);
    ASSERT_TRUE(store.init().is_ok());
    ASSERT_TRUE(store.write(sample_checkpoint()).is_ok());
  }
  fs::remove(dir_ + "/MANIFEST.json");
  CheckpointStore recovered(dir_);
  ASSERT_TRUE(recovered.init().is_ok());
  EXPECT_TRUE(recovered.manifest().empty());
  EXPECT_TRUE(recovered.load_latest().is_ok());
  // And the next write still does not collide with the orphan.
  auto seq = recovered.write(sample_checkpoint());
  ASSERT_TRUE(seq.is_ok());
  EXPECT_EQ(seq.value(), 2u);
}

TEST_F(StoreTest, EmptyDirectoryIsNotFound) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  EXPECT_EQ(store.load_latest().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.load_file(path_of(1)).status().code(),
            StatusCode::kNotFound);
}

// ------------------------------------------------------------- corruption

class CorruptionTest : public StoreTest {
 protected:
  CorruptionTest() {
    CheckpointStore store(dir_);
    EXPECT_TRUE(store.init().is_ok());
    EXPECT_TRUE(store.write(sample_checkpoint()).is_ok());
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  static void spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
};

TEST_F(CorruptionTest, FlippedPayloadByteIsDataLoss) {
  std::string bytes = slurp(path_of(1));
  bytes[bytes.size() / 2] ^= 0x01;
  spit(path_of(1), bytes);
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  const auto r = store.load_file(path_of(1));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, TruncationIsDataLoss) {
  const std::string bytes = slurp(path_of(1));
  spit(path_of(1), bytes.substr(0, bytes.size() - 10));
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  EXPECT_EQ(store.load_file(path_of(1)).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, GarbageHeaderIsDataLoss) {
  spit(path_of(1), "not json at all\n{}\n");
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  EXPECT_EQ(store.load_file(path_of(1)).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, LoadLatestFallsBackPastACorruptedNewest) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  FleetCheckpoint second = sample_checkpoint();
  second.completed[0].wall_ns = 99;
  ASSERT_TRUE(store.write(second).is_ok());
  // Corrupt the newest; the older good one must win, with no wrong bytes.
  std::string bytes = slurp(path_of(2));
  bytes[bytes.size() - 5] ^= 0x40;
  spit(path_of(2), bytes);
  auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().sequence, 1u);
}

TEST_F(CorruptionTest, AllCorruptIsNotFoundNeverGarbage) {
  std::string bytes = slurp(path_of(1));
  bytes[0] ^= 0x20;
  spit(path_of(1), bytes);
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  EXPECT_EQ(store.load_latest().status().code(), StatusCode::kNotFound);
}

TEST_F(CorruptionTest, CorruptManifestDegradesToDirectoryScan) {
  spit(dir_ + "/MANIFEST.json", "garbage{{{");
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  EXPECT_TRUE(store.manifest().empty());
  EXPECT_TRUE(store.load_latest().is_ok());
}

// ------------------------------------------------- fleet resume (in-process)

/// Cheap deterministic scenario: pure computation from the shard seed, with
/// metrics, a fault-log entry and one deliberately failing shard so every
/// ShardRecord field is exercised.
fleet::ShardOutcome tiny_scenario(const fleet::ShardContext& ctx) {
  fleet::ShardOutcome out;
  Rng rng(ctx.seed);
  auto& c = obs::metrics().counter("tiny.iterations");
  auto& h = obs::metrics().histogram("tiny.sample");
  double acc = 0.0;
  const int n = 40 + static_cast<int>(rng.uniform(40));
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    acc += x;
    h.observe(x);
    c.add();
  }
  out.values["acc"] = acc;
  out.values["n"] = static_cast<double>(n);
  if (ctx.index % 3 == 0) {
    out.faults.push_back(
        {SimTime(static_cast<std::int64_t>(ctx.index) * 1000), "test.fault",
         "synthetic"});
  }
  if (ctx.index == 5) out.status = unavailable("deliberate shard failure");
  return out;
}

fleet::FleetRunner make_runner(const std::string& ckpt_dir,
                               std::size_t every_shards = 0,
                               std::size_t shards = 12) {
  fleet::FleetConfig cfg;
  cfg.workers = 4;
  cfg.root_seed = 0xC4A57ull;
  cfg.checkpoint.directory = ckpt_dir;
  cfg.checkpoint.every_shards = every_shards;
  fleet::FleetRunner runner(cfg);
  for (std::size_t i = 0; i < shards; ++i) {
    runner.add("tiny-" + std::to_string(i), tiny_scenario);
  }
  return runner;
}

class ResumeTest : public StoreTest {};

TEST_F(ResumeTest, ResumeFromFinalCheckpointRestoresEverything) {
  const std::string golden = make_runner("").run().deterministic_json();
  fleet::FleetReport first = make_runner(dir_, 4).run();
  EXPECT_GE(first.checkpoints_written, 3u);  // every 4 of 12 + final
  EXPECT_EQ(first.deterministic_json(), golden);

  fleet::FleetRunner again = make_runner(dir_, 4);
  auto resumed = again.resume_from();
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value().resumed_shards, 12u);
  EXPECT_EQ(resumed.value().deterministic_json(), golden);
}

TEST_F(ResumeTest, ResumeFromIntermediateCheckpointRerunsTheRest) {
  const std::string golden = make_runner("").run().deterministic_json();
  (void)make_runner(dir_, 4).run();
  // Sequence 1 holds the first few shards only; resume must re-run the rest
  // and still reproduce the golden bytes.
  fleet::FleetRunner runner = make_runner(dir_, 4);
  auto resumed = runner.resume_from(path_of(1));
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_GT(resumed.value().resumed_shards, 0u);
  EXPECT_LT(resumed.value().resumed_shards, 12u);
  EXPECT_EQ(resumed.value().deterministic_json(), golden);
}

TEST_F(ResumeTest, ResumedRunPassesTheDeterminismAudit) {
  (void)make_runner(dir_, 4).run();
  fleet::FleetConfig cfg = make_runner(dir_, 4).config();
  cfg.audit = true;
  fleet::FleetRunner runner(cfg);
  for (std::size_t i = 0; i < 12; ++i) {
    runner.add("tiny-" + std::to_string(i), tiny_scenario);
  }
  auto resumed = runner.resume_from(path_of(1));
  ASSERT_TRUE(resumed.is_ok());
  EXPECT_TRUE(resumed.value().audit_diffs.empty());
}

TEST_F(ResumeTest, MismatchedRunnerIsFailedPrecondition) {
  (void)make_runner(dir_, 4).run();
  // Wrong root seed.
  fleet::FleetConfig cfg;
  cfg.root_seed = 0xBAD5EEDull;
  cfg.checkpoint.directory = dir_;
  fleet::FleetRunner wrong_seed(cfg);
  for (std::size_t i = 0; i < 12; ++i) {
    wrong_seed.add("tiny-" + std::to_string(i), tiny_scenario);
  }
  EXPECT_EQ(wrong_seed.resume_from().status().code(),
            StatusCode::kFailedPrecondition);
  // Wrong shard universe.
  fleet::FleetRunner fewer = make_runner(dir_, 4, 7);
  EXPECT_EQ(fewer.resume_from().status().code(),
            StatusCode::kFailedPrecondition);
  // Wrong scenario name at a recorded index.
  fleet::FleetConfig cfg2 = make_runner(dir_, 4).config();
  fleet::FleetRunner renamed(cfg2);
  for (std::size_t i = 0; i < 12; ++i) renamed.add("other", tiny_scenario);
  EXPECT_EQ(renamed.resume_from().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ResumeTest, TamperedShardRecordIsDataLoss) {
  (void)make_runner(dir_, 0).run();  // one final checkpoint
  // Re-author the checkpoint with one shard's value changed but its
  // recorded digest left alone: file-level checksums pass, the semantic
  // digest re-derivation must catch it.
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.init().is_ok());
  auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.is_ok());
  FleetCheckpoint tampered = loaded.value();
  tampered.completed[2].values["acc"] += 1.0;
  ASSERT_TRUE(store.write(tampered).is_ok());
  fleet::FleetRunner runner = make_runner(dir_);
  EXPECT_EQ(runner.resume_from().status().code(), StatusCode::kDataLoss);
}

TEST_F(ResumeTest, ResumeWithoutADirectoryIsFailedPrecondition) {
  fleet::FleetRunner runner = make_runner("");
  EXPECT_EQ(runner.resume_from().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace csk::ckpt
