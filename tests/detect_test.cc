// Detection tests: the memory-deduplication detector in both paper
// scenarios (Figs 5/6), its parameter sweeps, and the two baseline
// detectors (§VI-E) with their evasion conditions.
#include <gtest/gtest.h>

#include "cloudskulk/installer.h"
#include "detect/dedup_detector.h"
#include "detect/vmcs_scan.h"
#include "detect/vmi_fingerprint.h"
#include "test_util.h"

namespace csk::detect {
namespace {

using testing::small_host_config;
using testing::small_vm_config;

class DedupScenarioTest : public ::testing::Test {
 protected:
  DedupScenarioTest() {
    auto cfg = small_host_config();
    cfg.boot_touched_mib = 4;  // keep ksmd passes short
    host_ = world_.make_host(cfg);
  }

  DedupDetectorConfig fast_detector(std::size_t pages = 20) {
    DedupDetectorConfig cfg;
    cfg.file_pages = pages;
    cfg.merge_wait = SimDuration::seconds(5);
    return cfg;
  }

  /// Scenario 1: an honest guest0; the user's OS is guest0's OS.
  guestos::GuestOS* setup_clean_scenario(DedupDetector& detector) {
    vmm::VirtualMachine* vm =
        host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
    CSK_CHECK(detector.seed_guest(vm->os()).is_ok());
    return vm->os();
  }

  /// Scenario 2: CloudSkulk installed; the user's OS now lives in the
  /// nested VM; the impersonating L1 also carries File-A.
  guestos::GuestOS* setup_rootkit_scenario(DedupDetector& detector) {
    host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
    cloudskulk::InstallerOptions opts;
    opts.rootkit_boot_touched_mib = 4;
    installer_ =
        std::make_unique<cloudskulk::CloudSkulkInstaller>(host_, opts);
    const cloudskulk::InstallReport report = installer_->install();
    CSK_CHECK_MSG(report.succeeded, report.error);
    // The victim's OS (with File-A, if seeded before or after) is nested;
    // the attacker mirrors the same file into the L1 OS to impersonate.
    CSK_CHECK(detector.seed_guest(installer_->nested_vm()->os()).is_ok());
    CSK_CHECK(detector.seed_guest(installer_->rootkit_vm()->os()).is_ok());
    return installer_->nested_vm()->os();
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
  std::unique_ptr<cloudskulk::CloudSkulkInstaller> installer_;
};

// --------------------------------------------------------- scenario 1 & 2

TEST_F(DedupScenarioTest, CleanGuestYieldsNoNestedVm) {
  DedupDetector detector(host_, fast_detector());
  guestos::GuestOS* os = setup_clean_scenario(detector);
  auto report = detector.run(os);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->verdict, DedupVerdict::kNoNestedVm) << report->explanation;
  EXPECT_TRUE(report->step1_merged);
  EXPECT_FALSE(report->step2_merged);
}

TEST_F(DedupScenarioTest, CleanScenarioTimingShape) {
  // Fig 5: t1 >> t2 ~ t0.
  DedupDetector detector(host_, fast_detector());
  guestos::GuestOS* os = setup_clean_scenario(detector);
  auto report = detector.run(os);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report->t1.summary.mean, 5 * report->t0.summary.mean);
  EXPECT_LT(report->t2.summary.mean, 2 * report->t0.summary.mean);
  EXPECT_GT(report->t1_t2_separation, 3.0);
}

TEST_F(DedupScenarioTest, CloudSkulkIsDetected) {
  DedupDetector detector(host_, fast_detector());
  guestos::GuestOS* os = setup_rootkit_scenario(detector);
  auto report = detector.run(os);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->verdict, DedupVerdict::kNestedVmDetected)
      << report->explanation;
  EXPECT_TRUE(report->step1_merged);
  EXPECT_TRUE(report->step2_merged);
}

TEST_F(DedupScenarioTest, RootkitScenarioTimingShape) {
  // Fig 6: t1 ~ t2, both >> t0.
  DedupDetector detector(host_, fast_detector());
  guestos::GuestOS* os = setup_rootkit_scenario(detector);
  auto report = detector.run(os);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report->t1.summary.mean, 5 * report->t0.summary.mean);
  EXPECT_GT(report->t2.summary.mean, 5 * report->t0.summary.mean);
  EXPECT_LT(report->t1_t2_separation, 3.0);
}

TEST_F(DedupScenarioTest, MissingFileInGuestBreaksImpersonation) {
  // If the "guest" never held File-A at all, step 1 cannot merge: the
  // grosser mismatch of §VI-B.
  DedupDetector detector(host_, fast_detector());
  vmm::VirtualMachine* vm =
      host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  // Seed the FS so run() precondition passes, but evict from page cache
  // before the detector looks.
  ASSERT_TRUE(detector.seed_guest(vm->os()).is_ok());
  auto report_pre = detector.run(vm->os());
  ASSERT_TRUE(report_pre.is_ok());
  // Now evict and re-run: file absent from memory.
  ASSERT_TRUE(vm->os()->evict_file("file-a.mp3").is_ok());
  auto report = detector.run(vm->os());
  EXPECT_FALSE(report.is_ok());  // precondition: file must be cached
}

TEST_F(DedupScenarioTest, NoMergeObservableWhenKsmIsOff) {
  // With deduplication disabled the protocol cannot see sharing at all —
  // step 1 never merges, and the detector reports the grosser mismatch
  // verdict rather than pretending the host is clean.
  auto cfg = small_host_config("host1");
  cfg.ksm_enabled = false;
  vmm::Host* host1 = world_.make_host(cfg);
  vmm::VirtualMachine* vm =
      host1->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  DedupDetector detector(host1, fast_detector());
  ASSERT_TRUE(detector.seed_guest(vm->os()).is_ok());
  auto report = detector.run(vm->os());
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->verdict, DedupVerdict::kImpersonationBroken);
  EXPECT_FALSE(report->step1_merged);
}

TEST_F(DedupScenarioTest, RunWithoutSeedingFails) {
  DedupDetector detector(host_, fast_detector());
  vmm::VirtualMachine* vm =
      host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  auto report = detector.run(vm->os());
  EXPECT_FALSE(report.is_ok());
}

TEST_F(DedupScenarioTest, AttackerWhoAlsoUpdatesL1CopyEvades) {
  // §VI-D: if the attacker synchronized the change into L1 (at the cost of
  // tracking every guest write), t2 would be fast again. Verify the
  // detector is honest about that bound.
  DedupDetector detector(host_, fast_detector());
  guestos::GuestOS* os = setup_rootkit_scenario(detector);
  // The attacker watches and mirrors the perturbation into the L1 copy
  // *before* the detector's step-2 measurement window closes. Model the
  // best case for the attacker: mirror immediately after the guest change
  // by perturbing L1's copy the same way (same resulting bytes).
  // Step 1 happens inside run(); we interpose by running the protocol
  // manually: perturb both copies identically.
  auto report1 = detector.run(os);
  ASSERT_TRUE(report1.is_ok());
  EXPECT_EQ(report1->verdict, DedupVerdict::kNestedVmDetected);

  // Second run where the attacker mirrors: perturbation of the nested copy
  // is mirrored into the rootkit's L1 copy between steps. We emulate by
  // giving the detector a victim OS hook that perturbs both.
  // (The byte flip is deterministic: flipping L1's copy the same way
  // yields identical content.)
  guestos::GuestOS* l1 = installer_->rootkit_vm()->os();
  // Fresh detector with a fresh file for a clean second protocol run (the
  // first run already turned file-a into File-A-v2 inside the guests).
  DedupDetectorConfig cfg2 = fast_detector();
  cfg2.file_name = "file-b.mp3";
  DedupDetector detector2(host_, cfg2);
  ASSERT_TRUE(detector2.seed_guest(os).is_ok());
  ASSERT_TRUE(detector2.seed_guest(l1).is_ok());

  // Manual protocol with attacker mirroring.
  struct MirroringOs {
    guestos::GuestOS* victim;
    guestos::GuestOS* l1;
  };
  // Run the standard protocol but mirror right after the victim's change.
  // We reproduce DedupDetector::run()'s phases through its public pieces:
  auto report2 = [&]() -> Result<DedupDetectionReport> {
    // The detector perturbs the victim at exactly merge_wait (5 s) into the
    // run, then waits again. An attacker trapping the victim's write from
    // L1 mirrors it within microseconds — *before* ksmd's next pass can
    // merge the detector's fresh step-2 buffer with the stale L1 copy.
    world_.simulator().schedule_after(
        SimDuration::seconds(5) + SimDuration::micros(1),
        [&] { (void)l1->perturb_cached_file("file-b.mp3"); });
    return detector2.run(os);
  }();
  ASSERT_TRUE(report2.is_ok()) << report2.status().to_string();
  EXPECT_EQ(report2->verdict, DedupVerdict::kNoNestedVm)
      << "perfect mirroring defeats the detector, as §VI-D concedes";
}

// Parameter sweep: detection verdict matches ground truth across file
// sizes (§VI-D claims even one page suffices).
struct SweepParam {
  std::size_t file_pages;
  bool rootkit;
};

class DedupSweepTest : public DedupScenarioTest,
                       public ::testing::WithParamInterface<SweepParam> {};

TEST_P(DedupSweepTest, VerdictMatchesGroundTruth) {
  const SweepParam p = GetParam();
  DedupDetector detector(host_, fast_detector(p.file_pages));
  guestos::GuestOS* os = p.rootkit ? setup_rootkit_scenario(detector)
                                   : setup_clean_scenario(detector);
  auto report = detector.run(os);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->verdict, p.rootkit ? DedupVerdict::kNestedVmDetected
                                       : DedupVerdict::kNoNestedVm)
      << report->explanation;
}

INSTANTIATE_TEST_SUITE_P(
    FileSizes, DedupSweepTest,
    ::testing::Values(SweepParam{1, false}, SweepParam{1, true},
                      SweepParam{4, false}, SweepParam{4, true},
                      SweepParam{16, false}, SweepParam{16, true},
                      SweepParam{100, false}, SweepParam{100, true}));

// ------------------------------------------------------------- VMCS scan

class VmcsScanTest : public ::testing::Test {
 protected:
  VmcsScanTest() {
    auto cfg = small_host_config();
    cfg.boot_touched_mib = 2;
    host_ = world_.make_host(cfg);
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
};

TEST_F(VmcsScanTest, CleanHostHasNoFindings) {
  host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  VmcsScanDetector scanner(host_);
  const VmcsScanReport report = scanner.scan();
  EXPECT_FALSE(report.hypervisor_found());
  EXPECT_GT(report.pages_scanned, 0u);
  // The threshold-free score is zero: no pages, at any min-pages cut.
  EXPECT_EQ(report.total_signature_pages(), 0u);
  EXPECT_FALSE(report.hypervisor_found_at(1));
}

TEST_F(VmcsScanTest, TruncatedVmcsRegionIsSkippedNotMisread) {
  // A page that *starts* like a VMCS but is shorter than signature +
  // revision id must be walked past, not parsed out of bounds.
  vmm::VirtualMachine* vm =
      host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  const auto page_of = [](std::initializer_list<std::uint8_t> bytes) {
    return mem::PageData::from_bytes(mem::PageBytes(bytes));
  };
  // 4 bytes: signature only, revision id entirely missing.
  vm->memory().write_page(Gfn(1000), page_of({'V', 'M', 'C', 'S'}));
  // 7 bytes: revision id cut one byte short.
  vm->memory().write_page(
      Gfn(1001), page_of({'V', 'M', 'C', 'S', 0x10, 0x00, 0x00}));
  VmcsScanDetector scanner(host_);
  EXPECT_FALSE(scanner.scan().hypervisor_found());

  // Control: exactly 8 bytes with a known revision id IS a finding — the
  // boundary sits at signature + 4-byte revision id, nowhere stricter.
  vm->memory().write_page(
      Gfn(1002),
      page_of({'V', 'M', 'C', 'S',
               static_cast<std::uint8_t>(
                   vmm::VirtualMachine::kDefaultVmcsRevisionId),
               0x00, 0x00, 0x00}));
  const VmcsScanReport report = scanner.scan();
  ASSERT_TRUE(report.hypervisor_found());
  EXPECT_EQ(report.total_signature_pages(), 1u);
}

TEST_F(VmcsScanTest, MultipleFindingsFollowVmOrderAndSum) {
  auto cfg1 = small_vm_config("guestx1", 64, 0, 0);
  cfg1.cpu_host_passthrough = true;
  vmm::VirtualMachine* vm1 = host_->launch_vm(cfg1).value();
  ASSERT_TRUE(vm1->enable_nested_hypervisor().is_ok());
  auto cfg2 = small_vm_config("guestx2", 64, 0, 0);
  cfg2.cpu_host_passthrough = true;
  vmm::VirtualMachine* vm2 = host_->launch_vm(cfg2).value();
  ASSERT_TRUE(vm2->enable_nested_hypervisor().is_ok());

  VmcsScanDetector scanner(host_);
  const VmcsScanReport report = scanner.scan();
  ASSERT_EQ(report.findings.size(), 2u);
  // Findings come back in the host's VM enumeration order — stable, so
  // campaign digests and report diffs are reproducible.
  EXPECT_EQ(report.findings[0].vm_name, "guestx1");
  EXPECT_EQ(report.findings[1].vm_name, "guestx2");
  EXPECT_EQ(report.total_signature_pages(),
            report.findings[0].pages_with_signature +
                report.findings[1].pages_with_signature);
  EXPECT_TRUE(report.hypervisor_found_at(1));
  // A min-pages cut above every finding flags nothing.
  EXPECT_FALSE(report.hypervisor_found_at(report.total_signature_pages() + 1));
}

TEST_F(VmcsScanTest, FindsNestedHypervisorByVmcsSignature) {
  auto cfg = small_vm_config("guestx", 64, 0, 0);
  cfg.cpu_host_passthrough = true;
  vmm::VirtualMachine* vm = host_->launch_vm(cfg).value();
  ASSERT_TRUE(vm->enable_nested_hypervisor().is_ok());
  VmcsScanDetector scanner(host_);
  const VmcsScanReport report = scanner.scan();
  ASSERT_TRUE(report.hypervisor_found());
  EXPECT_EQ(report.findings[0].vm_name, "guestx");
  EXPECT_EQ(report.findings[0].revision_id,
            vmm::VirtualMachine::kDefaultVmcsRevisionId);
}

TEST_F(VmcsScanTest, UnknownRevisionIdEvadesTheScanner) {
  // The paper's critique: the approach needs a hard-coded signature.
  auto cfg = small_vm_config("guestx", 64, 0, 0);
  cfg.cpu_host_passthrough = true;
  vmm::VirtualMachine* vm = host_->launch_vm(cfg).value();
  ASSERT_TRUE(vm->enable_nested_hypervisor(0xDEADBEEF).is_ok());
  VmcsScanDetector scanner(host_);
  EXPECT_FALSE(scanner.scan().hypervisor_found());
  // A scanner taught the new signature finds it again.
  VmcsScanConfig cfg2;
  cfg2.known_revision_ids = {0xDEADBEEF};
  VmcsScanDetector scanner2(host_, cfg2);
  EXPECT_TRUE(scanner2.scan().hypervisor_found());
}

TEST_F(VmcsScanTest, DetectsCloudSkulkWhenSignatureKnown) {
  host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  cloudskulk::InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 2;
  cloudskulk::CloudSkulkInstaller installer(host_, opts);
  ASSERT_TRUE(installer.install().succeeded);
  VmcsScanDetector scanner(host_);
  const VmcsScanReport report = scanner.scan();
  ASSERT_TRUE(report.hypervisor_found());
  EXPECT_EQ(report.findings[0].vm, installer.rootkit_vm()->id());
}

// -------------------------------------------------------- VMI fingerprint

class VmiFingerprintTest : public ::testing::Test {
 protected:
  VmiFingerprintTest() {
    auto cfg = small_host_config();
    cfg.boot_touched_mib = 2;
    host_ = world_.make_host(cfg);
  }

  VmBaseline guest0_baseline() {
    VmBaseline b;
    b.vm_name = "guest0";
    b.identity.hostname = "guest0";
    b.expected_processes = {"init", "sshd"};
    return b;
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
};

TEST_F(VmiFingerprintTest, CleanGuestMatchesBaseline) {
  host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  VmiFingerprintDetector detector(host_);
  const auto report = detector.check({guest0_baseline()});
  EXPECT_FALSE(report.suspicious())
      << report.anomalies[0].vm_name << ": " << report.anomalies[0].what;
}

TEST_F(VmiFingerprintTest, NaiveRootkitLeaksQemuProcess) {
  // CloudSkulk installed but the attacker forgot to hide the inner QEMU:
  // single-level VMI sees a qemu process inside "guest0".
  host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  cloudskulk::InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 2;
  cloudskulk::CloudSkulkInstaller installer(host_, opts);
  ASSERT_TRUE(installer.install().succeeded);
  VmiFingerprintDetector detector(host_);
  const auto report = detector.check({guest0_baseline()});
  EXPECT_TRUE(report.suspicious());
}

TEST_F(VmiFingerprintTest, CarefulImpersonationEvadesFingerprinting) {
  // The paper's §VI-E point: same OS + same-looking processes + hidden
  // giveaways => indistinguishable fingerprint.
  host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  cloudskulk::InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 2;
  cloudskulk::CloudSkulkInstaller installer(host_, opts);
  ASSERT_TRUE(installer.install().succeeded);
  guestos::GuestOS* l1 = installer.rootkit_vm()->os();
  // Hide the nesting machinery from the L1 kernel's visible task list.
  for (const auto& name : {"qemu-system-x86", "kvm"}) {
    auto p = l1->find_process_by_name(name);
    ASSERT_TRUE(p.is_ok());
    ASSERT_TRUE(l1->hide_process(p->pid).is_ok());
  }
  VmiFingerprintDetector detector(host_);
  const auto report = detector.check({guest0_baseline()});
  EXPECT_FALSE(report.suspicious())
      << report.anomalies[0].vm_name << ": " << report.anomalies[0].what;
  // Meanwhile the *nested* victim is invisible to the tool entirely: its
  // kernel structures are nowhere the scanner knows to look (double
  // semantic gap) — checked implicitly: only top-level VMs were scanned.
  EXPECT_EQ(report.vms_checked, host_->vms().size());
}

TEST_F(VmiFingerprintTest, DoubleSemanticGapMakesTheVictimUnreachable) {
  // §VI-D2: a single-level VMI tool can only walk top-level VMs. After the
  // install, the VM it sees under the victim's name is the impersonating
  // L1; the real victim's kernel structures live one semantic gap deeper
  // and are never enumerated.
  host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  cloudskulk::InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 2;
  cloudskulk::CloudSkulkInstaller installer(host_, opts);
  ASSERT_TRUE(installer.install().succeeded);

  // The nested victim is not in the host's top-level enumeration.
  for (vmm::VirtualMachine* vm : host_->vms()) {
    EXPECT_NE(vm, installer.nested_vm());
  }
  // What VMI reads at the known location under the victim's name is the
  // *L1's* table, not the victim's.
  VmiFingerprintDetector detector(host_);
  const auto before = detector.check({guest0_baseline()});
  EXPECT_EQ(before.vms_checked, host_->vms().size());
  EXPECT_EQ(before.semantic_gap_failures, 0u);

  // And when the attacker scrambles that L1 table, the tool does not fall
  // through to the victim's — it hits the semantic gap and reports an
  // unparseable table (an anomaly, never a silent pass).
  mem::PageBytes garbage(64, 0xA5);
  installer.rootkit_vm()->memory().write_page(
      Gfn(guestos::kProcTableGfn), mem::PageData::from_bytes(garbage));
  const auto after = detector.check({guest0_baseline()});
  EXPECT_EQ(after.semantic_gap_failures, 1u);
  ASSERT_TRUE(after.suspicious());
  EXPECT_GE(after.anomaly_count(), 1u);
  EXPECT_TRUE(after.suspicious_at(1));
  EXPECT_FALSE(after.suspicious_at(after.anomaly_count() + 1));
  bool saw_gap_anomaly = false;
  for (const auto& a : after.anomalies) {
    if (a.what.find("semantic gap") != std::string::npos) {
      saw_gap_anomaly = true;
    }
  }
  EXPECT_TRUE(saw_gap_anomaly);
}

}  // namespace
}  // namespace csk::detect
