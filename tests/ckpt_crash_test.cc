// The out-of-process crash-recovery proof (label: crash).
//
// A child process runs a checkpointed fleet sweep and SIGKILLs itself at a
// seeded (write-phase, sequence) point — between shards, mid-checkpoint-
// write, after the rename but before the manifest, mid-manifest-write. The
// parent then resumes from whatever the child left on disk and byte-
// compares the resumed report's deterministic JSON against a golden
// uninterrupted run. Twenty kill points cycle through every phase of the
// two-file commit protocol, so every prefix of the protocol is proven
// recoverable, not just the tidy between-checkpoints case.
//
// Reproduce a failing kill schedule with CSK_CKPT_SEED=<u64> (the printed
// seed) — the kill points derive from it exactly like shard seeds derive
// from a fleet root seed.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "ckpt/ckpt.h"
#include "common/rng.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"

namespace csk::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 12;
constexpr std::size_t kEveryShards = 2;
constexpr int kKillPoints = 20;

/// Same shape as the ckpt_test scenario: cheap, fully seed-derived, with
/// metrics, faults and one failing shard.
fleet::ShardOutcome tiny_scenario(const fleet::ShardContext& ctx) {
  fleet::ShardOutcome out;
  Rng rng(ctx.seed);
  auto& c = obs::metrics().counter("tiny.iterations");
  auto& h = obs::metrics().histogram("tiny.sample");
  double acc = 0.0;
  const int n = 40 + static_cast<int>(rng.uniform(40));
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    acc += x;
    h.observe(x);
    c.add();
  }
  out.values["acc"] = acc;
  out.values["n"] = static_cast<double>(n);
  if (ctx.index % 3 == 0) {
    out.faults.push_back(
        {SimTime(static_cast<std::int64_t>(ctx.index) * 1000), "test.fault",
         "synthetic"});
  }
  if (ctx.index == 5) out.status = unavailable("deliberate shard failure");
  return out;
}

fleet::FleetRunner make_runner(const std::string& ckpt_dir,
                               CrashHook hook = nullptr) {
  fleet::FleetConfig cfg;
  cfg.workers = 4;
  cfg.root_seed = 0xC4A57ull;
  cfg.checkpoint.directory = ckpt_dir;
  cfg.checkpoint.every_shards = kEveryShards;
  cfg.checkpoint.crash_hook = std::move(hook);
  fleet::FleetRunner runner(cfg);
  for (std::size_t i = 0; i < kShards; ++i) {
    runner.add("tiny-" + std::to_string(i), tiny_scenario);
  }
  return runner;
}

std::uint64_t kill_schedule_seed() {
  if (const char* env = std::getenv("CSK_CKPT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x5EEDCA5Cull;
}

TEST(CkptCrashTest, KillAndResumeIsByteIdenticalAtEveryProtocolPhase) {
  const std::uint64_t seed = kill_schedule_seed();
  SCOPED_TRACE("CSK_CKPT_SEED=" + std::to_string(seed));
  // Golden uninterrupted run, computed before any fork: the pool's threads
  // live only inside run(), so the process is single-threaded again (and
  // fork-safe) by the time it returns.
  const std::string golden = make_runner("").run().deterministic_json();

  const fs::path base =
      fs::temp_directory_path() / ("csk_crash_" + std::to_string(::getpid()));
  fs::remove_all(base);
  fs::create_directories(base);

  int killed = 0;
  for (int k = 0; k < kKillPoints; ++k) {
    // Cycle through every protocol phase; vary the target sequence from the
    // schedule seed so different rounds die at different progress points.
    const auto phase = static_cast<WritePhase>(k % 5);
    const std::uint64_t target_seq = 1 + derive_seed(seed, k) % 3;
    const std::string dir = (base / ("point_" + std::to_string(k))).string();

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: run the checkpointed sweep, die at the chosen point. Raw
      // SIGKILL (never exit()) — the point is an unclean death with no
      // flushing or teardown.
      auto runner = make_runner(dir, [phase, target_seq](WritePhase p,
                                                         std::uint64_t s) {
        if (p == phase && s == target_seq) ::kill(::getpid(), SIGKILL);
      });
      (void)runner.run();
      ::_exit(0);
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    if (WIFSIGNALED(status)) {
      ASSERT_EQ(WTERMSIG(status), SIGKILL);
      ++killed;
    }

    // Parent: resume from whatever survived. A child killed before its
    // first commit legitimately leaves nothing — then a fresh run must
    // still produce the golden bytes.
    auto runner = make_runner(dir);
    auto resumed = runner.resume_from();
    std::string resumed_json;
    if (resumed.is_ok()) {
      resumed_json = resumed.value().deterministic_json();
    } else {
      ASSERT_EQ(resumed.status().code(), StatusCode::kNotFound)
          << "kill point " << k << ": " << resumed.status().to_string();
      resumed_json = runner.run().deterministic_json();
    }
    EXPECT_EQ(resumed_json, golden) << "kill point " << k << " (phase "
                                    << static_cast<int>(phase) << ", seq "
                                    << target_seq << ")";
  }
  // The schedule must actually exercise crashes: nearly every round kills
  // its child (a round only survives if the target sequence was never
  // written, which the tight sequence range makes rare).
  EXPECT_GE(killed, kKillPoints / 2);
  fs::remove_all(base);
}

TEST(CkptCrashTest, ResumedRunKilledAgainStillConverges) {
  // Crash, resume, crash the resumed run, resume again: checkpoint
  // sequences keep increasing across incarnations and the final bytes
  // still match.
  const std::string golden = make_runner("").run().deterministic_json();
  const fs::path dir = fs::temp_directory_path() /
                       ("csk_crash2_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  for (int round = 0; round < 2; ++round) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const std::uint64_t die_at = 2 + round;  // deeper each incarnation
      auto runner =
          make_runner(dir.string(), [die_at](WritePhase p, std::uint64_t s) {
            if (p == WritePhase::kRenamed && s >= die_at) {
              ::kill(::getpid(), SIGKILL);
            }
          });
      auto resumed = runner.resume_from();
      if (!resumed.is_ok()) (void)runner.run();
      ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  }

  auto runner = make_runner(dir.string());
  auto resumed = runner.resume_from();
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_GT(resumed.value().resumed_shards, 0u);
  EXPECT_EQ(resumed.value().deterministic_json(), golden);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace csk::ckpt
