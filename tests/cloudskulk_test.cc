// CloudSkulk core tests: recon, the four-step installer, the RITM position
// and its passive/active services.
#include <gtest/gtest.h>

#include "cloudskulk/installer.h"
#include "cloudskulk/recon.h"
#include "cloudskulk/services/active.h"
#include "cloudskulk/services/passive.h"
#include "test_util.h"
#include "vmm/monitor.h"

namespace csk::cloudskulk {
namespace {

using testing::small_host_config;
using testing::small_vm_config;

// ------------------------------------------------------------------ recon

class ReconTest : public ::testing::Test {
 protected:
  ReconTest() { host_ = world_.make_host(small_host_config()); }

  vmm::VirtualMachine* launch_target_via_history() {
    const std::string cmdline = small_vm_config().to_command_line();
    auto vm = host_->launch_vm_cmdline(cmdline);
    CSK_CHECK(vm.is_ok());
    return vm.value();
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
};

TEST_F(ReconTest, HistoryIsThePreferredSource) {
  launch_target_via_history();
  TargetRecon recon(host_);
  auto report = recon.discover("guest0");
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->evidence.front(), "shell history");
  EXPECT_EQ(report->config, small_vm_config());
}

TEST_F(ReconTest, PsFallbackWhenHistoryUnavailable) {
  launch_target_via_history();
  TargetRecon::Options opts;
  opts.use_history = false;
  TargetRecon recon(host_, opts);
  auto report = recon.discover("guest0");
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->evidence.front(), "ps -ef");
  EXPECT_EQ(report->config, small_vm_config());
}

TEST_F(ReconTest, MonitorIntrospectionRecoversMachineShape) {
  launch_target_via_history();
  TargetRecon::Options opts;
  opts.use_history = false;
  opts.use_ps = false;
  TargetRecon recon(host_, opts);
  auto report = recon.discover("guest0");
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->evidence.front(), "qemu monitor introspection");
  const vmm::MachineConfig want = small_vm_config();
  // Introspection recovers everything migration compatibility needs.
  std::string why;
  EXPECT_TRUE(vmm::migration_compatible(want, report->config, &why)) << why;
  EXPECT_EQ(report->config.memory_mb, want.memory_mb);
  ASSERT_EQ(report->config.netdevs.size(), 1u);
  EXPECT_EQ(report->config.netdevs[0].hostfwd, want.netdevs[0].hostfwd);
}

TEST_F(ReconTest, RecoveredPidMatchesProcessTable) {
  vmm::VirtualMachine* vm = launch_target_via_history();
  TargetRecon recon(host_);
  auto report = recon.discover("guest0");
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->host_pid, host_->pid_of_vm(vm->id()).value());
}

TEST_F(ReconTest, UnknownVmReportsNotFound) {
  TargetRecon recon(host_);
  EXPECT_FALSE(recon.discover("no-such-vm").is_ok());
}

TEST(ReconParserTest, InfoNetworkRoundTrip) {
  auto parsed = parse_info_network(
      "net0: index=0,type=user,hostfwd=tcp::2222-:22,hostfwd=tcp::8080-:80\n"
      " \\ virtio-net-pci,mac=52:54:00:aa:bb:cc\n");
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].model, "virtio-net-pci");
  EXPECT_EQ((*parsed)[0].mac, "52:54:00:aa:bb:cc");
  ASSERT_EQ((*parsed)[0].hostfwd.size(), 2u);
  EXPECT_EQ((*parsed)[0].hostfwd[1].host_port, 8080);
  EXPECT_EQ((*parsed)[0].hostfwd[1].guest_port, 80);
}

TEST(ReconParserTest, InfoMtreeRamSize) {
  auto mb = parse_info_mtree_ram_mb(
      "memory\n0000000000000000-000000003fffffff (prio 0, RW): pc.ram "
      "size=1024M\n");
  ASSERT_TRUE(mb.is_ok());
  EXPECT_EQ(mb.value(), 1024u);
}

// -------------------------------------------------------------- installer

class InstallerTest : public ::testing::Test {
 protected:
  InstallerTest() {
    host_ = world_.make_host(small_host_config());
    target_ =
        host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  }

  InstallerOptions fast_options() {
    InstallerOptions opts;
    opts.rootkit_boot_touched_mib = 4;
    return opts;
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
  vmm::VirtualMachine* target_ = nullptr;
};

TEST_F(InstallerTest, FourStepInstallSucceeds) {
  CloudSkulkInstaller installer(host_, fast_options());
  const InstallReport report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  EXPECT_TRUE(report.migration.succeeded);
  EXPECT_GE(report.log.size(), 5u);
}

TEST_F(InstallerTest, VictimEndsUpNestedInsideRootkit) {
  CloudSkulkInstaller installer(host_, fast_options());
  const InstallReport report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  vmm::VirtualMachine* rootkit = installer.rootkit_vm();
  vmm::VirtualMachine* nested = installer.nested_vm();
  EXPECT_EQ(nested->parent(), rootkit);
  EXPECT_EQ(nested->layer(), hv::Layer::kL2);
  EXPECT_EQ(nested->state(), vmm::VmState::kRunning);
  ASSERT_NE(nested->os(), nullptr);
  // The victim's userspace kept its identity across the kidnapping.
  EXPECT_TRUE(nested->os()->find_process_by_name("sshd").is_ok());
}

TEST_F(InstallerTest, OriginalQemuProcessIsGone) {
  const VmId original = target_->id();
  CloudSkulkInstaller installer(host_, fast_options());
  const InstallReport report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  EXPECT_FALSE(host_->find_vm(original).is_ok());
  // Exactly one qemu process named guest0 remains (GuestX impersonating).
  int count = 0;
  for (const auto& p : host_->ps()) {
    if (p.cmdline.find("-name guest0") != std::string::npos) ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST_F(InstallerTest, PidAndCmdlineAreImpersonated) {
  const Pid original_pid = host_->pid_of_vm(target_->id()).value();
  const std::string original_cmdline = small_vm_config().to_command_line();
  CloudSkulkInstaller installer(host_, fast_options());
  const InstallReport report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  EXPECT_EQ(report.final_pid, original_pid);
  const Pid now = host_->pid_of_vm(installer.rootkit_vm()->id()).value();
  EXPECT_EQ(now, original_pid);
  // ps shows the victim's exact original command line.
  bool found = false;
  for (const auto& p : host_->ps()) {
    if (p.pid == original_pid) {
      found = true;
      EXPECT_EQ(p.cmdline, original_cmdline);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(InstallerTest, MonitorPortIsTakenOver) {
  CloudSkulkInstaller installer(host_, fast_options());
  const InstallReport report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  // The admin's telnet to the original monitor port now reaches GuestX.
  auto mon = host_->connect_monitor(5555);
  ASSERT_TRUE(mon.is_ok());
  EXPECT_EQ(mon.value()->vm(), installer.rootkit_vm());
  auto status = mon.value()->execute("info status");
  ASSERT_TRUE(status.is_ok());
  EXPECT_NE(status.value().find("running"), std::string::npos);
}

TEST_F(InstallerTest, VictimTrafficFlowsThroughRitmAfterInstall) {
  CloudSkulkInstaller installer(host_, fast_options());
  const InstallReport report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  vmm::VirtualMachine* nested = installer.nested_vm();

  // The victim's sshd, wherever it now runs, answers on its node port 22.
  int received = 0;
  ASSERT_TRUE(nested
                  ->bind_guest_port(Port(22),
                                    [&](net::Packet) { ++received; })
                  .is_ok());

  // A client still connects to host:2222 exactly as before the attack.
  net::Packet pkt;
  pkt.conn = world_.network().new_conn();
  pkt.kind = net::ProtoKind::kSshKeystroke;
  pkt.src = net::NetAddr{"victim-laptop", Port(50000)};
  pkt.reply_to = pkt.src;
  pkt.wire_bytes = 80;
  pkt.payload = "ls -la";
  world_.network().send(net::NetAddr{host_->node_name(), Port(2222)}, pkt);
  world_.simulator().run_for(SimDuration::seconds(2));
  EXPECT_EQ(received, 1);
}

TEST_F(InstallerTest, InstallTimeIsDominatedByMigration) {
  CloudSkulkInstaller installer(host_, fast_options());
  const InstallReport report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  EXPECT_GE(report.total_time.ns(), report.migration.total_time.ns());
  EXPECT_LT(report.total_time.ns(),
            report.migration.total_time.ns() + SimDuration::seconds(5).ns());
}

TEST_F(InstallerTest, FailsCleanlyWithoutNestedVirtSupport) {
  // A host whose "cloud image" lacks VMX passthrough support would stop at
  // step 2/3; model by launching GuestX without nesting allowed.
  InstallerOptions opts = fast_options();
  opts.target_vm_name = "missing";
  CloudSkulkInstaller installer(host_, opts);
  const InstallReport report = installer.install();
  EXPECT_FALSE(report.succeeded);
  EXPECT_FALSE(report.error.empty());
}

TEST_F(InstallerTest, InstallWorksViaMonitorOnlyRecon) {
  InstallerOptions opts = fast_options();
  opts.recon.use_history = false;
  opts.recon.use_ps = false;
  CloudSkulkInstaller installer(host_, opts);
  const InstallReport report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  EXPECT_EQ(report.recon.evidence.front(), "qemu monitor introspection");
}

// ------------------------------------------------------------ RITM + svcs

class RitmTest : public ::testing::Test {
 protected:
  RitmTest() {
    host_ = world_.make_host(small_host_config());
    host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
    InstallerOptions opts;
    opts.rootkit_boot_touched_mib = 4;
    installer_ = std::make_unique<CloudSkulkInstaller>(host_, opts);
    report_ = installer_->install();
    CSK_CHECK_MSG(report_.succeeded, report_.error);
    // Victim service: an sshd/web hybrid echoing replies to clients.
    nested_ = installer_->nested_vm();
    (void)nested_->bind_guest_port(Port(22), [this](net::Packet pkt) {
      net::Packet reply = pkt;
      reply.kind = pkt.kind == net::ProtoKind::kHttpRequest
                       ? net::ProtoKind::kHttpResponse
                       : net::ProtoKind::kSshOutput;
      reply.src = net::NetAddr{nested_->node_name(), Port(22)};
      reply.payload = "echo: " + pkt.payload.str();
      reply.wire_bytes = reply.payload.size() + 40;
      world_.network().send(pkt.reply_to, std::move(reply));
    });
  }

  /// Sends a client packet to the victim's stable host port.
  void client_send(net::ProtoKind kind, const std::string& payload,
                   ConnId conn) {
    net::Packet pkt;
    pkt.conn = conn;
    pkt.kind = kind;
    pkt.src = net::NetAddr{"victim-laptop", Port(50000)};
    pkt.reply_to = pkt.src;
    pkt.wire_bytes = payload.size() + 40;
    pkt.payload = payload;
    world_.network().send(net::NetAddr{host_->node_name(), Port(2222)}, pkt);
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
  std::unique_ptr<CloudSkulkInstaller> installer_;
  InstallReport report_;
  vmm::VirtualMachine* nested_ = nullptr;
  std::vector<net::Packet> client_rx_;
};

TEST_F(RitmTest, KeystrokeLoggerCapturesVictimInput) {
  KeystrokeLogger logger(&world_.simulator());
  installer_->ritm()->add_tap(&logger);
  const ConnId conn = world_.network().new_conn();
  client_send(net::ProtoKind::kSshKeystroke, "sudo cat /etc/shadow\n", conn);
  client_send(net::ProtoKind::kSshKeystroke, "exit\n", conn);
  world_.simulator().run_for(SimDuration::seconds(2));
  EXPECT_EQ(logger.transcript(), "sudo cat /etc/shadow\nexit\n");
  EXPECT_EQ(logger.keystrokes(), 26u);
}

TEST_F(RitmTest, PacketLoggerSeesBothDirections) {
  PacketLogger logger(&world_.simulator());
  installer_->ritm()->add_tap(&logger);
  // Client endpoint that accepts the echo reply.
  (void)world_.network().bind(net::NetAddr{"victim-laptop", Port(50000)},
                              [&](net::Packet p) { client_rx_.push_back(p); });
  const ConnId conn = world_.network().new_conn();
  client_send(net::ProtoKind::kSshKeystroke, "whoami\n", conn);
  world_.simulator().run_for(SimDuration::seconds(2));
  ASSERT_EQ(client_rx_.size(), 1u);
  ASSERT_GE(logger.entries().size(), 2u);
  EXPECT_EQ(logger.entries()[0].dir, net::PacketTap::Direction::kForward);
  EXPECT_EQ(logger.entries()[1].dir, net::PacketTap::Direction::kReverse);
}

TEST_F(RitmTest, OffensiveVmiReadsVictimProcessList) {
  auto table = installer_->ritm()->introspect_victim();
  ASSERT_TRUE(table.is_ok()) << table.status().to_string();
  EXPECT_EQ(table->identity.hostname, "guest0");
  bool saw_sshd = false;
  for (const auto& p : table->procs) saw_sshd |= (p.name == "sshd");
  EXPECT_TRUE(saw_sshd);
}

TEST_F(RitmTest, VmiMonitorSpotsNewVictimProcesses) {
  VmiMonitor monitor(&world_.simulator(), installer_->ritm());
  ASSERT_TRUE(monitor.snapshot().is_ok());
  nested_->os()->spawn("pg_dump", "/usr/bin/pg_dump payroll");
  ASSERT_TRUE(monitor.snapshot().is_ok());
  const auto fresh = monitor.new_processes_since_first();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], "pg_dump");
}

TEST_F(RitmTest, ParallelMaliciousOsRunsBesideVictim) {
  ParallelMaliciousOs::Options evil_opts;
  evil_opts.memory_mb = 16;  // fits the small test GuestX arena
  ParallelMaliciousOs evil(installer_->ritm(), evil_opts);
  ASSERT_TRUE(evil.deploy().is_ok());
  ASSERT_TRUE(evil.deployed());
  EXPECT_EQ(evil.vm()->parent(), installer_->rootkit_vm());
  EXPECT_EQ(evil.vm()->layer(), hv::Layer::kL2);
  // Victim untouched, phishing service reachable.
  EXPECT_EQ(nested_->state(), vmm::VmState::kRunning);
  net::Packet req;
  req.conn = world_.network().new_conn();
  req.kind = net::ProtoKind::kHttpRequest;
  req.src = net::NetAddr{"mark", Port(40000)};
  req.reply_to = req.src;
  req.wire_bytes = 120;
  req.payload = "GET /login";
  world_.network().send(net::NetAddr{evil.vm()->node_name(), Port(8080)}, req);
  world_.simulator().run_for(SimDuration::seconds(2));
  EXPECT_EQ(evil.phishing_requests_served(), 1u);
}

TEST_F(RitmTest, ActiveServiceDropsMatchingEmail) {
  PacketTamperer tamperer;
  tamperer.add_rule(make_email_dropper("ACME-MERGER"));
  installer_->ritm()->add_tap(&tamperer);
  int delivered = 0;
  // Count what reaches the victim's mail port... reuse port 22 service.
  const ConnId conn = world_.network().new_conn();
  (void)delivered;
  client_send(net::ProtoKind::kSmtpMail, "Subject: lunch?", conn);
  client_send(net::ProtoKind::kSmtpMail, "Subject: ACME-MERGER terms", conn);
  world_.simulator().run_for(SimDuration::seconds(2));
  EXPECT_EQ(tamperer.stats()[0].dropped, 1u);
  EXPECT_EQ(tamperer.stats()[0].matched, 1u);
}

TEST_F(RitmTest, ActiveServiceRewritesWebResponses) {
  PacketTamperer tamperer;
  tamperer.add_rule(make_web_response_rewriter("balance: $5000",
                                               "balance: $0"));
  installer_->ritm()->add_tap(&tamperer);
  (void)world_.network().bind(net::NetAddr{"victim-laptop", Port(50000)},
                              [&](net::Packet p) { client_rx_.push_back(p); });
  const ConnId conn = world_.network().new_conn();
  client_send(net::ProtoKind::kHttpRequest, "GET /balance: $5000", conn);
  world_.simulator().run_for(SimDuration::seconds(2));
  ASSERT_EQ(client_rx_.size(), 1u);
  EXPECT_NE(client_rx_[0].payload.find("balance: $0"), std::string::npos);
  EXPECT_EQ(client_rx_[0].payload.find("balance: $5000"), std::string::npos);
  EXPECT_EQ(tamperer.stats()[0].rewritten, 1u);
}

}  // namespace
}  // namespace csk::cloudskulk
