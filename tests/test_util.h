// Shared helpers for building small, fast simulation fixtures.
#pragma once

#include <string>

#include "vmm/host.h"
#include "vmm/machine_config.h"

namespace csk::testing {

/// A host tuned for test speed: small boot working sets and an aggressive
/// ksmd so merges settle within short simulated waits.
inline vmm::World::HostConfig small_host_config(
    const std::string& name = "host0") {
  vmm::World::HostConfig cfg;
  cfg.name = name;
  cfg.boot_touched_mib = 8;
  cfg.ksm.pages_per_scan = 4000;
  cfg.ksm.scan_interval = SimDuration::millis(10);
  return cfg;
}

/// A small but fully featured guest: one disk, one user netdev with an
/// SSH hostfwd, a telnet monitor.
inline vmm::MachineConfig small_vm_config(const std::string& name = "guest0",
                                          std::uint64_t memory_mb = 64,
                                          std::uint16_t monitor_port = 5555,
                                          std::uint16_t ssh_host_port = 2222) {
  vmm::MachineConfig cfg;
  cfg.name = name;
  cfg.memory_mb = memory_mb;
  cfg.vcpus = 1;
  cfg.drives.push_back({name + ".qcow2", "qcow2", 20480});
  vmm::NetdevConfig nd;
  if (ssh_host_port != 0) {
    nd.hostfwd.push_back({ssh_host_port, 22});
  }
  cfg.netdevs.push_back(nd);
  cfg.monitor.telnet_port = monitor_port;
  return cfg;
}

}  // namespace csk::testing
