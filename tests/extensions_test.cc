// Tests for the extension features beyond the paper's headline results:
// the L2-side timing probe and its §VI-A defeat, the §VI-D synchronous
// write-mirroring evasion (and its cost), migrate_cancel, write observers,
// cross-host migration, and known detector limitations (popular files).
#include <gtest/gtest.h>

#include "cloudskulk/installer.h"
#include "cloudskulk/services/sync_mirror.h"
#include "guestos/costs.h"
#include "detect/dedup_detector.h"
#include "detect/l2_probe.h"
#include "test_util.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"

namespace csk {
namespace {

using cloudskulk::CloudSkulkInstaller;
using cloudskulk::InstallerOptions;
using testing::small_host_config;
using testing::small_vm_config;

// --------------------------------------------------- L2-side timing probe

class GuestProbeTest : public ::testing::Test {
 protected:
  GuestProbeTest() {
    auto cfg = small_host_config();
    cfg.boot_touched_mib = 4;
    host_ = world_.make_host(cfg);
  }

  vmm::VirtualMachine* install_and_get_victim() {
    host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
    InstallerOptions opts;
    opts.rootkit_boot_touched_mib = 4;
    installer_ = std::make_unique<CloudSkulkInstaller>(host_, opts);
    CSK_CHECK(installer_->install().succeeded);
    return installer_->nested_vm();
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
  std::unique_ptr<CloudSkulkInstaller> installer_;
};

TEST_F(GuestProbeTest, OrdinaryGuestLooksSingleLevel) {
  vmm::VirtualMachine* vm =
      host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  detect::GuestTimingProbe probe(&world_.timing());
  const auto report = probe.run(*vm);
  EXPECT_EQ(report.verdict, detect::GuestProbeVerdict::kLooksSingleLevel)
      << report.explanation;
}

TEST_F(GuestProbeTest, NestedVictimShowsTheTimingFingerprint) {
  vmm::VirtualMachine* victim = install_and_get_victim();
  detect::GuestTimingProbe probe(&world_.timing());
  const auto report = probe.run(*victim);
  EXPECT_EQ(report.verdict, detect::GuestProbeVerdict::kNestedSuspected)
      << report.explanation;
  // Exit-heavy probes blow past expectations; arithmetic stays flat.
  for (const auto& r : report.readings) {
    if (r.exit_heavy) {
      EXPECT_GT(r.ratio, 3.0) << r.op;
    } else {
      EXPECT_NEAR(r.ratio, 1.0, 0.05) << r.op;
    }
  }
}

TEST_F(GuestProbeTest, AttackerTscScalingDefeatsTheNaiveProbe) {
  // §VI-A: "timing measurements in L2 can be ... manipulated by attackers
  // from L1". Scale the victim's clock so pipe latency reads single-level.
  vmm::VirtualMachine* victim = install_and_get_victim();
  const double scale =
      world_.timing().price(guestos::pipe_latency_cost(), hv::Layer::kL1) /
      world_.timing().price(guestos::pipe_latency_cost(), hv::Layer::kL2);
  victim->set_tsc_scaling(scale);

  detect::GuestTimingProbe probe(&world_.timing());
  const auto report = probe.run(*victim);
  EXPECT_NE(report.verdict, detect::GuestProbeVerdict::kNestedSuspected);
  // …but uniform dilation warps the arithmetic cross-check, so a careful
  // probe notices the clock itself is lying.
  EXPECT_EQ(report.verdict, detect::GuestProbeVerdict::kClockTampering)
      << report.explanation;
}

TEST_F(GuestProbeTest, TscScalingMustBePositive) {
  vmm::VirtualMachine* vm =
      host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  EXPECT_DEATH(vm->set_tsc_scaling(0.0), "positive");
  vm->set_tsc_scaling(0.5);
  EXPECT_EQ(vm->guest_observed(SimDuration::micros(10)).ns(),
            SimDuration::micros(5).ns());
}

// -------------------------------------------------------- write observers

TEST(WriteObserverTest, SeesEveryWriteWithContent) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace as(&phys, 16, "a");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  as.set_write_observer([&](Gfn gfn, const mem::PageData& data) {
    seen.emplace_back(gfn.value(), data.hash.value);
  });
  as.write_page(Gfn(3), mem::PageData::synthetic(ContentHash{7}));
  as.write_page(Gfn(5), mem::PageData::synthetic(ContentHash{9}));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::uint64_t, std::uint64_t>{3, 7}));
  EXPECT_EQ(seen[1], (std::pair<std::uint64_t, std::uint64_t>{5, 9}));
  as.clear_write_observer();
  as.write_page(Gfn(6), mem::PageData::synthetic(ContentHash{1}));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(WriteObserverTest, ViewObserverSeesViewGfns) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace parent(&phys, 64, "parent");
  mem::AddressSpace view(&parent, {Gfn(40), Gfn(41)}, "view");
  std::vector<std::uint64_t> gfns;
  view.set_write_observer(
      [&](Gfn gfn, const mem::PageData&) { gfns.push_back(gfn.value()); });
  view.write_page(Gfn(1), mem::PageData::synthetic(ContentHash{1}));
  // A direct parent write does not cross the view's protection.
  parent.write_page(Gfn(40), mem::PageData::synthetic(ContentHash{2}));
  EXPECT_EQ(gfns, (std::vector<std::uint64_t>{1}));
}

TEST(WriteObserverTest, SelfWriteRecursionAborts) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace as(&phys, 16, "a");
  as.set_write_observer([&](Gfn, const mem::PageData&) {
    as.write_page(Gfn(0), mem::PageData::zero());
  });
  EXPECT_DEATH(as.write_page(Gfn(1), mem::PageData::zero()), "re-entered");
}

TEST(WriteObserverTest, DoubleInstallAborts) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace as(&phys, 16, "a");
  as.set_write_observer([](Gfn, const mem::PageData&) {});
  EXPECT_DEATH(as.set_write_observer([](Gfn, const mem::PageData&) {}),
               "already");
}

// ------------------------------------------------- sync-mirror (§VI-D)

class SyncMirrorTest : public ::testing::Test {
 protected:
  SyncMirrorTest() {
    auto cfg = small_host_config();
    cfg.boot_touched_mib = 4;
    host_ = world_.make_host(cfg);
    host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
    InstallerOptions opts;
    opts.rootkit_boot_touched_mib = 4;
    installer_ = std::make_unique<CloudSkulkInstaller>(host_, opts);
    CSK_CHECK(installer_->install().succeeded);
    detector_cfg_.file_pages = 8;
    detector_cfg_.merge_wait = SimDuration::seconds(5);
    detector_ = std::make_unique<detect::DedupDetector>(host_, detector_cfg_);
    CSK_CHECK(detector_->seed_guest(installer_->nested_vm()->os()).is_ok());
    CSK_CHECK(detector_->seed_guest(installer_->rootkit_vm()->os()).is_ok());
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
  std::unique_ptr<CloudSkulkInstaller> installer_;
  detect::DedupDetectorConfig detector_cfg_;
  std::unique_ptr<detect::DedupDetector> detector_;
};

TEST_F(SyncMirrorTest, WithoutMirroringTheDetectorWins) {
  auto report = detector_->run(installer_->nested_vm()->os());
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->verdict, detect::DedupVerdict::kNestedVmDetected);
}

TEST_F(SyncMirrorTest, SynchronousMirroringEvadesTheDetector) {
  cloudskulk::SyncMirrorService mirror(installer_->ritm(), &world_.timing());
  ASSERT_TRUE(mirror.start().is_ok());
  ASSERT_TRUE(mirror.track_file(detector_cfg_.file_name).is_ok());
  auto report = detector_->run(installer_->nested_vm()->os());
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->verdict, detect::DedupVerdict::kNoNestedVm)
      << report->explanation;
  EXPECT_EQ(mirror.stats().pages_mirrored, detector_cfg_.file_pages);
}

TEST_F(SyncMirrorTest, EveryVictimWriteCostsATrap) {
  cloudskulk::SyncMirrorService mirror(installer_->ritm(), &world_.timing());
  ASSERT_TRUE(mirror.start().is_ok());
  installer_->nested_vm()->os()->dirty_pages_cyclic(500);
  EXPECT_EQ(mirror.stats().write_traps, 500u);
  // One nested exit each: ~23 µs at the calibrated multiplier.
  const double per_trap_us =
      mirror.stats().victim_overhead.micros_f() / 500.0;
  EXPECT_NEAR(per_trap_us, world_.timing().exit_ns(hv::Layer::kL2) / 1000.0,
              0.5);
}

TEST_F(SyncMirrorTest, OverheadScalesWithWriteRate) {
  cloudskulk::SyncMirrorService mirror(installer_->ritm(), &world_.timing());
  ASSERT_TRUE(mirror.start().is_ok());
  installer_->nested_vm()->set_dirty_page_source(
      [](SimDuration) { return 2000.0; });
  world_.simulator().run_for(SimDuration::seconds(10));
  installer_->nested_vm()->clear_dirty_page_source();
  // 2000 writes/s x ~23.2 µs/trap ~ 4.6 % victim slowdown.
  EXPECT_NEAR(mirror.overhead_fraction(SimDuration::seconds(10)), 0.046,
              0.01);
}

TEST_F(SyncMirrorTest, StopDetaches) {
  cloudskulk::SyncMirrorService mirror(installer_->ritm(), &world_.timing());
  ASSERT_TRUE(mirror.start().is_ok());
  mirror.stop();
  installer_->nested_vm()->os()->dirty_pages_cyclic(10);
  EXPECT_EQ(mirror.stats().write_traps, 0u);
  // Restartable.
  EXPECT_TRUE(mirror.start().is_ok());
}

TEST_F(SyncMirrorTest, TrackUncachedFileFails) {
  cloudskulk::SyncMirrorService mirror(installer_->ritm(), &world_.timing());
  ASSERT_TRUE(mirror.start().is_ok());
  EXPECT_FALSE(mirror.track_file("no-such-file").is_ok());
}

// -------------------------------------------------------- migrate_cancel

class CancelTest : public ::testing::Test {
 protected:
  CancelTest() {
    auto cfg = small_host_config();
    cfg.ksm_enabled = false;
    host_ = world_.make_host(cfg);
  }
  vmm::World world_;
  vmm::Host* host_ = nullptr;
};

TEST_F(CancelTest, CancelMidStreamResumesSource) {
  auto src = host_->launch_vm(small_vm_config("src", 32, 5555, 0)).value();
  auto dcfg = small_vm_config("dst", 32, 0, 0);
  dcfg.incoming_port = 4444;
  auto dst = host_->launch_vm(dcfg).value();
  vmm::QemuMonitor& mon = src->monitor();
  ASSERT_TRUE(mon.execute("migrate_set_speed 1m").is_ok());  // slow stream
  ASSERT_TRUE(mon.execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_for(SimDuration::seconds(3));  // mid-stream
  ASSERT_FALSE(mon.active_migration()->done());
  ASSERT_TRUE(mon.execute("migrate_cancel").is_ok());
  EXPECT_TRUE(mon.active_migration()->done());
  EXPECT_FALSE(mon.active_migration()->stats().succeeded);
  EXPECT_EQ(src->state(), vmm::VmState::kRunning);
  EXPECT_NE(src->os(), nullptr);
  EXPECT_EQ(dst->state(), vmm::VmState::kIncoming);
  // No stray events crash later.
  world_.simulator().run_for(SimDuration::seconds(60));
  const auto info = mon.execute("info migrate");
  ASSERT_TRUE(info.is_ok());
  EXPECT_NE(info.value().find("failed"), std::string::npos);
}

TEST_F(CancelTest, CancelAfterCompletionIsANoOp) {
  auto src = host_->launch_vm(small_vm_config("src", 16, 5555, 0)).value();
  auto dcfg = small_vm_config("dst", 16, 0, 0);
  dcfg.incoming_port = 4444;
  (void)host_->launch_vm(dcfg).value();
  vmm::QemuMonitor& mon = src->monitor();
  ASSERT_TRUE(mon.execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_until_idle();
  ASSERT_TRUE(mon.active_migration()->stats().succeeded);
  ASSERT_TRUE(mon.execute("migrate_cancel").is_ok());
  EXPECT_TRUE(mon.active_migration()->stats().succeeded);
}

TEST_F(CancelTest, PostCopyCapabilityThroughMonitorAndInstaller) {
  // Monitor capability plumbing.
  auto src = host_->launch_vm(small_vm_config("src", 16, 5555, 0)).value();
  auto dcfg = small_vm_config("dst", 16, 0, 0);
  dcfg.incoming_port = 4444;
  auto dst = host_->launch_vm(dcfg).value();
  vmm::QemuMonitor& mon = src->monitor();
  EXPECT_FALSE(mon.postcopy_enabled());
  ASSERT_TRUE(mon.execute("migrate_set_capability postcopy-ram on").is_ok());
  EXPECT_TRUE(mon.postcopy_enabled());
  EXPECT_FALSE(
      mon.execute("migrate_set_capability x-colo on").is_ok());
  ASSERT_TRUE(mon.execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_until_idle();
  ASSERT_TRUE(mon.active_migration()->stats().succeeded);
  // Post-copy signature: tiny downtime, exactly one bulk round.
  EXPECT_LT(mon.active_migration()->stats().downtime.ns(),
            SimDuration::millis(200).ns());
  EXPECT_EQ(dst->state(), vmm::VmState::kRunning);
}

TEST(PostCopyInstallerTest, InstallTimeBecomesWorkloadIndependent) {
  // §II-A extension end-to-end: the installer driving a post-copy
  // kidnapping of a busy victim finishes as fast as an idle one.
  vmm::World world;
  auto cfg = small_host_config();
  cfg.boot_touched_mib = 6;
  vmm::Host* host = world.make_host(cfg);
  auto* victim =
      host->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  victim->set_dirty_page_source([](SimDuration) { return 4500.0; });
  InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 4;
  opts.migration.post_copy = true;
  CloudSkulkInstaller installer(host, opts);
  const auto report = installer.install();
  ASSERT_TRUE(report.succeeded) << report.error;
  // Pre-copy against this dirty rate needs several extra rounds (see
  // integration_test); post-copy stays near the idle baseline.
  EXPECT_LT(report.migration.total_time.ns(), SimDuration::seconds(3).ns());
  EXPECT_LT(report.migration.downtime.ns(), SimDuration::millis(200).ns());
  EXPECT_EQ(installer.nested_vm()->state(), vmm::VmState::kRunning);
}

// ---------------------------------------------------- cross-host migration

TEST(CrossHostTest, MigrationBetweenTwoHostsConverges) {
  vmm::World world;
  auto cfg_a = small_host_config("host0");
  cfg_a.ksm_enabled = false;
  auto cfg_b = small_host_config("host1");
  cfg_b.ksm_enabled = false;
  vmm::Host* a = world.make_host(cfg_a);
  vmm::Host* b = world.make_host(cfg_b);
  net::LinkModel link;
  link.latency = SimDuration::micros(500);
  link.bytes_per_sec = 1.25e8;  // 1 GbE
  world.network().set_link("host0", "host1", link);

  auto src = a->launch_vm(small_vm_config("guest0", 32, 0, 0)).value();
  auto dcfg = small_vm_config("guest0", 32, 0, 0);
  dcfg.incoming_port = 4444;
  auto dst = b->launch_vm(dcfg).value();

  vmm::MigrationJob job(&world, src, net::NetAddr{"host1", Port(4444)}, {});
  job.start();
  world.simulator().run_until_idle();
  ASSERT_TRUE(job.stats().succeeded) << job.stats().error;
  EXPECT_EQ(dst->state(), vmm::VmState::kRunning);
  for (std::size_t g = 0; g < src->config().memory_pages(); ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)));
  }
}

TEST(CrossHostTest, SlowerLinkSlowsCrossHostMigration) {
  auto run = [](double bps) {
    vmm::World world;
    auto cfg_a = small_host_config("host0");
    cfg_a.ksm_enabled = false;
    auto cfg_b = small_host_config("host1");
    cfg_b.ksm_enabled = false;
    vmm::Host* a = world.make_host(cfg_a);
    vmm::Host* b = world.make_host(cfg_b);
    net::LinkModel link;
    link.bytes_per_sec = bps;
    world.network().set_link("host0", "host1", link);
    auto src = a->launch_vm(small_vm_config("g", 32, 0, 0)).value();
    auto dcfg = small_vm_config("g", 32, 0, 0);
    dcfg.incoming_port = 4444;
    (void)b->launch_vm(dcfg).value();
    vmm::MigrationConfig mcfg;
    mcfg.bandwidth_limit_bytes_per_sec = 1e12;  // path-gated
    vmm::MigrationJob job(&world, src, net::NetAddr{"host1", Port(4444)},
                          mcfg);
    job.start();
    world.simulator().run_until_idle();
    CSK_CHECK(job.stats().succeeded);
    return job.stats().total_time;
  };
  EXPECT_GT(run(2e6).ns(), 3 * run(2e7).ns());
}

// ------------------------------------- documented limitation: popular files

TEST(DetectorLimitationTest, PopularFileInAnotherVmIsAFalsePositive) {
  // If File-A is NOT unique — an identical copy sits in some unrelated
  // co-resident VM — step 2 keeps merging against that third copy and the
  // detector wrongly reports a nested VM. This is why §VI-B requires a
  // random, unique file (and why the vendor generates it fresh).
  vmm::World world;
  auto cfg = small_host_config();
  cfg.boot_touched_mib = 4;
  vmm::Host* host = world.make_host(cfg);
  auto* guest0 =
      host->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  auto* neighbor =
      host->launch_vm(small_vm_config("guest1", 64, 0, 0)).value();

  detect::DedupDetectorConfig dcfg;
  dcfg.file_pages = 8;
  dcfg.merge_wait = SimDuration::seconds(5);
  detect::DedupDetector detector(host, dcfg);
  ASSERT_TRUE(detector.seed_guest(guest0->os()).is_ok());
  ASSERT_TRUE(detector.seed_guest(neighbor->os()).is_ok());  // the "popular"
                                                             // copy
  auto report = detector.run(guest0->os());
  ASSERT_TRUE(report.is_ok());
  // No rootkit exists, yet the verdict says otherwise: a known limit of
  // the technique when file uniqueness is violated.
  EXPECT_EQ(report->verdict, detect::DedupVerdict::kNestedVmDetected);
}

// --------------------------------------------- KSM x migration interaction

TEST(KsmMigrationTest, MergedSourcePagesMigrateByContent) {
  // Two co-resident VMs share KSM-merged pages; migrating one must carry
  // the *content*, and writes at the destination must not disturb the
  // remaining sharer.
  vmm::World world;
  auto cfg = small_host_config();
  cfg.boot_touched_mib = 4;
  vmm::Host* host = world.make_host(cfg);
  auto* a = host->launch_vm(small_vm_config("a", 32, 0, 0)).value();
  auto* b = host->launch_vm(small_vm_config("b", 32, 0, 0)).value();
  // Identical content in both guests; let ksmd merge it.
  const mem::PageData shared = mem::PageData::synthetic(ContentHash{0xABCD});
  a->memory().write_page(Gfn(5000), shared);
  b->memory().write_page(Gfn(5000), shared);
  host->ksm().full_pass();
  host->ksm().full_pass();
  ASSERT_EQ(a->memory().translate(Gfn(5000)), b->memory().translate(Gfn(5000)));

  auto dcfg = small_vm_config("a", 32, 0, 0);
  dcfg.incoming_port = 4444;
  auto* dst = host->launch_vm(dcfg).value();
  vmm::MigrationJob job(&world, a, net::NetAddr{"host0", Port(4444)}, {});
  job.start();
  const SimTime deadline = world.simulator().now() + SimDuration::seconds(600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  ASSERT_TRUE(job.stats().succeeded) << job.stats().error;
  EXPECT_EQ(dst->memory().read_hash(Gfn(5000)), ContentHash{0xABCD});
  // Write at the destination: the co-resident sharer keeps its view.
  dst->memory().write_page(Gfn(5000),
                           mem::PageData::synthetic(ContentHash{0xEEEE}));
  EXPECT_EQ(b->memory().read_hash(Gfn(5000)), ContentHash{0xABCD});
}

}  // namespace
}  // namespace csk
