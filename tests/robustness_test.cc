// Robustness and edge-case coverage across modules: monitor input handling,
// migration corner cases, KSM stable-tree hygiene, rootkit teardown
// consequences, recon ordering.
#include <gtest/gtest.h>

#include "cloudskulk/installer.h"
#include "cloudskulk/recon.h"
#include "detect/dedup_detector.h"
#include "mem/ksm.h"
#include "net/port_forward.h"
#include "test_util.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"

namespace csk {
namespace {

using cloudskulk::CloudSkulkInstaller;
using cloudskulk::InstallerOptions;
using testing::small_host_config;
using testing::small_vm_config;

// ----------------------------------------------------------------- monitor

class MonitorRobustnessTest : public ::testing::Test {
 protected:
  MonitorRobustnessTest() {
    auto cfg = small_host_config();
    cfg.ksm_enabled = false;
    host_ = world_.make_host(cfg);
    vm_ = host_->launch_vm(small_vm_config()).value();
  }
  vmm::World world_;
  vmm::Host* host_ = nullptr;
  vmm::VirtualMachine* vm_ = nullptr;
};

TEST_F(MonitorRobustnessTest, EmptyAndWhitespaceCommandsAreNoOps) {
  EXPECT_TRUE(vm_->monitor().execute("").is_ok());
  EXPECT_TRUE(vm_->monitor().execute("    ").is_ok());
}

TEST_F(MonitorRobustnessTest, InfoMigrateWhileActive) {
  auto dcfg = small_vm_config("dst", 64, 0, 0);
  dcfg.incoming_port = 4444;
  (void)host_->launch_vm(dcfg).value();
  ASSERT_TRUE(vm_->monitor().execute("migrate_set_speed 1m").is_ok());
  ASSERT_TRUE(vm_->monitor().execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_for(SimDuration::seconds(2));
  const auto info = vm_->monitor().execute("info migrate");
  ASSERT_TRUE(info.is_ok());
  EXPECT_NE(info.value().find("active"), std::string::npos);
  // Let it finish cleanly afterwards.
  world_.simulator().run_until_idle();
  EXPECT_TRUE(vm_->monitor().active_migration()->stats().succeeded);
}

TEST_F(MonitorRobustnessTest, SecondMigrateReplacesAFinishedJob) {
  auto dcfg = small_vm_config("dst", 64, 0, 0);
  dcfg.incoming_port = 4444;
  (void)host_->launch_vm(dcfg).value();
  ASSERT_TRUE(vm_->monitor().execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_until_idle();
  ASSERT_TRUE(vm_->monitor().active_migration()->stats().succeeded);
  // The VM is now postmigrate; a second migrate must fail fast, not crash.
  ASSERT_TRUE(vm_->monitor().execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_until_idle();
  EXPECT_FALSE(vm_->monitor().active_migration()->stats().succeeded);
}

TEST_F(MonitorRobustnessTest, ReplacingAnActiveJobCancelsItsEvents) {
  auto dcfg = small_vm_config("dst", 64, 0, 0);
  dcfg.incoming_port = 4444;
  (void)host_->launch_vm(dcfg).value();
  ASSERT_TRUE(vm_->monitor().execute("migrate_set_speed 1m").is_ok());
  ASSERT_TRUE(vm_->monitor().execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_for(SimDuration::seconds(1));
  // Issue a new migrate mid-flight: the old MigrationJob is destroyed; its
  // pending pump/process events must not fire into freed memory.
  ASSERT_TRUE(vm_->monitor().execute("migrate_set_speed 32m").is_ok());
  ASSERT_TRUE(vm_->monitor().execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_until_idle();  // would crash on a dangling event
  SUCCEED();
}

TEST_F(MonitorRobustnessTest, UnknownCommandIsATypedError) {
  const auto r = vm_->monitor().execute("teleport host1");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(r.status().message().find("teleport"), std::string::npos);
}

TEST_F(MonitorRobustnessTest, MalformedMigrateUrisAreTypedErrors) {
  // Each failure names its code: callers (the installer's retry logic)
  // branch on it, so "some error" is not enough.
  EXPECT_EQ(vm_->monitor().execute("migrate").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(vm_->monitor().execute("migrate exec:cat").status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(vm_->monitor().execute("migrate tcp:").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(vm_->monitor().execute("migrate tcp::4444").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(vm_->monitor().execute("migrate tcp:host0:notaport").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(vm_->monitor().execute("migrate tcp:host0:99999").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(vm_->monitor().execute("migrate tcp:host0:0").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MonitorRobustnessTest, CommandsAfterQuitAreTypedErrors) {
  const VmId id = vm_->id();
  ASSERT_TRUE(vm_->monitor().execute("quit").is_ok());
  // Until the deferred teardown runs, the monitor still exists — but it
  // must refuse work, not touch a VM that is about to disappear.
  const auto info = vm_->monitor().execute("info status");
  ASSERT_FALSE(info.is_ok());
  EXPECT_EQ(info.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(vm_->monitor().execute("quit").status().code(),
            StatusCode::kFailedPrecondition);
  world_.simulator().run_until_idle();
  EXPECT_FALSE(host_->find_vm(id).is_ok());
}

TEST_F(MonitorRobustnessTest, StopDuringMigrationStillConverges) {
  auto dcfg = small_vm_config("dst", 64, 0, 0);
  dcfg.incoming_port = 4444;
  (void)host_->launch_vm(dcfg).value();
  ASSERT_TRUE(vm_->monitor().execute("migrate -d tcp:host0:4444").is_ok());
  world_.simulator().run_for(SimDuration::seconds(1));
  ASSERT_TRUE(vm_->monitor().execute("stop").is_ok());
  world_.simulator().run_until_idle();
  // A paused source is the easy case: migration completes.
  EXPECT_TRUE(vm_->monitor().active_migration()->stats().succeeded);
}

// --------------------------------------------------------------- migration

class MigrationEdgeTest : public ::testing::Test {
 protected:
  MigrationEdgeTest() {
    auto cfg = small_host_config();
    cfg.ksm_enabled = false;
    host_ = world_.make_host(cfg);
  }
  vmm::World world_;
  vmm::Host* host_ = nullptr;
};

TEST_F(MigrationEdgeTest, ContentToZeroTransitionPropagates) {
  auto* src = host_->launch_vm(small_vm_config("src", 16, 0, 0)).value();
  auto dcfg = small_vm_config("src", 16, 0, 0);
  dcfg.name = "dst";
  dcfg.incoming_port = 4444;
  auto* dst = host_->launch_vm(dcfg).value();

  src->memory().write_page(Gfn(3000),
                           mem::PageData::synthetic(ContentHash{0xAA}));
  vmm::MigrationConfig cfg;
  cfg.bandwidth_limit_bytes_per_sec = 2.0 * 1024 * 1024;  // slow: many rounds
  vmm::MigrationJob job(&world_, src, net::NetAddr{"host0", Port(4444)}, cfg);
  job.start();
  // Mid-stream, the guest zeroes the page (e.g. frees and scrubs it).
  world_.simulator().schedule_after(SimDuration::seconds(4), [&] {
    src->memory().write_page(Gfn(3000), mem::PageData::zero());
  });
  world_.simulator().run_until_idle();
  ASSERT_TRUE(job.stats().succeeded) << job.stats().error;
  EXPECT_TRUE(dst->memory().read_hash(Gfn(3000)).is_zero_page());
}

TEST_F(MigrationEdgeTest, TwoSimultaneousMigrationsShareTheHost) {
  auto* a = host_->launch_vm(small_vm_config("a", 16, 0, 0)).value();
  auto* b = host_->launch_vm(small_vm_config("b", 16, 0, 0)).value();
  auto da = small_vm_config("a", 16, 0, 0);
  da.incoming_port = 4444;
  auto db = small_vm_config("b", 16, 0, 0);
  db.incoming_port = 4445;
  auto* dst_a = host_->launch_vm(da).value();
  auto* dst_b = host_->launch_vm(db).value();

  vmm::MigrationJob job_a(&world_, a, net::NetAddr{"host0", Port(4444)}, {});
  vmm::MigrationJob job_b(&world_, b, net::NetAddr{"host0", Port(4445)}, {});
  job_a.start();
  job_b.start();
  world_.simulator().run_until_idle();
  ASSERT_TRUE(job_a.stats().succeeded) << job_a.stats().error;
  ASSERT_TRUE(job_b.stats().succeeded) << job_b.stats().error;
  EXPECT_EQ(dst_a->state(), vmm::VmState::kRunning);
  EXPECT_EQ(dst_b->state(), vmm::VmState::kRunning);
}

TEST_F(MigrationEdgeTest, IncomingVmRejectsSecondStream) {
  auto* s1 = host_->launch_vm(small_vm_config("s1", 16, 0, 0)).value();
  auto* s2 = host_->launch_vm(small_vm_config("s2", 16, 0, 0)).value();
  auto dcfg = small_vm_config("s1", 16, 0, 0);
  dcfg.incoming_port = 4444;
  (void)host_->launch_vm(dcfg).value();
  vmm::MigrationJob j1(&world_, s1, net::NetAddr{"host0", Port(4444)}, {});
  vmm::MigrationJob j2(&world_, s2, net::NetAddr{"host0", Port(4444)}, {});
  j1.start();
  j2.start();
  world_.simulator().run_until_idle();
  // Exactly one stream wins the destination; the other fails cleanly.
  EXPECT_NE(j1.stats().succeeded, j2.stats().succeeded);
  vmm::VirtualMachine* loser_src = j1.stats().succeeded ? s2 : s1;
  EXPECT_EQ(loser_src->state(), vmm::VmState::kRunning);
}

// --------------------------------------------------------------- KSM edges

TEST(KsmEdgeTest, StaleStableEntriesAreEvicted) {
  sim::Simulator sim;
  mem::MemTimingModel timing;
  timing.jitter_rel_stddev = 0.0;
  mem::HostPhysicalMemory phys(timing);
  mem::KsmConfig cfg;
  cfg.pages_per_scan = 100;
  mem::KsmDaemon ksm(&sim, &phys, cfg);

  auto a = std::make_unique<mem::AddressSpace>(&phys, 8, "a");
  auto b = std::make_unique<mem::AddressSpace>(&phys, 8, "b");
  a->write_page(Gfn(0), mem::PageData::synthetic(ContentHash{0x77}));
  b->write_page(Gfn(0), mem::PageData::synthetic(ContentHash{0x77}));
  ksm.register_region(a.get());
  ksm.register_region(b.get());
  ksm.full_pass();
  ksm.full_pass();
  ASSERT_EQ(ksm.shared_frames(), 1u);

  // Both sharers go away: the stable frame dies.
  ksm.unregister_region(a.get());
  ksm.unregister_region(b.get());
  a.reset();
  b.reset();
  EXPECT_EQ(ksm.shared_frames(), 0u);

  // New identical copies must merge again through a fresh stable node.
  mem::AddressSpace c(&phys, 8, "c");
  mem::AddressSpace d(&phys, 8, "d");
  c.write_page(Gfn(0), mem::PageData::synthetic(ContentHash{0x77}));
  d.write_page(Gfn(0), mem::PageData::synthetic(ContentHash{0x77}));
  ksm.register_region(&c);
  ksm.register_region(&d);
  ksm.full_pass();
  ksm.full_pass();
  EXPECT_EQ(c.translate(Gfn(0)), d.translate(Gfn(0)));
}

TEST(KsmEdgeTest, FullPassCounterAdvances) {
  sim::Simulator sim;
  mem::HostPhysicalMemory phys;
  mem::KsmDaemon ksm(&sim, &phys, {});
  mem::AddressSpace a(&phys, 8, "a");
  a.write_page(Gfn(0), mem::PageData::synthetic(ContentHash{1}));
  ksm.register_region(&a);
  const auto before = ksm.stats().full_passes;
  ksm.full_pass();
  EXPECT_GT(ksm.stats().full_passes, before);
}

TEST(KsmEdgeTest, ZeroPagesMergeLikeAnyContent) {
  sim::Simulator sim;
  mem::HostPhysicalMemory phys;
  mem::KsmDaemon ksm(&sim, &phys, {});
  mem::AddressSpace a(&phys, 8, "a");
  mem::AddressSpace b(&phys, 8, "b");
  // Materialized zero pages (explicitly scrubbed memory).
  a.write_page(Gfn(0), mem::PageData::zero());
  b.write_page(Gfn(0), mem::PageData::zero());
  ksm.register_region(&a);
  ksm.register_region(&b);
  ksm.full_pass();
  ksm.full_pass();
  EXPECT_EQ(a.translate(Gfn(0)), b.translate(Gfn(0)));
}

// -------------------------------------------------------- rootkit teardown

TEST(RootkitTeardownTest, KillingGuestXTakesTheVictimDownWithIt) {
  // The flip side of the kidnapping: once the victim lives inside GuestX,
  // an admin (or the attacker) killing that one QEMU process destroys the
  // tenant's machine — the hostage situation the paper implies.
  vmm::World world;
  auto cfg = small_host_config();
  cfg.boot_touched_mib = 4;
  vmm::Host* host = world.make_host(cfg);
  host->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 4;
  CloudSkulkInstaller installer(host, opts);
  ASSERT_TRUE(installer.install().succeeded);
  const VmId rootkit_id = installer.rootkit_vm()->id();

  int received = 0;
  ASSERT_TRUE(installer.nested_vm()
                  ->bind_guest_port(Port(22), [&](net::Packet) { ++received; })
                  .is_ok());
  ASSERT_TRUE(host->kill_vm(rootkit_id).is_ok());
  EXPECT_TRUE(host->vms().empty());

  // The victim's endpoint died with the nest.
  net::Packet p;
  p.conn = world.network().new_conn();
  p.src = {"laptop", Port(1)};
  p.reply_to = p.src;
  p.wire_bytes = 40;
  world.network().send({host->node_name(), Port(2222)}, p);
  world.simulator().run_for(SimDuration::seconds(1));
  EXPECT_EQ(received, 0);
  EXPECT_GT(world.network().stats().packets_dropped_unbound, 0u);
}

// ------------------------------------------------------------------- recon

TEST(ReconOrderingTest, NewestHistoryEntryWins) {
  vmm::World world;
  vmm::Host* host = world.make_host(small_host_config());
  auto old_cfg = small_vm_config("guest0", 64, 5555, 2222);
  // The operator relaunched the VM later with more RAM; history holds both.
  auto new_cfg = small_vm_config("guest0", 128, 5556, 2223);
  host->append_history(old_cfg.to_command_line());
  (void)host->launch_vm_cmdline(new_cfg.to_command_line()).value();
  cloudskulk::TargetRecon recon(host);
  auto report = recon.discover("guest0");
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->config.memory_mb, 128u);
}

TEST(ReconOrderingTest, DedupReportShapeIsConsistent) {
  vmm::World world;
  auto cfg = small_host_config();
  cfg.boot_touched_mib = 4;
  vmm::Host* host = world.make_host(cfg);
  auto* vm = host->launch_vm_cmdline(small_vm_config().to_command_line())
                 .value();
  detect::DedupDetectorConfig dcfg;
  dcfg.file_pages = 12;
  dcfg.merge_wait = SimDuration::seconds(5);
  detect::DedupDetector detector(host, dcfg);
  ASSERT_TRUE(detector.seed_guest(vm->os()).is_ok());
  auto report = detector.run(vm->os());
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->t0.us.size(), dcfg.file_pages);
  EXPECT_EQ(report->t1.us.size(), dcfg.file_pages);
  EXPECT_EQ(report->t2.us.size(), dcfg.file_pages);
  EXPECT_EQ(report->t0.summary.count, dcfg.file_pages);
  EXPECT_GE(report->t1_t2_separation, 0.0);
  EXPECT_FALSE(report->explanation.empty());
}

// ------------------------------------------------------ recovery edge cases

namespace recovery {

vmm::MigrationJob make_job(vmm::World& world, vmm::Host* host,
                           vmm::MigrationConfig cfg) {
  vmm::VirtualMachine* source =
      host->launch_vm(small_vm_config("src", 64)).value();
  auto dcfg = small_vm_config("dst", 64, 0, 0);
  dcfg.incoming_port = 4444;
  (void)host->launch_vm(dcfg).value();
  return vmm::MigrationJob(&world, source,
                           net::NetAddr{host->node_name(), Port(4444)}, cfg);
}

}  // namespace recovery

TEST(MigrationRecoveryRobustnessTest, DefaultConfigHasRecoveryDisabled) {
  const vmm::MigrationConfig cfg;
  EXPECT_FALSE(cfg.retry.retries_enabled());
  EXPECT_EQ(cfg.round_timeout, SimDuration::zero());
  EXPECT_EQ(cfg.chunk_timeout, SimDuration::zero());
  EXPECT_EQ(cfg.downtime_sla, SimDuration::zero());
  // The post-copy demand plane ships inert: no fault endpoint, no write
  // observer, no watchdog — a default run is bit-identical to the seed.
  EXPECT_FALSE(cfg.postcopy_demand_paging);
  EXPECT_EQ(cfg.postcopy_watchdog, SimDuration::zero());
  EXPECT_EQ(cfg.postcopy_prefetch, vmm::PostCopyPrefetch::kNone);
  EXPECT_EQ(cfg.postcopy_prefetch_window, 8);
  EXPECT_EQ(cfg.postcopy_fault_port, 4460);
  // Satellite of the same contract: the activation stall that used to be a
  // hard-coded 20 ms inside do_handoff() must keep that exact default.
  EXPECT_EQ(cfg.postcopy_activate_time, SimDuration::millis(20));
}

TEST(MigrationRecoveryRobustnessTest, AbortAfterCompletionIsHarmless) {
  vmm::World world;
  auto hcfg = small_host_config();
  hcfg.ksm_enabled = false;
  vmm::Host* host = world.make_host(hcfg);
  vmm::MigrationConfig cfg;
  cfg.retry.max_attempts = 3;
  auto job = recovery::make_job(world, host, cfg);
  job.start();
  world.simulator().run_until_idle();
  ASSERT_TRUE(job.stats().succeeded);
  const int attempts_before = job.stats().attempts;
  job.inject_abort("late abort");
  world.simulator().run_until_idle();
  EXPECT_TRUE(job.stats().succeeded);
  EXPECT_EQ(job.stats().attempts, attempts_before);
}

TEST(MigrationRecoveryRobustnessTest, ImpossibleRoundTimeoutExhaustsBudget) {
  vmm::World world;
  auto hcfg = small_host_config();
  hcfg.ksm_enabled = false;
  vmm::Host* host = world.make_host(hcfg);
  vmm::MigrationConfig cfg;
  cfg.retry.max_attempts = 2;
  cfg.round_timeout = SimDuration::millis(1);  // no round can finish in 1 ms
  auto job = recovery::make_job(world, host, cfg);
  job.start();
  world.simulator().run_until_idle();
  EXPECT_TRUE(job.stats().completed);
  EXPECT_FALSE(job.stats().succeeded);
  EXPECT_EQ(job.stats().attempts, 2);
  EXPECT_NE(job.stats().error.find("timeout"), std::string::npos);
}

TEST(MigrationRecoveryRobustnessTest, DowntimeSlaIsAccounted) {
  vmm::World world;
  auto hcfg = small_host_config();
  hcfg.ksm_enabled = false;
  vmm::Host* host = world.make_host(hcfg);
  vmm::MigrationConfig cfg;
  cfg.downtime_sla = SimDuration::seconds(30);  // generous: must be met
  auto job = recovery::make_job(world, host, cfg);
  job.start();
  world.simulator().run_until_idle();
  ASSERT_TRUE(job.stats().succeeded);
  EXPECT_TRUE(job.stats().downtime_sla_met);
  EXPECT_LE(job.stats().downtime, cfg.downtime_sla);
}

TEST(ForwarderRobustnessTest, InterruptWhenAlreadyStoppedIsSafe) {
  vmm::World world;
  (void)world.make_host(small_host_config());
  net::PortForwarder fwd(&world.network(), net::NetAddr{"host0", Port(2222)},
                         net::NetAddr{"guest0", Port(22)});
  // Never started: interrupt must not crash or schedule anything odd.
  fwd.interrupt();
  world.simulator().run_for(SimDuration::seconds(10));
  EXPECT_FALSE(fwd.running());
}

}  // namespace
}  // namespace csk
