// Campaign tests: the ROC/calibration math standalone, then the full
// DetectionCampaign on small populations — determinism across worker
// counts, checkpoint/resume byte-identity, calibration feedback into
// detector configs, and campaign.* observability.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/roc.h"
#include "obs/metrics.h"

namespace csk::campaign {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- ROC math

std::vector<ScoredSample> separable_samples() {
  // Clean cluster near 1, infected cluster near 8: perfectly separable.
  return {{0.9, false, true}, {1.0, false, true}, {1.2, false, true},
          {7.5, true, true},  {8.0, true, true},  {9.1, true, true}};
}

TEST(RocPointTest, CountsConfusionAtThreshold) {
  const RocPoint p = roc_point_at(separable_samples(), 3.0);
  EXPECT_EQ(p.tp, 3u);
  EXPECT_EQ(p.fp, 0u);
  EXPECT_EQ(p.tn, 3u);
  EXPECT_EQ(p.fn, 0u);
  EXPECT_DOUBLE_EQ(p.tpr, 1.0);
  EXPECT_DOUBLE_EQ(p.fpr, 0.0);
  EXPECT_DOUBLE_EQ(p.precision, 1.0);
}

TEST(RocPointTest, StrictInequalityAndInconclusiveExclusion) {
  std::vector<ScoredSample> samples = {{3.0, true, true},
                                       {3.0, false, true},
                                       {5.0, true, false}};  // inconclusive
  const RocPoint p = roc_point_at(samples, 3.0);
  // score > threshold is strict: both conclusive samples are *not* called.
  EXPECT_EQ(p.tp, 0u);
  EXPECT_EQ(p.fn, 1u);
  EXPECT_EQ(p.tn, 1u);
  EXPECT_EQ(p.fp, 0u);
}

TEST(ComputeRocTest, PerfectSeparationHasAucOne) {
  const RocCurve curve = compute_roc("dedup", separable_samples());
  EXPECT_DOUBLE_EQ(curve.auc, 1.0);
  EXPECT_EQ(curve.positives, 3u);
  EXPECT_EQ(curve.negatives, 3u);
  EXPECT_EQ(curve.inconclusive, 0u);
  // The derived grid covers call-everything through call-nothing.
  ASSERT_FALSE(curve.points.empty());
  EXPECT_DOUBLE_EQ(curve.points.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.points.back().tpr, 1.0);
}

TEST(ComputeRocTest, IndistinguishableScoresGiveHalfAuc) {
  // Identical score for both classes: no threshold separates them; the
  // curve is the (0,0)-(1,1) diagonal corner set, AUC 0.5.
  std::vector<ScoredSample> samples = {{2.0, true, true}, {2.0, false, true}};
  const RocCurve curve = compute_roc("x", samples);
  EXPECT_DOUBLE_EQ(curve.auc, 0.5);
}

TEST(ComputeRocTest, InconclusiveOnlySamplesYieldEmptyCurve) {
  std::vector<ScoredSample> samples = {{1.0, true, false},
                                       {2.0, false, false}};
  const RocCurve curve = compute_roc("x", samples);
  EXPECT_TRUE(curve.points.empty());
  EXPECT_EQ(curve.inconclusive, 2u);
  EXPECT_DOUBLE_EQ(curve.auc, 0.0);
}

TEST(CalibrateTest, PicksMaxTprUnderFprBudget) {
  const RocCurve curve = compute_roc("dedup", separable_samples());
  const OperatingPoint op = calibrate(curve, 0.01);
  EXPECT_TRUE(op.met_fpr_budget);
  EXPECT_DOUBLE_EQ(op.tpr, 1.0);
  EXPECT_DOUBLE_EQ(op.fpr, 0.0);
  // Threshold sits between the clean cluster (<=1.2) and infected (>=7.5).
  EXPECT_GT(op.threshold, 1.2);
  EXPECT_LT(op.threshold, 7.5);
}

TEST(CalibrateTest, TieBreaksTowardLargerThreshold) {
  // Two points with identical tpr/fpr: prefer the one calling less.
  RocCurve curve;
  curve.points = {roc_point_at(separable_samples(), 2.0),
                  roc_point_at(separable_samples(), 5.0)};
  const OperatingPoint op = calibrate(curve, 0.01);
  EXPECT_DOUBLE_EQ(op.threshold, 5.0);
}

TEST(CalibrateTest, FallsBackToSmallestFprWhenBudgetUnmeetable) {
  // Only a call-everything point swept: fpr 1.0 > any sane budget.
  RocCurve curve;
  curve.points = {roc_point_at(separable_samples(), 0.0)};
  const OperatingPoint op = calibrate(curve, 0.01);
  EXPECT_FALSE(op.met_fpr_budget);
  EXPECT_DOUBLE_EQ(op.fpr, 1.0);
}

TEST(CalibratedThresholdsTest, AppliesToDetectorConfigs) {
  CalibratedThresholds cal;
  cal.dedup_merged_ratio = 4.25;
  cal.probe_anomaly_ratio = 2.5;
  detect::DedupDetectorConfig dcfg;
  detect::GuestProbeConfig pcfg;
  cal.apply_to(&dcfg);
  cal.apply_to(&pcfg);
  EXPECT_DOUBLE_EQ(dcfg.merged_ratio_threshold, 4.25);
  EXPECT_DOUBLE_EQ(pcfg.anomaly_ratio, 2.5);
  const std::string json = cal.to_json().dump();
  EXPECT_NE(json.find("dedup_merged_ratio"), std::string::npos);
  EXPECT_NE(json.find("ensemble_min_votes"), std::string::npos);
}

// ------------------------------------------------------- full campaigns

CampaignConfig small_campaign(std::size_t population, int workers) {
  CampaignConfig cfg;
  cfg.population = population;
  cfg.workers = workers;
  cfg.root_seed = 0xCA41B7A7Eull;
  // Fast shards: tiny guests, short waits.
  cfg.scenario.boot_touched_mib = 4;
  cfg.scenario.guest_memory_mb = 64;
  cfg.scenario.file_pages_min = 8;
  cfg.scenario.file_pages_max = 16;
  cfg.scenario.merge_wait_min_s = 1.0;
  cfg.scenario.merge_wait_max_s = 3.0;
  return cfg;
}

TEST(DetectionCampaignTest, ReportIsByteIdenticalAcrossWorkerCounts) {
  const std::string one = DetectionCampaign(small_campaign(10, 1))
                              .run()
                              .deterministic_json();
  const std::string two = DetectionCampaign(small_campaign(10, 2))
                              .run()
                              .deterministic_json();
  const std::string eight = DetectionCampaign(small_campaign(10, 8))
                                .run()
                                .deterministic_json();
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(DetectionCampaignTest, RepeatedRunsAreByteIdenticalAndAuditClean) {
  auto cfg = small_campaign(8, 4);
  cfg.audit = true;
  DetectionCampaign campaign(cfg);
  const CampaignReport first = campaign.run();
  const CampaignReport second = campaign.run();
  EXPECT_EQ(first.deterministic_json(), second.deterministic_json());
  EXPECT_TRUE(first.fleet.audited);
  EXPECT_TRUE(first.fleet.audit_diffs.empty());
  EXPECT_EQ(first.fleet.failed_shards(), 0u);
}

TEST(DetectionCampaignTest, PopulationHasBothTruthsAndSaneAnalysis) {
  const CampaignReport report =
      DetectionCampaign(small_campaign(12, 4)).run();
  EXPECT_EQ(report.infected_shards + report.clean_shards, 12u);
  EXPECT_GT(report.infected_shards, 0u);
  EXPECT_GT(report.clean_shards, 0u);

  // The dedup detector is the paper's contribution: near-perfect
  // separation even across varied file sizes and merge waits.
  const auto& dedup = report.detectors.at("dedup");
  EXPECT_GE(dedup.roc.auc, 0.9);
  EXPECT_TRUE(dedup.operating.met_fpr_budget);
  // The calibrated ratio separates clean (~1) from merged (>~5) scores.
  EXPECT_GT(report.calibrated.dedup_merged_ratio, 1.0);

  // Evadable detectors can score arbitrarily badly against this population
  // — a TSC-scaling attacker pushes the L2 probe's score *below* clean
  // guests' (§VI-A: the measurement itself is attacker data), so even
  // sub-coin-flip AUC is legitimate. Only the [0,1] bound is structural.
  for (const auto& [name, eval] : report.detectors) {
    EXPECT_LE(eval.roc.auc, 1.0) << name;
    EXPECT_GE(eval.roc.auc, 0.0) << name;
  }
  EXPECT_GE(report.ensemble.roc.auc, 0.5);
  EXPECT_GE(report.calibrated.ensemble_min_votes, 1);
  EXPECT_LE(report.calibrated.ensemble_min_votes, 4);
  EXPECT_GT(report.mean_detection_latency_s, 0.0);
}

TEST(DetectionCampaignTest, InconclusiveRunsAreSetAsideNotClean) {
  auto cfg = small_campaign(12, 4);
  cfg.scenario.probe_stall_fraction = 1.0;  // every shard stalls
  const CampaignReport report = DetectionCampaign(cfg).run();
  // Dedup and probe degrade on every shard: 2 inconclusive runs each.
  EXPECT_EQ(report.inconclusive_runs, 24u);
  const auto& dedup = report.detectors.at("dedup");
  EXPECT_EQ(dedup.roc.positives + dedup.roc.negatives, 0u);
  EXPECT_EQ(dedup.roc.inconclusive, 12u);
  EXPECT_TRUE(dedup.roc.points.empty());
}

TEST(DetectionCampaignTest, PublishesCampaignCounters) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scoped(registry);
  const CampaignReport report =
      DetectionCampaign(small_campaign(8, 2)).run();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("campaign.shards{truth=infected}"),
            report.infected_shards);
  EXPECT_EQ(snap.counter_or("campaign.shards{truth=clean}"),
            report.clean_shards);
  EXPECT_GT(snap.gauge_or("campaign.auc{detector=dedup}", -1.0), 0.0);
}

class CampaignResumeTest : public ::testing::Test {
 protected:
  CampaignResumeTest() {
    dir_ = (fs::temp_directory_path() /
            ("csk_campaign_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~CampaignResumeTest() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CampaignResumeTest, ResumedReportMatchesUninterruptedBytes) {
  // Baseline: no checkpointing at all.
  const std::string baseline = DetectionCampaign(small_campaign(8, 2))
                                   .run()
                                   .deterministic_json();

  // Checkpointed run, cutting every 3 shards.
  auto ckpt_cfg = small_campaign(8, 2);
  ckpt_cfg.checkpoint.directory = dir_;
  ckpt_cfg.checkpoint.every_shards = 3;
  const CampaignReport checkpointed = DetectionCampaign(ckpt_cfg).run();
  EXPECT_EQ(checkpointed.deterministic_json(), baseline);
  EXPECT_GT(checkpointed.fleet.checkpoints_written, 0u);

  // Resume from the stored checkpoints with a fresh campaign object:
  // restored shards merge with re-run shards to the same bytes.
  DetectionCampaign resumed_campaign(ckpt_cfg);
  auto resumed = resumed_campaign.resume_from();
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_GT(resumed->fleet.resumed_shards, 0u);
  EXPECT_EQ(resumed->deterministic_json(), baseline);
}

TEST_F(CampaignResumeTest, ResumeWithoutCheckpointsIsNotFound) {
  auto cfg = small_campaign(4, 1);
  cfg.checkpoint.directory = dir_;
  DetectionCampaign campaign(cfg);
  EXPECT_FALSE(campaign.resume_from().is_ok());
}

}  // namespace
}  // namespace csk::campaign
