// Tests for the common utility layer: time, ids, status, rng, hash, stats.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/hash.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"

namespace csk {
namespace {

// ------------------------------------------------------------------- time

TEST(SimDurationTest, UnitConstructors) {
  EXPECT_EQ(SimDuration::micros(3).ns(), 3000);
  EXPECT_EQ(SimDuration::millis(2).ns(), 2000000);
  EXPECT_EQ(SimDuration::seconds(1).ns(), 1000000000);
  EXPECT_EQ(SimDuration::from_seconds(1.5).ns(), 1500000000);
  EXPECT_EQ(SimDuration::from_micros(2.25).ns(), 2250);
}

TEST(SimDurationTest, Arithmetic) {
  const SimDuration a = SimDuration::micros(10);
  const SimDuration b = SimDuration::micros(4);
  EXPECT_EQ((a + b).ns(), 14000);
  EXPECT_EQ((a - b).ns(), 6000);
  EXPECT_EQ((a * std::int64_t{3}).ns(), 30000);
  EXPECT_EQ((a / 2).ns(), 5000);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_DOUBLE_EQ(a.micros_f(), 10.0);
  EXPECT_DOUBLE_EQ(SimDuration::seconds(2).seconds_f(), 2.0);
}

TEST(SimDurationTest, ScalingByDouble) {
  EXPECT_EQ((SimDuration::micros(10) * 1.5).ns(), 15000);
}

TEST(SimDurationTest, Ordering) {
  EXPECT_LT(SimDuration::micros(1), SimDuration::micros(2));
  EXPECT_EQ(SimDuration::millis(1), SimDuration::micros(1000));
}

TEST(SimDurationTest, ToStringPicksUnits) {
  EXPECT_EQ(SimDuration::nanos(500).to_string(), "500ns");
  EXPECT_EQ(SimDuration::micros(3).to_string(), "3.00us");
  EXPECT_EQ(SimDuration::millis(12).to_string(), "12.00ms");
  EXPECT_EQ(SimDuration::seconds(26).to_string(), "26.00s");
}

TEST(SimTimeTest, PointArithmetic) {
  const SimTime t = SimTime::origin() + SimDuration::seconds(5);
  EXPECT_EQ(t.ns(), 5000000000);
  EXPECT_EQ((t - SimTime::origin()).ns(), 5000000000);
  EXPECT_GT(t, SimTime::origin());
}

// -------------------------------------------------------------------- ids

TEST(IdsTest, DefaultIsInvalid) {
  VmId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, VmId::invalid());
}

TEST(IdsTest, DistinctFamiliesAreDistinctTypes) {
  static_assert(!std::is_same_v<VmId, Pid>);
  static_assert(!std::is_convertible_v<VmId, Pid>);
}

TEST(IdsTest, AllocatorIsMonotonic) {
  IdAllocator<VmId> alloc;
  const VmId a = alloc.next();
  const VmId b = alloc.next();
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_EQ(alloc.issued(), 3u);  // next unissued value
}

TEST(IdsTest, Hashable) {
  std::unordered_set<VmId> set;
  set.insert(VmId(1));
  set.insert(VmId(1));
  set.insert(VmId(2));
  EXPECT_EQ(set.size(), 2u);
}

// ----------------------------------------------------------------- status

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = not_found("no VM with pid 4242");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.to_string(), "NOT_FOUND: no VM with pid 4242");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = invalid_argument("nope");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MacroPropagation) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return unavailable("down");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    CSK_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(outer(false).value(), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kUnavailable);
}

TEST(CheckTest, FailureAborts) {
  EXPECT_DEATH(CSK_CHECK_MSG(1 == 2, "math broke"), "math broke");
}

// -------------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(5.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.15);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(RngTest, DeriveSeedIsAPureFunction) {
  EXPECT_EQ(derive_seed(0xF1EE7ull, 3), derive_seed(0xF1EE7ull, 3));
  // Unlike fork(), derivation does not consume root-generator state: any
  // shard's seed is recoverable from (root, index) alone.
  EXPECT_EQ(derive_seed(7, 0), derive_seed(7, 0));
}

TEST(RngTest, DeriveSeedSeparatesStreamsAndRoots) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 256; ++stream) {
    seen.insert(derive_seed(0xABCDull, stream));
  }
  EXPECT_EQ(seen.size(), 256u) << "stream collision under one root";
  EXPECT_NE(derive_seed(1, 5), derive_seed(2, 5));
  // Consecutive streams must not yield correlated generators.
  Rng a(derive_seed(9, 0));
  Rng b(derive_seed(9, 1));
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ------------------------------------------------------------------- hash

TEST(HashTest, DeterministicAndContentSensitive) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
}

TEST(HashTest, ZeroBufferIsZeroPage) {
  std::vector<std::uint8_t> zeros(4096, 0);
  EXPECT_TRUE(fnv1a(std::span<const std::uint8_t>(zeros)).is_zero_page());
  std::vector<std::uint8_t> not_zeros(4096, 0);
  not_zeros[100] = 1;
  EXPECT_FALSE(fnv1a(std::span<const std::uint8_t>(not_zeros)).is_zero_page());
}

TEST(HashTest, CombineChangesValue) {
  const ContentHash h = fnv1a("base");
  EXPECT_NE(hash_combine(h, 1), h);
  EXPECT_NE(hash_combine(h, 1), hash_combine(h, 2));
  EXPECT_FALSE(hash_combine(ContentHash::zero_page(), 0).is_zero_page());
}

// ------------------------------------------------------------------ stats

TEST(StatsTest, RunningMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.1381, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.rel_stddev_pct(), 42.76, 0.1);
}

TEST(StatsTest, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(StatsTest, Percentiles) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(StatsTest, SeparationScoreDistinguishesPopulations) {
  std::vector<double> fast(50, 0.2), slow(50, 6.0);
  // Add small spread so pooled stddev is nonzero.
  for (std::size_t i = 0; i < fast.size(); ++i) {
    fast[i] += 0.01 * static_cast<double>(i % 5);
    slow[i] += 0.1 * static_cast<double>(i % 5);
  }
  EXPECT_GT(separation_score(fast, slow), 10.0);
  EXPECT_LT(separation_score(fast, fast), 0.01);
}

TEST(StatsTest, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(25.7, 1), "25.7");
}

}  // namespace
}  // namespace csk
