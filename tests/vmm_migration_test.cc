// Live-migration invariants (DESIGN.md §6): destination-equals-source,
// dirty-page retransmission, bandwidth throttling, downtime bounds,
// pre-copy convergence and the post-copy extension.
#include <gtest/gtest.h>

#include <limits>

#include "test_util.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"

namespace csk::vmm {
namespace {

using testing::small_host_config;
using testing::small_vm_config;

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    auto host_cfg = small_host_config();
    host_cfg.ksm_enabled = false;  // isolate migration from ksmd
    host_ = world_.make_host(host_cfg);
  }

  VirtualMachine* launch_source(std::uint64_t memory_mb = 32) {
    auto cfg = small_vm_config("src-vm", memory_mb, 0, 0);
    auto vm = host_->launch_vm(cfg);
    CSK_CHECK(vm.is_ok());
    return vm.value();
  }

  VirtualMachine* launch_dest(std::uint64_t memory_mb = 32,
                              std::uint16_t port = 4444) {
    auto cfg = small_vm_config("dst-vm", memory_mb, 0, 0);
    cfg.incoming_port = port;
    auto vm = host_->launch_vm(cfg);
    CSK_CHECK(vm.is_ok());
    return vm.value();
  }

  MigrationStats migrate(VirtualMachine* src, std::uint16_t port = 4444,
                         MigrationConfig cfg = {}) {
    MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(port)},
                     cfg);
    job.start();
    world_.simulator().run_until_idle();
    CSK_CHECK(job.done());
    return job.stats();
  }

  World world_;
  Host* host_ = nullptr;
};

TEST_F(MigrationTest, IdleMigrationSucceeds) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  const MigrationStats stats = migrate(src);
  EXPECT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(dst->state(), VmState::kRunning);
  EXPECT_EQ(src->state(), VmState::kPostMigrate);
  EXPECT_GE(stats.rounds, 1);
}

TEST_F(MigrationTest, DestinationMemoryEqualsSource) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  // Deterministic sentinel pages on top of the boot working set.
  for (int i = 0; i < 50; ++i) {
    src->memory().write_page(Gfn(1000 + i),
                             mem::PageData::synthetic(ContentHash{
                                 static_cast<std::uint64_t>(i) + 7}));
  }
  const std::size_t ram = src->config().memory_pages();
  std::vector<ContentHash> want(ram);
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)))
        << "page " << g << " diverged";
  }
}

TEST_F(MigrationTest, OsStateIsTransplanted) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  const Pid daemon = src->os()->spawn("tenant-db", "/usr/bin/tenant-db");
  ASSERT_TRUE(src->os()->fs().create_unique("payroll.db", 8192,
                                            src->os()->rng()).is_ok());
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(src->os(), nullptr);
  ASSERT_NE(dst->os(), nullptr);
  EXPECT_TRUE(dst->os()->find_process(daemon).is_ok());
  EXPECT_TRUE(dst->os()->fs().exists("payroll.db"));
}

TEST_F(MigrationTest, DirtiedPagesAreRetransmitted) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  // Steady dirtying during migration forces extra rounds.
  src->set_dirty_page_source([](SimDuration) { return 400.0; });
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_GT(stats.rounds, 1);
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)))
        << "page " << g << " lost an update";
  }
}

TEST_F(MigrationTest, BandwidthCapIsRespected) {
  VirtualMachine* src = launch_source();
  launch_dest();
  MigrationConfig cfg;
  cfg.bandwidth_limit_bytes_per_sec = 8.0 * 1024 * 1024;
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  const double effective_rate =
      static_cast<double>(stats.wire_bytes) / stats.total_time.seconds_f();
  EXPECT_LE(effective_rate, cfg.bandwidth_limit_bytes_per_sec * 1.05);
}

TEST_F(MigrationTest, LowerBandwidthTakesLonger) {
  VirtualMachine* a = launch_source();
  VirtualMachine* dst1 = launch_dest(32, 4444);
  (void)dst1;
  MigrationConfig slow;
  slow.bandwidth_limit_bytes_per_sec = 4.0 * 1024 * 1024;
  const MigrationStats s_slow = migrate(a, 4444, slow);
  ASSERT_TRUE(s_slow.succeeded);

  auto cfg2 = small_vm_config("src2", 32, 0, 0);
  VirtualMachine* b = host_->launch_vm(cfg2).value();
  auto dcfg2 = small_vm_config("dst2", 32, 0, 0);
  dcfg2.incoming_port = 5555;
  host_->launch_vm(dcfg2).value();
  MigrationConfig fast;
  fast.bandwidth_limit_bytes_per_sec = 32.0 * 1024 * 1024;
  const MigrationStats s_fast = migrate(b, 5555, fast);
  ASSERT_TRUE(s_fast.succeeded);
  EXPECT_GT(s_slow.total_time.ns(), 2 * s_fast.total_time.ns());
}

TEST_F(MigrationTest, DowntimeWithinConfiguredBound) {
  VirtualMachine* src = launch_source();
  launch_dest();
  src->set_dirty_page_source([](SimDuration) { return 200.0; });
  MigrationConfig cfg;
  cfg.max_downtime = SimDuration::millis(300);
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_FALSE(stats.forced_converged);
  // Downtime = final-round flush + device state; the estimate bounds the
  // flush, so allow the device-state constant on top.
  EXPECT_LE(stats.downtime.ns(),
            (cfg.max_downtime + cfg.device_state_time + SimDuration::millis(200)).ns());
}

TEST_F(MigrationTest, NonConvergentWorkloadHitsRoundCapButCompletes) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  // Dirty faster than an 8 MiB/s stream can drain: never converges.
  src->set_dirty_page_source([](SimDuration) { return 6000.0; });
  MigrationConfig cfg;
  cfg.bandwidth_limit_bytes_per_sec = 8.0 * 1024 * 1024;
  cfg.max_rounds = 12;
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_TRUE(stats.forced_converged);
  EXPECT_LE(stats.rounds, cfg.max_rounds + 1);
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)),
              src->memory().read_hash(Gfn(g)));
  }
}

TEST_F(MigrationTest, ZeroPagesRideTheCheapPath) {
  VirtualMachine* src = launch_source();
  launch_dest();
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded);
  EXPECT_GT(stats.zero_pages, 0u);
  // Wire bytes must be far below "every page at 4 KiB".
  const std::uint64_t naive =
      src->config().memory_pages() * (mem::kPageSize + 8);
  EXPECT_LT(stats.wire_bytes, naive / 2);
}

TEST_F(MigrationTest, MismatchedDestinationFailsAndSourceKeepsRunning) {
  VirtualMachine* src = launch_source(32);
  auto bad = small_vm_config("dst-vm", 64, 0, 0);  // wrong RAM size
  bad.incoming_port = 4444;
  host_->launch_vm(bad).value();
  const MigrationStats stats = migrate(src);
  EXPECT_FALSE(stats.succeeded);
  EXPECT_NE(stats.error.find("mismatch"), std::string::npos);
  EXPECT_EQ(src->state(), VmState::kRunning);
  EXPECT_NE(src->os(), nullptr);
}

TEST_F(MigrationTest, NoListenerFailsIdleOut) {
  VirtualMachine* src = launch_source();
  MigrationConfig cfg;
  MigrationJob job(&world_, src,
                   net::NetAddr{host_->node_name(), Port(4711)}, cfg);
  job.start();
  // Chunks drop on the floor; drive for a while — the job cannot complete.
  world_.simulator().run_for(SimDuration::seconds(30));
  EXPECT_FALSE(job.done());
  EXPECT_GT(world_.network().stats().packets_dropped_unbound, 0u);
}

TEST_F(MigrationTest, PausedSourceMigrates) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  ASSERT_TRUE(src->pause().is_ok());
  const MigrationStats stats = migrate(src);
  EXPECT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(dst->state(), VmState::kRunning);
}

TEST_F(MigrationTest, ShutdownSourceRefusesToMigrate) {
  VirtualMachine* src = launch_source();
  launch_dest();
  src->shutdown();
  const MigrationStats stats = migrate(src);
  EXPECT_FALSE(stats.succeeded);
}

TEST_F(MigrationTest, ThroughForwarderChainLikeThePaper) {
  // HOST:AAAA -> forwarder -> HOST:BBBB listener (single-host relay).
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest(32, 4445);  // listens on BBBB
  net::PortForwarder relay(&world_.network(),
                           net::NetAddr{host_->node_name(), Port(4444)},
                           net::NetAddr{host_->node_name(), Port(4445)});
  ASSERT_TRUE(relay.start().is_ok());
  const MigrationStats stats = migrate(src, 4444);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(dst->state(), VmState::kRunning);
  EXPECT_GT(relay.stats().forwarded, 0u);
}

TEST_F(MigrationTest, MonitorDrivenMigration) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  QemuMonitor& mon = src->monitor();
  ASSERT_TRUE(mon.execute("migrate_set_speed 32m").is_ok());
  ASSERT_TRUE(
      mon.execute("migrate -d tcp:" + host_->node_name() + ":4444").is_ok());
  world_.simulator().run_until_idle();
  ASSERT_NE(mon.active_migration(), nullptr);
  EXPECT_TRUE(mon.active_migration()->stats().succeeded);
  EXPECT_EQ(dst->state(), VmState::kRunning);
  const auto info = mon.execute("info migrate");
  ASSERT_TRUE(info.is_ok());
  EXPECT_NE(info.value().find("completed"), std::string::npos);
}

TEST_F(MigrationTest, PostCopyMovesExecutionImmediately) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(dst->state(), VmState::kRunning);
  // Post-copy downtime is a small constant, far below pre-copy totals.
  EXPECT_LT(stats.downtime.ns(), SimDuration::millis(200).ns());
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)));
  }
}

TEST_F(MigrationTest, PostCopyPreservesDestinationWrites) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  job.start();
  // Let the handoff happen, then write at the (running) destination while
  // the background copy is still streaming.
  world_.simulator().run_for(cfg.setup_time + SimDuration::millis(200));
  ASSERT_EQ(dst->state(), VmState::kRunning);
  dst->memory().write_page(Gfn(2000),
                           mem::PageData::synthetic(ContentHash{0xFEED}));
  world_.simulator().run_until_idle();
  ASSERT_TRUE(job.stats().succeeded) << job.stats().error;
  EXPECT_EQ(dst->memory().read_hash(Gfn(2000)), ContentHash{0xFEED});
}

// --- golden digests: fault-free migrations pinned against the seed build.
// The demand-paging engine must leave default behavior bit-identical; these
// literals were captured from the pre-engine tree (same fixture, same
// configs) and any drift is a regression, not a re-baseline.

TEST_F(MigrationTest, GoldenPreCopyDigestMatchesSeed) {
  VirtualMachine* src = launch_source();
  launch_dest();
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(stats.total_time.ns(), 832075194);
  EXPECT_EQ(stats.downtime.ns(), 80000000);
  EXPECT_EQ(stats.rounds, 2);
  EXPECT_EQ(stats.pages_transferred, 2049u);
  EXPECT_EQ(stats.zero_pages, 6143u);
  EXPECT_EQ(stats.wire_bytes, 8458240u);
}

TEST_F(MigrationTest, GoldenPostCopyDigestMatchesSeed) {
  VirtualMachine* src = launch_source();
  launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(stats.total_time.ns(), 752131855);
  EXPECT_EQ(stats.downtime.ns(), 100000000);  // 80 ms device + 20 ms activate
  EXPECT_EQ(stats.rounds, 1);
  EXPECT_EQ(stats.pages_transferred, 2049u);
  EXPECT_EQ(stats.zero_pages, 6143u);
  EXPECT_EQ(stats.wire_bytes, 8458304u);
  // The demand plane stayed inert at defaults.
  EXPECT_EQ(stats.remote_faults, 0u);
  EXPECT_EQ(stats.remote_faults_served, 0u);
  EXPECT_EQ(stats.prefetch_pages, 0u);
  EXPECT_TRUE(stats.remote_fault_latency_ms.empty());
  EXPECT_EQ(stats.postcopy_outcome, PostCopyOutcome::kCompleted);
  EXPECT_TRUE(stats.postcopy_report.is_ok());
}

TEST_F(MigrationTest, PostCopyActivateTimeIsConfigurable) {
  VirtualMachine* src = launch_source();
  launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  cfg.postcopy_activate_time = SimDuration::millis(50);
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(stats.downtime.ns(),
            (cfg.device_state_time + SimDuration::millis(50)).ns());
}

TEST_F(MigrationTest, BandwidthLimitClampsToFloorInsteadOfAborting) {
  VirtualMachine* src = launch_source();
  launch_dest();
  MigrationConfig cfg;
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  // A factor-0 bandwidth collapse lands here as a zero cap; the old
  // CSK_CHECK aborted the whole process mid-campaign.
  job.set_bandwidth_limit(0.0);
  EXPECT_EQ(job.bandwidth_limit(), 64.0 * 1024);
  job.set_bandwidth_limit(-5.0);
  EXPECT_EQ(job.bandwidth_limit(), 64.0 * 1024);
  job.set_bandwidth_limit(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(job.bandwidth_limit(), 64.0 * 1024);
  job.set_bandwidth_limit(8.0 * 1024 * 1024);
  EXPECT_EQ(job.bandwidth_limit(), 8.0 * 1024 * 1024);
  job.start();
  world_.simulator().run_until_idle();
  EXPECT_TRUE(job.stats().succeeded) << job.stats().error;
}

// --- post-copy demand paging ---

TEST_F(MigrationTest, DemandPagingServesReadTouches) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  cfg.postcopy_demand_paging = true;
  cfg.bandwidth_limit_bytes_per_sec = 2.0 * 1024 * 1024;  // slow background
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  // Sentinel far from the start of RAM, so the slow background copy will
  // not have reached it when the touch lands.
  const Gfn hot(7000);
  src->memory().write_page(hot, mem::PageData::synthetic(ContentHash{0xABCD}));
  job.start();
  world_.simulator().run_for(cfg.setup_time + SimDuration::millis(150));
  ASSERT_EQ(dst->state(), VmState::kRunning);
  job.postcopy_touch(hot);
  world_.simulator().run_until_idle();
  const MigrationStats& stats = job.stats();
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(stats.remote_faults, 1u);
  EXPECT_EQ(stats.remote_faults_served, 1u);
  ASSERT_EQ(stats.remote_fault_latency_ms.size(), 1u);
  EXPECT_GT(stats.remote_fault_latency_ms[0], 0.0);
  EXPECT_EQ(stats.remote_fault_summary.count, 1u);
  // The demanded page was served out of band, far before the background
  // copy would have reached gfn 7000 at 2 MiB/s.
  EXPECT_LT(stats.remote_fault_latency_ms[0], 1000.0);
  EXPECT_EQ(dst->memory().read_hash(hot), ContentHash{0xABCD});
}

TEST_F(MigrationTest, DemandPagingObservesDestinationWrites) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  cfg.postcopy_demand_paging = true;
  cfg.bandwidth_limit_bytes_per_sec = 2.0 * 1024 * 1024;
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  job.start();
  world_.simulator().run_for(cfg.setup_time + SimDuration::millis(150));
  ASSERT_EQ(dst->state(), VmState::kRunning);
  // A guest write to a not-yet-received page goes through the write
  // observer and raises a write fault.
  dst->memory().write_page(Gfn(7100),
                           mem::PageData::synthetic(ContentHash{0xFEED}));
  world_.simulator().run_until_idle();
  const MigrationStats& stats = job.stats();
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_GE(stats.remote_faults, 1u);
  // The guest's own write supersedes the demanded content.
  EXPECT_EQ(dst->memory().read_hash(Gfn(7100)), ContentHash{0xFEED});
  EXPECT_EQ(stats.remote_faults_served, stats.remote_faults);
}

TEST_F(MigrationTest, LinearPrefetchSuppressesSequentialFaults) {
  auto run = [&](PostCopyPrefetch policy, const char* src_name,
                 const char* dst_name, std::uint16_t port) {
    auto scfg = small_vm_config(src_name, 32, 0, 0);
    VirtualMachine* src = host_->launch_vm(scfg).value();
    auto dcfg = small_vm_config(dst_name, 32, 0, 0);
    dcfg.incoming_port = port;
    host_->launch_vm(dcfg).value();
    MigrationConfig cfg;
    cfg.post_copy = true;
    cfg.postcopy_demand_paging = true;
    cfg.postcopy_prefetch = policy;
    cfg.postcopy_prefetch_window = 16;
    cfg.bandwidth_limit_bytes_per_sec = 2.0 * 1024 * 1024;
    MigrationJob job(&world_, src,
                     net::NetAddr{host_->node_name(), Port(port)}, cfg);
    job.start();
    world_.simulator().run_for(cfg.setup_time + SimDuration::millis(150));
    // A sequential scan: exactly the access pattern readahead predicts.
    for (int i = 0; i < 16; ++i) {
      job.postcopy_touch(Gfn(7200 + i));
      world_.simulator().run_for(SimDuration::millis(20));
    }
    world_.simulator().run_until_idle();
    CSK_CHECK(job.stats().succeeded);
    return job.stats().remote_faults;
  };
  const std::uint64_t faults_none =
      run(PostCopyPrefetch::kNone, "srcA", "dstA", 4450);
  const std::uint64_t faults_linear =
      run(PostCopyPrefetch::kLinear, "srcB", "dstB", 4451);
  EXPECT_EQ(faults_none, 16u);
  EXPECT_LT(faults_linear, faults_none / 2);
}

// --- stranded-guest semantics: the watchdog never lets a post-copy job
// --- hang, and never lets it "succeed" with missing pages.

TEST_F(MigrationTest, WatchdogCompletesFromInflightSet) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  cfg.postcopy_watchdog = SimDuration::seconds(1);
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  job.start();
  world_.simulator().run_for(cfg.setup_time + SimDuration::millis(100));
  ASSERT_EQ(dst->state(), VmState::kRunning);
  // Cut delivery: everything sent from now on is dropped on the wire, but
  // the source keeps pumping — the whole remainder of RAM ends up in the
  // in-flight side table (the receive ring the watchdog salvages from).
  bool cut = true;
  world_.network().set_fault_hook(
      [&cut](const net::Packet&, const std::string&, const std::string&) {
        net::FaultDecision d;
        d.drop = cut;
        return d;
      });
  world_.simulator().run_until_idle();
  world_.network().set_fault_hook(nullptr);
  const MigrationStats& stats = job.stats();
  ASSERT_TRUE(stats.completed);
  EXPECT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(stats.postcopy_outcome, PostCopyOutcome::kCompletedFromInflight);
  EXPECT_GT(stats.inflight_pages_salvaged, 0u);
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)))
        << "page " << g;
  }
}

TEST_F(MigrationTest, WatchdogRollsBackUndivergedGuest) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  cfg.postcopy_watchdog = SimDuration::millis(300);
  cfg.bandwidth_limit_bytes_per_sec = 2.0 * 1024 * 1024;  // slow: pages owed
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  job.start();
  world_.simulator().run_for(cfg.setup_time + SimDuration::millis(100));
  ASSERT_EQ(dst->state(), VmState::kRunning);
  // Source link dies; at 2 MiB/s most of RAM is still owed, far more than
  // the ~300 ms of in-flight salvage can cover.
  world_.network().set_fault_hook(
      [](const net::Packet&, const std::string&, const std::string&) {
        net::FaultDecision d;
        d.drop = true;
        return d;
      });
  world_.simulator().run_until_idle();
  world_.network().set_fault_hook(nullptr);
  const MigrationStats& stats = job.stats();
  ASSERT_TRUE(stats.completed);
  EXPECT_FALSE(stats.succeeded);
  EXPECT_EQ(stats.postcopy_outcome, PostCopyOutcome::kRecoveredSourceResume);
  EXPECT_TRUE(stats.postcopy_report.is_ok());  // recovery, not data loss
  // Execution rolled back: the source runs its OS again, the destination
  // stepped aside.
  EXPECT_EQ(src->state(), VmState::kRunning);
  EXPECT_NE(src->os(), nullptr);
  EXPECT_EQ(dst->state(), VmState::kPostMigrate);
  EXPECT_EQ(dst->os(), nullptr);
}

TEST_F(MigrationTest, WatchdogReportsTypedDataLossWhenDiverged) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  cfg.postcopy_watchdog = SimDuration::millis(300);
  cfg.bandwidth_limit_bytes_per_sec = 2.0 * 1024 * 1024;
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  job.start();
  world_.simulator().run_for(cfg.setup_time + SimDuration::millis(100));
  ASSERT_EQ(dst->state(), VmState::kRunning);
  // The destination guest wrote state of its own: rollback would lose it.
  dst->memory().write_page(Gfn(2000),
                           mem::PageData::synthetic(ContentHash{0xBEEF}));
  const SimTime cut_time = world_.simulator().now();
  world_.network().set_fault_hook(
      [](const net::Packet&, const std::string&, const std::string&) {
        net::FaultDecision d;
        d.drop = true;
        return d;
      });
  world_.simulator().run_until_idle();
  world_.network().set_fault_hook(nullptr);
  const MigrationStats& stats = job.stats();
  ASSERT_TRUE(stats.completed);
  EXPECT_FALSE(stats.succeeded);
  EXPECT_EQ(stats.postcopy_outcome, PostCopyOutcome::kDataLoss);
  EXPECT_EQ(stats.postcopy_report.code(), StatusCode::kDataLoss);
  EXPECT_NE(stats.postcopy_report.message().find("unrecoverable"),
            std::string_view::npos);
  // Never hangs: resolution landed within one watchdog deadline (+ slack).
  EXPECT_LE((world_.simulator().now() - cut_time).ns(),
            3 * cfg.postcopy_watchdog.ns());
  // The destination keeps what it wrote; nobody pretends success.
  EXPECT_EQ(dst->memory().read_hash(Gfn(2000)), ContentHash{0xBEEF});
}

TEST_F(MigrationTest, SourceKillBeforeHandoffFailsImmediately) {
  VirtualMachine* src = launch_source();
  launch_dest();
  MigrationConfig cfg;  // pre-copy
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  job.start();
  world_.simulator().run_for(SimDuration::millis(600));  // mid-round-0
  job.inject_source_failure("qemu killed");
  EXPECT_TRUE(job.done());
  EXPECT_FALSE(job.stats().succeeded);
  EXPECT_NE(job.stats().error.find("source failed"), std::string::npos);
  world_.simulator().run_until_idle();
}

TEST_F(MigrationTest, DefaultPostCopyLeavesDemandPlaneUnbound) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  job.start();
  world_.simulator().run_for(cfg.setup_time + SimDuration::millis(150));
  ASSERT_EQ(dst->state(), VmState::kRunning);  // post-handoff
  // No observer, no fault endpoint: the plane does not exist at defaults.
  EXPECT_FALSE(dst->memory().has_write_observer());
  EXPECT_FALSE(world_.network().is_bound(
      net::NetAddr{host_->node_name(), Port(cfg.postcopy_fault_port)}));
  job.postcopy_touch(Gfn(7000));  // no-op, not a crash
  world_.simulator().run_until_idle();
  EXPECT_TRUE(job.stats().succeeded);
  EXPECT_EQ(job.stats().remote_faults, 0u);
}

// Parameterized: destination equality holds across RAM sizes & dirty rates.
struct MigProp {
  std::uint64_t memory_mb;
  double dirty_rate;
};

class MigrationPropertyTest
    : public MigrationTest,
      public ::testing::WithParamInterface<MigProp> {};

TEST_P(MigrationPropertyTest, DestinationConvergesToSource) {
  const MigProp p = GetParam();
  auto scfg = small_vm_config("src-vm", p.memory_mb, 0, 0);
  VirtualMachine* src = host_->launch_vm(scfg).value();
  auto dcfg = small_vm_config("dst-vm", p.memory_mb, 0, 0);
  dcfg.incoming_port = 4444;
  VirtualMachine* dst = host_->launch_vm(dcfg).value();
  if (p.dirty_rate > 0) {
    src->set_dirty_page_source([p](SimDuration) { return p.dirty_rate; });
  }
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)))
        << "page " << g;
  }
  EXPECT_EQ(stats.pages_transferred + stats.zero_pages >= ram, true);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MigrationPropertyTest,
    ::testing::Values(MigProp{16, 0.0}, MigProp{16, 300.0}, MigProp{32, 0.0},
                      MigProp{32, 1000.0}, MigProp{64, 500.0}));

}  // namespace
}  // namespace csk::vmm
