// Live-migration invariants (DESIGN.md §6): destination-equals-source,
// dirty-page retransmission, bandwidth throttling, downtime bounds,
// pre-copy convergence and the post-copy extension.
#include <gtest/gtest.h>

#include "test_util.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"

namespace csk::vmm {
namespace {

using testing::small_host_config;
using testing::small_vm_config;

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    auto host_cfg = small_host_config();
    host_cfg.ksm_enabled = false;  // isolate migration from ksmd
    host_ = world_.make_host(host_cfg);
  }

  VirtualMachine* launch_source(std::uint64_t memory_mb = 32) {
    auto cfg = small_vm_config("src-vm", memory_mb, 0, 0);
    auto vm = host_->launch_vm(cfg);
    CSK_CHECK(vm.is_ok());
    return vm.value();
  }

  VirtualMachine* launch_dest(std::uint64_t memory_mb = 32,
                              std::uint16_t port = 4444) {
    auto cfg = small_vm_config("dst-vm", memory_mb, 0, 0);
    cfg.incoming_port = port;
    auto vm = host_->launch_vm(cfg);
    CSK_CHECK(vm.is_ok());
    return vm.value();
  }

  MigrationStats migrate(VirtualMachine* src, std::uint16_t port = 4444,
                         MigrationConfig cfg = {}) {
    MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(port)},
                     cfg);
    job.start();
    world_.simulator().run_until_idle();
    CSK_CHECK(job.done());
    return job.stats();
  }

  World world_;
  Host* host_ = nullptr;
};

TEST_F(MigrationTest, IdleMigrationSucceeds) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  const MigrationStats stats = migrate(src);
  EXPECT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(dst->state(), VmState::kRunning);
  EXPECT_EQ(src->state(), VmState::kPostMigrate);
  EXPECT_GE(stats.rounds, 1);
}

TEST_F(MigrationTest, DestinationMemoryEqualsSource) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  // Deterministic sentinel pages on top of the boot working set.
  for (int i = 0; i < 50; ++i) {
    src->memory().write_page(Gfn(1000 + i),
                             mem::PageData::synthetic(ContentHash{
                                 static_cast<std::uint64_t>(i) + 7}));
  }
  const std::size_t ram = src->config().memory_pages();
  std::vector<ContentHash> want(ram);
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)))
        << "page " << g << " diverged";
  }
}

TEST_F(MigrationTest, OsStateIsTransplanted) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  const Pid daemon = src->os()->spawn("tenant-db", "/usr/bin/tenant-db");
  ASSERT_TRUE(src->os()->fs().create_unique("payroll.db", 8192,
                                            src->os()->rng()).is_ok());
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(src->os(), nullptr);
  ASSERT_NE(dst->os(), nullptr);
  EXPECT_TRUE(dst->os()->find_process(daemon).is_ok());
  EXPECT_TRUE(dst->os()->fs().exists("payroll.db"));
}

TEST_F(MigrationTest, DirtiedPagesAreRetransmitted) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  // Steady dirtying during migration forces extra rounds.
  src->set_dirty_page_source([](SimDuration) { return 400.0; });
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_GT(stats.rounds, 1);
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)))
        << "page " << g << " lost an update";
  }
}

TEST_F(MigrationTest, BandwidthCapIsRespected) {
  VirtualMachine* src = launch_source();
  launch_dest();
  MigrationConfig cfg;
  cfg.bandwidth_limit_bytes_per_sec = 8.0 * 1024 * 1024;
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  const double effective_rate =
      static_cast<double>(stats.wire_bytes) / stats.total_time.seconds_f();
  EXPECT_LE(effective_rate, cfg.bandwidth_limit_bytes_per_sec * 1.05);
}

TEST_F(MigrationTest, LowerBandwidthTakesLonger) {
  VirtualMachine* a = launch_source();
  VirtualMachine* dst1 = launch_dest(32, 4444);
  (void)dst1;
  MigrationConfig slow;
  slow.bandwidth_limit_bytes_per_sec = 4.0 * 1024 * 1024;
  const MigrationStats s_slow = migrate(a, 4444, slow);
  ASSERT_TRUE(s_slow.succeeded);

  auto cfg2 = small_vm_config("src2", 32, 0, 0);
  VirtualMachine* b = host_->launch_vm(cfg2).value();
  auto dcfg2 = small_vm_config("dst2", 32, 0, 0);
  dcfg2.incoming_port = 5555;
  host_->launch_vm(dcfg2).value();
  MigrationConfig fast;
  fast.bandwidth_limit_bytes_per_sec = 32.0 * 1024 * 1024;
  const MigrationStats s_fast = migrate(b, 5555, fast);
  ASSERT_TRUE(s_fast.succeeded);
  EXPECT_GT(s_slow.total_time.ns(), 2 * s_fast.total_time.ns());
}

TEST_F(MigrationTest, DowntimeWithinConfiguredBound) {
  VirtualMachine* src = launch_source();
  launch_dest();
  src->set_dirty_page_source([](SimDuration) { return 200.0; });
  MigrationConfig cfg;
  cfg.max_downtime = SimDuration::millis(300);
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_FALSE(stats.forced_converged);
  // Downtime = final-round flush + device state; the estimate bounds the
  // flush, so allow the device-state constant on top.
  EXPECT_LE(stats.downtime.ns(),
            (cfg.max_downtime + cfg.device_state_time + SimDuration::millis(200)).ns());
}

TEST_F(MigrationTest, NonConvergentWorkloadHitsRoundCapButCompletes) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  // Dirty faster than an 8 MiB/s stream can drain: never converges.
  src->set_dirty_page_source([](SimDuration) { return 6000.0; });
  MigrationConfig cfg;
  cfg.bandwidth_limit_bytes_per_sec = 8.0 * 1024 * 1024;
  cfg.max_rounds = 12;
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_TRUE(stats.forced_converged);
  EXPECT_LE(stats.rounds, cfg.max_rounds + 1);
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)),
              src->memory().read_hash(Gfn(g)));
  }
}

TEST_F(MigrationTest, ZeroPagesRideTheCheapPath) {
  VirtualMachine* src = launch_source();
  launch_dest();
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded);
  EXPECT_GT(stats.zero_pages, 0u);
  // Wire bytes must be far below "every page at 4 KiB".
  const std::uint64_t naive =
      src->config().memory_pages() * (mem::kPageSize + 8);
  EXPECT_LT(stats.wire_bytes, naive / 2);
}

TEST_F(MigrationTest, MismatchedDestinationFailsAndSourceKeepsRunning) {
  VirtualMachine* src = launch_source(32);
  auto bad = small_vm_config("dst-vm", 64, 0, 0);  // wrong RAM size
  bad.incoming_port = 4444;
  host_->launch_vm(bad).value();
  const MigrationStats stats = migrate(src);
  EXPECT_FALSE(stats.succeeded);
  EXPECT_NE(stats.error.find("mismatch"), std::string::npos);
  EXPECT_EQ(src->state(), VmState::kRunning);
  EXPECT_NE(src->os(), nullptr);
}

TEST_F(MigrationTest, NoListenerFailsIdleOut) {
  VirtualMachine* src = launch_source();
  MigrationConfig cfg;
  MigrationJob job(&world_, src,
                   net::NetAddr{host_->node_name(), Port(4711)}, cfg);
  job.start();
  // Chunks drop on the floor; drive for a while — the job cannot complete.
  world_.simulator().run_for(SimDuration::seconds(30));
  EXPECT_FALSE(job.done());
  EXPECT_GT(world_.network().stats().packets_dropped_unbound, 0u);
}

TEST_F(MigrationTest, PausedSourceMigrates) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  ASSERT_TRUE(src->pause().is_ok());
  const MigrationStats stats = migrate(src);
  EXPECT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(dst->state(), VmState::kRunning);
}

TEST_F(MigrationTest, ShutdownSourceRefusesToMigrate) {
  VirtualMachine* src = launch_source();
  launch_dest();
  src->shutdown();
  const MigrationStats stats = migrate(src);
  EXPECT_FALSE(stats.succeeded);
}

TEST_F(MigrationTest, ThroughForwarderChainLikeThePaper) {
  // HOST:AAAA -> forwarder -> HOST:BBBB listener (single-host relay).
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest(32, 4445);  // listens on BBBB
  net::PortForwarder relay(&world_.network(),
                           net::NetAddr{host_->node_name(), Port(4444)},
                           net::NetAddr{host_->node_name(), Port(4445)});
  ASSERT_TRUE(relay.start().is_ok());
  const MigrationStats stats = migrate(src, 4444);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(dst->state(), VmState::kRunning);
  EXPECT_GT(relay.stats().forwarded, 0u);
}

TEST_F(MigrationTest, MonitorDrivenMigration) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  QemuMonitor& mon = src->monitor();
  ASSERT_TRUE(mon.execute("migrate_set_speed 32m").is_ok());
  ASSERT_TRUE(
      mon.execute("migrate -d tcp:" + host_->node_name() + ":4444").is_ok());
  world_.simulator().run_until_idle();
  ASSERT_NE(mon.active_migration(), nullptr);
  EXPECT_TRUE(mon.active_migration()->stats().succeeded);
  EXPECT_EQ(dst->state(), VmState::kRunning);
  const auto info = mon.execute("info migrate");
  ASSERT_TRUE(info.is_ok());
  EXPECT_NE(info.value().find("completed"), std::string::npos);
}

TEST_F(MigrationTest, PostCopyMovesExecutionImmediately) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  const MigrationStats stats = migrate(src, 4444, cfg);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  EXPECT_EQ(dst->state(), VmState::kRunning);
  // Post-copy downtime is a small constant, far below pre-copy totals.
  EXPECT_LT(stats.downtime.ns(), SimDuration::millis(200).ns());
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)));
  }
}

TEST_F(MigrationTest, PostCopyPreservesDestinationWrites) {
  VirtualMachine* src = launch_source();
  VirtualMachine* dst = launch_dest();
  MigrationConfig cfg;
  cfg.post_copy = true;
  MigrationJob job(&world_, src, net::NetAddr{host_->node_name(), Port(4444)},
                   cfg);
  job.start();
  // Let the handoff happen, then write at the (running) destination while
  // the background copy is still streaming.
  world_.simulator().run_for(cfg.setup_time + SimDuration::millis(200));
  ASSERT_EQ(dst->state(), VmState::kRunning);
  dst->memory().write_page(Gfn(2000),
                           mem::PageData::synthetic(ContentHash{0xFEED}));
  world_.simulator().run_until_idle();
  ASSERT_TRUE(job.stats().succeeded) << job.stats().error;
  EXPECT_EQ(dst->memory().read_hash(Gfn(2000)), ContentHash{0xFEED});
}

// Parameterized: destination equality holds across RAM sizes & dirty rates.
struct MigProp {
  std::uint64_t memory_mb;
  double dirty_rate;
};

class MigrationPropertyTest
    : public MigrationTest,
      public ::testing::WithParamInterface<MigProp> {};

TEST_P(MigrationPropertyTest, DestinationConvergesToSource) {
  const MigProp p = GetParam();
  auto scfg = small_vm_config("src-vm", p.memory_mb, 0, 0);
  VirtualMachine* src = host_->launch_vm(scfg).value();
  auto dcfg = small_vm_config("dst-vm", p.memory_mb, 0, 0);
  dcfg.incoming_port = 4444;
  VirtualMachine* dst = host_->launch_vm(dcfg).value();
  if (p.dirty_rate > 0) {
    src->set_dirty_page_source([p](SimDuration) { return p.dirty_rate; });
  }
  const MigrationStats stats = migrate(src);
  ASSERT_TRUE(stats.succeeded) << stats.error;
  const std::size_t ram = src->config().memory_pages();
  for (std::size_t g = 0; g < ram; ++g) {
    ASSERT_EQ(dst->memory().read_hash(Gfn(g)), src->memory().read_hash(Gfn(g)))
        << "page " << g;
  }
  EXPECT_EQ(stats.pages_transferred + stats.zero_pages >= ram, true);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MigrationPropertyTest,
    ::testing::Values(MigProp{16, 0.0}, MigProp{16, 300.0}, MigProp{32, 0.0},
                      MigProp{32, 1000.0}, MigProp{64, 500.0}));

}  // namespace
}  // namespace csk::vmm
