// vm_runner tests: workloads executed through actual simulated machines —
// the clock advances, the hypervisor sees the exits, pages get dirty.
#include <gtest/gtest.h>

#include "common/stats.h"

#include "driver/vm_runner.h"
#include "test_util.h"
#include "workloads/filebench.h"
#include "workloads/kernel_compile.h"

namespace csk::driver {
namespace {

using testing::small_host_config;
using testing::small_vm_config;

class VmRunnerTest : public ::testing::Test {
 protected:
  VmRunnerTest() {
    auto cfg = small_host_config();
    cfg.boot_touched_mib = 4;
    // Workload runs advance minutes of simulated time; a throttled ksmd
    // keeps the event count sane while still merging within seconds.
    cfg.ksm.pages_per_scan = 50;
    cfg.ksm.scan_interval = SimDuration::millis(100);
    host_ = world_.make_host(cfg);
  }

  vmm::VirtualMachine* launch_l1(const std::string& name = "guest0",
                                 bool vmx = false) {
    auto cfg = small_vm_config(name, 64, 0, 0);
    cfg.cpu_host_passthrough = vmx;
    return host_->launch_vm(cfg).value();
  }

  vmm::VirtualMachine* launch_l2() {
    vmm::VirtualMachine* parent = launch_l1("guestx", true);
    CSK_CHECK(parent->enable_nested_hypervisor().is_ok());
    return parent->launch_nested_vm(small_vm_config("inner", 32, 0, 0), 4)
        .value();
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
};

TEST_F(VmRunnerTest, EnvReflectsTheVm) {
  vmm::VirtualMachine* l1 = launch_l1();
  l1->set_ccache_enabled(true);
  const hv::ExecEnv env = env_for(*l1);
  EXPECT_EQ(env.layer, hv::Layer::kL1);
  EXPECT_TRUE(env.ccache_enabled);
  EXPECT_EQ(env.timing, &world_.timing());
}

TEST_F(VmRunnerTest, RunAdvancesTheSimulatedClock) {
  vmm::VirtualMachine* l1 = launch_l1();
  const workloads::FilebenchWorkload fb;
  const SimTime before = world_.simulator().now();
  const SimDuration elapsed = run_workload(*l1, fb);
  EXPECT_GT(elapsed.ns(), 0);
  EXPECT_EQ((world_.simulator().now() - before).ns(), elapsed.ns());
}

TEST_F(VmRunnerTest, NestedGuestPaysTheFig2Premium) {
  vmm::VirtualMachine* l1 = launch_l1();
  vmm::VirtualMachine* l2 = launch_l2();
  const workloads::KernelCompileWorkload compile;
  const double t1 = run_workload(*l1, compile).seconds_f();
  const double t2 = run_workload(*l2, compile).seconds_f();
  EXPECT_NEAR(t2 / t1, 1.257, 0.06);  // the paper's +25.7 %
}

TEST_F(VmRunnerTest, CcacheOnTheVmChangesItsCompileTime) {
  vmm::VirtualMachine* l1 = launch_l1();
  const workloads::KernelCompileWorkload compile;
  const double cold = run_workload(*l1, compile).seconds_f();
  l1->set_ccache_enabled(true);
  const double warm = run_workload(*l1, compile).seconds_f();
  EXPECT_GT(cold / warm, 3.0);
}

TEST_F(VmRunnerTest, HypervisorRecordsTheExits) {
  vmm::VirtualMachine* l1 = launch_l1();
  const workloads::FilebenchWorkload fb;
  const std::uint64_t before =
      host_->hypervisor().guest(l1->id()).exits.total();
  run_workload(*l1, fb);
  EXPECT_GT(host_->hypervisor().guest(l1->id()).exits.total(), before);
}

TEST_F(VmRunnerTest, WorkloadDirtiesGuestPages) {
  vmm::VirtualMachine* l1 = launch_l1();
  l1->memory().enable_dirty_log();
  const workloads::FilebenchWorkload fb;
  run_workload(*l1, fb);
  EXPECT_GT(l1->memory().dirty_count(), 100u);
}

TEST_F(VmRunnerTest, RepeatedRunsJitterAroundTheMean) {
  vmm::VirtualMachine* l1 = launch_l1();
  const workloads::FilebenchWorkload fb;
  Rng rng(99);
  const auto runs = run_repeated(*l1, fb, 5, 0.03, rng);
  ASSERT_EQ(runs.size(), 5u);
  csk::RunningStats stats;
  for (const SimDuration d : runs) stats.add(static_cast<double>(d.ns()));
  EXPECT_GT(stats.stddev(), 0.0);
  EXPECT_LT(stats.rel_stddev_pct(), 12.0);
}

// Regression for the one-sided noise clamp: `std::max(0.05, normal(1, σ))`
// truncated only the left tail, biasing the mean of the multiplier above 1
// and shrinking its variance. The symmetric clamp must keep both moments.
TEST_F(VmRunnerTest, RunToRunJitterHasUnbiasedMoments) {
  Rng rng(0x77AB1E5);
  csk::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(run_to_run_jitter(rng, 0.3));
  // 100k draws at σ=0.3: standard error of the mean ≈ 0.001.
  EXPECT_NEAR(stats.mean(), 1.0, 0.005);
  EXPECT_NEAR(stats.stddev(), 0.3, 0.01);
}

TEST_F(VmRunnerTest, RunToRunJitterStaysPositiveForHugeSpread) {
  Rng rng(0x77AB1E6);
  for (int i = 0; i < 10000; ++i) {
    const double m = run_to_run_jitter(rng, 10.0);  // width clamps at 0.95
    EXPECT_GE(m, 0.05);
    EXPECT_LE(m, 1.95);
  }
}

TEST_F(VmRunnerTest, PausedGuestCannotRun) {
  vmm::VirtualMachine* l1 = launch_l1();
  ASSERT_TRUE(l1->pause().is_ok());
  const workloads::FilebenchWorkload fb;
  EXPECT_DEATH(run_workload(*l1, fb), "not running");
}

TEST_F(VmRunnerTest, ConcurrentMachineryRunsUnderneath) {
  // ksmd keeps scanning while the workload executes: identical pages in a
  // neighbor merge during the run.
  vmm::VirtualMachine* l1 = launch_l1();
  vmm::VirtualMachine* neighbor = launch_l1("neighbor");
  const mem::PageData shared = mem::PageData::synthetic(ContentHash{0x5AFE});
  l1->memory().write_page(Gfn(9000), shared);
  neighbor->memory().write_page(Gfn(9000), shared);
  const workloads::KernelCompileWorkload compile;  // minutes of sim time
  run_workload(*l1, compile);
  EXPECT_EQ(l1->memory().translate(Gfn(9000)),
            neighbor->memory().translate(Gfn(9000)));
}

}  // namespace
}  // namespace csk::driver
