// Memory hot-path regression tests: the KSM volatile-filter aliasing fix,
// the scan-cursor drift fix, dirty-bitmap equivalence against a reference
// model, incremental-cursor semantics under mid-pass region churn, content
// interning, frame-incarnation ids, zero-copy page access, and a golden
// fleet-digest spot-check pinning the deterministic outputs the overhaul
// must not move.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "driver/vm_runner.h"
#include "fleet/fleet.h"
#include "mem/addr_space.h"
#include "mem/ksm.h"
#include "mem/phys_mem.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workloads/filebench.h"

namespace csk {
namespace {

mem::PageData synth(std::uint64_t tag) {
  return mem::PageData::synthetic(ContentHash{tag});
}

mem::PageData bytes_page(std::uint8_t fill) {
  mem::PageBytes b(64, fill);
  return mem::PageData::from_bytes(std::move(b));
}

// -------------------------------------------- volatile-filter aliasing fix

// The regression the (region, gfn)-keyed stamps fix: a frame number freed
// and recycled between passes must not inherit the previous tenant's
// volatile-filter stamp. With the old frame-keyed stamps the new page
// (same content hash as the stale stamp) passed the filter on its FIRST
// encounter and merged one pass early.
TEST(KsmVolatileFilterTest, RecycledFrameDoesNotInheritStamp) {
  sim::Simulator simulator;
  mem::HostPhysicalMemory phys;
  mem::KsmDaemon ksm(&simulator, &phys, {});  // volatile filtering on

  mem::AddressSpace keeper(&phys, 4, "keeper");
  auto victim = std::make_unique<mem::AddressSpace>(&phys, 4, "victim");
  keeper.write_page(Gfn(0), synth(0xAB));
  victim->write_page(Gfn(0), synth(0xAB));
  ksm.register_region(&keeper);
  ksm.register_region(victim.get());

  // Pass 1 stamps both pages; nothing is merge-eligible yet.
  ksm.scan_batch(2);
  EXPECT_EQ(ksm.stats().merges, 0u);

  // Free the victim's frame, then recycle its number for a fresh page with
  // the same content the stale stamp recorded.
  const FrameNumber recycled = victim->translate(Gfn(0));
  ksm.unregister_region(victim.get());
  victim.reset();
  mem::AddressSpace fresh(&phys, 4, "fresh");
  fresh.write_page(Gfn(0), synth(0xAB));
  ASSERT_EQ(fresh.translate(Gfn(0)), recycled);  // LIFO frame reuse
  ksm.register_region(&fresh);

  // Pass 2: keeper is on its second encounter (enters the unstable tree);
  // the recycled page is on its FIRST — it must be stamped, not merged.
  ksm.scan_batch(2);
  EXPECT_EQ(ksm.stats().merges, 0u);
  EXPECT_FALSE(phys.frame(fresh.translate(Gfn(0))).ksm_shared);

  // Pass 3: now both pages have two clean encounters; the merge is legal.
  ksm.scan_batch(2);
  EXPECT_EQ(ksm.stats().merges, 1u);
  EXPECT_TRUE(phys.frame(fresh.translate(Gfn(0))).ksm_shared);
}

// ------------------------------------------------- scan-cursor drift fix

// Removing a region *before* the cursor shifts the list left; the cursor
// must follow so the region it is scanning keeps its turn and the full-pass
// boundary stays put. (The old code invalidated the cursor instead, which
// skipped the rest of the current region and re-scanned its successor.)
TEST(KsmCursorTest, UnregisterBeforeCursorKeepsScanPosition) {
  sim::Simulator simulator;
  mem::HostPhysicalMemory phys;
  mem::KsmDaemon ksm(&simulator, &phys, {});

  mem::AddressSpace r0(&phys, 2, "r0");
  mem::AddressSpace r1(&phys, 4, "r1");
  for (std::uint64_t g = 0; g < 2; ++g) r0.write_page(Gfn(g), synth(g + 1));
  for (std::uint64_t g = 0; g < 4; ++g) r1.write_page(Gfn(g), synth(g + 10));
  ksm.register_region(&r0);
  ksm.register_region(&r1);

  // Scan all of r0 and half of r1: the cursor sits mid-region in r1.
  ksm.scan_batch(4);
  ASSERT_EQ(ksm.stats().pages_scanned, 4u);
  ASSERT_EQ(ksm.cursor_region(), 1u);
  ASSERT_TRUE(ksm.cursor_entered());

  ksm.unregister_region(&r0);
  EXPECT_EQ(ksm.cursor_region(), 0u);  // followed the shift
  EXPECT_TRUE(ksm.cursor_entered());   // scan position preserved

  // Exactly r1's two remaining pages finish the pass — no re-scan, no
  // early full-pass boundary.
  ksm.scan_batch(2);
  EXPECT_EQ(ksm.stats().pages_scanned, 6u);
  EXPECT_EQ(ksm.stats().full_passes, 1u);
}

// Removing the region *under* a mid-scan cursor keeps the walk position and
// replays the remaining gfns against the successor region (long-standing
// behavior of this ksmd model; pinned so the batch accounting and full-pass
// boundary never move).
TEST(KsmCursorTest, UnregisterUnderCursorReplaysLeftoverWalk) {
  sim::Simulator simulator;
  mem::HostPhysicalMemory phys;
  mem::KsmDaemon ksm(&simulator, &phys, {});

  mem::AddressSpace r0(&phys, 4, "r0");
  mem::AddressSpace r1(&phys, 2, "r1");
  for (std::uint64_t g = 0; g < 4; ++g) r0.write_page(Gfn(g), synth(g + 1));
  for (std::uint64_t g = 0; g < 2; ++g) r1.write_page(Gfn(g), synth(g + 10));
  ksm.register_region(&r0);
  ksm.register_region(&r1);

  // Scan half of r0, then remove it from under the cursor.
  ksm.scan_batch(2);
  ASSERT_EQ(ksm.cursor_region(), 0u);
  ASSERT_TRUE(ksm.cursor_entered());
  ksm.unregister_region(&r0);
  EXPECT_EQ(ksm.cursor_region(), 0u);

  // r0's two unvisited gfns are replayed against r1 (out-of-range gfns
  // still consume their batch slot), then the pass wraps; r1's own pages
  // wait for the next lap.
  ksm.scan_batch(2);
  EXPECT_EQ(ksm.stats().pages_scanned, 4u);
  EXPECT_EQ(ksm.stats().full_passes, 1u);
  ksm.scan_batch(2);
  EXPECT_EQ(ksm.stats().pages_scanned, 6u);
  EXPECT_EQ(ksm.stats().full_passes, 2u);
}

// Removing the last region while the cursor is on it wraps to the front
// without counting a pass.
TEST(KsmCursorTest, UnregisterLastRegionUnderCursorWrapsWithoutPass) {
  sim::Simulator simulator;
  mem::HostPhysicalMemory phys;
  mem::KsmDaemon ksm(&simulator, &phys, {});

  mem::AddressSpace r0(&phys, 2, "r0");
  mem::AddressSpace r1(&phys, 2, "r1");
  for (std::uint64_t g = 0; g < 2; ++g) {
    r0.write_page(Gfn(g), synth(g + 1));
    r1.write_page(Gfn(g), synth(g + 10));
  }
  ksm.register_region(&r0);
  ksm.register_region(&r1);

  ksm.scan_batch(3);  // all of r0, first page of r1
  ASSERT_EQ(ksm.cursor_region(), 1u);
  ksm.unregister_region(&r1);
  EXPECT_EQ(ksm.cursor_region(), 0u);
  EXPECT_FALSE(ksm.cursor_entered());
  EXPECT_EQ(ksm.stats().full_passes, 0u);

  ksm.scan_batch(2);  // fresh lap over r0 completes a pass
  EXPECT_EQ(ksm.stats().full_passes, 1u);
  EXPECT_EQ(ksm.stats().pages_scanned, 5u);
}

// ------------------------------------------- incremental cursor semantics

// Pages materialized after the cursor entered a region are deferred to the
// next lap — the epoch stamp reproduces the old enter-time snapshot without
// building one.
TEST(KsmCursorTest, MidPassMappingsDeferToNextLap) {
  sim::Simulator simulator;
  mem::HostPhysicalMemory phys;
  mem::KsmDaemon ksm(&simulator, &phys, {});

  mem::AddressSpace space(&phys, 16, "space");
  for (std::uint64_t g = 0; g < 4; ++g) space.write_page(Gfn(g), synth(g + 1));
  ksm.register_region(&space);

  ksm.scan_batch(2);  // cursor entered; gfns 0,1 scanned
  space.write_page(Gfn(10), synth(0x99));  // mapped mid-visit

  ksm.scan_batch(2);  // finishes the lap: gfns 2,3 only
  EXPECT_EQ(ksm.stats().pages_scanned, 4u);
  EXPECT_EQ(ksm.stats().full_passes, 1u);

  ksm.scan_batch(5);  // next lap sees all five pages
  EXPECT_EQ(ksm.stats().pages_scanned, 9u);
  EXPECT_EQ(ksm.stats().full_passes, 2u);
}

// A region registered mid-pass gets its turn before the pass boundary.
TEST(KsmCursorTest, RegionRegisteredMidPassIsScannedBeforeWrap) {
  sim::Simulator simulator;
  mem::HostPhysicalMemory phys;
  mem::KsmDaemon ksm(&simulator, &phys, {});

  mem::AddressSpace a(&phys, 2, "a");
  mem::AddressSpace b(&phys, 2, "b");
  for (std::uint64_t g = 0; g < 2; ++g) {
    a.write_page(Gfn(g), synth(g + 1));
    b.write_page(Gfn(g), synth(g + 10));
  }
  ksm.register_region(&a);
  ksm.scan_batch(1);  // mid-pass in a
  ksm.register_region(&b);

  ksm.scan_batch(1);  // finishes a; pass is NOT over
  EXPECT_EQ(ksm.stats().full_passes, 0u);
  ksm.scan_batch(2);  // b's pages close the pass
  EXPECT_EQ(ksm.stats().full_passes, 1u);
  EXPECT_EQ(ksm.stats().pages_scanned, 4u);
}

// ------------------------------------------------ dirty-bitmap equivalence

// The word-packed bitmap must agree with a naive set-based dirty model
// under seeded random writes, through roots and views alike, across
// repeated harvest cycles.
TEST(DirtyBitmapTest, MatchesReferenceModelUnderRandomWrites) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace root(&phys, 300, "root");
  std::vector<Gfn> window;
  for (std::uint64_t i = 0; i < 64; ++i) window.push_back(Gfn(100 + i));
  mem::AddressSpace view(&root, window, "view");
  root.enable_dirty_log();
  view.enable_dirty_log();

  Rng rng(0xD1127B17ull);
  for (int round = 0; round < 4; ++round) {
    std::set<std::uint64_t> expect_root, expect_view;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t g = rng.uniform(300);
      root.write_page(Gfn(g), synth(rng.next_u64() | 1));
      expect_root.insert(g);
    }
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t v = rng.uniform(64);
      view.write_page(Gfn(v), synth(rng.next_u64() | 1));
      expect_view.insert(v);
      expect_root.insert(100 + v);  // view writes land in the parent too
    }

    EXPECT_EQ(root.dirty_count(), expect_root.size());
    EXPECT_EQ(view.dirty_count(), expect_view.size());
    for (std::uint64_t g : expect_root) EXPECT_TRUE(root.is_dirty(Gfn(g)));

    const std::vector<Gfn> got_root = root.fetch_and_reset_dirty();
    const std::vector<Gfn> got_view = view.fetch_and_reset_dirty();
    std::vector<std::uint64_t> got_root_v, got_view_v;
    for (Gfn g : got_root) got_root_v.push_back(g.value());
    for (Gfn g : got_view) got_view_v.push_back(g.value());
    EXPECT_EQ(got_root_v,
              std::vector<std::uint64_t>(expect_root.begin(), expect_root.end()));
    EXPECT_EQ(got_view_v,
              std::vector<std::uint64_t>(expect_view.begin(), expect_view.end()));
    EXPECT_EQ(root.dirty_count(), 0u);
    EXPECT_EQ(view.dirty_count(), 0u);
  }
}

// ------------------------------------------------- interning and alloc ids

TEST(PhysMemTest, ContentInterningDeduplicatesEqualPayloads) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace space(&phys, 4, "s");
  space.write_page(Gfn(0), bytes_page(1));
  space.write_page(Gfn(1), bytes_page(1));  // equal bytes, distinct buffer
  space.write_page(Gfn(2), bytes_page(2));

  EXPECT_TRUE(phys.frames_same_content(space.translate(Gfn(0)),
                                       space.translate(Gfn(1))));
  EXPECT_FALSE(phys.frames_same_content(space.translate(Gfn(0)),
                                        space.translate(Gfn(2))));
  // The equal pair resolved to one interned payload; the hash-mismatched
  // compare never interned anything.
  EXPECT_EQ(phys.interned_contents(), 1u);

  // Overwriting invalidates the cached token: the page re-compares fresh.
  space.write_page(Gfn(1), bytes_page(2));
  EXPECT_FALSE(phys.frames_same_content(space.translate(Gfn(0)),
                                        space.translate(Gfn(1))));
  EXPECT_TRUE(phys.frames_same_content(space.translate(Gfn(1)),
                                       space.translate(Gfn(2))));
}

TEST(PhysMemTest, RecycledFrameNumbersCarryFreshAllocIds) {
  mem::HostPhysicalMemory phys;
  auto first = std::make_unique<mem::AddressSpace>(&phys, 1, "first");
  first->write_page(Gfn(0), synth(0x11));
  const FrameNumber f = first->translate(Gfn(0));
  const std::uint64_t id1 = phys.alloc_id(f);
  first.reset();
  EXPECT_FALSE(phys.is_live(f));

  mem::AddressSpace second(&phys, 1, "second");
  second.write_page(Gfn(0), synth(0x22));
  ASSERT_EQ(second.translate(Gfn(0)), f);  // number recycled
  EXPECT_TRUE(phys.is_live(f));
  EXPECT_NE(phys.alloc_id(f), id1);  // incarnation changed
}

// ----------------------------------------------------- zero-copy access

TEST(AddressSpaceTest, ReadsSharePayloadWithoutCopying) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace space(&phys, 4, "s");
  mem::PageData page = bytes_page(0x5A);
  const mem::PageBytesRef payload = page.bytes;
  space.write_page(Gfn(0), page);

  EXPECT_EQ(space.read_bytes(Gfn(0)).get(), payload.get());
  EXPECT_EQ(space.read_page(Gfn(0)).bytes.get(), payload.get());
  EXPECT_EQ(space.read_page_ref(Gfn(0)).bytes.get(), payload.get());

  bool visited = false;
  space.visit_mapped([&](Gfn g, const mem::PageData& p) {
    EXPECT_EQ(g, Gfn(0));
    EXPECT_EQ(p.bytes.get(), payload.get());
    visited = true;
  });
  EXPECT_TRUE(visited);
}

// -------------------------------------------------- opt-in hot-path counters

TEST(AddressSpaceTest, HotPathCountersCountOnlyWhenEnabled) {
  obs::Counter& pages = obs::metrics().counter("mem.dirty.pages_harvested");
  obs::Counter& reads = obs::metrics().counter("mem.zero_copy_reads");

  mem::set_hot_path_counters_enabled(true);
  {
    mem::HostPhysicalMemory phys;
    mem::AddressSpace space(&phys, 8, "counted");
    space.enable_dirty_log();
    const std::uint64_t pages0 = pages.value();
    const std::uint64_t reads0 = reads.value();
    space.write_page(Gfn(0), synth(1));
    space.write_page(Gfn(1), synth(2));
    (void)space.read_page_ref(Gfn(0));
    EXPECT_EQ(space.fetch_and_reset_dirty().size(), 2u);
    EXPECT_EQ(pages.value() - pages0, 2u);
    EXPECT_EQ(reads.value() - reads0, 1u);
  }
  mem::set_hot_path_counters_enabled(false);
  {
    mem::HostPhysicalMemory phys;
    mem::AddressSpace space(&phys, 8, "uncounted");
    space.enable_dirty_log();
    const std::uint64_t pages0 = pages.value();
    const std::uint64_t reads0 = reads.value();
    space.write_page(Gfn(0), synth(1));
    (void)space.read_page_ref(Gfn(0));
    (void)space.fetch_and_reset_dirty();
    EXPECT_EQ(pages.value(), pages0);
    EXPECT_EQ(reads.value(), reads0);
  }
}

// ------------------------------------------------ fleet digest spot-check

// Golden determinism spot-check: a filebench + ksmd shard (the memory-
// heaviest fleet scenario) must keep producing byte-identical digests. The
// constants were captured from the pre-overhaul implementation's output —
// the dense-table/bitmap/interning rework reproduces them bit-for-bit.
fleet::ShardOutcome mem_shard(const fleet::ShardContext& ctx) {
  fleet::ShardOutcome out;
  Rng rng(ctx.seed);
  vmm::World world(derive_seed(ctx.seed, 1));
  vmm::Host* host = world.make_host(testing::small_host_config());
  vmm::VirtualMachine* vm =
      host->launch_vm(testing::small_vm_config("fb", 64, 0, 0)).value();
  workloads::FilebenchWorkload::Params params;
  params.iterations = 1000 + static_cast<int>(rng.uniform(1000));
  const workloads::FilebenchWorkload fb(params);
  const SimDuration elapsed = driver::run_workload(*vm, fb);
  world.simulator().run_for(SimDuration::seconds(2));  // let ksmd scan
  out.values["fb_s"] = elapsed.seconds_f();
  out.values["events"] = static_cast<double>(world.simulator().dispatched());
  return out;
}

TEST(MemFleetGoldenTest, ShardDigestsUnchanged) {
  fleet::FleetConfig cfg;
  cfg.workers = 2;
  cfg.root_seed = 0xC5CAFE01ull;
  fleet::FleetRunner runner(cfg);
  runner.add("mem-0", mem_shard);
  runner.add("mem-1", mem_shard);
  fleet::FleetReport report = runner.run();
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.failed_shards(), 0u);
  const std::string golden0 =
      R"({"name":"mem-0","seed":"0xa2ac9aea50b9474a","status":"OK",)"
      R"("values":{"events":208,"fb_s":0.083586738999999993},"faults":[],)"
      R"("metrics":{"counters":{"hv.exit_cost_ns{layer=L1}":83586739,)"
      R"("hv.exits{layer=L1,reason=CPUID}":0,)"
      R"("hv.exits{layer=L1,reason=DIRTY_LOG_SYNC}":0,)"
      R"("hv.exits{layer=L1,reason=EPT_VIOLATION}":2246,)"
      R"("hv.exits{layer=L1,reason=EXTERNAL_INTERRUPT}":0,)"
      R"("hv.exits{layer=L1,reason=HLT}":0,)"
      R"("hv.exits{layer=L1,reason=HYPERCALL}":0,)"
      R"("hv.exits{layer=L1,reason=IO}":2592,)"
      R"("hv.exits{layer=L1,reason=MSR_ACCESS}":0,)"
      R"("hv.exits{layer=L1,reason=VMLAUNCH}":0,)"
      R"("mem.ksm.full_passes":406,"mem.ksm.merges":0,)"
      R"("mem.ksm.pages_scanned":832000,)"
      R"("mem.ksm.stale_stable_evictions":0},"gauges":{},"histograms":{}}})";
  const std::string golden1 =
      R"({"name":"mem-1","seed":"0x8d71f7f5313f9414","status":"OK",)"
      R"("values":{"events":205,"fb_s":0.059884481000000003},"faults":[],)"
      R"("metrics":{"counters":{"hv.exit_cost_ns{layer=L1}":59884481,)"
      R"("hv.exits{layer=L1,reason=CPUID}":0,)"
      R"("hv.exits{layer=L1,reason=DIRTY_LOG_SYNC}":0,)"
      R"("hv.exits{layer=L1,reason=EPT_VIOLATION}":1609,)"
      R"("hv.exits{layer=L1,reason=EXTERNAL_INTERRUPT}":0,)"
      R"("hv.exits{layer=L1,reason=HLT}":0,)"
      R"("hv.exits{layer=L1,reason=HYPERCALL}":0,)"
      R"("hv.exits{layer=L1,reason=IO}":1857,)"
      R"("hv.exits{layer=L1,reason=MSR_ACCESS}":0,)"
      R"("hv.exits{layer=L1,reason=VMLAUNCH}":0,)"
      R"("mem.ksm.full_passes":400,"mem.ksm.merges":0,)"
      R"("mem.ksm.pages_scanned":820000,)"
      R"("mem.ksm.stale_stable_evictions":0},"gauges":{},"histograms":{}}})";
  EXPECT_EQ(report.shards[0].digest, golden0);
  EXPECT_EQ(report.shards[1].digest, golden1);
}

}  // namespace
}  // namespace csk
