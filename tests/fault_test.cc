// Fault-injection subsystem tests: determinism of seeded fault schedules,
// migration recovery under loss / aborts / watchdogs, the exact backoff
// series, detector graceful degradation, and forwarder auto-restart.
#include <gtest/gtest.h>

#include <limits>

#include "detect/dedup_detector.h"
#include "detect/l2_probe.h"
#include "fault/injector.h"
#include "net/port_forward.h"
#include "test_util.h"
#include "vmm/migration.h"

namespace csk::fault {
namespace {

using testing::small_host_config;
using testing::small_vm_config;

// ------------------------------------------------------------- backoff math

TEST(RetryPolicyTest, BackoffSeriesIsExactlyTheDocumentedGeometricSeries) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = SimDuration::millis(200);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = SimDuration::seconds(10);
  // delay(k) = min(initial * multiplier^k, max): 200ms, 400ms, 800ms, ...
  EXPECT_EQ(backoff_delay(policy, 0), SimDuration::millis(200));
  EXPECT_EQ(backoff_delay(policy, 1), SimDuration::millis(400));
  EXPECT_EQ(backoff_delay(policy, 2), SimDuration::millis(800));
  EXPECT_EQ(backoff_delay(policy, 3), SimDuration::millis(1600));
  EXPECT_EQ(backoff_delay(policy, 4), SimDuration::millis(3200));
  EXPECT_EQ(backoff_delay(policy, 5), SimDuration::millis(6400));
  // 12800 ms would exceed the cap: clamped.
  EXPECT_EQ(backoff_delay(policy, 6), SimDuration::seconds(10));
  EXPECT_EQ(backoff_delay(policy, 60), SimDuration::seconds(10));
}

TEST(RetryPolicyTest, SingleAttemptPolicyDisablesRetries) {
  RetryPolicy policy;  // default max_attempts = 1
  EXPECT_FALSE(policy.retries_enabled());
  policy.max_attempts = 2;
  EXPECT_TRUE(policy.retries_enabled());
}

TEST(RetryPolicyTest, HugeRetryIndexSaturatesAtTheCap) {
  // Regression: the multiplier loop used to run retry_index times
  // unconditionally, overflowing the double to +inf — and casting an
  // infinite double to int64 is undefined behavior. The delay must simply
  // saturate at max_backoff, however large the index.
  RetryPolicy policy;
  policy.max_attempts = 2000;
  policy.initial_backoff = SimDuration::millis(200);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = SimDuration::seconds(10);
  EXPECT_EQ(backoff_delay(policy, 1000), SimDuration::seconds(10));
  EXPECT_EQ(backoff_delay(policy, 1'000'000), SimDuration::seconds(10));
}

TEST(RetryPolicyTest, NormalizationClampsDegenerateConfigs) {
  RetryPolicy policy;
  policy.max_attempts = -3;
  policy.backoff_multiplier = 0.25;  // backoff may never shrink
  policy.initial_backoff = SimDuration::millis(-5);
  policy.max_backoff = SimDuration::millis(-1);
  const RetryPolicy norm = policy.normalized();
  EXPECT_EQ(norm.max_attempts, 1);
  EXPECT_DOUBLE_EQ(norm.backoff_multiplier, 1.0);
  EXPECT_EQ(norm.initial_backoff, SimDuration::zero());
  EXPECT_EQ(norm.max_backoff, SimDuration::zero());
  // backoff_delay consumes the normalized policy: no negative delays.
  EXPECT_EQ(backoff_delay(policy, 0), SimDuration::zero());
  EXPECT_EQ(backoff_delay(policy, 7), SimDuration::zero());
}

TEST(RetryPolicyTest, NanMultiplierClampsToConstantBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_multiplier = std::numeric_limits<double>::quiet_NaN();
  policy.initial_backoff = SimDuration::millis(100);
  policy.max_backoff = SimDuration::seconds(1);
  EXPECT_DOUBLE_EQ(policy.normalized().backoff_multiplier, 1.0);
  EXPECT_EQ(backoff_delay(policy, 0), SimDuration::millis(100));
  EXPECT_EQ(backoff_delay(policy, 50), SimDuration::millis(100));
}

TEST(RetryPolicyTest, SanePoliciesAreAlreadyNormalized) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  const RetryPolicy norm = policy.normalized();
  EXPECT_EQ(norm.max_attempts, policy.max_attempts);
  EXPECT_DOUBLE_EQ(norm.backoff_multiplier, policy.backoff_multiplier);
  EXPECT_EQ(norm.initial_backoff, policy.initial_backoff);
  EXPECT_EQ(norm.max_backoff, policy.max_backoff);
}

// ------------------------------------------------- migration chaos fixture

struct MigrationRun {
  vmm::MigrationStats stats;
  std::vector<InjectedFault> faults;
  int clean_rounds = 0;  // rounds of an identical fault-free run
};

/// Runs one small L0-L0 migration with the recovery knobs armed under
/// `plan`; deterministic for a given plan.
MigrationRun run_chaos_migration(const FaultPlan& plan,
                                 int max_attempts = 4) {
  vmm::World world;
  auto host_cfg = small_host_config();
  host_cfg.ksm_enabled = false;
  vmm::Host* host = world.make_host(host_cfg);
  // 48 MiB touched at the 32 MiB/s throttle: round 0 spans ~0.5 s-2.0 s of
  // simulated time, so mid-round fault specs land while streaming is live.
  vmm::VirtualMachine* source =
      host->launch_vm(small_vm_config("src", 64), /*boot_touched_mib=*/48)
          .value();
  auto dest_cfg = small_vm_config("dst", 64, 0, 0);
  dest_cfg.incoming_port = 4444;
  (void)host->launch_vm(dest_cfg).value();

  vmm::MigrationConfig cfg;
  cfg.retry.max_attempts = max_attempts;
  cfg.retry.initial_backoff = SimDuration::millis(200);
  cfg.retry.backoff_multiplier = 2.0;
  cfg.chunk_timeout = SimDuration::seconds(2);
  cfg.round_timeout = SimDuration::seconds(120);
  vmm::MigrationJob job(&world, source,
                        net::NetAddr{host->node_name(), Port(4444)}, cfg);
  Injector injector(&world, plan);
  injector.attach_migration(&job);
  injector.arm();
  job.start();
  const SimTime deadline =
      world.simulator().now() + SimDuration::seconds(3600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  MigrationRun out;
  out.stats = job.stats();
  out.faults = injector.log();
  return out;
}

// ------------------------------------------------------------- determinism

TEST(FaultDeterminismTest, SameSeedYieldsIdenticalFaultSchedule) {
  FaultPlan plan;
  plan.seed = 42;
  plan.net.push_back({"", "", SimDuration::zero(), SimDuration::seconds(3600),
                      0.2, SimDuration::millis(2)});
  const MigrationRun a = run_chaos_migration(plan);
  const MigrationRun b = run_chaos_migration(plan);
  ASSERT_FALSE(a.faults.empty());
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].at, b.faults[i].at) << i;
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind) << i;
    EXPECT_EQ(a.faults[i].detail, b.faults[i].detail) << i;
  }
  EXPECT_EQ(a.stats.total_time, b.stats.total_time);
  EXPECT_EQ(a.stats.chunk_retransmits, b.stats.chunk_retransmits);
}

TEST(FaultDeterminismTest, DifferentSeedsYieldDifferentLossPatterns) {
  FaultPlan plan_a;
  plan_a.seed = 1;
  plan_a.net.push_back(
      {"", "", SimDuration::zero(), SimDuration::seconds(3600), 0.2});
  FaultPlan plan_b = plan_a;
  plan_b.seed = 2;
  const MigrationRun a = run_chaos_migration(plan_a);
  const MigrationRun b = run_chaos_migration(plan_b);
  // Both converge; the concrete drop schedules differ.
  EXPECT_TRUE(a.stats.succeeded);
  EXPECT_TRUE(b.stats.succeeded);
  bool same = a.faults.size() == b.faults.size();
  if (same) {
    for (std::size_t i = 0; i < a.faults.size(); ++i) {
      if (a.faults[i].at != b.faults[i].at ||
          a.faults[i].detail != b.faults[i].detail) {
        same = false;
        break;
      }
    }
  }
  EXPECT_FALSE(same);
}

// -------------------------------------------------------- loss convergence

TEST(MigrationChaosTest, ConvergesUnder20PctLossWithBoundedExtraRounds) {
  const MigrationRun clean = run_chaos_migration(FaultPlan{});
  ASSERT_TRUE(clean.stats.succeeded);
  EXPECT_EQ(clean.stats.chunk_retransmits, 0u);

  FaultPlan lossy;
  lossy.seed = 7;
  lossy.net.push_back(
      {"", "", SimDuration::zero(), SimDuration::seconds(3600), 0.2});
  const MigrationRun r = run_chaos_migration(lossy);
  ASSERT_TRUE(r.stats.succeeded) << r.stats.error;
  EXPECT_GT(r.stats.chunk_retransmits, 0u);
  // Recovery is retransmission, not extra dirty rounds: the round count
  // stays within a small constant of the fault-free run.
  EXPECT_LE(r.stats.rounds, clean.stats.rounds + 3);
  EXPECT_GE(r.stats.total_time, clean.stats.total_time);
}

// ------------------------------------------------------------ abort + retry

TEST(MigrationChaosTest, InjectedMidRoundAbortIsRetriedToSuccess) {
  FaultPlan plan;
  plan.migration_aborts.push_back(
      {SimDuration::millis(1500), "injected mid-round abort"});
  const MigrationRun r = run_chaos_migration(plan);
  ASSERT_TRUE(r.stats.succeeded) << r.stats.error;
  EXPECT_EQ(r.stats.attempts, 2);
  EXPECT_EQ(r.stats.retries, 1);
  ASSERT_EQ(r.stats.attempt_errors.size(), 1u);
  EXPECT_NE(r.stats.attempt_errors[0].find("injected mid-round abort"),
            std::string::npos);
  // One retry at index 0: exactly the first term of the backoff series.
  EXPECT_EQ(r.stats.backoff_total, SimDuration::millis(200));
}

TEST(MigrationChaosTest, AbortWithoutRetryBudgetIsTerminal) {
  FaultPlan plan;
  plan.migration_aborts.push_back(
      {SimDuration::millis(1500), "injected mid-round abort"});
  const MigrationRun r = run_chaos_migration(plan, /*max_attempts=*/1);
  EXPECT_TRUE(r.stats.completed);
  EXPECT_FALSE(r.stats.succeeded);
  EXPECT_NE(r.stats.error.find("injected mid-round abort"),
            std::string::npos);
}

TEST(MigrationChaosTest, RepeatedAbortsExhaustTheAttemptBudget) {
  FaultPlan plan;
  // Each abort lands while a streaming attempt is live (streaming starts at
  // 0.5 s; retries restart at 0.9 s and 1.4 s after 200/400 ms backoffs).
  plan.migration_aborts.push_back({SimDuration::millis(700), "abort #0"});
  plan.migration_aborts.push_back({SimDuration::millis(1000), "abort #1"});
  plan.migration_aborts.push_back({SimDuration::millis(1500), "abort #2"});
  const MigrationRun r = run_chaos_migration(plan, /*max_attempts=*/3);
  EXPECT_TRUE(r.stats.completed);
  EXPECT_FALSE(r.stats.succeeded);
  EXPECT_EQ(r.stats.attempts, 3);
  EXPECT_EQ(r.stats.retries, 2);
  // Two retries: 200 ms + 400 ms of the geometric series.
  EXPECT_EQ(r.stats.backoff_total, SimDuration::millis(600));
}

// ------------------------------------------------------- bandwidth collapse

TEST(MigrationChaosTest, BandwidthCollapseSlowsThenRestoresTheCap) {
  FaultPlan plan;
  plan.bandwidth_collapses.push_back(
      {SimDuration::millis(700), SimDuration::seconds(2), 0.1});
  const MigrationRun clean = run_chaos_migration(FaultPlan{});
  const MigrationRun r = run_chaos_migration(plan);
  ASSERT_TRUE(r.stats.succeeded) << r.stats.error;
  EXPECT_GT(r.stats.total_time, clean.stats.total_time);
}

// ------------------------------------------------------------- partitions

TEST(MigrationChaosTest, SurvivesAHardPartitionWindow) {
  FaultPlan plan;
  plan.seed = 9;
  {
    NetFaultSpec part;
    part.at = SimDuration::millis(1200);
    part.duration = SimDuration::seconds(2);
    part.partition = true;
    plan.net.push_back(part);
  }
  const MigrationRun r = run_chaos_migration(plan);
  ASSERT_TRUE(r.stats.succeeded) << r.stats.error;
  EXPECT_GT(r.stats.chunk_retransmits, 0u);
}

// --------------------------------------------------- post-copy strandings

struct PostCopyChaosOpts {
  /// zero() reproduces the pre-engine model: no watchdog, no demand plane.
  SimDuration watchdog = SimDuration::seconds(2);
  vmm::PostCopyPrefetch prefetch = vmm::PostCopyPrefetch::kNone;
  /// 0 keeps the default 32 MiB/s cap. Throttling stretches the background
  /// copy so a mid-copy fault leaves an unsent tail (the rollback shape).
  double bandwidth = 0.0;
  /// zero() disables the retransmit net so a severed link is a pure stall.
  SimDuration chunk_timeout = SimDuration::zero();
  SimDuration drive_budget = SimDuration::seconds(600);
};

/// Like run_chaos_migration but in post-copy mode with the round timer
/// disabled, so a severed source link past the handoff manifests exactly as
/// the failure class under test: the only thing standing between the guest
/// and a permanent hang is the post-copy watchdog.
MigrationRun run_postcopy_chaos(const FaultPlan& plan,
                                const PostCopyChaosOpts& opts = {}) {
  vmm::World world;
  auto host_cfg = small_host_config();
  host_cfg.ksm_enabled = false;
  vmm::Host* host = world.make_host(host_cfg);
  vmm::VirtualMachine* source =
      host->launch_vm(small_vm_config("src", 64), /*boot_touched_mib=*/48)
          .value();
  auto dest_cfg = small_vm_config("dst", 64, 0, 0);
  dest_cfg.incoming_port = 4445;
  (void)host->launch_vm(dest_cfg).value();

  vmm::MigrationConfig cfg;
  cfg.post_copy = true;
  cfg.chunk_timeout = opts.chunk_timeout;
  cfg.round_timeout = SimDuration::zero();  // no round watchdog
  if (opts.bandwidth > 0.0) cfg.bandwidth_limit_bytes_per_sec = opts.bandwidth;
  cfg.postcopy_demand_paging = opts.watchdog > SimDuration::zero();
  cfg.postcopy_watchdog = opts.watchdog;
  cfg.postcopy_prefetch = opts.prefetch;
  vmm::MigrationJob job(&world, source,
                        net::NetAddr{host->node_name(), Port(4445)}, cfg);
  Injector injector(&world, plan);
  injector.attach_migration(&job);
  injector.arm();
  job.start();
  const SimTime deadline = world.simulator().now() + opts.drive_budget;
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  MigrationRun out;
  out.stats = job.stats();
  out.faults = injector.log();
  return out;
}

std::uint64_t count_kind(const std::vector<InjectedFault>& log,
                         const std::string& kind) {
  std::uint64_t n = 0;
  for (const InjectedFault& f : log) {
    if (f.kind == kind) ++n;
  }
  return n;
}

// The acceptance pair: the same open-ended source-link partition, fired one
// second in — squarely between the post-copy handoff (~0.6 s) and the end
// of the 48 MiB background copy (~2.1 s).
FaultPlan source_partition_plan() {
  FaultPlan plan;
  PostCopyFaultSpec cut;
  cut.kind = PostCopyFaultSpec::Kind::kPartitionSourceLink;
  cut.at = SimDuration::seconds(1);
  cut.duration = SimDuration::zero();  // never heals
  plan.postcopy.push_back(cut);
  return plan;
}

TEST(PostCopyChaosTest, OpenEndedSourcePartitionStrandsTheOldModel) {
  // Pre-engine behavior (watchdog disabled): the destination guest runs
  // with pages it can never receive, and the job idles forever — ten
  // simulated minutes later it has neither succeeded nor failed. This is
  // the stranded-guest hole the demand-paging engine exists to close.
  PostCopyChaosOpts opts;
  opts.watchdog = SimDuration::zero();
  const MigrationRun r = run_postcopy_chaos(source_partition_plan(), opts);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_FALSE(r.stats.succeeded);
  EXPECT_GT(count_kind(r.faults, "postcopy.partition"), 0u);
  EXPECT_EQ(r.stats.postcopy_outcome, vmm::PostCopyOutcome::kNone);
}

TEST(PostCopyChaosTest, WatchdogResolvesTheSamePartitionWithinDeadline) {
  // Same plan, watchdog armed, stream throttled to 4 MiB/s so the cut
  // leaves a genuinely unsent tail: the watchdog salvages what the
  // in-flight set holds, finds pages still missing, and — with the
  // destination undiverged — rolls execution back to the source rather
  // than losing the guest.
  PostCopyChaosOpts opts;
  opts.bandwidth = 4.0 * 1024 * 1024;
  const SimDuration watchdog = opts.watchdog;
  const MigrationRun r = run_postcopy_chaos(source_partition_plan(), opts);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_EQ(r.stats.postcopy_outcome,
            vmm::PostCopyOutcome::kRecoveredSourceResume);
  EXPECT_TRUE(r.stats.postcopy_report.is_ok());
  // Terminated within one watchdog deadline (plus scheduling slack) of the
  // last pre-partition progress — never stranded.
  EXPECT_LE(r.stats.total_time.ns(),
            SimDuration::seconds(1).ns() + 3 * watchdog.ns());
}

TEST(PostCopyChaosTest, SourceKillInsideWindowIsTypedDataLoss) {
  // A dead source can neither finish the copy nor take the guest back:
  // the only honest terminal state is a typed data-loss report naming the
  // missing pages — not a hang, not a silent success.
  FaultPlan plan;
  PostCopyFaultSpec kill;
  kill.kind = PostCopyFaultSpec::Kind::kKillSource;
  kill.at = SimDuration::seconds(1);
  plan.postcopy.push_back(kill);
  const MigrationRun r = run_postcopy_chaos(plan);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_FALSE(r.stats.succeeded);
  EXPECT_EQ(count_kind(r.faults, "postcopy.source_kill"), 1u);
  EXPECT_EQ(r.stats.postcopy_outcome, vmm::PostCopyOutcome::kDataLoss);
  EXPECT_EQ(r.stats.postcopy_report.code(), StatusCode::kDataLoss);
}

TEST(PostCopyChaosTest, HealingPartitionCanCompleteFromTheInflightSet) {
  // A partition that heals before the copy would have finished: the tail
  // of the stream lands after the window, and the watchdog completes the
  // handful of severed chunks from the in-flight set.
  FaultPlan plan;
  PostCopyFaultSpec cut;
  cut.kind = PostCopyFaultSpec::Kind::kPartitionSourceLink;
  cut.at = SimDuration::seconds(1);
  cut.duration = SimDuration::millis(300);
  plan.postcopy.push_back(cut);
  const MigrationRun r = run_postcopy_chaos(plan);
  ASSERT_TRUE(r.stats.completed);
  ASSERT_TRUE(r.stats.succeeded) << r.stats.error;
  EXPECT_EQ(r.stats.postcopy_outcome,
            vmm::PostCopyOutcome::kCompletedFromInflight);
  EXPECT_GT(r.stats.inflight_pages_salvaged, 0u);
}

TEST(PostCopyPropertyTest, SeededSweepAlwaysTerminatesWithATypedOutcome) {
  // Property: whatever the onset, fault kind, or prefetch policy, a
  // watchdog-armed post-copy job always terminates with one of the four
  // typed outcomes — and kDataLoss always carries a kDataLoss report.
  // Onsets straddle the whole window: before handoff, mid-copy, and after
  // the copy would have completed cleanly (~2.1 s).
  Rng rng(20260809);
  const vmm::PostCopyPrefetch policies[] = {
      vmm::PostCopyPrefetch::kNone, vmm::PostCopyPrefetch::kLinear,
      vmm::PostCopyPrefetch::kLocality};
  for (int i = 0; i < 12; ++i) {
    FaultPlan plan;
    plan.seed = 100 + static_cast<std::uint64_t>(i);
    PostCopyFaultSpec spec;
    spec.kind = (i % 2 == 0) ? PostCopyFaultSpec::Kind::kPartitionSourceLink
                             : PostCopyFaultSpec::Kind::kKillSource;
    spec.at = SimDuration::millis(
        300 + static_cast<std::int64_t>(rng.uniform(2200)));
    spec.duration = (i % 4 == 0) ? SimDuration::millis(400)
                                 : SimDuration::zero();
    plan.postcopy.push_back(spec);
    PostCopyChaosOpts opts;
    opts.prefetch = policies[i % 3];
    // Realistic retransmit net: a fault landing *before* the handoff (e.g.
    // a severed announce chunk) exhausts the budget and fails the ordinary
    // way; faults past the handoff belong to the watchdog.
    opts.chunk_timeout = SimDuration::seconds(2);
    const MigrationRun r = run_postcopy_chaos(plan, opts);
    ASSERT_TRUE(r.stats.completed)
        << "stranded: i=" << i << " at=" << spec.at.to_string();
    const vmm::PostCopyOutcome o = r.stats.postcopy_outcome;
    if (r.stats.succeeded) {
      EXPECT_TRUE(o == vmm::PostCopyOutcome::kCompleted ||
                  o == vmm::PostCopyOutcome::kCompletedFromInflight)
          << "i=" << i << " outcome=" << vmm::postcopy_outcome_name(o);
    } else if (r.stats.downtime == SimDuration::zero()) {
      // Faulted out before the handoff: an ordinary terminal failure, the
      // post-copy taxonomy never engaged.
      EXPECT_EQ(o, vmm::PostCopyOutcome::kNone) << "i=" << i;
    } else {
      ASSERT_TRUE(o == vmm::PostCopyOutcome::kRecoveredSourceResume ||
                  o == vmm::PostCopyOutcome::kDataLoss)
          << "i=" << i << " outcome=" << vmm::postcopy_outcome_name(o);
      if (o == vmm::PostCopyOutcome::kDataLoss) {
        EXPECT_EQ(r.stats.postcopy_report.code(), StatusCode::kDataLoss)
            << "i=" << i;
      }
    }
  }
}

// --------------------------------------------- bandwidth collapse to zero

TEST(MigrationChaosTest, ZeroFactorCollapseStarvesWithoutAborting) {
  // Regression: factor == 0 used to trip CSK_CHECK(bytes_per_sec > 0)
  // inside set_bandwidth_limit and abort the process. The cap now clamps
  // to the internal floor, the window merely starves the stream, and the
  // restore edge brings the full cap back.
  FaultPlan plan;
  plan.bandwidth_collapses.push_back(
      {SimDuration::millis(700), SimDuration::seconds(2), 0.0});
  const MigrationRun clean = run_chaos_migration(FaultPlan{});
  const MigrationRun r = run_chaos_migration(plan);
  ASSERT_TRUE(r.stats.succeeded) << r.stats.error;
  EXPECT_GT(r.stats.total_time, clean.stats.total_time);
}

// ------------------------------------------------------------ hv pressure

TEST(InjectorTest, MemoryPressureWindowAppliesAndRestores) {
  vmm::World world;
  vmm::Host* host = world.make_host(small_host_config());
  FaultPlan plan;
  plan.memory_pressure.push_back(
      {"host0", SimDuration::seconds(1), SimDuration::seconds(2), 4.0});
  Injector injector(&world, plan);
  injector.arm();
  world.simulator().run_for(SimDuration::millis(1500));
  EXPECT_DOUBLE_EQ(host->hypervisor().memory_pressure(), 4.0);
  world.simulator().run_for(SimDuration::seconds(2));
  EXPECT_DOUBLE_EQ(host->hypervisor().memory_pressure(), 1.0);
  EXPECT_EQ(injector.count("hv.memory_pressure"), 1u);
  EXPECT_EQ(injector.count("hv.memory_pressure_restore"), 1u);
}

TEST(InjectorTest, DisarmMidWindowRestoresPerturbedState) {
  vmm::World world;
  vmm::Host* host = world.make_host(small_host_config());
  FaultPlan plan;
  plan.memory_pressure.push_back(
      {"host0", SimDuration::zero(), SimDuration::seconds(100), 8.0});
  Injector injector(&world, plan);
  injector.arm();
  world.simulator().run_for(SimDuration::seconds(1));
  ASSERT_DOUBLE_EQ(host->hypervisor().memory_pressure(), 8.0);
  injector.disarm();
  EXPECT_DOUBLE_EQ(host->hypervisor().memory_pressure(), 1.0);
  EXPECT_FALSE(world.network().has_fault_hook());
}

// ---------------------------------------------------- detector degradation

class DetectorDegradationTest : public ::testing::Test {
 protected:
  DetectorDegradationTest() {
    auto cfg = small_host_config();
    cfg.boot_touched_mib = 4;
    host_ = world_.make_host(cfg);
  }
  vmm::World world_;
  vmm::Host* host_ = nullptr;
};

TEST_F(DetectorDegradationTest, StalledDedupProbeIsInconclusiveNeverClean) {
  detect::DedupDetectorConfig cfg;
  cfg.file_pages = 20;
  cfg.merge_wait = SimDuration::seconds(5);
  cfg.probe_timeout = SimDuration::seconds(10);
  detect::DedupDetector detector(host_, cfg);
  vmm::VirtualMachine* vm = host_->launch_vm(small_vm_config()).value();
  ASSERT_TRUE(detector.seed_guest(vm->os()).is_ok());

  FaultPlan plan;
  plan.probe_stalls.push_back(
      {SimDuration::zero(), SimDuration::seconds(60)});
  Injector injector(&world_, plan);
  injector.arm();
  detector.set_stall_probe(injector.stall_probe());

  auto report = detector.run(vm->os());
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->verdict, detect::DedupVerdict::kInconclusive);
  EXPECT_NE(report->inconclusive_cause.find("probe timeout"),
            std::string::npos);
  // Graceful degradation must never masquerade as a clean bill of health.
  EXPECT_NE(report->verdict, detect::DedupVerdict::kNoNestedVm);
}

TEST_F(DetectorDegradationTest, ShortStallIsWaitedOutAndVerdictStands) {
  detect::DedupDetectorConfig cfg;
  cfg.file_pages = 20;
  cfg.merge_wait = SimDuration::seconds(5);
  cfg.probe_timeout = SimDuration::seconds(10);
  detect::DedupDetector detector(host_, cfg);
  vmm::VirtualMachine* vm = host_->launch_vm(small_vm_config()).value();
  ASSERT_TRUE(detector.seed_guest(vm->os()).is_ok());

  FaultPlan plan;  // 2 s stall < 10 s budget: detector waits it out
  plan.probe_stalls.push_back(
      {SimDuration::zero(), SimDuration::seconds(2)});
  Injector injector(&world_, plan);
  injector.arm();
  detector.set_stall_probe(injector.stall_probe());

  auto report = detector.run(vm->os());
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->verdict, detect::DedupVerdict::kNoNestedVm)
      << report->explanation;
}

TEST_F(DetectorDegradationTest, StalledGuestProbeIsInconclusive) {
  vmm::VirtualMachine* vm = host_->launch_vm(small_vm_config()).value();
  detect::GuestProbeConfig cfg;
  cfg.probe_timeout = SimDuration::seconds(1);
  detect::GuestTimingProbe probe(&world_.timing(), cfg);

  FaultPlan plan;
  plan.probe_stalls.push_back(
      {SimDuration::zero(), SimDuration::seconds(30)});
  Injector injector(&world_, plan);
  injector.arm();
  probe.set_stall_probe(injector.stall_probe());

  const detect::GuestProbeReport report = probe.run(*vm);
  EXPECT_EQ(report.verdict, detect::GuestProbeVerdict::kInconclusive);
  EXPECT_FALSE(report.inconclusive_cause.empty());
  EXPECT_TRUE(report.readings.empty());
}

// ------------------------------------------------------ forwarder restart

TEST(ForwarderRestartTest, InterruptWithAutoRestartRebindsWithBackoff) {
  vmm::World world;
  (void)world.make_host(small_host_config());
  net::PortForwarder fwd(&world.network(),
                         net::NetAddr{"host0", Port(2222)},
                         net::NetAddr{"guest0", Port(22)}, "ssh-fwd");
  ASSERT_TRUE(fwd.start().is_ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = SimDuration::millis(100);
  fwd.enable_auto_restart(&world.simulator(), policy);

  fwd.interrupt();
  EXPECT_FALSE(fwd.running());
  // First rebind attempt fires after the first backoff term (100 ms).
  world.simulator().run_for(SimDuration::millis(99));
  EXPECT_FALSE(fwd.running());
  world.simulator().run_for(SimDuration::millis(2));
  EXPECT_TRUE(fwd.running());
  EXPECT_EQ(fwd.stats().interrupts, 1u);
  EXPECT_EQ(fwd.stats().restarts, 1u);
}

TEST(ForwarderRestartTest, InterruptWithoutAutoRestartStaysDown) {
  vmm::World world;
  (void)world.make_host(small_host_config());
  net::PortForwarder fwd(&world.network(),
                         net::NetAddr{"host0", Port(2222)},
                         net::NetAddr{"guest0", Port(22)}, "ssh-fwd");
  ASSERT_TRUE(fwd.start().is_ok());
  fwd.interrupt();
  world.simulator().run_for(SimDuration::seconds(10));
  EXPECT_FALSE(fwd.running());
  // Manual restart still works.
  ASSERT_TRUE(fwd.start().is_ok());
  EXPECT_TRUE(fwd.running());
}

}  // namespace
}  // namespace csk::fault
