// Observability layer tests: JSON value/writer/parser, metrics registry,
// trace sink, and the zero-cost-in-sim-time guarantee.
#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace csk::obs {
namespace {

// ------------------------------------------------------------------- JSON

TEST(JsonTest, DumpsScalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(-7).dump(), "-7");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(JsonTest, IntegersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue(1000000.0).dump(), "1000000");
  EXPECT_EQ(JsonValue(std::uint64_t{5}).dump(), "5");
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonValue("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetReplaces) {
  JsonValue obj = JsonValue::object().set("z", 1).set("a", 2).set("z", 3);
  EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("a")->as_number(), 2.0);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonTest, ParseRoundTripsNestedDocument) {
  JsonValue doc = JsonValue::object()
                      .set("name", "bench")
                      .set("n", 3)
                      .set("ok", true)
                      .set("nothing", JsonValue())
                      .set("xs", JsonValue::array().push(1).push("two").push(
                                     JsonValue::object().set("k", 2.5)));
  const std::string text = doc.dump(2);
  auto parsed = JsonValue::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->dump(), doc.dump());
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").is_ok());
  EXPECT_FALSE(JsonValue::parse("{\"a\":}").is_ok());
  EXPECT_FALSE(JsonValue::parse("[1,2,]").is_ok());
  EXPECT_FALSE(JsonValue::parse("{} trailing").is_ok());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").is_ok());
}

TEST(JsonTest, ParseHandlesUnicodeEscapes) {
  auto parsed = JsonValue::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->as_string(), "A\xc3\xa9");
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, KeyCanonicalizesLabelOrder) {
  EXPECT_EQ(MetricsRegistry::key("m", {}), "m");
  EXPECT_EQ(MetricsRegistry::key("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::key("m", {{"a", "1"}, {"b", "2"}}),
            "m{a=1,b=2}");
}

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  reg.counter("c").add();
  reg.counter("c").add(4);
  reg.gauge("g").set(2.5);
  reg.histogram("h").observe(1.0);
  reg.histogram("h").observe(3.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("c"), 5u);
  EXPECT_EQ(snap.gauge_or("g"), 2.5);
  const HistogramSummary h = snap.histogram_or("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 4.0);
  EXPECT_EQ(h.mean, 2.0);
  EXPECT_EQ(h.min, 1.0);
  EXPECT_EQ(h.max, 3.0);
  EXPECT_FALSE(snap.has("absent"));
  EXPECT_EQ(snap.counter_or("absent", 9), 9u);
}

TEST(MetricsTest, LabelsDistinguishInstruments) {
  MetricsRegistry reg;
  reg.counter("hv.exits", {{"layer", "L1"}}).add(2);
  reg.counter("hv.exits", {{"layer", "L2"}}).add(7);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("hv.exits{layer=L1}"), 2u);
  EXPECT_EQ(snap.counter_or("hv.exits{layer=L2}"), 7u);
}

TEST(MetricsTest, ResetZeroesButKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  c.add(10);
  h.observe(5.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.stats().count(), 0u);
  c.add(3);  // the cached reference still feeds the same instrument
  EXPECT_EQ(reg.snapshot().counter_or("c"), 3u);
  EXPECT_EQ(reg.instruments(), 2u);
}

TEST(MetricsTest, ReferencesSurviveRehash) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  first.add(1);
  for (int i = 0; i < 1000; ++i) {
    reg.counter("filler" + std::to_string(i)).add();
  }
  first.add(1);  // must still be the live instrument after any rehash
  EXPECT_EQ(reg.snapshot().counter_or("first"), 2u);
}

TEST(MetricsTest, SnapshotToJsonHasSections) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(1.0);
  reg.histogram("h").observe(1.0);
  const JsonValue json = reg.snapshot().to_json();
  ASSERT_NE(json.find("counters"), nullptr);
  ASSERT_NE(json.find("gauges"), nullptr);
  ASSERT_NE(json.find("histograms"), nullptr);
  EXPECT_EQ(json.find("counters")->find("c")->as_number(), 1.0);
}

TEST(MetricsTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&metrics(), &metrics());
}

// ------------------------------------------------------------------ merge

TEST(MetricsTest, MergeFromAddsCountersAndPoolsHistogramsExactly) {
  MetricsRegistry a, b, whole;
  a.counter("exits").add(3);
  b.counter("exits").add(5);
  b.counter("only_b").add(1);
  const std::vector<double> xs{1.0, 2.0, 6.0};
  const std::vector<double> ys{3.0, 10.0};
  for (double x : xs) {
    a.histogram("lat").observe(x);
    whole.histogram("lat").observe(x);
  }
  for (double y : ys) {
    b.histogram("lat").observe(y);
    whole.histogram("lat").observe(y);
  }
  MetricsSnapshot merged = a.snapshot();
  merged.merge_from(b.snapshot());
  EXPECT_EQ(merged.counter_or("exits"), 8u);
  EXPECT_EQ(merged.counter_or("only_b"), 1u);
  // Pooled moments must equal observing every sample in one registry —
  // merging is exact, not approximate.
  const HistogramSummary m = merged.histogram_or("lat");
  const HistogramSummary w = whole.snapshot().histogram_or("lat");
  EXPECT_EQ(m.count, w.count);
  EXPECT_DOUBLE_EQ(m.sum, w.sum);
  EXPECT_DOUBLE_EQ(m.mean, w.mean);
  EXPECT_NEAR(m.stddev, w.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(m.min, w.min);
  EXPECT_DOUBLE_EQ(m.max, w.max);
}

TEST(MetricsTest, MergeSummariesHandlesEmptySides) {
  HistogramSummary empty;
  HistogramSummary one;
  one.count = 4;
  one.sum = 10.0;
  one.mean = 2.5;
  one.stddev = 0.5;
  one.min = 2.0;
  one.max = 3.0;
  const HistogramSummary left = merge_summaries(empty, one);
  const HistogramSummary right = merge_summaries(one, empty);
  EXPECT_EQ(left.count, 4u);
  EXPECT_DOUBLE_EQ(left.mean, 2.5);
  EXPECT_EQ(right.count, 4u);
  EXPECT_DOUBLE_EQ(right.stddev, 0.5);
}

TEST(MetricsTest, GaugeMergeIsLastWriterInMergeOrder) {
  MetricsRegistry a, b;
  a.gauge("level").set(1.0);
  b.gauge("level").set(7.0);
  MetricsSnapshot ab = a.snapshot();
  ab.merge_from(b.snapshot());
  MetricsSnapshot ba = b.snapshot();
  ba.merge_from(a.snapshot());
  EXPECT_DOUBLE_EQ(ab.gauge_or("level"), 7.0);
  EXPECT_DOUBLE_EQ(ba.gauge_or("level"), 1.0);
}

TEST(MetricsTest, ScopedRegistryRedirectsTheGlobalAccessor) {
  MetricsRegistry* global = &metrics();
  MetricsRegistry local;
  {
    ScopedMetricsRegistry scope(local);
    EXPECT_EQ(&metrics(), &local);
    metrics().counter("scoped").add(2);
  }
  EXPECT_EQ(&metrics(), global);
  EXPECT_EQ(local.snapshot().counter_or("scoped"), 2u);
  EXPECT_EQ(global->snapshot().counter_or("scoped"), 0u);
}

TEST(MetricsTest, ScopedRegistriesNest) {
  MetricsRegistry outer_reg, inner_reg;
  ScopedMetricsRegistry outer(outer_reg);
  {
    ScopedMetricsRegistry inner(inner_reg);
    metrics().counter("c").add(1);
  }
  metrics().counter("c").add(1);
  EXPECT_EQ(inner_reg.snapshot().counter_or("c"), 1u);
  EXPECT_EQ(outer_reg.snapshot().counter_or("c"), 1u);
}

// ------------------------------------------------------------------ trace

TEST(TraceTest, DisabledSinkRecordsNothing) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.instant("e", SimTime::origin());
  sink.complete("s", SimTime::origin(), SimDuration::micros(5));
  sink.counter("c", SimTime::origin(), 1.0);
  EXPECT_EQ(sink.events(), 0u);
}

TEST(TraceTest, RecordsChromeTraceEvents) {
  TraceSink sink;
  sink.enable();
  const SimTime t1 = SimTime::origin() + SimDuration::micros(3);
  sink.instant("tick", t1, "sim");
  sink.complete("round", t1, SimDuration::millis(2), "vmm");
  sink.counter("rate", t1, 12.5, "vmm");
  ASSERT_EQ(sink.events(), 3u);

  const JsonValue json = sink.to_json();
  const JsonValue* events = json.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 3u);

  const JsonValue& instant = events->as_array()[0];
  EXPECT_EQ(instant.find("name")->as_string(), "tick");
  EXPECT_EQ(instant.find("ph")->as_string(), "i");
  EXPECT_EQ(instant.find("ts")->as_number(), 3.0);  // microseconds

  const JsonValue& complete = events->as_array()[1];
  EXPECT_EQ(complete.find("ph")->as_string(), "X");
  EXPECT_EQ(complete.find("dur")->as_number(), 2000.0);

  const JsonValue& counter = events->as_array()[2];
  EXPECT_EQ(counter.find("ph")->as_string(), "C");

  // The serialized stream must itself be valid JSON.
  EXPECT_TRUE(JsonValue::parse(sink.to_chrome_json()).is_ok());

  sink.clear();
  EXPECT_EQ(sink.events(), 0u);
}

TEST(TraceTest, GlobalTracerIsSingletonAndDisabledByDefault) {
  EXPECT_EQ(&tracer(), &tracer());
}

TEST(TraceTest, ScopedSinkRedirectsTheGlobalAccessor) {
  TraceSink* global = &tracer();
  TraceSink local;
  {
    ScopedTraceSink scope(local);
    EXPECT_EQ(&tracer(), &local);
  }
  EXPECT_EQ(&tracer(), global);
}

// A traced run and an untraced run of the same scenario must produce
// byte-identical simulated results — recording never advances SimTime.
TEST(TraceTest, TracingDoesNotPerturbSimulation) {
  auto run = [](bool traced) {
    const bool was_enabled = tracer().enabled();
    tracer().enable(traced);
    sim::Simulator sim;
    std::uint64_t ticks = 0;
    sim.schedule_periodic(SimDuration::millis(10), [&] {
      ++ticks;
      return ticks < 20;
    });
    sim.schedule_after(SimDuration::millis(55), [&] {
      sim.schedule_after(SimDuration::millis(5), [] {});
    });
    sim.run_until_idle();
    tracer().enable(was_enabled);
    return std::pair{sim.now().ns(), sim.dispatched()};
  };
  const auto untraced = run(false);
  const auto traced = run(true);
  EXPECT_EQ(untraced, traced);
  tracer().clear();
}

}  // namespace
}  // namespace csk::obs
