// Discrete-event simulator kernel tests.
#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace csk::sim {
namespace {

TEST(SimulatorTest, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::origin());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, DispatchesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(SimDuration::micros(30), [&] { order.push_back(3); });
  sim.schedule_after(SimDuration::micros(10), [&] { order.push_back(1); });
  sim.schedule_after(SimDuration::micros(20), [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ns(), 30000);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_after(SimDuration::micros(10), [&, i] { order.push_back(i); });
  }
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_after(SimDuration::seconds(2), [&] { seen = sim.now(); });
  sim.run_until_idle();
  EXPECT_EQ(seen.ns(), SimDuration::seconds(2).ns());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(SimDuration::seconds(1), [&] { ++fired; });
  sim.schedule_after(SimDuration::seconds(3), [&] { ++fired; });
  sim.run_until(SimTime::origin() + SimDuration::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), SimDuration::seconds(2).ns());
  sim.run_until_idle();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsDispatch) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_after(SimDuration::micros(5), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel reports false
  sim.run_until_idle();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, CancelFromInsideEvent) {
  Simulator sim;
  int fired = 0;
  const EventId victim =
      sim.schedule_after(SimDuration::micros(20), [&] { ++fired; });
  sim.schedule_after(SimDuration::micros(10), [&] { sim.cancel(victim); });
  sim.run_until_idle();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(SimDuration::micros(1), recurse);
  };
  sim.schedule_after(SimDuration::micros(1), recurse);
  sim.run_until_idle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now().ns(), 5000);
}

TEST(SimulatorTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.schedule_after(SimDuration::micros(5), [] {});
  sim.run_until_idle();
  EXPECT_DEATH(sim.schedule_at(SimTime::origin(), [] {}), "past");
}

TEST(SimulatorTest, PeriodicFiresRepeatedly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_periodic(SimDuration::millis(10), [&] {
    ++fired;
    return true;
  });
  sim.run_until(SimTime::origin() + SimDuration::millis(55));
  EXPECT_EQ(fired, 5);
}

TEST(SimulatorTest, PeriodicStopsWhenCallbackReturnsFalse) {
  Simulator sim;
  int fired = 0;
  sim.schedule_periodic(SimDuration::millis(10), [&] {
    ++fired;
    return fired < 3;
  });
  sim.run_until_idle();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, PeriodicCancellation) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_periodic(SimDuration::millis(10), [&] {
    ++fired;
    return true;
  });
  sim.run_until(SimTime::origin() + SimDuration::millis(25));
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(SimTime::origin() + SimDuration::millis(100));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PeriodicCancelBeforeFirstFiring) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_periodic(SimDuration::millis(10), [&] {
    ++fired;
    return true;
  });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until_idle();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, AdvanceMovesClockWithoutEvents) {
  Simulator sim;
  sim.advance(SimDuration::seconds(10));
  EXPECT_EQ(sim.now().ns(), SimDuration::seconds(10).ns());
}

TEST(SimulatorTest, RunawayLoopGuardTrips) {
  Simulator sim;
  std::function<void()> forever = [&] {
    sim.schedule_after(SimDuration::nanos(1), forever);
  };
  sim.schedule_after(SimDuration::nanos(1), forever);
  EXPECT_DEATH(sim.run_until_idle(/*max_events=*/1000), "runaway");
}

TEST(SimulatorTest, DispatchedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_after(SimDuration::micros(i + 1), [] {});
  }
  sim.run_until_idle();
  EXPECT_EQ(sim.dispatched(), 7u);
}

TEST(SimulatorTest, RunUntilSkipsCancelledHeadTombstone) {
  // Regression: a cancelled tombstone with when <= deadline at the queue
  // head used to let run_until() dispatch the *next* real event even past
  // the deadline — and then drag the clock backwards to the deadline.
  Simulator sim;
  int a_fired = 0;
  sim.schedule_at(SimTime(10), [&] { ++a_fired; });
  const EventId b = sim.schedule_at(SimTime(5), [] {});
  EXPECT_TRUE(sim.cancel(b));
  sim.run_until(SimTime(7));
  EXPECT_EQ(a_fired, 0);  // A@10 is strictly after the deadline
  EXPECT_EQ(sim.now().ns(), 7);
  sim.run_until_idle();
  EXPECT_EQ(a_fired, 1);
  EXPECT_EQ(sim.now().ns(), 10);
}

TEST(SimulatorTest, RunUntilSkipsRunOfCancelledTombstones) {
  Simulator sim;
  int fired = 0;
  std::vector<EventId> victims;
  for (int i = 1; i <= 4; ++i) {
    victims.push_back(sim.schedule_at(SimTime(i), [] {}));
  }
  sim.schedule_at(SimTime(20), [&] { ++fired; });
  for (EventId id : victims) EXPECT_TRUE(sim.cancel(id));
  sim.run_until(SimTime(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now().ns(), 10);
  EXPECT_EQ(sim.pending_events(), 1u);  // only the real event remains
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_after(SimDuration::micros(1), [&] { ++fired; });
  sim.run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(id));  // contract: it already ran
}

TEST(SimulatorTest, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId::invalid()));
  EXPECT_FALSE(sim.cancel(EventId(424242)));  // never scheduled
}

TEST(SimulatorTest, PeriodicSelfCancelFromOwnCallback) {
  Simulator sim;
  int fired = 0;
  EventId self = EventId::invalid();
  self = sim.schedule_periodic(SimDuration::millis(10), [&] {
    ++fired;
    if (fired == 2) {
      EXPECT_TRUE(sim.cancel(self));
    }
    return true;  // self-cancel must win over the keep-alive return
  });
  sim.run_until(SimTime::origin() + SimDuration::millis(100));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.cancel(self));  // already gone
}

TEST(SimulatorTest, PendingEventsExactUnderHeavyCancellation) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_after(SimDuration::micros(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(sim.cancel(ids[i]));
  EXPECT_EQ(sim.pending_events(), 50u);  // tombstones don't inflate the count
  // Double-cancel of an already-cancelled event stays false and non-leaky.
  EXPECT_FALSE(sim.cancel(ids[0]));
  EXPECT_EQ(sim.pending_events(), 50u);
  EXPECT_EQ(sim.run_until_idle(), 50u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, TombstonesAreConsumedNotLeaked) {
  // Cancel events whose timestamps are never stepped over one at a time:
  // run_until must consume the tombstones, leaving an empty queue.
  Simulator sim;
  for (int round = 0; round < 10; ++round) {
    const EventId id = sim.schedule_after(SimDuration::micros(1), [] {});
    EXPECT_TRUE(sim.cancel(id));
    sim.run_for(SimDuration::micros(2));
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.dispatched(), 0u);
}

TEST(SimulatorTest, TwoPeriodicTasksInterleave) {
  Simulator sim;
  std::vector<char> order;
  sim.schedule_periodic(SimDuration::millis(10), [&] {
    order.push_back('a');
    return order.size() < 8;
  });
  sim.schedule_periodic(SimDuration::millis(15), [&] {
    order.push_back('b');
    return order.size() < 8;
  });
  sim.run_until(SimTime::origin() + SimDuration::millis(60));
  // a@10, b@15, a@20, a@30, b@30, a@40, b@45, a@50...
  EXPECT_GE(order.size(), 6u);
  EXPECT_EQ(order[0], 'a');
  EXPECT_EQ(order[1], 'b');
}

}  // namespace
}  // namespace csk::sim
