// Network fabric tests: binding, delivery, serialization/backpressure,
// port forwarding and NAT, tap semantics, zero-copy payloads, burst
// delivery, and the golden equivalence tier proving the batched fabric
// observationally identical to the per-packet path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "fleet/fleet.h"
#include "net/network.h"
#include "net/port_forward.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "workloads/netperf.h"

namespace csk::net {
namespace {

Packet make_packet(SimNetwork& net, const NetAddr& from,
                   const std::string& payload, std::uint64_t bytes = 100,
                   ProtoKind kind = ProtoKind::kGeneric) {
  Packet p;
  p.conn = net.new_conn();
  p.kind = kind;
  p.src = from;
  p.reply_to = from;
  p.wire_bytes = bytes;
  p.payload = payload;
  return p;
}

class NetTest : public ::testing::Test {
 protected:
  NetTest() : net_(&sim_) {}
  sim::Simulator sim_;
  SimNetwork net_;
};

TEST_F(NetTest, BindAndDeliver) {
  std::vector<Packet> rx;
  auto ep = net_.bind({"host0", Port(80)}, [&](Packet p) { rx.push_back(p); });
  ASSERT_TRUE(ep.is_ok());
  net_.send({"host0", Port(80)},
            make_packet(net_, {"client", Port(1234)}, "hi"));
  sim_.run_until_idle();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].payload, "hi");
  EXPECT_EQ(net_.stats().packets_delivered, 1u);
}

TEST_F(NetTest, DoubleBindFails) {
  ASSERT_TRUE(net_.bind({"host0", Port(80)}, [](Packet) {}).is_ok());
  auto second = net_.bind({"host0", Port(80)}, [](Packet) {});
  EXPECT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(NetTest, UnbindDropsTraffic) {
  int rx = 0;
  auto ep = net_.bind({"host0", Port(80)}, [&](Packet) { ++rx; });
  ASSERT_TRUE(ep.is_ok());
  net_.unbind(ep.value());
  net_.send({"host0", Port(80)}, make_packet(net_, {"c", Port(1)}, "x"));
  sim_.run_until_idle();
  EXPECT_EQ(rx, 0);
  EXPECT_EQ(net_.stats().packets_dropped_unbound, 1u);
  // Address is free again.
  EXPECT_TRUE(net_.bind({"host0", Port(80)}, [](Packet) {}).is_ok());
}

TEST_F(NetTest, InFlightPacketDropsIfUnboundBeforeArrival) {
  int rx = 0;
  auto ep = net_.bind({"host0", Port(80)}, [&](Packet) { ++rx; });
  net_.send({"host0", Port(80)}, make_packet(net_, {"c", Port(1)}, "x"));
  net_.unbind(ep.value());  // before delivery event fires
  sim_.run_until_idle();
  EXPECT_EQ(rx, 0);
}

TEST_F(NetTest, DeliveryTakesLatencyPlusSerialization) {
  LinkModel slow;
  slow.latency = SimDuration::millis(10);
  slow.bytes_per_sec = 1000.0;  // 1 KB/s
  slow.per_packet_cpu = SimDuration::zero();
  net_.set_link("a", "b", slow);
  SimTime arrival;
  (void)net_.bind({"b", Port(1)}, [&](Packet) { arrival = sim_.now(); });
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "x", 500));
  sim_.run_until_idle();
  // 500 B at 1 KB/s = 500 ms + 10 ms latency.
  EXPECT_EQ(arrival.ns(), SimDuration::millis(510).ns());
}

TEST_F(NetTest, LinkSerializesBackToBackPackets) {
  LinkModel slow;
  slow.latency = SimDuration::zero();
  slow.bytes_per_sec = 1000.0;
  slow.per_packet_cpu = SimDuration::zero();
  net_.set_link("a", "b", slow);
  std::vector<SimTime> arrivals;
  (void)net_.bind({"b", Port(1)}, [&](Packet) { arrivals.push_back(sim_.now()); });
  for (int i = 0; i < 3; ++i) {
    net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "x", 1000));
  }
  sim_.run_until_idle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0].ns(), SimDuration::seconds(1).ns());
  EXPECT_EQ(arrivals[1].ns(), SimDuration::seconds(2).ns());
  EXPECT_EQ(arrivals[2].ns(), SimDuration::seconds(3).ns());
}

TEST_F(NetTest, LoopbackIsFasterThanDefaultLink) {
  SimTime loopback_arrival, cross_arrival;
  (void)net_.bind({"a", Port(1)}, [&](Packet) { loopback_arrival = sim_.now(); });
  (void)net_.bind({"b", Port(1)}, [&](Packet) { cross_arrival = sim_.now(); });
  net_.send({"a", Port(1)}, make_packet(net_, {"a", Port(2)}, "x", 100));
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(2)}, "x", 100));
  sim_.run_until_idle();
  EXPECT_LT(loopback_arrival.ns(), cross_arrival.ns());
}

TEST_F(NetTest, EstimateArrivalMatchesModelShape) {
  const SimTime est = net_.estimate_arrival("a", "b", 1 << 20);
  EXPECT_GT(est, sim_.now());
}

TEST_F(NetTest, ConnIdsAreUnique) {
  EXPECT_NE(net_.new_conn(), net_.new_conn());
}

// --------------------------------------------------------- port forwarder

class ForwarderTest : public NetTest {
 protected:
  void bind_echo_server(const NetAddr& addr) {
    (void)net_.bind(addr, [this, addr](Packet p) {
      Packet reply = p;
      reply.src = addr;
      reply.payload = "echo:" + p.payload.str();
      net_.send(p.reply_to, std::move(reply));
    });
  }
};

TEST_F(ForwarderTest, ForwardsToTarget) {
  std::vector<Packet> rx;
  (void)net_.bind({"guest", Port(22)}, [&](Packet p) { rx.push_back(p); });
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  net_.send({"host", Port(2222)},
            make_packet(net_, {"client", Port(5)}, "ssh-hello"));
  sim_.run_until_idle();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].payload, "ssh-hello");
  // NAT: replies must route back through the forwarder.
  EXPECT_EQ(rx[0].reply_to, (NetAddr{"host", Port(2222)}));
  EXPECT_EQ(fwd.stats().forwarded, 1u);
}

TEST_F(ForwarderTest, RepliesReturnToClient) {
  bind_echo_server({"guest", Port(22)});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  std::vector<Packet> client_rx;
  (void)net_.bind({"client", Port(5)}, [&](Packet p) { client_rx.push_back(p); });
  net_.send({"host", Port(2222)},
            make_packet(net_, {"client", Port(5)}, "ping"));
  sim_.run_until_idle();
  ASSERT_EQ(client_rx.size(), 1u);
  EXPECT_EQ(client_rx[0].payload, "echo:ping");
  // Masquerade: the reply appears to come from the forwarder's address.
  EXPECT_EQ(client_rx[0].src, (NetAddr{"host", Port(2222)}));
  EXPECT_EQ(fwd.stats().replies, 1u);
}

TEST_F(ForwarderTest, TwoHopChainRelaysBothWays) {
  bind_echo_server({"nested", Port(22)});
  PortForwarder inner(&net_, {"guestx", Port(22)}, {"nested", Port(22)});
  PortForwarder outer(&net_, {"host", Port(2222)}, {"guestx", Port(22)});
  ASSERT_TRUE(inner.start().is_ok());
  ASSERT_TRUE(outer.start().is_ok());
  std::vector<Packet> client_rx;
  (void)net_.bind({"client", Port(5)}, [&](Packet p) { client_rx.push_back(p); });
  net_.send({"host", Port(2222)}, make_packet(net_, {"client", Port(5)}, "hi"));
  sim_.run_until_idle();
  ASSERT_EQ(client_rx.size(), 1u);
  EXPECT_EQ(client_rx[0].payload, "echo:hi");
  EXPECT_EQ(inner.stats().forwarded, 1u);
  EXPECT_EQ(outer.stats().replies, 1u);
}

TEST_F(ForwarderTest, StartFailsWhenPortTaken) {
  (void)net_.bind({"host", Port(2222)}, [](Packet) {});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  EXPECT_FALSE(fwd.start().is_ok());
  EXPECT_FALSE(fwd.running());
}

TEST_F(ForwarderTest, StopReleasesThePort) {
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  fwd.stop();
  EXPECT_TRUE(net_.bind({"host", Port(2222)}, [](Packet) {}).is_ok());
}

TEST_F(ForwarderTest, SetTargetRedirectsNewFlows) {
  std::vector<Packet> old_rx, new_rx;
  (void)net_.bind({"old", Port(22)}, [&](Packet p) { old_rx.push_back(p); });
  (void)net_.bind({"new", Port(22)}, [&](Packet p) { new_rx.push_back(p); });
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"old", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "a"));
  sim_.run_until_idle();
  fwd.set_target({"new", Port(22)});
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "b"));
  sim_.run_until_idle();
  EXPECT_EQ(old_rx.size(), 1u);
  EXPECT_EQ(new_rx.size(), 1u);
}

// ------------------------------------------------------------------- taps

class CountingTap : public PacketTap {
 public:
  Verdict inspect(Packet& pkt, Direction dir) override {
    ++count;
    last_dir = dir;
    if (!rewrite.empty()) pkt.payload = rewrite;
    return drop ? Verdict::kDrop : Verdict::kPass;
  }
  int count = 0;
  bool drop = false;
  std::string rewrite;
  Direction last_dir = Direction::kForward;
};

TEST_F(ForwarderTest, TapSeesForwardedPackets) {
  (void)net_.bind({"guest", Port(22)}, [](Packet) {});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap tap;
  fwd.add_tap(&tap);
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "x"));
  sim_.run_until_idle();
  EXPECT_EQ(tap.count, 1);
  EXPECT_EQ(tap.last_dir, PacketTap::Direction::kForward);
}

TEST_F(ForwarderTest, TapDropConsumesPacket) {
  int rx = 0;
  (void)net_.bind({"guest", Port(22)}, [&](Packet) { ++rx; });
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap tap;
  tap.drop = true;
  fwd.add_tap(&tap);
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "x"));
  sim_.run_until_idle();
  EXPECT_EQ(rx, 0);
  EXPECT_EQ(fwd.stats().dropped_by_tap, 1u);
}

TEST_F(ForwarderTest, TapMutationPropagates) {
  std::vector<Packet> rx;
  (void)net_.bind({"guest", Port(22)}, [&](Packet p) { rx.push_back(p); });
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap tap;
  tap.rewrite = "tampered";
  fwd.add_tap(&tap);
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "clean"));
  sim_.run_until_idle();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].payload, "tampered");
}

TEST_F(ForwarderTest, RemoveTapStopsInspection) {
  (void)net_.bind({"guest", Port(22)}, [](Packet) {});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap tap;
  fwd.add_tap(&tap);
  fwd.remove_tap(&tap);
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "x"));
  sim_.run_until_idle();
  EXPECT_EQ(tap.count, 0);
}

// A tap may add/remove taps (itself included) from inside inspect(); the
// forwarder must keep walking the remaining chain for the current packet.
class ReentrantTap : public PacketTap {
 public:
  explicit ReentrantTap(PortForwarder* fwd) : fwd_(fwd) {}
  Verdict inspect(Packet&, Direction) override {
    ++count;
    if (remove_self) fwd_->remove_tap(this);
    if (remove_other != nullptr) {
      fwd_->remove_tap(remove_other);
      remove_other = nullptr;
    }
    return Verdict::kPass;
  }
  PortForwarder* fwd_;
  PacketTap* remove_other = nullptr;
  bool remove_self = false;
  int count = 0;
};

// Regression: remove_tap() from inside inspect() used to erase out from
// under the forwarder's tap iteration (vector invalidation). Now the slot
// is nulled and compacted after the walk: the rest of the chain still runs
// for the current packet, and the removed tap never runs again.
TEST_F(ForwarderTest, TapMayRemoveItselfDuringInspect) {
  (void)net_.bind({"guest", Port(22)}, [](Packet) {});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  ReentrantTap first(&fwd);
  first.remove_self = true;
  CountingTap second;
  fwd.add_tap(&first);
  fwd.add_tap(&second);

  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "a"));
  sim_.run_until_idle();
  EXPECT_EQ(first.count, 1);
  EXPECT_EQ(second.count, 1);  // chain continued past the self-removal

  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "b"));
  sim_.run_until_idle();
  EXPECT_EQ(first.count, 1);  // gone for good
  EXPECT_EQ(second.count, 2);
}

TEST_F(ForwarderTest, TapMayRemoveALaterTapDuringInspect) {
  (void)net_.bind({"guest", Port(22)}, [](Packet) {});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  ReentrantTap first(&fwd);
  CountingTap second;
  first.remove_other = &second;
  fwd.add_tap(&first);
  fwd.add_tap(&second);

  for (int i = 0; i < 2; ++i) {
    net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "x"));
    sim_.run_until_idle();
  }
  EXPECT_EQ(first.count, 2);
  // Removed before its slot was reached: skipped for that packet too.
  EXPECT_EQ(second.count, 0);
}

// --------------------------------------------------------- per-link stats

TEST_F(NetTest, LinkStatsAccumulatePerLink) {
  (void)net_.bind({"b", Port(1)}, [](Packet) {});
  (void)net_.bind({"a", Port(1)}, [](Packet) {});
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "x", 100));
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "y", 150));
  net_.send({"a", Port(1)}, make_packet(net_, {"a", Port(9)}, "z", 70));
  sim_.run_until_idle();

  EXPECT_EQ(net_.link_stats("a", "b").packets_sent, 2u);
  EXPECT_EQ(net_.link_stats("a", "b").bytes_sent, 250u);
  // The key is order-independent.
  EXPECT_EQ(net_.link_stats("b", "a").packets_sent, 2u);
  EXPECT_EQ(net_.link_stats("a", "a").bytes_sent, 70u);
  EXPECT_EQ(net_.link_stats("a", "zzz").packets_sent, 0u);
}

TEST_F(NetTest, LinkStatsChargeFaultDroppedPackets) {
  // A tail-dropped packet still crossed the wire: link stats count it,
  // delivery stats do not.
  net_.set_fault_hook([](const Packet&, const std::string&,
                         const std::string&) {
    return FaultDecision{true, SimDuration::zero()};
  });
  (void)net_.bind({"b", Port(1)}, [](Packet) {});
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "x", 100));
  sim_.run_until_idle();
  EXPECT_EQ(net_.link_stats("a", "b").packets_sent, 1u);
  EXPECT_EQ(net_.stats().packets_dropped_fault, 1u);
  EXPECT_EQ(net_.stats().packets_delivered, 0u);
}

TEST_F(NetTest, SetLinkRemodelPreservesStatsAndHorizon) {
  (void)net_.bind({"b", Port(1)}, [](Packet) {});
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "x", 100));
  sim_.run_until_idle();
  LinkModel faster;
  faster.bytes_per_sec = 2.5e9;
  net_.set_link("a", "b", faster);
  EXPECT_EQ(net_.link_stats("a", "b").packets_sent, 1u);
}

// -------------------------------------------- estimate_arrival contract

// estimate_arrival prices an idle link and never consults the fault hook
// (see the header contract): with the link busy and the hook injecting
// latency, the real arrival send() reports must come later.
TEST_F(NetTest, EstimateArrivalIgnoresQueueingAndFaultLatency) {
  LinkModel slow;
  slow.latency = SimDuration::millis(1);
  slow.bytes_per_sec = 1000.0;
  slow.per_packet_cpu = SimDuration::zero();
  net_.set_link("a", "b", slow);
  net_.set_fault_hook([](const Packet&, const std::string&,
                         const std::string&) {
    return FaultDecision{false, SimDuration::millis(50)};
  });
  (void)net_.bind({"b", Port(1)}, [](Packet) {});

  // Occupy the serialization horizon for 1 s.
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "bulk", 1000));
  const SimTime estimate = net_.estimate_arrival("a", "b", 500);
  const SimTime real =
      net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "x", 500));
  // Idle-link estimate: 500 ms tx + 1 ms latency from now.
  EXPECT_EQ(estimate.ns(), SimDuration::millis(501).ns());
  // Real arrival queues behind the bulk packet and eats the injected 50 ms.
  EXPECT_EQ(real.ns(), SimDuration::millis(1551).ns());
  sim_.run_until_idle();
}

// ------------------------------------------------------ burst delivery mode

TEST(BurstModeTest, ZeroWindowIsTimingExact) {
  sim::Simulator sim;
  SimNetwork net(&sim);
  net.set_delivery_mode(DeliveryMode::kBurst);  // window stays zero
  LinkModel slow;
  slow.latency = SimDuration::millis(10);
  slow.bytes_per_sec = 1000.0;
  slow.per_packet_cpu = SimDuration::zero();
  net.set_link("a", "b", slow);
  std::vector<SimTime> arrivals;
  (void)net.bind({"b", Port(1)}, [&](Packet) { arrivals.push_back(sim.now()); });
  net.send({"b", Port(1)}, make_packet(net, {"a", Port(9)}, "x", 500));
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 1u);
  // Identical to the per-packet DeliveryTakesLatencyPlusSerialization case.
  EXPECT_EQ(arrivals[0].ns(), SimDuration::millis(510).ns());
}

TEST(BurstModeTest, WindowCoalescesBackToBackPacketsIntoOnePump) {
  set_hot_path_counters_enabled(true);
  sim::Simulator sim;
  SimNetwork net(&sim);  // constructed while enabled: caches the counters
  set_hot_path_counters_enabled(false);
  obs::Counter& bursts = obs::metrics().counter("net.bursts");
  obs::Counter& batched = obs::metrics().counter("net.batched_packets");
  const std::uint64_t bursts0 = bursts.value();
  const std::uint64_t batched0 = batched.value();

  net.set_delivery_mode(DeliveryMode::kBurst);
  net.set_burst_window(SimDuration::seconds(5));
  LinkModel slow;
  slow.latency = SimDuration::zero();
  slow.bytes_per_sec = 1000.0;
  slow.per_packet_cpu = SimDuration::zero();
  net.set_link("a", "b", slow);

  std::vector<std::uint64_t> seqs;
  std::vector<SimTime> at;
  (void)net.bind({"b", Port(1)}, [&](Packet p) {
    seqs.push_back(p.seq);
    at.push_back(sim.now());
  });
  for (std::uint64_t i = 0; i < 3; ++i) {
    Packet p = make_packet(net, {"a", Port(9)}, "x", 1000);
    p.seq = i;
    net.send({"b", Port(1)}, std::move(p));
  }
  // Serialization puts true arrivals at 1 s, 2 s, 3 s; the pump for the
  // earliest fires at 1 s + 5 s and drains all three in send order.
  sim.run_until_idle();
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
  for (const SimTime& t : at) {
    EXPECT_EQ(t.ns(), SimDuration::seconds(6).ns());
  }
  EXPECT_EQ(bursts.value() - bursts0, 1u);
  EXPECT_EQ(batched.value() - batched0, 3u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST(BurstModeTest, DeliveryNeverLagsArrivalByMoreThanWindow) {
  sim::Simulator sim;
  SimNetwork net(&sim);
  net.set_delivery_mode(DeliveryMode::kBurst);
  const SimDuration window = SimDuration::millis(3);
  net.set_burst_window(window);
  std::vector<SimTime> delivered;
  (void)net.bind({"b", Port(1)}, [&](Packet) { delivered.push_back(sim.now()); });
  std::vector<SimTime> arrivals;
  Rng rng(0xB125);
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(SimTime::origin() + SimDuration::micros(rng.uniform(20000)),
                    [&net, &arrivals, &rng] {
                      arrivals.push_back(net.send(
                          {"b", Port(1)},
                          make_packet(net, {"a", Port(9)}, "x",
                                      40 + rng.uniform(1000))));
                    });
  }
  sim.run_until_idle();
  ASSERT_EQ(delivered.size(), 50u);
  // Deliveries come in arrival order; each at most `window` after its true
  // arrival (and never before it).
  std::vector<SimTime> sorted = arrivals;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_GE(delivered[i].ns(), sorted[i].ns());
    EXPECT_LE(delivered[i].ns(), (sorted[i] + window).ns());
  }
}

TEST(BurstModeTest, UnbindRacingAPendingBurstCountsDroppedUnbound) {
  sim::Simulator sim;
  SimNetwork net(&sim);
  net.set_delivery_mode(DeliveryMode::kBurst);
  net.set_burst_window(SimDuration::seconds(1));
  int rx = 0;
  auto ep = net.bind({"b", Port(1)}, [&](Packet) { ++rx; });
  ASSERT_TRUE(ep.is_ok());
  const SimTime arrival =
      net.send({"b", Port(1)}, make_packet(net, {"a", Port(9)}, "x", 100));
  // Unbind after the packet's true arrival but before its pump fires: the
  // packet is still in flight and must drop on delivery, exactly like a
  // per-packet unbind before the arrival event.
  sim.schedule_at(arrival + SimDuration::micros(1), [&] {
    EXPECT_EQ(net.packets_in_flight(), 1u);
    net.unbind(ep.value());
  });
  sim.run_until_idle();
  EXPECT_EQ(rx, 0);
  EXPECT_EQ(net.stats().packets_dropped_unbound, 1u);
  EXPECT_EQ(net.stats().packets_delivered, 0u);
}

TEST(BurstModeTest, SwitchingModesWithPacketsInFlightIsSafe) {
  sim::Simulator sim;
  SimNetwork net(&sim);
  net.set_delivery_mode(DeliveryMode::kBurst);
  net.set_burst_window(SimDuration::millis(5));
  int rx = 0;
  (void)net.bind({"b", Port(1)}, [&](Packet) { ++rx; });
  net.send({"b", Port(1)}, make_packet(net, {"a", Port(9)}, "x", 100));
  net.set_delivery_mode(DeliveryMode::kPerPacket);  // queued packet drains
  net.send({"b", Port(1)}, make_packet(net, {"a", Port(9)}, "y", 100));
  sim.run_until_idle();
  EXPECT_EQ(rx, 2);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

// ------------------------------------------------------- zero-copy payloads

TEST(PayloadRefTest, CopiesShareOneBuffer) {
  PayloadRef a(std::string("hello world"));
  PayloadRef b = a;
  Packet p;
  p.payload = a;
  Packet q = p;  // packet copy = refcount bump
  EXPECT_TRUE(b.shares_buffer_with(a));
  EXPECT_TRUE(q.payload.shares_buffer_with(a));
  EXPECT_EQ(a.use_count(), 4);
  EXPECT_EQ(a.data(), q.payload.data());
  EXPECT_EQ(q.payload, "hello world");
}

TEST(PayloadRefTest, CopyAliasesCallerBuffer) {
  PayloadRef sender("shared-with-sender");
  PayloadRef p = sender;  // zero-copy hand-off: same buffer, new reference
  EXPECT_EQ(p.data(), sender.data());
  EXPECT_EQ(p.use_count(), 2);  // the sender's ref + ours
  EXPECT_EQ(p.view(), "shared-with-sender");
  PayloadRef moved = std::move(p);  // moves transfer, never touch the count
  EXPECT_EQ(moved.use_count(), 2);
  EXPECT_EQ(p.use_count(), 0);
}

TEST(PayloadRefTest, EmptyOwnsNothing) {
  PayloadRef empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_EQ(empty.str(), "");
  PayloadRef from_empty_string{std::string()};
  EXPECT_EQ(from_empty_string.use_count(), 0);
  EXPECT_EQ(empty, from_empty_string);
}

TEST(PayloadRefTest, StringHelpersMatchStdString) {
  PayloadRef p("the quick brown fox");
  EXPECT_EQ(p.size(), 19u);
  EXPECT_EQ(p.find("quick"), 4u);
  EXPECT_EQ(p.find("zebra"), std::string::npos);
  EXPECT_EQ(p.substr(4, 5), "quick");
  EXPECT_EQ(p.substr(0, 1000), "the quick brown fox");
  EXPECT_TRUE(p == std::string_view("the quick brown fox"));
  // Distinct buffers, equal bytes: == compares content.
  EXPECT_EQ(p, PayloadRef("the quick brown fox"));
  EXPECT_FALSE(p.shares_buffer_with(PayloadRef("the quick brown fox")));
}

TEST_F(ForwarderTest, TapFanOutNeverCopiesPayloadBytes) {
  set_hot_path_counters_enabled(true);
  SimNetwork net(&sim_);
  PortForwarder fwd(&net, {"host", Port(2222)}, {"guest", Port(22)});
  set_hot_path_counters_enabled(false);
  obs::Counter& zc = obs::metrics().counter("net.tap_zero_copy_bytes");
  const std::uint64_t zc0 = zc.value();

  PayloadRef payload(std::string(256, 'p'));
  std::vector<Packet> rx;
  (void)net.bind({"guest", Port(22)}, [&](Packet p) { rx.push_back(p); });
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap t1, t2, t3;
  fwd.add_tap(&t1);
  fwd.add_tap(&t2);
  fwd.add_tap(&t3);

  Packet p = make_packet(net, {"c", Port(1)}, "", 300);
  p.payload = payload;
  net.send({"host", Port(2222)}, std::move(p));
  sim_.run_until_idle();

  ASSERT_EQ(rx.size(), 1u);
  // The delivered packet still aliases the sender's buffer: three taps and
  // two fabric hops moved a refcount, not 256 bytes.
  EXPECT_TRUE(rx[0].payload.shares_buffer_with(payload));
  EXPECT_EQ(zc.value() - zc0, 256u);
}

// ------------------------------------------- golden equivalence (200 seeds)

std::string stats_line(const NetworkStats& s) {
  std::ostringstream os;
  os << s.packets_sent << '/' << s.packets_delivered << '/'
     << s.packets_dropped_unbound << '/' << s.bytes_delivered << '/'
     << s.packets_dropped_fault << '/' << s.packets_delayed_fault;
  return os.str();
}

struct ScenarioTrace {
  std::vector<std::string> deliveries;  // "<who>@<ns> seq=<n> <payload>"
  std::string stats;
  std::string links;
};

// Rewrites payloads carrying "evil", drops payloads carrying "drop" — a
// deterministic stand-in for the RITM tamperer.
class RuleTap : public PacketTap {
 public:
  Verdict inspect(Packet& pkt, Direction) override {
    if (pkt.payload.find("drop") != std::string::npos) return Verdict::kDrop;
    const std::size_t pos = pkt.payload.find("evil");
    if (pos != std::string::npos) {
      std::string r = pkt.payload.str();
      r.replace(pos, 4, "good");
      pkt.payload = PayloadRef(std::move(r));
    }
    return Verdict::kPass;
  }
};

// A randomized *reactive* scenario — echo server behind a tapped forwarder,
// seeded fault weather, client blasts at random times. Reactive traffic is
// the hard case for batching (handler send times feed the serialization
// horizon), so the equivalence claim is proven at burst window 0, where the
// pump is timing-exact.
ScenarioTrace run_equivalence_scenario(std::uint64_t seed, DeliveryMode mode) {
  sim::Simulator sim;
  SimNetwork net(&sim);
  net.set_delivery_mode(mode);

  Rng topo(derive_seed(seed, 3));
  const std::vector<std::string> nodes = {"client", "relay", "server"};
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = a; b < nodes.size(); ++b) {
      LinkModel m;
      m.latency = SimDuration::micros(1 + topo.uniform(200));
      m.bytes_per_sec = 1e5 * (1 + topo.uniform(50));
      m.per_packet_cpu = SimDuration::micros(topo.uniform(5));
      net.set_link(nodes[a], nodes[b], m);
    }
  }

  ScenarioTrace out;
  auto record = [&](const char* who, const Packet& p) {
    out.deliveries.push_back(std::string(who) + "@" +
                             std::to_string(sim.now().ns()) +
                             " seq=" + std::to_string(p.seq) + " " +
                             p.payload.str());
  };

  (void)net.bind({"server", Port(7)}, [&](Packet p) {
    record("server", p);
    Packet reply = p;
    reply.src = {"server", Port(7)};
    reply.payload = "echo:" + p.payload.str();
    net.send(p.reply_to, std::move(reply));
  });
  (void)net.bind({"client", Port(9)}, [&](Packet p) { record("client", p); });

  RuleTap tap;
  PortForwarder fwd(&net, {"relay", Port(2222)}, {"server", Port(7)});
  EXPECT_TRUE(fwd.start().is_ok());
  fwd.add_tap(&tap);

  // The hook draws only from its own seeded Rng; both modes consult it in
  // the same send order, so the fault schedule is mode-independent.
  auto hook_rng = std::make_shared<Rng>(derive_seed(seed, 7));
  net.set_fault_hook(
      [hook_rng](const Packet&, const std::string&, const std::string&) {
        FaultDecision d;
        if (hook_rng->chance(0.08)) {
          d.drop = true;
        } else if (hook_rng->chance(0.12)) {
          d.extra_latency = SimDuration::micros(1 + hook_rng->uniform(400));
        }
        return d;
      });

  Rng traffic(derive_seed(seed, 11));
  for (std::uint64_t i = 0; i < 40; ++i) {
    const SimTime at =
        SimTime::origin() + SimDuration::micros(traffic.uniform(5000));
    const bool via_fwd = traffic.chance(0.5);
    std::string body = "msg" + std::to_string(i);
    if (traffic.chance(0.15)) {
      body += "-evil";
    } else if (traffic.chance(0.1)) {
      body += "-drop";
    }
    const std::uint64_t bytes = 40 + traffic.uniform(1400);
    sim.schedule_at(at, [&net, via_fwd, body, bytes, i] {
      Packet p;
      p.conn = net.new_conn();
      p.seq = i;
      p.src = {"client", Port(9)};
      p.reply_to = {"client", Port(9)};
      p.wire_bytes = bytes;
      p.payload = body;
      net.send(via_fwd ? NetAddr{"relay", Port(2222)}
                       : NetAddr{"server", Port(7)},
               std::move(p));
    });
  }
  sim.run_until_idle();

  out.stats = stats_line(net.stats());
  std::ostringstream links;
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = a; b < nodes.size(); ++b) {
      const LinkStats ls = net.link_stats(nodes[a], nodes[b]);
      links << nodes[a] << '-' << nodes[b] << ':' << ls.packets_sent << ','
            << ls.bytes_sent << ';';
    }
  }
  out.links = links.str();
  return out;
}

std::uint64_t fnv1a(const ScenarioTrace& t) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0x1e;  // record separator
    h *= 0x100000001b3ull;
  };
  for (const std::string& d : t.deliveries) mix(d);
  mix(t.stats);
  mix(t.links);
  return h;
}

TEST(NetEquivalenceTest, BurstMatchesPerPacketAcross200Seeds) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const ScenarioTrace a =
        run_equivalence_scenario(seed, DeliveryMode::kPerPacket);
    const ScenarioTrace b = run_equivalence_scenario(seed, DeliveryMode::kBurst);
    ASSERT_EQ(a.stats, b.stats) << "seed " << seed;
    ASSERT_EQ(a.links, b.links) << "seed " << seed;
    ASSERT_EQ(a.deliveries, b.deliveries) << "seed " << seed;
  }
}

// Cross-build determinism anchor: the traces themselves are pinned (as
// FNV-1a digests, captured from the pre-burst per-packet implementation),
// so a refactor that changed *both* modes in lockstep still trips this.
TEST(NetEquivalenceTest, GoldenTraceDigestsUnchanged) {
  const std::uint64_t golden[3] = {0xc8b4356ece3bcd42ull,
                                   0x25717b5163839b06ull,
                                   0x43e64dc482a17f38ull};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const ScenarioTrace per =
        run_equivalence_scenario(seed, DeliveryMode::kPerPacket);
    const ScenarioTrace burst =
        run_equivalence_scenario(seed, DeliveryMode::kBurst);
    EXPECT_EQ(fnv1a(per), golden[seed - 1])
        << "seed " << seed << " per-packet trace moved: 0x" << std::hex
        << fnv1a(per);
    EXPECT_EQ(fnv1a(burst), golden[seed - 1])
        << "seed " << seed << " burst trace moved: 0x" << std::hex
        << fnv1a(burst);
  }
}

// ------------------------------------------------ fleet digest cross-check

// A netperf blast through a tapped forwarder, one shard per delivery mode.
// The two digests must pin byte-identical traffic accounting; only the
// shard name/seed (and the simulator event count — the whole point of
// batching) may differ, so `events` is deliberately left out of the values.
fleet::ShardOutcome net_shard_for_mode(const fleet::ShardContext&,
                                       DeliveryMode mode) {
  fleet::ShardOutcome out;
  sim::Simulator sim;
  SimNetwork net(&sim);
  net.set_delivery_mode(mode);
  if (mode == DeliveryMode::kBurst) {
    net.set_burst_window(SimDuration::micros(50));
  }

  std::uint64_t rx_packets = 0, rx_bytes = 0;
  (void)net.bind({"sink", Port(7)}, [&](Packet p) {
    ++rx_packets;
    rx_bytes += p.wire_bytes;
  });
  PortForwarder fwd(&net, {"relay", Port(2222)}, {"sink", Port(7)});
  CSK_CHECK(fwd.start().is_ok());

  workloads::NetperfPacketStream stream(&net, {"src", Port(9)},
                                        {"relay", Port(2222)});
  stream.blast(400);
  sim.run_until_idle();

  out.values["rx_packets"] = static_cast<double>(rx_packets);
  out.values["rx_bytes"] = static_cast<double>(rx_bytes);
  out.values["forwarded"] = static_cast<double>(fwd.stats().forwarded);
  out.values["link_bytes"] =
      static_cast<double>(net.link_stats("src", "relay").bytes_sent);
  return out;
}

TEST(NetFleetGoldenTest, ShardDigestsUnchangedAcrossDeliveryModes) {
  fleet::FleetConfig cfg;
  cfg.workers = 2;
  cfg.root_seed = 0xC5CAFE02ull;
  fleet::FleetRunner runner(cfg);
  runner.add("net-perpacket", [](const fleet::ShardContext& ctx) {
    return net_shard_for_mode(ctx, DeliveryMode::kPerPacket);
  });
  runner.add("net-burst", [](const fleet::ShardContext& ctx) {
    return net_shard_for_mode(ctx, DeliveryMode::kBurst);
  });
  fleet::FleetReport report = runner.run();
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.failed_shards(), 0u);
  const std::string golden0 =
      R"({"name":"net-perpacket","seed":"0x4aecbc018c9c20a7","status":"OK",)"
      R"("values":{"forwarded":400,"link_bytes":26214400,)"
      R"("rx_bytes":26214400,"rx_packets":400},"faults":[],)"
      R"("metrics":{"counters":{},"gauges":{},"histograms":{}}})";
  const std::string golden1 =
      R"({"name":"net-burst","seed":"0xbd4baf5cdbd36281","status":"OK",)"
      R"("values":{"forwarded":400,"link_bytes":26214400,)"
      R"("rx_bytes":26214400,"rx_packets":400},"faults":[],)"
      R"("metrics":{"counters":{},"gauges":{},"histograms":{}}})";
  EXPECT_EQ(report.shards[0].digest, golden0);
  EXPECT_EQ(report.shards[1].digest, golden1);
}

TEST(ProtoKindTest, Names) {
  EXPECT_STREQ(proto_kind_name(ProtoKind::kSshKeystroke), "ssh-keystroke");
  EXPECT_STREQ(proto_kind_name(ProtoKind::kMigrationChunk), "migration-chunk");
}

}  // namespace
}  // namespace csk::net
