// Network fabric tests: binding, delivery, serialization/backpressure,
// port forwarding and NAT, tap semantics.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/port_forward.h"
#include "sim/simulator.h"

namespace csk::net {
namespace {

Packet make_packet(SimNetwork& net, const NetAddr& from,
                   const std::string& payload, std::uint64_t bytes = 100,
                   ProtoKind kind = ProtoKind::kGeneric) {
  Packet p;
  p.conn = net.new_conn();
  p.kind = kind;
  p.src = from;
  p.reply_to = from;
  p.wire_bytes = bytes;
  p.payload = payload;
  return p;
}

class NetTest : public ::testing::Test {
 protected:
  NetTest() : net_(&sim_) {}
  sim::Simulator sim_;
  SimNetwork net_;
};

TEST_F(NetTest, BindAndDeliver) {
  std::vector<Packet> rx;
  auto ep = net_.bind({"host0", Port(80)}, [&](Packet p) { rx.push_back(p); });
  ASSERT_TRUE(ep.is_ok());
  net_.send({"host0", Port(80)},
            make_packet(net_, {"client", Port(1234)}, "hi"));
  sim_.run_until_idle();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].payload, "hi");
  EXPECT_EQ(net_.stats().packets_delivered, 1u);
}

TEST_F(NetTest, DoubleBindFails) {
  ASSERT_TRUE(net_.bind({"host0", Port(80)}, [](Packet) {}).is_ok());
  auto second = net_.bind({"host0", Port(80)}, [](Packet) {});
  EXPECT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(NetTest, UnbindDropsTraffic) {
  int rx = 0;
  auto ep = net_.bind({"host0", Port(80)}, [&](Packet) { ++rx; });
  ASSERT_TRUE(ep.is_ok());
  net_.unbind(ep.value());
  net_.send({"host0", Port(80)}, make_packet(net_, {"c", Port(1)}, "x"));
  sim_.run_until_idle();
  EXPECT_EQ(rx, 0);
  EXPECT_EQ(net_.stats().packets_dropped_unbound, 1u);
  // Address is free again.
  EXPECT_TRUE(net_.bind({"host0", Port(80)}, [](Packet) {}).is_ok());
}

TEST_F(NetTest, InFlightPacketDropsIfUnboundBeforeArrival) {
  int rx = 0;
  auto ep = net_.bind({"host0", Port(80)}, [&](Packet) { ++rx; });
  net_.send({"host0", Port(80)}, make_packet(net_, {"c", Port(1)}, "x"));
  net_.unbind(ep.value());  // before delivery event fires
  sim_.run_until_idle();
  EXPECT_EQ(rx, 0);
}

TEST_F(NetTest, DeliveryTakesLatencyPlusSerialization) {
  LinkModel slow;
  slow.latency = SimDuration::millis(10);
  slow.bytes_per_sec = 1000.0;  // 1 KB/s
  slow.per_packet_cpu = SimDuration::zero();
  net_.set_link("a", "b", slow);
  SimTime arrival;
  (void)net_.bind({"b", Port(1)}, [&](Packet) { arrival = sim_.now(); });
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "x", 500));
  sim_.run_until_idle();
  // 500 B at 1 KB/s = 500 ms + 10 ms latency.
  EXPECT_EQ(arrival.ns(), SimDuration::millis(510).ns());
}

TEST_F(NetTest, LinkSerializesBackToBackPackets) {
  LinkModel slow;
  slow.latency = SimDuration::zero();
  slow.bytes_per_sec = 1000.0;
  slow.per_packet_cpu = SimDuration::zero();
  net_.set_link("a", "b", slow);
  std::vector<SimTime> arrivals;
  (void)net_.bind({"b", Port(1)}, [&](Packet) { arrivals.push_back(sim_.now()); });
  for (int i = 0; i < 3; ++i) {
    net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(9)}, "x", 1000));
  }
  sim_.run_until_idle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0].ns(), SimDuration::seconds(1).ns());
  EXPECT_EQ(arrivals[1].ns(), SimDuration::seconds(2).ns());
  EXPECT_EQ(arrivals[2].ns(), SimDuration::seconds(3).ns());
}

TEST_F(NetTest, LoopbackIsFasterThanDefaultLink) {
  SimTime loopback_arrival, cross_arrival;
  (void)net_.bind({"a", Port(1)}, [&](Packet) { loopback_arrival = sim_.now(); });
  (void)net_.bind({"b", Port(1)}, [&](Packet) { cross_arrival = sim_.now(); });
  net_.send({"a", Port(1)}, make_packet(net_, {"a", Port(2)}, "x", 100));
  net_.send({"b", Port(1)}, make_packet(net_, {"a", Port(2)}, "x", 100));
  sim_.run_until_idle();
  EXPECT_LT(loopback_arrival.ns(), cross_arrival.ns());
}

TEST_F(NetTest, EstimateArrivalMatchesModelShape) {
  const SimTime est = net_.estimate_arrival("a", "b", 1 << 20);
  EXPECT_GT(est, sim_.now());
}

TEST_F(NetTest, ConnIdsAreUnique) {
  EXPECT_NE(net_.new_conn(), net_.new_conn());
}

// --------------------------------------------------------- port forwarder

class ForwarderTest : public NetTest {
 protected:
  void bind_echo_server(const NetAddr& addr) {
    (void)net_.bind(addr, [this, addr](Packet p) {
      Packet reply = p;
      reply.src = addr;
      reply.payload = "echo:" + p.payload;
      net_.send(p.reply_to, std::move(reply));
    });
  }
};

TEST_F(ForwarderTest, ForwardsToTarget) {
  std::vector<Packet> rx;
  (void)net_.bind({"guest", Port(22)}, [&](Packet p) { rx.push_back(p); });
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  net_.send({"host", Port(2222)},
            make_packet(net_, {"client", Port(5)}, "ssh-hello"));
  sim_.run_until_idle();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].payload, "ssh-hello");
  // NAT: replies must route back through the forwarder.
  EXPECT_EQ(rx[0].reply_to, (NetAddr{"host", Port(2222)}));
  EXPECT_EQ(fwd.stats().forwarded, 1u);
}

TEST_F(ForwarderTest, RepliesReturnToClient) {
  bind_echo_server({"guest", Port(22)});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  std::vector<Packet> client_rx;
  (void)net_.bind({"client", Port(5)}, [&](Packet p) { client_rx.push_back(p); });
  net_.send({"host", Port(2222)},
            make_packet(net_, {"client", Port(5)}, "ping"));
  sim_.run_until_idle();
  ASSERT_EQ(client_rx.size(), 1u);
  EXPECT_EQ(client_rx[0].payload, "echo:ping");
  // Masquerade: the reply appears to come from the forwarder's address.
  EXPECT_EQ(client_rx[0].src, (NetAddr{"host", Port(2222)}));
  EXPECT_EQ(fwd.stats().replies, 1u);
}

TEST_F(ForwarderTest, TwoHopChainRelaysBothWays) {
  bind_echo_server({"nested", Port(22)});
  PortForwarder inner(&net_, {"guestx", Port(22)}, {"nested", Port(22)});
  PortForwarder outer(&net_, {"host", Port(2222)}, {"guestx", Port(22)});
  ASSERT_TRUE(inner.start().is_ok());
  ASSERT_TRUE(outer.start().is_ok());
  std::vector<Packet> client_rx;
  (void)net_.bind({"client", Port(5)}, [&](Packet p) { client_rx.push_back(p); });
  net_.send({"host", Port(2222)}, make_packet(net_, {"client", Port(5)}, "hi"));
  sim_.run_until_idle();
  ASSERT_EQ(client_rx.size(), 1u);
  EXPECT_EQ(client_rx[0].payload, "echo:hi");
  EXPECT_EQ(inner.stats().forwarded, 1u);
  EXPECT_EQ(outer.stats().replies, 1u);
}

TEST_F(ForwarderTest, StartFailsWhenPortTaken) {
  (void)net_.bind({"host", Port(2222)}, [](Packet) {});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  EXPECT_FALSE(fwd.start().is_ok());
  EXPECT_FALSE(fwd.running());
}

TEST_F(ForwarderTest, StopReleasesThePort) {
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  fwd.stop();
  EXPECT_TRUE(net_.bind({"host", Port(2222)}, [](Packet) {}).is_ok());
}

TEST_F(ForwarderTest, SetTargetRedirectsNewFlows) {
  std::vector<Packet> old_rx, new_rx;
  (void)net_.bind({"old", Port(22)}, [&](Packet p) { old_rx.push_back(p); });
  (void)net_.bind({"new", Port(22)}, [&](Packet p) { new_rx.push_back(p); });
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"old", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "a"));
  sim_.run_until_idle();
  fwd.set_target({"new", Port(22)});
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "b"));
  sim_.run_until_idle();
  EXPECT_EQ(old_rx.size(), 1u);
  EXPECT_EQ(new_rx.size(), 1u);
}

// ------------------------------------------------------------------- taps

class CountingTap : public PacketTap {
 public:
  Verdict inspect(Packet& pkt, Direction dir) override {
    ++count;
    last_dir = dir;
    if (!rewrite.empty()) pkt.payload = rewrite;
    return drop ? Verdict::kDrop : Verdict::kPass;
  }
  int count = 0;
  bool drop = false;
  std::string rewrite;
  Direction last_dir = Direction::kForward;
};

TEST_F(ForwarderTest, TapSeesForwardedPackets) {
  (void)net_.bind({"guest", Port(22)}, [](Packet) {});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap tap;
  fwd.add_tap(&tap);
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "x"));
  sim_.run_until_idle();
  EXPECT_EQ(tap.count, 1);
  EXPECT_EQ(tap.last_dir, PacketTap::Direction::kForward);
}

TEST_F(ForwarderTest, TapDropConsumesPacket) {
  int rx = 0;
  (void)net_.bind({"guest", Port(22)}, [&](Packet) { ++rx; });
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap tap;
  tap.drop = true;
  fwd.add_tap(&tap);
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "x"));
  sim_.run_until_idle();
  EXPECT_EQ(rx, 0);
  EXPECT_EQ(fwd.stats().dropped_by_tap, 1u);
}

TEST_F(ForwarderTest, TapMutationPropagates) {
  std::vector<Packet> rx;
  (void)net_.bind({"guest", Port(22)}, [&](Packet p) { rx.push_back(p); });
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap tap;
  tap.rewrite = "tampered";
  fwd.add_tap(&tap);
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "clean"));
  sim_.run_until_idle();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].payload, "tampered");
}

TEST_F(ForwarderTest, RemoveTapStopsInspection) {
  (void)net_.bind({"guest", Port(22)}, [](Packet) {});
  PortForwarder fwd(&net_, {"host", Port(2222)}, {"guest", Port(22)});
  ASSERT_TRUE(fwd.start().is_ok());
  CountingTap tap;
  fwd.add_tap(&tap);
  fwd.remove_tap(&tap);
  net_.send({"host", Port(2222)}, make_packet(net_, {"c", Port(1)}, "x"));
  sim_.run_until_idle();
  EXPECT_EQ(tap.count, 0);
}

TEST(ProtoKindTest, Names) {
  EXPECT_STREQ(proto_kind_name(ProtoKind::kSshKeystroke), "ssh-keystroke");
  EXPECT_STREQ(proto_kind_name(ProtoKind::kMigrationChunk), "migration-chunk");
}

}  // namespace
}  // namespace csk::net
