// Table I dataset integrity: the counts the paper reports must hold.
#include <gtest/gtest.h>

#include <set>

#include "cve/vm_escape_cves.h"

namespace csk::cve {
namespace {

TEST(CveDatasetTest, GrandTotalIs96) {
  EXPECT_EQ(vm_escape_cves().size(), 96u);
  EXPECT_EQ(count_matrix().grand_total(), 96u);
}

TEST(CveDatasetTest, PlatformTotalsMatchTableI) {
  const CveMatrix m = count_matrix();
  EXPECT_EQ(m.platform_total(Platform::kVmware), 29u);
  EXPECT_EQ(m.platform_total(Platform::kVirtualBox), 15u);
  EXPECT_EQ(m.platform_total(Platform::kXen), 15u);
  EXPECT_EQ(m.platform_total(Platform::kHyperV), 14u);
  EXPECT_EQ(m.platform_total(Platform::kKvmQemu), 23u);
}

TEST(CveDatasetTest, SpotCellsMatchTableI) {
  const CveMatrix m = count_matrix();
  auto cell = [&](int year, Platform p) {
    return m.counts[year - 2015][static_cast<std::size_t>(p)];
  };
  EXPECT_EQ(cell(2015, Platform::kVmware), 5u);
  EXPECT_EQ(cell(2015, Platform::kKvmQemu), 5u);
  EXPECT_EQ(cell(2016, Platform::kVirtualBox), 0u);
  EXPECT_EQ(cell(2017, Platform::kXen), 6u);
  EXPECT_EQ(cell(2018, Platform::kVirtualBox), 11u);
  EXPECT_EQ(cell(2018, Platform::kXen), 0u);
  EXPECT_EQ(cell(2019, Platform::kHyperV), 4u);
  EXPECT_EQ(cell(2020, Platform::kVmware), 10u);
}

TEST(CveDatasetTest, IdsAreWellFormedAndUnique) {
  std::set<std::string> ids;
  for (const VmEscapeCve& cve : vm_escape_cves()) {
    EXPECT_TRUE(cve.id.starts_with("CVE-" + std::to_string(cve.year) + "-"))
        << cve.id;
    EXPECT_GE(cve.year, 2015);
    EXPECT_LE(cve.year, 2020);
    ids.insert(cve.id);
  }
  EXPECT_EQ(ids.size(), vm_escape_cves().size());
}

TEST(CveDatasetTest, NotableEntriesPresent) {
  // Referenced directly by the paper's exploit citations.
  std::set<std::string> ids;
  for (const VmEscapeCve& cve : vm_escape_cves()) ids.insert(cve.id);
  EXPECT_TRUE(ids.contains("CVE-2019-6778"));   // the public QEMU escape
  EXPECT_TRUE(ids.contains("CVE-2015-3456"));   // VENOM
  EXPECT_TRUE(ids.contains("CVE-2020-14364"));
}

TEST(CveDatasetTest, QueriesFilterCorrectly) {
  const auto xen = cves_for_platform(Platform::kXen);
  EXPECT_EQ(xen.size(), 15u);
  for (const auto& cve : xen) EXPECT_EQ(cve.platform, Platform::kXen);
  const auto y2018 = cves_for_year(2018);
  EXPECT_EQ(y2018.size(), 18u);  // 2 + 11 + 0 + 3 + 2
  for (const auto& cve : y2018) EXPECT_EQ(cve.year, 2018);
}

TEST(CveDatasetTest, YearTotalsSumUp) {
  const CveMatrix m = count_matrix();
  std::uint32_t sum = 0;
  for (int y = 2015; y <= 2020; ++y) sum += m.year_total(y);
  EXPECT_EQ(sum, 96u);
  EXPECT_EQ(m.year_total(2015), 13u);
  EXPECT_EQ(m.year_total(2020), 14u);
}

TEST(CveDatasetTest, PlatformNames) {
  EXPECT_STREQ(platform_name(Platform::kVmware), "VMware");
  EXPECT_STREQ(platform_name(Platform::kKvmQemu), "KVM/QEMU");
}

}  // namespace
}  // namespace csk::cve
