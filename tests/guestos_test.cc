// Guest OS tests: processes, page cache, regions, proc-table serialization.
#include <gtest/gtest.h>

#include "guestos/os.h"
#include "mem/phys_mem.h"

namespace csk::guestos {
namespace {

class GuestOsTest : public ::testing::Test {
 protected:
  GuestOsTest()
      : as_(&phys_, 4096, "guest"),
        os_(&as_, OsIdentity{}, Rng(42), /*ram_pages=*/1024) {}

  mem::HostPhysicalMemory phys_;
  mem::AddressSpace as_;
  GuestOS os_;
};

// -------------------------------------------------------------- processes

TEST_F(GuestOsTest, BootSpawnsUserspace) {
  os_.boot();
  EXPECT_TRUE(os_.booted());
  EXPECT_TRUE(os_.find_process_by_name("init").is_ok());
  EXPECT_TRUE(os_.find_process_by_name("sshd").is_ok());
  EXPECT_DEATH(os_.boot(), "double boot");
}

TEST_F(GuestOsTest, SpawnAndKill) {
  const Pid pid = os_.spawn("nginx", "/usr/sbin/nginx -g daemon");
  ASSERT_TRUE(os_.find_process(pid).is_ok());
  EXPECT_EQ(os_.find_process(pid)->cmdline, "/usr/sbin/nginx -g daemon");
  EXPECT_TRUE(os_.kill(pid).is_ok());
  EXPECT_FALSE(os_.find_process_by_name("nginx").is_ok());
  EXPECT_FALSE(os_.kill(pid).is_ok());
}

TEST_F(GuestOsTest, PidsAreUniqueAndIncreasing) {
  const Pid a = os_.spawn("a");
  const Pid b = os_.spawn("b");
  EXPECT_LT(a.value(), b.value());
}

TEST_F(GuestOsTest, HiddenProcessInvisibleToPs) {
  const Pid pid = os_.spawn("rootkitd");
  ASSERT_TRUE(os_.hide_process(pid).is_ok());
  EXPECT_FALSE(os_.find_process_by_name("rootkitd").is_ok());
  for (const Process& p : os_.ps()) EXPECT_NE(p.name, "rootkitd");
}

TEST_F(GuestOsTest, ProcTablePageReflectsProcessChanges) {
  os_.boot();
  const Pid pid = os_.spawn("postgres");
  auto bytes = as_.read_bytes(Gfn(kProcTableGfn));
  ASSERT_TRUE(bytes != nullptr);
  auto parsed = parse_proc_table(*bytes);
  ASSERT_TRUE(parsed.is_ok());
  bool saw = false;
  for (const Process& p : parsed->procs) saw |= (p.name == "postgres");
  EXPECT_TRUE(saw);
  ASSERT_TRUE(os_.kill(pid).is_ok());
  parsed = parse_proc_table(*as_.read_bytes(Gfn(kProcTableGfn)));
  ASSERT_TRUE(parsed.is_ok());
  for (const Process& p : parsed->procs) EXPECT_NE(p.name, "postgres");
}

TEST(ProcTableTest, SerializeParseRoundTrip) {
  OsIdentity id;
  id.hostname = "box7";
  std::vector<Process> procs{{Pid(1), Pid(0), "init", "/sbin/init", true, false},
                             {Pid(9), Pid(1), "bash", "-bash", true, false}};
  auto parsed = parse_proc_table([&] {
    const std::string blob = serialize_proc_table(id, procs);
    return mem::PageBytes(blob.begin(), blob.end());
  }());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->identity, id);
  ASSERT_EQ(parsed->procs.size(), 2u);
  EXPECT_EQ(parsed->procs[1].name, "bash");
  EXPECT_EQ(parsed->procs[1].parent, Pid(1));
}

TEST(ProcTableTest, GarbageIsSemanticGap) {
  mem::PageBytes junk{'n', 'o', 'p', 'e'};
  EXPECT_FALSE(parse_proc_table(junk).is_ok());
}

// -------------------------------------------------------------- page cache

TEST_F(GuestOsTest, LoadFileMaterializesPages) {
  ASSERT_TRUE(os_.fs().create_unique("data.bin", 8 * mem::kPageSize,
                                     os_.rng()).is_ok());
  auto gfns = os_.load_file("data.bin");
  ASSERT_TRUE(gfns.is_ok());
  EXPECT_EQ(gfns->size(), 8u);
  EXPECT_TRUE(os_.file_cached("data.bin"));
  for (Gfn g : gfns.value()) EXPECT_TRUE(as_.is_mapped(g));
}

TEST_F(GuestOsTest, LoadFileIsIdempotent) {
  ASSERT_TRUE(os_.fs().create_unique("f", mem::kPageSize, os_.rng()).is_ok());
  const auto first = os_.load_file("f");
  const auto second = os_.load_file("f");
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST_F(GuestOsTest, EvictFreesAndAllowsReload) {
  ASSERT_TRUE(os_.fs().create_unique("f", 4 * mem::kPageSize, os_.rng()).is_ok());
  ASSERT_TRUE(os_.load_file("f").is_ok());
  ASSERT_TRUE(os_.evict_file("f").is_ok());
  EXPECT_FALSE(os_.file_cached("f"));
  EXPECT_TRUE(os_.load_file("f").is_ok());
}

TEST_F(GuestOsTest, ModifyCachedPageUpdatesMemoryAndFs) {
  Rng content_rng(7);
  ASSERT_TRUE(os_.fs().create_random_bytes("f", 2 * mem::kPageSize,
                                           content_rng).is_ok());
  auto gfns = os_.load_file("f");
  ASSERT_TRUE(gfns.is_ok());
  mem::PageBytes fresh(mem::kPageSize, 0x5A);
  ASSERT_TRUE(os_.modify_cached_page("f", 1,
                                     mem::PageData::from_bytes(fresh)).is_ok());
  EXPECT_EQ((*as_.read_bytes((*gfns)[1]))[0], 0x5A);
  EXPECT_EQ((*os_.fs().open("f"))->pages[1].bytes->at(0), 0x5A);
}

TEST_F(GuestOsTest, PerturbChangesEveryPageDeterministically) {
  Rng content_rng(7);
  ASSERT_TRUE(os_.fs().create_random_bytes("f", 3 * mem::kPageSize,
                                           content_rng).is_ok());
  auto gfns = os_.load_file("f");
  ASSERT_TRUE(gfns.is_ok());
  std::vector<ContentHash> before;
  for (Gfn g : gfns.value()) before.push_back(as_.read_hash(g));
  ASSERT_TRUE(os_.perturb_cached_file("f").is_ok());
  for (std::size_t i = 0; i < gfns->size(); ++i) {
    EXPECT_NE(as_.read_hash((*gfns)[i]), before[i]) << "page " << i;
  }
}

TEST_F(GuestOsTest, MissingFileErrors) {
  EXPECT_FALSE(os_.load_file("ghost").is_ok());
  EXPECT_FALSE(os_.evict_file("ghost").is_ok());
  EXPECT_FALSE(os_.cached_gfns("ghost").is_ok());
}

// ----------------------------------------------------------------- memory

TEST_F(GuestOsTest, BootWorkingSetMaterializesResidentPages) {
  const std::size_t before = as_.mapped_gfns().size();
  ASSERT_TRUE(os_.touch_boot_working_set(2).is_ok());  // 2 MiB = 512 pages
  EXPECT_EQ(as_.mapped_gfns().size(), before + 512);
}

TEST_F(GuestOsTest, RamLimitBoundsOrdinaryAllocations) {
  // ram_pages = 1024, 16 reserved: ~1008 allocatable, arena beyond.
  EXPECT_TRUE(os_.touch_boot_working_set(3).is_ok());   // 768 pages
  EXPECT_FALSE(os_.touch_boot_working_set(2).is_ok());  // would exceed RAM
}

TEST_F(GuestOsTest, RegionsComeFromTheArenaBeyondRam) {
  auto region = os_.allocate_region(2048);
  ASSERT_TRUE(region.is_ok());
  for (Gfn g : region.value()) EXPECT_GE(g.value(), 1024u);
  // RAM allocations still work: the region did not consume RAM gfns.
  EXPECT_TRUE(os_.touch_boot_working_set(1).is_ok());
}

TEST_F(GuestOsTest, RegionExhaustionFailsCleanly) {
  EXPECT_FALSE(os_.allocate_region(1u << 20).is_ok());
  auto ok = os_.allocate_region(16);
  EXPECT_TRUE(ok.is_ok());
}

TEST_F(GuestOsTest, FreedRegionIsReusable) {
  auto r1 = os_.allocate_region(64);
  ASSERT_TRUE(r1.is_ok());
  os_.free_region(r1.value());
  auto r2 = os_.allocate_region(64);
  ASSERT_TRUE(r2.is_ok());
}

TEST_F(GuestOsTest, CyclicDirtyingWalksTheWorkingSet) {
  ASSERT_TRUE(os_.touch_boot_working_set(1).is_ok());  // 256 pages
  as_.enable_dirty_log();
  os_.dirty_pages_cyclic(100);
  EXPECT_EQ(as_.dirty_count(), 100u);
  os_.dirty_pages_cyclic(100);
  EXPECT_EQ(as_.dirty_count(), 200u);  // distinct pages until wrap
  os_.dirty_pages_cyclic(100);
  EXPECT_EQ(as_.dirty_count(), 256u);  // wrapped: bounded by working set
}

TEST_F(GuestOsTest, DirtyRandomPagesReturnsCost) {
  ASSERT_TRUE(os_.touch_boot_working_set(1).is_ok());
  EXPECT_GT(os_.dirty_random_pages(10).ns(), 0);
}

// --------------------------------------------------------------------- fs

TEST(SimFsTest, CreateOpenRemove) {
  SimFs fs;
  Rng rng(1);
  ASSERT_TRUE(fs.create_unique("a", 5000, rng).is_ok());
  EXPECT_TRUE(fs.exists("a"));
  auto f = fs.open("a");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ((*f)->size_bytes, 5000u);
  EXPECT_EQ((*f)->page_count(), 2u);  // ceil(5000 / 4096)
  ASSERT_TRUE(fs.remove("a").is_ok());
  EXPECT_FALSE(fs.exists("a"));
}

TEST(SimFsTest, DuplicateCreateFails) {
  SimFs fs;
  Rng rng(1);
  ASSERT_TRUE(fs.create_unique("a", 100, rng).is_ok());
  EXPECT_EQ(fs.create_unique("a", 100, rng).code(),
            StatusCode::kAlreadyExists);
}

TEST(SimFsTest, UniquePagesAreDistinct) {
  SimFs fs;
  Rng rng(1);
  ASSERT_TRUE(fs.create_unique("a", 20 * mem::kPageSize, rng).is_ok());
  const SimFile* f = fs.open("a").value();
  std::set<std::uint64_t> hashes;
  for (const auto& p : f->pages) hashes.insert(p.hash.value);
  EXPECT_EQ(hashes.size(), f->pages.size());
}

TEST(SimFsTest, RandomBytesFilesCarryRealBytes) {
  SimFs fs;
  Rng rng(1);
  ASSERT_TRUE(fs.create_random_bytes("a", 6000, rng).is_ok());
  const SimFile* f = fs.open("a").value();
  ASSERT_EQ(f->pages.size(), 2u);
  ASSERT_TRUE(f->pages[0].bytes != nullptr);
  EXPECT_EQ(f->pages[0].bytes->size(), mem::kPageSize);
  EXPECT_EQ(f->pages[1].bytes->size(), 6000u - mem::kPageSize);
}

TEST(SimFsTest, WritePageBoundsChecked) {
  SimFs fs;
  Rng rng(1);
  ASSERT_TRUE(fs.create_unique("a", mem::kPageSize, rng).is_ok());
  EXPECT_TRUE(fs.write_page("a", 0, mem::PageData::zero()).is_ok());
  EXPECT_FALSE(fs.write_page("a", 1, mem::PageData::zero()).is_ok());
  EXPECT_FALSE(fs.write_page("b", 0, mem::PageData::zero()).is_ok());
}

TEST(SimFsTest, ListIsSorted) {
  SimFs fs;
  Rng rng(1);
  ASSERT_TRUE(fs.create_unique("zeta", 10, rng).is_ok());
  ASSERT_TRUE(fs.create_unique("alpha", 10, rng).is_ok());
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace csk::guestos
