// Property suite for the zero-copy network fabric (labels: property, net —
// also the binary behind the net_asan_smoke / net_tsan_smoke targets).
//
// Each seed builds a random tap population over a forwarder, random tap
// churn (drops, self-removing taps that delete themselves mid-inspection,
// taps spawned from inside a callback), a random delivery mode and burst
// window, seeded fault weather, and forwarder down/up flaps. Properties:
//
//   P1  stats conservation — every sent packet is accounted exactly once:
//       sent == delivered + dropped_unbound + dropped_fault;
//   P2  zero-copy — the `net.tap_zero_copy_bytes` counter agrees
//       byte-for-byte with the forwarded traffic (no tap rewrote, so every
//       full chain pass must have aliased the sender's buffer);
//   P3  lifetime — the fabric keeps payload bytes alive after the sender
//       releases its only reference (ASan turns a violation into a trap);
//   P4  reentrancy — self-removing, self-deleting and mid-inspect-spawned
//       taps never leave a dangling pointer in the chain (ASan-verified).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "net/payload.h"
#include "net/port_forward.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace csk::net {
namespace {

constexpr std::size_t kPayloadBytes = 128;

// A tap that, per packet, may drop it, remove-and-delete itself, or spawn a
// fresh tap — all from inside inspect(), which is exactly the reentrancy
// the PortForwarder contract promises to survive.
class ChurnTap : public PacketTap {
 public:
  ChurnTap(PortForwarder* fwd, std::vector<ChurnTap*>* live, Rng* rng)
      : fwd_(fwd), live_(live), rng_(rng) {}

  Verdict inspect(Packet&, Direction) override {
    if (rng_->chance(0.05) && live_->size() < 12) {
      auto* spawned = new ChurnTap(fwd_, live_, rng_);
      live_->push_back(spawned);
      fwd_->add_tap(spawned);  // first sees the next packet
    }
    if (rng_->chance(0.05)) {
      // Self-removal + delete from inside the callback: the forwarder must
      // never touch this object again (P4; ASan proves it).
      for (std::size_t i = 0; i < live_->size(); ++i) {
        if ((*live_)[i] == this) {
          live_->erase(live_->begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      fwd_->remove_tap(this);
      const bool drop = rng_->chance(0.5);
      delete this;
      return drop ? Verdict::kDrop : Verdict::kPass;
    }
    return rng_->chance(0.1) ? Verdict::kDrop : Verdict::kPass;
  }

 private:
  PortForwarder* fwd_;
  std::vector<ChurnTap*>* live_;
  Rng* rng_;
};

struct ScenarioResult {
  NetworkStats stats;
  std::uint64_t forwarded = 0;
  std::uint64_t zero_copy_bytes = 0;
  std::uint64_t rx_ok = 0;       // delivered with intact bytes
  std::uint64_t rx_corrupt = 0;  // delivered with wrong bytes (must be 0)
};

ScenarioResult run_property_scenario(std::uint64_t seed) {
  set_hot_path_counters_enabled(true);
  sim::Simulator sim;
  SimNetwork net(&sim);
  PortForwarder fwd(&net, {"relay", Port(2222)}, {"sink", Port(7)});
  set_hot_path_counters_enabled(false);
  obs::Counter& zc = obs::metrics().counter("net.tap_zero_copy_bytes");
  const std::uint64_t zc0 = zc.value();

  Rng rng(seed);
  if (rng.chance(0.5)) {
    net.set_delivery_mode(DeliveryMode::kBurst);
    net.set_burst_window(SimDuration::micros(rng.uniform(100)));
  }

  // Expected payload bytes per flow seq; the sink checks every delivery
  // against it after the sender has dropped its own buffer reference (P3).
  std::unordered_map<std::uint64_t, std::string> expect;
  ScenarioResult out;
  (void)net.bind({"sink", Port(7)}, [&](Packet p) {
    auto it = expect.find(p.seq);
    if (it != expect.end() && p.payload.view() == it->second) {
      ++out.rx_ok;
    } else {
      ++out.rx_corrupt;
    }
  });
  EXPECT_TRUE(fwd.start().is_ok());

  // One permanent pass-through tap keeps the chain non-empty (the zero-copy
  // counter only fires for inspected packets), plus churny company.
  class PassTap : public PacketTap {
    Verdict inspect(Packet&, Direction) override { return Verdict::kPass; }
  } keeper;
  fwd.add_tap(&keeper);
  std::vector<ChurnTap*> live;
  for (std::uint64_t i = 0; i < 1 + rng.uniform(4); ++i) {
    auto* t = new ChurnTap(&fwd, &live, &rng);
    live.push_back(t);
    fwd.add_tap(t);
  }

  // Seeded fault weather, NetFaultSpec-shaped: a loss+jitter window over
  // the middle of the run.
  auto hook_rng = std::make_shared<Rng>(derive_seed(seed, 5));
  const SimTime weather_start = SimTime::origin() + SimDuration::millis(2);
  const SimTime weather_end = weather_start + SimDuration::millis(6);
  net.set_fault_hook([&sim, hook_rng, weather_start, weather_end](
                         const Packet&, const std::string&,
                         const std::string&) {
    FaultDecision d;
    if (sim.now() < weather_start || sim.now() >= weather_end) return d;
    if (hook_rng->chance(0.15)) {
      d.drop = true;
    } else if (hook_rng->chance(0.2)) {
      d.extra_latency = SimDuration::micros(1 + hook_rng->uniform(500));
    }
    return d;
  });

  // Forwarder flap: down for a stretch mid-run, so in-flight and
  // freshly-sent packets exercise the unbound path in both modes.
  sim.schedule_at(SimTime::origin() + SimDuration::millis(4),
                  [&fwd] { fwd.stop(); });
  sim.schedule_at(SimTime::origin() + SimDuration::millis(7),
                  [&fwd] { EXPECT_TRUE(fwd.start().is_ok()); });

  // Client blasts: each packet wraps a fresh shared buffer and the sender's
  // reference dies with the lambda — from then on only the fabric keeps the
  // bytes alive.
  Rng traffic(derive_seed(seed, 9));
  for (std::uint64_t i = 0; i < 60; ++i) {
    std::string body = "blob" + std::to_string(i);
    body.resize(kPayloadBytes, '.');
    expect.emplace(i, body);
    const SimTime at =
        SimTime::origin() + SimDuration::micros(traffic.uniform(12000));
    sim.schedule_at(at, [&net, &expect, i] {
      Packet p;
      p.conn = net.new_conn();
      p.seq = i;
      p.src = {"client", Port(9)};
      p.reply_to = {"client", Port(9)};
      p.wire_bytes = kPayloadBytes + 40;
      p.payload = PayloadRef(expect[i]);
      net.send({"relay", Port(2222)}, std::move(p));
    });
  }
  sim.run_until_idle();

  out.stats = net.stats();
  out.forwarded = fwd.stats().forwarded;
  out.zero_copy_bytes = zc.value() - zc0;
  for (ChurnTap* t : live) {
    fwd.remove_tap(t);
    delete t;
  }
  return out;
}

TEST(NetPropertyTest, RandomTapChurnUnderFaultsPreservesInvariants) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const ScenarioResult r = run_property_scenario(seed);
    // P1: exact conservation, both delivery modes.
    EXPECT_EQ(r.stats.packets_sent,
              r.stats.packets_delivered + r.stats.packets_dropped_unbound +
                  r.stats.packets_dropped_fault)
        << "seed " << seed;
    // P2: no tap rewrites in this scenario, so every full chain pass must
    // have been zero-copy — the counter equals forwarded traffic exactly.
    EXPECT_EQ(r.zero_copy_bytes, r.forwarded * kPayloadBytes)
        << "seed " << seed;
    // P3: nothing delivered with corrupted/freed bytes.
    EXPECT_EQ(r.rx_corrupt, 0u) << "seed " << seed;
    // Sanity: the scenario actually moved traffic.
    EXPECT_GT(r.rx_ok, 0u) << "seed " << seed;
  }
}

// A rewrite swaps buffers, so rewritten packets are deliberately *not*
// counted as zero-copy — pinned here so the counter's meaning never drifts.
TEST(NetPropertyTest, RewrittenPacketsAreNotCountedZeroCopy) {
  set_hot_path_counters_enabled(true);
  sim::Simulator sim;
  SimNetwork net(&sim);
  PortForwarder fwd(&net, {"relay", Port(2222)}, {"sink", Port(7)});
  set_hot_path_counters_enabled(false);
  obs::Counter& zc = obs::metrics().counter("net.tap_zero_copy_bytes");
  const std::uint64_t zc0 = zc.value();

  std::vector<Packet> rx;
  (void)net.bind({"sink", Port(7)}, [&](Packet p) { rx.push_back(p); });
  ASSERT_TRUE(fwd.start().is_ok());
  class RewriteTap : public PacketTap {
    Verdict inspect(Packet& pkt, Direction) override {
      std::string r = pkt.payload.str();
      r += "!";
      pkt.payload = PayloadRef(std::move(r));
      return Verdict::kPass;
    }
  } tap;
  fwd.add_tap(&tap);

  PayloadRef original("payload-bytes");
  Packet p;
  p.conn = net.new_conn();
  p.src = {"client", Port(9)};
  p.reply_to = {"client", Port(9)};
  p.wire_bytes = 100;
  p.payload = original;
  net.send({"relay", Port(2222)}, std::move(p));
  sim.run_until_idle();

  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].payload, "payload-bytes!");
  EXPECT_FALSE(rx[0].payload.shares_buffer_with(original));
  EXPECT_EQ(original.use_count(), 1);  // the fabric dropped its references
  EXPECT_EQ(zc.value(), zc0);
}

// Burst queues extend payload lifetime past the sender's release: the
// refcount probe sees exactly the in-flight references, and the bytes
// survive until the pump delivers them (ASan-verified).
TEST(NetPropertyTest, BurstQueueKeepsReleasedPayloadAlive) {
  sim::Simulator sim;
  SimNetwork net(&sim);
  net.set_delivery_mode(DeliveryMode::kBurst);
  net.set_burst_window(SimDuration::seconds(1));
  std::string delivered;
  (void)net.bind({"b", Port(1)}, [&](Packet p) { delivered = p.payload.str(); });

  PayloadRef probe;
  {
    PayloadRef sender("outlives-the-sender");
    probe = sender;  // external alias of the same buffer, refcount bump only
    Packet p;
    p.conn = net.new_conn();
    p.src = {"a", Port(9)};
    p.reply_to = {"a", Port(9)};
    p.wire_bytes = 100;
    p.payload = sender;
    net.send({"b", Port(1)}, std::move(p));
  }  // sender's handle gone; probe + the in-flight packet remain
  EXPECT_EQ(net.packets_in_flight(), 1u);
  EXPECT_EQ(probe.use_count(), 2);
  sim.run_until_idle();
  EXPECT_EQ(delivered, "outlives-the-sender");
  EXPECT_EQ(probe.use_count(), 1);  // queue drained, last ref is the probe
}

}  // namespace
}  // namespace csk::net
