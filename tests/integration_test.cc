// End-to-end integration: the full paper narrative on one simulated host —
// tenant VM, CloudSkulk install, service continuity for the victim,
// attacker services, and detection before/after.
#include <gtest/gtest.h>

#include "cloudskulk/installer.h"
#include "cloudskulk/services/active.h"
#include "cloudskulk/services/passive.h"
#include "detect/dedup_detector.h"
#include "detect/vmcs_scan.h"
#include "detect/vmi_fingerprint.h"
#include "test_util.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"
#include "workloads/kernel_compile.h"
#include "workloads/workload.h"

namespace csk {
namespace {

using cloudskulk::CloudSkulkInstaller;
using cloudskulk::InstallerOptions;
using cloudskulk::InstallReport;
using testing::small_host_config;
using testing::small_vm_config;

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() {
    auto cfg = small_host_config();
    cfg.boot_touched_mib = 6;
    host_ = world_.make_host(cfg);
    target_ =
        host_->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  }

  InstallReport install() {
    InstallerOptions opts;
    opts.rootkit_boot_touched_mib = 4;
    installer_ = std::make_unique<CloudSkulkInstaller>(host_, opts);
    return installer_->install();
  }

  vmm::World world_;
  vmm::Host* host_ = nullptr;
  vmm::VirtualMachine* target_ = nullptr;
  std::unique_ptr<CloudSkulkInstaller> installer_;
};

TEST_F(EndToEndTest, FullAttackChainThenDedupDetection) {
  // Phase 0: the vendor seeds File-A into the tenant's VM (web interface).
  detect::DedupDetectorConfig dcfg;
  dcfg.file_pages = 16;
  dcfg.merge_wait = SimDuration::seconds(5);
  detect::DedupDetector detector(host_, dcfg);
  ASSERT_TRUE(detector.seed_guest(target_->os()).is_ok());

  // Phase 1: pre-attack, the detector must see a clean host.
  auto before = detector.run(target_->os());
  ASSERT_TRUE(before.is_ok());
  EXPECT_EQ(before->verdict, detect::DedupVerdict::kNoNestedVm);

  // Phase 2: the attack. (File-A state in the victim survives migration.)
  const InstallReport report = install();
  ASSERT_TRUE(report.succeeded) << report.error;
  guestos::GuestOS* victim_os = installer_->nested_vm()->os();
  ASSERT_NE(victim_os, nullptr);
  EXPECT_TRUE(victim_os->fs().exists("file-a.mp3"));

  // Phase 3: the attacker impersonates — L1 mirrors File-A.
  ASSERT_TRUE(detector.seed_guest(installer_->rootkit_vm()->os()).is_ok());
  // Victim re-caches File-A after the step-1 perturbation turned it into
  // v2; use a second protocol round on fresh content.
  detect::DedupDetectorConfig dcfg2 = dcfg;
  dcfg2.file_name = "file-c.bin";
  detect::DedupDetector detector2(host_, dcfg2);
  ASSERT_TRUE(detector2.seed_guest(victim_os).is_ok());
  ASSERT_TRUE(detector2.seed_guest(installer_->rootkit_vm()->os()).is_ok());
  auto after = detector2.run(victim_os);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after->verdict, detect::DedupVerdict::kNestedVmDetected)
      << after->explanation;
}

TEST_F(EndToEndTest, VictimServiceSurvivesTheAttackTransparently) {
  // An SSH-ish echo service in the victim, reachable at host:2222 before…
  auto bind_service = [&](vmm::VirtualMachine* vm) {
    return vm->bind_guest_port(Port(22), [this, vm](net::Packet pkt) {
      net::Packet reply = pkt;
      reply.src = net::NetAddr{vm->node_name(), Port(22)};
      reply.payload = "pong:" + pkt.payload.str();
      world_.network().send(pkt.reply_to, std::move(reply));
    });
  };
  ASSERT_TRUE(bind_service(target_).is_ok());

  std::vector<std::string> replies;
  (void)world_.network().bind({"laptop", Port(9000)}, [&](net::Packet p) {
    replies.push_back(p.payload.str());
  });
  auto ping = [&](const std::string& what) {
    net::Packet p;
    p.conn = world_.network().new_conn();
    p.kind = net::ProtoKind::kSshKeystroke;
    p.src = {"laptop", Port(9000)};
    p.reply_to = p.src;
    p.wire_bytes = 60;
    p.payload = what;
    world_.network().send({host_->node_name(), Port(2222)}, p);
    world_.simulator().run_for(SimDuration::seconds(1));
  };

  ping("pre-attack");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], "pong:pre-attack");

  const InstallReport report = install();
  ASSERT_TRUE(report.succeeded) << report.error;
  // The OS moved; its network service binding is re-established by the
  // "sshd" when the migrated guest resumes (sockets re-listen on the new
  // virtual NIC). Model that re-bind explicitly:
  ASSERT_TRUE(bind_service(installer_->nested_vm()).is_ok());

  ping("post-attack");
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1], "pong:post-attack");
}

TEST_F(EndToEndTest, AllThreeDetectorsAgainstTheSameInfectedHost) {
  const InstallReport report = install();
  ASSERT_TRUE(report.succeeded) << report.error;
  guestos::GuestOS* l1 = installer_->rootkit_vm()->os();

  // A careful attacker hides the nesting machinery from in-guest views.
  for (const auto& name : {"qemu-system-x86", "kvm"}) {
    auto p = l1->find_process_by_name(name);
    ASSERT_TRUE(p.is_ok());
    ASSERT_TRUE(l1->hide_process(p->pid).is_ok());
  }

  // 1. VMI fingerprinting: evaded (paper §VI-E).
  detect::VmiFingerprintDetector vmi(host_);
  detect::VmBaseline baseline;
  baseline.vm_name = "guest0";
  baseline.identity.hostname = "guest0";
  baseline.expected_processes = {"init", "sshd"};
  EXPECT_FALSE(vmi.check({baseline}).suspicious());

  // 2. VMCS scanning: works only with the right signature database.
  detect::VmcsScanDetector vmcs(host_);
  EXPECT_TRUE(vmcs.scan().hypervisor_found());

  // 3. The paper's dedup detector: catches it from software alone.
  detect::DedupDetectorConfig dcfg;
  dcfg.file_pages = 8;
  dcfg.merge_wait = SimDuration::seconds(5);
  detect::DedupDetector dedup(host_, dcfg);
  ASSERT_TRUE(dedup.seed_guest(installer_->nested_vm()->os()).is_ok());
  ASSERT_TRUE(dedup.seed_guest(l1).is_ok());
  auto verdict = dedup.run(installer_->nested_vm()->os());
  ASSERT_TRUE(verdict.is_ok());
  EXPECT_EQ(verdict->verdict, detect::DedupVerdict::kNestedVmDetected);
}

TEST_F(EndToEndTest, PassiveAndActiveServicesComposeOnOneTap) {
  const InstallReport report = install();
  ASSERT_TRUE(report.succeeded) << report.error;
  vmm::VirtualMachine* nested = installer_->nested_vm();
  (void)nested->bind_guest_port(Port(22), [this, nested](net::Packet pkt) {
    net::Packet reply = pkt;
    reply.kind = net::ProtoKind::kHttpResponse;
    reply.src = net::NetAddr{nested->node_name(), Port(22)};
    reply.payload = "HTTP/1.1 200 OK balance: $5000";
    reply.wire_bytes = 120;
    world_.network().send(pkt.reply_to, std::move(reply));
  });

  cloudskulk::KeystrokeLogger keylogger(&world_.simulator());
  cloudskulk::PacketTamperer tamperer;
  tamperer.add_rule(cloudskulk::make_web_response_rewriter("balance: $5000",
                                                           "balance: $1"));
  installer_->ritm()->add_tap(&keylogger);
  installer_->ritm()->add_tap(&tamperer);

  std::vector<std::string> replies;
  (void)world_.network().bind({"laptop", Port(9000)}, [&](net::Packet p) {
    replies.push_back(p.payload.str());
  });
  net::Packet p;
  p.conn = world_.network().new_conn();
  p.kind = net::ProtoKind::kSshKeystroke;
  p.src = {"laptop", Port(9000)};
  p.reply_to = p.src;
  p.wire_bytes = 60;
  p.payload = "show balance";
  world_.network().send({host_->node_name(), Port(2222)}, p);
  world_.simulator().run_for(SimDuration::seconds(1));

  EXPECT_EQ(keylogger.transcript(), "show balance");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].find("balance: $1"), std::string::npos);
}

TEST_F(EndToEndTest, InstallDuringWorkloadTakesLonger) {
  // Fig 4's qualitative story at test scale: an idle victim installs much
  // faster than one churning memory at compile-like rates.
  const InstallReport idle_report = install();
  ASSERT_TRUE(idle_report.succeeded) << idle_report.error;

  // Second world: same setup, busy victim.
  vmm::World world2;
  auto cfg = small_host_config();
  cfg.boot_touched_mib = 6;
  vmm::Host* host2 = world2.make_host(cfg);
  vmm::VirtualMachine* busy =
      host2->launch_vm_cmdline(small_vm_config().to_command_line()).value();
  busy->set_dirty_page_source([](SimDuration) { return 4500.0; });
  InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 4;
  CloudSkulkInstaller installer2(host2, opts);
  const InstallReport busy_report = installer2.install();
  ASSERT_TRUE(busy_report.succeeded) << busy_report.error;

  EXPECT_GT(busy_report.migration.total_time.ns(),
            idle_report.migration.total_time.ns() * 13 / 10);
  EXPECT_GE(busy_report.migration.rounds, idle_report.migration.rounds);
}

TEST_F(EndToEndTest, HostAdminViewLooksIdenticalAfterAttack) {
  // Snapshot what a host admin inspects: qemu process list and monitor.
  std::vector<std::pair<std::int32_t, std::string>> before;
  for (const auto& p : host_->ps()) {
    if (p.comm.starts_with("qemu")) before.emplace_back(p.pid.value(), p.cmdline);
  }
  const InstallReport report = install();
  ASSERT_TRUE(report.succeeded) << report.error;
  std::vector<std::pair<std::int32_t, std::string>> after;
  for (const auto& p : host_->ps()) {
    if (p.comm.starts_with("qemu")) after.emplace_back(p.pid.value(), p.cmdline);
  }
  EXPECT_EQ(before, after);
  // Monitor on the original port still answers with a running VM.
  auto mon = host_->connect_monitor(5555);
  ASSERT_TRUE(mon.is_ok());
  EXPECT_NE(mon.value()->execute("info status").value().find("running"),
            std::string::npos);
  // And the guest shape reported over it matches the original config.
  EXPECT_NE(mon.value()->execute("info mtree").value().find("size=64M"),
            std::string::npos);
}

}  // namespace
}  // namespace csk
