// MachineConfig command-line round-trips and migration compatibility.
#include <gtest/gtest.h>

#include "test_util.h"
#include "vmm/machine_config.h"

namespace csk::vmm {
namespace {

MachineConfig full_config() {
  MachineConfig cfg;
  cfg.name = "guest0";
  cfg.memory_mb = 1024;
  cfg.vcpus = 2;
  cfg.cpu_host_passthrough = true;
  cfg.drives.push_back({"fedora22.qcow2", "qcow2", 20480});
  cfg.drives.push_back({"scratch.raw", "raw", 4096});
  NetdevConfig nd;
  nd.model = "virtio-net-pci";
  nd.mac = "52:54:00:12:34:56";
  nd.hostfwd.push_back({2222, 22});
  nd.hostfwd.push_back({8080, 80});
  cfg.netdevs.push_back(nd);
  cfg.monitor.telnet_port = 5555;
  return cfg;
}

TEST(MachineConfigTest, CommandLineRoundTrip) {
  const MachineConfig cfg = full_config();
  auto parsed = MachineConfig::parse_command_line(cfg.to_command_line());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), cfg);
}

TEST(MachineConfigTest, IncomingRoundTrip) {
  MachineConfig cfg = full_config();
  cfg.incoming_port = 4445;
  auto parsed = MachineConfig::parse_command_line(cfg.to_command_line());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->incoming_port, cfg.incoming_port);
}

TEST(MachineConfigTest, CommandLineMentionsKeyFlags) {
  const std::string cmd = full_config().to_command_line();
  EXPECT_NE(cmd.find("qemu-system-x86_64"), std::string::npos);
  EXPECT_NE(cmd.find("-enable-kvm"), std::string::npos);
  EXPECT_NE(cmd.find("-cpu host"), std::string::npos);
  EXPECT_NE(cmd.find("-m 1024"), std::string::npos);
  EXPECT_NE(cmd.find("hostfwd=tcp::2222-:22"), std::string::npos);
  EXPECT_NE(cmd.find("telnet:127.0.0.1:5555"), std::string::npos);
}

TEST(MachineConfigTest, MemoryPages) {
  MachineConfig cfg;
  cfg.memory_mb = 1024;
  EXPECT_EQ(cfg.memory_pages(), 262144u);
}

TEST(MachineConfigTest, ParseRejectsNonQemu) {
  EXPECT_FALSE(MachineConfig::parse_command_line("ls -la").is_ok());
  EXPECT_FALSE(MachineConfig::parse_command_line("").is_ok());
}

TEST(MachineConfigTest, ParseRejectsUnknownOption) {
  EXPECT_FALSE(
      MachineConfig::parse_command_line("qemu-system-x86_64 -frobnicate")
          .is_ok());
}

TEST(MachineConfigTest, ParseRejectsDanglingArgument) {
  EXPECT_FALSE(MachineConfig::parse_command_line("qemu-system-x86_64 -m").is_ok());
}

TEST(MachineConfigTest, ParseRejectsBadNumbers) {
  EXPECT_FALSE(
      MachineConfig::parse_command_line("qemu-system-x86_64 -m lots").is_ok());
}

TEST(MachineConfigTest, ParseWithoutKvmFlag) {
  auto parsed = MachineConfig::parse_command_line(
      "qemu-system-x86_64 -name tcg-guest -m 256 -smp 1 -display none");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_FALSE(parsed->enable_kvm);
  EXPECT_FALSE(parsed->cpu_host_passthrough);
}

TEST(MigrationCompatTest, IdenticalConfigsAreCompatible) {
  std::string why;
  EXPECT_TRUE(migration_compatible(full_config(), full_config(), &why)) << why;
  EXPECT_TRUE(why.empty());
}

TEST(MigrationCompatTest, HostPlumbingDifferencesAreAllowed) {
  MachineConfig dst = full_config();
  dst.name = "guest0-dst";
  dst.monitor.telnet_port = 0;
  dst.incoming_port = 4445;
  dst.netdevs[0].hostfwd = {{22, 22}};
  std::string why;
  EXPECT_TRUE(migration_compatible(full_config(), dst, &why)) << why;
}

struct IncompatCase {
  const char* what;
  void (*mutate)(MachineConfig&);
};

class MigrationIncompatTest : public ::testing::TestWithParam<IncompatCase> {};

TEST_P(MigrationIncompatTest, MismatchDetected) {
  MachineConfig dst = full_config();
  GetParam().mutate(dst);
  std::string why;
  EXPECT_FALSE(migration_compatible(full_config(), dst, &why));
  EXPECT_FALSE(why.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Mismatches, MigrationIncompatTest,
    ::testing::Values(
        IncompatCase{"ram", [](MachineConfig& c) { c.memory_mb = 2048; }},
        IncompatCase{"vcpus", [](MachineConfig& c) { c.vcpus = 4; }},
        IncompatCase{"machine",
                     [](MachineConfig& c) { c.machine_type = "q35"; }},
        IncompatCase{"drive_count",
                     [](MachineConfig& c) { c.drives.pop_back(); }},
        IncompatCase{"drive_format",
                     [](MachineConfig& c) { c.drives[0].format = "raw"; }},
        IncompatCase{"drive_size",
                     [](MachineConfig& c) { c.drives[0].size_mb = 1; }},
        IncompatCase{"netdev_count",
                     [](MachineConfig& c) { c.netdevs.clear(); }},
        IncompatCase{"netdev_model", [](MachineConfig& c) {
                       c.netdevs[0].model = "e1000";
                     }}),
    [](const auto& info) { return std::string(info.param.what); });

}  // namespace
}  // namespace csk::vmm
