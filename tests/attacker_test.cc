// Adaptive-attacker tests: the mem/guestos primitives the policies ride on
// (page watches, eager unshare, fresh-gfn file replacement), the ROC
// threshold-tie regression, and full campaigns under each AttackerPolicy —
// kStatic byte-equality with the pre-attacker seed (golden digests),
// reactive-policy determinism across worker counts and checkpoint resume,
// and the INCONCLUSIVE contract (no policy can manufacture a false CLEAN).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "attacker/policy.h"
#include "campaign/campaign.h"
#include "campaign/roc.h"
#include "common/hash.h"
#include "guestos/os.h"
#include "mem/addr_space.h"
#include "mem/ksm.h"
#include "mem/phys_mem.h"
#include "sim/simulator.h"

namespace csk::campaign {
namespace {

namespace fs = std::filesystem;

// ----------------------------------------------------------- page watches

mem::PageData synth(std::uint64_t tag) {
  return mem::PageData::synthetic(ContentHash{tag});
}

TEST(PageWatchTest, FiresOnWatchedWritesOnly) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace as(&phys, 32, "a");
  std::vector<std::pair<Gfn, ContentHash>> hits;
  // Duplicate gfn in the watch list counts once.
  as.watch_pages({Gfn(1), Gfn(3), Gfn(1)},
                 [&](Gfn gfn, const mem::PageData& data) {
                   hits.emplace_back(gfn, data.hash);
                 });
  EXPECT_TRUE(as.has_page_watch());
  EXPECT_EQ(as.watched_page_count(), 2u);

  as.write_page(Gfn(2), synth(7));   // unwatched: silent
  as.write_page(Gfn(3), synth(9));   // watched: fires
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, Gfn(3));
  EXPECT_EQ(hits[0].second, ContentHash{9});

  as.clear_page_watch();
  EXPECT_FALSE(as.has_page_watch());
  EXPECT_EQ(as.watched_page_count(), 0u);
  as.write_page(Gfn(3), synth(11));  // cleared: silent
  EXPECT_EQ(hits.size(), 1u);
}

TEST(PageWatchTest, ReplacingTheWatchDropsOldGfns) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace as(&phys, 16, "a");
  int old_hits = 0;
  int new_hits = 0;
  as.watch_pages({Gfn(1)},
                 [&](Gfn, const mem::PageData&) { ++old_hits; });
  as.watch_pages({Gfn(2)},
                 [&](Gfn, const mem::PageData&) { ++new_hits; });
  as.write_page(Gfn(1), synth(1));
  as.write_page(Gfn(2), synth(2));
  EXPECT_EQ(old_hits, 0);
  EXPECT_EQ(new_hits, 1);
}

// ------------------------------------------------------------ unshare_page

TEST(UnsharePageTest, SplitsAMergedFrameEagerly) {
  sim::Simulator sim;
  mem::HostPhysicalMemory phys;
  mem::KsmConfig kc;
  kc.pages_per_scan = 500;
  mem::KsmDaemon ksm(&sim, &phys, kc);
  mem::AddressSpace a(&phys, 8, "a");
  mem::AddressSpace b(&phys, 8, "b");
  a.write_page(Gfn(0), synth(5));
  b.write_page(Gfn(0), synth(5));
  ksm.register_region(&a);
  ksm.register_region(&b);
  ksm.full_pass();
  ksm.full_pass();
  ASSERT_EQ(a.translate(Gfn(0)), b.translate(Gfn(0)));

  const auto outcome = ksm.unshare_page(&a, Gfn(0));
  EXPECT_TRUE(outcome.was_shared);
  EXPECT_NE(a.translate(Gfn(0)), b.translate(Gfn(0)));
  // Content is preserved on both sides of the split.
  EXPECT_EQ(phys.frame(a.translate(Gfn(0))).data.hash, ContentHash{5});
  EXPECT_EQ(phys.frame(b.translate(Gfn(0))).data.hash, ContentHash{5});

  // Already-private pages are a cheap no-op.
  EXPECT_FALSE(ksm.unshare_page(&a, Gfn(0)).was_shared);
}

// ------------------------------------------------------------ replace_file

TEST(ReplaceFileTest, AllocatesDisjointGfns) {
  mem::HostPhysicalMemory phys;
  mem::AddressSpace as(&phys, 4096, "guest");
  guestos::GuestOS os(&as, guestos::OsIdentity{}, Rng(42),
                      /*ram_pages=*/1024);
  ASSERT_TRUE(
      os.fs().create_unique("file-a", 4 * mem::kPageSize, os.rng()).is_ok());
  auto old_gfns = os.load_file("file-a");
  ASSERT_TRUE(old_gfns.is_ok());

  std::vector<mem::PageData> v2;
  for (std::uint64_t i = 0; i < 4; ++i) v2.push_back(synth(100 + i));
  auto fresh = os.replace_file("file-a", v2, 4 * mem::kPageSize);
  ASSERT_TRUE(fresh.is_ok());
  ASSERT_EQ(fresh->size(), 4u);
  EXPECT_TRUE(os.file_cached("file-a"));

  // The hazard this API exists to avoid: a stale watch on the old gfns must
  // never see the new contents, so the fresh set is fully disjoint.
  for (Gfn g : *fresh) {
    for (Gfn old : *old_gfns) EXPECT_NE(g, old);
    EXPECT_TRUE(as.is_mapped(g));
  }
  EXPECT_EQ(phys.frame(as.translate((*fresh)[0])).data.hash, ContentHash{100});
}

// -------------------------------------------------- ROC threshold-tie fix

TEST(RocTieTest, DuplicateExplicitThresholdsCollapseToOnePoint) {
  const std::vector<ScoredSample> samples = {
      {1.0, false, true}, {2.0, false, true}, {3.0, true, true},
      {4.0, true, true}};
  const RocCurve tied =
      compute_roc("dedup", samples, {2.5, 2.5, 2.5, 2.5, 0.5});
  const RocCurve clean = compute_roc("dedup", samples, {2.5, 0.5});
  ASSERT_EQ(tied.points.size(), 2u);
  EXPECT_DOUBLE_EQ(tied.auc, clean.auc);
}

TEST(RocTieTest, AllTiedScoresSweepToHalfAucNotMore) {
  // Every sample scores identically: the derived grid must reduce to the
  // two distinguishable operating points (call everything / call nothing),
  // and the trapezoid over the diagonal corners is exactly 0.5 — duplicate
  // points inflating the integral was the bug.
  std::vector<ScoredSample> samples;
  for (int i = 0; i < 6; ++i) samples.push_back({4.2, i % 2 == 0, true});
  const RocCurve curve = compute_roc("dedup", samples);
  EXPECT_EQ(curve.points.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.auc, 0.5);
}

// ------------------------------------------------------- policy campaigns

CampaignConfig seed_campaign(std::size_t population, int workers) {
  // Mirrors the pre-attacker campaign_test small_campaign shape but under
  // the seed the golden digests below were pinned with.
  CampaignConfig cfg;
  cfg.population = population;
  cfg.workers = workers;
  cfg.root_seed = 0xADAB7ACCE55ull;
  cfg.scenario.boot_touched_mib = 4;
  cfg.scenario.guest_memory_mb = 64;
  cfg.scenario.file_pages_min = 8;
  cfg.scenario.file_pages_max = 16;
  cfg.scenario.merge_wait_min_s = 1.0;
  cfg.scenario.merge_wait_max_s = 3.0;
  return cfg;
}

CampaignConfig policy_campaign(attacker::AttackerPolicyKind kind,
                               std::size_t population, int workers) {
  CampaignConfig cfg = seed_campaign(population, workers);
  cfg.attacker.kind = kind;
  return cfg;
}

TEST(StaticPolicyGoldenTest, MatchesPreAttackerReportBytes) {
  // These digests were recorded from the campaign *before* the attacker
  // subsystem existed (seed-drawn evasions inlined in campaign_cell). The
  // default kStatic policy must reproduce those reports byte for byte —
  // any new rng draw, observation counter, or out.values key breaks this.
  const struct {
    std::size_t population;
    std::uint64_t digest;
    std::size_t bytes;
  } golden[] = {
      {6, 0x1e4d0f2ca8fb55edull, 29162},
      {10, 0xf0dd360134a615ddull, 46504},
  };
  for (const auto& g : golden) {
    const std::string json = DetectionCampaign(seed_campaign(g.population, 1))
                                 .run()
                                 .deterministic_json();
    EXPECT_EQ(fnv1a(json).value, g.digest) << "population " << g.population;
    EXPECT_EQ(json.size(), g.bytes) << "population " << g.population;
  }
}

TEST(AdaptivePolicyTest, ReactivePoliciesAreWorkerCountInvariant) {
  for (const auto kind : {attacker::AttackerPolicyKind::kReactiveMirror,
                          attacker::AttackerPolicyKind::kProbeTriggeredTsc}) {
    const std::string one =
        DetectionCampaign(policy_campaign(kind, 10, 1)).run()
            .deterministic_json();
    const std::string two =
        DetectionCampaign(policy_campaign(kind, 10, 2)).run()
            .deterministic_json();
    const std::string eight =
        DetectionCampaign(policy_campaign(kind, 10, 8)).run()
            .deterministic_json();
    EXPECT_EQ(one, two) << attacker::attacker_policy_kind_name(kind);
    EXPECT_EQ(one, eight) << attacker::attacker_policy_kind_name(kind);
  }
}

TEST(AdaptivePolicyTest, MirrorDegradesDedupAndRerandomizeRecovers) {
  // The tentpole's behavioral witness at test scale: a mirroring attacker
  // keeps the L1 facade byte-fresh so the stale-copy re-merge the dedup
  // protocol keys on never happens; re-randomizing File-A contents strands
  // the shards whose watch missed the new gfns and claws detection back.
  auto run_tpr = [](bool mirror, bool rerand) {
    CampaignConfig cfg = seed_campaign(16, 4);
    if (mirror) cfg.attacker.kind = attacker::AttackerPolicyKind::kReactiveMirror;
    cfg.scenario.rerandomize_file_a = rerand;
    const CampaignReport report = DetectionCampaign(cfg).run();
    return report.detectors.at("dedup").operating.tpr;
  };
  const double tpr_static = run_tpr(false, false);
  const double tpr_mirror = run_tpr(true, false);
  const double tpr_mirror_rerand = run_tpr(true, true);
  EXPECT_LT(tpr_mirror, tpr_static);
  EXPECT_GT(tpr_mirror_rerand, tpr_mirror);
}

TEST(AdaptivePolicyTest, TscPolicyBlindsTheGuestProbe) {
  const CampaignReport static_report =
      DetectionCampaign(policy_campaign(
                            attacker::AttackerPolicyKind::kStatic, 16, 4))
          .run();
  const CampaignReport tsc_report =
      DetectionCampaign(policy_campaign(
                            attacker::AttackerPolicyKind::kProbeTriggeredTsc,
                            16, 4))
          .run();
  // Reacting to exit bursts per-op defeats both the anomaly ratio and the
  // arith cross-check: the probe's curve collapses toward the coin flip.
  EXPECT_LT(tsc_report.detectors.at("probe").roc.auc,
            static_report.detectors.at("probe").roc.auc);
  // The dedup detector does not price exits: it stays intact.
  EXPECT_DOUBLE_EQ(tsc_report.detectors.at("dedup").roc.auc,
                   static_report.detectors.at("dedup").roc.auc);
}

TEST(AdaptivePolicyTest, NoPolicyManufacturesFalseClean) {
  // INCONCLUSIVE contract: with every shard stalled past the detector
  // timeout, an adaptive attacker must not convert "no answer" into a
  // CLEAN vote — all dedup/probe runs stay out of the ROC counts entirely.
  for (const auto kind : {attacker::AttackerPolicyKind::kStatic,
                          attacker::AttackerPolicyKind::kReactiveMirror,
                          attacker::AttackerPolicyKind::kProbeTriggeredTsc}) {
    for (const bool rerand : {false, true}) {
      CampaignConfig cfg = policy_campaign(kind, 8, 2);
      cfg.scenario.probe_stall_fraction = 1.0;
      cfg.scenario.rerandomize_file_a = rerand;
      const CampaignReport report = DetectionCampaign(cfg).run();
      for (const char* detector : {"dedup", "probe"}) {
        const RocCurve& roc = report.detectors.at(detector).roc;
        EXPECT_EQ(roc.positives + roc.negatives, 0u)
            << attacker::attacker_policy_kind_name(kind) << "/" << detector;
        EXPECT_EQ(roc.inconclusive, 8u)
            << attacker::attacker_policy_kind_name(kind) << "/" << detector;
      }
    }
  }
}

TEST(CampaignPresetTest, UniformSmallIsTheDefaultScenario) {
  const CampaignScenarioConfig preset =
      scenario_preset(CampaignPreset::kUniformSmall);
  const CampaignScenarioConfig def{};
  EXPECT_EQ(preset.guest_memory_mb, def.guest_memory_mb);
  EXPECT_EQ(preset.guest_memory_mb_max, def.guest_memory_mb_max);
  EXPECT_DOUBLE_EQ(preset.ksm_scan_jitter, def.ksm_scan_jitter);
}

TEST(CampaignPresetTest, MixedGuestsRunsDeterministically) {
  CampaignConfig cfg = seed_campaign(8, 0);
  cfg.scenario = scenario_preset(CampaignPreset::kMixedGuests);
  EXPECT_GT(cfg.scenario.guest_memory_mb_max, cfg.scenario.guest_memory_mb);
  EXPECT_GT(cfg.scenario.ksm_scan_jitter, 0.0);
  cfg.workers = 1;
  const std::string one = DetectionCampaign(cfg).run().deterministic_json();
  cfg.workers = 4;
  const std::string four = DetectionCampaign(cfg).run().deterministic_json();
  EXPECT_EQ(one, four);
}

// -------------------------------------------------- checkpoint/resume

class AttackerResumeTest : public ::testing::Test {
 protected:
  AttackerResumeTest() {
    dir_ = (fs::temp_directory_path() /
            ("csk_attacker_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~AttackerResumeTest() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(AttackerResumeTest, ReactiveMirrorResumesByteIdentical) {
  CampaignConfig cfg = policy_campaign(
      attacker::AttackerPolicyKind::kReactiveMirror, 8, 2);
  cfg.scenario.rerandomize_file_a = true;
  const std::string baseline =
      DetectionCampaign(cfg).run().deterministic_json();

  cfg.checkpoint.directory = dir_;
  cfg.checkpoint.every_shards = 3;
  const CampaignReport checkpointed = DetectionCampaign(cfg).run();
  EXPECT_EQ(checkpointed.deterministic_json(), baseline);
  EXPECT_GT(checkpointed.fleet.checkpoints_written, 0u);

  DetectionCampaign resumed_campaign(cfg);
  auto resumed = resumed_campaign.resume_from();
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_GT(resumed->fleet.resumed_shards, 0u);
  EXPECT_EQ(resumed->deterministic_json(), baseline);
}

}  // namespace
}  // namespace csk::campaign
