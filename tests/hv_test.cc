// Hypervisor-layer tests: the calibrated timing model (checked against the
// paper's Tables II and III), nesting rules and exit accounting.
#include <gtest/gtest.h>

#include "guestos/costs.h"
#include "hv/hypervisor.h"
#include "hv/layer.h"
#include "hv/timing_model.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace csk::hv {
namespace {

// ------------------------------------------------------------------ layer

TEST(LayerTest, NamesAndNesting) {
  EXPECT_STREQ(layer_name(Layer::kL0), "L0");
  EXPECT_STREQ(layer_name(Layer::kL2), "L2");
  EXPECT_EQ(guest_layer_of(Layer::kL0), Layer::kL1);
  EXPECT_EQ(guest_layer_of(Layer::kL1), Layer::kL2);
  EXPECT_DEATH(guest_layer_of(Layer::kL2), "L2");
}

// ----------------------------------------------------------------- OpCost

TEST(OpCostTest, AccumulationSumsComponents) {
  OpCost a;
  a.cpu_ns = 100;
  a.n_svc = 1;
  OpCost b;
  b.cpu_ns = 300;
  b.n_faults = 2;
  a += b;
  EXPECT_DOUBLE_EQ(a.cpu_ns, 400);
  EXPECT_DOUBLE_EQ(a.n_svc, 1);
  EXPECT_DOUBLE_EQ(a.n_faults, 2);
}

TEST(OpCostTest, MemIntensityBlendsCpuWeighted) {
  OpCost a;
  a.cpu_ns = 100;
  a.mem_intensity = 1.0;
  OpCost b;
  b.cpu_ns = 300;
  b.mem_intensity = 0.0;
  a += b;
  EXPECT_NEAR(a.mem_intensity, 0.25, 1e-9);
}

TEST(OpCostTest, ScalingPreservesIntensity) {
  OpCost a;
  a.cpu_ns = 100;
  a.mem_intensity = 0.5;
  a.n_faults = 3;
  const OpCost s = a * 10;
  EXPECT_DOUBLE_EQ(s.cpu_ns, 1000);
  EXPECT_DOUBLE_EQ(s.n_faults, 30);
  EXPECT_DOUBLE_EQ(s.mem_intensity, 0.5);
}

// ----------------------------------------------------------- TimingModel

class TimingModelTest : public ::testing::Test {
 protected:
  TimingModel model_;
  ExecEnv env(Layer layer) const { return ExecEnv{layer, &model_, false}; }
};

TEST_F(TimingModelTest, ExitBearingOpsAreMonotoneAcrossLayers) {
  for (auto make : {&guestos::pipe_latency_cost, &guestos::fork_cost,
                    &guestos::af_unix_latency_cost}) {
    const OpCost c = make();
    const auto l0 = model_.price(c, Layer::kL0);
    const auto l1 = model_.price(c, Layer::kL1);
    const auto l2 = model_.price(c, Layer::kL2);
    // The paper itself measures fork+exit slightly *faster* at L1 than L0
    // (EPT beats bare-metal soft page faults by a hair), so allow a small
    // inversion there; L2 must always be clearly slower.
    EXPECT_LE(l0.ns(), static_cast<std::int64_t>(1.03 * l1.ns()));
    EXPECT_LT(l1.ns(), l2.ns());
  }
}

TEST_F(TimingModelTest, ArithmeticIsLayerInsensitive) {
  OpCost c;
  c.cpu_ns = 1e6;
  const auto l0 = model_.price(c, Layer::kL0);
  const auto l2 = model_.price(c, Layer::kL2);
  EXPECT_LT(static_cast<double>(l2.ns()) / static_cast<double>(l0.ns()), 1.04);
}

TEST_F(TimingModelTest, MemIntensityOnlyHurtsWhenNested) {
  OpCost mem;
  mem.cpu_ns = 1e6;
  mem.mem_intensity = 1.0;
  OpCost reg = mem;
  reg.mem_intensity = 0.0;
  EXPECT_EQ(model_.price(mem, Layer::kL0), model_.price(reg, Layer::kL0));
  EXPECT_GT(model_.price(mem, Layer::kL2).ns(),
            model_.price(reg, Layer::kL2).ns() * 1.2);
}

TEST_F(TimingModelTest, PriceNoisyIsUnbiasedAndPositive) {
  OpCost c;
  c.cpu_ns = 1e6;
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto d = model_.price_noisy(c, Layer::kL0, rng, 0.05);
    EXPECT_GT(d.ns(), 0);
    sum += static_cast<double>(d.ns());
  }
  EXPECT_NEAR(sum / 2000.0, 1e6, 1e4);
}

// Calibration: Table III of the paper, all three layers. The model must
// land within tolerance of every measured cell (shape fidelity).
struct ProcCell {
  const char* op;
  double paper_us[3];  // L0, L1, L2
  double tolerance;    // relative
};

class TableIIICalibration : public TimingModelTest,
                            public ::testing::WithParamInterface<ProcCell> {};

TEST_P(TableIIICalibration, ModelMatchesPaper) {
  const ProcCell& cell = GetParam();
  OpCost cost;
  const std::string op = cell.op;
  using namespace guestos;
  if (op == "signal handler installation") {
    cost = signal_install_cost();
  } else if (op == "signal handler overhead") {
    cost = signal_overhead_cost();
  } else if (op == "protection fault") {
    cost = protection_fault_cost();
  } else if (op == "pipe latency") {
    cost = pipe_latency_cost();
  } else if (op == "AF_UNIX sock stream latency") {
    cost = af_unix_latency_cost();
  } else if (op == "fork+ exit") {
    cost = fork_cost();
    cost += exit_cost();
  } else if (op == "fork+ execve") {
    cost = fork_cost();
    cost += execve_cost();
    cost += exit_cost();
  } else if (op == "fork+ /bin/sh -c") {
    cost = fork_cost();
    cost += execve_cost();
    cost += shell_overhead_cost();
    cost += fork_cost();
    cost += execve_cost();
    cost += exit_cost();
    cost += exit_cost();
  } else {
    FAIL() << "unknown op";
  }
  for (int i = 0; i < 3; ++i) {
    const auto layer = static_cast<Layer>(i);
    const double us = model_.price(cost, layer).micros_f();
    EXPECT_NEAR(us, cell.paper_us[i], cell.paper_us[i] * cell.tolerance)
        << op << " at " << layer_name(layer);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperTableIII, TableIIICalibration,
    ::testing::Values(
        ProcCell{"signal handler installation", {0.075, 0.096, 0.10}, 0.10},
        ProcCell{"signal handler overhead", {0.50, 0.58, 0.60}, 0.15},
        ProcCell{"protection fault", {0.27, 0.29, 0.32}, 0.10},
        ProcCell{"pipe latency", {3.49, 6.75, 65.49}, 0.05},
        ProcCell{"AF_UNIX sock stream latency", {3.58, 5.37, 43.98}, 0.10},
        ProcCell{"fork+ exit", {74.6, 73.65, 242.19}, 0.05},
        ProcCell{"fork+ execve", {245.8, 275.05, 588.50}, 0.20},
        ProcCell{"fork+ /bin/sh -c", {918.7, 966.67, 1826.00}, 0.20}));

// Calibration: Table II — arithmetic latencies barely move across layers.
struct ArithCell {
  double l0_ns;
  double paper[3];
};

class TableIICalibration : public TimingModelTest,
                           public ::testing::WithParamInterface<ArithCell> {};

TEST_P(TableIICalibration, ModelMatchesPaper) {
  const ArithCell& cell = GetParam();
  OpCost c;
  c.cpu_ns = cell.l0_ns * 1e6;  // batch of 1M ops
  for (int i = 0; i < 3; ++i) {
    const double per_op =
        static_cast<double>(model_.price(c, static_cast<Layer>(i)).ns()) / 1e6;
    // The paper's sub-ns cells are printed at 2 decimals; the additive term
    // absorbs that rounding.
    EXPECT_NEAR(per_op, cell.paper[i], cell.paper[i] * 0.02 + 0.012);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperTableII, TableIICalibration,
    ::testing::Values(ArithCell{0.26, {0.26, 0.25, 0.26}},
                      ArithCell{0.13, {0.13, 0.13, 0.13}},
                      ArithCell{5.94, {5.94, 5.96, 6.14}},
                      ArithCell{6.37, {6.37, 6.39, 6.59}},
                      ArithCell{0.75, {0.75, 0.75, 0.78}},
                      ArithCell{1.25, {1.25, 1.26, 1.30}},
                      ArithCell{3.31, {3.31, 3.32, 3.43}},
                      ArithCell{5.06, {5.06, 5.07, 5.23}}));

TEST(NestedMultiplierTest, DefaultMultiplierReproducesCalibratedRow) {
  const TimingModel derived = TimingModel::with_nested_exit_multiplier(19.3);
  const TimingModel calibrated;
  const int l2 = layer_index(Layer::kL2);
  EXPECT_NEAR(derived.params().ctxsw_ns[l2],
              calibrated.params().ctxsw_ns[l2], 1500);
  EXPECT_NEAR(derived.params().fault_ns[l2],
              calibrated.params().fault_ns[l2], 120);
  EXPECT_NEAR(derived.params().mem_overhead[l2],
              calibrated.params().mem_overhead[l2], 0.01);
}

TEST(NestedMultiplierTest, HigherMultiplierSlowsL2Only) {
  const TimingModel low = TimingModel::with_nested_exit_multiplier(5.0);
  const TimingModel high = TimingModel::with_nested_exit_multiplier(40.0);
  const OpCost pipe = guestos::pipe_latency_cost();
  EXPECT_EQ(low.price(pipe, Layer::kL1), high.price(pipe, Layer::kL1));
  EXPECT_GT(high.price(pipe, Layer::kL2).ns(),
            3 * low.price(pipe, Layer::kL2).ns());
}

// ------------------------------------------------------------- Hypervisor

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest() : hv_(&sim_, &model_, Layer::kL0, "kvm@host") {}
  sim::Simulator sim_;
  TimingModel model_;
  Hypervisor hv_;
};

TEST_F(HypervisorTest, AttachDetachGuests) {
  EXPECT_TRUE(hv_.attach_guest(VmId(1), "a", false).is_ok());
  EXPECT_TRUE(hv_.has_guest(VmId(1)));
  EXPECT_FALSE(hv_.attach_guest(VmId(1), "a", false).is_ok());
  EXPECT_TRUE(hv_.detach_guest(VmId(1)).is_ok());
  EXPECT_FALSE(hv_.detach_guest(VmId(1)).is_ok());
}

TEST_F(HypervisorTest, GuestsRunOneLayerDown) {
  EXPECT_EQ(hv_.guest_layer(), Layer::kL1);
  ASSERT_TRUE(hv_.attach_guest(VmId(1), "a", false).is_ok());
  EXPECT_EQ(hv_.guest(VmId(1)).layer, Layer::kL1);
}

TEST_F(HypervisorTest, NestedRequiresVmxPassthrough) {
  ASSERT_TRUE(hv_.attach_guest(VmId(1), "plain", false).is_ok());
  ASSERT_TRUE(hv_.attach_guest(VmId(2), "vmx", true).is_ok());
  EXPECT_FALSE(hv_.nested_hypervisor_layer(VmId(1)).is_ok());
  auto layer = hv_.nested_hypervisor_layer(VmId(2));
  ASSERT_TRUE(layer.is_ok());
  EXPECT_EQ(layer.value(), Layer::kL1);
}

TEST_F(HypervisorTest, NoNestingBelowL2) {
  Hypervisor l1(&sim_, &model_, Layer::kL1, "kvm@guestx");
  EXPECT_FALSE(l1.attach_guest(VmId(9), "l2-vmx", true).is_ok());
  ASSERT_TRUE(l1.attach_guest(VmId(9), "l2", false).is_ok());
  EXPECT_FALSE(l1.nested_hypervisor_layer(VmId(9)).is_ok());
}

TEST_F(HypervisorTest, ChargeExitCountsAndPrices) {
  ASSERT_TRUE(hv_.attach_guest(VmId(1), "a", false).is_ok());
  const SimDuration d = hv_.charge_exit(VmId(1), ExitReason::kIo, 10);
  EXPECT_EQ(hv_.guest(VmId(1)).exits.count(ExitReason::kIo), 10u);
  EXPECT_EQ(d.ns(), static_cast<std::int64_t>(10 * model_.exit_ns(Layer::kL1)));
}

TEST_F(HypervisorTest, ChargeOpsRecordsImpliedExits) {
  ASSERT_TRUE(hv_.attach_guest(VmId(1), "a", false).is_ok());
  OpCost c;
  c.n_faults = 5;
  c.n_io_ops = 2;
  c.n_ctxsw = 3;
  hv_.charge_ops(VmId(1), c);
  const ExitStats& exits = hv_.guest(VmId(1)).exits;
  EXPECT_EQ(exits.count(ExitReason::kEptViolation), 5u);
  EXPECT_EQ(exits.count(ExitReason::kIo), 2u);
  EXPECT_EQ(exits.count(ExitReason::kExternalInterrupt), 3u);
  EXPECT_EQ(exits.total(), 10u);
}

TEST_F(HypervisorTest, ChargeExitPublishesMetrics) {
  ASSERT_TRUE(hv_.attach_guest(VmId(1), "a", false).is_ok());
  const std::string exits_key = "hv.exits{layer=L1,reason=IO}";
  const std::string cost_key = "hv.exit_cost_ns{layer=L1}";
  const std::uint64_t exits_before =
      obs::metrics().snapshot().counter_or(exits_key);
  const std::uint64_t cost_before =
      obs::metrics().snapshot().counter_or(cost_key);
  hv_.charge_exit(VmId(1), ExitReason::kIo, 7);
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counter_or(exits_key) - exits_before, 7u);
  EXPECT_GT(snap.counter_or(cost_key), cost_before);
}

TEST(ExitReasonTest, Names) {
  EXPECT_STREQ(exit_reason_name(ExitReason::kVmlaunch), "VMLAUNCH");
  EXPECT_STREQ(exit_reason_name(ExitReason::kDirtyLogSync), "DIRTY_LOG_SYNC");
}

}  // namespace
}  // namespace csk::hv
