// Golden determinism tests for the fleet runner.
//
// The contract under test: a shard's simulated result is a pure function of
// its derived seed — never of the worker count, the steal schedule, or how
// many times the fleet ran before. The assertions are deliberately blunt:
// byte-equality of canonical JSON, because "almost deterministic" is just
// nondeterministic with extra steps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "driver/vm_runner.h"
#include "fault/injector.h"
#include "fleet/fleet.h"
#include "fleet/pool.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "vmm/migration.h"
#include "workloads/filebench.h"

namespace csk::fleet {
namespace {

using testing::small_host_config;
using testing::small_vm_config;

// ------------------------------------------------------- shared scenarios

/// Even shards: a small L0-L0 migration under seeded packet loss (exercises
/// net, vmm, fault and the retry layer). Odd shards: a filebench run plus
/// ksmd activity (exercises hv, mem, driver). Both publish metrics and
/// report KPIs; everything derives from ctx.seed.
ShardOutcome mixed_scenario(const ShardContext& ctx) {
  ShardOutcome out;
  Rng rng(ctx.seed);
  vmm::World world(derive_seed(ctx.seed, 1));
  auto host_cfg = small_host_config();
  host_cfg.boot_touched_mib = 4;
  vmm::Host* host = world.make_host(host_cfg);

  if (ctx.index % 2 == 0) {
    vmm::VirtualMachine* source =
        host->launch_vm(small_vm_config("src", 64, 0, 0),
                        /*boot_touched_mib=*/16)
            .value();
    auto dest_cfg = small_vm_config("dst", 64, 0, 0);
    dest_cfg.incoming_port = 4444;
    (void)host->launch_vm(dest_cfg).value();

    fault::FaultPlan plan;
    plan.seed = derive_seed(ctx.seed, 2);
    plan.net.push_back({"", "", SimDuration::zero(), SimDuration::seconds(600),
                        0.02 + 0.08 * rng.uniform01()});
    vmm::MigrationConfig cfg;
    cfg.retry.max_attempts = 3;
    cfg.retry.initial_backoff = SimDuration::millis(200);
    cfg.chunk_timeout = SimDuration::seconds(2);
    vmm::MigrationJob job(&world, source,
                          net::NetAddr{host->node_name(), Port(4444)}, cfg);
    fault::Injector injector(&world, plan);
    injector.attach_migration(&job);
    injector.arm();
    job.start();
    const SimTime deadline =
        world.simulator().now() + SimDuration::seconds(3600);
    while (!job.done() && world.simulator().now() < deadline) {
      if (!world.simulator().step()) break;
    }
    out.faults = injector.log();
    if (!job.done() || !job.stats().succeeded) {
      out.status = unavailable("migration did not succeed: " +
                               job.stats().error);
      return out;
    }
    out.values["total_s"] = job.stats().total_time.seconds_f();
    out.values["downtime_ms"] = job.stats().downtime.millis_f();
    out.values["retransmits"] =
        static_cast<double>(job.stats().chunk_retransmits);
  } else {
    vmm::VirtualMachine* vm =
        host->launch_vm(small_vm_config("fb", 64, 0, 0)).value();
    workloads::FilebenchWorkload::Params params;
    params.iterations = 2000 + static_cast<int>(rng.uniform(2000));
    const workloads::FilebenchWorkload fb(params);
    const SimDuration elapsed = driver::run_workload(*vm, fb);
    world.simulator().run_for(SimDuration::seconds(2));  // let ksmd scan
    out.values["fb_s"] = elapsed.seconds_f();
    out.values["events"] = static_cast<double>(world.simulator().dispatched());
  }
  return out;
}

FleetRunner make_fleet(int workers, bool audit = false,
                       std::size_t shards = 8) {
  FleetConfig cfg;
  cfg.workers = workers;
  cfg.root_seed = 0xF1EE7DE0ull;
  cfg.audit = audit;
  FleetRunner fleet(cfg);
  for (std::size_t i = 0; i < shards; ++i) {
    fleet.add("mixed-" + std::to_string(i), mixed_scenario);
  }
  return fleet;
}

// ------------------------------------------------ worker-count invariance

TEST(FleetDeterminismTest, WorkerCountsProduceByteIdenticalReports) {
  FleetReport r1 = make_fleet(1).run();
  FleetReport r2 = make_fleet(2).run();
  FleetReport r8 = make_fleet(8).run();
  ASSERT_EQ(r1.shards.size(), 8u);
  EXPECT_EQ(r1.failed_shards(), 0u);
  for (std::size_t i = 0; i < r1.shards.size(); ++i) {
    EXPECT_EQ(r1.shards[i].digest, r2.shards[i].digest) << "shard " << i;
    EXPECT_EQ(r1.shards[i].digest, r8.shards[i].digest) << "shard " << i;
  }
  const std::string j1 = r1.deterministic_json();
  EXPECT_EQ(j1, r2.deterministic_json());
  EXPECT_EQ(j1, r8.deterministic_json());
  EXPECT_NE(j1.find("merged_metrics"), std::string::npos);
}

TEST(FleetDeterminismTest, RepeatedRunsAreByteIdentical) {
  FleetRunner fleet = make_fleet(2);
  const std::string first = fleet.run().deterministic_json();
  const std::string second = fleet.run().deterministic_json();
  EXPECT_EQ(first, second);
}

TEST(FleetDeterminismTest, AuditModeReportsZeroDiffs) {
  FleetReport report = make_fleet(4, /*audit=*/true).run();
  EXPECT_TRUE(report.audited);
  EXPECT_GT(report.audit_wall_ns, 0);
  EXPECT_TRUE(report.audit_diffs.empty())
      << report.audit_diffs.front().detail;
}

TEST(FleetDeterminismTest, RunShardReproducesThePooledShard) {
  FleetRunner fleet = make_fleet(4);
  const FleetReport report = fleet.run();
  const ShardResult solo = fleet.run_shard(3);
  EXPECT_EQ(solo.digest, report.shards[3].digest);
  EXPECT_EQ(solo.seed, derive_seed(fleet.config().root_seed, 3));
}

TEST(FleetDeterminismTest, DifferentRootSeedsChangeTheFleet) {
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.root_seed = 0x1111;
  FleetRunner a(cfg);
  cfg.root_seed = 0x2222;
  FleetRunner b(cfg);
  for (std::size_t i = 0; i < 4; ++i) {
    a.add("s" + std::to_string(i), mixed_scenario);
    b.add("s" + std::to_string(i), mixed_scenario);
  }
  EXPECT_NE(a.run().deterministic_json(), b.run().deterministic_json());
}

// --------------------------------------------------------------- the pool

TEST(WorkStealingPoolTest, ExecutesEveryTaskExactlyOnce) {
  WorkStealingPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.run(std::move(tasks));
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(WorkStealingPoolTest, IdleWorkerStealsFromABlockedOne) {
  WorkStealingPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 14; ++i) {
    tasks.push_back([&done] { done.fetch_add(1); });
  }
  // Round-robin seeding puts task 14 at the BACK of worker 0's deque, which
  // is where the owner pops first: worker 0 blocks while still holding 7
  // queued tasks. Worker 1 drains its own deque in microseconds and must
  // steal from the sleeper's deque for the batch to finish promptly.
  tasks.push_back([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.fetch_add(1);
  });
  pool.run(std::move(tasks));
  EXPECT_EQ(done.load(), 15);
  EXPECT_GE(pool.steals(), 1u);
}

// ------------------------------------- in-process bench re-run (obs side)

/// A miniature of the Fig 4 L0-L0 idle cell, producing the same document
/// shape bench_main writes to BENCH_*.json (entries + metrics snapshot).
std::string bench_style_migration_report() {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(registry);

  vmm::World world;
  auto host_cfg = small_host_config();
  host_cfg.ksm_enabled = false;
  vmm::Host* host = world.make_host(host_cfg);
  vmm::VirtualMachine* source =
      host->launch_vm(small_vm_config("src", 64, 0, 0),
                      /*boot_touched_mib=*/16)
          .value();
  auto dest_cfg = small_vm_config("dst", 64, 0, 0);
  dest_cfg.incoming_port = 4444;
  (void)host->launch_vm(dest_cfg).value();
  vmm::MigrationJob job(&world, source,
                        net::NetAddr{host->node_name(), Port(4444)});
  job.start();
  const SimTime deadline = world.simulator().now() + SimDuration::seconds(3600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  CSK_CHECK(job.done() && job.stats().succeeded);

  obs::JsonValue entries = obs::JsonValue::array();
  entries.push(obs::JsonValue::object()
                   .set("key", "idle/total_s")
                   .set("measured", job.stats().total_time.seconds_f()));
  entries.push(obs::JsonValue::object()
                   .set("key", "idle/downtime_ms")
                   .set("measured", job.stats().downtime.millis_f()));
  return obs::JsonValue::object()
      .set("bench", "fleet_inprocess_fig4")
      .set("schema_version", 1)
      .set("entries", std::move(entries))
      .set("metrics", registry.snapshot().to_json())
      .dump(2);
}

TEST(FleetDeterminismTest, BenchScenarioRunTwiceInProcessIsByteIdentical) {
  const std::string first = bench_style_migration_report();
  const std::string second = bench_style_migration_report();
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace csk::fleet
