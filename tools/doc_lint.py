#!/usr/bin/env python3
"""Documentation coverage lint.

Fails (exit 1) when any of:
  * a public header under src/ lacks a Doxygen ``/// \\file`` comment, or
  * a src/* subsystem has no section in ARCHITECTURE.md (a heading or body
    line mentioning ``src/<name>``), or
  * docs/testing.md claims a test-binary count that differs from the number
    of ``csk_add_test(...)`` registrations in tests/CMakeLists.txt (docs
    that state totals rot silently; this pins the claim to the source of
    truth), or
  * a field of ``vmm::MigrationConfig`` is missing from ARCHITECTURE.md's
    migration-knobs table (every knob added to the struct must be
    documented as a backticked ``name`` there), or
  * a field of ``attacker::AttackerPolicyConfig`` is missing from
    ARCHITECTURE.md's attacker-knobs table (same contract: every policy
    knob must be documented as a backticked ``name``).

Run from anywhere: the repo root is derived from this file's location.
Wired into CTest as the ``doc_lint`` test so documentation debt fails the
suite the same way a broken assertion does.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
ARCHITECTURE = REPO / "ARCHITECTURE.md"
TESTING_MD = REPO / "docs" / "testing.md"
TESTS_CMAKE = REPO / "tests" / "CMakeLists.txt"


def headers_missing_file_doc() -> list[pathlib.Path]:
    missing = []
    for header in sorted(SRC.rglob("*.h")):
        text = header.read_text(encoding="utf-8", errors="replace")
        if "/// \\file" not in text:
            missing.append(header.relative_to(REPO))
    return missing


def subsystems_missing_architecture_section() -> list[str]:
    arch = ARCHITECTURE.read_text(encoding="utf-8", errors="replace")
    missing = []
    for subdir in sorted(SRC.iterdir()):
        if not subdir.is_dir():
            continue
        if f"src/{subdir.name}" not in arch:
            missing.append(subdir.name)
    return missing


def stale_test_count_claims() -> list[str]:
    """Claims like 'spans 26 test binaries' that disagree with CTest."""
    actual = len(re.findall(r"^\s*csk_add_test\(",
                            TESTS_CMAKE.read_text(encoding="utf-8"),
                            flags=re.MULTILINE))
    claims = re.findall(r"(\d+)\s+test\s+binaries",
                        TESTING_MD.read_text(encoding="utf-8"))
    return [f"docs/testing.md says '{c} test binaries' but "
            f"tests/CMakeLists.txt registers {actual} (csk_add_test calls)"
            for c in claims if int(c) != actual]


MIGRATION_H = SRC / "vmm" / "migration.h"
ATTACKER_H = SRC / "attacker" / "policy.h"


def struct_fields(header: pathlib.Path, struct_name: str) -> list[str]:
    """Field names of ``struct <name> { ... };``, parsed from the header."""
    text = header.read_text(encoding="utf-8")
    match = re.search(r"struct " + struct_name + r" \{(.*?)\n\};", text,
                      flags=re.DOTALL)
    if match is None:
        return []
    fields = []
    for line in match.group(1).splitlines():
        line = line.strip()
        if line.startswith(("//", "///")):
            continue
        decl = re.match(r"[\w:<>,\s]+?(\w+)\s*(?:=[^;]*)?;", line)
        if decl:
            fields.append(decl.group(1))
    return fields


def migration_config_fields() -> list[str]:
    return struct_fields(MIGRATION_H, "MigrationConfig")


def attacker_policy_config_fields() -> list[str]:
    return struct_fields(ATTACKER_H, "AttackerPolicyConfig")


def undocumented_migration_knobs() -> list[str]:
    """MigrationConfig fields absent from ARCHITECTURE.md's knobs table."""
    arch = ARCHITECTURE.read_text(encoding="utf-8", errors="replace")
    return [f for f in migration_config_fields() if f"`{f}`" not in arch]


def undocumented_attacker_knobs() -> list[str]:
    """AttackerPolicyConfig fields absent from ARCHITECTURE.md."""
    arch = ARCHITECTURE.read_text(encoding="utf-8", errors="replace")
    return [f for f in attacker_policy_config_fields() if f"`{f}`" not in arch]


def main() -> int:
    failed = False

    missing_docs = headers_missing_file_doc()
    if missing_docs:
        failed = True
        print(f"doc_lint: {len(missing_docs)} header(s) lack a '/// \\file' "
              "comment:")
        for path in missing_docs:
            print(f"  {path}")

    missing_arch = subsystems_missing_architecture_section()
    if missing_arch:
        failed = True
        print("doc_lint: subsystem(s) not mentioned in ARCHITECTURE.md:")
        for name in missing_arch:
            print(f"  src/{name}")

    stale_counts = stale_test_count_claims()
    if stale_counts:
        failed = True
        print("doc_lint: stale test-count claim(s):")
        for claim in stale_counts:
            print(f"  {claim}")

    missing_knobs = undocumented_migration_knobs()
    if missing_knobs:
        failed = True
        print("doc_lint: MigrationConfig field(s) missing from "
              "ARCHITECTURE.md's migration-knobs table:")
        for name in missing_knobs:
            print(f"  {name}")

    missing_attacker = undocumented_attacker_knobs()
    if missing_attacker:
        failed = True
        print("doc_lint: AttackerPolicyConfig field(s) missing from "
              "ARCHITECTURE.md's attacker-knobs table:")
        for name in missing_attacker:
            print(f"  {name}")

    if failed:
        return 1
    n_headers = sum(1 for _ in SRC.rglob("*.h"))
    n_subsystems = sum(1 for d in SRC.iterdir() if d.is_dir())
    n_knobs = len(migration_config_fields())
    n_attacker = len(attacker_policy_config_fields())
    print(f"doc_lint: OK ({n_headers} headers documented, "
          f"{n_subsystems} subsystems covered in ARCHITECTURE.md, "
          "test-binary count claims in sync, "
          f"{n_knobs} migration knobs and "
          f"{n_attacker} attacker knobs documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
