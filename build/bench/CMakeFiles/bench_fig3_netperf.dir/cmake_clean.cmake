file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_netperf.dir/bench_fig3_netperf.cc.o"
  "CMakeFiles/bench_fig3_netperf.dir/bench_fig3_netperf.cc.o.d"
  "bench_fig3_netperf"
  "bench_fig3_netperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_netperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
