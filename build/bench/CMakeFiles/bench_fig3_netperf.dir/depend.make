# Empty dependencies file for bench_fig3_netperf.
# This may be replaced when dependencies are built.
