file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_postcopy.dir/bench_ablation_postcopy.cc.o"
  "CMakeFiles/bench_ablation_postcopy.dir/bench_ablation_postcopy.cc.o.d"
  "bench_ablation_postcopy"
  "bench_ablation_postcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_postcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
