# Empty dependencies file for bench_ablation_cross_host.
# This may be replaced when dependencies are built.
