# Empty compiler generated dependencies file for bench_install_time.
# This may be replaced when dependencies are built.
