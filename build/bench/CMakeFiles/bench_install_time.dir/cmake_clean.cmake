file(REMOVE_RECURSE
  "CMakeFiles/bench_install_time.dir/bench_install_time.cc.o"
  "CMakeFiles/bench_install_time.dir/bench_install_time.cc.o.d"
  "bench_install_time"
  "bench_install_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_install_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
