file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cves.dir/bench_table1_cves.cc.o"
  "CMakeFiles/bench_table1_cves.dir/bench_table1_cves.cc.o.d"
  "bench_table1_cves"
  "bench_table1_cves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
