# Empty dependencies file for bench_ablation_exit_multiplier.
# This may be replaced when dependencies are built.
