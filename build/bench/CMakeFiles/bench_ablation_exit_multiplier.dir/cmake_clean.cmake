file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_exit_multiplier.dir/bench_ablation_exit_multiplier.cc.o"
  "CMakeFiles/bench_ablation_exit_multiplier.dir/bench_ablation_exit_multiplier.cc.o.d"
  "bench_ablation_exit_multiplier"
  "bench_ablation_exit_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_exit_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
