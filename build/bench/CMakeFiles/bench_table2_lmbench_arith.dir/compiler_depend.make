# Empty compiler generated dependencies file for bench_table2_lmbench_arith.
# This may be replaced when dependencies are built.
