file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_lmbench_arith.dir/bench_table2_lmbench_arith.cc.o"
  "CMakeFiles/bench_table2_lmbench_arith.dir/bench_table2_lmbench_arith.cc.o.d"
  "bench_table2_lmbench_arith"
  "bench_table2_lmbench_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lmbench_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
