file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_migrate_bw.dir/bench_ablation_migrate_bw.cc.o"
  "CMakeFiles/bench_ablation_migrate_bw.dir/bench_ablation_migrate_bw.cc.o.d"
  "bench_ablation_migrate_bw"
  "bench_ablation_migrate_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_migrate_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
