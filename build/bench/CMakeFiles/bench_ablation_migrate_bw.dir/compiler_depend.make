# Empty compiler generated dependencies file for bench_ablation_migrate_bw.
# This may be replaced when dependencies are built.
