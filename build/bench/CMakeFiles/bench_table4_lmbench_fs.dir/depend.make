# Empty dependencies file for bench_table4_lmbench_fs.
# This may be replaced when dependencies are built.
