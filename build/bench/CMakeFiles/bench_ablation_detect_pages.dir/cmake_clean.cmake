file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_detect_pages.dir/bench_ablation_detect_pages.cc.o"
  "CMakeFiles/bench_ablation_detect_pages.dir/bench_ablation_detect_pages.cc.o.d"
  "bench_ablation_detect_pages"
  "bench_ablation_detect_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detect_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
