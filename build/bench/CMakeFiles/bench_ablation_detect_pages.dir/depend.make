# Empty dependencies file for bench_ablation_detect_pages.
# This may be replaced when dependencies are built.
