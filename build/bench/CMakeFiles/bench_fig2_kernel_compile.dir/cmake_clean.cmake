file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_kernel_compile.dir/bench_fig2_kernel_compile.cc.o"
  "CMakeFiles/bench_fig2_kernel_compile.dir/bench_fig2_kernel_compile.cc.o.d"
  "bench_fig2_kernel_compile"
  "bench_fig2_kernel_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_kernel_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
