# Empty dependencies file for bench_fig2_kernel_compile.
# This may be replaced when dependencies are built.
