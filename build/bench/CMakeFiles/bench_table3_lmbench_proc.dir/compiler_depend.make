# Empty compiler generated dependencies file for bench_table3_lmbench_proc.
# This may be replaced when dependencies are built.
