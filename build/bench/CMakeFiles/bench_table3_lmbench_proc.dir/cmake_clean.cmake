file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lmbench_proc.dir/bench_table3_lmbench_proc.cc.o"
  "CMakeFiles/bench_table3_lmbench_proc.dir/bench_table3_lmbench_proc.cc.o.d"
  "bench_table3_lmbench_proc"
  "bench_table3_lmbench_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lmbench_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
