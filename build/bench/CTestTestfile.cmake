# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_run "/root/repo/build/bench/bench_table2_lmbench_arith")
set_tests_properties(bench_smoke_run PROPERTIES  FIXTURES_SETUP "bench_smoke_report" WORKING_DIRECTORY "/root/repo/build/bench" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_json "/root/repo/build/bench/json_check" "/root/repo/build/bench/BENCH_table2_lmbench_arith.json" "bench" "schema_version" "entries" "notes" "metrics")
set_tests_properties(bench_smoke_json PROPERTIES  FIXTURES_REQUIRED "bench_smoke_report" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
