
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/addr_space.cc" "src/mem/CMakeFiles/csk_mem.dir/addr_space.cc.o" "gcc" "src/mem/CMakeFiles/csk_mem.dir/addr_space.cc.o.d"
  "/root/repo/src/mem/ksm.cc" "src/mem/CMakeFiles/csk_mem.dir/ksm.cc.o" "gcc" "src/mem/CMakeFiles/csk_mem.dir/ksm.cc.o.d"
  "/root/repo/src/mem/phys_mem.cc" "src/mem/CMakeFiles/csk_mem.dir/phys_mem.cc.o" "gcc" "src/mem/CMakeFiles/csk_mem.dir/phys_mem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/csk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/csk_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
