file(REMOVE_RECURSE
  "CMakeFiles/csk_mem.dir/addr_space.cc.o"
  "CMakeFiles/csk_mem.dir/addr_space.cc.o.d"
  "CMakeFiles/csk_mem.dir/ksm.cc.o"
  "CMakeFiles/csk_mem.dir/ksm.cc.o.d"
  "CMakeFiles/csk_mem.dir/phys_mem.cc.o"
  "CMakeFiles/csk_mem.dir/phys_mem.cc.o.d"
  "libcsk_mem.a"
  "libcsk_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
