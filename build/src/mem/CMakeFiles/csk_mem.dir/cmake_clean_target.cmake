file(REMOVE_RECURSE
  "libcsk_mem.a"
)
