# Empty compiler generated dependencies file for csk_mem.
# This may be replaced when dependencies are built.
