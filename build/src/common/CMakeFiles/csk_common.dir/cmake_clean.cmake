file(REMOVE_RECURSE
  "CMakeFiles/csk_common.dir/hash.cc.o"
  "CMakeFiles/csk_common.dir/hash.cc.o.d"
  "CMakeFiles/csk_common.dir/logging.cc.o"
  "CMakeFiles/csk_common.dir/logging.cc.o.d"
  "CMakeFiles/csk_common.dir/rng.cc.o"
  "CMakeFiles/csk_common.dir/rng.cc.o.d"
  "CMakeFiles/csk_common.dir/stats.cc.o"
  "CMakeFiles/csk_common.dir/stats.cc.o.d"
  "CMakeFiles/csk_common.dir/status.cc.o"
  "CMakeFiles/csk_common.dir/status.cc.o.d"
  "CMakeFiles/csk_common.dir/time.cc.o"
  "CMakeFiles/csk_common.dir/time.cc.o.d"
  "libcsk_common.a"
  "libcsk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
