file(REMOVE_RECURSE
  "libcsk_common.a"
)
