# Empty dependencies file for csk_common.
# This may be replaced when dependencies are built.
