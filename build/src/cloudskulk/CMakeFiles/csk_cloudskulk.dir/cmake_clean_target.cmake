file(REMOVE_RECURSE
  "libcsk_cloudskulk.a"
)
