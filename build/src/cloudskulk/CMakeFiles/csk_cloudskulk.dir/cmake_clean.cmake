file(REMOVE_RECURSE
  "CMakeFiles/csk_cloudskulk.dir/installer.cc.o"
  "CMakeFiles/csk_cloudskulk.dir/installer.cc.o.d"
  "CMakeFiles/csk_cloudskulk.dir/recon.cc.o"
  "CMakeFiles/csk_cloudskulk.dir/recon.cc.o.d"
  "CMakeFiles/csk_cloudskulk.dir/ritm.cc.o"
  "CMakeFiles/csk_cloudskulk.dir/ritm.cc.o.d"
  "CMakeFiles/csk_cloudskulk.dir/services/active.cc.o"
  "CMakeFiles/csk_cloudskulk.dir/services/active.cc.o.d"
  "CMakeFiles/csk_cloudskulk.dir/services/passive.cc.o"
  "CMakeFiles/csk_cloudskulk.dir/services/passive.cc.o.d"
  "CMakeFiles/csk_cloudskulk.dir/services/sync_mirror.cc.o"
  "CMakeFiles/csk_cloudskulk.dir/services/sync_mirror.cc.o.d"
  "libcsk_cloudskulk.a"
  "libcsk_cloudskulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_cloudskulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
