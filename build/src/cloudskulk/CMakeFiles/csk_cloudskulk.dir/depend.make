# Empty dependencies file for csk_cloudskulk.
# This may be replaced when dependencies are built.
