file(REMOVE_RECURSE
  "libcsk_cve.a"
)
