file(REMOVE_RECURSE
  "CMakeFiles/csk_cve.dir/vm_escape_cves.cc.o"
  "CMakeFiles/csk_cve.dir/vm_escape_cves.cc.o.d"
  "libcsk_cve.a"
  "libcsk_cve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_cve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
