# Empty compiler generated dependencies file for csk_cve.
# This may be replaced when dependencies are built.
