file(REMOVE_RECURSE
  "libcsk_vmm.a"
)
