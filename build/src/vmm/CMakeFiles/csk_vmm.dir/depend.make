# Empty dependencies file for csk_vmm.
# This may be replaced when dependencies are built.
