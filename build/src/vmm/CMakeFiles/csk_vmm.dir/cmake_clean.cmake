file(REMOVE_RECURSE
  "CMakeFiles/csk_vmm.dir/host.cc.o"
  "CMakeFiles/csk_vmm.dir/host.cc.o.d"
  "CMakeFiles/csk_vmm.dir/machine_config.cc.o"
  "CMakeFiles/csk_vmm.dir/machine_config.cc.o.d"
  "CMakeFiles/csk_vmm.dir/migration.cc.o"
  "CMakeFiles/csk_vmm.dir/migration.cc.o.d"
  "CMakeFiles/csk_vmm.dir/monitor.cc.o"
  "CMakeFiles/csk_vmm.dir/monitor.cc.o.d"
  "CMakeFiles/csk_vmm.dir/vm.cc.o"
  "CMakeFiles/csk_vmm.dir/vm.cc.o.d"
  "libcsk_vmm.a"
  "libcsk_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
