file(REMOVE_RECURSE
  "CMakeFiles/csk_guestos.dir/fs.cc.o"
  "CMakeFiles/csk_guestos.dir/fs.cc.o.d"
  "CMakeFiles/csk_guestos.dir/os.cc.o"
  "CMakeFiles/csk_guestos.dir/os.cc.o.d"
  "libcsk_guestos.a"
  "libcsk_guestos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
