# Empty compiler generated dependencies file for csk_guestos.
# This may be replaced when dependencies are built.
