file(REMOVE_RECURSE
  "libcsk_guestos.a"
)
