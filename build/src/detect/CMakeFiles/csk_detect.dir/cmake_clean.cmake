file(REMOVE_RECURSE
  "CMakeFiles/csk_detect.dir/dedup_detector.cc.o"
  "CMakeFiles/csk_detect.dir/dedup_detector.cc.o.d"
  "CMakeFiles/csk_detect.dir/l2_probe.cc.o"
  "CMakeFiles/csk_detect.dir/l2_probe.cc.o.d"
  "CMakeFiles/csk_detect.dir/vmcs_scan.cc.o"
  "CMakeFiles/csk_detect.dir/vmcs_scan.cc.o.d"
  "CMakeFiles/csk_detect.dir/vmi_fingerprint.cc.o"
  "CMakeFiles/csk_detect.dir/vmi_fingerprint.cc.o.d"
  "libcsk_detect.a"
  "libcsk_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
