file(REMOVE_RECURSE
  "libcsk_detect.a"
)
