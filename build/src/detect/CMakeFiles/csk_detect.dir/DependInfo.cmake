
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/dedup_detector.cc" "src/detect/CMakeFiles/csk_detect.dir/dedup_detector.cc.o" "gcc" "src/detect/CMakeFiles/csk_detect.dir/dedup_detector.cc.o.d"
  "/root/repo/src/detect/l2_probe.cc" "src/detect/CMakeFiles/csk_detect.dir/l2_probe.cc.o" "gcc" "src/detect/CMakeFiles/csk_detect.dir/l2_probe.cc.o.d"
  "/root/repo/src/detect/vmcs_scan.cc" "src/detect/CMakeFiles/csk_detect.dir/vmcs_scan.cc.o" "gcc" "src/detect/CMakeFiles/csk_detect.dir/vmcs_scan.cc.o.d"
  "/root/repo/src/detect/vmi_fingerprint.cc" "src/detect/CMakeFiles/csk_detect.dir/vmi_fingerprint.cc.o" "gcc" "src/detect/CMakeFiles/csk_detect.dir/vmi_fingerprint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vmm/CMakeFiles/csk_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/csk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/csk_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/csk_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/csk_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/csk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/csk_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/csk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
