# Empty compiler generated dependencies file for csk_detect.
# This may be replaced when dependencies are built.
