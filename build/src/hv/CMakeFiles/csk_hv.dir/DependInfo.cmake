
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/hypervisor.cc" "src/hv/CMakeFiles/csk_hv.dir/hypervisor.cc.o" "gcc" "src/hv/CMakeFiles/csk_hv.dir/hypervisor.cc.o.d"
  "/root/repo/src/hv/timing_model.cc" "src/hv/CMakeFiles/csk_hv.dir/timing_model.cc.o" "gcc" "src/hv/CMakeFiles/csk_hv.dir/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/csk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/csk_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
