file(REMOVE_RECURSE
  "CMakeFiles/csk_hv.dir/hypervisor.cc.o"
  "CMakeFiles/csk_hv.dir/hypervisor.cc.o.d"
  "CMakeFiles/csk_hv.dir/timing_model.cc.o"
  "CMakeFiles/csk_hv.dir/timing_model.cc.o.d"
  "libcsk_hv.a"
  "libcsk_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
