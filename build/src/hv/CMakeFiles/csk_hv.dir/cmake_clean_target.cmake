file(REMOVE_RECURSE
  "libcsk_hv.a"
)
