# Empty compiler generated dependencies file for csk_hv.
# This may be replaced when dependencies are built.
