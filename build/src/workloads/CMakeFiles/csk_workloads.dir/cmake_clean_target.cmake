file(REMOVE_RECURSE
  "libcsk_workloads.a"
)
