# Empty compiler generated dependencies file for csk_workloads.
# This may be replaced when dependencies are built.
