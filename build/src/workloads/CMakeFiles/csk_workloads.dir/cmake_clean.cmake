file(REMOVE_RECURSE
  "CMakeFiles/csk_workloads.dir/filebench.cc.o"
  "CMakeFiles/csk_workloads.dir/filebench.cc.o.d"
  "CMakeFiles/csk_workloads.dir/kernel_compile.cc.o"
  "CMakeFiles/csk_workloads.dir/kernel_compile.cc.o.d"
  "CMakeFiles/csk_workloads.dir/lmbench.cc.o"
  "CMakeFiles/csk_workloads.dir/lmbench.cc.o.d"
  "CMakeFiles/csk_workloads.dir/netperf.cc.o"
  "CMakeFiles/csk_workloads.dir/netperf.cc.o.d"
  "libcsk_workloads.a"
  "libcsk_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
