file(REMOVE_RECURSE
  "libcsk_driver.a"
)
