file(REMOVE_RECURSE
  "CMakeFiles/csk_driver.dir/vm_runner.cc.o"
  "CMakeFiles/csk_driver.dir/vm_runner.cc.o.d"
  "libcsk_driver.a"
  "libcsk_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
