# Empty dependencies file for csk_driver.
# This may be replaced when dependencies are built.
