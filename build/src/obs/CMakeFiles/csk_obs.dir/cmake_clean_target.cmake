file(REMOVE_RECURSE
  "libcsk_obs.a"
)
