# Empty dependencies file for csk_obs.
# This may be replaced when dependencies are built.
