file(REMOVE_RECURSE
  "CMakeFiles/csk_obs.dir/json.cc.o"
  "CMakeFiles/csk_obs.dir/json.cc.o.d"
  "CMakeFiles/csk_obs.dir/metrics.cc.o"
  "CMakeFiles/csk_obs.dir/metrics.cc.o.d"
  "CMakeFiles/csk_obs.dir/trace.cc.o"
  "CMakeFiles/csk_obs.dir/trace.cc.o.d"
  "libcsk_obs.a"
  "libcsk_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
