file(REMOVE_RECURSE
  "libcsk_sim.a"
)
