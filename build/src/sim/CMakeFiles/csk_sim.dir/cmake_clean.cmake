file(REMOVE_RECURSE
  "CMakeFiles/csk_sim.dir/simulator.cc.o"
  "CMakeFiles/csk_sim.dir/simulator.cc.o.d"
  "libcsk_sim.a"
  "libcsk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
