# Empty compiler generated dependencies file for csk_sim.
# This may be replaced when dependencies are built.
