# Empty dependencies file for csk_net.
# This may be replaced when dependencies are built.
