file(REMOVE_RECURSE
  "libcsk_net.a"
)
