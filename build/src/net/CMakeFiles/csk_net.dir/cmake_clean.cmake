file(REMOVE_RECURSE
  "CMakeFiles/csk_net.dir/network.cc.o"
  "CMakeFiles/csk_net.dir/network.cc.o.d"
  "CMakeFiles/csk_net.dir/port_forward.cc.o"
  "CMakeFiles/csk_net.dir/port_forward.cc.o.d"
  "libcsk_net.a"
  "libcsk_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csk_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
