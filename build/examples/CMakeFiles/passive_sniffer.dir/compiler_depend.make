# Empty compiler generated dependencies file for passive_sniffer.
# This may be replaced when dependencies are built.
