file(REMOVE_RECURSE
  "CMakeFiles/passive_sniffer.dir/passive_sniffer.cc.o"
  "CMakeFiles/passive_sniffer.dir/passive_sniffer.cc.o.d"
  "passive_sniffer"
  "passive_sniffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_sniffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
