# Empty dependencies file for active_tamper.
# This may be replaced when dependencies are built.
