file(REMOVE_RECURSE
  "CMakeFiles/active_tamper.dir/active_tamper.cc.o"
  "CMakeFiles/active_tamper.dir/active_tamper.cc.o.d"
  "active_tamper"
  "active_tamper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_tamper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
