# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_migration_test[1]_include.cmake")
include("/root/repo/build/tests/cloudskulk_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/guestos_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_config_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_vm_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/cve_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
