file(REMOVE_RECURSE
  "CMakeFiles/guestos_test.dir/guestos_test.cc.o"
  "CMakeFiles/guestos_test.dir/guestos_test.cc.o.d"
  "guestos_test"
  "guestos_test.pdb"
  "guestos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guestos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
