
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vmm_migration_test.cc" "tests/CMakeFiles/vmm_migration_test.dir/vmm_migration_test.cc.o" "gcc" "tests/CMakeFiles/vmm_migration_test.dir/vmm_migration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/csk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/csk_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/csk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/csk_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/csk_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/csk_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/csk_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/csk_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudskulk/CMakeFiles/csk_cloudskulk.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/csk_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/cve/CMakeFiles/csk_cve.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/csk_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
