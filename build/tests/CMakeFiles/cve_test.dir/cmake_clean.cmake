file(REMOVE_RECURSE
  "CMakeFiles/cve_test.dir/cve_test.cc.o"
  "CMakeFiles/cve_test.dir/cve_test.cc.o.d"
  "cve_test"
  "cve_test.pdb"
  "cve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
