# Empty compiler generated dependencies file for cve_test.
# This may be replaced when dependencies are built.
