file(REMOVE_RECURSE
  "CMakeFiles/vmm_vm_test.dir/vmm_vm_test.cc.o"
  "CMakeFiles/vmm_vm_test.dir/vmm_vm_test.cc.o.d"
  "vmm_vm_test"
  "vmm_vm_test.pdb"
  "vmm_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
