# Empty compiler generated dependencies file for cloudskulk_test.
# This may be replaced when dependencies are built.
