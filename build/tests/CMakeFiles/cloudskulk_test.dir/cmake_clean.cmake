file(REMOVE_RECURSE
  "CMakeFiles/cloudskulk_test.dir/cloudskulk_test.cc.o"
  "CMakeFiles/cloudskulk_test.dir/cloudskulk_test.cc.o.d"
  "cloudskulk_test"
  "cloudskulk_test.pdb"
  "cloudskulk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudskulk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
