# Empty dependencies file for vmm_config_test.
# This may be replaced when dependencies are built.
