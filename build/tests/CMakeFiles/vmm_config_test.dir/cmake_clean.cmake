file(REMOVE_RECURSE
  "CMakeFiles/vmm_config_test.dir/vmm_config_test.cc.o"
  "CMakeFiles/vmm_config_test.dir/vmm_config_test.cc.o.d"
  "vmm_config_test"
  "vmm_config_test.pdb"
  "vmm_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
