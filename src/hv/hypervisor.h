/// \file
/// The KVM-like hypervisor.
///
/// One Hypervisor instance runs at a layer and hosts guests at the next
/// layer: the host's KVM (at L0) runs L1 guests; a KVM instance inside a
/// guest (at L1 — the rootkit's hypervisor) runs L2 guests. The hypervisor
/// prices VM exits for its guests, keeps per-guest exit statistics, and
/// enforces the nesting rules (nested virtualization must be enabled for a
/// guest before a hypervisor can be started inside it — the kvm_intel
/// `nested=1` module parameter).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "hv/layer.h"
#include "hv/timing_model.h"
#include "hv/vmexit.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace csk::hv {

/// Per-guest control block (the slice of kvm_vcpu/kvm state we model).
struct GuestContext {
  VmId vm;
  std::string name;
  Layer layer;                 // layer the guest's code runs at
  bool nested_allowed = false; // may this guest host its own hypervisor?
  ExitStats exits;
};

class Hypervisor {
 public:
  /// `host_layer` is where this hypervisor itself executes.
  Hypervisor(sim::Simulator* simulator, const TimingModel* timing,
             Layer host_layer, std::string name);
  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  Layer host_layer() const { return host_layer_; }
  /// Layer at which this hypervisor's guests run.
  Layer guest_layer() const { return guest_layer_; }
  const std::string& name() const { return name_; }

  /// Registers a guest. `nested_allowed` mirrors `-cpu host,+vmx`.
  Status attach_guest(VmId vm, const std::string& vm_name,
                      bool nested_allowed);
  Status detach_guest(VmId vm);
  bool has_guest(VmId vm) const { return guests_.contains(vm); }
  std::vector<VmId> guests() const;

  const GuestContext& guest(VmId vm) const;

  /// Whether a hypervisor may be started inside `vm` (nested virt check).
  Result<Layer> nested_hypervisor_layer(VmId vm) const;

  /// Records `count` exits of `reason` for `vm` and returns the total
  /// handling cost at the guest's layer. The caller advances the simulated
  /// clock if the cost is on its critical path.
  SimDuration charge_exit(VmId vm, ExitReason reason, std::uint64_t count = 1);

  /// Prices an op batch for a guest, recording implied exits.
  SimDuration charge_ops(VmId vm, const OpCost& cost);

  /// Transient host memory pressure (fault injection): scales every priced
  /// exit/op cost by `multiplier` until reset to 1.0. Models the host
  /// thrashing under reclaim — guests at every layer of this hypervisor see
  /// their virtualization overhead inflate. Precondition: multiplier > 0.
  void set_memory_pressure(double multiplier);
  double memory_pressure() const { return pressure_; }

  const TimingModel& timing() const { return *timing_; }

 private:
  sim::Simulator* simulator_;
  const TimingModel* timing_;
  Layer host_layer_;
  Layer guest_layer_;
  std::string name_;
  double pressure_ = 1.0;  // cost multiplier; 1.0 = no pressure
  std::unordered_map<VmId, GuestContext> guests_;
  // Cached global-registry instruments (stable across reset()): per-layer
  // exit counts by reason, and the total priced handling cost.
  obs::Counter* exit_counters_[kNumExitReasons] = {};
  obs::Counter* exit_cost_ns_ = nullptr;
};

}  // namespace csk::hv
