#include "hv/timing_model.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace csk::hv {

OpCost& OpCost::operator+=(const OpCost& o) {
  cpu_ns += o.cpu_ns;
  // Combined memory intensity: cpu-weighted average, so adding arithmetic
  // to a memory-heavy batch dilutes the EPT penalty proportionally.
  const double total_cpu = cpu_ns;
  if (total_cpu > 0) {
    mem_intensity = (mem_intensity * (total_cpu - o.cpu_ns) +
                     o.mem_intensity * o.cpu_ns) /
                    total_cpu;
  }
  n_ctxsw += o.n_ctxsw;
  n_faults += o.n_faults;
  n_svc += o.n_svc;
  n_exits += o.n_exits;
  n_io_ops += o.n_io_ops;
  pages_dirtied += o.pages_dirtied;
  return *this;
}

OpCost OpCost::operator*(double k) const {
  OpCost out = *this;
  out.cpu_ns *= k;
  out.n_ctxsw *= k;
  out.n_faults *= k;
  out.n_svc *= k;
  out.n_exits *= k;
  out.n_io_ops *= k;
  out.pages_dirtied *= k;
  return out;  // mem_intensity is a ratio; scaling preserves it
}

TimingModel TimingModel::with_nested_exit_multiplier(double m) {
  Params p;  // start from calibrated L0/L1 rows
  const int l2 = layer_index(Layer::kL2);
  const int l1 = layer_index(Layer::kL1);
  const int l0 = layer_index(Layer::kL0);
  p.exit_ns[l2] = p.exit_ns[l1] * m;
  // Derivations matching the calibrated defaults at m = 19.3 (DESIGN.md §3):
  // a context switch triggers ~1.33 exits, a fault ~0.05, an IO op ~0.71.
  p.ctxsw_ns[l2] = p.ctxsw_ns[l0] + 1.33 * p.exit_ns[l2];
  p.fault_ns[l2] = p.fault_ns[l0] + 0.05 * p.exit_ns[l2];
  p.io_op_ns[l2] = p.io_op_ns[l0] + 0.7124 * p.exit_ns[l2];
  p.mem_overhead[l2] = 0.24 * (m / 19.3);
  return TimingModel(p);
}

void TimingModel::set_price_observer(PriceObserver observer) {
  CSK_CHECK_MSG(price_observer_ == nullptr || observer == nullptr,
                "a price observer is already installed");
  price_observer_ = std::move(observer);
}

SimDuration TimingModel::price(const OpCost& cost, Layer layer) const {
  const int i = layer_index(layer);
  const double cpu_mult =
      params_.cpu_factor[i] +
      params_.mem_overhead[i] * std::clamp(cost.mem_intensity, 0.0, 1.0);
  double ns = cost.cpu_ns * cpu_mult;
  ns += cost.n_svc * params_.syscall_ns[i];
  ns += cost.n_ctxsw * params_.ctxsw_ns[i];
  ns += cost.n_faults * params_.fault_ns[i];
  ns += cost.n_exits * params_.exit_ns[i];
  ns += cost.n_io_ops * params_.io_op_ns[i];
  const SimDuration priced(static_cast<std::int64_t>(ns + 0.5));
  if (price_observer_ != nullptr && !in_price_observer_) {
    in_price_observer_ = true;
    price_observer_(cost, layer, priced);
    in_price_observer_ = false;
  }
  return priced;
}

SimDuration TimingModel::price_noisy(const OpCost& cost, Layer layer, Rng& rng,
                                     double rel_stddev) const {
  const SimDuration base = price(cost, layer);
  const double f = std::max(0.05, rng.normal(1.0, rel_stddev));
  return base * f;
}

}  // namespace csk::hv
