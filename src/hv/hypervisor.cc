#include "hv/hypervisor.h"

namespace csk::hv {

Hypervisor::Hypervisor(sim::Simulator* simulator, const TimingModel* timing,
                       Layer host_layer, std::string name)
    : simulator_(simulator),
      timing_(timing),
      host_layer_(host_layer),
      guest_layer_(guest_layer_of(host_layer)),
      name_(std::move(name)) {
  CSK_CHECK(simulator != nullptr);
  CSK_CHECK(timing != nullptr);
  const std::string layer = layer_name(guest_layer_);
  for (std::size_t i = 0; i < kNumExitReasons; ++i) {
    exit_counters_[i] = &obs::metrics().counter(
        "hv.exits",
        {{"layer", layer},
         {"reason", exit_reason_name(static_cast<ExitReason>(i))}});
  }
  exit_cost_ns_ = &obs::metrics().counter("hv.exit_cost_ns", {{"layer", layer}});
}

Status Hypervisor::attach_guest(VmId vm, const std::string& vm_name,
                                bool nested_allowed) {
  if (guests_.contains(vm)) {
    return already_exists("guest already attached: " + vm_name);
  }
  if (guest_layer_ == Layer::kL2 && nested_allowed) {
    // Three-deep nesting exists in research prototypes but is outside this
    // model (and outside the paper).
    return unimplemented("nested virtualization below L2 is not modeled");
  }
  guests_.emplace(vm, GuestContext{vm, vm_name, guest_layer_, nested_allowed, {}});
  return Status::ok();
}

Status Hypervisor::detach_guest(VmId vm) {
  if (guests_.erase(vm) == 0) return not_found("no such guest");
  return Status::ok();
}

std::vector<VmId> Hypervisor::guests() const {
  std::vector<VmId> out;
  out.reserve(guests_.size());
  for (const auto& [id, ctx] : guests_) out.push_back(id);
  return out;
}

const GuestContext& Hypervisor::guest(VmId vm) const {
  auto it = guests_.find(vm);
  CSK_CHECK_MSG(it != guests_.end(), "unknown guest vm");
  return it->second;
}

Result<Layer> Hypervisor::nested_hypervisor_layer(VmId vm) const {
  auto it = guests_.find(vm);
  if (it == guests_.end()) return not_found("unknown guest vm");
  if (!it->second.nested_allowed) {
    return failed_precondition(
        "nested virtualization disabled for guest " + it->second.name +
        " (launch with -cpu host,+vmx / kvm_intel nested=1)");
  }
  if (it->second.layer == Layer::kL2) {
    return failed_precondition("guest is already at L2; cannot nest deeper");
  }
  return it->second.layer;  // a hypervisor inside the guest runs at its layer
}

void Hypervisor::set_memory_pressure(double multiplier) {
  CSK_CHECK(multiplier > 0);
  pressure_ = multiplier;
  obs::metrics()
      .gauge("hv.memory_pressure", {{"hv", name_}})
      .set(multiplier);
}

SimDuration Hypervisor::charge_exit(VmId vm, ExitReason reason,
                                    std::uint64_t count) {
  auto it = guests_.find(vm);
  CSK_CHECK_MSG(it != guests_.end(), "charge_exit for unknown guest");
  it->second.exits.record(reason, count);
  exit_counters_[static_cast<std::size_t>(reason)]->add(count);
  OpCost c;
  c.n_exits = static_cast<double>(count);
  SimDuration cost = timing_->price(c, it->second.layer);
  if (pressure_ != 1.0) cost = cost * pressure_;
  exit_cost_ns_->add(static_cast<std::uint64_t>(cost.ns()));
  return cost;
}

SimDuration Hypervisor::charge_ops(VmId vm, const OpCost& cost) {
  auto it = guests_.find(vm);
  CSK_CHECK_MSG(it != guests_.end(), "charge_ops for unknown guest");
  // Account implied exits for statistics: faults surface as EPT violations,
  // IO ops as IO exits (only when virtualized at all).
  const auto faults = static_cast<std::uint64_t>(cost.n_faults);
  const auto io_ops = static_cast<std::uint64_t>(cost.n_io_ops);
  const auto ctxsw = static_cast<std::uint64_t>(cost.n_ctxsw);
  it->second.exits.record(ExitReason::kEptViolation, faults);
  it->second.exits.record(ExitReason::kIo, io_ops);
  it->second.exits.record(ExitReason::kExternalInterrupt, ctxsw);
  exit_counters_[static_cast<std::size_t>(ExitReason::kEptViolation)]->add(faults);
  exit_counters_[static_cast<std::size_t>(ExitReason::kIo)]->add(io_ops);
  exit_counters_[static_cast<std::size_t>(ExitReason::kExternalInterrupt)]->add(ctxsw);
  SimDuration priced = timing_->price(cost, it->second.layer);
  if (pressure_ != 1.0) priced = priced * pressure_;
  exit_cost_ns_->add(static_cast<std::uint64_t>(priced.ns()));
  return priced;
}

}  // namespace csk::hv
