/// \file
/// The calibrated per-layer cost model.
///
/// Every performance result in the paper (Figs 2-4, Tables II-IV) is, at
/// bottom, a statement about how much more OS-level primitives cost as
/// virtualization layers are added: syscalls barely change, context switches
/// and page faults pay VM exits, and at L2 each exit is *multiplied* because
/// the L1 hypervisor's exit handler itself runs in a guest and its privileged
/// instructions trap to L0 (the Turtles effect). This file encodes those
/// primitives once; workloads express themselves as OpCost vectors and the
/// model prices them per layer, so the paper's L0/L1/L2 shapes emerge from
/// mechanism rather than being tabulated.
///
/// Calibration targets and derivations are documented in DESIGN.md §3 and
/// verified by tests/hv/timing_model_test.cc against Tables II/III.
#pragma once

#include <array>
#include <functional>

#include "common/rng.h"
#include "common/time.h"
#include "hv/layer.h"

namespace csk::hv {

/// The abstract cost of one operation (or a batch), independent of layer.
struct OpCost {
  /// Pure computation, measured in ns at L0 speed.
  double cpu_ns = 0;
  /// 0..1 weight of memory-access intensity: nested EPT-on-EPT walks raise
  /// the effective CPI of memory-heavy code (kernel compile) while leaving
  /// register arithmetic (lmbench arith) untouched.
  double mem_intensity = 0;
  double n_ctxsw = 0;    // context switches / wakeups
  double n_faults = 0;   // page faults (EPT violations when virtualized)
  double n_svc = 0;      // syscall entries
  double n_exits = 0;    // explicit device/hypercall VM exits (0 cost at L0)
  double n_io_ops = 0;   // block-device operations (virtio request cycle)
  /// Guest pages this op dirties (drives migration dirty logging).
  double pages_dirtied = 0;

  OpCost& operator+=(const OpCost& o);
  OpCost operator*(double k) const;
};

class TimingModel {
 public:
  struct Params {
    // Index by layer_index(layer).
    std::array<double, kNumLayers> cpu_factor = {1.0, 1.004, 1.032};
    std::array<double, kNumLayers> mem_overhead = {0.0, 0.015, 0.24};
    std::array<double, kNumLayers> syscall_ns = {50, 70, 73};
    std::array<double, kNumLayers> ctxsw_ns = {1200, 2800, 32000};
    std::array<double, kNumLayers> fault_ns = {300, 290, 1458};
    std::array<double, kNumLayers> exit_ns = {0, 1200, 23160};
    std::array<double, kNumLayers> io_op_ns = {1500, 3900, 18000};
  };

  /// Defaults reproduce the paper's testbed shape (i7-4790, QEMU 2.9/KVM).
  TimingModel() : params_(Params{}) {}
  explicit TimingModel(Params params) : params_(params) {}

  /// Rebuilds the L2 row from the L0/L1 rows and a nested-exit cost
  /// multiplier m (an L2 exit costs m times an L1 exit, because the L1
  /// handler's privileged instructions each trap to L0). m = 19.3 yields
  /// the calibrated defaults; the ablation bench sweeps m.
  static TimingModel with_nested_exit_multiplier(double m);

  /// Prices one op (or op batch) when executed at `layer`.
  SimDuration price(const OpCost& cost, Layer layer) const;

  /// As price(), with multiplicative Gaussian run-to-run noise.
  SimDuration price_noisy(const OpCost& cost, Layer layer, Rng& rng,
                          double rel_stddev) const;

  /// Sees every (cost, layer, priced duration) the model resolves. This is
  /// the L1 hypervisor's vantage point: an exit-heavy op priced at the
  /// nested layer is literally a burst of traps through L1, so an adaptive
  /// attacker (src/attacker) keys probe-triggered TSC scaling off it —
  /// the dynamic replacement for a statically drawn scaling decision. One
  /// observer at a time; null (the default, and the state every pre-existing
  /// experiment runs in) prices with zero extra work. The observer may call
  /// price() itself (e.g. to compute a deflation target); such nested calls
  /// are not re-observed.
  using PriceObserver =
      std::function<void(const OpCost& cost, Layer layer, SimDuration priced)>;
  void set_price_observer(PriceObserver observer);
  void clear_price_observer() { price_observer_ = nullptr; }
  bool has_price_observer() const { return price_observer_ != nullptr; }

  const Params& params() const { return params_; }

  double syscall_ns(Layer l) const { return params_.syscall_ns[layer_index(l)]; }
  double ctxsw_ns(Layer l) const { return params_.ctxsw_ns[layer_index(l)]; }
  double fault_ns(Layer l) const { return params_.fault_ns[layer_index(l)]; }
  double exit_ns(Layer l) const { return params_.exit_ns[layer_index(l)]; }
  double io_op_ns(Layer l) const { return params_.io_op_ns[layer_index(l)]; }

 private:
  Params params_;
  PriceObserver price_observer_;
  /// Reentrancy latch: price() calls made by the observer itself are priced
  /// silently. Mutable because price() is const for every ordinary caller.
  mutable bool in_price_observer_ = false;
};

/// Execution environment a workload runs in: which layer, which cost model,
/// and environment toggles that change costs (the paper's ccache footnote).
struct ExecEnv {
  Layer layer = Layer::kL0;
  const TimingModel* timing = nullptr;
  /// Compiler cache available (the paper had it enabled on L0 only —
  /// footnote 1 — producing the 280 % L0->L1 kernel-compile gap).
  bool ccache_enabled = false;

  SimDuration price(const OpCost& cost) const {
    CSK_CHECK(timing != nullptr);
    return timing->price(cost, layer);
  }
};

}  // namespace csk::hv
