/// \file
/// Virtualization layers, following the Turtles-project notation the paper
/// adopts: L0 is the hypervisor on real hardware (or code running on bare
/// metal), L1 a guest of L0, L2 a guest of an L1 hypervisor (a nested VM).
#pragma once

#include <cstddef>

#include "common/status.h"

namespace csk::hv {

enum class Layer : int { kL0 = 0, kL1 = 1, kL2 = 2 };

inline constexpr std::size_t kNumLayers = 3;

constexpr const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kL0: return "L0";
    case Layer::kL1: return "L1";
    case Layer::kL2: return "L2";
  }
  return "?";
}

constexpr int layer_index(Layer layer) { return static_cast<int>(layer); }

/// The layer guests of a hypervisor running at `host` execute at.
inline Layer guest_layer_of(Layer host) {
  CSK_CHECK_MSG(host != Layer::kL2,
                "an L2 guest cannot host further guests in this model");
  return static_cast<Layer>(static_cast<int>(host) + 1);
}

}  // namespace csk::hv
