/// \file
/// VM-exit taxonomy.
///
/// The subset of Intel VT-x exit reasons the simulation distinguishes —
/// enough to account for where nested overhead comes from and to let tests
/// assert on exit mixes (e.g. migration dirty-log syncs are GET_DIRTY_LOG
/// ioctls; virtio kicks are IO exits).
#pragma once

#include <array>
#include <cstdint>

namespace csk::hv {

enum class ExitReason : int {
  kCpuid = 0,
  kIo,               // port/MMIO access (virtio kick, device emulation)
  kEptViolation,     // guest page fault needing host mapping work
  kHlt,              // idle / scheduling
  kExternalInterrupt,
  kMsrAccess,
  kVmlaunch,         // nested: L1 launching/resuming L2
  kDirtyLogSync,     // migration: harvesting the dirty bitmap
  kHypercall,
  kCount_,
};

inline constexpr std::size_t kNumExitReasons =
    static_cast<std::size_t>(ExitReason::kCount_);

constexpr const char* exit_reason_name(ExitReason r) {
  switch (r) {
    case ExitReason::kCpuid: return "CPUID";
    case ExitReason::kIo: return "IO";
    case ExitReason::kEptViolation: return "EPT_VIOLATION";
    case ExitReason::kHlt: return "HLT";
    case ExitReason::kExternalInterrupt: return "EXTERNAL_INTERRUPT";
    case ExitReason::kMsrAccess: return "MSR_ACCESS";
    case ExitReason::kVmlaunch: return "VMLAUNCH";
    case ExitReason::kDirtyLogSync: return "DIRTY_LOG_SYNC";
    case ExitReason::kHypercall: return "HYPERCALL";
    case ExitReason::kCount_: break;
  }
  return "?";
}

/// Per-VM exit counters.
struct ExitStats {
  std::array<std::uint64_t, kNumExitReasons> by_reason{};

  void record(ExitReason r, std::uint64_t n = 1) {
    by_reason[static_cast<std::size_t>(r)] += n;
  }
  std::uint64_t count(ExitReason r) const {
    return by_reason[static_cast<std::size_t>(r)];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto v : by_reason) t += v;
    return t;
  }
};

}  // namespace csk::hv
