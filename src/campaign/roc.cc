#include "campaign/roc.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace csk::campaign {

RocPoint roc_point_at(const std::vector<ScoredSample>& samples,
                      double threshold) {
  RocPoint p;
  p.threshold = threshold;
  for (const ScoredSample& s : samples) {
    if (!s.conclusive) continue;
    const bool called = s.score > threshold;
    if (s.infected) {
      called ? ++p.tp : ++p.fn;
    } else {
      called ? ++p.fp : ++p.tn;
    }
  }
  const std::uint64_t positives = p.tp + p.fn;
  const std::uint64_t negatives = p.fp + p.tn;
  const std::uint64_t called = p.tp + p.fp;
  if (positives > 0) p.tpr = static_cast<double>(p.tp) / positives;
  if (negatives > 0) p.fpr = static_cast<double>(p.fp) / negatives;
  if (called > 0) p.precision = static_cast<double>(p.tp) / called;
  return p;
}

RocCurve compute_roc(std::string detector,
                     const std::vector<ScoredSample>& samples,
                     std::vector<double> thresholds) {
  RocCurve curve;
  curve.detector = std::move(detector);
  for (const ScoredSample& s : samples) {
    if (!s.conclusive) {
      ++curve.inconclusive;
    } else if (s.infected) {
      ++curve.positives;
    } else {
      ++curve.negatives;
    }
  }

  if (thresholds.empty()) {
    // Canonical grid: every distinguishable operating point of this sample
    // set. Midpoints between adjacent distinct scores, plus one threshold
    // strictly below every score and one at the maximum (score > max calls
    // nothing, since the rule is strict).
    std::vector<double> scores;
    scores.reserve(samples.size());
    for (const ScoredSample& s : samples) {
      if (s.conclusive) scores.push_back(s.score);
    }
    std::sort(scores.begin(), scores.end());
    scores.erase(std::unique(scores.begin(), scores.end()), scores.end());
    if (scores.empty()) return curve;  // nothing conclusive: empty curve
    thresholds.push_back(scores.front() - 1.0);
    for (std::size_t i = 0; i + 1 < scores.size(); ++i) {
      thresholds.push_back((scores[i] + scores[i + 1]) / 2.0);
    }
    thresholds.push_back(scores.back());
  }

  // Equal thresholds are one operating point, not several: collapse them so
  // a tie-heavy sweep (every sample scoring the same) cannot pad the curve
  // with duplicate points. The derived grid above is strictly increasing
  // and the pre-existing explicit grids are distinct, so for those this is
  // a no-op.
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  curve.points.reserve(thresholds.size());
  for (double t : thresholds) {
    curve.points.push_back(roc_point_at(samples, t));
  }
  std::sort(curve.points.begin(), curve.points.end(),
            [](const RocPoint& a, const RocPoint& b) {
              if (a.fpr != b.fpr) return a.fpr < b.fpr;
              if (a.tpr != b.tpr) return a.tpr < b.tpr;
              return a.threshold > b.threshold;
            });
  curve.auc = roc_auc(curve.points);
  return curve;
}

double roc_auc(const std::vector<RocPoint>& points) {
  std::vector<std::pair<double, double>> xy;  // (fpr, tpr)
  xy.reserve(points.size() + 2);
  xy.emplace_back(0.0, 0.0);
  for (const RocPoint& p : points) xy.emplace_back(p.fpr, p.tpr);
  xy.emplace_back(1.0, 1.0);
  std::sort(xy.begin(), xy.end());
  // Coincident (fpr, tpr) points contribute zero-width trapezoids; drop
  // them so the integral is over the distinct curve. (Exactly AUC-neutral:
  // a dx = 0 segment adds exactly 0.0 — this guards the *intent* against a
  // future non-trapezoidal integrator, it cannot change current values.)
  xy.erase(std::unique(xy.begin(), xy.end()), xy.end());
  double auc = 0.0;
  for (std::size_t i = 1; i < xy.size(); ++i) {
    const double dx = xy[i].first - xy[i - 1].first;
    auc += dx * (xy[i].second + xy[i - 1].second) / 2.0;
  }
  return auc;
}

OperatingPoint calibrate(const RocCurve& curve, double max_fpr) {
  CSK_CHECK(!curve.points.empty());
  const RocPoint* best = nullptr;
  for (const RocPoint& p : curve.points) {
    if (p.fpr > max_fpr) continue;
    if (best == nullptr || p.tpr > best->tpr ||
        (p.tpr == best->tpr && p.threshold > best->threshold)) {
      best = &p;
    }
  }
  OperatingPoint op;
  op.met_fpr_budget = best != nullptr;
  if (best == nullptr) {
    // Nothing under budget (possible only with zero swept negatives-free
    // points): fall back to the least-false-alarm point.
    for (const RocPoint& p : curve.points) {
      if (best == nullptr || p.fpr < best->fpr ||
          (p.fpr == best->fpr && p.tpr > best->tpr)) {
        best = &p;
      }
    }
  }
  op.threshold = best->threshold;
  op.tpr = best->tpr;
  op.fpr = best->fpr;
  op.precision = best->precision;
  return op;
}

}  // namespace csk::campaign
