/// \file
/// ROC machinery for detector-threshold sweeps.
///
/// Pure functions over scored samples — no simulator, no detectors. A
/// campaign records one threshold-free score per (shard, detector), labels
/// it with the shard's ground truth, and this module turns the population
/// into a ROC curve (TPR/FPR/precision at each candidate threshold), a
/// trapezoidal AUC, and a calibrated operating point (max TPR subject to an
/// FPR budget). Keeping the math free-standing makes it unit-testable
/// without running a single VM.
///
/// Decision rule everywhere: a sample is *called infected* at threshold t
/// iff score > t. Samples marked inconclusive (a degraded probe — see
/// detect's INCONCLUSIVE verdicts) are excluded from the confusion counts
/// entirely: they are neither a detection nor a clean call, and the curve
/// reports how many were set aside.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace csk::campaign {

/// One (shard, detector) observation.
struct ScoredSample {
  /// The detector's threshold-free score (e.g. dedup t2/t0 ratio).
  double score = 0.0;
  /// Ground truth: was CloudSkulk actually installed in this shard?
  bool infected = false;
  /// false = the probe degraded (INCONCLUSIVE): excluded from counts.
  bool conclusive = true;
};

/// Confusion counts and rates at one threshold.
struct RocPoint {
  double threshold = 0.0;
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;
  double tpr = 0.0;        // tp / (tp + fn); 0 when no positives
  double fpr = 0.0;        // fp / (fp + tn); 0 when no negatives
  double precision = 0.0;  // tp / (tp + fp); 0 when nothing called
};

/// The threshold chosen by calibrate().
struct OperatingPoint {
  double threshold = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
  double precision = 0.0;
  /// false = no swept point met the FPR budget; the point with the
  /// smallest FPR was returned instead.
  bool met_fpr_budget = false;
};

struct RocCurve {
  std::string detector;
  /// One point per swept threshold, sorted by ascending FPR (ties by
  /// ascending TPR) — plot-ready.
  std::vector<RocPoint> points;
  /// Trapezoidal area under the curve, anchored at (0,0) and (1,1).
  double auc = 0.0;
  std::uint64_t positives = 0;     // conclusive infected samples
  std::uint64_t negatives = 0;     // conclusive clean samples
  std::uint64_t inconclusive = 0;  // set aside, counted in neither
};

/// Confusion counts over `samples` at one threshold (score > threshold
/// calls infected; inconclusive samples skipped).
RocPoint roc_point_at(const std::vector<ScoredSample>& samples,
                      double threshold);

/// Sweeps `thresholds` over `samples`. An empty `thresholds` derives the
/// canonical grid from the data: midpoints between adjacent distinct
/// conclusive scores, plus one threshold below the minimum (call
/// everything) and one above the maximum (call nothing) — the complete
/// set of distinguishable operating points.
RocCurve compute_roc(std::string detector,
                     const std::vector<ScoredSample>& samples,
                     std::vector<double> thresholds = {});

/// Trapezoidal AUC of `points` (any order), anchored at (0,0) and (1,1).
double roc_auc(const std::vector<RocPoint>& points);

/// Picks the operating point: among swept points with fpr <= max_fpr, the
/// one with the highest TPR (ties broken toward the larger threshold, i.e.
/// the fewest calls). When no point meets the budget, returns the point
/// with the smallest FPR and met_fpr_budget = false.
OperatingPoint calibrate(const RocCurve& curve, double max_fpr);

}  // namespace csk::campaign
