#include "campaign/campaign.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "cloudskulk/installer.h"
#include "common/logging.h"
#include "common/rng.h"
#include "detect/vmcs_scan.h"
#include "detect/vmi_fingerprint.h"
#include "fault/injector.h"
#include "guestos/costs.h"
#include "obs/metrics.h"
#include "vmm/host.h"

namespace csk::campaign {
namespace {

constexpr char kVictimName[] = "guest0";
/// Revision id an evasive attacker compiles into kvm-intel: any value the
/// scanner's database does not list.
constexpr std::uint32_t kEvasiveRevisionId = 0xEB5E0001;

vmm::World::HostConfig campaign_host_config(const CampaignScenarioConfig& sc,
                                            double ksm_scale) {
  vmm::World::HostConfig cfg;
  cfg.name = "host0";
  cfg.boot_touched_mib = sc.boot_touched_mib;
  // Aggressive ksmd so short merge waits are meaningful (test-fixture
  // tuning: the campaign runs many small worlds, not one paper-scale one).
  cfg.ksm.pages_per_scan = 4000;
  cfg.ksm.scan_interval = SimDuration::millis(10);
  if (ksm_scale != 1.0) {
    cfg.ksm.pages_per_scan = std::max<std::size_t>(
        1, static_cast<std::size_t>(4000 * ksm_scale + 0.5));
  }
  return cfg;
}

vmm::MachineConfig campaign_vm_config(std::uint64_t guest_mb) {
  vmm::MachineConfig cfg;
  cfg.name = kVictimName;
  cfg.memory_mb = guest_mb;
  cfg.vcpus = 1;
  cfg.drives.push_back({std::string(kVictimName) + ".qcow2", "qcow2", 20480});
  vmm::NetdevConfig nd;
  nd.hostfwd.push_back({2222, 22});
  cfg.netdevs.push_back(nd);
  cfg.monitor.telnet_port = 5555;
  return cfg;
}

/// One shard: build a world (clean or infected with seed-drawn evasions),
/// run all four detectors, record threshold-free scores. Self-contained per
/// the fleet contract — everything derives from ctx.seed.
fleet::ShardOutcome campaign_cell(const fleet::ShardContext& ctx,
                                  const CampaignConfig& cfg) {
  const CampaignScenarioConfig& sc = cfg.scenario;
  fleet::ShardOutcome out;
  Rng rng(derive_seed(ctx.seed, 0));

  // Ground truth and attacker behavior, all drawn up front so the draw
  // order is independent of which branches execute.
  const bool infected = rng.uniform01() < cfg.infected_fraction;
  const bool evade_revision = rng.chance(sc.evasive_revision_fraction);
  const bool careful_hiding = rng.chance(sc.careful_hiding_fraction);
  const bool tsc_scaling = rng.chance(sc.tsc_scaling_fraction);
  const bool stall = rng.chance(sc.probe_stall_fraction);
  CSK_CHECK(sc.file_pages_max >= sc.file_pages_min &&
            sc.file_pages_min > 0);
  const std::size_t file_pages =
      sc.file_pages_min +
      rng.uniform(sc.file_pages_max - sc.file_pages_min + 1);
  const double merge_wait_s =
      sc.merge_wait_min_s +
      (sc.merge_wait_max_s - sc.merge_wait_min_s) * rng.uniform01();
  const double stall_s = 2.0 + 3.0 * rng.uniform01();

  // Population-heterogeneity draws (kMixedGuests preset). Gated on the
  // non-default knobs AND drawn after everything above, so the default
  // scenario's draw sequence — and therefore every pre-existing report —
  // is byte-identical.
  std::uint64_t guest_mb = sc.guest_memory_mb;
  double ksm_scale = 1.0;
  if (sc.guest_memory_mb_max > sc.guest_memory_mb) {
    guest_mb = sc.guest_memory_mb +
               rng.uniform(sc.guest_memory_mb_max - sc.guest_memory_mb + 1);
  }
  if (sc.ksm_scan_jitter > 0.0) {
    ksm_scale = 1.0 + sc.ksm_scan_jitter * (2.0 * rng.uniform01() - 1.0);
  }

  vmm::World world(derive_seed(ctx.seed, 1));
  vmm::Host* host = world.make_host(campaign_host_config(sc, ksm_scale));
  vmm::VirtualMachine* guest =
      host->launch_vm(campaign_vm_config(guest_mb), sc.boot_touched_mib)
          .value();

  detect::DedupDetectorConfig dcfg;
  dcfg.file_pages = file_pages;
  dcfg.merge_wait = SimDuration::from_seconds(merge_wait_s);
  dcfg.probe_timeout = SimDuration::seconds(1);
  dcfg.rerandomize_contents = sc.rerandomize_file_a;
  detect::DedupDetector detector(host, dcfg);

  vmm::VirtualMachine* victim = guest;
  std::unique_ptr<cloudskulk::CloudSkulkInstaller> installer;
  std::unique_ptr<attacker::AttackerPolicy> policy;
  if (infected) {
    cloudskulk::InstallerOptions opts;
    opts.rootkit_boot_touched_mib = sc.boot_touched_mib;
    if (evade_revision) opts.vmcs_revision_id = kEvasiveRevisionId;
    installer =
        std::make_unique<cloudskulk::CloudSkulkInstaller>(host, opts);
    const cloudskulk::InstallReport install = installer->install();
    if (!install.succeeded) {
      out.status = unavailable("cloudskulk install failed: " + install.error);
      return out;
    }
    victim = installer->nested_vm();
    // The attacker takes position: kStatic applies exactly the seed-drawn
    // evasions the campaign always applied; reactive policies additionally
    // hook the observation plane. (The evasive VMCS revision id is an
    // install-time compile choice, not a runtime reaction — it stays here.)
    policy = attacker::make_policy(cfg.attacker);
    attacker::AttackerContext actx;
    actx.world = &world;
    actx.host = host;
    actx.rootkit_vm = installer->rootkit_vm();
    actx.victim_vm = victim;
    actx.file_name = dcfg.file_name;
    actx.careful_hiding = careful_hiding;
    actx.tsc_scaling = tsc_scaling;
    actx.seed = derive_seed(ctx.seed, 3);
    policy->arm(actx);
    detector.set_observation_sink(policy->sink());
  }

  // The vendor's web channel pushes File-A into the user's VM; an
  // impersonating L1 mirrors it to keep the facade up.
  if (Status st = detector.seed_guest(victim->os()); !st.is_ok()) {
    out.status = st;
    return out;
  }
  if (infected) {
    if (Status st = detector.seed_guest(installer->rootkit_vm()->os());
        !st.is_ok()) {
      out.status = st;
      return out;
    }
    // File-A is now resident in both cache copies — the earliest moment a
    // reactive policy can arm its page watch.
    policy->on_guest_seeded();
  }

  detect::GuestProbeConfig pcfg;
  pcfg.probe_timeout = SimDuration::seconds(1);
  detect::GuestTimingProbe probe(&world.timing(), pcfg);
  if (policy != nullptr) probe.set_observation_sink(policy->sink());

  std::unique_ptr<fault::Injector> injector;
  if (stall) {
    fault::FaultPlan plan;
    plan.seed = derive_seed(ctx.seed, 2);
    fault::ProbeStallSpec spec;
    spec.at = SimDuration::zero();
    spec.duration = SimDuration::from_seconds(stall_s);
    plan.probe_stalls.push_back(spec);
    injector = std::make_unique<fault::Injector>(&world, plan);
    injector->arm();
    detector.set_stall_probe(injector->stall_probe());
    probe.set_stall_probe(injector->stall_probe());
  }

  out.values["truth/infected"] = infected ? 1.0 : 0.0;

  auto dedup = detector.run(victim->os());
  if (!dedup.is_ok()) {
    out.status = dedup.status();
    return out;
  }
  const bool dedup_conclusive =
      dedup->verdict != detect::DedupVerdict::kInconclusive;
  out.values["dedup/conclusive"] = dedup_conclusive ? 1.0 : 0.0;
  out.values["dedup/score"] = dedup->t2_vs_t0;
  out.values["dedup/t1_vs_t0"] = dedup->t1_vs_t0;
  out.values["dedup/latency_s"] = dedup->protocol_time.seconds_f();

  const detect::GuestProbeReport preport = probe.run(*victim);
  const bool probe_conclusive =
      preport.verdict != detect::GuestProbeVerdict::kInconclusive;
  out.values["probe/conclusive"] = probe_conclusive ? 1.0 : 0.0;
  out.values["probe/score"] = preport.nested_score(pcfg.anomalies_required);
  out.values["probe/arith_ratio"] = preport.arith_ratio();

  // Host-side forensics need no guest cooperation, hence no stall hook.
  detect::VmcsScanDetector vmcs(host);
  out.values["vmcs/score"] =
      static_cast<double>(vmcs.scan().total_signature_pages());

  detect::VmBaseline baseline;
  baseline.vm_name = kVictimName;
  baseline.identity.hostname = kVictimName;
  baseline.expected_processes = {"init", "sshd"};
  detect::VmiFingerprintDetector vmi(host);
  out.values["vmi/score"] =
      static_cast<double>(vmi.check({baseline}).anomaly_count());

  // Gated on a non-default policy so kStatic shards publish exactly the
  // value set they always did (BENCH byte-identity).
  if (policy != nullptr &&
      policy->kind() != attacker::AttackerPolicyKind::kStatic) {
    const attacker::AttackerStats& as = policy->stats();
    out.values["attacker/observations"] =
        static_cast<double>(as.observations);
    out.values["attacker/pages_mirrored"] =
        static_cast<double>(as.pages_mirrored);
    out.values["attacker/pages_unshared"] =
        static_cast<double>(as.pages_unshared);
    out.values["attacker/facade_reseeds"] =
        static_cast<double>(as.facade_reseeds);
    out.values["attacker/watch_rescans"] =
        static_cast<double>(as.watch_rescans);
    out.values["attacker/tsc_adjustments"] =
        static_cast<double>(as.tsc_adjustments);
    out.values["attacker/victim_overhead_us"] =
        as.victim_overhead.micros_f();
  }

  if (injector) out.faults = injector->log();
  return out;
}

double shard_value(const fleet::ShardResult& shard, const std::string& key,
                   double fallback = 0.0) {
  const auto it = shard.outcome.values.find(key);
  return it == shard.outcome.values.end() ? fallback : it->second;
}

/// Minimal integer score strictly above `threshold` — maps a swept
/// continuous threshold back onto an integral-score detector's config
/// ("at least N pages/anomalies").
std::uint64_t min_count_above(double threshold) {
  if (threshold < 0) return 0;
  return static_cast<std::uint64_t>(std::floor(threshold)) + 1;
}

obs::JsonValue roc_point_json(const RocPoint& p) {
  obs::JsonValue v = obs::JsonValue::object();
  v.set("threshold", p.threshold)
      .set("tp", p.tp)
      .set("fp", p.fp)
      .set("tn", p.tn)
      .set("fn", p.fn)
      .set("tpr", p.tpr)
      .set("fpr", p.fpr)
      .set("precision", p.precision);
  return v;
}

obs::JsonValue evaluation_json(const DetectorEvaluation& eval) {
  obs::JsonValue points = obs::JsonValue::array();
  for (const RocPoint& p : eval.roc.points) points.push(roc_point_json(p));
  obs::JsonValue op = obs::JsonValue::object();
  op.set("threshold", eval.operating.threshold)
      .set("tpr", eval.operating.tpr)
      .set("fpr", eval.operating.fpr)
      .set("precision", eval.operating.precision)
      .set("met_fpr_budget", eval.operating.met_fpr_budget);
  obs::JsonValue v = obs::JsonValue::object();
  v.set("auc", eval.roc.auc)
      .set("positives", eval.roc.positives)
      .set("negatives", eval.roc.negatives)
      .set("inconclusive", eval.roc.inconclusive)
      .set("operating_point", std::move(op))
      .set("roc_points", std::move(points));
  return v;
}

obs::JsonValue analysis_json(const CampaignReport& report) {
  obs::JsonValue detectors = obs::JsonValue::object();
  for (const auto& [name, eval] : report.detectors) {
    detectors.set(name, evaluation_json(eval));
  }
  obs::JsonValue v = obs::JsonValue::object();
  v.set("infected_shards", report.infected_shards)
      .set("clean_shards", report.clean_shards)
      .set("inconclusive_runs", report.inconclusive_runs)
      .set("mean_detection_latency_s", report.mean_detection_latency_s)
      .set("detectors", std::move(detectors))
      .set("ensemble", evaluation_json(report.ensemble))
      .set("calibrated_thresholds", report.calibrated.to_json());
  return v;
}

}  // namespace

CampaignScenarioConfig scenario_preset(CampaignPreset preset) {
  CampaignScenarioConfig sc;
  switch (preset) {
    case CampaignPreset::kUniformSmall:
      // The defaults ARE the preset: identical guests, lockstep ksmd.
      return sc;
    case CampaignPreset::kMixedGuests:
      sc.guest_memory_mb = 48;
      sc.guest_memory_mb_max = 96;
      sc.ksm_scan_jitter = 0.3;
      return sc;
  }
  CSK_CHECK_MSG(false, "unknown campaign preset");
  return sc;
}

void CalibratedThresholds::apply_to(detect::DedupDetectorConfig* config) const {
  CSK_CHECK(config != nullptr);
  config->merged_ratio_threshold = dedup_merged_ratio;
}

void CalibratedThresholds::apply_to(detect::GuestProbeConfig* config) const {
  CSK_CHECK(config != nullptr);
  config->anomaly_ratio = probe_anomaly_ratio;
}

obs::JsonValue CalibratedThresholds::to_json() const {
  obs::JsonValue v = obs::JsonValue::object();
  v.set("dedup_merged_ratio", dedup_merged_ratio)
      .set("probe_anomaly_ratio", probe_anomaly_ratio)
      .set("vmcs_min_signature_pages", vmcs_min_signature_pages)
      .set("vmi_min_anomalies", vmi_min_anomalies)
      .set("ensemble_min_votes", ensemble_min_votes);
  return v;
}

std::string CampaignReport::deterministic_json() const {
  // The fleet's canonical bytes embedded as a string member, plus the
  // analysis (a pure function of those shards). No wall-clock anywhere.
  obs::JsonValue root = obs::JsonValue::object();
  root.set("fleet", fleet.deterministic_json());
  root.set("analysis", analysis_json(*this));
  return root.dump(2);
}

obs::JsonValue CampaignReport::to_json() const {
  obs::JsonValue root = obs::JsonValue::object();
  root.set("analysis", analysis_json(*this));
  root.set("fleet", fleet.to_json());
  return root;
}

DetectionCampaign::DetectionCampaign(CampaignConfig config)
    : config_(std::move(config)), runner_([this] {
        fleet::FleetConfig fc;
        fc.workers = config_.workers;
        fc.root_seed = config_.root_seed;
        fc.audit = config_.audit;
        fc.checkpoint = config_.checkpoint;
        return fc;
      }()) {
  CSK_CHECK(config_.population > 0);
  // Each shard captures the config by value: scenario bodies must stay
  // self-contained (and valid even if the campaign object moves).
  const CampaignConfig cfg = config_;
  for (std::size_t i = 0; i < cfg.population; ++i) {
    runner_.add("campaign-" + std::to_string(i),
                [cfg](const fleet::ShardContext& ctx) {
                  return campaign_cell(ctx, cfg);
                });
  }
}

CampaignReport DetectionCampaign::run() { return analyze(runner_.run()); }

Result<CampaignReport> DetectionCampaign::resume_from() {
  CSK_ASSIGN_OR_RETURN(fleet::FleetReport fleet_report, runner_.resume_from());
  return analyze(std::move(fleet_report));
}

Result<CampaignReport> DetectionCampaign::resume_from(
    const std::string& checkpoint_file) {
  CSK_ASSIGN_OR_RETURN(fleet::FleetReport fleet_report,
                       runner_.resume_from(checkpoint_file));
  return analyze(std::move(fleet_report));
}

CampaignReport DetectionCampaign::analyze(
    fleet::FleetReport fleet_report) const {
  CampaignReport report;
  report.fleet = std::move(fleet_report);

  std::vector<ScoredSample> dedup, probe, vmcs, vmi;
  double latency_sum = 0.0;
  std::size_t latency_n = 0;
  for (const fleet::ShardResult& shard : report.fleet.shards) {
    if (!shard.ok()) continue;
    const bool infected = shard_value(shard, "truth/infected") > 0.5;
    infected ? ++report.infected_shards : ++report.clean_shards;
    obs::metrics()
        .counter("campaign.shards",
                 {{"truth", infected ? "infected" : "clean"}})
        .add();

    const bool dedup_ok = shard_value(shard, "dedup/conclusive", 1.0) > 0.5;
    dedup.push_back({shard_value(shard, "dedup/score"), infected, dedup_ok});
    if (dedup_ok) {
      latency_sum += shard_value(shard, "dedup/latency_s");
      ++latency_n;
    } else {
      ++report.inconclusive_runs;
      obs::metrics()
          .counter("campaign.inconclusive", {{"detector", "dedup"}})
          .add();
    }

    const bool probe_ok = shard_value(shard, "probe/conclusive", 1.0) > 0.5;
    probe.push_back({shard_value(shard, "probe/score"), infected, probe_ok});
    if (!probe_ok) {
      ++report.inconclusive_runs;
      obs::metrics()
          .counter("campaign.inconclusive", {{"detector", "probe"}})
          .add();
    }

    vmcs.push_back({shard_value(shard, "vmcs/score"), infected, true});
    vmi.push_back({shard_value(shard, "vmi/score"), infected, true});
  }
  if (latency_n > 0) {
    report.mean_detection_latency_s = latency_sum / latency_n;
  }

  const double budget = config_.target_fpr;
  const auto evaluate = [budget](const std::string& name,
                                 const std::vector<ScoredSample>& samples,
                                 std::vector<double> thresholds = {}) {
    DetectorEvaluation eval;
    eval.roc = compute_roc(name, samples, std::move(thresholds));
    if (!eval.roc.points.empty()) {
      eval.operating = calibrate(eval.roc, budget);
    }
    return eval;
  };
  report.detectors["dedup"] = evaluate("dedup", dedup);
  report.detectors["probe"] = evaluate("probe", probe);
  report.detectors["vmcs"] = evaluate("vmcs", vmcs);
  report.detectors["vmi"] = evaluate("vmi", vmi);

  CalibratedThresholds cal;
  cal.dedup_merged_ratio = report.detectors["dedup"].operating.threshold;
  cal.probe_anomaly_ratio = report.detectors["probe"].operating.threshold;
  cal.vmcs_min_signature_pages = std::max<std::uint64_t>(
      1, min_count_above(report.detectors["vmcs"].operating.threshold));
  cal.vmi_min_anomalies = std::max<std::uint64_t>(
      1, min_count_above(report.detectors["vmi"].operating.threshold));

  // Voting ensemble at the calibrated per-detector thresholds. A degraded
  // (inconclusive) detector simply does not vote — it never votes "clean".
  std::vector<ScoredSample> votes;
  for (const fleet::ShardResult& shard : report.fleet.shards) {
    if (!shard.ok()) continue;
    const bool infected = shard_value(shard, "truth/infected") > 0.5;
    int v = 0;
    if (shard_value(shard, "dedup/conclusive", 1.0) > 0.5 &&
        shard_value(shard, "dedup/score") > cal.dedup_merged_ratio) {
      ++v;
    }
    if (shard_value(shard, "probe/conclusive", 1.0) > 0.5) {
      const double arith = shard_value(shard, "probe/arith_ratio", 1.0);
      // The live probe flags CLOCK_TAMPERING as suspicious too: a deflated
      // arithmetic cross-check is a vote even when exit ratios look tame.
      if (shard_value(shard, "probe/score") > cal.probe_anomaly_ratio ||
          (arith > 0.0 && arith < 0.8)) {
        ++v;
      }
    }
    if (shard_value(shard, "vmcs/score") >=
        static_cast<double>(cal.vmcs_min_signature_pages)) {
      ++v;
    }
    if (shard_value(shard, "vmi/score") >=
        static_cast<double>(cal.vmi_min_anomalies)) {
      ++v;
    }
    votes.push_back({static_cast<double>(v), infected, true});
  }
  report.ensemble = evaluate("ensemble", votes, {0.5, 1.5, 2.5, 3.5});
  cal.ensemble_min_votes = static_cast<int>(
      std::max<std::uint64_t>(1, min_count_above(
                                     report.ensemble.operating.threshold)));
  report.calibrated = cal;

  for (const auto& [name, eval] : report.detectors) {
    obs::metrics().gauge("campaign.auc", {{"detector", name}})
        .set(eval.roc.auc);
  }
  obs::metrics().gauge("campaign.auc", {{"detector", "ensemble"}})
      .set(report.ensemble.roc.auc);
  return report;
}

}  // namespace csk::campaign
