/// \file
/// csk::campaign — fleet-scale evaluation and calibration of the detector
/// stack.
///
/// The paper evaluates its dedup detector on one machine at fixed
/// thresholds (Figs 5/6). This module asks the operator's question instead:
/// across a *population* of guests — some clean, some carrying CloudSkulk,
/// some with the attacker actively evading — where should each detector's
/// threshold sit, and what detection rate does that buy at a bounded
/// false-positive budget?
///
/// DetectionCampaign builds a `fleet::FleetRunner` population in which each
/// shard is a self-contained world: ground truth (infected or clean) and
/// every evasion (custom VMCS revision id, hidden L1 processes, TSC
/// scaling, injected probe stalls) are drawn from the shard's derived seed.
/// All four detectors run against whatever the shard built and record
/// threshold-free scores (detect's score APIs). Analysis then sweeps
/// thresholds over the recorded scores — no re-simulation — into per-
/// detector ROC curves plus a voting-ensemble curve, and calibrates each to
/// the campaign's FPR budget. The result feeds back as CalibratedThresholds,
/// directly consumable by DedupDetectorConfig / GuestProbeConfig.
///
/// Everything inherits the fleet contract: reports are byte-identical
/// across worker counts (deterministic_json), audits byte-compare pooled
/// vs serial shards, and runs checkpoint/resume through csk::ckpt with the
/// resumed bytes equal to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "attacker/policy.h"
#include "campaign/roc.h"
#include "detect/dedup_detector.h"
#include "detect/l2_probe.h"
#include "fleet/fleet.h"
#include "obs/json.h"

namespace csk::campaign {

/// Per-shard scenario shape: everything a shard draws from its seed.
struct CampaignScenarioConfig {
  /// File-A size range (pages), drawn uniformly per shard. Varying the
  /// protocol size spreads the score distribution like real fleets do.
  std::size_t file_pages_min = 8;
  std::size_t file_pages_max = 24;
  /// Dedup merge-wait range (seconds). Short waits under-merge and drag
  /// infected scores toward clean ones — the interesting ROC region.
  double merge_wait_min_s = 1.0;
  double merge_wait_max_s = 6.0;
  /// Probability an infected shard's attacker recompiled kvm-intel with a
  /// custom VMCS revision id (§VI-E evasion: blinds the VMCS scanner).
  double evasive_revision_fraction = 0.25;
  /// Probability an infected attacker hides qemu/kvm from the L1 task list
  /// (§VI-E evasion: blinds naive VMI fingerprinting).
  double careful_hiding_fraction = 0.5;
  /// Probability an infected attacker scales the victim's TSC (§VI-A
  /// evasion: deflates the in-guest probe's exit-heavy readings).
  double tsc_scaling_fraction = 0.25;
  /// Probability a shard's detectors run under an injected probe stall
  /// longer than their timeout — those runs degrade to INCONCLUSIVE and
  /// are excluded from ROC counts (never counted as clean).
  double probe_stall_fraction = 0.15;
  /// Guest shape (kept small: a campaign runs many of these).
  std::uint64_t guest_memory_mb = 64;
  std::uint64_t boot_touched_mib = 4;
  /// Population heterogeneity (kMixedGuests preset): when above
  /// guest_memory_mb, each shard draws its guest size uniformly from
  /// [guest_memory_mb, guest_memory_mb_max]. 0 (default) = uniform fleet.
  std::uint64_t guest_memory_mb_max = 0;
  /// Per-shard ksmd scan-rate jitter: each shard scales its host's
  /// pages_per_scan by a factor drawn from [1 - j, 1 + j]. Real fleets
  /// never run ksmd in lockstep; jitter spreads merge-wait adequacy the
  /// way mixed host load does. 0 (default) = no jitter.
  double ksm_scan_jitter = 0.0;
  /// Re-randomize File-A contents at the start of every dedup run
  /// (DedupDetectorConfig::rerandomize_contents) — the campaign-level
  /// switch for the mirror-policy countermeasure.
  bool rerandomize_file_a = false;
};

/// Named population shapes for CampaignScenarioConfig.
enum class CampaignPreset {
  /// Today's default: identical small guests, lockstep ksmd (byte-for-byte
  /// the pre-existing scenario).
  kUniformSmall,
  /// Mixed guest memory sizes (48-96 MB) plus ±30% per-shard ksmd
  /// scan-rate jitter — a first bite at fleet realism.
  kMixedGuests,
};

CampaignScenarioConfig scenario_preset(CampaignPreset preset);

struct CampaignConfig {
  /// Number of shards (guests) in the population.
  std::size_t population = 24;
  /// Probability a shard is infected (ground truth, drawn per shard).
  double infected_fraction = 0.5;
  std::uint64_t root_seed = 0xCA59A167ull;
  /// Worker threads; 0 = hardware concurrency (fleet semantics).
  int workers = 0;
  /// Fleet determinism audit: every shard re-run serially, byte-compared.
  bool audit = false;
  /// Crash-consistent checkpointing of completed shards (fleet/ckpt).
  fleet::CheckpointPolicy checkpoint;
  /// FPR budget the calibration optimizes under (paper-style "alarm the
  /// operator rarely": at most this fraction of clean guests flagged).
  double target_fpr = 0.01;
  CampaignScenarioConfig scenario;
  /// The attacker every infected shard arms (src/attacker). kStatic (the
  /// default) reproduces the seed-drawn evasions byte-for-byte; reactive
  /// kinds respond to the probe-observation plane mid-protocol.
  attacker::AttackerPolicyConfig attacker;
};

/// The campaign's output contract: operating thresholds for every detector,
/// consumable directly by the detect configs.
struct CalibratedThresholds {
  /// DedupDetectorConfig::merged_ratio_threshold (t/t0 ratio).
  double dedup_merged_ratio = 3.0;
  /// GuestProbeConfig::anomaly_ratio (observed/expected).
  double probe_anomaly_ratio = 3.0;
  /// VmcsScanReport::hypervisor_found_at() minimum signature pages.
  std::uint64_t vmcs_min_signature_pages = 1;
  /// VmiFingerprintReport::suspicious_at() minimum anomalies.
  std::uint64_t vmi_min_anomalies = 1;
  /// Ensemble: detectors voting "infected" (at their calibrated
  /// thresholds) needed to flag a guest.
  int ensemble_min_votes = 2;

  void apply_to(detect::DedupDetectorConfig* config) const;
  void apply_to(detect::GuestProbeConfig* config) const;
  obs::JsonValue to_json() const;
};

/// One detector's swept curve plus its calibrated operating point.
struct DetectorEvaluation {
  RocCurve roc;
  OperatingPoint operating;
};

struct CampaignReport {
  /// The raw fleet run: per-shard digests, merged metrics, audit results,
  /// checkpoint accounting.
  fleet::FleetReport fleet;
  /// Keyed "dedup" / "probe" / "vmcs" / "vmi", insertion-ordered in the
  /// JSON output.
  std::map<std::string, DetectorEvaluation> detectors;
  /// The voting ensemble swept over min_votes = 1..4 (threshold k-0.5
  /// means "at least k votes").
  DetectorEvaluation ensemble;
  CalibratedThresholds calibrated;

  std::size_t infected_shards = 0;
  std::size_t clean_shards = 0;
  /// Detector runs (not shards) that degraded to INCONCLUSIVE.
  std::uint64_t inconclusive_runs = 0;
  /// Mean simulated dedup protocol time over conclusive runs (the paper's
  /// detection latency: two merge waits plus measurement).
  double mean_detection_latency_s = 0.0;

  /// Canonical JSON of the simulated facts and their derived analysis —
  /// byte-identical across runs, worker counts, and checkpoint resumes for
  /// the same config. The determinism tests compare exactly these bytes.
  std::string deterministic_json() const;

  /// Full report including wall-clock and pool stats. NOT deterministic.
  obs::JsonValue to_json() const;
};

class DetectionCampaign {
 public:
  explicit DetectionCampaign(CampaignConfig config = {});

  const CampaignConfig& config() const { return config_; }
  std::size_t population() const { return config_.population; }

  /// Runs the whole population on the fleet pool and analyzes it.
  CampaignReport run();

  /// Resumes from the newest usable checkpoint in the policy directory
  /// (fleet::FleetRunner::resume_from semantics); the analyzed report is
  /// byte-identical to an uninterrupted run's.
  Result<CampaignReport> resume_from();

  /// Same, from one explicit checkpoint file.
  Result<CampaignReport> resume_from(const std::string& checkpoint_file);

 private:
  /// Threshold sweeps, calibration, ensemble, campaign.* counters.
  CampaignReport analyze(fleet::FleetReport fleet_report) const;

  CampaignConfig config_;
  fleet::FleetRunner runner_;
};

}  // namespace csk::campaign
