/// \file
/// Runs workloads inside simulated VMs.
///
/// workloads::Workload describes *what* a job costs; vm_runner executes it
/// *somewhere*: it assembles the ExecEnv from the VM (layer, host timing
/// model, ccache state), charges the ops through the VM — so the hosting
/// hypervisor records the exits, the guest dirties pages, and the simulated
/// clock moves — and returns what the guest experienced. This is the bridge
/// the Figure 2 benchmark uses so that "compile times at L1 vs L2" come out
/// of running machines, not of a formula evaluated in a vacuum.
#pragma once

#include <vector>

#include "common/rng.h"
#include "hv/timing_model.h"
#include "vmm/vm.h"
#include "workloads/workload.h"

namespace csk::driver {

/// The execution environment a workload sees inside `vm`.
hv::ExecEnv env_for(const vmm::VirtualMachine& vm);

/// Runs one complete pass of `workload` in `vm` (blocking in simulated
/// time). Returns the elapsed guest time.
SimDuration run_workload(vmm::VirtualMachine& vm,
                         const workloads::Workload& workload);

/// One multiplicative run-to-run noise factor: Normal(1, rel_stddev)
/// clamped *symmetrically* to 1 ± min(4·rel_stddev, 0.95). The clamp keeps
/// pathological tails out of the cost model without biasing the mean —
/// the old one-sided floor at 0.05 silently inflated extreme-left draws,
/// skewing the modeled variance for large rel_stddev.
double run_to_run_jitter(Rng& rng, double rel_stddev);

/// Runs `workload` `runs` times with multiplicative run-to-run noise
/// (thermal / scheduling variance), like the paper's "5 consecutive runs".
std::vector<SimDuration> run_repeated(vmm::VirtualMachine& vm,
                                      const workloads::Workload& workload,
                                      int runs, double rel_stddev, Rng& rng);

}  // namespace csk::driver
