#include "driver/vm_runner.h"

#include <algorithm>

#include "vmm/host.h"

namespace csk::driver {

hv::ExecEnv env_for(const vmm::VirtualMachine& vm) {
  return hv::ExecEnv{vm.layer(), &vm.world()->timing(), vm.ccache_enabled()};
}

SimDuration run_workload(vmm::VirtualMachine& vm,
                         const workloads::Workload& workload) {
  const hv::OpCost cost = workload.cost_for(env_for(vm));
  return vm.execute_ops(cost);
}

double run_to_run_jitter(Rng& rng, double rel_stddev) {
  // Width capped below 1.0 so the factor stays strictly positive even for
  // absurd rel_stddev; at ±4σ the clamp trims ~6e-5 of the mass per side,
  // leaving mean ≈ 1 and stddev ≈ rel_stddev intact.
  const double width = std::min(4.0 * rel_stddev, 0.95);
  return std::clamp(rng.normal(1.0, rel_stddev), 1.0 - width, 1.0 + width);
}

std::vector<SimDuration> run_repeated(vmm::VirtualMachine& vm,
                                      const workloads::Workload& workload,
                                      int runs, double rel_stddev, Rng& rng) {
  std::vector<SimDuration> out;
  out.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    hv::OpCost cost = workload.cost_for(env_for(vm));
    cost.cpu_ns *= run_to_run_jitter(rng, rel_stddev);
    out.push_back(vm.execute_ops(cost));
  }
  return out;
}

}  // namespace csk::driver
