#include "driver/vm_runner.h"

#include <algorithm>

#include "vmm/host.h"

namespace csk::driver {

hv::ExecEnv env_for(const vmm::VirtualMachine& vm) {
  return hv::ExecEnv{vm.layer(), &vm.world()->timing(), vm.ccache_enabled()};
}

SimDuration run_workload(vmm::VirtualMachine& vm,
                         const workloads::Workload& workload) {
  const hv::OpCost cost = workload.cost_for(env_for(vm));
  return vm.execute_ops(cost);
}

std::vector<SimDuration> run_repeated(vmm::VirtualMachine& vm,
                                      const workloads::Workload& workload,
                                      int runs, double rel_stddev, Rng& rng) {
  std::vector<SimDuration> out;
  out.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    hv::OpCost cost = workload.cost_for(env_for(vm));
    const double jitter = std::max(0.05, rng.normal(1.0, rel_stddev));
    cost.cpu_ns *= jitter;
    out.push_back(vm.execute_ops(cost));
  }
  return out;
}

}  // namespace csk::driver
