/// \file
/// The QEMU monitor (HMP).
///
/// The paper's installation recipe drives everything through the monitor:
/// recon (`info qtree`, `info blockstats`, `info mtree`, `info mem`,
/// `info network`), migration (`migrate -d tcp:...`, `migrate_set_speed`),
/// and cleanup (`quit`). This class implements a text-in/text-out command
/// interpreter over a VirtualMachine, with output formatted close enough to
/// QEMU 2.9 that the recon parser treats it as the real thing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "vmm/machine_config.h"

namespace csk::vmm {

class VirtualMachine;
class MigrationJob;

class QemuMonitor {
 public:
  explicit QemuMonitor(VirtualMachine* vm);
  ~QemuMonitor();
  QemuMonitor(const QemuMonitor&) = delete;
  QemuMonitor& operator=(const QemuMonitor&) = delete;

  /// Executes one HMP command line and returns its output text. Unknown
  /// commands and bad arguments come back as errors, like the real monitor.
  Result<std::string> execute(const std::string& command_line);

  VirtualMachine* vm() { return vm_; }

  /// The migration started by the last `migrate` command (null if none).
  MigrationJob* active_migration() { return migration_.get(); }

  /// Migration tunables adjusted via migrate_set_speed / _downtime /
  /// migrate_set_capability, applied to the next `migrate` command.
  double migrate_speed_bytes_per_sec() const { return migrate_speed_; }
  bool postcopy_enabled() const { return postcopy_; }

 private:
  std::string info(const std::string& topic);
  std::string info_status() const;
  std::string info_qtree() const;
  std::string info_block() const;
  std::string info_blockstats() const;
  std::string info_mtree() const;
  std::string info_mem() const;
  std::string info_network() const;
  std::string info_migrate() const;
  std::string info_kvm() const;
  std::string info_cpus() const;
  Result<std::string> do_migrate(const std::vector<std::string>& args);

  VirtualMachine* vm_;
  std::unique_ptr<MigrationJob> migration_;
  double migrate_speed_ = 32.0 * 1024 * 1024;
  double migrate_downtime_sec_ = 0.3;
  bool postcopy_ = false;
  /// Set by `quit`. The VM teardown is deferred to a zero-delay simulator
  /// event (destroying the VM destroys this monitor — tearing it down from
  /// inside execute() would free the object mid-member-function), and any
  /// command issued after quit gets a typed error instead of touching a VM
  /// that is about to disappear.
  bool quit_ = false;
};

}  // namespace csk::vmm
