#include "vmm/monitor.h"

#include <sstream>

#include "vmm/host.h"
#include "vmm/migration.h"
#include "vmm/vm.h"

namespace csk::vmm {

namespace {
std::vector<std::string> split_words(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}
}  // namespace

QemuMonitor::QemuMonitor(VirtualMachine* vm) : vm_(vm) {
  CSK_CHECK(vm != nullptr);
}

QemuMonitor::~QemuMonitor() = default;

Result<std::string> QemuMonitor::execute(const std::string& command_line) {
  const std::vector<std::string> words = split_words(command_line);
  if (words.empty()) return std::string();
  const std::string& cmd = words[0];

  if (quit_) {
    return failed_precondition("monitor: '" + cmd +
                               "' after quit: connection is closing");
  }
  if (cmd == "info") {
    if (words.size() < 2) return invalid_argument("info: missing topic");
    return info(words[1]);
  }
  if (cmd == "stop") {
    (void)vm_->pause();
    return std::string();
  }
  if (cmd == "cont" || cmd == "c") {
    (void)vm_->resume();
    return std::string();
  }
  if (cmd == "quit" || cmd == "q") {
    // Killing the QEMU process destroys the VM, and the VM owns this
    // monitor — tearing it down here would free `this` mid-call. Defer the
    // teardown to a zero-delay simulator event (capturing only stable
    // handles, never `this`) and refuse further commands via `quit_`.
    quit_ = true;
    Host* host = vm_->host();
    VirtualMachine* parent = vm_->parent();
    const VmId id = vm_->id();
    vm_->world()->simulator().schedule_after(
        SimDuration::zero(), [host, parent, id] {
          const Status st = parent != nullptr ? parent->destroy_nested_vm(id)
                                              : host->kill_vm(id);
          (void)st;  // already gone = nothing to do
        });
    return std::string("quit");
  }
  if (cmd == "migrate_set_speed") {
    if (words.size() < 2) return invalid_argument("migrate_set_speed: value");
    // Accepts raw bytes or the qemu "32m" style suffix.
    std::string v = words[1];
    double mult = 1.0;
    if (!v.empty() && (v.back() == 'm' || v.back() == 'M')) {
      mult = 1024.0 * 1024.0;
      v.pop_back();
    } else if (!v.empty() && (v.back() == 'g' || v.back() == 'G')) {
      mult = 1024.0 * 1024.0 * 1024.0;
      v.pop_back();
    }
    try {
      migrate_speed_ = std::stod(v) * mult;
    } catch (const std::exception&) {
      return invalid_argument("migrate_set_speed: bad value " + words[1]);
    }
    return std::string();
  }
  if (cmd == "migrate_set_downtime") {
    if (words.size() < 2) return invalid_argument("migrate_set_downtime: value");
    try {
      migrate_downtime_sec_ = std::stod(words[1]);
    } catch (const std::exception&) {
      return invalid_argument("migrate_set_downtime: bad value " + words[1]);
    }
    return std::string();
  }
  if (cmd == "migrate_set_capability") {
    // "migrate_set_capability postcopy-ram on|off"
    if (words.size() < 3) {
      return invalid_argument("migrate_set_capability: capability on|off");
    }
    if (words[1] != "postcopy-ram") {
      return unimplemented("unknown capability: " + words[1]);
    }
    postcopy_ = (words[2] == "on");
    return std::string();
  }
  if (cmd == "migrate_cancel") {
    if (migration_ != nullptr && !migration_->done()) migration_->cancel();
    return std::string();
  }
  if (cmd == "migrate") {
    return do_migrate(std::vector<std::string>(words.begin() + 1, words.end()));
  }
  return unimplemented("unknown command: '" + cmd + "'");
}

Result<std::string> QemuMonitor::do_migrate(
    const std::vector<std::string>& args) {
  std::string uri;
  for (const std::string& a : args) {
    if (a == "-d" || a == "-b" || a == "-i") continue;  // flags
    uri = a;
  }
  if (uri.empty()) return invalid_argument("migrate: missing uri");
  if (!uri.starts_with("tcp:")) {
    return unimplemented("only tcp: migration uris are modeled");
  }
  const auto last_colon = uri.rfind(':');
  if (last_colon == 3) return invalid_argument("migrate: bad tcp uri " + uri);
  const std::string node = uri.substr(4, last_colon - 4);
  if (node.empty()) return invalid_argument("migrate: bad tcp uri " + uri);
  int port = 0;
  try {
    port = std::stoi(uri.substr(last_colon + 1));
  } catch (const std::exception&) {
    return invalid_argument("migrate: bad port in " + uri);
  }
  if (port < 1 || port > 65535) {
    return invalid_argument("migrate: port out of range in " + uri);
  }

  MigrationConfig cfg;
  cfg.bandwidth_limit_bytes_per_sec = migrate_speed_;
  cfg.max_downtime = SimDuration::from_seconds(migrate_downtime_sec_);
  cfg.post_copy = postcopy_;
  migration_ = std::make_unique<MigrationJob>(
      vm_->world(), vm_,
      net::NetAddr{node, Port(static_cast<std::uint16_t>(port))}, cfg);
  migration_->start();
  return std::string();
}

std::string QemuMonitor::info(const std::string& topic) {
  if (topic == "status") return info_status();
  if (topic == "qtree") return info_qtree();
  if (topic == "block") return info_block();
  if (topic == "blockstats") return info_blockstats();
  if (topic == "mtree") return info_mtree();
  if (topic == "mem") return info_mem();
  if (topic == "network") return info_network();
  if (topic == "migrate") return info_migrate();
  if (topic == "kvm") return info_kvm();
  if (topic == "cpus") return info_cpus();
  return "info: unknown topic '" + topic + "'";
}

std::string QemuMonitor::info_status() const {
  return "VM status: " + std::string(vm_state_name(vm_->state()));
}

std::string QemuMonitor::info_qtree() const {
  std::ostringstream out;
  const MachineConfig& c = vm_->config();
  out << "bus: main-system-bus\n";
  out << "  type System\n";
  out << "  dev: i440FX-pcihost, id \"\"\n";
  out << "    bus: pci.0\n";
  out << "      type PCI\n";
  for (std::size_t i = 0; i < c.netdevs.size(); ++i) {
    out << "      dev: " << c.netdevs[i].model << ", id \"net" << i << "\"\n";
    out << "        mac = \"" << c.netdevs[i].mac << "\"\n";
  }
  for (std::size_t i = 0; i < c.drives.size(); ++i) {
    out << "      dev: virtio-blk-pci, id \"drive" << i << "\"\n";
    out << "        drive = \"" << c.drives[i].file << "\"\n";
  }
  out << "      dev: VGA, id \"\"\n";
  return out.str();
}

std::string QemuMonitor::info_block() const {
  std::ostringstream out;
  const auto& blks = vm_->block_devices();
  for (std::size_t i = 0; i < blks.size(); ++i) {
    out << "drive" << i << " (#block" << 100 + i * 22 << "): "
        << blks[i].config.file << " (" << blks[i].config.format << ")\n"
        << "    Cache mode:       writeback\n";
  }
  return out.str();
}

std::string QemuMonitor::info_blockstats() const {
  std::ostringstream out;
  const auto& blks = vm_->block_devices();
  for (std::size_t i = 0; i < blks.size(); ++i) {
    out << "drive" << i << ": rd_bytes=" << blks[i].rd_bytes
        << " wr_bytes=" << blks[i].wr_bytes << " rd_operations="
        << blks[i].rd_ops << " wr_operations=" << blks[i].wr_ops << "\n";
  }
  return out.str();
}

std::string QemuMonitor::info_mtree() const {
  std::ostringstream out;
  const std::uint64_t ram_bytes = vm_->config().memory_mb * 1024ull * 1024ull;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(ram_bytes - 1));
  out << "memory\n";
  out << "0000000000000000-" << buf
      << " (prio 0, RW): pc.ram size=" << vm_->config().memory_mb << "M\n";
  return out.str();
}

std::string QemuMonitor::info_mem() const {
  std::ostringstream out;
  out << "RAM: " << vm_->config().memory_mb << " MiB, "
      << vm_->memory().mapped_count() << " pages resident\n";
  return out.str();
}

std::string QemuMonitor::info_network() const {
  std::ostringstream out;
  const MachineConfig& c = vm_->config();
  for (std::size_t i = 0; i < c.netdevs.size(); ++i) {
    out << "net" << i << ": index=0,type=user";
    for (const HostFwd& f : c.netdevs[i].hostfwd) {
      out << ",hostfwd=tcp::" << f.host_port << "-:" << f.guest_port;
    }
    out << "\n \\ " << c.netdevs[i].model << ",mac=" << c.netdevs[i].mac
        << "\n";
  }
  return out.str();
}

std::string QemuMonitor::info_migrate() const {
  if (migration_ == nullptr) return "Migration status: none\n";
  std::ostringstream out;
  const MigrationStats& s = migration_->stats();
  if (!s.completed) {
    out << "Migration status: active\n";
  } else if (s.succeeded) {
    out << "Migration status: completed\n";
  } else {
    out << "Migration status: failed\n" << s.error << "\n";
  }
  out << "transferred ram: " << s.wire_bytes / 1024 << " kbytes\n";
  out << "duplicate (zero) pages: " << s.zero_pages << "\n";
  out << "normal pages: " << s.pages_transferred << "\n";
  if (s.completed) {
    out << "total time: " << s.total_time.to_string() << "\n";
    out << "downtime: " << s.downtime.to_string() << "\n";
  }
  return out.str();
}

std::string QemuMonitor::info_kvm() const {
  return "kvm support: enabled\n";
}

std::string QemuMonitor::info_cpus() const {
  std::ostringstream out;
  for (int i = 0; i < vm_->config().vcpus; ++i) {
    out << "* CPU #" << i << ": thread_id=" << 2000 + i << "\n";
  }
  return out.str();
}

}  // namespace csk::vmm
