#include "vmm/vm.h"

#include <algorithm>

#include "common/logging.h"
#include "vmm/host.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"

namespace csk::vmm {

namespace {
/// Ticker period for workload dirty-page generation.
constexpr SimDuration kDirtyTick = SimDuration::millis(50);
/// Virtual-arena factor: the QEMU process address space is larger than
/// guest RAM (nested-guest RAM and buffers live there, overcommitted).
constexpr std::size_t kArenaFactor = 4;
}  // namespace

const char* vm_state_name(VmState s) {
  switch (s) {
    case VmState::kIncoming: return "paused (inmigrate)";
    case VmState::kRunning: return "running";
    case VmState::kPaused: return "paused";
    case VmState::kPostMigrate: return "paused (postmigrate)";
    case VmState::kShutdown: return "shutdown";
  }
  return "?";
}

VirtualMachine::VirtualMachine(CreateArgs args)
    : world_(args.world),
      host_(args.host),
      hosting_hv_(args.hosting_hv),
      parent_(args.parent),
      id_(args.id),
      config_(std::move(args.config)),
      layer_(args.hosting_hv->guest_layer()),
      state_(config_.incoming_port ? VmState::kIncoming : VmState::kPaused),
      node_name_(config_.name + "#" + id_.to_string()) {
  CSK_CHECK(world_ != nullptr && host_ != nullptr && hosting_hv_ != nullptr);

  const std::size_t ram_pages = config_.memory_pages();
  if (parent_ == nullptr) {
    // Top-level VM: a QEMU process on the host. Its arena is a root
    // address space over host physical memory.
    memory_ = std::make_unique<mem::AddressSpace>(
        &host_->phys(), ram_pages * kArenaFactor, "qemu:" + node_name_);
    if (host_->config().ksm_enabled) {
      host_->ksm().register_region(memory_.get());
    }
  } else {
    // Nested VM: a QEMU process inside the parent guest; its arena aliases
    // a region of the parent's memory.
    CSK_CHECK(parent_->os() != nullptr);
    auto region = parent_->os()->allocate_region(ram_pages);
    CSK_CHECK_MSG(region.is_ok(), "parent guest cannot host nested VM: " +
                                      region.status().to_string());
    parent_region_ = std::move(region).take();
    memory_ = std::make_unique<mem::AddressSpace>(
        parent_->memory_.get(), parent_region_, "nested-qemu:" + node_name_);
  }

  // Guest OS object exists up front for normal launches; an incoming VM has
  // no OS until migration hands one over.
  if (!config_.incoming_port) {
    guestos::OsIdentity identity;
    identity.hostname = config_.name;
    os_ = std::make_unique<guestos::GuestOS>(memory_.get(), identity,
                                             Rng(host_->next_os_seed()),
                                             ram_pages);
  }

  for (const DriveConfig& d : config_.drives) blk_.push_back({d});
  for (const NetdevConfig& n : config_.netdevs) net_.push_back({n});

  monitor_ = std::make_unique<QemuMonitor>(this);
  setup_hostfwd();

  // An incoming VM listens for the migration stream on the node its QEMU
  // process runs on (the parent guest for a nested destination — the
  // paper's ROOTKIT PORT BBBB).
  if (config_.incoming_port) {
    const std::string listen_node =
        parent_ ? parent_->node_name() : host_->node_name();
    auto ep = world_->network().bind(
        net::NetAddr{listen_node, Port(*config_.incoming_port)},
        [this](net::Packet p) {
          if (p.kind != net::ProtoKind::kMigrationChunk) return;
          auto ref = MigrationJob::parse_chunk_payload(p.payload.view());
          if (!ref.is_ok()) {
            CSK_WARN << "garbled migration chunk dropped";
            return;
          }
          MigrationJob* job = world_->find_migration(ref->token);
          if (job == nullptr) {
            CSK_WARN << "migration chunk for unknown stream";
            return;
          }
          // The -incoming socket accepts exactly one connection: the first
          // stream claims this destination, later ones are refused.
          if (incoming_stream_token_ == 0) {
            incoming_stream_token_ = ref->token;
          } else if (incoming_stream_token_ != ref->token) {
            job->stream_rejected("destination already claimed by another "
                                 "migration stream");
            return;
          }
          job->chunk_arrived(this, ref->seq);
        });
    CSK_CHECK_MSG(ep.is_ok(), "incoming port in use: " + ep.status().to_string());
    migration_listener_ = ep.value();
  }
}

VirtualMachine::~VirtualMachine() { shutdown(); }

void VirtualMachine::boot(std::uint64_t boot_touched_mib) {
  CSK_CHECK_MSG(os_ != nullptr, "cannot boot a VM awaiting incoming migration");
  CSK_CHECK(state_ == VmState::kPaused);
  os_->boot();
  const Status touched = os_->touch_boot_working_set(boot_touched_mib);
  CSK_CHECK_MSG(touched.is_ok(), touched.to_string());
  state_ = VmState::kRunning;
  boot_time_ = world_->simulator().now();
}

Status VirtualMachine::pause() {
  if (state_ != VmState::kRunning) {
    return failed_precondition("VM not running");
  }
  state_ = VmState::kPaused;
  return Status::ok();
}

Status VirtualMachine::resume() {
  if (state_ != VmState::kPaused && state_ != VmState::kIncoming) {
    return failed_precondition("VM not paused");
  }
  if (state_ == VmState::kIncoming && os_ == nullptr) {
    return failed_precondition("incoming VM has no machine state yet");
  }
  state_ = VmState::kRunning;
  return Status::ok();
}

void VirtualMachine::shutdown() {
  if (state_ == VmState::kShutdown) return;
  stop_dirty_ticker();
  for (auto& nested : nested_) nested->shutdown();
  nested_.clear();
  nested_hv_.reset();
  for (auto& fwd : hostfwd_) fwd->stop();
  for (EndpointId ep : guest_endpoints_) world_->network().unbind(ep);
  guest_endpoints_.clear();
  if (migration_listener_.valid()) {
    world_->network().unbind(migration_listener_);
    migration_listener_ = EndpointId::invalid();
  }
  if (parent_ == nullptr && host_->config().ksm_enabled) {
    host_->ksm().unregister_region(memory_.get());
  }
  if (parent_ != nullptr && parent_->os() != nullptr) {
    parent_->os()->free_region(parent_region_);
  }
  state_ = VmState::kShutdown;
}

Result<hv::Hypervisor*> VirtualMachine::enable_nested_hypervisor(
    std::uint32_t vmcs_revision_id) {
  if (nested_hv_ != nullptr) return nested_hv_.get();
  if (os_ == nullptr || state_ != VmState::kRunning) {
    return failed_precondition("guest must be running to load kvm modules");
  }
  CSK_ASSIGN_OR_RETURN(hv::Layer my_layer,
                       hosting_hv_->nested_hypervisor_layer(id_));
  nested_hv_ = std::make_unique<hv::Hypervisor>(
      &world_->simulator(), &world_->timing(), my_layer, "kvm@" + node_name_);
  os_->spawn("kvm", "[kvm-modules]");
  // kvm-intel leaves VMCS regions in guest RAM; memory forensics scans for
  // their revision-id header.
  auto sig_region = os_->allocate_region(2);
  if (sig_region.is_ok()) {
    mem::PageBytes bytes = {'V', 'M', 'C', 'S'};
    for (int shift = 0; shift < 32; shift += 8) {
      bytes.push_back(static_cast<std::uint8_t>(vmcs_revision_id >> shift));
    }
    for (Gfn g : sig_region.value()) {
      memory_->write_page(g, mem::PageData::from_bytes(bytes));
    }
  }
  return nested_hv_.get();
}

Result<VirtualMachine*> VirtualMachine::launch_nested_vm(
    const MachineConfig& config,
    std::optional<std::uint64_t> boot_touched_mib) {
  if (nested_hv_ == nullptr) {
    return failed_precondition(
        "nested hypervisor not enabled (enable_nested_hypervisor first)");
  }
  if (os_ == nullptr || state_ != VmState::kRunning) {
    return failed_precondition("guest not running");
  }
  const VmId nid(id_.value() * 1000 + nested_ids_.next().value());
  CSK_RETURN_IF_ERROR(
      nested_hv_->attach_guest(nid, config.name, config.cpu_host_passthrough));
  auto vm = std::make_unique<VirtualMachine>(CreateArgs{
      world_, host_, nested_hv_.get(), this, nid, config,
      host_->next_os_seed()});
  VirtualMachine* raw = vm.get();
  nested_.push_back(std::move(vm));
  os_->spawn("qemu-system-x86", config.to_command_line());
  if (!config.incoming_port) {
    raw->boot(boot_touched_mib.value_or(host_->config().boot_touched_mib));
  }
  return raw;
}

std::vector<VirtualMachine*> VirtualMachine::nested_vms() {
  std::vector<VirtualMachine*> out;
  out.reserve(nested_.size());
  for (auto& vm : nested_) out.push_back(vm.get());
  return out;
}

Result<VirtualMachine*> VirtualMachine::find_nested_vm(
    const std::string& name) {
  for (auto& vm : nested_) {
    if (vm->name() == name) return vm.get();
  }
  return not_found("no nested VM named " + name);
}

Status VirtualMachine::destroy_nested_vm(VmId id) {
  auto it = std::find_if(nested_.begin(), nested_.end(),
                         [&](const auto& vm) { return vm->id() == id; });
  if (it == nested_.end()) return not_found("no such nested VM");
  (*it)->shutdown();
  if (nested_hv_) (void)nested_hv_->detach_guest(id);
  nested_.erase(it);
  return Status::ok();
}

SimDuration VirtualMachine::execute_ops(const hv::OpCost& cost) {
  CSK_CHECK_MSG(state_ == VmState::kRunning, "guest not running");
  CSK_CHECK(os_ != nullptr);
  const SimDuration elapsed = hosting_hv_->charge_ops(id_, cost);
  const auto dirtied = static_cast<std::size_t>(cost.pages_dirtied);
  if (dirtied > 0) os_->dirty_pages_cyclic(dirtied);
  world_->simulator().advance(elapsed);
  return elapsed;
}

void VirtualMachine::set_dirty_page_source(DirtyRateFn rate_fn) {
  CSK_CHECK(rate_fn != nullptr);
  stop_dirty_ticker();
  dirty_rate_ = std::move(rate_fn);
  workload_start_ = world_->simulator().now();
  dirty_carry_ = 0.0;
  start_dirty_ticker();
}

void VirtualMachine::clear_dirty_page_source() {
  stop_dirty_ticker();
  dirty_rate_ = nullptr;
}

void VirtualMachine::start_dirty_ticker() {
  dirty_ticker_ = world_->simulator().schedule_periodic(kDirtyTick, [this] {
    if (dirty_rate_ == nullptr) return false;
    if (state_ != VmState::kRunning || os_ == nullptr) return true;  // paused
    const SimDuration elapsed = world_->simulator().now() - workload_start_;
    const double rate = dirty_rate_(elapsed);
    dirty_carry_ += rate * kDirtyTick.seconds_f();
    const auto n = static_cast<std::size_t>(dirty_carry_);
    if (n > 0) {
      dirty_carry_ -= static_cast<double>(n);
      os_->dirty_pages_cyclic(n);
    }
    return true;
  });
}

void VirtualMachine::stop_dirty_ticker() {
  if (!dirty_ticker_.valid()) return;
  world_->simulator().cancel(dirty_ticker_);
  dirty_ticker_ = EventId::invalid();
}

Result<EndpointId> VirtualMachine::bind_guest_port(Port port,
                                                   net::RecvHandler handler) {
  auto ep = world_->network().bind(net::NetAddr{node_name_, port},
                                   std::move(handler));
  if (ep.is_ok()) guest_endpoints_.push_back(ep.value());
  return ep;
}

std::vector<net::PortForwarder*> VirtualMachine::forwarders() {
  std::vector<net::PortForwarder*> out;
  out.reserve(hostfwd_.size());
  for (auto& f : hostfwd_) out.push_back(f.get());
  return out;
}

void VirtualMachine::setup_hostfwd() {
  const std::string outer_node =
      parent_ ? parent_->node_name() : host_->node_name();
  for (const NetdevConfig& nd : config_.netdevs) {
    for (const HostFwd& fw : nd.hostfwd) {
      auto fwd = std::make_unique<net::PortForwarder>(
          &world_->network(), net::NetAddr{outer_node, Port(fw.host_port)},
          net::NetAddr{node_name_, Port(fw.guest_port)},
          "hostfwd:" + node_name_);
      const Status st = fwd->start();
      if (!st.is_ok()) {
        // The port is busy (e.g. the impersonated VM still owns it). The
        // forwarder stays dormant; the owner can retry via
        // activate_hostfwd() once the conflict is gone — exactly the
        // rootkit's takeover-after-kill sequence.
        CSK_DEBUG << "hostfwd dormant: " << st.to_string();
      }
      hostfwd_.push_back(std::move(fwd));
    }
  }
}

Status VirtualMachine::activate_hostfwd() {
  for (auto& fwd : hostfwd_) {
    if (!fwd->running()) CSK_RETURN_IF_ERROR(fwd->start());
  }
  return Status::ok();
}

SimTime VirtualMachine::charge_receive(SimDuration processing) {
  const SimTime now = world_->simulator().now();
  const SimTime start = std::max(now, rx_busy_until_);
  rx_busy_until_ = start + processing;
  return rx_busy_until_;
}

void VirtualMachine::adopt_os(std::unique_ptr<guestos::GuestOS> os) {
  CSK_CHECK_MSG(os_ == nullptr, "VM already has an OS");
  // kIncoming: normal migration landing. kPostMigrate: a stranded post-copy
  // destination hands the OS back to the source it came from (rollback).
  CSK_CHECK(state_ == VmState::kIncoming || state_ == VmState::kPostMigrate);
  os_ = std::move(os);
  os_->rebind_memory(memory_.get());
  state_ = VmState::kRunning;
  boot_time_ = world_->simulator().now();
}

std::unique_ptr<guestos::GuestOS> VirtualMachine::release_os() {
  CSK_CHECK_MSG(os_ != nullptr, "no OS to release");
  state_ = VmState::kPostMigrate;
  stop_dirty_ticker();
  return std::move(os_);
}

std::string VirtualMachine::device_state_descriptor() const {
  std::string out = config_.machine_type + ";ram=" +
                    std::to_string(config_.memory_mb) + "M;cpus=" +
                    std::to_string(config_.vcpus);
  for (const auto& b : blk_) out += ";blk=" + b.config.format;
  for (const auto& n : net_) out += ";net=" + n.config.model;
  return out;
}

SimDuration VirtualMachine::uptime() const {
  return world_->simulator().now() - boot_time_;
}

}  // namespace csk::vmm
