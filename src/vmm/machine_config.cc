#include "vmm/machine_config.h"

#include <sstream>

namespace csk::vmm {

namespace {

std::vector<std::string> tokenize(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// Splits "a=b,c=d,flag" into key/value pairs (value empty for bare flags).
std::vector<std::pair<std::string, std::string>> split_props(
    const std::string& s) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream in(s);
  std::string part;
  while (std::getline(in, part, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(part, "");
    } else {
      out.emplace_back(part.substr(0, eq), part.substr(eq + 1));
    }
  }
  return out;
}

}  // namespace

std::string MachineConfig::to_command_line() const {
  std::ostringstream out;
  out << "qemu-system-x86_64";
  if (enable_kvm) out << " -enable-kvm";
  out << " -machine " << machine_type;
  if (cpu_host_passthrough) out << " -cpu host";
  out << " -name " << name;
  out << " -m " << memory_mb;
  out << " -smp " << vcpus;
  for (const DriveConfig& d : drives) {
    out << " -drive file=" << d.file << ",format=" << d.format
        << ",size_mb=" << d.size_mb;
  }
  for (std::size_t i = 0; i < netdevs.size(); ++i) {
    const NetdevConfig& n = netdevs[i];
    out << " -netdev user,id=net" << i;
    for (const HostFwd& f : n.hostfwd) {
      out << ",hostfwd=tcp::" << f.host_port << "-:" << f.guest_port;
    }
    out << " -device " << n.model << ",netdev=net" << i << ",mac=" << n.mac;
  }
  if (monitor.telnet_port != 0) {
    out << " -monitor telnet:127.0.0.1:" << monitor.telnet_port
        << ",server,nowait";
  }
  if (incoming_port) {
    out << " -incoming tcp:0:" << *incoming_port;
  }
  out << " -display none";
  return out.str();
}

Result<MachineConfig> MachineConfig::parse_command_line(
    const std::string& cmdline) {
  const std::vector<std::string> toks = tokenize(cmdline);
  if (toks.empty() || toks[0].find("qemu-system") == std::string::npos) {
    return invalid_argument("not a qemu command line");
  }
  MachineConfig cfg;
  cfg.enable_kvm = false;
  auto need_arg = [&](std::size_t i) -> Result<std::string> {
    if (i + 1 >= toks.size()) {
      return invalid_argument("missing argument after " + toks[i]);
    }
    return toks[i + 1];
  };

  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    if (t == "-enable-kvm") {
      cfg.enable_kvm = true;
    } else if (t == "-display") {
      ++i;  // value ignored
    } else if (t == "-machine") {
      CSK_ASSIGN_OR_RETURN(cfg.machine_type, need_arg(i));
      ++i;
    } else if (t == "-cpu") {
      CSK_ASSIGN_OR_RETURN(std::string v, need_arg(i));
      cfg.cpu_host_passthrough = (v == "host" || v.starts_with("host,"));
      ++i;
    } else if (t == "-name") {
      CSK_ASSIGN_OR_RETURN(cfg.name, need_arg(i));
      ++i;
    } else if (t == "-m") {
      CSK_ASSIGN_OR_RETURN(std::string v, need_arg(i));
      try {
        cfg.memory_mb = std::stoull(v);
      } catch (const std::exception&) {
        return invalid_argument("bad -m value: " + v);
      }
      ++i;
    } else if (t == "-smp") {
      CSK_ASSIGN_OR_RETURN(std::string v, need_arg(i));
      try {
        cfg.vcpus = std::stoi(v);
      } catch (const std::exception&) {
        return invalid_argument("bad -smp value: " + v);
      }
      ++i;
    } else if (t == "-drive") {
      CSK_ASSIGN_OR_RETURN(std::string v, need_arg(i));
      DriveConfig d;
      for (const auto& [k, val] : split_props(v)) {
        if (k == "file") d.file = val;
        else if (k == "format") d.format = val;
        else if (k == "size_mb") d.size_mb = std::stoull(val);
      }
      if (d.file.empty()) return invalid_argument("-drive without file=");
      cfg.drives.push_back(std::move(d));
      ++i;
    } else if (t == "-netdev") {
      CSK_ASSIGN_OR_RETURN(std::string v, need_arg(i));
      NetdevConfig n;
      for (const auto& [k, val] : split_props(v)) {
        if (k == "hostfwd") {
          // tcp::HOST-:GUEST
          const auto dash = val.find("-:");
          const auto second_colon = val.find("::");
          if (dash == std::string::npos || second_colon == std::string::npos) {
            return invalid_argument("bad hostfwd spec: " + val);
          }
          HostFwd f;
          try {
            f.host_port = static_cast<std::uint16_t>(
                std::stoi(val.substr(second_colon + 2, dash - second_colon - 2)));
            f.guest_port =
                static_cast<std::uint16_t>(std::stoi(val.substr(dash + 2)));
          } catch (const std::exception&) {
            return invalid_argument("bad hostfwd ports: " + val);
          }
          n.hostfwd.push_back(f);
        }
      }
      cfg.netdevs.push_back(std::move(n));
      ++i;
    } else if (t == "-device") {
      CSK_ASSIGN_OR_RETURN(std::string v, need_arg(i));
      // Attach model/mac to the most recent netdev.
      if (!cfg.netdevs.empty()) {
        const auto props = split_props(v);
        if (!props.empty()) cfg.netdevs.back().model = props[0].first;
        for (const auto& [k, val] : props) {
          if (k == "mac") cfg.netdevs.back().mac = val;
        }
      }
      ++i;
    } else if (t == "-monitor") {
      CSK_ASSIGN_OR_RETURN(std::string v, need_arg(i));
      // telnet:127.0.0.1:PORT,server,nowait
      const auto last_colon = v.rfind(':');
      if (v.starts_with("telnet:") && last_colon != std::string::npos) {
        const std::string port_part = v.substr(last_colon + 1);
        cfg.monitor.telnet_port = static_cast<std::uint16_t>(
            std::stoi(port_part.substr(0, port_part.find(','))));
      }
      ++i;
    } else if (t == "-incoming") {
      CSK_ASSIGN_OR_RETURN(std::string v, need_arg(i));
      const auto last_colon = v.rfind(':');
      if (last_colon == std::string::npos) {
        return invalid_argument("bad -incoming uri: " + v);
      }
      cfg.incoming_port =
          static_cast<std::uint16_t>(std::stoi(v.substr(last_colon + 1)));
      ++i;
    } else {
      return invalid_argument("unrecognized qemu option: " + t);
    }
  }
  return cfg;
}

bool migration_compatible(const MachineConfig& src, const MachineConfig& dst,
                          std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (src.machine_type != dst.machine_type) return fail("machine type differs");
  if (src.memory_mb != dst.memory_mb) return fail("RAM size differs");
  if (src.vcpus != dst.vcpus) return fail("vCPU count differs");
  if (src.drives.size() != dst.drives.size()) return fail("drive count differs");
  for (std::size_t i = 0; i < src.drives.size(); ++i) {
    if (src.drives[i].format != dst.drives[i].format ||
        src.drives[i].size_mb != dst.drives[i].size_mb) {
      return fail("drive " + std::to_string(i) + " geometry differs");
    }
  }
  if (src.netdevs.size() != dst.netdevs.size()) {
    return fail("netdev count differs");
  }
  for (std::size_t i = 0; i < src.netdevs.size(); ++i) {
    if (src.netdevs[i].model != dst.netdevs[i].model) {
      return fail("netdev " + std::to_string(i) + " model differs");
    }
  }
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace csk::vmm
