#include "vmm/migration.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vmm/host.h"

namespace csk::vmm {

namespace {
constexpr std::uint64_t kPageHeaderBytes = 8;     // per-page stream header
constexpr std::uint64_t kPageWireBytes = mem::kPageSize + kPageHeaderBytes;
constexpr std::uint64_t kMaxPagesPerChunk = 65536;
constexpr std::uint64_t kAnnounceWireBytes = 64;
// A MIGFAULT request is a tiny control datagram (token + gfn + framing).
constexpr std::uint64_t kFaultRequestWireBytes = 32;
// set_bandwidth_limit floor: an injected collapse may zero the cap without
// aborting the process; the stream then crawls instead of dividing by zero.
constexpr double kMinBandwidthBytesPerSec = 64.0 * 1024;
}  // namespace

const char* postcopy_prefetch_name(PostCopyPrefetch policy) {
  switch (policy) {
    case PostCopyPrefetch::kNone: return "none";
    case PostCopyPrefetch::kLinear: return "linear";
    case PostCopyPrefetch::kLocality: return "locality";
  }
  return "?";
}

const char* postcopy_outcome_name(PostCopyOutcome outcome) {
  switch (outcome) {
    case PostCopyOutcome::kNone: return "none";
    case PostCopyOutcome::kCompleted: return "completed";
    case PostCopyOutcome::kCompletedFromInflight: return "completed_from_inflight";
    case PostCopyOutcome::kRecoveredSourceResume: return "recovered_source_resume";
    case PostCopyOutcome::kDataLoss: return "data_loss";
  }
  return "?";
}

MigrationJob::MigrationJob(World* world, VirtualMachine* source,
                           net::NetAddr first_hop, MigrationConfig config)
    : world_(world),
      source_(source),
      first_hop_(std::move(first_hop)),
      config_(config) {
  CSK_CHECK(world != nullptr && source != nullptr);
  CSK_CHECK(config_.bandwidth_limit_bytes_per_sec > 0);
  CSK_CHECK(config_.chunk_bytes >= kPageWireBytes);
  token_ = world_->register_migration(this);
  conn_ = world_->network().new_conn();
}

MigrationJob::~MigrationJob() {
  world_->unregister_migration(token_);
  if (fault_endpoint_bound_) {
    world_->network().unbind(fault_endpoint_);
    fault_endpoint_bound_ = false;
  }
  if (observer_installed_ && dest_ != nullptr) {
    dest_->memory().clear_write_observer();
    observer_installed_ = false;
  }
  // No scheduled callback may outlive the job.
  for (EventId id : live_events_) (void)world_->simulator().cancel(id);
}

std::string MigrationJob::source_node() const {
  return source_->parent() ? source_->parent()->node_name()
                           : source_->host()->node_name();
}

void MigrationJob::sched_at(SimTime when, std::function<void()> fn) {
  // Events are attempt-scoped: when an attempt dies (attempt_failed bumps
  // the epoch) its still-queued events dispatch as no-ops instead of
  // corrupting the next attempt's state.
  live_events_.push_back(world_->simulator().schedule_at(
      when, [this, epoch = attempt_epoch_, f = std::move(fn)] {
        if (epoch == attempt_epoch_) f();
      }));
}

std::string MigrationJob::encode_chunk_payload(std::uint64_t token,
                                               std::uint64_t seq) {
  return "MIGCHUNK " + std::to_string(token) + " " + std::to_string(seq);
}

Result<MigrationJob::ChunkRef> MigrationJob::parse_chunk_payload(
    std::string_view payload) {
  if (!payload.starts_with("MIGCHUNK ")) {
    return invalid_argument("not a migration chunk");
  }
  ChunkRef ref;
  const auto sp = payload.find(' ', 9);
  if (sp == std::string_view::npos) return invalid_argument("truncated chunk header");
  try {
    ref.token = std::stoull(std::string(payload.substr(9, sp - 9)));
    ref.seq = std::stoull(std::string(payload.substr(sp + 1)));
  } catch (const std::exception&) {
    return invalid_argument("garbled chunk header");
  }
  return ref;
}

std::string MigrationJob::encode_fault_payload(std::uint64_t token,
                                               std::uint64_t gfn) {
  return "MIGFAULT " + std::to_string(token) + " " + std::to_string(gfn);
}

Result<MigrationJob::FaultRef> MigrationJob::parse_fault_payload(
    std::string_view payload) {
  if (!payload.starts_with("MIGFAULT ")) {
    return invalid_argument("not a migration fault request");
  }
  FaultRef ref;
  const auto sp = payload.find(' ', 9);
  if (sp == std::string_view::npos) {
    return invalid_argument("truncated fault header");
  }
  try {
    ref.token = std::stoull(std::string(payload.substr(9, sp - 9)));
    ref.gfn = std::stoull(std::string(payload.substr(sp + 1)));
  } catch (const std::exception&) {
    return invalid_argument("garbled fault header");
  }
  return ref;
}

void MigrationJob::start() {
  CSK_CHECK_MSG(!stats_.completed, "job already ran");
  if (source_->state() != VmState::kRunning &&
      source_->state() != VmState::kPaused) {
    fail("source VM is not migratable in state " +
         std::string(vm_state_name(source_->state())));
    return;
  }
  start_time_ = world_->simulator().now();
  next_send_allowed_ = start_time_;
  stats_.attempts = 1;  // the job itself is attempt 1, setup included
  obs::metrics().counter("vmm.migration.jobs_started").add();
  obs::tracer().instant("migration.start", start_time_, "vmm");
  sched_at(start_time_ + config_.setup_time, [this] {
    if (config_.post_copy) {
      start_post_copy();
    } else {
      begin_streaming();
    }
  });
}

void MigrationJob::begin_streaming() {
  mem::AddressSpace& src = source_->memory();
  src.enable_dirty_log();
  const std::size_t ram_pages = source_->config().memory_pages();
  std::vector<Gfn> all;
  all.reserve(ram_pages);
  for (std::size_t g = 0; g < ram_pages; ++g) all.push_back(Gfn(g));
  begin_round(0, std::move(all));
}

void MigrationJob::start_post_copy() {
  // Post-copy: announce first (binds the destination), then move execution
  // immediately and stream RAM in the background.
  Chunk announce;
  announce.seq = next_chunk_seq_++;
  announce.announce = true;
  announce.wire_bytes = kAnnounceWireBytes;
  round_start_ = world_->simulator().now();
  round_send_done_ = true;  // nothing else this "round"
  pending_.clear();
  pending_index_ = 0;
  send_chunk(std::move(announce));
}

void MigrationJob::begin_round(int round, std::vector<Gfn> pending) {
  round_ = round;
  pending_ = std::move(pending);
  pending_index_ = 0;
  round_send_done_ = false;
  round_start_ = world_->simulator().now();
  round_acc_ = MigrationRoundStats{};
  round_acc_.round = round;
  ++round_serial_;
  if (config_.round_timeout > SimDuration::zero()) {
    sched_at(round_start_ + config_.round_timeout,
             [this, serial = round_serial_] {
               if (stats_.completed || serial != round_serial_) return;
               attempt_failed("round " + std::to_string(round_) +
                              " exceeded its " +
                              config_.round_timeout.to_string() + " timeout");
             });
  }
  pump();
}

MigrationJob::Chunk MigrationJob::build_chunk() {
  Chunk c;
  c.seq = next_chunk_seq_++;
  c.round = round_;
  mem::AddressSpace& src = source_->memory();
  const bool skip_dest_dirty = handoff_done_ && dest_ != nullptr;
  while (pending_index_ < pending_.size() &&
         c.wire_bytes < config_.chunk_bytes &&
         c.pages.size() + c.zero_gfns.size() < kMaxPagesPerChunk) {
    const Gfn gfn = pending_[pending_index_++];
    if (skip_dest_dirty && dest_->memory().is_dirty(gfn)) {
      continue;  // post-copy: the running destination already wrote it
    }
    // Zero-copy: the chunk shares the page's byte payload instead of deep
    // copying 4 KiB per transmitted page.
    const mem::PageData& page = src.read_page_ref(gfn);
    if (page.is_zero()) {
      c.zero_gfns.push_back(gfn);
      c.wire_bytes += kPageHeaderBytes;
    } else {
      c.wire_bytes += kPageWireBytes;
      c.pages.emplace_back(gfn, page);
    }
  }
  return c;
}

void MigrationJob::pump() {
  if (stats_.completed) return;
  if (source_dead_) return;  // nothing left to read pages from
  if (pending_index_ >= pending_.size()) {
    round_send_done_ = true;
    if (chunks_outstanding_ == 0) end_round();
    return;
  }
  const SimTime now = world_->simulator().now();
  if (next_send_allowed_ > now) {
    sched_at(next_send_allowed_, [this] { pump(); });
    return;
  }
  Chunk c = build_chunk();
  if (c.pages.empty() && c.zero_gfns.empty()) {
    // Everything left was skipped (post-copy dest-dirty) — round done.
    round_send_done_ = true;
    if (chunks_outstanding_ == 0) end_round();
    return;
  }
  send_chunk(std::move(c));
}

void MigrationJob::send_chunk(Chunk chunk) {
  ++chunks_outstanding_;
  const auto [it, inserted] = in_flight_.emplace(chunk.seq, std::move(chunk));
  CSK_CHECK(inserted);
  transmit(it->second);
  sched_at(next_send_allowed_, [this] { pump(); });
}

void MigrationJob::transmit(const Chunk& chunk) {
  if (source_dead_) return;  // a dead qemu process sends nothing
  const SimTime now = world_->simulator().now();
  net::Packet pkt;
  pkt.conn = conn_;
  pkt.seq = chunk.seq;
  pkt.kind = net::ProtoKind::kMigrationChunk;
  const std::string qemu_node =
      source_->parent() ? source_->parent()->node_name()
                        : source_->host()->node_name();
  pkt.src = net::NetAddr{qemu_node, Port(0)};
  pkt.reply_to = pkt.src;
  pkt.wire_bytes = chunk.wire_bytes;
  pkt.payload = encode_chunk_payload(token_, chunk.seq);

  // Token bucket: the stream never exceeds the configured bandwidth
  // (retransmissions consume budget like first sends).
  next_send_allowed_ =
      std::max(now, next_send_allowed_) +
      SimDuration::from_seconds(static_cast<double>(chunk.wire_bytes) /
                                config_.bandwidth_limit_bytes_per_sec);
  world_->network().send(first_hop_, std::move(pkt));
  if (config_.chunk_timeout > SimDuration::zero()) {
    sched_at(now + config_.chunk_timeout,
             [this, seq = chunk.seq] { maybe_retransmit(seq); });
  }
}

void MigrationJob::maybe_retransmit(std::uint64_t seq) {
  if (stats_.completed || source_dead_) return;
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;  // acknowledged in the meantime
  Chunk& chunk = it->second;
  if (chunk.retransmits >= config_.max_chunk_retransmits) {
    attempt_failed("chunk " + std::to_string(seq) + " lost " +
                   std::to_string(chunk.retransmits + 1) + " times");
    return;
  }
  ++chunk.retransmits;
  ++stats_.chunk_retransmits;
  obs::metrics().counter("vmm.migration.chunk_retransmits").add();
  obs::tracer().instant("migration.retransmit[" + std::to_string(seq) + "]",
                        world_->simulator().now(), "vmm");
  transmit(chunk);
}

void MigrationJob::chunk_arrived(VirtualMachine* dest,
                                 std::uint64_t chunk_seq) {
  if (stats_.completed) return;
  CSK_CHECK(dest != nullptr);
  if (dest_ == nullptr) {
    // First chunk: bind and validate the destination, as QEMU validates the
    // device-state sections at stream start.
    if (dest->state() != VmState::kIncoming) {
      fail("destination is not in incoming state");
      return;
    }
    std::string why;
    if (!migration_compatible(source_->config(), dest->config(), &why)) {
      fail("machine configuration mismatch: " + why);
      return;
    }
    dest_ = dest;
  } else if (dest != dest_) {
    fail("migration stream split across destinations");
    return;
  }

  auto it = in_flight_.find(chunk_seq);
  if (it == in_flight_.end()) {
    // A late duplicate of a retransmitted chunk, or a leftover packet from
    // an attempt that has since been aborted: already accounted, ignore.
    ++stats_.stale_chunks;
    obs::metrics().counter("vmm.migration.stale_chunks").add();
    return;
  }
  Chunk chunk = std::move(it->second);
  in_flight_.erase(it);

  // Apply page contents to destination RAM. The demand plane's write
  // observer must not mistake our own applies for guest writes.
  const bool skip_dirty = handoff_done_;
  applying_chunk_ = true;
  for (auto& [gfn, data] : chunk.pages) {
    if (skip_dirty && dest_->memory().is_dirty(gfn)) continue;
    dest_->memory().write_page(gfn, std::move(data));
  }
  for (Gfn gfn : chunk.zero_gfns) {
    if (skip_dirty && dest_->memory().is_dirty(gfn)) continue;
    if (dest_->memory().is_mapped(gfn)) {
      dest_->memory().write_page(gfn, mem::PageData::zero());
    }
  }
  applying_chunk_ = false;

  const SimTime done = dest_->charge_receive(receive_processing_time(chunk));
  sched_at(done, [this, c = std::move(chunk)]() mutable {
    chunk_processed(std::move(c));
  });
}

SimDuration MigrationJob::receive_processing_time(const Chunk& chunk) const {
  // The destination's per-page receive path: copy into guest RAM (a fault
  // to populate), virtio-net processing exits. At a nested destination each
  // exit is Turtles-multiplied; this term is what gates the paper's L0-L1
  // migrations at ~20 MiB/s while L0-L0 rides the 32 MiB/s throttle.
  hv::OpCost c;
  c.cpu_ns = 50000;  // per-chunk fixed cost
  c.mem_intensity = 0.6;
  const auto content = static_cast<double>(chunk.pages.size());
  const auto zeros = static_cast<double>(chunk.zero_gfns.size());
  c.cpu_ns += 300.0 * content + 150.0 * zeros;
  c.n_faults = content;
  c.n_exits = 8.5 * content + 0.02 * zeros;
  return world_->timing().price(c, dest_->layer());
}

void MigrationJob::chunk_processed(Chunk chunk) {
  if (stats_.completed) return;
  --chunks_outstanding_;
  // Resume bookkeeping: these pages are now applied at the destination; a
  // retrying attempt need not re-send them unless the source re-dirties
  // them (which the still-running dirty log captures).
  for (const auto& [gfn, data] : chunk.pages) applied_gfns_.insert(gfn.value());
  for (Gfn gfn : chunk.zero_gfns) applied_gfns_.insert(gfn.value());
  stats_.pages_transferred += chunk.pages.size();
  stats_.zero_pages += chunk.zero_gfns.size();
  stats_.wire_bytes += chunk.wire_bytes;
  obs::metrics().counter("vmm.migration.chunks").add();
  obs::metrics().counter("vmm.migration.pages").add(chunk.pages.size());
  obs::metrics().counter("vmm.migration.zero_pages").add(chunk.zero_gfns.size());
  obs::metrics().counter("vmm.migration.wire_bytes").add(chunk.wire_bytes);
  round_acc_.pages += chunk.pages.size();
  round_acc_.zero_pages += chunk.zero_gfns.size();
  round_acc_.wire_bytes += chunk.wire_bytes;

  if (handoff_done_) {
    last_postcopy_progress_ = world_->simulator().now();
    resolve_faults_in(chunk);
  }

  if (chunk.announce) {
    // Post-copy: destination is bound; move execution now.
    do_handoff();
    if (stats_.completed) return;
    dest_->memory().enable_dirty_log();
    handoff_done_ = true;
    last_postcopy_progress_ = world_->simulator().now();
    install_demand_plane();
    if (stats_.completed) return;  // fault endpoint bind may fail
    // Background bulk copy of all RAM.
    const std::size_t ram_pages = source_->config().memory_pages();
    std::vector<Gfn> all;
    all.reserve(ram_pages);
    for (std::size_t g = 0; g < ram_pages; ++g) all.push_back(Gfn(g));
    begin_round(1, std::move(all));
    return;
  }

  if (round_send_done_ && chunks_outstanding_ == 0) end_round();
}

void MigrationJob::resolve_faults_in(const Chunk& chunk) {
  if (outstanding_faults_.empty()) return;
  for (const auto& [gfn, data] : chunk.pages) resolve_one_fault(gfn.value());
  for (Gfn gfn : chunk.zero_gfns) resolve_one_fault(gfn.value());
}

void MigrationJob::resolve_one_fault(std::uint64_t gfn) {
  auto it = outstanding_faults_.find(gfn);
  if (it == outstanding_faults_.end()) return;
  const double ms = (world_->simulator().now() - it->second).millis_f();
  outstanding_faults_.erase(it);
  ++stats_.remote_faults_served;
  stats_.remote_fault_latency_ms.push_back(ms);
  obs::metrics().histogram("vmm.migration.remote_fault_service_ms").observe(ms);
}

std::vector<Gfn> MigrationJob::harvest_dirty() {
  std::vector<Gfn> dirty = source_->memory().fetch_and_reset_dirty();
  const std::size_t ram_pages = source_->config().memory_pages();
  dirty.erase(std::remove_if(dirty.begin(), dirty.end(),
                             [&](Gfn g) { return g.value() >= ram_pages; }),
              dirty.end());
  return dirty;
}

void MigrationJob::end_round() {
  ++round_serial_;  // disarms this round's watchdog
  const SimTime now = world_->simulator().now();
  round_acc_.duration = now - round_start_;
  stats_.round_log.push_back(round_acc_);
  if (round_acc_.duration > SimDuration::zero() && round_acc_.wire_bytes > 0) {
    observed_rate_ = static_cast<double>(round_acc_.wire_bytes) /
                     round_acc_.duration.seconds_f();
  }
  obs::metrics().counter("vmm.migration.rounds").add();
  obs::metrics()
      .histogram("vmm.migration.round_duration_s")
      .observe(round_acc_.duration.seconds_f());
  obs::tracer().complete(
      "migration.round[" + std::to_string(round_acc_.round) + "]",
      round_start_, round_acc_.duration, "vmm");
  obs::tracer().counter("migration.observed_rate_MiBps", now,
                        observed_rate_ / (1024.0 * 1024.0), "vmm");

  if (final_round_) {
    // Blackout tail: transfer the device state, then hand off.
    sched_at(world_->simulator().now() + config_.device_state_time, [this] {
      do_handoff();
      if (!stats_.completed) {
        stats_.downtime = world_->simulator().now() - pause_time_;
        if (config_.downtime_sla > SimDuration::zero()) {
          stats_.downtime_sla_met = stats_.downtime <= config_.downtime_sla;
          obs::metrics()
              .counter("vmm.migration.downtime_sla",
                       {{"met", stats_.downtime_sla_met ? "yes" : "no"}})
              .add();
        }
        stats_.succeeded = true;
        finish();
      }
    });
    return;
  }

  if (handoff_done_) {
    // Post-copy background copy finished; downtime was recorded at handoff.
    stats_.succeeded = true;
    finish();
    return;
  }

  std::vector<Gfn> dirty = harvest_dirty();
  if (round_ + 1 >= config_.max_rounds) {
    stats_.forced_converged = true;
    enter_final_round(std::move(dirty));
    return;
  }
  const double remaining_bytes =
      static_cast<double>(dirty.size()) * kPageWireBytes;
  const double est_seconds = remaining_bytes / std::max(observed_rate_, 1.0);
  if (est_seconds <= config_.max_downtime.seconds_f()) {
    enter_final_round(std::move(dirty));
  } else {
    begin_round(round_ + 1, std::move(dirty));
  }
}

void MigrationJob::enter_final_round(std::vector<Gfn> pending) {
  if (source_->state() == VmState::kRunning) {
    const Status st = source_->pause();
    CSK_CHECK(st.is_ok());
  }
  pause_time_ = world_->simulator().now();
  final_round_ = true;
  // One last harvest: pages dirtied between the estimate and the pause.
  std::vector<Gfn> extra = harvest_dirty();
  pending.insert(pending.end(), extra.begin(), extra.end());
  std::sort(pending.begin(), pending.end());
  pending.erase(std::unique(pending.begin(), pending.end()), pending.end());
  begin_round(round_ + 1, std::move(pending));
}

void MigrationJob::do_handoff() {
  if (dest_ == nullptr) {
    fail("no destination bound at handoff");
    return;
  }
  if (config_.post_copy) {
    if (source_->state() == VmState::kRunning) {
      const Status st = source_->pause();
      CSK_CHECK(st.is_ok());
    }
    pause_time_ = world_->simulator().now();
    // Device state + destination activation cross during the blackout.
    stats_.downtime =
        config_.device_state_time + config_.postcopy_activate_time;
  }
  std::unique_ptr<guestos::GuestOS> os = source_->release_os();
  dest_->adopt_os(std::move(os));
  source_->memory().disable_dirty_log();
  obs::tracer().instant("migration.handoff", world_->simulator().now(), "vmm");
}

void MigrationJob::install_demand_plane() {
  const bool watchdog_on = config_.postcopy_watchdog > SimDuration::zero();
  if (!config_.postcopy_demand_paging && !watchdog_on) return;
  // Divergence tracking needs the write stream even when demand paging is
  // off (the watchdog's rollback decision depends on it).
  CSK_CHECK_MSG(!dest_->memory().has_write_observer(),
                "post-copy demand plane: destination already has a write "
                "observer installed");
  dest_->memory().set_write_observer(
      [this](Gfn gfn, const mem::PageData&) { on_dest_write(gfn); });
  observer_installed_ = true;
  if (config_.postcopy_demand_paging) {
    auto ep = world_->network().bind(
        net::NetAddr{source_node(), Port(config_.postcopy_fault_port)},
        [this](net::Packet&& pkt) { on_fault_request(std::move(pkt)); });
    if (!ep.is_ok()) {
      fail("post-copy fault endpoint bind failed: " +
           std::string(ep.status().message()));
      return;
    }
    fault_endpoint_ = ep.value();
    fault_endpoint_bound_ = true;
  }
  if (watchdog_on) arm_watchdog();
}

void MigrationJob::on_dest_write(Gfn gfn) {
  if (applying_chunk_ || stats_.completed || !handoff_done_) return;
  dest_diverged_ = true;
  if (!config_.postcopy_demand_paging) return;
  raise_remote_fault(gfn);
}

void MigrationJob::postcopy_touch(Gfn gfn) {
  if (stats_.completed || !handoff_done_) return;
  if (!config_.postcopy_demand_paging) return;
  raise_remote_fault(gfn);
}

void MigrationJob::raise_remote_fault(Gfn gfn) {
  const std::uint64_t g = gfn.value();
  if (g >= source_->config().memory_pages()) return;
  if (applied_gfns_.contains(g)) return;       // already delivered
  if (outstanding_faults_.contains(g)) return; // already requested
  outstanding_faults_.emplace(g, world_->simulator().now());
  ++stats_.remote_faults;
  obs::metrics().counter("vmm.migration.remote_faults").add();
  // The fault request is a small control datagram on the destination ->
  // source return channel (userfaultfd over the wire). It bypasses the
  // relay chain: the destination qemu knows the source endpoint directly.
  net::Packet pkt;
  pkt.conn = conn_;
  pkt.kind = net::ProtoKind::kMigrationChunk;
  const std::string dest_node = dest_->parent()
                                    ? dest_->parent()->node_name()
                                    : dest_->host()->node_name();
  pkt.src = net::NetAddr{dest_node, Port(0)};
  pkt.reply_to = pkt.src;
  pkt.wire_bytes = kFaultRequestWireBytes;
  pkt.payload = encode_fault_payload(token_, g);
  world_->network().send(
      net::NetAddr{source_node(), Port(config_.postcopy_fault_port)},
      std::move(pkt));
}

void MigrationJob::on_fault_request(net::Packet&& pkt) {
  if (stats_.completed || source_dead_) return;
  auto ref = parse_fault_payload(pkt.payload.view());
  if (!ref.is_ok() || ref->token != token_) return;
  serve_remote_fault(Gfn(ref->gfn));
}

void MigrationJob::serve_remote_fault(Gfn gfn) {
  if (!handoff_done_ || source_dead_ || stats_.completed) return;
  if (!outstanding_faults_.contains(gfn.value())) return;  // stale request
  mem::AddressSpace& src = source_->memory();
  const std::uint64_t ram_pages = source_->config().memory_pages();
  Chunk c;
  c.seq = next_chunk_seq_++;
  c.round = round_;
  // The demanded page rides first; the prefetch set follows. Pages already
  // applied, already dest-written or already demanded elsewhere are skipped
  // (they are covered or in flight).
  std::int64_t lo = static_cast<std::int64_t>(gfn.value());
  std::int64_t hi = lo + 1;
  const std::int64_t window = config_.postcopy_prefetch_window;
  switch (config_.postcopy_prefetch) {
    case PostCopyPrefetch::kNone:
      break;
    case PostCopyPrefetch::kLinear:
      hi = lo + std::max<std::int64_t>(window, 1);
      break;
    case PostCopyPrefetch::kLocality:
      lo -= window / 2;
      hi = static_cast<std::int64_t>(gfn.value()) + (window + 1) / 2;
      break;
  }
  auto add_page = [&](std::uint64_t g) {
    const mem::PageData& page = src.read_page_ref(Gfn(g));
    if (page.is_zero()) {
      c.zero_gfns.push_back(Gfn(g));
      c.wire_bytes += kPageHeaderBytes;
    } else {
      c.pages.emplace_back(Gfn(g), page);
      c.wire_bytes += kPageWireBytes;
    }
  };
  add_page(gfn.value());
  for (std::int64_t p = lo; p < hi; ++p) {
    if (p < 0 || static_cast<std::uint64_t>(p) >= ram_pages) continue;
    const auto g = static_cast<std::uint64_t>(p);
    if (g == gfn.value()) continue;
    if (applied_gfns_.contains(g)) continue;
    if (dest_ != nullptr && dest_->memory().is_dirty(Gfn(g))) continue;
    if (outstanding_faults_.contains(g)) continue;
    add_page(g);
    ++stats_.prefetch_pages;
  }
  obs::metrics().counter("vmm.migration.fault_service_chunks").add();
  // Urgent out-of-band send: goes out now, but still charges the stream's
  // token bucket, so fault service steals bandwidth from the bulk copy.
  send_chunk(std::move(c));
}

void MigrationJob::arm_watchdog() {
  sched_at(last_postcopy_progress_ + config_.postcopy_watchdog, [this] {
    if (stats_.completed) return;
    const SimTime now = world_->simulator().now();
    if (now - last_postcopy_progress_ >= config_.postcopy_watchdog) {
      resolve_stranded();
    } else {
      arm_watchdog();  // progress since: re-arm from the new deadline
    }
  });
}

void MigrationJob::resolve_stranded() {
  if (stats_.completed || dest_ == nullptr) return;
  obs::metrics().counter("vmm.migration.watchdog_fired").add();
  obs::tracer().instant("migration.watchdog", world_->simulator().now(),
                        "vmm");
  // Salvage the surviving in-flight set: chunks built before the source
  // went quiet still hold their page payloads in the side table (the
  // destination NIC's receive ring, in the model's terms).
  applying_chunk_ = true;
  for (auto& [seq, chunk] : in_flight_) {
    if (chunk.announce) continue;
    for (auto& [gfn, data] : chunk.pages) {
      if (dest_->memory().is_dirty(gfn)) continue;
      dest_->memory().write_page(gfn, std::move(data));
      applied_gfns_.insert(gfn.value());
      ++stats_.inflight_pages_salvaged;
    }
    for (Gfn gfn : chunk.zero_gfns) {
      if (dest_->memory().is_dirty(gfn)) continue;
      if (dest_->memory().is_mapped(gfn)) {
        dest_->memory().write_page(gfn, mem::PageData::zero());
      }
      applied_gfns_.insert(gfn.value());
      ++stats_.inflight_pages_salvaged;
    }
  }
  applying_chunk_ = false;
  in_flight_.clear();
  chunks_outstanding_ = 0;

  // A page is covered if a chunk delivered it or the destination guest
  // overwrote it (its content is then newer than anything the source held).
  const std::uint64_t ram_pages = source_->config().memory_pages();
  std::uint64_t missing = 0;
  for (std::uint64_t g = 0; g < ram_pages; ++g) {
    if (applied_gfns_.contains(g)) continue;
    if (dest_->memory().is_dirty(Gfn(g))) continue;
    ++missing;
  }

  if (missing == 0) {
    // Everything the guest can ever touch is present: the stream died, the
    // payload survived. Resolve any faults the salvage just covered.
    while (!outstanding_faults_.empty()) {
      resolve_one_fault(outstanding_faults_.begin()->first);
    }
    stats_.postcopy_outcome = PostCopyOutcome::kCompletedFromInflight;
    stats_.succeeded = true;
    finish();
    return;
  }
  if (!dest_diverged_ && !source_dead_) {
    // The destination never wrote a page, so the paused source still holds
    // a complete, consistent image: hand execution back (the post-copy
    // rollback QEMU cannot do — our announce keeps the source image
    // frozen until the destination diverges).
    stats_.postcopy_outcome = PostCopyOutcome::kRecoveredSourceResume;
    std::unique_ptr<guestos::GuestOS> os = dest_->release_os();
    source_->adopt_os(std::move(os));
    fail("post-copy stranded: no stream progress for " +
         config_.postcopy_watchdog.to_string() + "; " +
         std::to_string(missing) +
         " pages missing, destination undiverged — source re-activated");
    return;
  }
  // The destination diverged (or the source is dead and was the only holder
  // of the missing pages): typed data loss, never a silent success.
  stats_.postcopy_outcome = PostCopyOutcome::kDataLoss;
  stats_.postcopy_report = data_loss(
      std::to_string(missing) + " of " + std::to_string(ram_pages) +
      " guest pages unrecoverable: source unreachable past the " +
      config_.postcopy_watchdog.to_string() + " post-copy deadline");
  fail("post-copy data loss: " +
       std::string(stats_.postcopy_report.message()));
}

void MigrationJob::stream_rejected(const std::string& why) {
  if (stats_.completed) return;
  fail(why);
}

void MigrationJob::cancel() {
  if (stats_.completed) return;
  fail("migration cancelled");
}

void MigrationJob::inject_abort(std::string why) {
  if (stats_.completed) return;
  obs::metrics().counter("vmm.migration.injected_aborts").add();
  obs::tracer().instant("migration.injected_abort", world_->simulator().now(),
                        "vmm");
  attempt_failed(std::move(why));
}

void MigrationJob::inject_source_failure(std::string why) {
  if (stats_.completed || source_dead_) return;
  source_dead_ = true;
  obs::metrics().counter("vmm.migration.source_failures").add();
  obs::tracer().instant("migration.source_failure", world_->simulator().now(),
                        "vmm");
  if (!handoff_done_) {
    // The guest still runs on the source, but the source qemu process is
    // gone: there is nothing left to stream from and nothing to retry.
    fail("source failed before handoff: " + why);
    return;
  }
  // Post-handoff the stream just goes quiet; the destination's watchdog
  // (when armed) notices the silence and resolves the job. Without one the
  // guest strands — the pre-demand-paging behavior, on purpose.
  stats_.attempt_errors.push_back("source failed post-handoff: " +
                                  std::move(why));
}

void MigrationJob::set_bandwidth_limit(double bytes_per_sec) {
  // Clamp instead of CSK_CHECK: an injected bandwidth collapse with
  // factor == 0 (total starvation) must slow the stream to a crawl, not
  // abort the whole campaign process.
  if (!(bytes_per_sec >= kMinBandwidthBytesPerSec)) {  // also catches NaN
    bytes_per_sec = kMinBandwidthBytesPerSec;
  }
  config_.bandwidth_limit_bytes_per_sec = bytes_per_sec;
}

void MigrationJob::attempt_failed(std::string error) {
  if (stats_.completed) return;
  // Post-handoff failures are terminal: execution already moved, there is
  // no source state left to retry from.
  if (handoff_done_ || stats_.attempts >= config_.retry.max_attempts) {
    if (handoff_done_ && config_.postcopy_watchdog > SimDuration::zero()) {
      // With the watchdog armed the stranded resolver owns every
      // post-handoff terminal path, so even a retransmit-budget blowout
      // ends in a typed outcome (salvage / rollback / kDataLoss) rather
      // than an untyped failure over a half-populated guest.
      stats_.attempt_errors.push_back(std::move(error));
      resolve_stranded();
      return;
    }
    fail(std::move(error));
    return;
  }
  CSK_WARN << "migration attempt " << stats_.attempts
           << " failed: " << error << " — backing off and retrying";
  stats_.attempt_errors.push_back(std::move(error));

  // Everything the dead attempt scheduled becomes a no-op...
  ++attempt_epoch_;
  // ...and everything it still owed carries over to the next attempt: the
  // unsent tail of its round plus whatever was in flight and never acked.
  std::vector<Gfn> owed(pending_.begin() +
                            static_cast<std::ptrdiff_t>(pending_index_),
                        pending_.end());
  for (const auto& [seq, chunk] : in_flight_) {
    for (const auto& [gfn, data] : chunk.pages) owed.push_back(gfn);
    for (Gfn gfn : chunk.zero_gfns) owed.push_back(gfn);
  }
  in_flight_.clear();
  chunks_outstanding_ = 0;
  round_send_done_ = false;
  final_round_ = false;
  pending_.clear();
  pending_index_ = 0;
  // QEMU resumes the source between attempts (it keeps running while the
  // stream is down); the dirty log stays enabled so writes keep accruing.
  if (source_->state() == VmState::kPaused) (void)source_->resume();

  const int retry_index = stats_.retries++;
  const SimDuration delay = backoff_delay(config_.retry, retry_index);
  stats_.backoff_total += delay;
  obs::metrics().counter("vmm.migration.retries").add();
  obs::tracer().instant("migration.retry", world_->simulator().now(), "vmm");
  sched_at(world_->simulator().now() + delay,
           [this, o = std::move(owed)]() mutable { restart_attempt(std::move(o)); });
}

void MigrationJob::restart_attempt(std::vector<Gfn> owed) {
  ++stats_.attempts;
  mem::AddressSpace& src = source_->memory();
  // First-attempt failures before streaming began never enabled the log.
  if (!src.dirty_log_enabled()) src.enable_dirty_log();
  const std::size_t ram_pages = source_->config().memory_pages();
  // Resume set: owed pages from the dead attempt, pages dirtied since the
  // last harvest, and any page never confirmed applied at the destination.
  std::vector<Gfn> dirty = harvest_dirty();
  owed.insert(owed.end(), dirty.begin(), dirty.end());
  for (std::size_t g = 0; g < ram_pages; ++g) {
    if (!applied_gfns_.contains(g)) owed.push_back(Gfn(g));
  }
  std::sort(owed.begin(), owed.end());
  owed.erase(std::unique(owed.begin(), owed.end()), owed.end());
  owed.erase(std::remove_if(owed.begin(), owed.end(),
                            [&](Gfn g) { return g.value() >= ram_pages; }),
             owed.end());
  begin_round(round_ + 1, std::move(owed));
}

void MigrationJob::fail(std::string error) {
  CSK_WARN << "migration failed: " << error;
  stats_.error = std::move(error);
  stats_.succeeded = false;
  // QEMU resumes the source when a migration fails after the pause point.
  if (source_->state() == VmState::kPaused) (void)source_->resume();
  source_->memory().disable_dirty_log();
  finish();
}

void MigrationJob::finish() {
  stats_.completed = true;
  stats_.total_time = world_->simulator().now() - start_time_;
  stats_.rounds = static_cast<int>(stats_.round_log.size());
  if (fault_endpoint_bound_) {
    world_->network().unbind(fault_endpoint_);
    fault_endpoint_bound_ = false;
  }
  if (observer_installed_ && dest_ != nullptr) {
    dest_->memory().clear_write_observer();
    observer_installed_ = false;
  }
  if (stats_.succeeded) {
    // A fault whose page the destination overwrote before service resolves
    // when the stream drains: the guest's own write superseded the demand.
    while (!outstanding_faults_.empty()) {
      resolve_one_fault(outstanding_faults_.begin()->first);
    }
  }
  if (config_.post_copy && handoff_done_ &&
      stats_.postcopy_outcome == PostCopyOutcome::kNone && stats_.succeeded) {
    stats_.postcopy_outcome = PostCopyOutcome::kCompleted;
  }
  if (!stats_.remote_fault_latency_ms.empty()) {
    stats_.remote_fault_summary = summarize(stats_.remote_fault_latency_ms);
  }
  obs::metrics()
      .counter("vmm.migration.jobs",
               {{"result", stats_.succeeded ? "succeeded" : "failed"}})
      .add();
  if (stats_.succeeded) {
    obs::metrics().gauge("vmm.migration.last_downtime_ms")
        .set(stats_.downtime.millis_f());
    obs::metrics().gauge("vmm.migration.last_total_s")
        .set(stats_.total_time.seconds_f());
    obs::metrics().gauge("vmm.migration.last_rounds").set(stats_.rounds);
  }
  obs::tracer().complete("migration.job", start_time_, stats_.total_time,
                         "vmm");
  world_->unregister_migration(token_);
  if (completion_) completion_(stats_);
}

}  // namespace csk::vmm
