#include "vmm/migration.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vmm/host.h"

namespace csk::vmm {

namespace {
constexpr std::uint64_t kPageHeaderBytes = 8;     // per-page stream header
constexpr std::uint64_t kPageWireBytes = mem::kPageSize + kPageHeaderBytes;
constexpr std::uint64_t kMaxPagesPerChunk = 65536;
constexpr std::uint64_t kAnnounceWireBytes = 64;
}  // namespace

MigrationJob::MigrationJob(World* world, VirtualMachine* source,
                           net::NetAddr first_hop, MigrationConfig config)
    : world_(world),
      source_(source),
      first_hop_(std::move(first_hop)),
      config_(config) {
  CSK_CHECK(world != nullptr && source != nullptr);
  CSK_CHECK(config_.bandwidth_limit_bytes_per_sec > 0);
  CSK_CHECK(config_.chunk_bytes >= kPageWireBytes);
  token_ = world_->register_migration(this);
  conn_ = world_->network().new_conn();
}

MigrationJob::~MigrationJob() {
  world_->unregister_migration(token_);
  // No scheduled callback may outlive the job.
  for (EventId id : live_events_) (void)world_->simulator().cancel(id);
}

void MigrationJob::sched_at(SimTime when, std::function<void()> fn) {
  // Events are attempt-scoped: when an attempt dies (attempt_failed bumps
  // the epoch) its still-queued events dispatch as no-ops instead of
  // corrupting the next attempt's state.
  live_events_.push_back(world_->simulator().schedule_at(
      when, [this, epoch = attempt_epoch_, f = std::move(fn)] {
        if (epoch == attempt_epoch_) f();
      }));
}

std::string MigrationJob::encode_chunk_payload(std::uint64_t token,
                                               std::uint64_t seq) {
  return "MIGCHUNK " + std::to_string(token) + " " + std::to_string(seq);
}

Result<MigrationJob::ChunkRef> MigrationJob::parse_chunk_payload(
    std::string_view payload) {
  if (!payload.starts_with("MIGCHUNK ")) {
    return invalid_argument("not a migration chunk");
  }
  ChunkRef ref;
  const auto sp = payload.find(' ', 9);
  if (sp == std::string_view::npos) return invalid_argument("truncated chunk header");
  try {
    ref.token = std::stoull(std::string(payload.substr(9, sp - 9)));
    ref.seq = std::stoull(std::string(payload.substr(sp + 1)));
  } catch (const std::exception&) {
    return invalid_argument("garbled chunk header");
  }
  return ref;
}

void MigrationJob::start() {
  CSK_CHECK_MSG(!stats_.completed, "job already ran");
  if (source_->state() != VmState::kRunning &&
      source_->state() != VmState::kPaused) {
    fail("source VM is not migratable in state " +
         std::string(vm_state_name(source_->state())));
    return;
  }
  start_time_ = world_->simulator().now();
  next_send_allowed_ = start_time_;
  stats_.attempts = 1;  // the job itself is attempt 1, setup included
  obs::metrics().counter("vmm.migration.jobs_started").add();
  obs::tracer().instant("migration.start", start_time_, "vmm");
  sched_at(start_time_ + config_.setup_time, [this] {
    if (config_.post_copy) {
      start_post_copy();
    } else {
      begin_streaming();
    }
  });
}

void MigrationJob::begin_streaming() {
  mem::AddressSpace& src = source_->memory();
  src.enable_dirty_log();
  const std::size_t ram_pages = source_->config().memory_pages();
  std::vector<Gfn> all;
  all.reserve(ram_pages);
  for (std::size_t g = 0; g < ram_pages; ++g) all.push_back(Gfn(g));
  begin_round(0, std::move(all));
}

void MigrationJob::start_post_copy() {
  // Post-copy: announce first (binds the destination), then move execution
  // immediately and stream RAM in the background.
  Chunk announce;
  announce.seq = next_chunk_seq_++;
  announce.announce = true;
  announce.wire_bytes = kAnnounceWireBytes;
  round_start_ = world_->simulator().now();
  round_send_done_ = true;  // nothing else this "round"
  pending_.clear();
  pending_index_ = 0;
  send_chunk(std::move(announce));
}

void MigrationJob::begin_round(int round, std::vector<Gfn> pending) {
  round_ = round;
  pending_ = std::move(pending);
  pending_index_ = 0;
  round_send_done_ = false;
  round_start_ = world_->simulator().now();
  round_acc_ = MigrationRoundStats{};
  round_acc_.round = round;
  ++round_serial_;
  if (config_.round_timeout > SimDuration::zero()) {
    sched_at(round_start_ + config_.round_timeout,
             [this, serial = round_serial_] {
               if (stats_.completed || serial != round_serial_) return;
               attempt_failed("round " + std::to_string(round_) +
                              " exceeded its " +
                              config_.round_timeout.to_string() + " timeout");
             });
  }
  pump();
}

MigrationJob::Chunk MigrationJob::build_chunk() {
  Chunk c;
  c.seq = next_chunk_seq_++;
  c.round = round_;
  mem::AddressSpace& src = source_->memory();
  const bool skip_dest_dirty = handoff_done_ && dest_ != nullptr;
  while (pending_index_ < pending_.size() &&
         c.wire_bytes < config_.chunk_bytes &&
         c.pages.size() + c.zero_gfns.size() < kMaxPagesPerChunk) {
    const Gfn gfn = pending_[pending_index_++];
    if (skip_dest_dirty && dest_->memory().is_dirty(gfn)) {
      continue;  // post-copy: the running destination already wrote it
    }
    // Zero-copy: the chunk shares the page's byte payload instead of deep
    // copying 4 KiB per transmitted page.
    const mem::PageData& page = src.read_page_ref(gfn);
    if (page.is_zero()) {
      c.zero_gfns.push_back(gfn);
      c.wire_bytes += kPageHeaderBytes;
    } else {
      c.wire_bytes += kPageWireBytes;
      c.pages.emplace_back(gfn, page);
    }
  }
  return c;
}

void MigrationJob::pump() {
  if (stats_.completed) return;
  if (pending_index_ >= pending_.size()) {
    round_send_done_ = true;
    if (chunks_outstanding_ == 0) end_round();
    return;
  }
  const SimTime now = world_->simulator().now();
  if (next_send_allowed_ > now) {
    sched_at(next_send_allowed_, [this] { pump(); });
    return;
  }
  Chunk c = build_chunk();
  if (c.pages.empty() && c.zero_gfns.empty()) {
    // Everything left was skipped (post-copy dest-dirty) — round done.
    round_send_done_ = true;
    if (chunks_outstanding_ == 0) end_round();
    return;
  }
  send_chunk(std::move(c));
}

void MigrationJob::send_chunk(Chunk chunk) {
  ++chunks_outstanding_;
  const auto [it, inserted] = in_flight_.emplace(chunk.seq, std::move(chunk));
  CSK_CHECK(inserted);
  transmit(it->second);
  sched_at(next_send_allowed_, [this] { pump(); });
}

void MigrationJob::transmit(const Chunk& chunk) {
  const SimTime now = world_->simulator().now();
  net::Packet pkt;
  pkt.conn = conn_;
  pkt.seq = chunk.seq;
  pkt.kind = net::ProtoKind::kMigrationChunk;
  const std::string qemu_node =
      source_->parent() ? source_->parent()->node_name()
                        : source_->host()->node_name();
  pkt.src = net::NetAddr{qemu_node, Port(0)};
  pkt.reply_to = pkt.src;
  pkt.wire_bytes = chunk.wire_bytes;
  pkt.payload = encode_chunk_payload(token_, chunk.seq);

  // Token bucket: the stream never exceeds the configured bandwidth
  // (retransmissions consume budget like first sends).
  next_send_allowed_ =
      std::max(now, next_send_allowed_) +
      SimDuration::from_seconds(static_cast<double>(chunk.wire_bytes) /
                                config_.bandwidth_limit_bytes_per_sec);
  world_->network().send(first_hop_, std::move(pkt));
  if (config_.chunk_timeout > SimDuration::zero()) {
    sched_at(now + config_.chunk_timeout,
             [this, seq = chunk.seq] { maybe_retransmit(seq); });
  }
}

void MigrationJob::maybe_retransmit(std::uint64_t seq) {
  if (stats_.completed) return;
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;  // acknowledged in the meantime
  Chunk& chunk = it->second;
  if (chunk.retransmits >= config_.max_chunk_retransmits) {
    attempt_failed("chunk " + std::to_string(seq) + " lost " +
                   std::to_string(chunk.retransmits + 1) + " times");
    return;
  }
  ++chunk.retransmits;
  ++stats_.chunk_retransmits;
  obs::metrics().counter("vmm.migration.chunk_retransmits").add();
  obs::tracer().instant("migration.retransmit[" + std::to_string(seq) + "]",
                        world_->simulator().now(), "vmm");
  transmit(chunk);
}

void MigrationJob::chunk_arrived(VirtualMachine* dest,
                                 std::uint64_t chunk_seq) {
  if (stats_.completed) return;
  CSK_CHECK(dest != nullptr);
  if (dest_ == nullptr) {
    // First chunk: bind and validate the destination, as QEMU validates the
    // device-state sections at stream start.
    if (dest->state() != VmState::kIncoming) {
      fail("destination is not in incoming state");
      return;
    }
    std::string why;
    if (!migration_compatible(source_->config(), dest->config(), &why)) {
      fail("machine configuration mismatch: " + why);
      return;
    }
    dest_ = dest;
  } else if (dest != dest_) {
    fail("migration stream split across destinations");
    return;
  }

  auto it = in_flight_.find(chunk_seq);
  if (it == in_flight_.end()) {
    // A late duplicate of a retransmitted chunk, or a leftover packet from
    // an attempt that has since been aborted: already accounted, ignore.
    ++stats_.stale_chunks;
    obs::metrics().counter("vmm.migration.stale_chunks").add();
    return;
  }
  Chunk chunk = std::move(it->second);
  in_flight_.erase(it);

  // Apply page contents to destination RAM.
  const bool skip_dirty = handoff_done_;
  for (auto& [gfn, data] : chunk.pages) {
    if (skip_dirty && dest_->memory().is_dirty(gfn)) continue;
    dest_->memory().write_page(gfn, std::move(data));
  }
  for (Gfn gfn : chunk.zero_gfns) {
    if (skip_dirty && dest_->memory().is_dirty(gfn)) continue;
    if (dest_->memory().is_mapped(gfn)) {
      dest_->memory().write_page(gfn, mem::PageData::zero());
    }
  }

  const SimTime done = dest_->charge_receive(receive_processing_time(chunk));
  sched_at(done, [this, c = std::move(chunk)]() mutable {
    chunk_processed(std::move(c));
  });
}

SimDuration MigrationJob::receive_processing_time(const Chunk& chunk) const {
  // The destination's per-page receive path: copy into guest RAM (a fault
  // to populate), virtio-net processing exits. At a nested destination each
  // exit is Turtles-multiplied; this term is what gates the paper's L0-L1
  // migrations at ~20 MiB/s while L0-L0 rides the 32 MiB/s throttle.
  hv::OpCost c;
  c.cpu_ns = 50000;  // per-chunk fixed cost
  c.mem_intensity = 0.6;
  const auto content = static_cast<double>(chunk.pages.size());
  const auto zeros = static_cast<double>(chunk.zero_gfns.size());
  c.cpu_ns += 300.0 * content + 150.0 * zeros;
  c.n_faults = content;
  c.n_exits = 8.5 * content + 0.02 * zeros;
  return world_->timing().price(c, dest_->layer());
}

void MigrationJob::chunk_processed(Chunk chunk) {
  if (stats_.completed) return;
  --chunks_outstanding_;
  // Resume bookkeeping: these pages are now applied at the destination; a
  // retrying attempt need not re-send them unless the source re-dirties
  // them (which the still-running dirty log captures).
  for (const auto& [gfn, data] : chunk.pages) applied_gfns_.insert(gfn.value());
  for (Gfn gfn : chunk.zero_gfns) applied_gfns_.insert(gfn.value());
  stats_.pages_transferred += chunk.pages.size();
  stats_.zero_pages += chunk.zero_gfns.size();
  stats_.wire_bytes += chunk.wire_bytes;
  obs::metrics().counter("vmm.migration.chunks").add();
  obs::metrics().counter("vmm.migration.pages").add(chunk.pages.size());
  obs::metrics().counter("vmm.migration.zero_pages").add(chunk.zero_gfns.size());
  obs::metrics().counter("vmm.migration.wire_bytes").add(chunk.wire_bytes);
  round_acc_.pages += chunk.pages.size();
  round_acc_.zero_pages += chunk.zero_gfns.size();
  round_acc_.wire_bytes += chunk.wire_bytes;

  if (chunk.announce) {
    // Post-copy: destination is bound; move execution now.
    do_handoff();
    if (stats_.completed) return;
    dest_->memory().enable_dirty_log();
    handoff_done_ = true;
    // Background bulk copy of all RAM.
    const std::size_t ram_pages = source_->config().memory_pages();
    std::vector<Gfn> all;
    all.reserve(ram_pages);
    for (std::size_t g = 0; g < ram_pages; ++g) all.push_back(Gfn(g));
    begin_round(1, std::move(all));
    return;
  }

  if (round_send_done_ && chunks_outstanding_ == 0) end_round();
}

std::vector<Gfn> MigrationJob::harvest_dirty() {
  std::vector<Gfn> dirty = source_->memory().fetch_and_reset_dirty();
  const std::size_t ram_pages = source_->config().memory_pages();
  dirty.erase(std::remove_if(dirty.begin(), dirty.end(),
                             [&](Gfn g) { return g.value() >= ram_pages; }),
              dirty.end());
  return dirty;
}

void MigrationJob::end_round() {
  ++round_serial_;  // disarms this round's watchdog
  const SimTime now = world_->simulator().now();
  round_acc_.duration = now - round_start_;
  stats_.round_log.push_back(round_acc_);
  if (round_acc_.duration > SimDuration::zero() && round_acc_.wire_bytes > 0) {
    observed_rate_ = static_cast<double>(round_acc_.wire_bytes) /
                     round_acc_.duration.seconds_f();
  }
  obs::metrics().counter("vmm.migration.rounds").add();
  obs::metrics()
      .histogram("vmm.migration.round_duration_s")
      .observe(round_acc_.duration.seconds_f());
  obs::tracer().complete(
      "migration.round[" + std::to_string(round_acc_.round) + "]",
      round_start_, round_acc_.duration, "vmm");
  obs::tracer().counter("migration.observed_rate_MiBps", now,
                        observed_rate_ / (1024.0 * 1024.0), "vmm");

  if (final_round_) {
    // Blackout tail: transfer the device state, then hand off.
    sched_at(world_->simulator().now() + config_.device_state_time, [this] {
      do_handoff();
      if (!stats_.completed) {
        stats_.downtime = world_->simulator().now() - pause_time_;
        if (config_.downtime_sla > SimDuration::zero()) {
          stats_.downtime_sla_met = stats_.downtime <= config_.downtime_sla;
          obs::metrics()
              .counter("vmm.migration.downtime_sla",
                       {{"met", stats_.downtime_sla_met ? "yes" : "no"}})
              .add();
        }
        stats_.succeeded = true;
        finish();
      }
    });
    return;
  }

  if (handoff_done_) {
    // Post-copy background copy finished; downtime was recorded at handoff.
    stats_.succeeded = true;
    finish();
    return;
  }

  std::vector<Gfn> dirty = harvest_dirty();
  if (round_ + 1 >= config_.max_rounds) {
    stats_.forced_converged = true;
    enter_final_round(std::move(dirty));
    return;
  }
  const double remaining_bytes =
      static_cast<double>(dirty.size()) * kPageWireBytes;
  const double est_seconds = remaining_bytes / std::max(observed_rate_, 1.0);
  if (est_seconds <= config_.max_downtime.seconds_f()) {
    enter_final_round(std::move(dirty));
  } else {
    begin_round(round_ + 1, std::move(dirty));
  }
}

void MigrationJob::enter_final_round(std::vector<Gfn> pending) {
  if (source_->state() == VmState::kRunning) {
    const Status st = source_->pause();
    CSK_CHECK(st.is_ok());
  }
  pause_time_ = world_->simulator().now();
  final_round_ = true;
  // One last harvest: pages dirtied between the estimate and the pause.
  std::vector<Gfn> extra = harvest_dirty();
  pending.insert(pending.end(), extra.begin(), extra.end());
  std::sort(pending.begin(), pending.end());
  pending.erase(std::unique(pending.begin(), pending.end()), pending.end());
  begin_round(round_ + 1, std::move(pending));
}

void MigrationJob::do_handoff() {
  if (dest_ == nullptr) {
    fail("no destination bound at handoff");
    return;
  }
  if (config_.post_copy) {
    if (source_->state() == VmState::kRunning) {
      const Status st = source_->pause();
      CSK_CHECK(st.is_ok());
    }
    pause_time_ = world_->simulator().now();
    // Device state crosses during the post-copy blackout too.
    stats_.downtime = config_.device_state_time + SimDuration::millis(20);
  }
  std::unique_ptr<guestos::GuestOS> os = source_->release_os();
  dest_->adopt_os(std::move(os));
  source_->memory().disable_dirty_log();
  obs::tracer().instant("migration.handoff", world_->simulator().now(), "vmm");
}

void MigrationJob::stream_rejected(const std::string& why) {
  if (stats_.completed) return;
  fail(why);
}

void MigrationJob::cancel() {
  if (stats_.completed) return;
  fail("migration cancelled");
}

void MigrationJob::inject_abort(std::string why) {
  if (stats_.completed) return;
  obs::metrics().counter("vmm.migration.injected_aborts").add();
  obs::tracer().instant("migration.injected_abort", world_->simulator().now(),
                        "vmm");
  attempt_failed(std::move(why));
}

void MigrationJob::set_bandwidth_limit(double bytes_per_sec) {
  CSK_CHECK(bytes_per_sec > 0);
  config_.bandwidth_limit_bytes_per_sec = bytes_per_sec;
}

void MigrationJob::attempt_failed(std::string error) {
  if (stats_.completed) return;
  // Post-handoff failures are terminal: execution already moved, there is
  // no source state left to retry from.
  if (handoff_done_ || stats_.attempts >= config_.retry.max_attempts) {
    fail(std::move(error));
    return;
  }
  CSK_WARN << "migration attempt " << stats_.attempts
           << " failed: " << error << " — backing off and retrying";
  stats_.attempt_errors.push_back(std::move(error));

  // Everything the dead attempt scheduled becomes a no-op...
  ++attempt_epoch_;
  // ...and everything it still owed carries over to the next attempt: the
  // unsent tail of its round plus whatever was in flight and never acked.
  std::vector<Gfn> owed(pending_.begin() +
                            static_cast<std::ptrdiff_t>(pending_index_),
                        pending_.end());
  for (const auto& [seq, chunk] : in_flight_) {
    for (const auto& [gfn, data] : chunk.pages) owed.push_back(gfn);
    for (Gfn gfn : chunk.zero_gfns) owed.push_back(gfn);
  }
  in_flight_.clear();
  chunks_outstanding_ = 0;
  round_send_done_ = false;
  final_round_ = false;
  pending_.clear();
  pending_index_ = 0;
  // QEMU resumes the source between attempts (it keeps running while the
  // stream is down); the dirty log stays enabled so writes keep accruing.
  if (source_->state() == VmState::kPaused) (void)source_->resume();

  const int retry_index = stats_.retries++;
  const SimDuration delay = backoff_delay(config_.retry, retry_index);
  stats_.backoff_total += delay;
  obs::metrics().counter("vmm.migration.retries").add();
  obs::tracer().instant("migration.retry", world_->simulator().now(), "vmm");
  sched_at(world_->simulator().now() + delay,
           [this, o = std::move(owed)]() mutable { restart_attempt(std::move(o)); });
}

void MigrationJob::restart_attempt(std::vector<Gfn> owed) {
  ++stats_.attempts;
  mem::AddressSpace& src = source_->memory();
  // First-attempt failures before streaming began never enabled the log.
  if (!src.dirty_log_enabled()) src.enable_dirty_log();
  const std::size_t ram_pages = source_->config().memory_pages();
  // Resume set: owed pages from the dead attempt, pages dirtied since the
  // last harvest, and any page never confirmed applied at the destination.
  std::vector<Gfn> dirty = harvest_dirty();
  owed.insert(owed.end(), dirty.begin(), dirty.end());
  for (std::size_t g = 0; g < ram_pages; ++g) {
    if (!applied_gfns_.contains(g)) owed.push_back(Gfn(g));
  }
  std::sort(owed.begin(), owed.end());
  owed.erase(std::unique(owed.begin(), owed.end()), owed.end());
  owed.erase(std::remove_if(owed.begin(), owed.end(),
                            [&](Gfn g) { return g.value() >= ram_pages; }),
             owed.end());
  begin_round(round_ + 1, std::move(owed));
}

void MigrationJob::fail(std::string error) {
  CSK_WARN << "migration failed: " << error;
  stats_.error = std::move(error);
  stats_.succeeded = false;
  // QEMU resumes the source when a migration fails after the pause point.
  if (source_->state() == VmState::kPaused) (void)source_->resume();
  source_->memory().disable_dirty_log();
  finish();
}

void MigrationJob::finish() {
  stats_.completed = true;
  stats_.total_time = world_->simulator().now() - start_time_;
  stats_.rounds = static_cast<int>(stats_.round_log.size());
  obs::metrics()
      .counter("vmm.migration.jobs",
               {{"result", stats_.succeeded ? "succeeded" : "failed"}})
      .add();
  if (stats_.succeeded) {
    obs::metrics().gauge("vmm.migration.last_downtime_ms")
        .set(stats_.downtime.millis_f());
    obs::metrics().gauge("vmm.migration.last_total_s")
        .set(stats_.total_time.seconds_f());
    obs::metrics().gauge("vmm.migration.last_rounds").set(stats_.rounds);
  }
  obs::tracer().complete("migration.job", start_time_, stats_.total_time,
                         "vmm");
  world_->unregister_migration(token_);
  if (completion_) completion_(stats_);
}

}  // namespace csk::vmm
