/// \file
/// QEMU-style machine configuration.
///
/// CloudSkulk's installation step 2 requires building a destination VM whose
/// configuration *matches the target VM* — live migration refuses mismatched
/// machines. MachineConfig is the structured form; it round-trips through a
/// qemu-system-x86_64 command line because that is what the attacker's recon
/// actually recovers (ps -ef / shell history / QEMU monitor introspection).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace csk::vmm {

struct DriveConfig {
  std::string file;            // image path, e.g. "fedora22.qcow2"
  std::string format = "qcow2";
  std::uint64_t size_mb = 20480;

  bool operator==(const DriveConfig&) const = default;
};

/// A -netdev user,hostfwd=tcp::HOST-:GUEST rule.
struct HostFwd {
  std::uint16_t host_port = 0;
  std::uint16_t guest_port = 0;

  bool operator==(const HostFwd&) const = default;
};

struct NetdevConfig {
  std::string model = "virtio-net-pci";
  std::string mac = "52:54:00:12:34:56";
  std::vector<HostFwd> hostfwd;

  bool operator==(const NetdevConfig&) const = default;
};

struct MonitorConfig {
  /// Telnet port the monitor is multiplexed on (paper §IV-A), 0 = stdio.
  std::uint16_t telnet_port = 0;

  bool operator==(const MonitorConfig&) const = default;
};

struct MachineConfig {
  std::string name = "vm";
  std::uint64_t memory_mb = 1024;
  int vcpus = 1;
  bool enable_kvm = true;
  /// "-cpu host" exposes VMX to the guest => nested virtualization usable.
  bool cpu_host_passthrough = false;
  std::string machine_type = "pc-i440fx-2.9";
  std::vector<DriveConfig> drives;
  std::vector<NetdevConfig> netdevs;
  MonitorConfig monitor;
  /// "-incoming tcp:0:PORT": start paused, awaiting migration data.
  std::optional<std::uint16_t> incoming_port;

  std::size_t memory_pages() const { return memory_mb * 256; }  // 4 KiB pages

  /// Renders the canonical qemu command line for this configuration.
  std::string to_command_line() const;

  /// Parses a command line previously produced by to_command_line() (or
  /// hand-written in the same dialect). This is the recon path.
  static Result<MachineConfig> parse_command_line(const std::string& cmdline);

  bool operator==(const MachineConfig&) const = default;
};

/// Live-migration compatibility: same machine type, RAM size, vCPUs, drive
/// and netdev shapes. Name/monitor/incoming/hostfwd differences are allowed
/// (they are host-side plumbing, invisible to the guest).
bool migration_compatible(const MachineConfig& src, const MachineConfig& dst,
                          std::string* why = nullptr);

}  // namespace csk::vmm
