/// \file
/// World and Host.
///
/// World is the top of the ownership tree for one experiment: the simulator
/// clock, the network fabric, the timing model, the hosts, and the registry
/// that routes in-flight migration streams to their jobs.
///
/// Host models one physical machine running Linux/KVM: physical memory, the
/// L0 hypervisor, the ksmd daemon, a process table (QEMU processes with host
/// PIDs — what `ps -ef` shows and what the PID-swap trick manipulates), a
/// shell history (the recon source the paper names first), and the VMs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "hv/hypervisor.h"
#include "hv/timing_model.h"
#include "mem/ksm.h"
#include "mem/phys_mem.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "vmm/machine_config.h"
#include "vmm/vm.h"

namespace csk::vmm {

class MigrationJob;

class World {
 public:
  explicit World(std::uint64_t seed = 0xC10DD5CA1Cull);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  net::SimNetwork& network() { return network_; }
  const hv::TimingModel& timing() const { return timing_; }
  /// Replaces the cost model (ablations). Do this before creating hosts.
  void set_timing(hv::TimingModel timing) { timing_ = timing; }
  /// Mutable access for installing/removing a TimingModel price observer
  /// after hosts exist (the adaptive attacker's hv hook). Calibrated params
  /// must not change through this once workloads have been priced.
  hv::TimingModel& mutable_timing() { return timing_; }
  Rng& rng() { return rng_; }

  struct HostConfig;
  Host* make_host(HostConfig config);
  Host* make_host(const std::string& name);
  Result<Host*> find_host(const std::string& name);

  // --- migration stream registry ---
  std::uint64_t register_migration(MigrationJob* job);
  void unregister_migration(std::uint64_t token);
  MigrationJob* find_migration(std::uint64_t token);

 private:
  sim::Simulator simulator_;
  net::SimNetwork network_;
  hv::TimingModel timing_;
  Rng rng_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unordered_map<std::uint64_t, MigrationJob*> migrations_;
  std::uint64_t next_migration_token_ = 1;
};

struct World::HostConfig {
  std::string name = "host0";
  std::uint64_t memory_gb = 16;
  bool ksm_enabled = true;
  mem::KsmConfig ksm;
  mem::MemTimingModel mem_timing;
  /// RAM a freshly booted guest has touched (Fedora 22 workstation ≈ this
  /// many MiB resident after boot). Calibrates Fig 4 transfer volumes.
  std::uint64_t boot_touched_mib = 480;
};

class Host {
 public:
  Host(World* world, World::HostConfig config);
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return config_.name; }
  /// Network node name of the host itself.
  const std::string& node_name() const { return config_.name; }
  World* world() { return world_; }
  mem::HostPhysicalMemory& phys() { return phys_; }
  mem::KsmDaemon& ksm() { return ksm_; }
  hv::Hypervisor& hypervisor() { return hv_; }
  const World::HostConfig& config() const { return config_; }

  // --- VM management ---

  /// `boot_touched_mib` overrides the per-host default boot working set
  /// (the rootkit VM boots a minimal headless system and touches far less
  /// RAM than a workstation guest).
  Result<VirtualMachine*> launch_vm(
      const MachineConfig& config,
      std::optional<std::uint64_t> boot_touched_mib = std::nullopt);
  /// Launches from a raw qemu command line (appends it to shell history —
  /// the attacker's recon later reads it back).
  Result<VirtualMachine*> launch_vm_cmdline(const std::string& cmdline);

  /// SIGKILLs the QEMU process: the VM and everything nested inside it
  /// disappears. Any outstanding pointers to the VM become invalid.
  Status kill_vm(VmId id);

  std::vector<VirtualMachine*> vms();
  Result<VirtualMachine*> find_vm(VmId id);
  Result<VirtualMachine*> find_vm_by_name(const std::string& name);

  // --- host process table & shell (recon surface) ---

  struct HostProcess {
    Pid pid;
    std::string comm;
    std::string cmdline;
    VmId vm = VmId::invalid();  // valid for qemu processes
  };

  /// `ps -ef`-equivalent: all host processes, qemu ones with full cmdline.
  std::vector<HostProcess> ps() const;

  const std::vector<std::string>& shell_history() const { return history_; }
  void append_history(std::string line) { history_.push_back(std::move(line)); }

  Result<Pid> pid_of_vm(VmId id) const;
  Result<VmId> vm_of_pid(Pid pid) const;

  /// Root-only: rewrites the recorded PID of a VM's QEMU process (the
  /// paper's post-migration PID fix-up — "the PID is just a variable in
  /// memory"). Fails if `desired` is in use by a live process.
  Status swap_process_pid(VmId id, Pid desired);

  /// Root-only: doctors the command line `ps` reports for a VM's QEMU
  /// process (prctl/argv rewriting — the impersonation finishing touch).
  Status set_process_cmdline(VmId id, std::string cmdline);

  /// Opens the QEMU monitor multiplexed on a host telnet port.
  Result<QemuMonitor*> connect_monitor(std::uint16_t telnet_port);

  std::uint64_t next_os_seed() { return os_seed_rng_.next_u64(); }

 private:
  friend class VirtualMachine;

  World* world_;
  World::HostConfig config_;
  mem::HostPhysicalMemory phys_;
  hv::Hypervisor hv_;
  mem::KsmDaemon ksm_;
  std::vector<std::unique_ptr<VirtualMachine>> vms_;
  std::vector<HostProcess> procs_;
  std::vector<std::string> history_;
  IdAllocator<VmId> vm_ids_;
  std::int32_t next_pid_ = 1207;
  Rng os_seed_rng_;
};

}  // namespace csk::vmm
