/// \file
/// VirtualMachine: one QEMU/KVM guest, at any nesting level.
///
/// A top-level VM is a QEMU process on the host: its RAM is a root
/// AddressSpace over host physical memory (registered with KSM, as QEMU
/// marks guest RAM MADV_MERGEABLE). A nested VM is a QEMU process *inside a
/// guest*: its RAM is a view aliasing a region of the parent guest's memory,
/// and it is scheduled by the parent's (L1) hypervisor. That aliasing is
/// what the whole paper turns on — the nested victim's pages physically live
/// inside the rootkit VM's RAM, visible to host-side KSM but opaque to
/// single-level VMI.
///
/// The root AddressSpace is sized at 4x the configured RAM: it models the
/// QEMU *process virtual arena*, inside which guest RAM, the nested guest's
/// RAM, and device buffers all live (Linux overcommit is what lets a 1 GiB
/// rootkit VM host a 1 GiB nested VM, and the model preserves that).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "guestos/os.h"
#include "hv/hypervisor.h"
#include "mem/addr_space.h"
#include "net/network.h"
#include "net/port_forward.h"
#include "sim/simulator.h"
#include "vmm/machine_config.h"

namespace csk::vmm {

class Host;
class World;
class QemuMonitor;
class MigrationJob;

enum class VmState {
  kIncoming,     // "-incoming": paused, waiting for migration data
  kRunning,
  kPaused,
  kPostMigrate,  // source side after a completed outgoing migration
  kShutdown,
};

const char* vm_state_name(VmState s);

/// virtio-blk runtime counters (what `info blockstats` prints).
struct BlockDeviceState {
  DriveConfig config;
  std::uint64_t rd_bytes = 0;
  std::uint64_t wr_bytes = 0;
  std::uint64_t rd_ops = 0;
  std::uint64_t wr_ops = 0;
};

struct NetDeviceState {
  NetdevConfig config;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
};

/// Pages-per-second dirty-rate profile as a function of time since the
/// workload started (live migration's antagonist).
using DirtyRateFn = std::function<double(SimDuration elapsed)>;

class VirtualMachine {
 public:
  /// Constructed by Host::launch_vm (top-level) or
  /// VirtualMachine::launch_nested_vm (nested). Public for make_unique.
  struct CreateArgs {
    World* world;
    Host* host;
    hv::Hypervisor* hosting_hv;
    VirtualMachine* parent;  // null for top-level
    VmId id;
    MachineConfig config;
    std::uint64_t os_seed;
  };
  explicit VirtualMachine(CreateArgs args);
  ~VirtualMachine();
  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  VmId id() const { return id_; }
  const std::string& name() const { return config_.name; }
  const MachineConfig& config() const { return config_; }
  VmState state() const { return state_; }
  hv::Layer layer() const { return layer_; }
  Host* host() { return host_; }
  World* world() { return world_; }
  const World* world() const { return world_; }
  VirtualMachine* parent() { return parent_; }

  /// Unique network node name of this machine ("guest0#3").
  const std::string& node_name() const { return node_name_; }

  mem::AddressSpace& memory() { return *memory_; }
  const mem::AddressSpace& memory() const { return *memory_; }

  /// Null while the VM awaits incoming migration (no OS state yet) and
  /// after the OS has been migrated away.
  guestos::GuestOS* os() { return os_.get(); }
  const guestos::GuestOS* os() const { return os_.get(); }

  QemuMonitor& monitor() { return *monitor_; }

  hv::Hypervisor* hosting_hypervisor() { return hosting_hv_; }

  // --- lifecycle ---

  /// Boots the guest OS and touches the boot working set. Called by the
  /// launcher for non-incoming VMs.
  void boot(std::uint64_t boot_touched_mib);

  Status pause();
  Status resume();
  /// Powers the VM off. Nested VMs are shut down first.
  void shutdown();

  // --- nested virtualization ---

  /// Loads kvm.ko/kvm-intel.ko inside the guest. Requires the VM to have
  /// been launched with -cpu host (VMX exposed) and a booted OS. Loading
  /// kvm-intel materializes VMCS structures in guest RAM tagged with
  /// `vmcs_revision_id` — the artifact hypervisor memory forensics keys on
  /// (Graziano et al., the paper's §VI-E baseline).
  Result<hv::Hypervisor*> enable_nested_hypervisor(
      std::uint32_t vmcs_revision_id = kDefaultVmcsRevisionId);

  static constexpr std::uint32_t kDefaultVmcsRevisionId = 0x00000010;
  hv::Hypervisor* nested_hypervisor() { return nested_hv_.get(); }

  /// Launches a QEMU process inside this guest hosting a nested VM.
  /// `boot_touched_mib` overrides the host default (must fit the nested
  /// guest's RAM).
  Result<VirtualMachine*> launch_nested_vm(
      const MachineConfig& config,
      std::optional<std::uint64_t> boot_touched_mib = std::nullopt);
  std::vector<VirtualMachine*> nested_vms();
  Result<VirtualMachine*> find_nested_vm(const std::string& name);
  Status destroy_nested_vm(VmId id);

  // --- executing guest work ---

  /// Executes a batch of guest work: prices it at this VM's layer, records
  /// the implied VM exits with the hosting hypervisor, dirties the pages
  /// the batch writes, and advances the simulated clock (other machinery —
  /// ksmd, migrations — runs concurrently underneath). Returns the elapsed
  /// guest time. Precondition: the VM is running.
  SimDuration execute_ops(const hv::OpCost& cost);

  /// Whether a compiler cache is installed and warm in this guest (the
  /// paper's footnote-1 environment toggle; consulted by workload runners).
  bool ccache_enabled() const { return ccache_enabled_; }
  void set_ccache_enabled(bool enabled) { ccache_enabled_ = enabled; }

  // --- workload dirty-page pressure ---

  /// Attaches a dirty-rate profile; a 50 ms ticker dirties guest pages
  /// through the address space (and thus through dirty logging) while the
  /// VM runs. Replaces any previous source.
  void set_dirty_page_source(DirtyRateFn rate_fn);
  void clear_dirty_page_source();

  // --- network ---

  /// Binds a guest service on this machine's node (e.g. sshd on port 22).
  Result<EndpointId> bind_guest_port(Port port, net::RecvHandler handler);

  /// Host-side port forwarders created from the config's hostfwd rules.
  std::vector<net::PortForwarder*> forwarders();

  /// Retries starting any dormant hostfwd forwarders (used after the port's
  /// previous owner went away — the rootkit's takeover-after-kill step).
  Status activate_hostfwd();

  /// Re-multiplexes the monitor onto a different host telnet port (root on
  /// the host can re-point the socket; the rootkit uses this to take over
  /// the victim's monitor port after the kill).
  void set_monitor_telnet_port(std::uint16_t port) {
    config_.monitor.telnet_port = port;
  }

  // --- guest time virtualization (paper §VI-A) ---
  //
  // "events and timing measurements in L2 can be monitored and manipulated
  // by attackers from L1": the hypervisor controls the TSC/kvmclock its
  // guest reads. `tsc_scaling` < 1 makes intervals look shorter to the
  // guest than they are. Setting it is an action of whoever runs the
  // hosting hypervisor.

  double tsc_scaling() const { return tsc_scaling_; }
  void set_tsc_scaling(double scale) {
    CSK_CHECK_MSG(scale > 0, "tsc scaling must be positive");
    tsc_scaling_ = scale;
  }

  /// A duration as this guest's own clocks report it.
  SimDuration guest_observed(SimDuration actual) const {
    return actual * tsc_scaling_;
  }

  // --- migration plumbing (used by MigrationJob) ---

  /// Serializes incoming-chunk processing on the receive path and returns
  /// the completion time of this chunk.
  SimTime charge_receive(SimDuration processing);

  /// Installs the migrated OS (handoff at the end of an incoming
  /// migration) and starts running.
  void adopt_os(std::unique_ptr<guestos::GuestOS> os);

  /// Releases the OS to be transplanted into a migration destination.
  std::unique_ptr<guestos::GuestOS> release_os();

  /// Device-model state blob descriptor for stream validation.
  std::string device_state_descriptor() const;

  const std::vector<BlockDeviceState>& block_devices() const { return blk_; }
  const std::vector<NetDeviceState>& net_devices() const { return net_; }

  /// Simulated guest uptime (time since boot/adoption).
  SimDuration uptime() const;

 private:
  friend class Host;

  void start_dirty_ticker();
  void stop_dirty_ticker();
  void setup_hostfwd();

  World* world_;
  Host* host_;
  hv::Hypervisor* hosting_hv_;
  VirtualMachine* parent_;
  VmId id_;
  MachineConfig config_;
  hv::Layer layer_;
  VmState state_;
  std::string node_name_;

  std::vector<Gfn> parent_region_;  // gfns borrowed from parent (nested only)
  std::unique_ptr<mem::AddressSpace> memory_;
  std::unique_ptr<guestos::GuestOS> os_;
  std::unique_ptr<QemuMonitor> monitor_;
  std::unique_ptr<hv::Hypervisor> nested_hv_;
  std::vector<std::unique_ptr<VirtualMachine>> nested_;
  std::vector<std::unique_ptr<net::PortForwarder>> hostfwd_;
  std::vector<BlockDeviceState> blk_;
  std::vector<NetDeviceState> net_;
  std::vector<EndpointId> guest_endpoints_;
  EndpointId migration_listener_ = EndpointId::invalid();
  std::uint64_t incoming_stream_token_ = 0;  // first-come claim

  DirtyRateFn dirty_rate_;
  EventId dirty_ticker_ = EventId::invalid();
  SimTime workload_start_;
  double dirty_carry_ = 0.0;

  SimTime rx_busy_until_;
  SimTime boot_time_;
  double tsc_scaling_ = 1.0;
  bool ccache_enabled_ = false;
  IdAllocator<VmId> nested_ids_;
};

}  // namespace csk::vmm
