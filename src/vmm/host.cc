#include "vmm/host.h"

#include <algorithm>

#include "common/logging.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"

namespace csk::vmm {

World::World(std::uint64_t seed)
    : network_(&simulator_), rng_(seed) {}

World::~World() = default;

Host* World::make_host(HostConfig config) {
  for (const auto& h : hosts_) {
    CSK_CHECK_MSG(h->name() != config.name, "duplicate host name");
  }
  hosts_.push_back(std::make_unique<Host>(this, std::move(config)));
  return hosts_.back().get();
}

Host* World::make_host(const std::string& name) {
  HostConfig cfg;
  cfg.name = name;
  return make_host(std::move(cfg));
}

Result<Host*> World::find_host(const std::string& name) {
  for (const auto& h : hosts_) {
    if (h->name() == name) return h.get();
  }
  return not_found("no host named " + name);
}

std::uint64_t World::register_migration(MigrationJob* job) {
  CSK_CHECK(job != nullptr);
  const std::uint64_t token = next_migration_token_++;
  migrations_.emplace(token, job);
  return token;
}

void World::unregister_migration(std::uint64_t token) {
  migrations_.erase(token);
}

MigrationJob* World::find_migration(std::uint64_t token) {
  auto it = migrations_.find(token);
  return it == migrations_.end() ? nullptr : it->second;
}

Host::Host(World* world, World::HostConfig config)
    : world_(world),
      config_(std::move(config)),
      phys_(config_.mem_timing, 0x9E3779B9ull ^ std::hash<std::string>{}(config_.name)),
      hv_(&world->simulator(), &world->timing(), hv::Layer::kL0,
          "kvm@" + config_.name),
      ksm_(&world->simulator(), &phys_, config_.ksm),
      os_seed_rng_(0x05EEDull ^ std::hash<std::string>{}(config_.name)) {
  if (config_.ksm_enabled) ksm_.start();
}

Host::~Host() {
  for (auto& vm : vms_) vm->shutdown();
}

Result<VirtualMachine*> Host::launch_vm(
    const MachineConfig& config, std::optional<std::uint64_t> boot_touched_mib) {
  if (auto existing = find_vm_by_name(config.name); existing.is_ok()) {
    // QEMU itself allows duplicate -name values; so do we (the rootkit VM
    // deliberately reuses the victim's name). Only log it.
    CSK_DEBUG << "launching second VM named " << config.name;
  }
  const VmId id = vm_ids_.next();
  CSK_RETURN_IF_ERROR(
      hv_.attach_guest(id, config.name, config.cpu_host_passthrough));
  auto vm = std::make_unique<VirtualMachine>(VirtualMachine::CreateArgs{
      world_, this, &hv_, nullptr, id, config, next_os_seed()});
  VirtualMachine* raw = vm.get();
  vms_.push_back(std::move(vm));
  procs_.push_back(HostProcess{Pid(next_pid_), "qemu-system-x86",
                               config.to_command_line(), id});
  next_pid_ += 1 + static_cast<std::int32_t>(os_seed_rng_.uniform(40));
  if (!config.incoming_port) {
    raw->boot(boot_touched_mib.value_or(config_.boot_touched_mib));
  }
  return raw;
}

Result<VirtualMachine*> Host::launch_vm_cmdline(const std::string& cmdline) {
  CSK_ASSIGN_OR_RETURN(MachineConfig cfg,
                       MachineConfig::parse_command_line(cmdline));
  append_history(cmdline);
  return launch_vm(cfg);
}

Status Host::kill_vm(VmId id) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [&](const auto& vm) { return vm->id() == id; });
  if (it == vms_.end()) return not_found("no VM with id " + id.to_string());
  (*it)->shutdown();
  (void)hv_.detach_guest(id);
  vms_.erase(it);
  procs_.erase(std::remove_if(procs_.begin(), procs_.end(),
                              [&](const HostProcess& p) { return p.vm == id; }),
               procs_.end());
  return Status::ok();
}

std::vector<VirtualMachine*> Host::vms() {
  std::vector<VirtualMachine*> out;
  out.reserve(vms_.size());
  for (auto& vm : vms_) out.push_back(vm.get());
  return out;
}

Result<VirtualMachine*> Host::find_vm(VmId id) {
  for (auto& vm : vms_) {
    if (vm->id() == id) return vm.get();
  }
  return not_found("no VM with id " + id.to_string());
}

Result<VirtualMachine*> Host::find_vm_by_name(const std::string& name) {
  for (auto& vm : vms_) {
    if (vm->name() == name) return vm.get();
  }
  return not_found("no VM named " + name);
}

std::vector<Host::HostProcess> Host::ps() const { return procs_; }

Result<Pid> Host::pid_of_vm(VmId id) const {
  for (const HostProcess& p : procs_) {
    if (p.vm == id) return p.pid;
  }
  return not_found("no qemu process for VM " + id.to_string());
}

Result<VmId> Host::vm_of_pid(Pid pid) const {
  for (const HostProcess& p : procs_) {
    if (p.pid == pid) return p.vm;
  }
  return not_found("no process with pid " + pid.to_string());
}

Status Host::swap_process_pid(VmId id, Pid desired) {
  for (const HostProcess& p : procs_) {
    if (p.pid == desired && p.vm != id) {
      return already_exists("pid " + desired.to_string() + " is in use");
    }
  }
  for (HostProcess& p : procs_) {
    if (p.vm == id) {
      p.pid = desired;
      return Status::ok();
    }
  }
  return not_found("no qemu process for VM " + id.to_string());
}

Status Host::set_process_cmdline(VmId id, std::string cmdline) {
  for (HostProcess& p : procs_) {
    if (p.vm == id) {
      p.cmdline = std::move(cmdline);
      return Status::ok();
    }
  }
  return not_found("no qemu process for VM " + id.to_string());
}

Result<QemuMonitor*> Host::connect_monitor(std::uint16_t telnet_port) {
  if (telnet_port == 0) return invalid_argument("telnet port 0");
  for (auto& vm : vms_) {
    if (vm->config().monitor.telnet_port == telnet_port) {
      return &vm->monitor();
    }
  }
  return not_found("nothing listening on telnet port " +
                   std::to_string(telnet_port));
}

}  // namespace csk::vmm
