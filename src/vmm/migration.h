/// \file
/// Live migration (pre-copy, with post-copy as an extension).
///
/// Faithful-in-shape model of QEMU 2.9 RAM migration:
///   * iterative pre-copy: round 0 streams all of guest RAM, later rounds
///     stream the pages dirtied meanwhile (KVM dirty logging);
///   * zero pages are detected and cost 8 bytes of header instead of 4 KiB;
///   * the stream is throttled to a bandwidth cap (QEMU's classic default of
///     32 MiB/s — the single most load-bearing constant in Fig 4);
///   * convergence: when the remaining dirty set can be flushed within
///     max_downtime at the observed rate, the source pauses and the final
///     stop-and-copy round runs; a round cap forces convergence otherwise;
///   * the destination's receive path is charged per page at the
///     destination's virtualization layer — a *nested* destination processes
///     the stream an order of magnitude slower (Turtles exit multiplication),
///     which is what separates the paper's L0-L1 series from L0-L0.
///
/// The data plane really traverses SimNetwork (so the CloudSkulk forwarding
/// chain HOST:AAAA -> ROOTKIT:BBBB carries it and taps can observe it); page
/// *contents* ride a side table keyed by a stream token, mirroring how the
/// real socket payload is opaque bulk data.
///
/// ## Post-copy demand paging (opt-in)
///
/// With `postcopy_demand_paging` the destination runs a userfaultfd-style
/// remote-fault service: a guest touch of a page the background copy has
/// not delivered yet raises a `MIGFAULT <token> <gfn>` request that
/// traverses SimNetwork back to the source's fault endpoint
/// (`postcopy_fault_port`), which answers with an urgent out-of-band chunk
/// carrying the page plus a prefetch set (`postcopy_prefetch`). Per-fault
/// service latency is sampled into `MigrationStats::remote_fault_latency_ms`.
/// A liveness watchdog (`postcopy_watchdog`) bounds how long the
/// destination will wait without stream progress before resolving the job:
/// complete from the surviving in-flight set, roll execution back to the
/// paused source when the destination has not diverged, or terminate with a
/// typed `StatusCode::kDataLoss` report — a post-copy job never hangs and
/// never silently "succeeds" with missing pages.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/retry.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"
#include "mem/page.h"
#include "net/packet.h"
#include "vmm/vm.h"

namespace csk::vmm {

class World;

/// Prefetch policy for the post-copy remote-fault service: what rides along
/// with a demanded page in its fault-service chunk.
enum class PostCopyPrefetch {
  kNone,      // exactly the faulted page
  kLinear,    // readahead: [fault, fault + window)
  kLocality,  // window centered on the fault: [fault - window/2, fault + window/2)
};

const char* postcopy_prefetch_name(PostCopyPrefetch policy);

/// Terminal classification of a post-copy job (kNone for pre-copy jobs and
/// for post-copy jobs that never reached the demand plane).
enum class PostCopyOutcome {
  kNone,
  kCompleted,              // background copy + fault service drained normally
  kCompletedFromInflight,  // watchdog fired but the in-flight set covered RAM
  kRecoveredSourceResume,  // stranded, undiverged: execution rolled back
  kDataLoss,               // stranded with pages only the dead source held
};

const char* postcopy_outcome_name(PostCopyOutcome outcome);

struct MigrationConfig {
  /// migrate_set_speed: QEMU <= 2.9 defaults to 32 MiB/s.
  double bandwidth_limit_bytes_per_sec = 32.0 * 1024 * 1024;
  /// migrate_set_downtime.
  SimDuration max_downtime = SimDuration::millis(300);
  std::uint64_t chunk_bytes = 1 << 20;
  /// Safety valve: force stop-and-copy after this many rounds.
  int max_rounds = 300;
  bool post_copy = false;
  /// Capability negotiation + device enumeration before RAM streaming.
  SimDuration setup_time = SimDuration::millis(500);
  /// Non-RAM device state transfer during the blackout.
  SimDuration device_state_time = SimDuration::millis(80);
  /// Post-copy only: destination activation cost added to the blackout on
  /// top of device_state_time (vCPU thaw + device re-plumbing after the
  /// announce). Formerly a hard-coded 20 ms inside do_handoff().
  SimDuration postcopy_activate_time = SimDuration::millis(20);

  // --- recovery knobs (all inert by default: a job configured with the
  // --- defaults behaves bit-identically to the pre-fault-layer engine) ---

  /// Attempt budget + backoff between attempts. max_attempts = 1 disables
  /// retries; transient failures (injected aborts, round/chunk timeouts)
  /// are then terminal, exactly as before.
  RetryPolicy retry;
  /// Watchdog per pre-copy round: a round that has not completed within
  /// this duration fails the attempt (retryable). zero() = no watchdog.
  SimDuration round_timeout = SimDuration::zero();
  /// Retransmit timer per chunk: a chunk not acknowledged by the
  /// destination within this duration is re-sent (lossy-fabric recovery).
  /// zero() = no retransmits; a lost chunk then stalls the job forever.
  SimDuration chunk_timeout = SimDuration::zero();
  /// A chunk re-sent more than this many times fails the attempt.
  int max_chunk_retransmits = 16;
  /// Downtime SLA accounting: when non-zero, `MigrationStats::
  /// downtime_sla_met` records whether the blackout stayed within budget.
  SimDuration downtime_sla = SimDuration::zero();

  // --- post-copy demand-paging knobs (inert by default: with demand paging
  // --- off and no watchdog, post-copy behaves bit-identically to the
  // --- announce-then-bulk-copy engine) ---

  /// Remote-fault service: destination touches of not-yet-received pages
  /// raise MIGFAULT requests back to the source instead of waiting for the
  /// background copy to reach them.
  bool postcopy_demand_paging = false;
  /// What accompanies a demanded page in its fault-service chunk.
  PostCopyPrefetch postcopy_prefetch = PostCopyPrefetch::kNone;
  /// Page count of the prefetch window (policy-dependent shape).
  int postcopy_prefetch_window = 8;
  /// Source-node port of the fault-request return channel (the simulated
  /// userfaultfd wire). Only bound while a demand-paging job is live.
  std::uint16_t postcopy_fault_port = 4460;
  /// Post-copy liveness watchdog: with no stream progress (chunk applied or
  /// fault served) for this long after the handoff, the job resolves —
  /// completes from the in-flight set, rolls back to the source, or reports
  /// kDataLoss. zero() = no watchdog; a dead source then strands the guest
  /// (the pre-demand-paging behavior).
  SimDuration postcopy_watchdog = SimDuration::zero();
};

struct MigrationRoundStats {
  int round = 0;
  std::uint64_t pages = 0;       // content pages sent
  std::uint64_t zero_pages = 0;
  std::uint64_t wire_bytes = 0;
  SimDuration duration;
};

struct MigrationStats {
  bool completed = false;   // job reached a terminal state
  bool succeeded = false;
  bool forced_converged = false;  // hit max_rounds
  std::string error;
  SimDuration total_time;   // end-to-end, including setup
  SimDuration downtime;     // source pause -> destination resume
  int rounds = 0;
  std::uint64_t pages_transferred = 0;  // content pages, including re-sends
  std::uint64_t zero_pages = 0;
  std::uint64_t wire_bytes = 0;
  std::vector<MigrationRoundStats> round_log;

  // --- recovery accounting (all zero/true on a fault-free default run) ---
  int attempts = 0;                     // streaming attempts started
  int retries = 0;                      // attempts - 1, counted as they happen
  std::uint64_t chunk_retransmits = 0;  // chunks re-sent after timeout
  std::uint64_t stale_chunks = 0;       // late duplicates ignored at dest
  SimDuration backoff_total;            // summed inter-attempt backoff
  bool downtime_sla_met = true;         // only meaningful with downtime_sla
  std::vector<std::string> attempt_errors;  // transient per-attempt failures

  // --- post-copy demand-paging accounting (all zero/empty unless the
  // --- demand plane is enabled) ---
  std::uint64_t remote_faults = 0;         // fault requests raised at dest
  std::uint64_t remote_faults_served = 0;  // resolved by an arriving page
  std::uint64_t prefetch_pages = 0;        // pages sent beyond the demanded one
  std::uint64_t inflight_pages_salvaged = 0;  // applied from in_flight_ at resolve
  /// Per-fault service time, raise -> page applied at the destination.
  std::vector<double> remote_fault_latency_ms;
  /// summarize(remote_fault_latency_ms), computed at finish.
  SampleSummary remote_fault_summary;
  PostCopyOutcome postcopy_outcome = PostCopyOutcome::kNone;
  /// OK unless the job terminated with missing pages (then kDataLoss, with
  /// the unrecoverable page count in the message).
  Status postcopy_report;
};

class MigrationJob {
 public:
  using CompletionFn = std::function<void(const MigrationStats&)>;

  /// Prepares a migration of `source` towards `first_hop` (which may be a
  /// port forwarder, exactly as in the paper's AAAA -> BBBB relay).
  MigrationJob(World* world, VirtualMachine* source, net::NetAddr first_hop,
               MigrationConfig config = {});
  ~MigrationJob();
  MigrationJob(const MigrationJob&) = delete;
  MigrationJob& operator=(const MigrationJob&) = delete;

  /// Begins streaming (asynchronous; drive the simulator to make progress).
  void start();

  /// Aborts an in-progress migration (HMP migrate_cancel): the source
  /// resumes, the destination stays incomplete in incoming state. Terminal:
  /// an operator cancel is never retried.
  void cancel();

  /// Fault injection: kills the current streaming attempt as a *transient*
  /// failure. With a retry budget (`MigrationConfig::retry`) the job backs
  /// off and resumes — already-applied destination pages are not re-sent
  /// unless re-dirtied; without one this is equivalent to cancel().
  void inject_abort(std::string why);

  /// Fault injection: the source qemu process dies outright. Before the
  /// post-copy handoff this is terminal immediately (there is nothing left
  /// to stream from and nothing to retry). After the handoff the stream
  /// simply goes quiet: with a `postcopy_watchdog` the destination detects
  /// the silence and resolves (recover or kDataLoss); without one the job
  /// strands exactly as the pre-demand-paging engine did.
  void inject_source_failure(std::string why);

  /// Destination-side read touch of `gfn` by the running guest (the write
  /// stream is observed automatically via mem::AddressSpace). Post-handoff
  /// with demand paging enabled, a touch of a not-yet-received page raises
  /// a remote fault; otherwise a no-op.
  void postcopy_touch(Gfn gfn);

  /// True once inject_source_failure() fired.
  bool source_failed() const { return source_dead_; }

  /// Node carrying the source qemu process (the parent VM's node for a
  /// nested source) — the node a PostCopyFaultSpec partition cuts off.
  std::string source_node() const;

  /// Fault injection / live tuning: replaces the stream's bandwidth cap
  /// (migrate_set_speed while active). Applies from the next chunk on.
  void set_bandwidth_limit(double bytes_per_sec);
  double bandwidth_limit() const {
    return config_.bandwidth_limit_bytes_per_sec;
  }

  bool done() const { return stats_.completed; }
  const MigrationStats& stats() const { return stats_; }
  VirtualMachine* source() { return source_; }
  /// Known once the first chunk reached a listener; null before that.
  VirtualMachine* destination() { return dest_; }

  void on_completion(CompletionFn fn) { completion_ = std::move(fn); }

  std::uint64_t stream_token() const { return token_; }

  /// Destination-side entry point, invoked by the incoming VM's migration
  /// listener when a chunk packet arrives.
  void chunk_arrived(VirtualMachine* dest, std::uint64_t chunk_seq);

  /// Destination-side rejection (the -incoming socket was already claimed
  /// by another stream): the job fails and its source resumes.
  void stream_rejected(const std::string& why);

  /// Encodes/decodes the packet payload for a chunk.
  static std::string encode_chunk_payload(std::uint64_t token,
                                          std::uint64_t seq);
  struct ChunkRef {
    std::uint64_t token = 0;
    std::uint64_t seq = 0;
  };
  static Result<ChunkRef> parse_chunk_payload(std::string_view payload);

  /// Encodes/decodes the payload of a remote-fault request ("MIGFAULT
  /// <token> <gfn>"), the simulated userfaultfd wire format.
  static std::string encode_fault_payload(std::uint64_t token,
                                          std::uint64_t gfn);
  struct FaultRef {
    std::uint64_t token = 0;
    std::uint64_t gfn = 0;
  };
  static Result<FaultRef> parse_fault_payload(std::string_view payload);

 private:
  struct Chunk {
    std::uint64_t seq = 0;
    int round = 0;
    bool announce = false;  // post-copy: binds the destination, no data
    int retransmits = 0;    // times this chunk was re-sent after timeout
    std::uint64_t wire_bytes = 0;
    std::vector<std::pair<Gfn, mem::PageData>> pages;  // content pages
    std::vector<Gfn> zero_gfns;                        // zero-page markers
  };

  void begin_streaming();
  void begin_round(int round, std::vector<Gfn> pending);
  void pump();  // sends one paced chunk, then reschedules itself
  Chunk build_chunk();
  void send_chunk(Chunk chunk);
  void transmit(const Chunk& chunk);  // wire send + pacing + retransmit timer
  void maybe_retransmit(std::uint64_t seq);
  void chunk_processed(Chunk chunk);
  void end_round();
  void enter_final_round(std::vector<Gfn> pending);
  void do_handoff();
  void start_post_copy();
  /// Transient failure: retries with backoff if budget remains, else fail().
  void attempt_failed(std::string error);
  /// Begins the next streaming attempt after backoff, resuming from the
  /// pages the failed attempt still owed.
  void restart_attempt(std::vector<Gfn> owed);
  void fail(std::string error);
  void finish();
  SimDuration receive_processing_time(const Chunk& chunk) const;
  std::vector<Gfn> harvest_dirty();

  // --- post-copy demand-paging plane ---
  /// Installs the destination write observer + fault endpoint + watchdog
  /// right after the handoff (no-op when every knob is inert).
  void install_demand_plane();
  /// Destination write-observer body: divergence tracking + write faults.
  void on_dest_write(Gfn gfn);
  /// Raises a MIGFAULT request for `gfn` if it is missing and not already
  /// outstanding.
  void raise_remote_fault(Gfn gfn);
  /// Source-side fault endpoint handler.
  void on_fault_request(net::Packet&& pkt);
  /// Answers one fault with an urgent chunk: the page + the prefetch set.
  void serve_remote_fault(Gfn gfn);
  /// Resolves any outstanding faults covered by `chunk`, sampling their
  /// service latency.
  void resolve_faults_in(const Chunk& chunk);
  void resolve_one_fault(std::uint64_t gfn);
  void arm_watchdog();
  /// Watchdog expiry: classifies the stranded job — complete from the
  /// in-flight set, roll back to the source, or report kDataLoss.
  void resolve_stranded();

  /// Schedules a simulator event owned by this job: cancelled on
  /// destruction so no callback can outlive the job.
  void sched_at(SimTime when, std::function<void()> fn);

  World* world_;
  VirtualMachine* source_;
  VirtualMachine* dest_ = nullptr;
  net::NetAddr first_hop_;
  MigrationConfig config_;
  std::uint64_t token_ = 0;
  ConnId conn_;

  MigrationStats stats_;
  CompletionFn completion_;

  // Round state.
  int round_ = 0;
  bool final_round_ = false;
  bool handoff_done_ = false;  // post-copy: handoff precedes the bulk copy
  // Attempt epoch: bumped when an attempt dies so that every event the dead
  // attempt scheduled (pumps, acks, watchdogs) dispatches as a no-op.
  int attempt_epoch_ = 0;
  // Round serial: distinguishes "this round timed out" from "a later round
  // is running" in the round watchdog.
  int round_serial_ = 0;
  // Pages known applied at the destination (resume set for retries).
  std::unordered_set<std::uint64_t> applied_gfns_;
  MigrationRoundStats round_acc_;
  std::vector<Gfn> pending_;      // pages left to send this round
  std::size_t pending_index_ = 0;
  std::uint64_t next_chunk_seq_ = 0;
  std::size_t chunks_outstanding_ = 0;
  bool round_send_done_ = false;
  std::map<std::uint64_t, Chunk> in_flight_;

  SimTime start_time_;
  SimTime round_start_;
  SimTime pause_time_;
  SimTime next_send_allowed_;
  double observed_rate_ = 32.0 * 1024 * 1024;  // bytes/s, updated per round
  std::vector<EventId> live_events_;

  // Post-copy demand-paging state (untouched unless the plane is enabled).
  bool source_dead_ = false;      // inject_source_failure() fired
  bool dest_diverged_ = false;    // destination guest wrote post-handoff
  bool applying_chunk_ = false;   // suppress the observer for our own writes
  bool observer_installed_ = false;
  bool fault_endpoint_bound_ = false;
  EndpointId fault_endpoint_;
  /// Outstanding fault requests: gfn -> raise time (for latency sampling).
  std::map<std::uint64_t, SimTime> outstanding_faults_;
  SimTime last_postcopy_progress_;
};

}  // namespace csk::vmm
