#include "ckpt/ckpt.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/hash.h"
#include "common/hexcodec.h"

namespace csk::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST.json";

Result<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return not_found("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return unavailable("read error on " + path);
  return out;
}

Result<std::string> member_string(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    return invalid_argument(std::string("checkpoint: missing string '") + key +
                            "'");
  }
  return v->as_string();
}

Result<std::uint64_t> member_hex(const obs::JsonValue& obj, const char* key) {
  CSK_ASSIGN_OR_RETURN(std::string s, member_string(obj, key));
  return parse_hex_u64(s);
}

Result<double> member_hex_double(const obs::JsonValue& obj, const char* key) {
  CSK_ASSIGN_OR_RETURN(std::string s, member_string(obj, key));
  return parse_hex_double(s);
}

Result<const obs::JsonValue*> member_array(const obs::JsonValue& obj,
                                           const char* key) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_array()) {
    return invalid_argument(std::string("checkpoint: missing array '") + key +
                            "'");
  }
  return v;
}

/// Sequence encoded in "ckpt-<digits>.json", or 0 when the name does not
/// match the store's naming scheme.
std::uint64_t sequence_from_filename(const std::string& name) {
  if (!name.starts_with("ckpt-") || !name.ends_with(".json")) return 0;
  const std::string digits = name.substr(5, name.size() - 5 - 5);
  if (digits.empty()) return 0;
  std::uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

// --------------------------------------------------------- payload codecs

obs::JsonValue FleetCheckpoint::to_payload() const {
  obs::JsonValue shards = obs::JsonValue::array();
  for (const ShardRecord& r : completed) {
    obs::JsonValue values = obs::JsonValue::object();
    for (const auto& [k, v] : r.values) values.set(k, hex_double(v));
    obs::JsonValue faults = obs::JsonValue::array();
    for (const FaultRecord& f : r.faults) {
      faults.push(obs::JsonValue::object()
                      .set("at_ns", hex_u64(static_cast<std::uint64_t>(f.at_ns)))
                      .set("kind", f.kind)
                      .set("detail", f.detail));
    }
    shards.push(
        obs::JsonValue::object()
            .set("index", hex_u64(r.index))
            .set("name", r.name)
            .set("seed", hex_u64(r.seed))
            .set("values", std::move(values))
            .set("faults", std::move(faults))
            .set("status_code", static_cast<int>(r.status_code))
            .set("status_message", r.status_message)
            .set("metrics", r.metrics.to_exact_json())
            .set("digest", r.digest)
            .set("wall_ns", hex_u64(static_cast<std::uint64_t>(r.wall_ns))));
  }
  return obs::JsonValue::object()
      .set("root_seed", hex_u64(root_seed))
      .set("shard_count", hex_u64(shard_count))
      .set("sequence", hex_u64(sequence))
      .set("completed", std::move(shards));
}

Result<FleetCheckpoint> FleetCheckpoint::from_payload(
    const obs::JsonValue& v) {
  if (!v.is_object()) return invalid_argument("checkpoint payload not an object");
  FleetCheckpoint out;
  CSK_ASSIGN_OR_RETURN(out.root_seed, member_hex(v, "root_seed"));
  CSK_ASSIGN_OR_RETURN(out.shard_count, member_hex(v, "shard_count"));
  CSK_ASSIGN_OR_RETURN(out.sequence, member_hex(v, "sequence"));
  CSK_ASSIGN_OR_RETURN(const obs::JsonValue* shards,
                       member_array(v, "completed"));
  for (const obs::JsonValue& s : shards->as_array()) {
    if (!s.is_object()) return invalid_argument("shard record not an object");
    ShardRecord r;
    CSK_ASSIGN_OR_RETURN(r.index, member_hex(s, "index"));
    CSK_ASSIGN_OR_RETURN(r.name, member_string(s, "name"));
    CSK_ASSIGN_OR_RETURN(r.seed, member_hex(s, "seed"));

    const obs::JsonValue* values = s.find("values");
    if (values == nullptr || !values->is_object()) {
      return invalid_argument("shard record: missing 'values'");
    }
    for (const auto& [k, val] : values->as_object()) {
      if (!val.is_string()) return invalid_argument("shard value not hex");
      CSK_ASSIGN_OR_RETURN(double d, parse_hex_double(val.as_string()));
      r.values.emplace(k, d);
    }

    CSK_ASSIGN_OR_RETURN(const obs::JsonValue* faults,
                         member_array(s, "faults"));
    for (const obs::JsonValue& f : faults->as_array()) {
      if (!f.is_object()) return invalid_argument("fault record not an object");
      FaultRecord fr;
      CSK_ASSIGN_OR_RETURN(std::uint64_t at, member_hex(f, "at_ns"));
      fr.at_ns = static_cast<std::int64_t>(at);
      CSK_ASSIGN_OR_RETURN(fr.kind, member_string(f, "kind"));
      CSK_ASSIGN_OR_RETURN(fr.detail, member_string(f, "detail"));
      r.faults.push_back(std::move(fr));
    }

    const obs::JsonValue* code = s.find("status_code");
    if (code == nullptr || !code->is_number()) {
      return invalid_argument("shard record: missing 'status_code'");
    }
    const int code_int = static_cast<int>(code->as_number());
    if (code_int < 0 || code_int > static_cast<int>(StatusCode::kDataLoss)) {
      return invalid_argument("shard record: status_code out of range");
    }
    r.status_code = static_cast<StatusCode>(code_int);
    CSK_ASSIGN_OR_RETURN(r.status_message, member_string(s, "status_message"));

    const obs::JsonValue* metrics = s.find("metrics");
    if (metrics == nullptr) {
      return invalid_argument("shard record: missing 'metrics'");
    }
    CSK_ASSIGN_OR_RETURN(r.metrics,
                         obs::MetricsSnapshot::from_exact_json(*metrics));
    CSK_ASSIGN_OR_RETURN(r.digest, member_string(s, "digest"));
    CSK_ASSIGN_OR_RETURN(std::uint64_t wall, member_hex(s, "wall_ns"));
    r.wall_ns = static_cast<std::int64_t>(wall);
    out.completed.push_back(std::move(r));
  }
  return out;
}

// ----------------------------------------------------------------- store

CheckpointStore::CheckpointStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string CheckpointStore::checkpoint_filename(std::uint64_t sequence) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06llu.json",
                static_cast<unsigned long long>(sequence));
  return buf;
}

Status CheckpointStore::init() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return unavailable("cannot create checkpoint directory " + directory_ +
                       ": " + ec.message());
  }
  // Continue the sequence after everything already on disk — journaled
  // checkpoints and orphans alike — so a resumed run never reuses a name.
  std::uint64_t max_seq = 0;
  manifest_.clear();
  const auto manifest_text = read_file(directory_ + "/" + kManifestName);
  if (manifest_text.is_ok()) {
    // An unreadable or corrupted manifest is not fatal: recovery falls back
    // to the directory scan, and the next write rebuilds the journal.
    const auto doc = obs::JsonValue::parse(manifest_text.value());
    const obs::JsonValue* entries =
        doc.is_ok() ? doc.value().find("entries") : nullptr;
    if (entries != nullptr && entries->is_array()) {
      for (const obs::JsonValue& e : entries->as_array()) {
        if (!e.is_object()) continue;
        ManifestEntry entry;
        auto file = member_string(e, "file");
        auto seq = member_hex(e, "sequence");
        auto shards = member_hex(e, "completed_shards");
        auto hash = member_hex(e, "payload_fnv1a");
        if (!file.is_ok() || !seq.is_ok() || !shards.is_ok() || !hash.is_ok()) {
          continue;
        }
        entry.file = file.value();
        entry.sequence = seq.value();
        entry.completed_shards = shards.value();
        entry.payload_fnv1a = hash.value();
        manifest_.push_back(std::move(entry));
        max_seq = std::max(max_seq, seq.value());
      }
    }
  }
  std::error_code scan_ec;
  for (const auto& de : fs::directory_iterator(directory_, scan_ec)) {
    max_seq = std::max(
        max_seq, sequence_from_filename(de.path().filename().string()));
  }
  next_sequence_ = max_seq + 1;
  return Status::ok();
}

Status CheckpointStore::write_atomically(const std::string& final_path,
                                         const std::string& body,
                                         WritePhase half_phase,
                                         WritePhase done_phase,
                                         std::uint64_t sequence) {
  const std::string tmp = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return unavailable("cannot open " + tmp);
  // Two-stage write with a flush in between: the crash hook fires while the
  // temp file verifiably holds only a prefix — the torn-write case the
  // header checksum must catch if this file were ever (wrongly) trusted.
  const std::size_t half = body.size() / 2;
  bool ok = std::fwrite(body.data(), 1, half, f) == half;
  if (ok) std::fflush(f);
  hook(half_phase, sequence);
  ok = ok && std::fwrite(body.data() + half, 1, body.size() - half, f) ==
                 body.size() - half;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return unavailable("short write to " + tmp);
  }
  hook(done_phase, sequence);
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return unavailable("cannot rename " + tmp);
  }
  return Status::ok();
}

Status CheckpointStore::write_manifest(std::uint64_t sequence) {
  obs::JsonValue entries = obs::JsonValue::array();
  for (const ManifestEntry& e : manifest_) {
    entries.push(obs::JsonValue::object()
                     .set("file", e.file)
                     .set("sequence", hex_u64(e.sequence))
                     .set("completed_shards", hex_u64(e.completed_shards))
                     .set("payload_fnv1a", hex_u64(e.payload_fnv1a)));
  }
  const std::string body = obs::JsonValue::object()
                               .set("format_version", kFormatVersion)
                               .set("entries", std::move(entries))
                               .dump() +
                           "\n";
  return write_atomically(directory_ + "/" + kManifestName, body,
                          WritePhase::kManifestHalfWritten,
                          WritePhase::kCommitted, sequence);
}

Result<std::uint64_t> CheckpointStore::write(const FleetCheckpoint& ckpt) {
  const std::uint64_t sequence = next_sequence_++;
  FleetCheckpoint stamped = ckpt;
  stamped.sequence = sequence;
  const std::string payload = stamped.to_payload().dump();
  const ContentHash checksum = fnv1a(payload);
  const std::string header =
      obs::JsonValue::object()
          .set("format_version", kFormatVersion)
          .set("payload_bytes", static_cast<std::uint64_t>(payload.size()))
          .set("payload_fnv1a", hex_u64(checksum.value))
          .dump();
  const std::string body = header + "\n" + payload + "\n";

  const std::string file = checkpoint_filename(sequence);
  CSK_RETURN_IF_ERROR(write_atomically(directory_ + "/" + file, body,
                                       WritePhase::kTempHalfWritten,
                                       WritePhase::kTempWritten, sequence));
  hook(WritePhase::kRenamed, sequence);

  ManifestEntry entry;
  entry.file = file;
  entry.sequence = sequence;
  entry.completed_shards = stamped.completed.size();
  entry.payload_fnv1a = checksum.value;
  manifest_.push_back(entry);
  const Status manifest_st = write_manifest(sequence);
  if (!manifest_st.is_ok()) {
    // The checkpoint itself is durable (directory scan will find it); the
    // stale journal is a recoverable condition, not a lost checkpoint.
    manifest_.pop_back();
    return manifest_st;
  }
  ++writes_;
  return sequence;
}

Result<FleetCheckpoint> CheckpointStore::load_file(
    const std::string& path) const {
  CSK_ASSIGN_OR_RETURN(std::string body, read_file(path));
  const std::size_t newline = body.find('\n');
  if (newline == std::string::npos) {
    return data_loss("checkpoint " + path + ": no header line");
  }
  const auto header = obs::JsonValue::parse(body.substr(0, newline));
  if (!header.is_ok()) {
    return data_loss("checkpoint " + path +
                     ": unparseable header: " + header.status().message());
  }
  const obs::JsonValue* version = header.value().find("format_version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->as_number()) != kFormatVersion) {
    return data_loss("checkpoint " + path + ": unsupported format version");
  }
  const obs::JsonValue* bytes = header.value().find("payload_bytes");
  const auto expected_hash = member_hex(header.value(), "payload_fnv1a");
  if (bytes == nullptr || !bytes->is_number() || !expected_hash.is_ok()) {
    return data_loss("checkpoint " + path + ": malformed header");
  }
  const auto payload_bytes = static_cast<std::size_t>(bytes->as_number());
  const std::string_view rest(body.data() + newline + 1,
                              body.size() - newline - 1);
  if (rest.size() != payload_bytes + 1 || rest.back() != '\n') {
    return data_loss("checkpoint " + path + ": torn write (" +
                     std::to_string(rest.size()) + " bytes, expected " +
                     std::to_string(payload_bytes + 1) + ")");
  }
  const std::string_view payload = rest.substr(0, payload_bytes);
  if (fnv1a(payload).value != expected_hash.value()) {
    return data_loss("checkpoint " + path + ": checksum mismatch");
  }
  const auto doc = obs::JsonValue::parse(payload);
  if (!doc.is_ok()) {
    return data_loss("checkpoint " + path +
                     ": unparseable payload: " + doc.status().message());
  }
  auto parsed = FleetCheckpoint::from_payload(doc.value());
  if (!parsed.is_ok()) {
    return data_loss("checkpoint " + path + ": " +
                     parsed.status().message());
  }
  return std::move(parsed).take();
}

Result<FleetCheckpoint> CheckpointStore::load_latest() const {
  // Candidate set: everything the journal knows plus everything on disk (a
  // crash between the checkpoint rename and the manifest rename leaves a
  // good file the journal has never heard of).
  std::map<std::uint64_t, std::string> by_sequence;  // sequence -> basename
  for (const ManifestEntry& e : manifest_) {
    by_sequence.emplace(e.sequence, e.file);
  }
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(directory_, ec)) {
    const std::string name = de.path().filename().string();
    const std::uint64_t seq = sequence_from_filename(name);
    if (seq != 0) by_sequence.emplace(seq, name);
  }
  std::string failures;
  for (auto it = by_sequence.rbegin(); it != by_sequence.rend(); ++it) {
    auto loaded = load_file(directory_ + "/" + it->second);
    if (loaded.is_ok()) return loaded;
    failures += " [" + loaded.status().message() + "]";
  }
  return not_found("no usable checkpoint in " + directory_ +
                   (failures.empty() ? "" : ";" + failures));
}

}  // namespace csk::ckpt
