/// \file
/// csk::ckpt — crash-consistent checkpoint/restore for fleet runs.
///
/// The paper's CloudSkulk installation rides QEMU's save/restore-style live
/// migration; this subsystem gives the *simulator itself* the same
/// property: a long fleet sweep can be killed at any instant — between
/// shards, mid-checkpoint-write, mid-manifest-update — and resumed to a
/// `FleetReport` that is byte-identical to an uninterrupted run.
///
/// Durability protocol (write path):
///   1. serialize the payload (bit-exact: every u64 and double travels as a
///      hex string, common/hexcodec) and checksum it with FNV-1a;
///   2. write `ckpt-<seq>.json.tmp` — a one-line header carrying the format
///      version, payload byte count and checksum, then the payload bytes;
///   3. rename(2) it to `ckpt-<seq>.json` (atomic on POSIX: readers see the
///      old set of files or the new one, never a half-file under the final
///      name);
///   4. rewrite `MANIFEST.json` the same temp-then-rename way, appending a
///      journal entry {file, sequence, completed shards, checksum}.
///
/// Recovery protocol (read path): every candidate — manifest entries first,
/// then a directory scan for checkpoint files the manifest never recorded
/// (a crash between steps 3 and 4) — is verified against its embedded
/// header (size + checksum) before use; `load_latest()` returns the
/// newest candidate that verifies. A torn or bit-flipped file is therefore
/// always *detected* (typed `kDataLoss` error, never a wrong payload) and
/// never masks an older good checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace csk::ckpt {

/// Bumped on any incompatible change to the header or payload layout.
inline constexpr int kFormatVersion = 1;

/// One delivered fault from a shard's injector log (fault::InjectedFault,
/// flattened so csk_ckpt does not depend on csk_fault).
struct FaultRecord {
  std::int64_t at_ns = 0;
  std::string kind;
  std::string detail;
};

/// Everything needed to reconstruct one completed shard's ShardResult
/// exactly — values, fault log, status, metrics snapshot and the canonical
/// digest the fleet's determinism machinery byte-compares.
struct ShardRecord {
  std::uint64_t index = 0;
  std::string name;
  std::uint64_t seed = 0;
  std::map<std::string, double> values;
  std::vector<FaultRecord> faults;
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  obs::MetricsSnapshot metrics;
  std::string digest;
  std::int64_t wall_ns = 0;  // informational; never part of determinism
};

/// A consistent snapshot of a fleet run: the RNG root seed, the size of the
/// shard universe, and the records of every shard known complete when the
/// checkpoint was cut. Shards absent from `completed` were pending or
/// in-flight — resume re-runs them from their derived seeds, which is what
/// makes re-execution exactly-once *in effect*: a shard is either restored
/// bit-for-bit or recomputed from scratch, never half of each.
struct FleetCheckpoint {
  std::uint64_t root_seed = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t sequence = 0;  // assigned by CheckpointStore::write
  std::vector<ShardRecord> completed;  // sorted by shard index

  obs::JsonValue to_payload() const;
  static Result<FleetCheckpoint> from_payload(const obs::JsonValue& v);
};

/// Stages of the two-file commit, in order. The crash harness installs a
/// hook that SIGKILLs the process at a chosen (phase, sequence) point to
/// prove every prefix of the protocol recovers.
enum class WritePhase {
  kTempHalfWritten,      // temp file holds only a prefix of its bytes
  kTempWritten,          // temp complete, final name not yet linked
  kRenamed,              // checkpoint durable; manifest still the old one
  kManifestHalfWritten,  // manifest temp holds only a prefix
  kCommitted,            // both renames done
};

/// Test-only crash injection: called during write() at each phase with the
/// sequence being written. Production runs leave it unset.
using CrashHook = std::function<void(WritePhase, std::uint64_t sequence)>;

/// One journal line of MANIFEST.json.
struct ManifestEntry {
  std::string file;  // basename within the store directory
  std::uint64_t sequence = 0;
  std::uint64_t completed_shards = 0;
  std::uint64_t payload_fnv1a = 0;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Creates the directory (recursively) and loads any existing manifest so
  /// a resumed run continues the sequence numbering. Idempotent.
  Status init();

  /// Durably commits one checkpoint per the class-comment protocol and
  /// returns its assigned sequence number.
  Result<std::uint64_t> write(const FleetCheckpoint& ckpt);

  /// The newest checkpoint that passes verification. Candidates come from
  /// the manifest and from a directory scan (files a crash orphaned before
  /// the manifest caught up). kNotFound when no usable checkpoint exists.
  Result<FleetCheckpoint> load_latest() const;

  /// Loads and verifies exactly one checkpoint file. Torn or corrupted
  /// contents come back as kDataLoss with the failing check named.
  Result<FleetCheckpoint> load_file(const std::string& path) const;

  /// The journal as last committed (empty when no manifest exists).
  const std::vector<ManifestEntry>& manifest() const { return manifest_; }

  /// Checkpoints committed by this store instance's write() calls.
  std::uint64_t writes() const { return writes_; }

  void set_crash_hook(CrashHook hook) { crash_hook_ = std::move(hook); }

  static std::string checkpoint_filename(std::uint64_t sequence);

 private:
  Status write_atomically(const std::string& final_path,
                          const std::string& body, WritePhase half_phase,
                          WritePhase done_phase, std::uint64_t sequence);
  Status write_manifest(std::uint64_t sequence);
  void hook(WritePhase phase, std::uint64_t sequence) const {
    if (crash_hook_) crash_hook_(phase, sequence);
  }

  std::string directory_;
  std::vector<ManifestEntry> manifest_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t writes_ = 0;
  CrashHook crash_hook_;
};

}  // namespace csk::ckpt
