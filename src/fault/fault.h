/// \file
/// Declarative fault plans for the CloudSkulk simulation.
///
/// A FaultPlan is pure data: a seed plus lists of fault windows, each
/// expressed as an offset from the moment the plan is armed. The
/// csk::fault::Injector turns a plan into scheduled simulator events and a
/// network fault hook; the same plan armed at the same point of the same
/// scenario replays the exact same fault schedule (determinism contract —
/// all randomness flows from `FaultPlan::seed`).
///
/// Every field defaults to "no fault": an empty plan armed over a scenario
/// leaves its behavior bit-identical to a run without the injector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace csk::fault {

/// Degrades the fabric between two nodes (or everywhere) for a window.
struct NetFaultSpec {
  /// Endpoints of the affected link, order-independent. Both empty = every
  /// link (fabric-wide weather).
  std::string link_a;
  std::string link_b;
  /// Window start, as an offset from Injector::arm().
  SimDuration at = SimDuration::zero();
  SimDuration duration = SimDuration::seconds(1);
  /// I.i.d. per-packet drop probability in [0,1].
  double loss_rate = 0.0;
  /// Uniform extra latency in [0, jitter_max) added per surviving packet.
  SimDuration jitter_max = SimDuration::zero();
  /// Hard partition: every matching packet in the window is dropped.
  bool partition = false;
};

/// Kills the current streaming attempt of every attached migration as a
/// transient failure (retryable when the job has a retry budget).
struct MigrationAbortSpec {
  SimDuration at = SimDuration::zero();
  std::string reason = "injected mid-round abort";
};

/// Multiplies the bandwidth cap of every attached migration by `factor`
/// for the window, then restores the cap that was in effect.
struct BandwidthCollapseSpec {
  SimDuration at = SimDuration::zero();
  SimDuration duration = SimDuration::seconds(5);
  double factor = 0.1;
};

/// Transient host memory pressure: scales the named host's hypervisor
/// exit/op costs by `multiplier` for the window (reclaim thrash).
struct MemoryPressureSpec {
  std::string host;
  SimDuration at = SimDuration::zero();
  SimDuration duration = SimDuration::seconds(5);
  double multiplier = 4.0;
};

/// Stalls detection probes: detectors consulting Injector::stall_probe()
/// see a nonzero remaining stall inside the window and either wait it out
/// or degrade to an INCONCLUSIVE verdict per their probe_timeout.
struct ProbeStallSpec {
  SimDuration at = SimDuration::zero();
  SimDuration duration = SimDuration::seconds(30);
};

/// Post-copy-targeted source failure, aimed inside the window between the
/// handoff and the end of the background copy — the interval where the
/// destination runs a guest whose memory still partly lives on the source.
struct PostCopyFaultSpec {
  enum class Kind {
    /// Drops every packet touching the source node of each attached
    /// migration (both directions: bulk chunks out, MIGFAULT requests in).
    kPartitionSourceLink,
    /// The source qemu process dies (MigrationJob::inject_source_failure).
    kKillSource,
  };
  Kind kind = Kind::kPartitionSourceLink;
  /// Onset, as an offset from Injector::arm().
  SimDuration at = SimDuration::zero();
  /// Partition only: window length; zero() = open-ended (never heals).
  SimDuration duration = SimDuration::zero();
  std::string reason = "injected post-copy source failure";
};

/// A complete declarative fault scenario.
struct FaultPlan {
  /// Seeds the injector's private Rng; the sole source of randomness for
  /// loss and jitter draws.
  std::uint64_t seed = 1;
  std::vector<NetFaultSpec> net;
  std::vector<MigrationAbortSpec> migration_aborts;
  std::vector<BandwidthCollapseSpec> bandwidth_collapses;
  std::vector<MemoryPressureSpec> memory_pressure;
  std::vector<ProbeStallSpec> probe_stalls;
  std::vector<PostCopyFaultSpec> postcopy;

  bool empty() const {
    return net.empty() && migration_aborts.empty() &&
           bandwidth_collapses.empty() && memory_pressure.empty() &&
           probe_stalls.empty() && postcopy.empty();
  }
};

/// One fault the injector actually delivered (the replay log). Two runs of
/// the same seeded plan over the same scenario produce identical logs.
struct InjectedFault {
  SimTime at;
  std::string kind;    // "net.drop", "net.delay", "migration.abort", ...
  std::string detail;  // human-readable specifics
};

}  // namespace csk::fault
