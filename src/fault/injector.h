/// \file
/// csk::fault::Injector — executes a FaultPlan against a live World.
///
/// The injector sits strictly *above* the layers it perturbs: net, hv, vmm
/// and detect expose neutral hooks (SimNetwork::set_fault_hook, Hypervisor::
/// set_memory_pressure, MigrationJob::inject_abort / set_bandwidth_limit,
/// detectors' set_stall_probe) and never include fault headers. arm()
/// installs the hook and schedules one event per fault window edge on the
/// simulation clock; disarm() (or destruction) cancels everything it
/// scheduled and uninstalls the hook, restoring any state it perturbed.
///
/// Determinism: the injector draws randomness only from its own Rng, seeded
/// by FaultPlan::seed, and only for packets matched by an active window —
/// the same plan armed at the same point of the same scenario yields a
/// bit-identical fault schedule (see `log()`).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "fault/fault.h"
#include "net/network.h"
#include "vmm/host.h"
#include "vmm/migration.h"

namespace csk::fault {

class Injector {
 public:
  /// Binds the plan to `world`. Nothing happens until arm().
  Injector(vmm::World* world, FaultPlan plan);
  ~Injector();
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Installs the network fault hook and schedules every fault window,
  /// offsets interpreted relative to the current simulated time. A window
  /// whose start is already past begins immediately. Precondition: not
  /// already armed, and no other fault hook installed on the network.
  void arm();

  /// Cancels all scheduled events, uninstalls the network hook and
  /// restores perturbed state (bandwidth caps, memory pressure). Safe to
  /// call when not armed. Does not clear the log.
  void disarm();

  bool armed() const { return armed_; }

  /// Registers a migration job as a target for abort and bandwidth-collapse
  /// specs. The job must outlive the injector or be detached first; a
  /// completed job is skipped at fire time.
  void attach_migration(vmm::MigrationJob* job);
  void detach_migration(vmm::MigrationJob* job);

  /// Remaining probe-stall duration at the current simulated time (zero
  /// when no stall window is active).
  SimDuration remaining_stall() const;

  /// The hook detectors install via set_stall_probe(): a callable bound to
  /// this injector returning remaining_stall(). The injector must outlive
  /// any detector holding it.
  std::function<SimDuration()> stall_probe();

  const FaultPlan& plan() const { return plan_; }

  /// Every fault actually delivered, in delivery order — the determinism
  /// witness (identical across same-seed runs) and the basis of the chaos
  /// bench's reporting.
  const std::vector<InjectedFault>& log() const { return log_; }

  /// Count of delivered faults of one kind ("net.drop", ...).
  std::uint64_t count(const std::string& kind) const;

 private:
  struct NetWindow {
    NetFaultSpec spec;
    SimTime start;
    SimTime end;
  };
  struct StallWindow {
    SimTime start;
    SimTime end;
  };
  /// An armed kPartitionSourceLink window. The affected node set is
  /// resolved lazily per packet from the attached jobs (MigrationJob::
  /// source_node()), so jobs may attach at any point before the window.
  struct PostCopyPartition {
    SimTime start;
    SimTime end;        // == start when the spec's duration was zero:
    bool open_ended;    // then the partition never heals
  };

  net::FaultDecision on_packet(const net::Packet& pkt,
                               const std::string& src_node,
                               const std::string& dst_node);
  void fire_migration_abort(const MigrationAbortSpec& spec);
  void fire_source_kill(const PostCopyFaultSpec& spec);
  /// True when `node` is the source node of an attached live migration.
  bool matches_attached_source(const std::string& node) const;
  void begin_bandwidth_collapse(const BandwidthCollapseSpec& spec,
                                std::size_t collapse_index);
  void end_bandwidth_collapse(std::size_t collapse_index);
  void begin_memory_pressure(const MemoryPressureSpec& spec);
  void end_memory_pressure(const MemoryPressureSpec& spec);
  void record(std::string kind, std::string detail);
  void sched(SimDuration offset, std::function<void()> fn);

  vmm::World* world_;
  FaultPlan plan_;
  Rng rng_;
  bool armed_ = false;
  SimTime arm_time_;
  std::vector<NetWindow> net_windows_;
  std::vector<StallWindow> stall_windows_;
  std::vector<PostCopyPartition> postcopy_partitions_;
  std::vector<vmm::MigrationJob*> jobs_;
  /// Saved caps for an in-progress bandwidth collapse: one entry per
  /// affected job, restored at window end (or disarm).
  std::vector<std::vector<std::pair<vmm::MigrationJob*, double>>>
      collapse_saved_;
  /// Hosts whose hypervisor currently runs under injected pressure
  /// (restored to 1.0 on disarm).
  std::vector<vmm::Host*> pressured_hosts_;
  std::vector<EventId> events_;
  std::vector<InjectedFault> log_;
};

}  // namespace csk::fault
