#include "fault/injector.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace csk::fault {

namespace {

bool link_matches(const NetFaultSpec& spec, const std::string& src,
                  const std::string& dst) {
  if (spec.link_a.empty() && spec.link_b.empty()) return true;  // every link
  return (spec.link_a == src && spec.link_b == dst) ||
         (spec.link_a == dst && spec.link_b == src);
}

}  // namespace

Injector::Injector(vmm::World* world, FaultPlan plan)
    : world_(world), plan_(std::move(plan)), rng_(plan_.seed) {
  CSK_CHECK(world != nullptr);
}

Injector::~Injector() { disarm(); }

void Injector::sched(SimDuration offset, std::function<void()> fn) {
  if (offset < SimDuration::zero()) offset = SimDuration::zero();
  events_.push_back(
      world_->simulator().schedule_after(offset, std::move(fn)));
}

void Injector::arm() {
  CSK_CHECK_MSG(!armed_, "injector already armed");
  CSK_CHECK_MSG(!world_->network().has_fault_hook(),
                "another fault hook is already installed");
  armed_ = true;
  arm_time_ = world_->simulator().now();

  // Net windows: evaluated lazily per packet by the hook; nothing to
  // schedule, the window bounds are fixed now.
  net_windows_.clear();
  for (const NetFaultSpec& spec : plan_.net) {
    CSK_CHECK(spec.loss_rate >= 0.0 && spec.loss_rate <= 1.0);
    NetWindow w;
    w.spec = spec;
    w.start = arm_time_ + spec.at;
    w.end = w.start + spec.duration;
    net_windows_.push_back(std::move(w));
  }
  postcopy_partitions_.clear();
  for (const PostCopyFaultSpec& spec : plan_.postcopy) {
    if (spec.kind == PostCopyFaultSpec::Kind::kKillSource) {
      sched(spec.at, [this, spec] { fire_source_kill(spec); });
      continue;
    }
    PostCopyPartition w;
    w.start = arm_time_ + spec.at;
    w.open_ended = spec.duration <= SimDuration::zero();
    w.end = w.open_ended ? w.start : w.start + spec.duration;
    postcopy_partitions_.push_back(w);
  }

  if (!net_windows_.empty() || !postcopy_partitions_.empty()) {
    world_->network().set_fault_hook(
        [this](const net::Packet& pkt, const std::string& src,
               const std::string& dst) { return on_packet(pkt, src, dst); });
  }

  stall_windows_.clear();
  for (const ProbeStallSpec& spec : plan_.probe_stalls) {
    StallWindow w;
    w.start = arm_time_ + spec.at;
    w.end = w.start + spec.duration;
    stall_windows_.push_back(w);
  }

  for (const MigrationAbortSpec& spec : plan_.migration_aborts) {
    sched(spec.at, [this, spec] { fire_migration_abort(spec); });
  }
  collapse_saved_.assign(plan_.bandwidth_collapses.size(), {});
  for (std::size_t i = 0; i < plan_.bandwidth_collapses.size(); ++i) {
    const BandwidthCollapseSpec& spec = plan_.bandwidth_collapses[i];
    // factor == 0 is a legal total-starvation window: MigrationJob clamps
    // the cap to its internal floor instead of dividing by zero.
    CSK_CHECK(spec.factor >= 0.0);
    sched(spec.at, [this, spec, i] { begin_bandwidth_collapse(spec, i); });
    sched(spec.at + spec.duration,
          [this, i] { end_bandwidth_collapse(i); });
  }
  for (const MemoryPressureSpec& spec : plan_.memory_pressure) {
    CSK_CHECK(spec.multiplier > 0.0);
    sched(spec.at, [this, spec] { begin_memory_pressure(spec); });
    sched(spec.at + spec.duration,
          [this, spec] { end_memory_pressure(spec); });
  }
}

void Injector::disarm() {
  if (!armed_) return;
  armed_ = false;
  for (EventId id : events_) world_->simulator().cancel(id);
  events_.clear();
  if (!net_windows_.empty() || !postcopy_partitions_.empty()) {
    world_->network().set_fault_hook(nullptr);
  }
  net_windows_.clear();
  postcopy_partitions_.clear();
  stall_windows_.clear();
  // Restore anything still perturbed mid-window.
  for (auto& saved : collapse_saved_) {
    for (auto& [job, limit] : saved) {
      if (!job->done()) job->set_bandwidth_limit(limit);
    }
    saved.clear();
  }
  for (vmm::Host* host : pressured_hosts_) {
    host->hypervisor().set_memory_pressure(1.0);
  }
  pressured_hosts_.clear();
}

void Injector::attach_migration(vmm::MigrationJob* job) {
  CSK_CHECK(job != nullptr);
  if (std::find(jobs_.begin(), jobs_.end(), job) == jobs_.end()) {
    jobs_.push_back(job);
  }
}

void Injector::detach_migration(vmm::MigrationJob* job) {
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
  for (auto& saved : collapse_saved_) {
    saved.erase(std::remove_if(saved.begin(), saved.end(),
                               [job](const auto& p) { return p.first == job; }),
                saved.end());
  }
}

SimDuration Injector::remaining_stall() const {
  if (!armed_) return SimDuration::zero();
  const SimTime now = world_->simulator().now();
  SimDuration remaining = SimDuration::zero();
  for (const StallWindow& w : stall_windows_) {
    if (now >= w.start && now < w.end) {
      remaining = std::max(remaining, w.end - now);
    }
  }
  return remaining;
}

std::function<SimDuration()> Injector::stall_probe() {
  return [this] { return remaining_stall(); };
}

std::uint64_t Injector::count(const std::string& kind) const {
  std::uint64_t n = 0;
  for (const InjectedFault& f : log_) {
    if (f.kind == kind) ++n;
  }
  return n;
}

void Injector::record(std::string kind, std::string detail) {
  obs::metrics().counter("fault.injected", {{"kind", kind}}).add();
  log_.push_back(InjectedFault{world_->simulator().now(), std::move(kind),
                               std::move(detail)});
}

bool Injector::matches_attached_source(const std::string& node) const {
  for (vmm::MigrationJob* job : jobs_) {
    if (job->done()) continue;
    if (job->source_node() == node) return true;
  }
  return false;
}

net::FaultDecision Injector::on_packet(const net::Packet& pkt,
                                       const std::string& src_node,
                                       const std::string& dst_node) {
  net::FaultDecision decision;
  const SimTime now = world_->simulator().now();
  for (const PostCopyPartition& w : postcopy_partitions_) {
    if (now < w.start) continue;
    if (!w.open_ended && now >= w.end) continue;
    if (!matches_attached_source(src_node) &&
        !matches_attached_source(dst_node)) {
      continue;
    }
    decision.drop = true;
    record("postcopy.partition", "source link cut " + src_node + "->" +
                                     dst_node + " seq " +
                                     std::to_string(pkt.seq));
    return decision;
  }
  for (const NetWindow& w : net_windows_) {
    if (now < w.start || now >= w.end) continue;
    if (!link_matches(w.spec, src_node, dst_node)) continue;
    if (w.spec.partition) {
      decision.drop = true;
      record("net.drop", "partition " + src_node + "->" + dst_node + " seq " +
                             std::to_string(pkt.seq));
      return decision;
    }
    if (w.spec.loss_rate > 0.0 && rng_.chance(w.spec.loss_rate)) {
      decision.drop = true;
      record("net.drop", "loss " + src_node + "->" + dst_node + " seq " +
                             std::to_string(pkt.seq));
      return decision;
    }
    if (w.spec.jitter_max > SimDuration::zero()) {
      const SimDuration extra = SimDuration(static_cast<std::int64_t>(
          rng_.uniform(static_cast<std::uint64_t>(w.spec.jitter_max.ns()))));
      decision.extra_latency += extra;
      record("net.delay", "jitter +" + extra.to_string() + " " + src_node +
                              "->" + dst_node);
    }
  }
  return decision;
}

void Injector::fire_migration_abort(const MigrationAbortSpec& spec) {
  for (vmm::MigrationJob* job : jobs_) {
    if (job->done()) continue;
    record("migration.abort", spec.reason);
    obs::tracer().instant("fault.migration_abort", world_->simulator().now(),
                          "fault");
    job->inject_abort(spec.reason);
  }
}

void Injector::fire_source_kill(const PostCopyFaultSpec& spec) {
  for (vmm::MigrationJob* job : jobs_) {
    if (job->done() || job->source_failed()) continue;
    record("postcopy.source_kill", spec.reason);
    obs::tracer().instant("fault.source_kill", world_->simulator().now(),
                          "fault");
    job->inject_source_failure(spec.reason);
  }
}

void Injector::begin_bandwidth_collapse(const BandwidthCollapseSpec& spec,
                                        std::size_t collapse_index) {
  CSK_CHECK(collapse_index < collapse_saved_.size());
  for (vmm::MigrationJob* job : jobs_) {
    if (job->done()) continue;
    const double saved = job->bandwidth_limit();
    job->set_bandwidth_limit(saved * spec.factor);
    record("migration.bandwidth_collapse",
           "cap x" + std::to_string(spec.factor));
    collapse_saved_[collapse_index].emplace_back(job, saved);
  }
}

void Injector::end_bandwidth_collapse(std::size_t collapse_index) {
  CSK_CHECK(collapse_index < collapse_saved_.size());
  for (auto& [job, limit] : collapse_saved_[collapse_index]) {
    if (job->done()) continue;
    job->set_bandwidth_limit(limit);
    record("migration.bandwidth_restore", "cap restored");
  }
  collapse_saved_[collapse_index].clear();
}

void Injector::begin_memory_pressure(const MemoryPressureSpec& spec) {
  Result<vmm::Host*> host = world_->find_host(spec.host);
  if (!host.is_ok()) {
    CSK_WARN << "memory-pressure spec names unknown host " << spec.host;
    return;
  }
  (*host)->hypervisor().set_memory_pressure(spec.multiplier);
  if (std::find(pressured_hosts_.begin(), pressured_hosts_.end(), *host) ==
      pressured_hosts_.end()) {
    pressured_hosts_.push_back(*host);
  }
  record("hv.memory_pressure",
         spec.host + " x" + std::to_string(spec.multiplier));
}

void Injector::end_memory_pressure(const MemoryPressureSpec& spec) {
  Result<vmm::Host*> host = world_->find_host(spec.host);
  if (!host.is_ok()) return;
  (*host)->hypervisor().set_memory_pressure(1.0);
  pressured_hosts_.erase(std::remove(pressured_hosts_.begin(),
                                     pressured_hosts_.end(), *host),
                         pressured_hosts_.end());
  record("hv.memory_pressure_restore", spec.host);
}

}  // namespace csk::fault
