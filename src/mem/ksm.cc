#include "mem/ksm.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace csk::mem {

KsmDaemon::KsmDaemon(sim::Simulator* simulator, HostPhysicalMemory* phys,
                     KsmConfig config)
    : simulator_(simulator), phys_(phys), config_(config) {
  CSK_CHECK(simulator != nullptr);
  CSK_CHECK(phys != nullptr);
  CSK_CHECK(config_.pages_per_scan > 0);
  m_scanned_ = &obs::metrics().counter("mem.ksm.pages_scanned");
  m_merges_ = &obs::metrics().counter("mem.ksm.merges");
  m_passes_ = &obs::metrics().counter("mem.ksm.full_passes");
  m_evictions_ = &obs::metrics().counter("mem.ksm.stale_stable_evictions");
}

KsmDaemon::~KsmDaemon() { stop(); }

void KsmDaemon::register_region(AddressSpace* root) {
  CSK_CHECK(root != nullptr);
  CSK_CHECK_MSG(!root->is_view(), "only root address spaces are scannable");
  if (is_registered(root)) return;
  Region region;
  region.as = root;
  region.stamps.assign(root->size_pages(), PageStamp{});
  regions_.push_back(std::move(region));
}

void KsmDaemon::unregister_region(AddressSpace* root) {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [root](const Region& r) { return r.as == root; });
  if (it == regions_.end()) return;
  const std::size_t idx = static_cast<std::size_t>(it - regions_.begin());

  // If the cursor is mid-scan inside the region being removed, its walk
  // position outlives the region (long-standing ksmd-model behavior): the
  // not-yet-visited gfns are materialized here and replayed against the
  // successor region, so batch accounting and the full-pass boundary land
  // exactly where they always did. Compute the tail before erasing.
  std::vector<Gfn> tail;
  if (idx == cursor_.region && cursor_.entered && cursor_.leftover.empty()) {
    for (Gfn g = cursor_.peek; g.valid();
         g = it->as->next_mapped(Gfn(g.value() + 1), cursor_.entry_epoch)) {
      tail.push_back(g);
    }
  }

  regions_.erase(it);
  if (regions_.empty()) {
    cursor_ = Cursor{};
    return;
  }
  if (idx < cursor_.region) {
    // The list shifted left under the cursor: follow it so the region being
    // scanned keeps its turn and its scan position. (Leaving the index
    // alone silently skipped one region and fired the full-pass boundary —
    // which clears the unstable tree — one region early.)
    --cursor_.region;
  } else if (idx == cursor_.region) {
    if (cursor_.region >= regions_.size()) {
      // Removed the last-index region while on it: wrap to the front and
      // start fresh (without counting a pass, as before).
      cursor_.region = 0;
      cursor_.entered = false;
      cursor_.peek = Gfn::invalid();
      cursor_.leftover.clear();
      cursor_.leftover_index = 0;
    } else if (cursor_.leftover.empty()) {
      // Successor region shifts into this index; replay the removed
      // region's remaining walk there. (If a leftover replay was already
      // running, it simply continues against the new occupant.)
      cursor_.leftover = std::move(tail);
      cursor_.leftover_index = 0;
      cursor_.entered = false;
      cursor_.peek = Gfn::invalid();
    }
  }
}

bool KsmDaemon::is_registered(const AddressSpace* root) const {
  return std::any_of(regions_.begin(), regions_.end(),
                     [root](const Region& r) { return r.as == root; });
}

void KsmDaemon::start() {
  if (task_.valid()) return;
  task_ = simulator_->schedule_periodic(config_.scan_interval, [this] {
    scan_batch(config_.pages_per_scan);
    return true;
  });
}

void KsmDaemon::stop() {
  if (!task_.valid()) return;
  simulator_->cancel(task_);
  task_ = EventId::invalid();
}

void KsmDaemon::scan_batch(std::size_t pages) {
  if (regions_.empty()) return;
  for (std::size_t i = 0; i < pages; ++i) {
    if (regions_.empty()) return;
    Region& region = regions_[cursor_.region];
    if (!cursor_.leftover.empty()) {
      // Replaying the walk of a region removed mid-visit against its
      // successor (see unregister_region). Gfns beyond the successor's end
      // still consume their slot in the batch.
      const Gfn gfn = cursor_.leftover[cursor_.leftover_index++];
      if (gfn.value() < region.as->size_pages()) examine(region, gfn);
      ++stats_.pages_scanned;
      m_scanned_->add();
      if (cursor_.leftover_index >= cursor_.leftover.size()) {
        cursor_.leftover.clear();
        cursor_.leftover_index = 0;
        advance_cursor();
      }
      continue;
    }
    if (!cursor_.entered) {
      cursor_.entered = true;
      cursor_.entry_epoch = region.as->map_epoch();
      cursor_.peek = region.as->next_mapped(Gfn(0), cursor_.entry_epoch);
    }
    if (!cursor_.peek.valid()) {
      // Empty region: advancing costs this iteration but scans no page,
      // exactly like the old snapshot cursor.
      advance_cursor();
      continue;
    }
    const Gfn gfn = cursor_.peek;
    examine(region, gfn);
    ++stats_.pages_scanned;
    m_scanned_->add();
    cursor_.peek = region.as->next_mapped(Gfn(gfn.value() + 1),
                                          cursor_.entry_epoch);
    if (!cursor_.peek.valid()) advance_cursor();
  }
}

void KsmDaemon::advance_cursor() {
  cursor_.entered = false;
  cursor_.peek = Gfn::invalid();
  ++cursor_.region;
  if (cursor_.region >= regions_.size()) {
    cursor_.region = 0;
    // A full pass over all regions completed: the unstable tree is rebuilt
    // from scratch, exactly like ksmd.
    unstable_.clear();
    ++stats_.full_passes;
    m_passes_->add();
    obs::tracer().instant("ksm.full_pass", simulator_->now(), "mem");
  }
}

void KsmDaemon::examine(Region& region, Gfn gfn) {
  const FrameNumber f = region.as->translate(gfn);
  if (!f.valid() || !phys_->is_live(f)) return;
  const Frame& fr = phys_->frame(f);

  if (fr.ksm_shared) return;  // already merged

  const ContentHash h = fr.data.hash;
  if (config_.volatile_filtering) {
    PageStamp& stamp = region.stamps[gfn.value()];
    const std::uint64_t id = phys_->alloc_id(f);
    if (stamp.alloc_id != id || stamp.hash != h) {
      // First encounter, a different frame incarnation (COW split, or a
      // recycled frame number), or changed content: remember the stamp and
      // revisit on a later pass.
      stamp.alloc_id = id;
      stamp.hash = h;
      return;
    }
  }

  // Stable tree first: join an existing shared page.
  if (auto it = stable_.find(h); it != stable_.end()) {
    const FrameRef canonical = it->second;
    if (!is_current(canonical)) {
      stable_.erase(it);
      ++stats_.stale_stable_evictions;
      m_evictions_->add();
    } else if (canonical.f != f && phys_->frames_same_content(canonical.f, f)) {
      phys_->merge_frames(canonical.f, f);
      ++stats_.merges;
      m_merges_->add();
      return;
    } else if (canonical.f == f) {
      return;
    }
    // Hash collision with different bytes: fall through to the unstable
    // tree, where the same guard applies.
  }

  // Unstable tree: pair up with another candidate seen this pass.
  if (auto it = unstable_.find(h); it != unstable_.end()) {
    const FrameRef other = it->second;
    if (is_current(other) && other.f != f &&
        phys_->frames_same_content(other.f, f)) {
      phys_->merge_frames(other.f, f);
      phys_->set_stable(other.f, true);
      stable_[h] = other;
      unstable_.erase(it);
      ++stats_.merges;
      m_merges_->add();
      return;
    }
  }
  unstable_[h] = FrameRef{f, phys_->alloc_id(f)};
}

void KsmDaemon::full_pass() {
  // Upper bound: every mapped page in every region, plus slack for cursor
  // boundaries. Two sweeps so that volatile filtering (which needs two
  // encounters) settles within one call in tests.
  std::size_t total = 0;
  for (const Region& r : regions_) total += r.as->mapped_count();
  scan_batch(2 * total + 2 * regions_.size() + 4);
}

std::size_t KsmDaemon::shared_frames() const {
  std::size_t n = 0;
  for (const auto& [h, ref] : stable_) {
    if (is_current(ref)) ++n;
  }
  return n;
}

std::size_t KsmDaemon::pages_sharing() const {
  std::size_t n = 0;
  for (const auto& [h, ref] : stable_) {
    if (is_current(ref)) n += phys_->frame(ref.f).refcount() - 1;
  }
  return n;
}

KsmDaemon::UnshareOutcome KsmDaemon::unshare_page(AddressSpace* root,
                                                  Gfn gfn) {
  CSK_CHECK(root != nullptr);
  CSK_CHECK_MSG(!root->is_view(), "unshare_page works on root address spaces");
  UnshareOutcome out;
  const FrameNumber f = root->translate(gfn);
  if (!f.valid()) return out;
  const Frame& fr = phys_->frame(f);
  if (!fr.ksm_shared && fr.refcount() <= 1) return out;
  // Copy the payload before phys_->write: the COW split allocates, which may
  // grow the slot array and dangle `fr`.
  PageData copy = fr.data;
  const auto wr = phys_->write(f, root, gfn, std::move(copy));
  out.was_shared = true;
  out.cost = wr.cost;
  // Fresh frame, fresh history: the page must pass the volatile filter on
  // two consecutive encounters again before re-merging.
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [root](const Region& r) { return r.as == root; });
  if (it != regions_.end()) it->stamps[gfn.value()] = PageStamp{};
  obs::metrics().counter("mem.ksm.unshared_pages").add();
  return out;
}

}  // namespace csk::mem
