#include "mem/ksm.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace csk::mem {

KsmDaemon::KsmDaemon(sim::Simulator* simulator, HostPhysicalMemory* phys,
                     KsmConfig config)
    : simulator_(simulator), phys_(phys), config_(config) {
  CSK_CHECK(simulator != nullptr);
  CSK_CHECK(phys != nullptr);
  CSK_CHECK(config_.pages_per_scan > 0);
  m_scanned_ = &obs::metrics().counter("mem.ksm.pages_scanned");
  m_merges_ = &obs::metrics().counter("mem.ksm.merges");
  m_passes_ = &obs::metrics().counter("mem.ksm.full_passes");
  m_evictions_ = &obs::metrics().counter("mem.ksm.stale_stable_evictions");
}

KsmDaemon::~KsmDaemon() { stop(); }

void KsmDaemon::register_region(AddressSpace* root) {
  CSK_CHECK(root != nullptr);
  CSK_CHECK_MSG(!root->is_view(), "only root address spaces are scannable");
  if (is_registered(root)) return;
  regions_.push_back(root);
}

void KsmDaemon::unregister_region(AddressSpace* root) {
  auto it = std::find(regions_.begin(), regions_.end(), root);
  if (it == regions_.end()) return;
  const std::size_t idx = static_cast<std::size_t>(it - regions_.begin());
  regions_.erase(it);
  // Keep the cursor coherent with the shrunken region list.
  if (cursor_.region > idx || cursor_.region >= regions_.size()) {
    cursor_.region = regions_.empty() ? 0 : cursor_.region % regions_.size();
    cursor_.page_index = 0;
    cursor_.snapshot_valid = false;
  }
}

bool KsmDaemon::is_registered(const AddressSpace* root) const {
  return std::find(regions_.begin(), regions_.end(), root) != regions_.end();
}

void KsmDaemon::start() {
  if (task_.valid()) return;
  task_ = simulator_->schedule_periodic(config_.scan_interval, [this] {
    scan_batch(config_.pages_per_scan);
    return true;
  });
}

void KsmDaemon::stop() {
  if (!task_.valid()) return;
  simulator_->cancel(task_);
  task_ = EventId::invalid();
}

void KsmDaemon::scan_batch(std::size_t pages) {
  if (regions_.empty()) return;
  for (std::size_t i = 0; i < pages; ++i) {
    if (regions_.empty()) return;
    AddressSpace* as = regions_[cursor_.region];
    if (!cursor_.snapshot_valid) {
      cursor_.snapshot = as->mapped_gfns();
      cursor_.snapshot_valid = true;
    }
    if (cursor_.page_index >= cursor_.snapshot.size()) {
      advance_cursor();
      continue;
    }
    examine(as, cursor_.snapshot[cursor_.page_index]);
    ++stats_.pages_scanned;
    m_scanned_->add();
    ++cursor_.page_index;
    if (cursor_.page_index >= cursor_.snapshot.size()) advance_cursor();
  }
}

void KsmDaemon::advance_cursor() {
  cursor_.page_index = 0;
  cursor_.snapshot_valid = false;
  ++cursor_.region;
  if (cursor_.region >= regions_.size()) {
    cursor_.region = 0;
    // A full pass over all regions completed: the unstable tree is rebuilt
    // from scratch, exactly like ksmd.
    unstable_.clear();
    ++stats_.full_passes;
    m_passes_->add();
    obs::tracer().instant("ksm.full_pass", simulator_->now(), "mem");
  }
}

void KsmDaemon::examine(AddressSpace* as, Gfn gfn) {
  const FrameNumber f = as->translate(gfn);
  if (!f.valid() || !phys_->is_live(f)) return;
  const Frame& fr = phys_->frame(f);

  if (fr.ksm_shared) return;  // already merged

  const ContentHash h = fr.data.hash;
  if (config_.volatile_filtering) {
    auto it = last_seen_.find(f.value());
    if (it == last_seen_.end() || it->second != h) {
      // First encounter, or the page changed since last time: remember the
      // checksum and revisit on a later pass.
      last_seen_[f.value()] = h;
      return;
    }
  }

  // Stable tree first: join an existing shared page.
  if (auto it = stable_.find(h); it != stable_.end()) {
    const FrameNumber canonical = it->second;
    if (!phys_->is_live(canonical)) {
      stable_.erase(it);
      ++stats_.stale_stable_evictions;
      m_evictions_->add();
    } else if (canonical != f &&
               phys_->frame(canonical).data.same_content(fr.data)) {
      phys_->merge_frames(canonical, f);
      ++stats_.merges;
      m_merges_->add();
      return;
    } else if (canonical == f) {
      return;
    }
    // Hash collision with different bytes: fall through to the unstable
    // tree, where the same guard applies.
  }

  // Unstable tree: pair up with another candidate seen this pass.
  if (auto it = unstable_.find(h); it != unstable_.end()) {
    const FrameNumber other = it->second;
    if (phys_->is_live(other) && other != f &&
        phys_->frame(other).data.same_content(fr.data)) {
      phys_->merge_frames(other, f);
      phys_->set_stable(other, true);
      stable_[h] = other;
      unstable_.erase(it);
      ++stats_.merges;
      m_merges_->add();
      return;
    }
    if (!phys_->is_live(other)) unstable_.erase(it);
  }
  unstable_[h] = f;
}

void KsmDaemon::full_pass() {
  // Upper bound: every mapped page in every region, plus slack for cursor
  // boundaries. Two sweeps so that volatile filtering (which needs two
  // encounters) settles within one call in tests.
  std::size_t total = 0;
  for (const AddressSpace* as : regions_) total += as->mapped_gfns().size();
  scan_batch(2 * total + 2 * regions_.size() + 4);
}

std::size_t KsmDaemon::shared_frames() const {
  std::size_t n = 0;
  for (const auto& [h, f] : stable_) {
    if (phys_->is_live(f)) ++n;
  }
  return n;
}

std::size_t KsmDaemon::pages_sharing() const {
  std::size_t n = 0;
  for (const auto& [h, f] : stable_) {
    if (phys_->is_live(f)) n += phys_->frame(f).refcount() - 1;
  }
  return n;
}

}  // namespace csk::mem
