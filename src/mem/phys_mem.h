/// \file
/// Host physical memory: the frame store underneath every address space on a
/// simulated host.
///
/// A Frame is one 4 KiB unit of host RAM with content (PageData), a reverse
/// map of (AddressSpace, Gfn) mappers, and KSM sharing state. Frames are
/// reference-counted by their reverse map: when the last mapping goes away
/// the frame is freed. Write timing (regular vs copy-on-write) lives here
/// because it is a property of the host memory system, not of any one guest.
///
/// Frames live in a dense slot array indexed by frame number, and freed
/// numbers are recycled LIFO — like a real buddy allocator handing back the
/// hottest frame first. Because numbers are recycled, a FrameNumber alone no
/// longer identifies a page's identity over time; every allocation also gets
/// a process-unique `alloc_id`, and anything that remembers a frame across
/// frees (the KSM trees, the volatile-filter stamps) must remember the
/// (frame, alloc_id) pair and revalidate it. See KsmDaemon for the bug this
/// guards against.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "mem/page.h"

namespace csk::mem {

class AddressSpace;

/// Host memory write-latency model, calibrated in DESIGN.md §3. A write to
/// an exclusively owned frame costs ~regular_write; a write that must break
/// KSM copy-on-write sharing pays a fault plus a 4 KiB copy. Jitter makes
/// measured samples look like real timing data without hiding the gap.
struct MemTimingModel {
  SimDuration regular_write = SimDuration::nanos(200);
  SimDuration cow_write = SimDuration::nanos(6000);
  double jitter_rel_stddev = 0.04;  // 4 % relative noise on each sample

  SimDuration sample_regular(Rng& rng) const {
    return jittered(regular_write, rng);
  }
  SimDuration sample_cow(Rng& rng) const { return jittered(cow_write, rng); }

 private:
  SimDuration jittered(SimDuration base, Rng& rng) const {
    const double f = rng.normal(1.0, jitter_rel_stddev);
    const double clamped = f < 0.5 ? 0.5 : f;
    return base * clamped;
  }
};

/// One mapping of a frame by some address space.
struct Mapping {
  AddressSpace* as = nullptr;
  Gfn gfn;
  bool operator==(const Mapping& o) const { return as == o.as && gfn == o.gfn; }
};

struct Frame {
  PageData data;
  std::vector<Mapping> rmap;  // who maps this frame; size() is the refcount
  bool ksm_shared = false;    // merged by ksmd; writes must COW
  bool in_stable_tree = false;

  std::size_t refcount() const { return rmap.size(); }
};

/// Counters exposed for tests and benchmarks.
struct PhysMemStats {
  std::uint64_t frames_allocated = 0;
  std::uint64_t frames_freed = 0;
  std::uint64_t cow_breaks = 0;
  std::uint64_t regular_writes = 0;
};

class HostPhysicalMemory {
 public:
  explicit HostPhysicalMemory(MemTimingModel timing = {},
                              std::uint64_t rng_seed = 0x9E3779B9ull);
  HostPhysicalMemory(const HostPhysicalMemory&) = delete;
  HostPhysicalMemory& operator=(const HostPhysicalMemory&) = delete;

  /// Allocates a fresh frame holding `data`, initially unmapped. Frame
  /// numbers are recycled; the returned frame carries a fresh alloc_id().
  FrameNumber allocate(PageData data);

  /// Frame lookup. Precondition: `f` is live.
  const Frame& frame(FrameNumber f) const;

  bool is_live(FrameNumber f) const {
    return f.value() < slots_.size() && slots_[f.value()].live;
  }

  /// Process-unique id of the allocation currently occupying `f`. Two
  /// sightings of the same frame number denote the same page iff their
  /// alloc ids match. Precondition: `f` is live.
  std::uint64_t alloc_id(FrameNumber f) const;

  /// Registers/unregisters a mapping in the frame's reverse map. A frame
  /// whose last mapping is removed is freed.
  void add_mapping(FrameNumber f, AddressSpace* as, Gfn gfn);
  void remove_mapping(FrameNumber f, AddressSpace* as, Gfn gfn);

  /// Writes `data` into the frame mapped at (as-root, gfn) as frame `f`.
  /// If the frame is shared (refcount > 1 or KSM-merged), performs a
  /// copy-on-write split: allocates a new exclusive frame for this mapping
  /// and leaves other sharers on the original. Returns the new (possibly
  /// unchanged) frame and the charged write latency.
  struct WriteOutcome {
    FrameNumber frame;
    SimDuration cost;
    bool cow_broken = false;
  };
  WriteOutcome write(FrameNumber f, AddressSpace* as, Gfn gfn, PageData data);

  /// KSM merge: repoints every mapping of `dup` to `canonical`, marks the
  /// canonical frame shared, frees `dup`. Preconditions: distinct live
  /// frames with equal content.
  void merge_frames(FrameNumber canonical, FrameNumber dup);

  /// Content equality of two live frames, equivalent to
  /// frame(a).data.same_content(frame(b).data) but resolved through interned
  /// content tokens: the byte memcmp happens once per distinct payload, not
  /// once per comparison. This is the KSM scan fast path.
  bool frames_same_content(FrameNumber a, FrameNumber b);

  /// Marks a frame as entered into / evicted from the KSM stable tree.
  void set_stable(FrameNumber f, bool in_stable);
  void set_shared(FrameNumber f, bool shared);

  std::size_t live_frames() const { return live_count_; }
  const PhysMemStats& stats() const { return stats_; }
  const MemTimingModel& timing() const { return timing_; }
  Rng& rng() { return rng_; }

  /// All live frame numbers, ascending (test/inspection helper).
  std::vector<FrameNumber> live_frame_list() const;

  /// Distinct byte payloads interned so far (test/inspection helper).
  std::size_t interned_contents() const;

 private:
  struct Slot {
    Frame frame;
    std::uint64_t alloc_id = 0;  // unique per allocation, 0 = never used
    std::uint64_t intern = 0;    // cached content token, 0 = not computed
    bool live = false;
  };

  Frame& frame_mut(FrameNumber f);
  void free_if_unmapped(FrameNumber f);
  /// Interned token for the (byte-backed) content of live frame `f`.
  std::uint64_t content_token(FrameNumber f);

  MemTimingModel timing_;
  Rng rng_;
  std::vector<Slot> slots_;               // index = frame number; 0 reserved
  std::vector<std::uint64_t> free_list_;  // LIFO recycled frame numbers
  std::size_t live_count_ = 0;
  std::uint64_t next_alloc_id_ = 1;
  // Content interning: hash -> [(token, payload)]; the inner vector only
  // grows past one entry on a genuine 64-bit hash collision.
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::uint64_t, PageBytesRef>>>
      interned_;
  std::uint64_t next_intern_ = 1;
  PhysMemStats stats_;
};

}  // namespace csk::mem
