// Kernel samepage merging (KSM), as a simulated host daemon.
//
// Models Linux's ksmd closely enough for the paper's detection experiment:
//   * madvise-style region registration (here: whole root address spaces —
//     QEMU processes register their guest RAM, the detector registers its
//     File-A buffer);
//   * a periodic scan that walks candidate pages in batches
//     (pages_to_scan / sleep_millisecs, kernel defaults 100 / 20 ms);
//   * the two-tree algorithm: an *unstable* tree of merge candidates that is
//     rebuilt every full pass, and a *stable* tree of already-shared pages;
//   * a page must show the same checksum on two consecutive encounters
//     before it is merge-eligible (volatile-page filtering);
//   * merged frames become copy-on-write; writes split them and pay the COW
//     latency in MemTimingModel.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "mem/addr_space.h"
#include "mem/phys_mem.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace csk::mem {

struct KsmConfig {
  /// ksmd wake-up period (sleep_millisecs; kernel default 20 ms).
  SimDuration scan_interval = SimDuration::millis(20);
  /// Pages examined per wake-up (pages_to_scan; kernel default 100).
  std::size_t pages_per_scan = 100;
  /// Skip pages whose checksum changed since the previous encounter.
  bool volatile_filtering = true;
};

struct KsmStats {
  std::uint64_t full_passes = 0;
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;
  std::uint64_t stale_stable_evictions = 0;
};

class KsmDaemon {
 public:
  KsmDaemon(sim::Simulator* simulator, HostPhysicalMemory* phys,
            KsmConfig config = {});
  ~KsmDaemon();
  KsmDaemon(const KsmDaemon&) = delete;
  KsmDaemon& operator=(const KsmDaemon&) = delete;

  /// Registers a root address space for scanning (MADV_MERGEABLE).
  void register_region(AddressSpace* root);

  /// Stops scanning a space. Existing merges stay shared (as on Linux until
  /// pages are written or KSM is told to unmerge).
  void unregister_region(AddressSpace* root);

  bool is_registered(const AddressSpace* root) const;

  /// Starts/stops the periodic daemon on the simulator clock.
  void start();
  void stop();
  bool running() const { return task_.valid(); }

  /// Runs one wake-up worth of scanning immediately (tests, fast-forward).
  void scan_batch(std::size_t pages);

  /// Scans every registered page once (at least one full pass).
  void full_pass();

  const KsmStats& stats() const { return stats_; }
  const KsmConfig& config() const { return config_; }

  /// Number of frames currently KSM-shared (stable tree size, live only).
  std::size_t shared_frames() const;

  /// Extra mappings eliminated by sharing: sum over shared frames of
  /// (refcount - 1). This is /sys/kernel/mm/ksm/pages_sharing.
  std::size_t pages_sharing() const;

 private:
  struct Cursor {
    std::size_t region = 0;
    std::size_t page_index = 0;  // index into `snapshot`
    /// Mapped-gfn list captured when the cursor entered the region; pages
    /// appearing mid-visit are picked up on the next lap.
    std::vector<Gfn> snapshot;
    bool snapshot_valid = false;
  };

  /// Examines one page; returns true if a page existed at the cursor.
  void examine(AddressSpace* as, Gfn gfn);
  void advance_cursor();

  sim::Simulator* simulator_;
  HostPhysicalMemory* phys_;
  KsmConfig config_;
  std::vector<AddressSpace*> regions_;
  Cursor cursor_;
  EventId task_ = EventId::invalid();

  std::unordered_map<ContentHash, FrameNumber> stable_;
  std::unordered_map<ContentHash, FrameNumber> unstable_;
  // frame -> content hash at previous encounter (volatile filtering).
  std::unordered_map<std::uint64_t, ContentHash> last_seen_;
  KsmStats stats_;
  // Cached global-registry counters mirroring stats_ (mem.ksm.*).
  obs::Counter* m_scanned_ = nullptr;
  obs::Counter* m_merges_ = nullptr;
  obs::Counter* m_passes_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
};

}  // namespace csk::mem
