/// \file
/// Kernel samepage merging (KSM), as a simulated host daemon.
///
/// Models Linux's ksmd closely enough for the paper's detection experiment:
///   * madvise-style region registration (here: whole root address spaces —
///     QEMU processes register their guest RAM, the detector registers its
///     File-A buffer);
///   * a periodic scan that walks candidate pages in batches
///     (pages_to_scan / sleep_millisecs, kernel defaults 100 / 20 ms);
///   * the two-tree algorithm: an *unstable* tree of merge candidates that is
///     rebuilt every full pass, and a *stable* tree of already-shared pages;
///   * a page must show the same checksum on two consecutive encounters
///     before it is merge-eligible (volatile-page filtering);
///   * merged frames become copy-on-write; writes split them and pay the COW
///     latency in MemTimingModel.
///
/// Scanning is incremental: the cursor walks each region's dense page table
/// directly, stamped with the region's map epoch at entry so pages mapped
/// mid-visit are deferred to the next lap (the same semantics the old
/// snapshot-vector cursor had, without materializing or sorting anything).
///
/// Frame numbers are recycled by HostPhysicalMemory, so everything ksmd
/// remembers across scans carries the frame's alloc_id and is revalidated on
/// the next sighting. In particular the volatile filter is keyed by (region,
/// gfn) with an (alloc_id, hash) stamp: keying by raw frame number let a
/// freed-and-reallocated frame inherit the previous tenant's checksum and
/// merge a just-written page one pass early.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "mem/addr_space.h"
#include "mem/phys_mem.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace csk::mem {

struct KsmConfig {
  /// ksmd wake-up period (sleep_millisecs; kernel default 20 ms).
  SimDuration scan_interval = SimDuration::millis(20);
  /// Pages examined per wake-up (pages_to_scan; kernel default 100).
  std::size_t pages_per_scan = 100;
  /// Skip pages whose checksum changed since the previous encounter.
  bool volatile_filtering = true;
};

struct KsmStats {
  std::uint64_t full_passes = 0;
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;
  std::uint64_t stale_stable_evictions = 0;
};

class KsmDaemon {
 public:
  KsmDaemon(sim::Simulator* simulator, HostPhysicalMemory* phys,
            KsmConfig config = {});
  ~KsmDaemon();
  KsmDaemon(const KsmDaemon&) = delete;
  KsmDaemon& operator=(const KsmDaemon&) = delete;

  /// Registers a root address space for scanning (MADV_MERGEABLE).
  void register_region(AddressSpace* root);

  /// Stops scanning a space. Existing merges stay shared (as on Linux until
  /// pages are written or KSM is told to unmerge). If the removed region
  /// precedes the cursor, the cursor index shifts down with the list so the
  /// region it was scanning keeps its turn and the full-pass boundary stays
  /// where it should be.
  void unregister_region(AddressSpace* root);

  bool is_registered(const AddressSpace* root) const;

  /// Starts/stops the periodic daemon on the simulator clock.
  void start();
  void stop();
  bool running() const { return task_.valid(); }

  /// Runs one wake-up worth of scanning immediately (tests, fast-forward).
  void scan_batch(std::size_t pages);

  /// Scans every registered page once (at least one full pass).
  void full_pass();

  const KsmStats& stats() const { return stats_; }
  const KsmConfig& config() const { return config_; }

  /// Number of frames currently KSM-shared (stable tree size, live only).
  std::size_t shared_frames() const;

  /// Extra mappings eliminated by sharing: sum over shared frames of
  /// (refcount - 1). This is /sys/kernel/mm/ksm/pages_sharing.
  std::size_t pages_sharing() const;

  /// Eagerly breaks sharing for one page of `root`: if the backing frame is
  /// KSM-shared (or COW-shared), the page is rewritten with its own content
  /// so the caller ends up with an exclusive copy, paying the COW-split
  /// latency. A targeted break_cow_sharing() — the adaptive attacker's
  /// mirror policy uses it to pre-split exactly the detector-touched File-A
  /// pages instead of unmerging whole regions. No-op (was_shared = false,
  /// zero cost) for untouched or already-exclusive pages. The region's
  /// volatile-filter stamp is reset so the fresh frame must re-earn merge
  /// eligibility from scratch.
  struct UnshareOutcome {
    bool was_shared = false;
    SimDuration cost;
  };
  UnshareOutcome unshare_page(AddressSpace* root, Gfn gfn);

  // Cursor introspection (tests).
  std::size_t cursor_region() const { return cursor_.region; }
  bool cursor_entered() const { return cursor_.entered; }

 private:
  /// A remembered frame plus the alloc_id it had when remembered. The frame
  /// number alone goes stale silently once numbers are recycled; is_current
  /// checks both.
  struct FrameRef {
    FrameNumber f;
    std::uint64_t gen = 0;
  };

  /// Volatile-filter stamp for one (region, gfn): the frame incarnation and
  /// checksum at the previous encounter.
  struct PageStamp {
    std::uint64_t alloc_id = 0;  // 0 = never seen
    ContentHash hash;
  };

  struct Region {
    AddressSpace* as = nullptr;
    /// gfn-indexed volatile-filter stamps (sized on registration).
    std::vector<PageStamp> stamps;
  };

  struct Cursor {
    std::size_t region = 0;
    /// Next gfn to examine in the current region (pre-located so that batch
    /// accounting matches the old snapshot cursor iteration-for-iteration).
    Gfn peek = Gfn::invalid();
    /// Region map epoch captured on entry; pages mapped after entry are
    /// invisible until the next lap.
    std::uint64_t entry_epoch = 0;
    bool entered = false;
    /// Remaining walk of a region removed mid-visit, replayed against the
    /// successor region before the cursor advances (the walk position has
    /// always outlived the region under it; see unregister_region).
    std::vector<Gfn> leftover;
    std::size_t leftover_index = 0;
  };

  void examine(Region& region, Gfn gfn);
  void advance_cursor();
  bool is_current(const FrameRef& ref) const {
    return phys_->is_live(ref.f) && phys_->alloc_id(ref.f) == ref.gen;
  }

  sim::Simulator* simulator_;
  HostPhysicalMemory* phys_;
  KsmConfig config_;
  std::vector<Region> regions_;
  Cursor cursor_;
  EventId task_ = EventId::invalid();

  std::unordered_map<ContentHash, FrameRef> stable_;
  std::unordered_map<ContentHash, FrameRef> unstable_;
  KsmStats stats_;
  // Cached global-registry counters mirroring stats_ (mem.ksm.*).
  obs::Counter* m_scanned_ = nullptr;
  obs::Counter* m_merges_ = nullptr;
  obs::Counter* m_passes_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
};

}  // namespace csk::mem
