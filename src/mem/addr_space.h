/// \file
/// Guest / process address spaces.
///
/// A *root* AddressSpace maps guest frame numbers directly onto host frames —
/// it models the memory of a QEMU process (a top-level VM) or of a host
/// process such as the dedup detector. Frames are materialized lazily: an
/// untouched gfn reads as the zero page, like anonymous memory on Linux.
///
/// A *view* AddressSpace models nested-VM memory: its gfns alias a window of
/// a parent address space. An L2 guest's "physical" memory is, from the
/// host's perspective, just a region inside the L1 QEMU process, and the view
/// makes that aliasing explicit — a write through the view lands in the
/// parent's frames and dirties every level on the way down, which is exactly
/// how dirty logging behaves across nested EPT.
///
/// Hot-path layout: a root's gfn->frame table is a dense vector indexed by
/// gfn (like a real page table, not a hash map), each entry stamped with the
/// map epoch at which it materialized so KSM can scan incrementally without
/// snapshotting; the dirty log is a word-packed bitmap with a running
/// population count, so dirty harvest is a linear word scan and mapped-page
/// enumeration needs no sort.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "mem/phys_mem.h"
#include "obs/metrics.h"

namespace csk::mem {

/// Opt-in hot-path counters (mem.dirty.*, mem.zero_copy_reads). Off by
/// default so the metrics snapshots embedded in pre-existing BENCH_*.json
/// reports stay byte-stable; bench_mem_scaling and the mem tests turn them
/// on. Set the flag before constructing the address spaces to be measured —
/// each space caches its counter pointers at construction.
void set_hot_path_counters_enabled(bool enabled);
bool hot_path_counters_enabled();

struct WriteResult {
  SimDuration cost;
  bool cow_broken = false;
};

class AddressSpace {
 public:
  /// Root space of `num_pages` gfns backed by `phys`.
  AddressSpace(HostPhysicalMemory* phys, std::size_t num_pages,
               std::string name);

  /// View space aliasing `window` gfns of `parent` (one parent gfn per own
  /// gfn, in order). Used for nested-VM memory.
  AddressSpace(AddressSpace* parent, std::vector<Gfn> window,
               std::string name);

  ~AddressSpace();
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  const std::string& name() const { return name_; }
  std::size_t size_pages() const { return num_pages_; }
  bool is_view() const { return parent_ != nullptr; }
  AddressSpace* parent() const { return parent_; }

  /// Root space that ultimately backs this one (self for roots).
  AddressSpace* root();
  const AddressSpace* root() const;

  /// Reads the content hash at `gfn` (zero page if never written).
  ContentHash read_hash(Gfn gfn) const;

  /// Reads the shared byte payload, when the page is byte-backed (null for
  /// hash-only or untouched pages). Never copies the 4 KiB.
  PageBytesRef read_bytes(Gfn gfn) const;

  /// Reads the full page content (hash + optional bytes). Untouched pages
  /// read as the zero page. Copying the result shares the byte payload.
  PageData read_page(Gfn gfn) const;

  /// Zero-copy read: a reference to the page content backing `gfn`, or to
  /// the canonical zero page if untouched. The reference is invalidated by
  /// the next write, merge or allocation anywhere in the backing physical
  /// memory — read it, then let go.
  const PageData& read_page_ref(Gfn gfn) const;

  /// Writes page content, paying the host write latency; breaks COW sharing
  /// if needed and marks the page dirty at every level of the chain.
  WriteResult write_page(Gfn gfn, PageData data);

  /// Observes every write issued at *this* level (before it lands). Models
  /// write-protection traps a hypervisor places on its guest's pages: the
  /// CloudSkulk L1 attacker uses this to mirror victim file changes
  /// synchronously (§VI-D), paying one trap per write. One observer at a
  /// time; the observer must not write through this same space.
  using WriteObserver = std::function<void(Gfn gfn, const PageData& data)>;
  void set_write_observer(WriteObserver observer);
  void clear_write_observer() { write_observer_ = nullptr; }
  bool has_write_observer() const { return write_observer_ != nullptr; }

  /// Targeted write watch: fires the handler only for writes to the listed
  /// gfns, before the write lands. Unlike the write observer (which traps
  /// every write through the space), the watch is a single bitmap test on
  /// the hot path — this is how the adaptive attacker (src/attacker) shadows
  /// just the detector's File-A pages without paying a trap per guest write.
  /// Re-arming replaces the previous watch set and handler atomically; the
  /// handler may write through *other* spaces (the mirror path) but not
  /// re-enter this one.
  using PageWatchHandler = std::function<void(Gfn gfn, const PageData& data)>;
  void watch_pages(const std::vector<Gfn>& gfns, PageWatchHandler handler);
  void clear_page_watch();
  bool has_page_watch() const { return page_watch_ != nullptr; }
  std::size_t watched_page_count() const { return watched_count_; }

  /// Host frame currently backing `gfn`, or invalid if untouched.
  FrameNumber translate(Gfn gfn) const;

  /// True if the gfn has a materialized frame.
  bool is_mapped(Gfn gfn) const { return translate(gfn).valid(); }

  /// All materialized gfns, ascending (KSM scan order).
  std::vector<Gfn> mapped_gfns() const;

  /// Number of materialized gfns (cheap; no enumeration).
  std::size_t mapped_count() const;

  /// Calls `fn(gfn, page)` for every materialized gfn, ascending, without
  /// copying page contents. The reference handed to `fn` follows the
  /// read_page_ref() invalidation rule.
  void visit_mapped(
      const std::function<void(Gfn, const PageData&)>& fn) const;

  // --- incremental scan support (root only, used by KSM) ---

  /// Monotone count of page materializations in this root. A page with
  /// map_epoch_of(gfn) <= e was already mapped when the counter read e —
  /// KSM stamps its cursor with this to reproduce enter-time snapshot
  /// semantics without materializing one.
  std::uint64_t map_epoch() const;

  /// First gfn >= `from` that was materialized no later than `max_epoch`,
  /// or invalid when none remains. Linear probe over the dense table;
  /// amortized O(1) per mapped page across a full sweep.
  Gfn next_mapped(Gfn from, std::uint64_t max_epoch) const;

  // --- dirty logging (per level, used by live migration) ---

  /// Starts dirty tracking; clears any previous log.
  void enable_dirty_log();
  void disable_dirty_log();
  bool dirty_log_enabled() const { return dirty_log_enabled_; }

  /// Returns dirtied gfns since the last fetch and clears the log.
  /// Ascending; a linear scan over the bitmap words.
  std::vector<Gfn> fetch_and_reset_dirty();
  std::size_t dirty_count() const { return dirty_count_; }
  bool is_dirty(Gfn gfn) const {
    return gfn.value() < num_pages_ &&
           (dirty_words_[gfn.value() >> 6] >> (gfn.value() & 63)) & 1;
  }

  // --- internal plumbing (called by HostPhysicalMemory / KSM) ---

  /// Updates this root's gfn->frame table after a KSM merge or COW split.
  /// Only HostPhysicalMemory calls this, only on roots.
  void on_frame_repointed(Gfn gfn, FrameNumber f);

  /// Total bytes of simulated guest memory (for `info mtree` etc.).
  std::uint64_t size_bytes() const {
    return static_cast<std::uint64_t>(num_pages_) * kPageSize;
  }

 private:
  void check_gfn(Gfn gfn) const;
  void mark_dirty(Gfn gfn);
  /// Root only: frame for gfn, materializing a zero frame if asked.
  FrameNumber root_frame(Gfn gfn, bool materialize);

  std::string name_;
  std::size_t num_pages_ = 0;

  // Root state: dense gfn-indexed tables. table_[g] == 0 means unmapped
  // (frame number 0 is reserved); epochs_[g] is the map_epoch_ value at
  // materialization, untouched by COW/merge repointing.
  HostPhysicalMemory* phys_ = nullptr;  // null for views
  std::vector<std::uint64_t> table_;
  std::vector<std::uint32_t> epochs_;
  std::uint64_t map_epoch_ = 0;
  std::size_t mapped_count_ = 0;

  // View state.
  AddressSpace* parent_ = nullptr;
  std::vector<Gfn> window_;  // own gfn index -> parent gfn

  // Dirty log: one bit per gfn plus a running popcount.
  bool dirty_log_enabled_ = false;
  std::vector<std::uint64_t> dirty_words_;
  std::size_t dirty_count_ = 0;

  WriteObserver write_observer_;
  bool in_observer_ = false;

  // Targeted page watch: a word-packed membership bitmap (allocated lazily
  // on first arm, so unwatched spaces pay one null test per write) plus the
  // handler and a reentrancy latch.
  bool is_watched(Gfn gfn) const {
    return !watch_words_.empty() &&
           (watch_words_[gfn.value() >> 6] >> (gfn.value() & 63)) & 1;
  }
  PageWatchHandler page_watch_;
  std::vector<std::uint64_t> watch_words_;
  std::size_t watched_count_ = 0;
  bool in_watch_ = false;

  // Cached opt-in hot-path counters (null when disabled at construction).
  obs::Counter* c_harvested_pages_ = nullptr;
  obs::Counter* c_harvested_words_ = nullptr;
  obs::Counter* c_zero_copy_reads_ = nullptr;
};

}  // namespace csk::mem
