// Guest / process address spaces.
//
// A *root* AddressSpace maps guest frame numbers directly onto host frames —
// it models the memory of a QEMU process (a top-level VM) or of a host
// process such as the dedup detector. Frames are materialized lazily: an
// untouched gfn reads as the zero page, like anonymous memory on Linux.
//
// A *view* AddressSpace models nested-VM memory: its gfns alias a window of
// a parent address space. An L2 guest's "physical" memory is, from the
// host's perspective, just a region inside the L1 QEMU process, and the view
// makes that aliasing explicit — a write through the view lands in the
// parent's frames and dirties every level on the way down, which is exactly
// how dirty logging behaves across nested EPT.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "mem/phys_mem.h"

namespace csk::mem {

struct WriteResult {
  SimDuration cost;
  bool cow_broken = false;
};

class AddressSpace {
 public:
  /// Root space of `num_pages` gfns backed by `phys`.
  AddressSpace(HostPhysicalMemory* phys, std::size_t num_pages,
               std::string name);

  /// View space aliasing `window` gfns of `parent` (one parent gfn per own
  /// gfn, in order). Used for nested-VM memory.
  AddressSpace(AddressSpace* parent, std::vector<Gfn> window,
               std::string name);

  ~AddressSpace();
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  const std::string& name() const { return name_; }
  std::size_t size_pages() const { return num_pages_; }
  bool is_view() const { return parent_ != nullptr; }
  AddressSpace* parent() const { return parent_; }

  /// Root space that ultimately backs this one (self for roots).
  AddressSpace* root();
  const AddressSpace* root() const;

  /// Reads the content hash at `gfn` (zero page if never written).
  ContentHash read_hash(Gfn gfn) const;

  /// Reads byte contents, when the page is byte-backed.
  std::optional<PageBytes> read_bytes(Gfn gfn) const;

  /// Reads the full page content (hash + optional bytes). Untouched pages
  /// read as the zero page.
  PageData read_page(Gfn gfn) const;

  /// Writes page content, paying the host write latency; breaks COW sharing
  /// if needed and marks the page dirty at every level of the chain.
  WriteResult write_page(Gfn gfn, PageData data);

  /// Observes every write issued at *this* level (before it lands). Models
  /// write-protection traps a hypervisor places on its guest's pages: the
  /// CloudSkulk L1 attacker uses this to mirror victim file changes
  /// synchronously (§VI-D), paying one trap per write. One observer at a
  /// time; the observer must not write through this same space.
  using WriteObserver = std::function<void(Gfn gfn, const PageData& data)>;
  void set_write_observer(WriteObserver observer);
  void clear_write_observer() { write_observer_ = nullptr; }
  bool has_write_observer() const { return write_observer_ != nullptr; }

  /// Host frame currently backing `gfn`, or invalid if untouched.
  FrameNumber translate(Gfn gfn) const;

  /// True if the gfn has a materialized frame.
  bool is_mapped(Gfn gfn) const { return translate(gfn).valid(); }

  /// All materialized gfns, ascending (KSM scan order).
  std::vector<Gfn> mapped_gfns() const;

  // --- dirty logging (per level, used by live migration) ---

  /// Starts dirty tracking; clears any previous log.
  void enable_dirty_log();
  void disable_dirty_log();
  bool dirty_log_enabled() const { return dirty_log_enabled_; }

  /// Returns dirtied gfns since the last fetch and clears the log.
  std::vector<Gfn> fetch_and_reset_dirty();
  std::size_t dirty_count() const { return dirty_.size(); }
  bool is_dirty(Gfn gfn) const { return dirty_.contains(gfn.value()); }

  // --- internal plumbing (called by HostPhysicalMemory / KSM) ---

  /// Updates this root's gfn->frame table after a KSM merge or COW split.
  /// Only HostPhysicalMemory calls this, only on roots.
  void on_frame_repointed(Gfn gfn, FrameNumber f);

  /// Total bytes of simulated guest memory (for `info mtree` etc.).
  std::uint64_t size_bytes() const {
    return static_cast<std::uint64_t>(num_pages_) * kPageSize;
  }

 private:
  void check_gfn(Gfn gfn) const;
  void mark_dirty(Gfn gfn);
  /// Root only: frame for gfn, materializing a zero frame if asked.
  FrameNumber root_frame(Gfn gfn, bool materialize);

  std::string name_;
  std::size_t num_pages_ = 0;

  // Root state.
  HostPhysicalMemory* phys_ = nullptr;           // null for views
  std::unordered_map<std::uint64_t, std::uint64_t> table_;  // gfn -> frame

  // View state.
  AddressSpace* parent_ = nullptr;
  std::vector<Gfn> window_;  // own gfn index -> parent gfn

  bool dirty_log_enabled_ = false;
  std::unordered_map<std::uint64_t, bool> dirty_;
  WriteObserver write_observer_;
  bool in_observer_ = false;
};

}  // namespace csk::mem
