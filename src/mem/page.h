/// \file
/// Page representation.
///
/// The simulator models 4 KiB pages. Most pages only carry a 64-bit content
/// hash (enough for KSM equality and migration transfer accounting); pages
/// the experiments actually inspect byte-wise — e.g. the detector's File-A —
/// additionally carry real bytes. A page with bytes always has
/// hash == fnv1a(bytes); PageData::make enforces that.
///
/// Byte contents are immutable and shared: PageData holds them behind a
/// shared_ptr-to-const, so copying a page (the migration pre-copy loop, KSM
/// candidate bookkeeping, guest file caches) never copies the 4 KiB payload.
/// Mutation is copy-out/modify/from_bytes, which mirrors how a real COW
/// memory system treats shared pages.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace csk::mem {

inline constexpr std::size_t kPageSize = 4096;

using PageBytes = std::vector<std::uint8_t>;

/// Shared, immutable byte payload of a page. Null for hash-only pages.
using PageBytesRef = std::shared_ptr<const PageBytes>;

/// Immutable content of one page: a hash, optionally backed by real bytes.
struct PageData {
  ContentHash hash;
  PageBytesRef bytes;

  /// Hash-only page (synthetic content, e.g. workload-dirtied memory).
  static PageData synthetic(ContentHash h) { return PageData{h, nullptr}; }

  /// Byte-backed page; the hash is derived, never supplied.
  static PageData from_bytes(PageBytes b) {
    CSK_CHECK_MSG(b.size() <= kPageSize, "page content exceeds 4 KiB");
    ContentHash h = fnv1a(b);
    return PageData{h, std::make_shared<const PageBytes>(std::move(b))};
  }

  /// The all-zeroes page.
  static PageData zero() { return PageData{ContentHash::zero_page(), nullptr}; }

  bool is_zero() const { return hash.is_zero_page(); }

  /// Content equality: hashes must match, and if both sides carry bytes the
  /// bytes must match too (models KSM's full memcmp after checksum hit).
  /// Pages sharing one payload short-circuit without touching the bytes.
  bool same_content(const PageData& other) const {
    if (hash != other.hash) return false;
    if (bytes && other.bytes) {
      return bytes == other.bytes || *bytes == *other.bytes;
    }
    return true;
  }
};

}  // namespace csk::mem
