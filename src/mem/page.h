// Page representation.
//
// The simulator models 4 KiB pages. Most pages only carry a 64-bit content
// hash (enough for KSM equality and migration transfer accounting); pages
// the experiments actually inspect byte-wise — e.g. the detector's File-A —
// additionally carry real bytes. A page with bytes always has
// hash == fnv1a(bytes); PageData::make enforces that.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace csk::mem {

inline constexpr std::size_t kPageSize = 4096;

using PageBytes = std::vector<std::uint8_t>;

/// Immutable content of one page: a hash, optionally backed by real bytes.
struct PageData {
  ContentHash hash;
  std::optional<PageBytes> bytes;

  /// Hash-only page (synthetic content, e.g. workload-dirtied memory).
  static PageData synthetic(ContentHash h) { return PageData{h, std::nullopt}; }

  /// Byte-backed page; the hash is derived, never supplied.
  static PageData from_bytes(PageBytes b) {
    CSK_CHECK_MSG(b.size() <= kPageSize, "page content exceeds 4 KiB");
    ContentHash h = fnv1a(b);
    return PageData{h, std::move(b)};
  }

  /// The all-zeroes page.
  static PageData zero() { return PageData{ContentHash::zero_page(), std::nullopt}; }

  bool is_zero() const { return hash.is_zero_page(); }

  /// Content equality: hashes must match, and if both sides carry bytes the
  /// bytes must match too (models KSM's full memcmp after checksum hit).
  bool same_content(const PageData& other) const {
    if (hash != other.hash) return false;
    if (bytes && other.bytes) return *bytes == *other.bytes;
    return true;
  }
};

}  // namespace csk::mem
