#include "mem/phys_mem.h"

#include <algorithm>

#include "mem/addr_space.h"

namespace csk::mem {

HostPhysicalMemory::HostPhysicalMemory(MemTimingModel timing,
                                       std::uint64_t rng_seed)
    : timing_(timing), rng_(rng_seed) {
  slots_.resize(1);  // frame number 0 is reserved (never allocated)
}

FrameNumber HostPhysicalMemory::allocate(PageData data) {
  std::uint64_t num;
  if (!free_list_.empty()) {
    num = free_list_.back();
    free_list_.pop_back();
  } else {
    num = slots_.size();
    slots_.emplace_back();
  }
  Slot& slot = slots_[num];
  slot.frame.data = std::move(data);
  slot.frame.rmap.clear();  // keeps capacity across reuse
  slot.frame.ksm_shared = false;
  slot.frame.in_stable_tree = false;
  slot.alloc_id = next_alloc_id_++;
  slot.intern = 0;
  slot.live = true;
  ++live_count_;
  ++stats_.frames_allocated;
  return FrameNumber(num);
}

const Frame& HostPhysicalMemory::frame(FrameNumber f) const {
  CSK_CHECK_MSG(is_live(f), "access to freed frame");
  return slots_[f.value()].frame;
}

Frame& HostPhysicalMemory::frame_mut(FrameNumber f) {
  CSK_CHECK_MSG(is_live(f), "access to freed frame");
  return slots_[f.value()].frame;
}

std::uint64_t HostPhysicalMemory::alloc_id(FrameNumber f) const {
  CSK_CHECK_MSG(is_live(f), "access to freed frame");
  return slots_[f.value()].alloc_id;
}

void HostPhysicalMemory::add_mapping(FrameNumber f, AddressSpace* as, Gfn gfn) {
  CSK_CHECK(as != nullptr);
  Frame& fr = frame_mut(f);
  fr.rmap.push_back(Mapping{as, gfn});
}

void HostPhysicalMemory::remove_mapping(FrameNumber f, AddressSpace* as,
                                        Gfn gfn) {
  Frame& fr = frame_mut(f);
  auto it = std::find(fr.rmap.begin(), fr.rmap.end(), Mapping{as, gfn});
  CSK_CHECK_MSG(it != fr.rmap.end(), "removing a mapping that does not exist");
  fr.rmap.erase(it);
  free_if_unmapped(f);
}

void HostPhysicalMemory::free_if_unmapped(FrameNumber f) {
  Slot& slot = slots_[f.value()];
  if (!slot.frame.rmap.empty()) return;
  slot.live = false;
  slot.frame.data = PageData{};  // drop the payload reference now
  free_list_.push_back(f.value());
  --live_count_;
  ++stats_.frames_freed;
}

HostPhysicalMemory::WriteOutcome HostPhysicalMemory::write(FrameNumber f,
                                                           AddressSpace* as,
                                                           Gfn gfn,
                                                           PageData data) {
  Slot& slot = slots_[f.value()];
  CSK_CHECK_MSG(slot.live, "write to freed frame");
  const bool shared = slot.frame.ksm_shared || slot.frame.refcount() > 1;
  if (!shared) {
    slot.frame.data = std::move(data);
    slot.intern = 0;  // content changed in place: token is stale
    ++stats_.regular_writes;
    return WriteOutcome{f, timing_.sample_regular(rng_), false};
  }
  // Copy-on-write: the writer gets a fresh exclusive frame; other sharers
  // keep the merged original untouched. `slot` may dangle after allocate()
  // grows the slot array — do not touch it past this point.
  const FrameNumber nf = allocate(std::move(data));
  remove_mapping(f, as, gfn);  // may free the original if we were last
  add_mapping(nf, as, gfn);
  as->root()->on_frame_repointed(gfn, nf);
  ++stats_.cow_breaks;
  return WriteOutcome{nf, timing_.sample_cow(rng_), true};
}

void HostPhysicalMemory::merge_frames(FrameNumber canonical, FrameNumber dup) {
  CSK_CHECK(canonical != dup);
  // Move every mapping of dup over to canonical. Copy the rmap first: the
  // remove/add calls below mutate it. No allocation happens in the loop, so
  // the canonical Frame reference stays valid throughout.
  const std::vector<Mapping> mappers = frame_mut(dup).rmap;
  Frame& cf = frame_mut(canonical);
  CSK_CHECK_MSG(cf.data.same_content(frame(dup).data),
                "KSM merge of frames with different content");
  for (const Mapping& m : mappers) {
    remove_mapping(dup, m.as, m.gfn);
    add_mapping(canonical, m.as, m.gfn);
    m.as->root()->on_frame_repointed(m.gfn, canonical);
  }
  cf.ksm_shared = true;
}

std::uint64_t HostPhysicalMemory::content_token(FrameNumber f) {
  Slot& slot = slots_[f.value()];
  if (slot.intern != 0) return slot.intern;
  const PageData& data = slot.frame.data;
  CSK_CHECK_MSG(data.bytes != nullptr, "interning a hash-only page");
  auto& bucket = interned_[data.hash.value];
  for (const auto& [token, payload] : bucket) {
    if (payload == data.bytes || *payload == *data.bytes) {
      slot.intern = token;
      return token;
    }
  }
  const std::uint64_t token = next_intern_++;
  bucket.emplace_back(token, data.bytes);
  slot.intern = token;
  return token;
}

bool HostPhysicalMemory::frames_same_content(FrameNumber a, FrameNumber b) {
  const Frame& fa = frame(a);
  const Frame& fb = frame(b);
  if (fa.data.hash != fb.data.hash) return false;
  // Hash-only on either side: hash equality decides, as in
  // PageData::same_content.
  if (fa.data.bytes == nullptr || fb.data.bytes == nullptr) return true;
  return content_token(a) == content_token(b);
}

void HostPhysicalMemory::set_stable(FrameNumber f, bool in_stable) {
  frame_mut(f).in_stable_tree = in_stable;
}

void HostPhysicalMemory::set_shared(FrameNumber f, bool shared) {
  frame_mut(f).ksm_shared = shared;
}

std::vector<FrameNumber> HostPhysicalMemory::live_frame_list() const {
  std::vector<FrameNumber> out;
  out.reserve(live_count_);
  for (std::uint64_t num = 1; num < slots_.size(); ++num) {
    if (slots_[num].live) out.push_back(FrameNumber(num));
  }
  return out;
}

std::size_t HostPhysicalMemory::interned_contents() const {
  std::size_t n = 0;
  for (const auto& [hash, bucket] : interned_) n += bucket.size();
  return n;
}

}  // namespace csk::mem
