#include "mem/phys_mem.h"

#include <algorithm>

#include "mem/addr_space.h"

namespace csk::mem {

HostPhysicalMemory::HostPhysicalMemory(MemTimingModel timing,
                                       std::uint64_t rng_seed)
    : timing_(timing), rng_(rng_seed) {}

FrameNumber HostPhysicalMemory::allocate(PageData data) {
  const FrameNumber f(next_frame_++);
  frames_.emplace(f.value(), Frame{std::move(data), {}, false, false});
  ++stats_.frames_allocated;
  return f;
}

const Frame& HostPhysicalMemory::frame(FrameNumber f) const {
  auto it = frames_.find(f.value());
  CSK_CHECK_MSG(it != frames_.end(), "access to freed frame");
  return it->second;
}

Frame& HostPhysicalMemory::frame_mut(FrameNumber f) {
  auto it = frames_.find(f.value());
  CSK_CHECK_MSG(it != frames_.end(), "access to freed frame");
  return it->second;
}

void HostPhysicalMemory::add_mapping(FrameNumber f, AddressSpace* as, Gfn gfn) {
  CSK_CHECK(as != nullptr);
  Frame& fr = frame_mut(f);
  fr.rmap.push_back(Mapping{as, gfn});
}

void HostPhysicalMemory::remove_mapping(FrameNumber f, AddressSpace* as,
                                        Gfn gfn) {
  Frame& fr = frame_mut(f);
  auto it = std::find(fr.rmap.begin(), fr.rmap.end(), Mapping{as, gfn});
  CSK_CHECK_MSG(it != fr.rmap.end(), "removing a mapping that does not exist");
  fr.rmap.erase(it);
  free_if_unmapped(f);
}

void HostPhysicalMemory::free_if_unmapped(FrameNumber f) {
  Frame& fr = frame_mut(f);
  if (!fr.rmap.empty()) return;
  frames_.erase(f.value());
  ++stats_.frames_freed;
}

HostPhysicalMemory::WriteOutcome HostPhysicalMemory::write(FrameNumber f,
                                                           AddressSpace* as,
                                                           Gfn gfn,
                                                           PageData data) {
  Frame& fr = frame_mut(f);
  const bool shared = fr.ksm_shared || fr.refcount() > 1;
  if (!shared) {
    fr.data = std::move(data);
    ++stats_.regular_writes;
    return WriteOutcome{f, timing_.sample_regular(rng_), false};
  }
  // Copy-on-write: the writer gets a fresh exclusive frame; other sharers
  // keep the merged original untouched.
  const FrameNumber nf = allocate(std::move(data));
  remove_mapping(f, as, gfn);  // may free the original if we were last
  add_mapping(nf, as, gfn);
  as->root()->on_frame_repointed(gfn, nf);
  ++stats_.cow_breaks;
  return WriteOutcome{nf, timing_.sample_cow(rng_), true};
}

void HostPhysicalMemory::merge_frames(FrameNumber canonical, FrameNumber dup) {
  CSK_CHECK(canonical != dup);
  Frame& cf = frame_mut(canonical);
  // Move every mapping of dup over to canonical. Copy the rmap first: the
  // remove/add calls below mutate it.
  const std::vector<Mapping> mappers = frame_mut(dup).rmap;
  CSK_CHECK_MSG(cf.data.same_content(frame(dup).data),
                "KSM merge of frames with different content");
  for (const Mapping& m : mappers) {
    remove_mapping(dup, m.as, m.gfn);
    add_mapping(canonical, m.as, m.gfn);
    m.as->root()->on_frame_repointed(m.gfn, canonical);
  }
  cf.ksm_shared = true;
}

void HostPhysicalMemory::set_stable(FrameNumber f, bool in_stable) {
  frame_mut(f).in_stable_tree = in_stable;
}

void HostPhysicalMemory::set_shared(FrameNumber f, bool shared) {
  frame_mut(f).ksm_shared = shared;
}

std::vector<FrameNumber> HostPhysicalMemory::live_frame_list() const {
  std::vector<FrameNumber> out;
  out.reserve(frames_.size());
  for (const auto& [num, fr] : frames_) out.push_back(FrameNumber(num));
  return out;
}

}  // namespace csk::mem
