#include "mem/addr_space.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace csk::mem {

namespace {
bool g_hot_path_counters = false;

const PageData& zero_page_ref() {
  static const PageData zero = PageData::zero();
  return zero;
}
}  // namespace

void set_hot_path_counters_enabled(bool enabled) {
  g_hot_path_counters = enabled;
}

bool hot_path_counters_enabled() { return g_hot_path_counters; }

AddressSpace::AddressSpace(HostPhysicalMemory* phys, std::size_t num_pages,
                           std::string name)
    : name_(std::move(name)), num_pages_(num_pages), phys_(phys) {
  CSK_CHECK(phys != nullptr);
  CSK_CHECK(num_pages > 0);
  table_.assign(num_pages_, 0);
  epochs_.assign(num_pages_, 0);
  dirty_words_.assign((num_pages_ + 63) / 64, 0);
  if (g_hot_path_counters) {
    c_harvested_pages_ = &obs::metrics().counter("mem.dirty.pages_harvested");
    c_harvested_words_ = &obs::metrics().counter("mem.dirty.words_scanned");
    c_zero_copy_reads_ = &obs::metrics().counter("mem.zero_copy_reads");
  }
}

AddressSpace::AddressSpace(AddressSpace* parent, std::vector<Gfn> window,
                           std::string name)
    : name_(std::move(name)),
      num_pages_(window.size()),
      parent_(parent),
      window_(std::move(window)) {
  CSK_CHECK(parent != nullptr);
  CSK_CHECK(!window_.empty());
  for (Gfn g : window_) {
    CSK_CHECK_MSG(g.value() < parent->size_pages(),
                  "view window outside parent address space");
  }
  dirty_words_.assign((num_pages_ + 63) / 64, 0);
  if (g_hot_path_counters) {
    c_harvested_pages_ = &obs::metrics().counter("mem.dirty.pages_harvested");
    c_harvested_words_ = &obs::metrics().counter("mem.dirty.words_scanned");
    c_zero_copy_reads_ = &obs::metrics().counter("mem.zero_copy_reads");
  }
}

AddressSpace::~AddressSpace() {
  if (is_view()) return;  // views own no frames
  for (std::uint64_t g = 0; g < num_pages_; ++g) {
    if (table_[g] != 0) {
      phys_->remove_mapping(FrameNumber(table_[g]), this, Gfn(g));
    }
  }
}

AddressSpace* AddressSpace::root() {
  AddressSpace* as = this;
  while (as->parent_ != nullptr) as = as->parent_;
  return as;
}

const AddressSpace* AddressSpace::root() const {
  const AddressSpace* as = this;
  while (as->parent_ != nullptr) as = as->parent_;
  return as;
}

void AddressSpace::check_gfn(Gfn gfn) const {
  CSK_CHECK_MSG(gfn.valid() && gfn.value() < num_pages_,
                "gfn out of range for address space " + name_);
}

ContentHash AddressSpace::read_hash(Gfn gfn) const {
  return read_page_ref(gfn).hash;
}

PageBytesRef AddressSpace::read_bytes(Gfn gfn) const {
  return read_page_ref(gfn).bytes;
}

PageData AddressSpace::read_page(Gfn gfn) const { return read_page_ref(gfn); }

const PageData& AddressSpace::read_page_ref(Gfn gfn) const {
  check_gfn(gfn);
  if (is_view()) return parent_->read_page_ref(window_[gfn.value()]);
  if (c_zero_copy_reads_ != nullptr) c_zero_copy_reads_->add();
  const std::uint64_t f = table_[gfn.value()];
  if (f == 0) return zero_page_ref();
  return phys_->frame(FrameNumber(f)).data;
}

FrameNumber AddressSpace::translate(Gfn gfn) const {
  check_gfn(gfn);
  if (is_view()) return parent_->translate(window_[gfn.value()]);
  const std::uint64_t f = table_[gfn.value()];
  if (f == 0) return FrameNumber::invalid();
  return FrameNumber(f);
}

FrameNumber AddressSpace::root_frame(Gfn gfn, bool materialize) {
  CSK_CHECK(!is_view());
  if (table_[gfn.value()] != 0) return FrameNumber(table_[gfn.value()]);
  if (!materialize) return FrameNumber::invalid();
  const FrameNumber f = phys_->allocate(PageData::zero());
  phys_->add_mapping(f, this, gfn);
  table_[gfn.value()] = f.value();
  epochs_[gfn.value()] = static_cast<std::uint32_t>(++map_epoch_);
  ++mapped_count_;
  return f;
}

WriteResult AddressSpace::write_page(Gfn gfn, PageData data) {
  check_gfn(gfn);
  if (write_observer_ != nullptr) {
    CSK_CHECK_MSG(!in_observer_,
                  "write observer re-entered its own address space");
    in_observer_ = true;
    write_observer_(gfn, data);
    in_observer_ = false;
  }
  if (page_watch_ != nullptr && is_watched(gfn)) {
    CSK_CHECK_MSG(!in_watch_, "page watch re-entered its own address space");
    in_watch_ = true;
    page_watch_(gfn, data);
    in_watch_ = false;
  }
  mark_dirty(gfn);
  if (is_view()) return parent_->write_page(window_[gfn.value()], std::move(data));

  const FrameNumber f = root_frame(gfn, /*materialize=*/true);
  const auto outcome = phys_->write(f, this, gfn, std::move(data));
  // phys_->write already repointed our table on a COW split.
  return WriteResult{outcome.cost, outcome.cow_broken};
}

std::vector<Gfn> AddressSpace::mapped_gfns() const {
  std::vector<Gfn> out;
  if (is_view()) {
    for (std::size_t i = 0; i < window_.size(); ++i) {
      if (parent_->is_mapped(window_[i])) out.push_back(Gfn(i));
    }
    return out;
  }
  out.reserve(mapped_count_);
  for (std::uint64_t g = 0; g < num_pages_; ++g) {
    if (table_[g] != 0) out.push_back(Gfn(g));
  }
  return out;
}

std::size_t AddressSpace::mapped_count() const {
  if (!is_view()) return mapped_count_;
  std::size_t n = 0;
  for (Gfn g : window_) {
    if (parent_->is_mapped(g)) ++n;
  }
  return n;
}

void AddressSpace::visit_mapped(
    const std::function<void(Gfn, const PageData&)>& fn) const {
  if (is_view()) {
    for (std::size_t i = 0; i < window_.size(); ++i) {
      if (parent_->is_mapped(window_[i])) {
        fn(Gfn(i), parent_->read_page_ref(window_[i]));
      }
    }
    return;
  }
  for (std::uint64_t g = 0; g < num_pages_; ++g) {
    if (table_[g] != 0) {
      if (c_zero_copy_reads_ != nullptr) c_zero_copy_reads_->add();
      fn(Gfn(g), phys_->frame(FrameNumber(table_[g])).data);
    }
  }
}

std::uint64_t AddressSpace::map_epoch() const {
  CSK_CHECK_MSG(!is_view(), "map epochs live on root spaces");
  return map_epoch_;
}

Gfn AddressSpace::next_mapped(Gfn from, std::uint64_t max_epoch) const {
  CSK_CHECK_MSG(!is_view(), "incremental scan runs on root spaces");
  for (std::uint64_t g = from.valid() ? from.value() : 0; g < num_pages_;
       ++g) {
    if (table_[g] != 0 && epochs_[g] <= max_epoch) return Gfn(g);
  }
  return Gfn::invalid();
}

void AddressSpace::enable_dirty_log() {
  dirty_log_enabled_ = true;
  std::fill(dirty_words_.begin(), dirty_words_.end(), 0);
  dirty_count_ = 0;
}

void AddressSpace::disable_dirty_log() {
  dirty_log_enabled_ = false;
  std::fill(dirty_words_.begin(), dirty_words_.end(), 0);
  dirty_count_ = 0;
}

std::vector<Gfn> AddressSpace::fetch_and_reset_dirty() {
  std::vector<Gfn> out;
  out.reserve(dirty_count_);
  for (std::size_t w = 0; w < dirty_words_.size(); ++w) {
    std::uint64_t word = dirty_words_[w];
    if (word == 0) continue;
    dirty_words_[w] = 0;
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(Gfn((w << 6) | static_cast<unsigned>(bit)));
      word &= word - 1;  // clear lowest set bit
    }
  }
  if (c_harvested_words_ != nullptr) c_harvested_words_->add(dirty_words_.size());
  if (c_harvested_pages_ != nullptr) c_harvested_pages_->add(out.size());
  dirty_count_ = 0;
  return out;
}

void AddressSpace::mark_dirty(Gfn gfn) {
  if (!dirty_log_enabled_) return;
  const std::uint64_t mask = std::uint64_t{1} << (gfn.value() & 63);
  std::uint64_t& word = dirty_words_[gfn.value() >> 6];
  if ((word & mask) == 0) {
    word |= mask;
    ++dirty_count_;
  }
}

void AddressSpace::set_write_observer(WriteObserver observer) {
  CSK_CHECK_MSG(write_observer_ == nullptr || observer == nullptr,
                "an observer is already installed");
  write_observer_ = std::move(observer);
}

void AddressSpace::watch_pages(const std::vector<Gfn>& gfns,
                               PageWatchHandler handler) {
  CSK_CHECK_MSG(handler != nullptr, "watch_pages needs a handler");
  if (watch_words_.empty()) watch_words_.assign((num_pages_ + 63) / 64, 0);
  std::fill(watch_words_.begin(), watch_words_.end(), 0);
  watched_count_ = 0;
  for (Gfn g : gfns) {
    check_gfn(g);
    std::uint64_t& word = watch_words_[g.value() >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (g.value() & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++watched_count_;
    }
  }
  page_watch_ = std::move(handler);
}

void AddressSpace::clear_page_watch() {
  page_watch_ = nullptr;
  std::fill(watch_words_.begin(), watch_words_.end(), 0);
  watched_count_ = 0;
}

void AddressSpace::on_frame_repointed(Gfn gfn, FrameNumber f) {
  CSK_CHECK_MSG(!is_view(), "only root spaces hold frame tables");
  // COW splits and merges repoint an already-materialized gfn: the map
  // epoch is deliberately left alone (the page's membership in the mapped
  // set did not change).
  table_[gfn.value()] = f.value();
}

}  // namespace csk::mem
