#include "mem/addr_space.h"

#include <algorithm>
#include <utility>

namespace csk::mem {

AddressSpace::AddressSpace(HostPhysicalMemory* phys, std::size_t num_pages,
                           std::string name)
    : name_(std::move(name)), num_pages_(num_pages), phys_(phys) {
  CSK_CHECK(phys != nullptr);
  CSK_CHECK(num_pages > 0);
}

AddressSpace::AddressSpace(AddressSpace* parent, std::vector<Gfn> window,
                           std::string name)
    : name_(std::move(name)),
      num_pages_(window.size()),
      parent_(parent),
      window_(std::move(window)) {
  CSK_CHECK(parent != nullptr);
  CSK_CHECK(!window_.empty());
  for (Gfn g : window_) {
    CSK_CHECK_MSG(g.value() < parent->size_pages(),
                  "view window outside parent address space");
  }
}

AddressSpace::~AddressSpace() {
  if (is_view()) return;  // views own no frames
  for (const auto& [gfn, frame] : table_) {
    phys_->remove_mapping(FrameNumber(frame), this, Gfn(gfn));
  }
}

AddressSpace* AddressSpace::root() {
  AddressSpace* as = this;
  while (as->parent_ != nullptr) as = as->parent_;
  return as;
}

const AddressSpace* AddressSpace::root() const {
  const AddressSpace* as = this;
  while (as->parent_ != nullptr) as = as->parent_;
  return as;
}

void AddressSpace::check_gfn(Gfn gfn) const {
  CSK_CHECK_MSG(gfn.valid() && gfn.value() < num_pages_,
                "gfn out of range for address space " + name_);
}

ContentHash AddressSpace::read_hash(Gfn gfn) const {
  check_gfn(gfn);
  if (is_view()) return parent_->read_hash(window_[gfn.value()]);
  auto it = table_.find(gfn.value());
  if (it == table_.end()) return ContentHash::zero_page();
  return phys_->frame(FrameNumber(it->second)).data.hash;
}

std::optional<PageBytes> AddressSpace::read_bytes(Gfn gfn) const {
  check_gfn(gfn);
  if (is_view()) return parent_->read_bytes(window_[gfn.value()]);
  auto it = table_.find(gfn.value());
  if (it == table_.end()) return std::nullopt;
  return phys_->frame(FrameNumber(it->second)).data.bytes;
}

PageData AddressSpace::read_page(Gfn gfn) const {
  check_gfn(gfn);
  if (is_view()) return parent_->read_page(window_[gfn.value()]);
  auto it = table_.find(gfn.value());
  if (it == table_.end()) return PageData::zero();
  return phys_->frame(FrameNumber(it->second)).data;
}

FrameNumber AddressSpace::translate(Gfn gfn) const {
  check_gfn(gfn);
  if (is_view()) return parent_->translate(window_[gfn.value()]);
  auto it = table_.find(gfn.value());
  if (it == table_.end()) return FrameNumber::invalid();
  return FrameNumber(it->second);
}

FrameNumber AddressSpace::root_frame(Gfn gfn, bool materialize) {
  CSK_CHECK(!is_view());
  auto it = table_.find(gfn.value());
  if (it != table_.end()) return FrameNumber(it->second);
  if (!materialize) return FrameNumber::invalid();
  const FrameNumber f = phys_->allocate(PageData::zero());
  phys_->add_mapping(f, this, gfn);
  table_[gfn.value()] = f.value();
  return f;
}

WriteResult AddressSpace::write_page(Gfn gfn, PageData data) {
  check_gfn(gfn);
  if (write_observer_ != nullptr) {
    CSK_CHECK_MSG(!in_observer_,
                  "write observer re-entered its own address space");
    in_observer_ = true;
    write_observer_(gfn, data);
    in_observer_ = false;
  }
  mark_dirty(gfn);
  if (is_view()) return parent_->write_page(window_[gfn.value()], std::move(data));

  const FrameNumber f = root_frame(gfn, /*materialize=*/true);
  const auto outcome = phys_->write(f, this, gfn, std::move(data));
  // phys_->write already repointed our table on a COW split.
  return WriteResult{outcome.cost, outcome.cow_broken};
}

std::vector<Gfn> AddressSpace::mapped_gfns() const {
  std::vector<Gfn> out;
  if (is_view()) {
    for (std::size_t i = 0; i < window_.size(); ++i) {
      if (parent_->is_mapped(window_[i])) out.push_back(Gfn(i));
    }
    return out;
  }
  out.reserve(table_.size());
  for (const auto& [gfn, frame] : table_) out.push_back(Gfn(gfn));
  std::sort(out.begin(), out.end());
  return out;
}

void AddressSpace::enable_dirty_log() {
  dirty_log_enabled_ = true;
  dirty_.clear();
}

void AddressSpace::disable_dirty_log() {
  dirty_log_enabled_ = false;
  dirty_.clear();
}

std::vector<Gfn> AddressSpace::fetch_and_reset_dirty() {
  std::vector<Gfn> out;
  out.reserve(dirty_.size());
  for (const auto& [gfn, _] : dirty_) out.push_back(Gfn(gfn));
  std::sort(out.begin(), out.end());
  dirty_.clear();
  return out;
}

void AddressSpace::mark_dirty(Gfn gfn) {
  if (dirty_log_enabled_) dirty_[gfn.value()] = true;
}

void AddressSpace::set_write_observer(WriteObserver observer) {
  CSK_CHECK_MSG(write_observer_ == nullptr || observer == nullptr,
                "an observer is already installed");
  write_observer_ = std::move(observer);
}

void AddressSpace::on_frame_repointed(Gfn gfn, FrameNumber f) {
  CSK_CHECK_MSG(!is_view(), "only root spaces hold frame tables");
  table_[gfn.value()] = f.value();
}

}  // namespace csk::mem
