#include "cve/vm_escape_cves.h"

namespace csk::cve {

const char* platform_name(Platform p) {
  switch (p) {
    case Platform::kVmware: return "VMware";
    case Platform::kVirtualBox: return "VirtualBox";
    case Platform::kXen: return "Xen";
    case Platform::kHyperV: return "Hyper-V";
    case Platform::kKvmQemu: return "KVM/QEMU";
    case Platform::kCount_: break;
  }
  return "?";
}

namespace {

std::vector<VmEscapeCve> build_dataset() {
  using P = Platform;
  struct Row {
    int year;
    P platform;
    std::vector<const char*> suffixes;  // appended to "CVE-<year>-"
  };
  const Row rows[] = {
      // 2015
      {2015, P::kVmware, {"2336", "2337", "2338", "2339", "2340"}},
      {2015, P::kXen, {"7835"}},
      {2015, P::kHyperV, {"2361", "2362"}},
      {2015, P::kKvmQemu, {"3209", "3456", "5165", "7504", "5154"}},
      // 2016
      {2016, P::kVmware, {"7082", "7083", "7084", "7461"}},
      {2016, P::kXen, {"6258", "7092"}},
      {2016, P::kHyperV, {"0088"}},
      {2016, P::kKvmQemu, {"3710", "4440", "9603"}},
      // 2017
      {2017, P::kVmware, {"4903", "4934", "4936"}},
      {2017, P::kVirtualBox, {"3538"}},
      {2017, P::kXen, {"8903", "8904", "8905", "10920", "10921", "17566"}},
      {2017, P::kHyperV, {"0075", "0109", "8664"}},
      {2017, P::kKvmQemu, {"2615", "2620", "2630", "5931", "5667", "14167"}},
      // 2018
      {2018, P::kVmware, {"6981", "6982"}},
      {2018, P::kVirtualBox, {"2676", "2685", "2686", "2687", "2688", "2689",
                              "2690", "2693", "2694", "2698", "2844"}},
      {2018, P::kHyperV, {"8439", "8489", "8490"}},
      {2018, P::kKvmQemu, {"7550", "16847"}},
      // 2019
      {2019, P::kVmware, {"0964", "5049", "5124", "5146", "5147"}},
      {2019, P::kVirtualBox, {"2723", "3028"}},
      {2019, P::kXen,
       {"18420", "18421", "18422", "18423", "18424", "18425"}},
      {2019, P::kHyperV, {"0620", "0709", "0722", "0887"}},
      {2019, P::kKvmQemu, {"6778", "7221", "14835", "14378", "18389"}},
      // 2020
      {2020, P::kVmware, {"3962", "3963", "3964", "3965", "3966", "3967",
                          "3968", "3969", "3970", "3971"}},
      {2020, P::kVirtualBox, {"2929"}},
      {2020, P::kHyperV, {"0910"}},
      {2020, P::kKvmQemu, {"1711", "14364"}},
  };

  std::vector<VmEscapeCve> out;
  for (const Row& row : rows) {
    for (const char* suffix : row.suffixes) {
      out.push_back(VmEscapeCve{
          "CVE-" + std::to_string(row.year) + "-" + suffix, row.year,
          row.platform});
    }
  }
  return out;
}

}  // namespace

const std::vector<VmEscapeCve>& vm_escape_cves() {
  static const std::vector<VmEscapeCve> dataset = build_dataset();
  return dataset;
}

std::uint32_t CveMatrix::year_total(int year) const {
  std::uint32_t t = 0;
  for (std::size_t p = 0; p < kNumPlatforms; ++p) {
    t += counts[year - kFirstYear][p];
  }
  return t;
}

std::uint32_t CveMatrix::platform_total(Platform p) const {
  std::uint32_t t = 0;
  for (int y = 0; y <= kLastYear - kFirstYear; ++y) {
    t += counts[y][static_cast<std::size_t>(p)];
  }
  return t;
}

std::uint32_t CveMatrix::grand_total() const {
  std::uint32_t t = 0;
  for (int y = kFirstYear; y <= kLastYear; ++y) t += year_total(y);
  return t;
}

CveMatrix count_matrix() {
  CveMatrix m;
  for (const VmEscapeCve& cve : vm_escape_cves()) {
    ++m.counts[cve.year - CveMatrix::kFirstYear]
              [static_cast<std::size_t>(cve.platform)];
  }
  return m;
}

std::vector<VmEscapeCve> cves_for_platform(Platform p) {
  std::vector<VmEscapeCve> out;
  for (const VmEscapeCve& cve : vm_escape_cves()) {
    if (cve.platform == p) out.push_back(cve);
  }
  return out;
}

std::vector<VmEscapeCve> cves_for_year(int year) {
  std::vector<VmEscapeCve> out;
  for (const VmEscapeCve& cve : vm_escape_cves()) {
    if (cve.year == year) out.push_back(cve);
  }
  return out;
}

}  // namespace csk::cve
