/// \file
/// VM-escape vulnerability dataset (paper Table I).
///
/// The 96 VM-escape CVEs reported 2015-2020 across the five mainstream
/// hypervisor stacks, exactly as the paper tabulates them. This is the
/// threat-model evidence: the rootkit's step 1 ("break out of a VM") rests
/// on the steady supply of these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace csk::cve {

enum class Platform : int {
  kVmware = 0,
  kVirtualBox,
  kXen,
  kHyperV,
  kKvmQemu,
  kCount_,
};

inline constexpr std::size_t kNumPlatforms =
    static_cast<std::size_t>(Platform::kCount_);

const char* platform_name(Platform p);

struct VmEscapeCve {
  std::string id;  // "CVE-2019-6778"
  int year;
  Platform platform;
};

/// The full Table I dataset.
const std::vector<VmEscapeCve>& vm_escape_cves();

/// Count matrix indexed by [year - 2015][platform].
struct CveMatrix {
  static constexpr int kFirstYear = 2015;
  static constexpr int kLastYear = 2020;
  std::uint32_t counts[6][kNumPlatforms] = {};

  std::uint32_t year_total(int year) const;
  std::uint32_t platform_total(Platform p) const;
  std::uint32_t grand_total() const;
};

CveMatrix count_matrix();

/// CVEs filtered by platform / year (query helpers).
std::vector<VmEscapeCve> cves_for_platform(Platform p);
std::vector<VmEscapeCve> cves_for_year(int year);

}  // namespace csk::cve
