#include "sim/simulator.h"

#include <utility>

namespace csk::sim {

void Simulator::push(SimTime when, EventId id, EventFn fn) {
  queue_.push(Entry{when, seq_++, id, std::move(fn)});
}

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  CSK_CHECK_MSG(when >= now_, "cannot schedule an event in the simulated past");
  CSK_CHECK(fn != nullptr);
  const EventId id = ids_.next();
  push(when, id, std::move(fn));
  return id;
}

EventId Simulator::schedule_after(SimDuration delay, EventFn fn) {
  CSK_CHECK(delay >= SimDuration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  if (periodic_.erase(id) > 0) return true;  // task body gone; firings no-op
  // One-shot events cannot be removed from the middle of a priority queue;
  // leave a tombstone that dispatch consumes.
  return cancelled_.insert(id).second;
}

EventId Simulator::schedule_periodic(SimDuration interval,
                                     std::function<bool()> fn) {
  CSK_CHECK(interval > SimDuration::zero());
  CSK_CHECK(fn != nullptr);
  const EventId id = ids_.next();
  periodic_.emplace(id, std::move(fn));
  push(now_ + interval, EventId::invalid(),
       [this, id, interval] { fire_periodic(id, interval); });
  return id;
}

void Simulator::fire_periodic(EventId id, SimDuration interval) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return;  // cancelled
  if (!it->second()) {
    periodic_.erase(id);
    return;
  }
  push(now_ + interval, EventId::invalid(),
       [this, id, interval] { fire_periodic(id, interval); });
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (e.id.valid()) {
      auto it = cancelled_.find(e.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;  // tombstoned one-shot: skip without dispatching
      }
    }
    CSK_CHECK(e.when >= now_);
    now_ = e.when;
    ++dispatched_;
    e.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime deadline) {
  CSK_CHECK(deadline >= now_);
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (!step()) break;
  }
  now_ = deadline;
}

std::uint64_t Simulator::run_until_idle(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    CSK_CHECK_MSG(++n <= max_events, "runaway event loop");
  }
  return n;
}

void Simulator::advance(SimDuration d) {
  CSK_CHECK(d >= SimDuration::zero());
  run_until(now_ + d);
}

}  // namespace csk::sim
