#include "sim/simulator.h"

#include <utility>

#include "obs/trace.h"

namespace csk::sim {

void Simulator::push(SimTime when, EventId id, EventFn fn) {
  queue_.push(Entry{when, seq_++, id, std::move(fn)});
}

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  CSK_CHECK_MSG(when >= now_, "cannot schedule an event in the simulated past");
  CSK_CHECK(fn != nullptr);
  const EventId id = ids_.next();
  live_.insert(id);
  push(when, id, std::move(fn));
  return id;
}

EventId Simulator::schedule_after(SimDuration delay, EventFn fn) {
  CSK_CHECK(delay >= SimDuration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  if (periodic_.erase(id) > 0) return true;  // task body gone; firings no-op
  // One-shot events cannot be removed from the middle of a priority queue;
  // leave a tombstone that dispatch consumes. Only a *live* (still-queued,
  // not-yet-cancelled) event may be tombstoned: this keeps the documented
  // "returns false if it already ran" contract truthful and guarantees every
  // tombstone has exactly one queue entry left to consume it.
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

EventId Simulator::schedule_periodic(SimDuration interval,
                                     std::function<bool()> fn) {
  CSK_CHECK(interval > SimDuration::zero());
  CSK_CHECK(fn != nullptr);
  const EventId id = ids_.next();
  periodic_.emplace(id, std::move(fn));
  push(now_ + interval, EventId::invalid(),
       [this, id, interval] { fire_periodic(id, interval); });
  return id;
}

void Simulator::fire_periodic(EventId id, SimDuration interval) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return;  // cancelled
  // Invoke a copy of the body: the callback may cancel() its own task, which
  // erases the map entry — destroying the stored callable mid-call otherwise.
  const std::function<bool()> body = it->second;
  const bool keep = body();
  if (!periodic_.contains(id)) return;  // cancelled from inside the callback
  if (!keep) {
    periodic_.erase(id);
    return;
  }
  push(now_ + interval, EventId::invalid(),
       [this, id, interval] { fire_periodic(id, interval); });
}

void Simulator::prune_cancelled_head() {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (!top.id.valid()) return;
    auto it = cancelled_.find(top.id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Simulator::step() {
  prune_cancelled_head();
  if (queue_.empty()) return false;
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  if (e.id.valid()) live_.erase(e.id);
  CSK_CHECK_MSG(e.when >= now_, "simulator clock may never move backwards");
  now_ = e.when;
  ++dispatched_;
  obs::tracer().instant("sim.dispatch", now_, "sim");
  e.fn();
  return true;
}

void Simulator::run_until(SimTime deadline) {
  CSK_CHECK(deadline >= now_);
  // Tombstones must be skipped *before* the deadline comparison: a cancelled
  // entry at the head with when <= deadline must not admit a later real
  // event past the deadline (and then drag the clock backwards).
  for (prune_cancelled_head();
       !queue_.empty() && queue_.top().when <= deadline;
       prune_cancelled_head()) {
    if (!step()) break;
  }
  CSK_CHECK_MSG(now_ <= deadline, "run_until dispatched past its deadline");
  now_ = deadline;
}

std::uint64_t Simulator::run_until_idle(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    CSK_CHECK_MSG(++n <= max_events, "runaway event loop");
  }
  return n;
}

void Simulator::advance(SimDuration d) {
  CSK_CHECK(d >= SimDuration::zero());
  run_until(now_ + d);
}

}  // namespace csk::sim
