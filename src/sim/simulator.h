/// \file
/// Discrete-event simulation kernel.
///
/// All time in the CloudSkulk reproduction is virtual: components schedule
/// callbacks at future SimTimes and the Simulator dispatches them in
/// timestamp order (FIFO among equal timestamps). Periodic activities — the
/// ksmd scan loop, migration round pacing, workload dirty-page ticks — are
/// built on top of one-shot events.
///
/// The kernel is single-threaded by design: determinism is a feature. The
/// simulated systems contain plenty of *modeled* concurrency (VMs, daemons,
/// network flows), but the engine interleaves them deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"

namespace csk::sim {

/// One-shot callback; runs exactly once unless cancelled first.
using EventFn = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`. Precondition: when >= now().
  EventId schedule_at(SimTime when, EventFn fn);

  /// Schedules `fn` after `delay` from now. Precondition: delay >= 0.
  EventId schedule_after(SimDuration delay, EventFn fn);

  /// Cancels a pending one-shot event or a periodic task. Returns false if
  /// it already ran or was cancelled. Safe to call from inside an event,
  /// including a periodic task cancelling itself.
  bool cancel(EventId id);

  /// Repeatedly runs `fn` every `interval`, first firing after `interval`.
  /// `fn` returns true to keep the task alive, false to stop it.
  EventId schedule_periodic(SimDuration interval, std::function<bool()> fn);

  /// Dispatches the next event. Returns false when the queue is empty.
  bool step();

  /// Runs events with timestamp <= `deadline`; the clock then advances to
  /// `deadline` even if the queue drained earlier. Events strictly after
  /// `deadline` never run, and the clock never moves backwards.
  void run_until(SimTime deadline);

  /// Convenience: run_until(now() + d).
  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Runs until no events remain. `max_events` guards against runaway
  /// self-rescheduling loops. Returns the number of events dispatched.
  std::uint64_t run_until_idle(std::uint64_t max_events = 100'000'000);

  /// Exact number of dispatchable entries still queued. Cancelled one-shot
  /// tombstones are excluded; a cancelled periodic task's already-queued
  /// re-firing still counts (it dispatches as a no-op).
  std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  /// Total events dispatched since construction.
  std::uint64_t dispatched() const { return dispatched_; }

  /// Advances the clock, dispatching anything due on the way — used by
  /// analytic cost models to charge computed durations. Precondition: d >= 0.
  void advance(SimDuration d);

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;         // invalid for internal periodic re-firings
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void fire_periodic(EventId id, SimDuration interval);
  void push(SimTime when, EventId id, EventFn fn);
  /// Pops cancelled one-shot tombstones sitting at the queue head, so that
  /// queue_.top() (when present) is always a dispatchable entry.
  void prune_cancelled_head();

  SimTime now_;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  IdAllocator<EventId> ids_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // One-shot ids currently in the queue. Membership is what makes cancel()
  // truthful: an id absent from here has already run (or was cancelled).
  std::unordered_set<EventId> live_;
  // Cancelled-but-still-queued one-shots; always a subset of queue entries,
  // so every tombstone is eventually consumed (no leak).
  std::unordered_set<EventId> cancelled_;
  // Periodic task bodies live here so that cancel() is an O(1) erase and the
  // queued closures hold no owning self-references.
  std::unordered_map<EventId, std::function<bool()>> periodic_;
};

}  // namespace csk::sim
