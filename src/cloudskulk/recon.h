/// \file
/// Target reconnaissance (paper §IV-A, first half).
///
/// Before the rootkit can impersonate a VM it must recover the target's full
/// QEMU configuration, because live migration demands a matching destination
/// machine. The paper names three escalating sources, all implemented here:
///   1. shell history — the original qemu command line verbatim;
///   2. `ps -ef`       — the running process's command line;
///   3. the QEMU monitor — `info qtree` / `info mtree` / `info network` /
///      `info block` introspection when neither history nor ps is usable,
///      reassembling the MachineConfig from device-level facts.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "vmm/host.h"
#include "vmm/machine_config.h"

namespace csk::cloudskulk {

struct ReconReport {
  vmm::MachineConfig config;
  std::string qemu_cmdline;  // recovered or reconstructed
  Pid host_pid;              // the target QEMU process on the host
  VmId vm;
  /// Which sources produced the result, in the order they were consulted.
  std::vector<std::string> evidence;
};

class TargetRecon {
 public:
  struct Options {
    bool use_history = true;
    bool use_ps = true;
    bool use_monitor = true;
  };

  explicit TargetRecon(vmm::Host* host) : TargetRecon(host, Options()) {}
  TargetRecon(vmm::Host* host, Options options);

  /// Full recon of the VM named `vm_name` on the host.
  Result<ReconReport> discover(const std::string& vm_name);

  /// Monitor-only reconstruction (the paper's fallback when system-level
  /// utilities are unavailable): rebuilds a MachineConfig from `info`
  /// command output alone.
  Result<vmm::MachineConfig> introspect_via_monitor(
      std::uint16_t telnet_port) const;

 private:
  Result<std::string> cmdline_from_history(const std::string& vm_name) const;
  Result<std::string> cmdline_from_ps(const std::string& vm_name) const;

  vmm::Host* host_;
  Options options_;
};

/// Parses `info network` output back into netdev configs (exposed for
/// tests; used by monitor introspection).
Result<std::vector<vmm::NetdevConfig>> parse_info_network(
    const std::string& text);

/// Parses the RAM size in MiB out of `info mtree` output.
Result<std::uint64_t> parse_info_mtree_ram_mb(const std::string& text);

}  // namespace csk::cloudskulk
