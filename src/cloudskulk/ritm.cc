#include "cloudskulk/ritm.h"

namespace csk::cloudskulk {

RitmVm::RitmVm(vmm::VirtualMachine* rootkit, vmm::VirtualMachine* nested)
    : rootkit_(rootkit), nested_(nested) {
  CSK_CHECK(rootkit != nullptr && nested != nullptr);
  CSK_CHECK_MSG(nested->parent() == rootkit,
                "victim VM is not nested inside the rootkit VM");
}

void RitmVm::add_tap(net::PacketTap* tap) {
  for (net::PortForwarder* fwd : nested_->forwarders()) fwd->add_tap(tap);
}

void RitmVm::remove_tap(net::PacketTap* tap) {
  for (net::PortForwarder* fwd : nested_->forwarders()) fwd->remove_tap(tap);
}

Result<guestos::ParsedProcTable> RitmVm::introspect_victim() const {
  auto bytes = nested_->memory().read_bytes(Gfn(guestos::kProcTableGfn));
  if (!bytes) {
    return not_found("victim proc-table page not materialized");
  }
  return guestos::parse_proc_table(*bytes);
}

Result<guestos::OsIdentity> RitmVm::victim_identity() const {
  CSK_ASSIGN_OR_RETURN(guestos::ParsedProcTable table, introspect_victim());
  return table.identity;
}

}  // namespace csk::cloudskulk
