#include "cloudskulk/services/passive.h"

#include <algorithm>

namespace csk::cloudskulk {

PacketLogger::PacketLogger(sim::Simulator* simulator,
                           std::size_t excerpt_bytes)
    : simulator_(simulator), excerpt_bytes_(excerpt_bytes) {
  CSK_CHECK(simulator != nullptr);
}

net::PacketTap::Verdict PacketLogger::inspect(net::Packet& pkt,
                                              Direction dir) {
  Entry e;
  e.when = simulator_->now();
  e.dir = dir;
  e.kind = pkt.kind;
  e.bytes = pkt.wire_bytes;
  e.excerpt = pkt.payload.substr(0, excerpt_bytes_);
  total_bytes_ += pkt.wire_bytes;
  entries_.push_back(std::move(e));
  return Verdict::kPass;
}

KeystrokeLogger::KeystrokeLogger(sim::Simulator* simulator)
    : simulator_(simulator) {
  CSK_CHECK(simulator != nullptr);
}

net::PacketTap::Verdict KeystrokeLogger::inspect(net::Packet& pkt,
                                                 Direction dir) {
  if (dir == Direction::kForward &&
      pkt.kind == net::ProtoKind::kSshKeystroke) {
    transcript_ += pkt.payload.view();
    keystrokes_ += pkt.payload.size();
  }
  return Verdict::kPass;
}

VmiMonitor::VmiMonitor(sim::Simulator* simulator, RitmVm* ritm)
    : simulator_(simulator), ritm_(ritm) {
  CSK_CHECK(simulator != nullptr && ritm != nullptr);
}

VmiMonitor::~VmiMonitor() { stop(); }

Result<VmiMonitor::Snapshot> VmiMonitor::snapshot() {
  CSK_ASSIGN_OR_RETURN(guestos::ParsedProcTable table,
                       ritm_->introspect_victim());
  Snapshot s;
  s.when = simulator_->now();
  s.identity = table.identity;
  s.process_names.reserve(table.procs.size());
  for (const guestos::Process& p : table.procs) {
    s.process_names.push_back(p.name);
  }
  history_.push_back(s);
  return s;
}

void VmiMonitor::start(SimDuration interval) {
  if (task_.valid()) return;
  task_ = simulator_->schedule_periodic(interval, [this] {
    (void)snapshot();
    return true;
  });
}

void VmiMonitor::stop() {
  if (!task_.valid()) return;
  simulator_->cancel(task_);
  task_ = EventId::invalid();
}

std::vector<std::string> VmiMonitor::new_processes_since_first() const {
  if (history_.size() < 2) return {};
  const auto& base = history_.front().process_names;
  std::vector<std::string> out;
  for (const std::string& name : history_.back().process_names) {
    if (std::find(base.begin(), base.end(), name) == base.end()) {
      out.push_back(name);
    }
  }
  return out;
}

ParallelMaliciousOs::ParallelMaliciousOs(RitmVm* ritm, Options options)
    : ritm_(ritm), options_(std::move(options)) {
  CSK_CHECK(ritm != nullptr);
}

Status ParallelMaliciousOs::deploy() {
  if (vm_ != nullptr) return already_exists("already deployed");
  vmm::MachineConfig cfg;
  cfg.name = options_.vm_name;
  cfg.memory_mb = options_.memory_mb;
  cfg.drives.push_back({"updater.qcow2", "qcow2", 2048});
  // A deliberately slim OS: boot touches a quarter of its RAM.
  CSK_ASSIGN_OR_RETURN(
      vm_, ritm_->rootkit_vm()->launch_nested_vm(cfg, options_.memory_mb / 4));
  vm_->os()->spawn("phishd", "/usr/local/bin/phishd -p " +
                                 std::to_string(options_.phishing_port));
  vm_->os()->spawn("spam-relay", "/usr/local/bin/spam-relay");
  vm_->os()->spawn("ddos-zombie", "/usr/local/bin/zombie --c2 10.6.6.6");
  // Phishing web service: answers anything that reaches its port.
  auto bound = vm_->bind_guest_port(Port(options_.phishing_port),
                                    [this](net::Packet pkt) {
                                      ++served_;
                                      (void)pkt;
                                    });
  CSK_RETURN_IF_ERROR(bound.status());
  return Status::ok();
}

}  // namespace csk::cloudskulk
