/// \file
/// Passive RITM services (paper §IV-B1): observe without perturbing.
///
///   * PacketLogger     — records every packet crossing the RITM position;
///   * KeystrokeLogger  — the classic keylogger, lifted from the kernel to
///     the middle of the SSH path: plaintext is captured where the rootkit
///     sits, before/after the victim's own encryption boundary;
///   * VmiMonitor       — offensive virtual machine introspection: periodic
///     snapshots of the victim's process table read out of its RAM;
///   * ParallelMaliciousOs — a second OS run by the attacker's hypervisor
///     beside the victim (phishing web service, spam relay, DDoS zombie).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloudskulk/ritm.h"
#include "common/status.h"
#include "common/time.h"
#include "net/port_forward.h"
#include "sim/simulator.h"
#include "vmm/vm.h"

namespace csk::cloudskulk {

class PacketLogger final : public net::PacketTap {
 public:
  struct Entry {
    SimTime when;
    net::PacketTap::Direction dir;
    net::ProtoKind kind;
    std::uint64_t bytes;
    std::string excerpt;  // first bytes of payload
  };

  explicit PacketLogger(sim::Simulator* simulator,
                        std::size_t excerpt_bytes = 48);

  Verdict inspect(net::Packet& pkt, Direction dir) override;

  const std::vector<Entry>& entries() const { return entries_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  sim::Simulator* simulator_;
  std::size_t excerpt_bytes_;
  std::vector<Entry> entries_;
  std::uint64_t total_bytes_ = 0;
};

class KeystrokeLogger final : public net::PacketTap {
 public:
  explicit KeystrokeLogger(sim::Simulator* simulator);

  Verdict inspect(net::Packet& pkt, Direction dir) override;

  /// Everything the victim typed, in order.
  const std::string& transcript() const { return transcript_; }
  std::size_t keystrokes() const { return keystrokes_; }

 private:
  sim::Simulator* simulator_;
  std::string transcript_;
  std::size_t keystrokes_ = 0;
};

/// Periodic offensive VMI over the nested victim.
class VmiMonitor {
 public:
  struct Snapshot {
    SimTime when;
    guestos::OsIdentity identity;
    std::vector<std::string> process_names;
  };

  VmiMonitor(sim::Simulator* simulator, RitmVm* ritm);
  ~VmiMonitor();

  /// Takes one snapshot immediately.
  Result<Snapshot> snapshot();

  /// Starts periodic snapshots.
  void start(SimDuration interval);
  void stop();

  const std::vector<Snapshot>& history() const { return history_; }

  /// Process names seen in a later snapshot but not the first (spotting
  /// what the victim started since observation began).
  std::vector<std::string> new_processes_since_first() const;

 private:
  sim::Simulator* simulator_;
  RitmVm* ritm_;
  std::vector<Snapshot> history_;
  EventId task_ = EventId::invalid();
};

/// The attacker's own OS running beside the victim under the L1 hypervisor.
class ParallelMaliciousOs {
 public:
  struct Options {
    std::string vm_name = "updater";  // innocuous-looking
    std::uint64_t memory_mb = 256;
    std::uint16_t phishing_port = 8080;
  };

  explicit ParallelMaliciousOs(RitmVm* ritm)
      : ParallelMaliciousOs(ritm, Options()) {}
  ParallelMaliciousOs(RitmVm* ritm, Options options);

  /// Launches the VM inside GuestX and starts its malicious services.
  Status deploy();
  bool deployed() const { return vm_ != nullptr; }

  vmm::VirtualMachine* vm() { return vm_; }
  std::uint64_t phishing_requests_served() const { return served_; }

 private:
  RitmVm* ritm_;
  Options options_;
  vmm::VirtualMachine* vm_ = nullptr;
  std::uint64_t served_ = 0;
};

}  // namespace csk::cloudskulk
