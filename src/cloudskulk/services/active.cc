#include "cloudskulk/services/active.h"

namespace csk::cloudskulk {

TamperRule make_email_dropper(std::string needle) {
  TamperRule r;
  r.name = "email-dropper";
  r.kind = net::ProtoKind::kSmtpMail;
  r.match = std::move(needle);
  r.action = TamperRule::Action::kDrop;
  return r;
}

TamperRule make_web_response_rewriter(std::string from, std::string to) {
  TamperRule r;
  r.name = "web-response-rewriter";
  r.kind = net::ProtoKind::kHttpResponse;
  r.direction = net::PacketTap::Direction::kReverse;
  r.match = std::move(from);
  r.action = TamperRule::Action::kRewrite;
  r.replacement = std::move(to);
  return r;
}

TamperRule make_web_request_dropper(std::string path_needle) {
  TamperRule r;
  r.name = "web-request-dropper";
  r.kind = net::ProtoKind::kHttpRequest;
  r.direction = net::PacketTap::Direction::kForward;
  r.match = std::move(path_needle);
  r.action = TamperRule::Action::kDrop;
  return r;
}

void PacketTamperer::add_rule(TamperRule rule) {
  rules_.push_back(std::move(rule));
  stats_.emplace_back();
}

net::PacketTap::Verdict PacketTamperer::inspect(net::Packet& pkt,
                                                Direction dir) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const TamperRule& rule = rules_[i];
    if (rule.kind && *rule.kind != pkt.kind) continue;
    if (rule.direction && *rule.direction != dir) continue;
    std::size_t pos = 0;
    if (!rule.match.empty()) {
      pos = pkt.payload.find(rule.match);
      if (pos == std::string::npos) continue;
    }
    ++stats_[i].matched;
    if (rule.action == TamperRule::Action::kDrop) {
      ++stats_[i].dropped;
      return Verdict::kDrop;
    }
    // Payload buffers are shared and immutable: rewrite = copy out, edit,
    // swap in a fresh buffer (other refs to the original are unaffected).
    std::string rewritten = pkt.payload.str();
    rewritten.replace(pos, rule.match.size(), rule.replacement);
    pkt.payload = net::PayloadRef(std::move(rewritten));
    ++stats_[i].rewritten;
    // A rewritten packet continues through later rules, like an iptables
    // chain without an ACCEPT shortcut.
  }
  return Verdict::kPass;
}

}  // namespace csk::cloudskulk
