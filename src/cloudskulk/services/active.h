/// \file
/// Active RITM services (paper §IV-B2): tamper with victim traffic.
///
/// PacketTamperer applies an ordered rule list to everything crossing the
/// RITM position. The paper's two examples are provided as rule factories:
/// dropping/deleting email at a victim mail server, and rewriting responses
/// served by a victim web service.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/port_forward.h"

namespace csk::cloudskulk {

struct TamperRule {
  enum class Action { kDrop, kRewrite };

  std::string name;
  /// Apply only to this protocol (unset = any).
  std::optional<net::ProtoKind> kind;
  /// Apply only in this direction (unset = both).
  std::optional<net::PacketTap::Direction> direction;
  /// Payload substring that triggers the rule (empty = always).
  std::string match;
  Action action = Action::kDrop;
  /// For kRewrite: text replacing `match` (first occurrence per packet).
  std::string replacement;
};

/// Builds the paper's email-manipulation example: silently drop any mail
/// whose body mentions `needle`.
TamperRule make_email_dropper(std::string needle);

/// Builds the paper's web-manipulation example: rewrite `from` to `to`
/// inside responses served by the victim's web service.
TamperRule make_web_response_rewriter(std::string from, std::string to);

/// Drops a fraction-free, deterministic class of web requests (e.g. every
/// request naming a path) — "attackers can easily drop certain requests".
TamperRule make_web_request_dropper(std::string path_needle);

class PacketTamperer final : public net::PacketTap {
 public:
  struct RuleStats {
    std::uint64_t matched = 0;
    std::uint64_t dropped = 0;
    std::uint64_t rewritten = 0;
  };

  void add_rule(TamperRule rule);
  const std::vector<TamperRule>& rules() const { return rules_; }
  const std::vector<RuleStats>& stats() const { return stats_; }

  Verdict inspect(net::Packet& pkt, Direction dir) override;

 private:
  std::vector<TamperRule> rules_;
  std::vector<RuleStats> stats_;
};

}  // namespace csk::cloudskulk
