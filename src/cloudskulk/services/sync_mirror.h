/// \file
/// SyncMirrorService — the §VI-D evasion, with its price tag.
///
/// The paper concedes that an attacker could beat the dedup detector by
/// mirroring every change the victim makes into the impersonating L1 — but
/// argues the cost is "unrealistically expensive": synchronizing even one
/// page requires write-protecting *all* of the victim's pages and trapping
/// every write, and the trapping machinery is itself visible.
///
/// This service implements that attacker faithfully so the claim can be
/// measured instead of asserted: it write-protects the nested victim's
/// memory (an AddressSpace write observer standing in for L1 EPT
/// write-protection), mirrors tracked-file changes into the L1 page cache
/// *synchronously* — beating ksmd's asynchronous scan by construction — and
/// accounts one nested VM exit per victim write. bench_ablation_mirror_cost
/// turns the counters into the paper's argument: double-digit percent
/// overhead on write-heavy workloads, i.e. a performance anomaly far louder
/// than the one CloudSkulk was built to avoid.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloudskulk/ritm.h"
#include "common/status.h"
#include "common/time.h"
#include "hv/timing_model.h"

namespace csk::cloudskulk {

class SyncMirrorService {
 public:
  struct Stats {
    std::uint64_t write_traps = 0;      // every victim page write
    std::uint64_t pages_mirrored = 0;   // tracked-file pages synchronized
    /// Extra time the victim spends in traps (one L2 exit per write).
    SimDuration victim_overhead;
  };

  SyncMirrorService(RitmVm* ritm, const hv::TimingModel* timing);
  ~SyncMirrorService();
  SyncMirrorService(const SyncMirrorService&) = delete;
  SyncMirrorService& operator=(const SyncMirrorService&) = delete;

  /// Write-protects the victim's memory and starts trapping.
  Status start();
  void stop();
  bool running() const { return running_; }

  /// Mirrors future changes of this victim page-cache file into the L1
  /// copy (the file must be cached in both OSes).
  Status track_file(const std::string& name);

  const Stats& stats() const { return stats_; }

  /// Victim slowdown implied by the traps over an observation window:
  /// overhead_time / window.
  double overhead_fraction(SimDuration window) const {
    if (window <= SimDuration::zero()) return 0.0;
    return stats_.victim_overhead / window;
  }

 private:
  void on_victim_write(Gfn gfn, const mem::PageData& data);

  RitmVm* ritm_;
  const hv::TimingModel* timing_;
  bool running_ = false;
  Stats stats_;
  // victim view gfn -> (file name, page index) for tracked files.
  std::unordered_map<std::uint64_t, std::pair<std::string, std::size_t>>
      tracked_gfns_;
};

}  // namespace csk::cloudskulk
