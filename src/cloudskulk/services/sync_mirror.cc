#include "cloudskulk/services/sync_mirror.h"

namespace csk::cloudskulk {

SyncMirrorService::SyncMirrorService(RitmVm* ritm,
                                     const hv::TimingModel* timing)
    : ritm_(ritm), timing_(timing) {
  CSK_CHECK(ritm != nullptr && timing != nullptr);
}

SyncMirrorService::~SyncMirrorService() { stop(); }

Status SyncMirrorService::start() {
  if (running_) return Status::ok();
  mem::AddressSpace& victim = ritm_->victim_vm()->memory();
  if (victim.has_write_observer()) {
    return failed_precondition("victim memory already observed");
  }
  victim.set_write_observer([this](Gfn gfn, const mem::PageData& data) {
    on_victim_write(gfn, data);
  });
  running_ = true;
  return Status::ok();
}

void SyncMirrorService::stop() {
  if (!running_) return;
  ritm_->victim_vm()->memory().clear_write_observer();
  running_ = false;
}

Status SyncMirrorService::track_file(const std::string& name) {
  guestos::GuestOS* victim_os = ritm_->victim_vm()->os();
  guestos::GuestOS* l1_os = ritm_->rootkit_vm()->os();
  if (victim_os == nullptr || l1_os == nullptr) {
    return failed_precondition("both OSes must be up");
  }
  CSK_ASSIGN_OR_RETURN(std::vector<Gfn> gfns, victim_os->cached_gfns(name));
  if (!l1_os->file_cached(name)) {
    return failed_precondition("L1 does not hold a copy of " + name +
                               " to keep in sync");
  }
  for (std::size_t i = 0; i < gfns.size(); ++i) {
    tracked_gfns_[gfns[i].value()] = {name, i};
  }
  return Status::ok();
}

void SyncMirrorService::on_victim_write(Gfn gfn, const mem::PageData& data) {
  ++stats_.write_traps;
  // The write-protect fault reflects through L0 to the L1 handler: one
  // nested exit billed to the victim.
  hv::OpCost trap;
  trap.n_exits = 1;
  stats_.victim_overhead +=
      timing_->price(trap, ritm_->victim_vm()->layer());

  auto it = tracked_gfns_.find(gfn.value());
  if (it == tracked_gfns_.end()) return;
  const auto& [name, index] = it->second;
  guestos::GuestOS* l1_os = ritm_->rootkit_vm()->os();
  if (l1_os == nullptr) return;
  // Synchronous mirror: the L1 copy changes before ksmd can ever observe a
  // divergence — this is what defeats the two-step dedup protocol.
  if (l1_os->modify_cached_page(name, index, data).is_ok()) {
    ++stats_.pages_mirrored;
  }
}

}  // namespace csk::cloudskulk
