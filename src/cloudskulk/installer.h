/// \file
/// CloudSkulkInstaller — the paper's four-step installation (§III, §IV-A).
///
///   Step 1  Recon: recover the target VM's QEMU configuration (history /
///           ps / monitor introspection). The threat model grants host root.
///   Step 2  Launch GuestX, the rootkit VM: a QEMU process matching the
///           target's parameters, plus VMX passthrough so it can nest.
///   Step 3  Inside GuestX, start a nested destination VM with the target's
///           machine shape, paused in `-incoming` state on ROOTKIT PORT BBBB,
///           and relay HOST PORT AAAA -> BBBB.
///   Step 4  Drive `migrate -d tcp:host:AAAA` on the target's monitor; the
///           victim live-migrates into the nested VM.
///   Cleanup Kill the post-migrate source QEMU, take over its host port
///           forwards, and swap GuestX's host PID to the original (the PID
///           is just a variable in memory to someone with root).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloudskulk/recon.h"
#include "cloudskulk/ritm.h"
#include "common/status.h"
#include "common/time.h"
#include "net/port_forward.h"
#include "vmm/host.h"
#include "vmm/migration.h"

namespace csk::cloudskulk {

struct InstallerOptions {
  std::string target_vm_name = "guest0";
  /// Monitor port for GuestX (must differ from the live target's).
  std::uint16_t rootkit_monitor_port = 5556;
  /// HOST PORT AAAA / ROOTKIT PORT BBBB from the paper.
  std::uint16_t migration_host_port = 4444;
  std::uint16_t migration_rootkit_port = 4445;
  vmm::MigrationConfig migration;
  /// Restore the original QEMU PID after the swap-in.
  bool fix_pid = true;
  /// RAM a minimal headless rootkit guest touches at boot (MiB).
  std::uint64_t rootkit_boot_touched_mib = 96;
  /// Upper bound of simulated time to wait for the migration.
  SimDuration migration_timeout = SimDuration::seconds(7200);
  /// Recon source toggles (the paper's fallback ladder).
  TargetRecon::Options recon;
  /// VMCS revision id GuestX's nested hypervisor stamps into its control
  /// structures. The default is what stock kvm-intel uses — and what a
  /// §VI-E memory-forensics scan signatures on; an attacker recompiling
  /// the module with a custom id (the paper's noted evasion) sets this to
  /// a value outside the scanner's database.
  std::uint32_t vmcs_revision_id = vmm::VirtualMachine::kDefaultVmcsRevisionId;
};

struct InstallReport {
  bool succeeded = false;
  std::string error;
  /// End-to-end simulated install time, recon through cleanup.
  SimDuration total_time;
  vmm::MigrationStats migration;
  ReconReport recon;
  VmId rootkit_vm_id;
  VmId nested_vm_id;
  Pid original_pid;
  Pid final_pid;
  std::vector<std::string> log;  // human-readable step transcript
};

class CloudSkulkInstaller {
 public:
  CloudSkulkInstaller(vmm::Host* host, InstallerOptions options = {});
  ~CloudSkulkInstaller();
  CloudSkulkInstaller(const CloudSkulkInstaller&) = delete;
  CloudSkulkInstaller& operator=(const CloudSkulkInstaller&) = delete;

  /// Runs all steps, driving the simulation until the migration completes
  /// (or fails). Returns the report either way; `succeeded` tells which.
  InstallReport install();

  /// Post-install handles (valid only after a successful install()).
  vmm::VirtualMachine* rootkit_vm() { return rootkit_; }
  vmm::VirtualMachine* nested_vm() { return nested_; }
  RitmVm* ritm() { return ritm_.get(); }

 private:
  Status run_steps(InstallReport& report);

  vmm::Host* host_;
  InstallerOptions options_;
  vmm::VirtualMachine* rootkit_ = nullptr;
  vmm::VirtualMachine* nested_ = nullptr;
  std::unique_ptr<net::PortForwarder> migration_relay_;
  std::unique_ptr<RitmVm> ritm_;
};

}  // namespace csk::cloudskulk
