#include "cloudskulk/recon.h"

#include <sstream>

#include "common/logging.h"
#include "vmm/monitor.h"
#include "vmm/vm.h"

namespace csk::cloudskulk {

TargetRecon::TargetRecon(vmm::Host* host, Options options)
    : host_(host), options_(options) {
  CSK_CHECK(host != nullptr);
}

Result<std::string> TargetRecon::cmdline_from_history(
    const std::string& vm_name) const {
  const std::string needle = "-name " + vm_name;
  // Newest entry wins, like scrolling back through `history`.
  const auto& hist = host_->shell_history();
  for (auto it = hist.rbegin(); it != hist.rend(); ++it) {
    if (it->find("qemu-system") != std::string::npos &&
        it->find(needle) != std::string::npos) {
      return *it;
    }
  }
  return not_found("no qemu launch of " + vm_name + " in shell history");
}

Result<std::string> TargetRecon::cmdline_from_ps(
    const std::string& vm_name) const {
  const std::string needle = "-name " + vm_name;
  for (const vmm::Host::HostProcess& p : host_->ps()) {
    if (p.comm.starts_with("qemu") &&
        p.cmdline.find(needle) != std::string::npos) {
      return p.cmdline;
    }
  }
  return not_found("no qemu process for " + vm_name + " in ps output");
}

Result<ReconReport> TargetRecon::discover(const std::string& vm_name) {
  ReconReport report;

  CSK_ASSIGN_OR_RETURN(vmm::VirtualMachine * vm,
                       host_->find_vm_by_name(vm_name));
  report.vm = vm->id();
  CSK_ASSIGN_OR_RETURN(report.host_pid, host_->pid_of_vm(vm->id()));

  if (options_.use_history) {
    auto hist = cmdline_from_history(vm_name);
    if (hist.is_ok()) {
      auto cfg = vmm::MachineConfig::parse_command_line(hist.value());
      if (cfg.is_ok()) {
        report.qemu_cmdline = hist.value();
        report.config = std::move(cfg).take();
        report.evidence.push_back("shell history");
        return report;
      }
    }
  }
  if (options_.use_ps) {
    auto ps = cmdline_from_ps(vm_name);
    if (ps.is_ok()) {
      auto cfg = vmm::MachineConfig::parse_command_line(ps.value());
      if (cfg.is_ok()) {
        report.qemu_cmdline = ps.value();
        report.config = std::move(cfg).take();
        report.evidence.push_back("ps -ef");
        return report;
      }
    }
  }
  if (options_.use_monitor && vm->config().monitor.telnet_port != 0) {
    auto cfg = introspect_via_monitor(vm->config().monitor.telnet_port);
    if (cfg.is_ok()) {
      report.config = std::move(cfg).take();
      report.config.name = vm_name;
      report.qemu_cmdline = report.config.to_command_line();
      report.evidence.push_back("qemu monitor introspection");
      return report;
    }
  }
  return not_found("all recon sources exhausted for " + vm_name);
}

Result<vmm::MachineConfig> TargetRecon::introspect_via_monitor(
    std::uint16_t telnet_port) const {
  CSK_ASSIGN_OR_RETURN(vmm::QemuMonitor * mon,
                       host_->connect_monitor(telnet_port));
  vmm::MachineConfig cfg;
  cfg.monitor.telnet_port = telnet_port;

  CSK_ASSIGN_OR_RETURN(std::string mtree, mon->execute("info mtree"));
  CSK_ASSIGN_OR_RETURN(cfg.memory_mb, parse_info_mtree_ram_mb(mtree));

  CSK_ASSIGN_OR_RETURN(std::string network, mon->execute("info network"));
  CSK_ASSIGN_OR_RETURN(cfg.netdevs, parse_info_network(network));

  // Drives: `info block` names image and format; a real attacker would run
  // qemu-img against the image for the virtual size.
  CSK_ASSIGN_OR_RETURN(std::string block, mon->execute("info block"));
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find("): ");
    if (colon == std::string::npos) continue;
    vmm::DriveConfig d;
    const std::string rest = line.substr(colon + 3);
    const auto paren = rest.find(" (");
    if (paren == std::string::npos) continue;
    d.file = rest.substr(0, paren);
    const auto close = rest.find(')', paren);
    d.format = rest.substr(paren + 2, close - paren - 2);
    cfg.drives.push_back(std::move(d));
  }

  // vCPU count from `info cpus` (one line per CPU).
  CSK_ASSIGN_OR_RETURN(std::string cpus, mon->execute("info cpus"));
  int n = 0;
  std::istringstream cin2(cpus);
  while (std::getline(cin2, line)) {
    if (line.find("CPU #") != std::string::npos) ++n;
  }
  cfg.vcpus = n > 0 ? n : 1;

  CSK_ASSIGN_OR_RETURN(std::string kvm, mon->execute("info kvm"));
  cfg.enable_kvm = kvm.find("enabled") != std::string::npos;
  return cfg;
}

Result<std::vector<vmm::NetdevConfig>> parse_info_network(
    const std::string& text) {
  std::vector<vmm::NetdevConfig> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("type=user") != std::string::npos) {
      vmm::NetdevConfig nd;
      // hostfwd rules embedded in the same line.
      std::size_t pos = 0;
      while ((pos = line.find("hostfwd=tcp::", pos)) != std::string::npos) {
        pos += 13;
        const auto dash = line.find("-:", pos);
        if (dash == std::string::npos) break;
        vmm::HostFwd f;
        try {
          f.host_port = static_cast<std::uint16_t>(
              std::stoi(line.substr(pos, dash - pos)));
          std::size_t end = dash + 2;
          while (end < line.size() && isdigit(line[end])) ++end;
          f.guest_port = static_cast<std::uint16_t>(
              std::stoi(line.substr(dash + 2, end - dash - 2)));
        } catch (const std::exception&) {
          return invalid_argument("garbled hostfwd in info network");
        }
        nd.hostfwd.push_back(f);
      }
      out.push_back(std::move(nd));
    } else if (!out.empty() && line.find(" \\ ") != std::string::npos) {
      // " \ virtio-net-pci,mac=52:54:..." continuation line.
      const auto start = line.find(" \\ ") + 3;
      const auto comma = line.find(',', start);
      out.back().model = line.substr(start, comma - start);
      const auto macpos = line.find("mac=");
      if (macpos != std::string::npos) {
        out.back().mac = line.substr(macpos + 4);
      }
    }
  }
  if (out.empty()) return not_found("no user netdevs in info network output");
  return out;
}

Result<std::uint64_t> parse_info_mtree_ram_mb(const std::string& text) {
  const auto pos = text.find("pc.ram size=");
  if (pos == std::string::npos) {
    return not_found("no pc.ram region in info mtree output");
  }
  try {
    return static_cast<std::uint64_t>(std::stoull(text.substr(pos + 12)));
  } catch (const std::exception&) {
    return invalid_argument("garbled pc.ram size");
  }
}

}  // namespace csk::cloudskulk
