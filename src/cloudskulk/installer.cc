#include "cloudskulk/installer.h"

#include "common/logging.h"
#include "vmm/monitor.h"

namespace csk::cloudskulk {

CloudSkulkInstaller::CloudSkulkInstaller(vmm::Host* host,
                                         InstallerOptions options)
    : host_(host), options_(std::move(options)) {
  CSK_CHECK(host != nullptr);
}

CloudSkulkInstaller::~CloudSkulkInstaller() = default;

InstallReport CloudSkulkInstaller::install() {
  InstallReport report;
  const SimTime t0 = host_->world()->simulator().now();
  const Status st = run_steps(report);
  report.total_time = host_->world()->simulator().now() - t0;
  if (!st.is_ok()) {
    report.succeeded = false;
    report.error = st.to_string();
    report.log.push_back("FAILED: " + report.error);
  }
  return report;
}

Status CloudSkulkInstaller::run_steps(InstallReport& report) {
  sim::Simulator& sim = host_->world()->simulator();

  // ---- Step 1: reconnaissance --------------------------------------------
  TargetRecon recon(host_, options_.recon);
  CSK_ASSIGN_OR_RETURN(report.recon, recon.discover(options_.target_vm_name));
  report.original_pid = report.recon.host_pid;
  report.log.push_back("step1: recon of '" + options_.target_vm_name +
                       "' via " + report.recon.evidence.front() + " (pid " +
                       report.recon.host_pid.to_string() + ")");

  // ---- Step 2: launch GuestX, the rootkit VM -----------------------------
  vmm::MachineConfig rootkit_cfg = report.recon.config;
  rootkit_cfg.cpu_host_passthrough = true;  // expose VMX: we must nest
  rootkit_cfg.monitor.telnet_port = options_.rootkit_monitor_port;
  rootkit_cfg.incoming_port.reset();
  CSK_ASSIGN_OR_RETURN(
      rootkit_,
      host_->launch_vm(rootkit_cfg, options_.rootkit_boot_touched_mib));
  report.rootkit_vm_id = rootkit_->id();
  CSK_ASSIGN_OR_RETURN(
      hv::Hypervisor * l1hv,
      rootkit_->enable_nested_hypervisor(options_.vmcs_revision_id));
  (void)l1hv;
  report.log.push_back("step2: GuestX up (vm " +
                       report.rootkit_vm_id.to_string() +
                       "), L1 hypervisor loaded");

  // ---- Step 3: nested destination VM + AAAA -> BBBB relay ----------------
  vmm::MachineConfig nested_cfg = report.recon.config;
  nested_cfg.incoming_port = options_.migration_rootkit_port;
  nested_cfg.monitor.telnet_port = 0;  // inner monitor reached directly
  for (vmm::NetdevConfig& nd : nested_cfg.netdevs) {
    // Re-publish each of the victim's guest services on GuestX's interface
    // so the outer forwarders have somewhere to land.
    for (vmm::HostFwd& fw : nd.hostfwd) fw.host_port = fw.guest_port;
  }
  CSK_ASSIGN_OR_RETURN(nested_, rootkit_->launch_nested_vm(nested_cfg));
  report.nested_vm_id = nested_->id();

  migration_relay_ = std::make_unique<net::PortForwarder>(
      &host_->world()->network(),
      net::NetAddr{host_->node_name(), Port(options_.migration_host_port)},
      net::NetAddr{rootkit_->node_name(),
                   Port(options_.migration_rootkit_port)},
      "migration-relay");
  CSK_RETURN_IF_ERROR(migration_relay_->start());
  report.log.push_back(
      "step3: nested VM incoming on " + rootkit_->node_name() + ":" +
      std::to_string(options_.migration_rootkit_port) + ", relay " +
      host_->node_name() + ":" +
      std::to_string(options_.migration_host_port) + " -> BBBB armed");

  // ---- Step 4: drive the live migration from the target's monitor --------
  CSK_ASSIGN_OR_RETURN(vmm::VirtualMachine * target,
                       host_->find_vm(report.recon.vm));
  vmm::QemuMonitor& mon = target->monitor();
  {
    auto r = mon.execute(
        "migrate_set_speed " +
        std::to_string(static_cast<std::uint64_t>(
            options_.migration.bandwidth_limit_bytes_per_sec)));
    CSK_RETURN_IF_ERROR(r.status());
    r = mon.execute("migrate_set_downtime " +
                    std::to_string(options_.migration.max_downtime.seconds_f()));
    CSK_RETURN_IF_ERROR(r.status());
    if (options_.migration.post_copy) {
      r = mon.execute("migrate_set_capability postcopy-ram on");
      CSK_RETURN_IF_ERROR(r.status());
    }
    r = mon.execute("migrate -d tcp:" + host_->node_name() + ":" +
                    std::to_string(options_.migration_host_port));
    CSK_RETURN_IF_ERROR(r.status());
  }
  vmm::MigrationJob* job = mon.active_migration();
  CSK_CHECK(job != nullptr);
  report.log.push_back("step4: migrate -d tcp:" + host_->node_name() + ":" +
                       std::to_string(options_.migration_host_port) +
                       " issued on target monitor");

  const SimTime deadline = sim.now() + options_.migration_timeout;
  while (!job->done()) {
    if (sim.now() > deadline) {
      return aborted("migration did not complete within the timeout");
    }
    if (!sim.step()) {
      return internal_error("simulation went idle mid-migration");
    }
  }
  report.migration = job->stats();
  if (!report.migration.succeeded) {
    return aborted("live migration failed: " + report.migration.error);
  }
  CSK_CHECK_MSG(job->destination() == nested_,
                "migration landed somewhere unexpected");
  report.log.push_back(
      "step4: migration complete in " +
      report.migration.total_time.to_string() + " (downtime " +
      report.migration.downtime.to_string() + ", " +
      std::to_string(report.migration.rounds) + " rounds)");

  // ---- Cleanup: kill the husk, take over its ports and identity ----------
  const std::string original_cmdline = report.recon.qemu_cmdline;
  const std::uint16_t original_monitor_port =
      report.recon.config.monitor.telnet_port;
  CSK_RETURN_IF_ERROR(host_->kill_vm(report.recon.vm));
  CSK_RETURN_IF_ERROR(rootkit_->activate_hostfwd());
  if (original_monitor_port != 0) {
    rootkit_->set_monitor_telnet_port(original_monitor_port);
  }
  if (!original_cmdline.empty()) {
    CSK_RETURN_IF_ERROR(
        host_->set_process_cmdline(rootkit_->id(), original_cmdline));
  }
  if (options_.fix_pid) {
    CSK_RETURN_IF_ERROR(
        host_->swap_process_pid(rootkit_->id(), report.original_pid));
  }
  CSK_ASSIGN_OR_RETURN(report.final_pid, host_->pid_of_vm(rootkit_->id()));
  report.log.push_back("cleanup: source killed, ports and monitor taken "
                       "over, pid restored to " +
                       report.final_pid.to_string());

  ritm_ = std::make_unique<RitmVm>(rootkit_, nested_);
  report.succeeded = true;
  return Status::ok();
}

}  // namespace csk::cloudskulk
