/// \file
/// RitmVm — the Rootkit-In-The-Middle position.
///
/// After installation, the attacker owns GuestX (the L1 rootkit VM) with the
/// victim running nested inside it. Everything the victim does crosses the
/// attacker's territory: network traffic traverses the inner port forwarder,
/// and the victim's entire RAM is a region of GuestX's memory that the
/// attacker's L1 hypervisor can introspect at will (VMI turned offensive,
/// paper §IV-B1). RitmVm is the handle services attach to.
#pragma once

#include <vector>

#include "common/status.h"
#include "guestos/os.h"
#include "net/port_forward.h"
#include "vmm/vm.h"

namespace csk::cloudskulk {

class RitmVm {
 public:
  /// `rootkit` is GuestX; `nested` is the victim VM now running inside it.
  RitmVm(vmm::VirtualMachine* rootkit, vmm::VirtualMachine* nested);

  vmm::VirtualMachine* rootkit_vm() { return rootkit_; }
  vmm::VirtualMachine* victim_vm() { return nested_; }

  /// Attaches a service tap to every forwarder carrying victim traffic
  /// (the inner hostfwd relays inside GuestX).
  void add_tap(net::PacketTap* tap);
  void remove_tap(net::PacketTap* tap);

  /// Offensive VMI: reads the victim's kernel process table straight out
  /// of its memory. The attacker controls L1, so there is no semantic gap
  /// for *them* — they know exactly where the nested guest's RAM begins.
  Result<guestos::ParsedProcTable> introspect_victim() const;

  /// Victim uptime and identity, convenience views for services.
  Result<guestos::OsIdentity> victim_identity() const;

 private:
  vmm::VirtualMachine* rootkit_;
  vmm::VirtualMachine* nested_;
};

}  // namespace csk::cloudskulk
