/// \file
/// Deterministic random number generation.
///
/// Every stochastic element of the simulation (page-content hashes, workload
/// jitter, benchmark noise) draws from an explicitly seeded Rng so that runs
/// are reproducible bit-for-bit. The engine is xoshiro256**, seeded through
/// SplitMix64 per the reference recommendation; both are tiny, fast and well
/// understood.
#pragma once

#include <cstdint>
#include <limits>

namespace csk {

/// SplitMix64 step — used for seeding and as a standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// Splittable seed derivation: the seed of independent sub-stream `stream`
/// under `root`. Both inputs pass through SplitMix64 mixing, so nearby
/// roots and consecutive stream indices yield uncorrelated seeds — this is
/// how the fleet runner gives each shard its own Rng universe while staying
/// a pure function of (root seed, shard index).
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1d5a5c7ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Normal(mean, stddev) via Box–Muller (one value per call; spare cached).
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p in [0,1].
  bool chance(double p);

  /// Exponential with the given mean (for inter-arrival gaps).
  double exponential(double mean);

  /// Creates an independent child stream (distinct seed derived from this).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace csk
