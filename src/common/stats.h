/// \file
/// Sample statistics used by the benchmark harness and the detector.
///
/// The paper reports averages of 5 consecutive runs with relative standard
/// deviations (Figs 2-4) and decides nested-VM presence from the relation of
/// write-time samples (Figs 5-6). These helpers implement exactly the moments
/// and comparisons those experiments need.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.h"

namespace csk {

/// Incremental mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  void add_duration(SimDuration d) { add(static_cast<double>(d.ns())); }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  /// Standard deviation as a percentage of the mean (the paper's
  /// "relative standard deviation" bars). 0 when mean is 0.
  double rel_stddev_pct() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample vector.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

SampleSummary summarize(const std::vector<double>& samples);

/// Percentile by linear interpolation on a copy of `samples`. q in [0,100].
double percentile(std::vector<double> samples, double q);

/// Two-sample separation score used by the dedup detector: how many pooled
/// standard deviations apart the means of `a` and `b` are. Large values mean
/// clearly distinct timing populations.
double separation_score(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Formats a double with fixed decimals (benchmark table rendering).
std::string format_fixed(double v, int decimals);

}  // namespace csk
