/// \file
/// Simulated-time primitives.
///
/// Everything in the CloudSkulk simulator runs on a deterministic virtual
/// clock. SimTime is a point on that clock; SimDuration is a difference of
/// two points. Both are nanosecond-resolution 64-bit integers, which gives
/// ~292 years of range — far beyond any simulated experiment.
///
/// We deliberately do not use std::chrono for the simulated clock: mixing
/// simulated and wall-clock quantities is a classic source of bugs in
/// discrete-event simulators, and a dedicated pair of strong types makes the
/// two domains un-mixable at compile time.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace csk {

/// A span of simulated time, in nanoseconds. Signed so that differences and
/// back-offs are representable; negative durations are legal values but most
/// APIs reject them at their boundary.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  static constexpr SimDuration nanos(std::int64_t v) { return SimDuration(v); }
  static constexpr SimDuration micros(std::int64_t v) { return SimDuration(v * 1000); }
  static constexpr SimDuration millis(std::int64_t v) { return SimDuration(v * 1000000); }
  static constexpr SimDuration seconds(std::int64_t v) { return SimDuration(v * 1000000000); }
  /// Builds a duration from a floating-point second count (rounds to ns).
  static constexpr SimDuration from_seconds(double s) {
    return SimDuration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimDuration from_micros(double us) {
    return SimDuration(static_cast<std::int64_t>(us * 1e3 + (us >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimDuration zero() { return SimDuration(0); }
  /// A sentinel "longer than any experiment" duration.
  static constexpr SimDuration infinite() { return SimDuration(INT64_MAX / 4); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double micros_f() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis_f() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(ns_ + o.ns_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimDuration operator*(std::int64_t k) const { return SimDuration(ns_ * k); }
  constexpr SimDuration operator*(double k) const {
    return SimDuration(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr SimDuration operator/(std::int64_t k) const { return SimDuration(ns_ / k); }
  constexpr double operator/(SimDuration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr SimDuration& operator+=(SimDuration o) { ns_ += o.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { ns_ -= o.ns_; return *this; }

  /// Human-readable rendering with an auto-chosen unit ("3.49us", "26.1s").
  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// A point on the simulated clock. Time zero is simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime origin() { return SimTime(0); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime(ns_ + d.ns()); }
  constexpr SimTime operator-(SimDuration d) const { return SimTime(ns_ - d.ns()); }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimTime& operator+=(SimDuration d) { ns_ += d.ns(); return *this; }

  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

}  // namespace csk
