#include "common/time.h"

#include <cmath>
#include <cstdio>

namespace csk {

namespace {
std::string render_ns(double ns) {
  char buf[64];
  const double abs_ns = std::abs(ns);
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}
}  // namespace

std::string SimDuration::to_string() const {
  return render_ns(static_cast<double>(ns_));
}

std::string SimTime::to_string() const {
  return "t=" + render_ns(static_cast<double>(ns_));
}

}  // namespace csk
