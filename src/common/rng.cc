#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace csk {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  // Mix the root once so that structured roots (0, 1, 2, ...) land far
  // apart, then fold the stream index in through its own mix step. Two
  // rounds total: cheap, and every output bit depends on every input bit.
  std::uint64_t state = root;
  const std::uint64_t mixed_root = splitmix64(state);
  state = mixed_root ^ (stream * 0x9e3779b97f4a7c15ull);
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 1e-300);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xc2b2ae3d27d4eb4full); }

}  // namespace csk
