/// \file
/// Error handling for recoverable failures.
///
/// The simulator uses Status / Result<T> for errors that a caller is expected
/// to handle (bad monitor command, migration to a mismatched machine, file
/// not found in a guest FS). Programming errors — violated invariants — are
/// CSK_CHECK failures, which abort. This split follows Core Guidelines E.2 /
/// I.10: make it impossible to ignore an error without the compiler noticing.
#pragma once

#include <cassert>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace csk {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kPermissionDenied,
  kUnavailable,
  kAborted,
  kInternal,
  kUnimplemented,
  kDataLoss,
};

/// Returns the canonical spelling of a status code ("NOT_FOUND", ...).
const char* status_code_name(StatusCode code);

/// Success-or-error value. Cheap to copy on the OK path (no allocation).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "NOT_FOUND: no VM with pid 4242".
  std::string to_string() const;

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) { return {StatusCode::kInvalidArgument, std::move(msg)}; }
inline Status not_found(std::string msg) { return {StatusCode::kNotFound, std::move(msg)}; }
inline Status already_exists(std::string msg) { return {StatusCode::kAlreadyExists, std::move(msg)}; }
inline Status failed_precondition(std::string msg) { return {StatusCode::kFailedPrecondition, std::move(msg)}; }
inline Status resource_exhausted(std::string msg) { return {StatusCode::kResourceExhausted, std::move(msg)}; }
inline Status permission_denied(std::string msg) { return {StatusCode::kPermissionDenied, std::move(msg)}; }
inline Status unavailable(std::string msg) { return {StatusCode::kUnavailable, std::move(msg)}; }
inline Status aborted(std::string msg) { return {StatusCode::kAborted, std::move(msg)}; }
inline Status internal_error(std::string msg) { return {StatusCode::kInternal, std::move(msg)}; }
inline Status unimplemented(std::string msg) { return {StatusCode::kUnimplemented, std::move(msg)}; }
inline Status data_loss(std::string msg) { return {StatusCode::kDataLoss, std::move(msg)}; }

/// Value-or-error. Holds T on success, Status otherwise.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {      // NOLINT implicit
    assert(!std::get<Status>(v_).is_ok() && "Result from OK status is a bug");
  }

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  /// Precondition: is_ok().
  const T& value() const& {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(v_);
  }
  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

namespace internal {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& extra);
}  // namespace internal

/// Invariant check: aborts with location on violation. Active in all builds —
/// the simulator is cheap enough that correctness beats the nanoseconds.
#define CSK_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::csk::internal::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (0)

#define CSK_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::csk::internal::check_failed(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                    \
  } while (0)

/// Propagates a non-OK Status from the current function.
#define CSK_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::csk::Status _csk_st = (expr);            \
    if (!_csk_st.is_ok()) return _csk_st;      \
  } while (0)

/// Assigns the value of a Result<T> expression or propagates its Status.
#define CSK_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto CSK_CONCAT_(_csk_res_, __LINE__) = (expr);       \
  if (!CSK_CONCAT_(_csk_res_, __LINE__).is_ok())        \
    return CSK_CONCAT_(_csk_res_, __LINE__).status();   \
  lhs = std::move(CSK_CONCAT_(_csk_res_, __LINE__)).take()

#define CSK_CONCAT_INNER_(a, b) a##b
#define CSK_CONCAT_(a, b) CSK_CONCAT_INNER_(a, b)

}  // namespace csk
