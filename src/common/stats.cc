#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace csk {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunningStats::rel_stddev_pct() const {
  if (mean_ == 0.0) return 0.0;
  return 100.0 * stddev() / std::abs(mean_);
}

SampleSummary summarize(const std::vector<double>& samples) {
  SampleSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  RunningStats rs;
  for (double v : samples) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile(samples, 50.0);
  s.p95 = percentile(samples, 95.0);
  return s;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double separation_score(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  RunningStats sa;
  RunningStats sb;
  for (double v : a) sa.add(v);
  for (double v : b) sb.add(v);
  const double var_a = sa.stddev() * sa.stddev();
  const double var_b = sb.stddev() * sb.stddev();
  // Pooled stddev with a floor so identical-constant samples still compare.
  const double pooled = std::sqrt((var_a + var_b) / 2.0);
  const double floor = 1e-9 * std::max(std::abs(sa.mean()), std::abs(sb.mean())) + 1e-12;
  return std::abs(sa.mean() - sb.mean()) / std::max(pooled, floor);
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace csk
