#include "common/status.h"

#include <cstdio>

namespace csk {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& extra) {
  std::fprintf(stderr, "CSK_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace csk
