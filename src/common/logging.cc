#include "common/logging.h"

#include <cstdio>

namespace csk {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace internal {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace internal

}  // namespace csk
