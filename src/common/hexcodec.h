/// \file
/// Bit-exact hex encodings for 64-bit integers and doubles.
///
/// JSON numbers are doubles: a 64-bit counter above 2^53 loses bits and a
/// round-tripped double may reformat. Anything that must survive a
/// serialize/parse cycle *byte-for-byte* — checkpoint payloads, seeds —
/// therefore travels as a hex string: integers as their value, doubles as
/// their IEEE-754 bit pattern. Encoding is fixed-width lowercase `0x%016x`
/// so the artifacts are canonical (one spelling per value) and diff clean.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"

namespace csk {

/// "0x00000000000000ff" — fixed width, lowercase, canonical.
inline std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Strict inverse of hex_u64: requires the exact "0x" + 16 hex digits form.
inline Result<std::uint64_t> parse_hex_u64(std::string_view s) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') {
    return invalid_argument("hex u64 must be 0x + 16 digits, got '" +
                            std::string(s) + "'");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return invalid_argument("bad hex digit in '" + std::string(s) + "'");
    }
    v = (v << 4) | digit;
  }
  return v;
}

/// The IEEE-754 bit pattern of `d` as hex — exact for every value,
/// including -0.0, subnormals, infinities and NaN payloads.
inline std::string hex_double(double d) {
  return hex_u64(std::bit_cast<std::uint64_t>(d));
}

inline Result<double> parse_hex_double(std::string_view s) {
  CSK_ASSIGN_OR_RETURN(std::uint64_t bits, parse_hex_u64(s));
  return std::bit_cast<double>(bits);
}

}  // namespace csk
