/// \file
/// Retry policy with exponential backoff.
///
/// The recovery half of the fault-injection layer: components that retry a
/// failed operation (migration attempts, port-forwarder rebinds) share one
/// policy type and one backoff formula so tests can pin the exact schedule.
///
/// The delay before retry `k` (0-based) is the documented geometric series
///
///     delay(k) = min(initial_backoff * multiplier^k, max_backoff)
///
/// computed in integer nanoseconds from a double multiplier — deterministic
/// across runs, never drawing randomness (jitter, when wanted, is the fault
/// injector's job, not the policy's).
#pragma once

#include <algorithm>

#include "common/time.h"

namespace csk {

/// How many times to attempt an operation and how long to wait in between.
/// The default (`max_attempts = 1`) means "no retries": components behave
/// exactly as they did before the policy existed.
struct RetryPolicy {
  /// Total attempts, including the first. 1 = never retry.
  int max_attempts = 1;
  /// Delay before the first retry.
  SimDuration initial_backoff = SimDuration::millis(200);
  /// Geometric growth factor applied per retry.
  double backoff_multiplier = 2.0;
  /// Ceiling on any single delay.
  SimDuration max_backoff = SimDuration::seconds(10);

  bool retries_enabled() const { return max_attempts > 1; }

  /// The policy with every degenerate field clamped to its nearest legal
  /// value. The normalization is part of the policy's contract — every
  /// consumer (backoff_delay, migration retries, forwarder restarts)
  /// behaves as if the caller had passed the normalized policy:
  ///   * max_attempts < 1            -> 1   (at least the initial attempt)
  ///   * backoff_multiplier < 1.0 or NaN -> 1.0 (backoff never shrinks)
  ///   * negative initial_backoff    -> zero
  ///   * negative max_backoff        -> zero
  RetryPolicy normalized() const {
    RetryPolicy p = *this;
    if (p.max_attempts < 1) p.max_attempts = 1;
    // `!(x >= 1.0)` rather than `x < 1.0` so NaN also clamps.
    if (!(p.backoff_multiplier >= 1.0)) p.backoff_multiplier = 1.0;
    if (p.initial_backoff < SimDuration::zero()) {
      p.initial_backoff = SimDuration::zero();
    }
    if (p.max_backoff < SimDuration::zero()) p.max_backoff = SimDuration::zero();
    return p;
  }
};

/// Delay before retry `retry_index` (0-based: the first retry waits
/// `initial_backoff`). Exactly min(initial * multiplier^k, max), computed
/// over the normalized policy. The loop exits as soon as the product
/// reaches the cap: the running value can never overflow to infinity (an
/// int64 cast of which would be UB), no matter how large `retry_index` or
/// the multiplier is.
inline SimDuration backoff_delay(const RetryPolicy& policy, int retry_index) {
  const RetryPolicy p = policy.normalized();
  double ns = static_cast<double>(p.initial_backoff.ns());
  const double cap = static_cast<double>(p.max_backoff.ns());
  for (int k = 0; k < retry_index && ns < cap; ++k) ns *= p.backoff_multiplier;
  return SimDuration(static_cast<std::int64_t>(std::min(ns, cap)));
}

}  // namespace csk
