/// \file
/// Retry policy with exponential backoff.
///
/// The recovery half of the fault-injection layer: components that retry a
/// failed operation (migration attempts, port-forwarder rebinds) share one
/// policy type and one backoff formula so tests can pin the exact schedule.
///
/// The delay before retry `k` (0-based) is the documented geometric series
///
///     delay(k) = min(initial_backoff * multiplier^k, max_backoff)
///
/// computed in integer nanoseconds from a double multiplier — deterministic
/// across runs, never drawing randomness (jitter, when wanted, is the fault
/// injector's job, not the policy's).
#pragma once

#include <algorithm>

#include "common/time.h"

namespace csk {

/// How many times to attempt an operation and how long to wait in between.
/// The default (`max_attempts = 1`) means "no retries": components behave
/// exactly as they did before the policy existed.
struct RetryPolicy {
  /// Total attempts, including the first. 1 = never retry.
  int max_attempts = 1;
  /// Delay before the first retry.
  SimDuration initial_backoff = SimDuration::millis(200);
  /// Geometric growth factor applied per retry.
  double backoff_multiplier = 2.0;
  /// Ceiling on any single delay.
  SimDuration max_backoff = SimDuration::seconds(10);

  bool retries_enabled() const { return max_attempts > 1; }
};

/// Delay before retry `retry_index` (0-based: the first retry waits
/// `initial_backoff`). Exactly min(initial * multiplier^k, max).
inline SimDuration backoff_delay(const RetryPolicy& policy, int retry_index) {
  double ns = static_cast<double>(policy.initial_backoff.ns());
  for (int k = 0; k < retry_index; ++k) ns *= policy.backoff_multiplier;
  const double cap = static_cast<double>(policy.max_backoff.ns());
  return SimDuration(static_cast<std::int64_t>(std::min(ns, cap)));
}

}  // namespace csk
