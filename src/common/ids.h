/// \file
/// Strong identifier types used across the simulator.
///
/// A VM id, a page-frame number and a process id are all integers, but they
/// live in completely different namespaces; the Core Guidelines (I.4, P.1)
/// tell us to make that distinction visible in the type system. TaggedId is a
/// tiny phantom-tagged wrapper that gives every id family its own type with
/// value semantics, ordering and hashing, at zero runtime cost.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace csk {

/// Phantom-tagged integer id. `Tag` is any empty struct naming the family.
template <typename Tag, typename Rep = std::uint64_t>
class TaggedId {
 public:
  using rep_type = Rep;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Rep v) : v_(v) {}

  constexpr Rep value() const { return v_; }
  constexpr auto operator<=>(const TaggedId&) const = default;

  /// Ids default-construct to an explicit invalid sentinel.
  static constexpr TaggedId invalid() { return TaggedId(static_cast<Rep>(-1)); }
  constexpr bool valid() const { return v_ != static_cast<Rep>(-1); }

  std::string to_string() const { return std::to_string(v_); }

 private:
  Rep v_ = static_cast<Rep>(-1);
};

struct HostIdTag {};
struct VmIdTag {};
struct VcpuIdTag {};
struct FrameTag {};
struct GfnTag {};
struct PidTag {};
struct FdTag {};
struct PortTag {};
struct EndpointTag {};
struct EventTag {};
struct ConnTag {};

/// Identifies a simulated physical host.
using HostId = TaggedId<HostIdTag>;
/// Identifies a virtual machine (any nesting level).
using VmId = TaggedId<VmIdTag>;
/// Identifies a virtual CPU within a VM.
using VcpuId = TaggedId<VcpuIdTag, std::uint32_t>;
/// Host physical frame number (one 4 KiB frame of host RAM).
using FrameNumber = TaggedId<FrameTag>;
/// Guest frame number (guest-physical page index within one address space).
using Gfn = TaggedId<GfnTag>;
/// Simulated OS process id.
using Pid = TaggedId<PidTag, std::int32_t>;
/// File descriptor within a simulated guest OS.
using Fd = TaggedId<FdTag, std::int32_t>;
/// TCP/UDP-style port number on a simulated network node.
using Port = TaggedId<PortTag, std::uint16_t>;
/// Network endpoint id (node+port binding) inside SimNetwork.
using EndpointId = TaggedId<EndpointTag>;
/// Handle for a scheduled simulator event (cancellation token).
using EventId = TaggedId<EventTag>;
/// Network connection (flow) id.
using ConnId = TaggedId<ConnTag>;

/// Monotonic id allocator for one id family.
template <typename Id>
class IdAllocator {
 public:
  Id next() { return Id(static_cast<typename Id::rep_type>(next_++)); }
  std::uint64_t issued() const { return next_; }

 private:
  std::uint64_t next_ = 1;  // 0 is reserved; -1 is invalid
};

}  // namespace csk

namespace std {
template <typename Tag, typename Rep>
struct hash<csk::TaggedId<Tag, Rep>> {
  size_t operator()(const csk::TaggedId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
