/// \file
/// Content hashing for simulated memory pages and files.
///
/// KSM-style deduplication compares page contents; the simulator represents a
/// page's contents by a 64-bit content hash (optionally backed by real bytes
/// for small, interesting regions such as the detector's File-A). FNV-1a is
/// sufficient here: inputs are either real bytes we control or synthetic
/// random tokens, so adversarial collisions are out of scope.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace csk {

/// 64-bit content digest of a page or buffer.
struct ContentHash {
  std::uint64_t value = 0;

  constexpr auto operator<=>(const ContentHash&) const = default;

  /// The hash a fully zeroed page has (KSM treats zero pages specially).
  static constexpr ContentHash zero_page() { return ContentHash{0}; }
  constexpr bool is_zero_page() const { return value == 0; }
};

/// FNV-1a over raw bytes.
ContentHash fnv1a(std::span<const std::uint8_t> bytes);
ContentHash fnv1a(std::string_view text);

/// Combines two hashes order-dependently (for derived/synthetic contents).
ContentHash hash_combine(ContentHash a, std::uint64_t salt);

}  // namespace csk

namespace std {
template <>
struct hash<csk::ContentHash> {
  size_t operator()(const csk::ContentHash& h) const noexcept {
    return static_cast<size_t>(h.value);
  }
};
}  // namespace std
