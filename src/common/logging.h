/// \file
/// Minimal leveled logger.
///
/// The simulator narrates interesting events (migration rounds, KSM merges,
/// rootkit installation steps) at INFO/DEBUG; tests run with WARNING to keep
/// output clean. A single global level keeps the API tiny — this is a
/// simulator, not a service.
#pragma once

#include <sstream>
#include <string>

namespace csk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void log_line(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct Voidify {
  void operator&(LogMessage&) {}
};
}  // namespace internal

#define CSK_LOG(level)                                     \
  (::csk::log_level() > (level))                           \
      ? (void)0                                            \
      : ::csk::internal::Voidify() &                       \
            ::csk::internal::LogMessage(level)

#define CSK_DEBUG CSK_LOG(::csk::LogLevel::kDebug)
#define CSK_INFO CSK_LOG(::csk::LogLevel::kInfo)
#define CSK_WARN CSK_LOG(::csk::LogLevel::kWarning)
#define CSK_ERROR CSK_LOG(::csk::LogLevel::kError)

}  // namespace csk
