#include "common/hash.h"

namespace csk {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

ContentHash fnv1a(std::span<const std::uint8_t> bytes) {
  // An all-zero buffer must map to the dedicated zero-page hash so that the
  // simulator's KSM treats it the way the kernel treats the shared zero page.
  bool all_zero = true;
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : bytes) {
    all_zero = all_zero && b == 0;
    h ^= b;
    h *= kFnvPrime;
  }
  if (all_zero) return ContentHash::zero_page();
  if (h == 0) h = 1;  // keep 0 reserved for the zero page
  return ContentHash{h};
}

ContentHash fnv1a(std::string_view text) {
  return fnv1a(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

ContentHash hash_combine(ContentHash a, std::uint64_t salt) {
  std::uint64_t h = a.value ^ (salt + 0x9e3779b97f4a7c15ull + (a.value << 6) +
                               (a.value >> 2));
  if (h == 0) h = 1;
  return ContentHash{h};
}

}  // namespace csk
