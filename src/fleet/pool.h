/// \file
/// Work-stealing thread pool for the fleet runner.
///
/// The fleet's unit of work is one whole scenario — milliseconds of CPU —
/// so the pool optimizes for auditability, not nanosecond dispatch: each
/// worker owns a mutex-guarded deque seeded round-robin, pops from the back
/// of its own deque and steals from the front of a victim's when it runs
/// dry. Stealing from the *front* takes the work the owner would reach
/// last, which keeps contention on a deque's two ends apart even under the
/// coarse lock.
///
/// Tasks must not enqueue further tasks: with a fixed batch, "every deque
/// is empty" is a complete termination condition, and a worker that
/// observes it can simply exit.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace csk::fleet {

class WorkStealingPool {
 public:
  /// Precondition: workers >= 1.
  explicit WorkStealingPool(int workers);

  /// Runs every task to completion on the pool's worker threads; the
  /// calling thread only waits. Threads are spawned per call (a fleet runs
  /// a handful of batches of millisecond-scale tasks — thread start-up is
  /// noise) and joined before returning. Not reentrant.
  void run(std::vector<std::function<void()>> tasks);

  int workers() const { return workers_; }

  /// Tasks executed by a worker other than the one they were seeded to,
  /// summed over all run() calls — the witness that stealing happens.
  std::size_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;

  /// Next task for worker `self`: its own back, else a steal from the
  /// front of the first non-empty victim. Empty function when no work is
  /// left anywhere (terminal — tasks never respawn).
  std::function<void()> take(std::vector<Shard>& shards, int self);

  int workers_;
  std::atomic<std::size_t> steals_{0};
};

}  // namespace csk::fleet
