#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "fleet/pool.h"
#include "obs/trace.h"

namespace csk::fleet {

namespace {

std::string hex_seed(std::uint64_t seed) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

std::int64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Canonical serialization of one shard's simulated facts. Seeds render as
/// hex strings (a JSON number is a double — a 64-bit seed would lose
/// bits); fault timestamps as raw ns.
std::string make_digest(const std::string& name, std::uint64_t seed,
                        const ShardOutcome& outcome,
                        const obs::MetricsSnapshot& metrics) {
  obs::JsonValue values = obs::JsonValue::object();
  for (const auto& [k, v] : outcome.values) values.set(k, v);
  obs::JsonValue faults = obs::JsonValue::array();
  for (const fault::InjectedFault& f : outcome.faults) {
    faults.push(obs::JsonValue::object()
                    .set("at_ns", f.at.ns())
                    .set("kind", f.kind)
                    .set("detail", f.detail));
  }
  return obs::JsonValue::object()
      .set("name", name)
      .set("seed", hex_seed(seed))
      .set("status", outcome.status.to_string())
      .set("values", std::move(values))
      .set("faults", std::move(faults))
      .set("metrics", metrics.to_json())
      .dump();
}

/// "byte 17: 'a' vs 'b'" — enough to locate a divergence in a digest.
std::string first_difference(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  if (i == n && a.size() == b.size()) return "identical";
  std::string out = "digests diverge at byte " + std::to_string(i);
  const auto context = [i](const std::string& s) {
    const std::size_t begin = i >= 20 ? i - 20 : 0;
    return s.substr(begin, 40);
  };
  out += ": pooled ..." + obs::JsonValue::escape(context(a));
  out += "... vs serial ..." + obs::JsonValue::escape(context(b)) + "...";
  return out;
}

obs::JsonValue summary_json(const SampleSummary& s) {
  return obs::JsonValue::object()
      .set("count", static_cast<std::uint64_t>(s.count))
      .set("mean", s.mean)
      .set("stddev", s.stddev)
      .set("min", s.min)
      .set("p50", s.p50)
      .set("p95", s.p95)
      .set("max", s.max);
}

}  // namespace

std::size_t FleetReport::failed_shards() const {
  return static_cast<std::size_t>(
      std::count_if(shards.begin(), shards.end(),
                    [](const ShardResult& s) { return !s.ok(); }));
}

std::string FleetReport::deterministic_json() const {
  obs::JsonValue digests = obs::JsonValue::array();
  for (const ShardResult& s : shards) digests.push(s.digest);
  obs::JsonValue aggregates_json = obs::JsonValue::object();
  for (const auto& [k, s] : aggregates) aggregates_json.set(k, summary_json(s));
  return obs::JsonValue::object()
      .set("shard_digests", std::move(digests))
      .set("merged_metrics", merged.to_json())
      .set("aggregates", std::move(aggregates_json))
      .dump();
}

obs::JsonValue FleetReport::to_json() const {
  obs::JsonValue shards_json = obs::JsonValue::array();
  for (const ShardResult& s : shards) {
    obs::JsonValue values = obs::JsonValue::object();
    for (const auto& [k, v] : s.outcome.values) values.set(k, v);
    shards_json.push(
        obs::JsonValue::object()
            .set("index", static_cast<std::uint64_t>(s.index))
            .set("name", s.name)
            .set("seed", hex_seed(s.seed))
            .set("ok", s.ok())
            .set("status", s.outcome.status.to_string())
            .set("values", std::move(values))
            .set("faults_delivered",
                 static_cast<std::uint64_t>(s.outcome.faults.size()))
            .set("wall_ms", static_cast<double>(s.wall_ns) / 1e6));
  }
  obs::JsonValue aggregates_json = obs::JsonValue::object();
  for (const auto& [k, s] : aggregates) aggregates_json.set(k, summary_json(s));
  obs::JsonValue diffs = obs::JsonValue::array();
  for (const AuditDiff& d : audit_diffs) {
    diffs.push(obs::JsonValue::object()
                   .set("index", static_cast<std::uint64_t>(d.index))
                   .set("name", d.name)
                   .set("detail", d.detail));
  }
  obs::JsonValue audit_json =
      obs::JsonValue::object()
          .set("enabled", audited)
          .set("serial_wall_ms", static_cast<double>(audit_wall_ns) / 1e6)
          .set("diffs", std::move(diffs));
  return obs::JsonValue::object()
      .set("workers", workers)
      .set("shard_count", static_cast<std::uint64_t>(shards.size()))
      .set("failed_shards", static_cast<std::uint64_t>(failed_shards()))
      .set("steals", static_cast<std::uint64_t>(steals))
      .set("wall_ms", static_cast<double>(wall_ns) / 1e6)
      .set("audit", std::move(audit_json))
      .set("shards", std::move(shards_json))
      .set("aggregates", std::move(aggregates_json))
      .set("merged_metrics", merged.to_json());
}

FleetRunner::FleetRunner(FleetConfig config) : config_(std::move(config)) {}

void FleetRunner::add(std::string name, ScenarioFn fn) {
  CSK_CHECK_MSG(fn != nullptr, "scenario body must be callable");
  scenarios_.push_back({std::move(name), std::move(fn)});
}

ShardResult FleetRunner::execute(const Scenario& scenario,
                                 std::size_t index) const {
  ShardResult out;
  out.index = index;
  out.name = scenario.name;
  out.seed = derive_seed(config_.root_seed, index);
  obs::MetricsRegistry registry;
  obs::TraceSink sink;  // shard-private, disabled: trace calls stay no-ops
  const auto wall0 = std::chrono::steady_clock::now();
  {
    // Install before the scenario builds anything, so components that cache
    // instrument pointers at construction resolve into the shard registry.
    obs::ScopedMetricsRegistry metrics_scope(registry);
    obs::ScopedTraceSink trace_scope(sink);
    const ShardContext ctx{index, out.seed};
    out.outcome = scenario.fn(ctx);
  }
  out.wall_ns = elapsed_ns(wall0);
  out.metrics = registry.snapshot();
  out.digest = make_digest(out.name, out.seed, out.outcome, out.metrics);
  return out;
}

ShardResult FleetRunner::run_shard(std::size_t index) const {
  CSK_CHECK_MSG(index < scenarios_.size(), "shard index out of range");
  return execute(scenarios_[index], index);
}

FleetReport FleetRunner::run() {
  int workers = config_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  FleetReport report;
  report.workers = workers;
  report.audited = config_.audit;
  report.shards.resize(scenarios_.size());

  WorkStealingPool pool(workers);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(scenarios_.size());
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    tasks.push_back([this, i, &report] {
      report.shards[i] = execute(scenarios_[i], i);
    });
  }
  const auto wall0 = std::chrono::steady_clock::now();
  pool.run(std::move(tasks));
  report.wall_ns = elapsed_ns(wall0);
  report.steals = pool.steals();

  // Merge and aggregate in shard-index order: the result is a pure function
  // of the shard results, independent of how the pool scheduled them.
  for (const ShardResult& s : report.shards) report.merged.merge_from(s.metrics);
  std::map<std::string, std::vector<double>> by_key;
  for (const ShardResult& s : report.shards) {
    if (!s.ok()) continue;
    for (const auto& [k, v] : s.outcome.values) by_key[k].push_back(v);
  }
  for (const auto& [k, samples] : by_key) {
    report.aggregates.emplace(k, summarize(samples));
  }

  if (config_.audit) {
    const auto audit0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < scenarios_.size(); ++i) {
      const ShardResult serial = execute(scenarios_[i], i);
      if (serial.digest != report.shards[i].digest) {
        report.audit_diffs.push_back(
            {i, scenarios_[i].name,
             first_difference(report.shards[i].digest, serial.digest)});
      }
    }
    report.audit_wall_ns = elapsed_ns(audit0);
  }
  return report;
}

}  // namespace csk::fleet
