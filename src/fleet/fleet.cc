#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "fleet/pool.h"
#include "obs/trace.h"

namespace csk::fleet {

namespace {

std::string hex_seed(std::uint64_t seed) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

std::int64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Canonical serialization of one shard's simulated facts. Seeds render as
/// hex strings (a JSON number is a double — a 64-bit seed would lose
/// bits); fault timestamps as raw ns.
std::string make_digest(const std::string& name, std::uint64_t seed,
                        const ShardOutcome& outcome,
                        const obs::MetricsSnapshot& metrics) {
  obs::JsonValue values = obs::JsonValue::object();
  for (const auto& [k, v] : outcome.values) values.set(k, v);
  obs::JsonValue faults = obs::JsonValue::array();
  for (const fault::InjectedFault& f : outcome.faults) {
    faults.push(obs::JsonValue::object()
                    .set("at_ns", f.at.ns())
                    .set("kind", f.kind)
                    .set("detail", f.detail));
  }
  return obs::JsonValue::object()
      .set("name", name)
      .set("seed", hex_seed(seed))
      .set("status", outcome.status.to_string())
      .set("values", std::move(values))
      .set("faults", std::move(faults))
      .set("metrics", metrics.to_json())
      .dump();
}

/// "byte 17: 'a' vs 'b'" — enough to locate a divergence in a digest.
std::string first_difference(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  if (i == n && a.size() == b.size()) return "identical";
  std::string out = "digests diverge at byte " + std::to_string(i);
  const auto context = [i](const std::string& s) {
    const std::size_t begin = i >= 20 ? i - 20 : 0;
    return s.substr(begin, 40);
  };
  out += ": pooled ..." + obs::JsonValue::escape(context(a));
  out += "... vs serial ..." + obs::JsonValue::escape(context(b)) + "...";
  return out;
}

/// ShardResult -> durable record. Everything the digest covers plus the
/// digest itself, so restore can re-derive and cross-check.
ckpt::ShardRecord to_record(const ShardResult& s) {
  ckpt::ShardRecord r;
  r.index = s.index;
  r.name = s.name;
  r.seed = s.seed;
  r.values = s.outcome.values;
  for (const fault::InjectedFault& f : s.outcome.faults) {
    r.faults.push_back({f.at.ns(), f.kind, f.detail});
  }
  r.status_code = s.outcome.status.code();
  r.status_message = s.outcome.status.message();
  r.metrics = s.metrics;
  r.digest = s.digest;
  r.wall_ns = s.wall_ns;
  return r;
}

/// Durable record -> ShardResult. The digest is recomputed from the
/// restored facts and compared against the recorded one: a checkpoint that
/// passed the file checksum but decodes to different simulated facts (a
/// codec bug, a hand-edited file) is kDataLoss, never silently accepted.
Result<ShardResult> from_record(const ckpt::ShardRecord& rec) {
  ShardResult s;
  s.index = static_cast<std::size_t>(rec.index);
  s.name = rec.name;
  s.seed = rec.seed;
  s.outcome.values = rec.values;
  for (const ckpt::FaultRecord& f : rec.faults) {
    s.outcome.faults.push_back({SimTime(f.at_ns), f.kind, f.detail});
  }
  s.outcome.status = rec.status_code == StatusCode::kOk
                         ? Status::ok()
                         : Status(rec.status_code, rec.status_message);
  s.metrics = rec.metrics;
  s.wall_ns = rec.wall_ns;
  s.digest = make_digest(s.name, s.seed, s.outcome, s.metrics);
  if (s.digest != rec.digest) {
    return data_loss("restored shard " + std::to_string(rec.index) +
                     " re-derives a different digest: " +
                     first_difference(rec.digest, s.digest));
  }
  return s;
}

obs::JsonValue summary_json(const SampleSummary& s) {
  return obs::JsonValue::object()
      .set("count", static_cast<std::uint64_t>(s.count))
      .set("mean", s.mean)
      .set("stddev", s.stddev)
      .set("min", s.min)
      .set("p50", s.p50)
      .set("p95", s.p95)
      .set("max", s.max);
}

}  // namespace

std::size_t FleetReport::failed_shards() const {
  return static_cast<std::size_t>(
      std::count_if(shards.begin(), shards.end(),
                    [](const ShardResult& s) { return !s.ok(); }));
}

std::string FleetReport::deterministic_json() const {
  obs::JsonValue digests = obs::JsonValue::array();
  for (const ShardResult& s : shards) digests.push(s.digest);
  obs::JsonValue aggregates_json = obs::JsonValue::object();
  for (const auto& [k, s] : aggregates) aggregates_json.set(k, summary_json(s));
  return obs::JsonValue::object()
      .set("shard_digests", std::move(digests))
      .set("merged_metrics", merged.to_json())
      .set("aggregates", std::move(aggregates_json))
      .dump();
}

obs::JsonValue FleetReport::to_json() const {
  obs::JsonValue shards_json = obs::JsonValue::array();
  for (const ShardResult& s : shards) {
    obs::JsonValue values = obs::JsonValue::object();
    for (const auto& [k, v] : s.outcome.values) values.set(k, v);
    shards_json.push(
        obs::JsonValue::object()
            .set("index", static_cast<std::uint64_t>(s.index))
            .set("name", s.name)
            .set("seed", hex_seed(s.seed))
            .set("ok", s.ok())
            .set("status", s.outcome.status.to_string())
            .set("values", std::move(values))
            .set("faults_delivered",
                 static_cast<std::uint64_t>(s.outcome.faults.size()))
            .set("wall_ms", static_cast<double>(s.wall_ns) / 1e6));
  }
  obs::JsonValue aggregates_json = obs::JsonValue::object();
  for (const auto& [k, s] : aggregates) aggregates_json.set(k, summary_json(s));
  obs::JsonValue diffs = obs::JsonValue::array();
  for (const AuditDiff& d : audit_diffs) {
    diffs.push(obs::JsonValue::object()
                   .set("index", static_cast<std::uint64_t>(d.index))
                   .set("name", d.name)
                   .set("detail", d.detail));
  }
  obs::JsonValue audit_json =
      obs::JsonValue::object()
          .set("enabled", audited)
          .set("serial_wall_ms", static_cast<double>(audit_wall_ns) / 1e6)
          .set("diffs", std::move(diffs));
  obs::JsonValue checkpoint_json =
      obs::JsonValue::object()
          .set("written", checkpoints_written)
          .set("write_failures", checkpoint_write_failures)
          .set("wall_ms", static_cast<double>(checkpoint_wall_ns) / 1e6)
          .set("resumed_shards", static_cast<std::uint64_t>(resumed_shards));
  return obs::JsonValue::object()
      .set("workers", workers)
      .set("shard_count", static_cast<std::uint64_t>(shards.size()))
      .set("failed_shards", static_cast<std::uint64_t>(failed_shards()))
      .set("steals", static_cast<std::uint64_t>(steals))
      .set("wall_ms", static_cast<double>(wall_ns) / 1e6)
      .set("audit", std::move(audit_json))
      .set("checkpoint", std::move(checkpoint_json))
      .set("shards", std::move(shards_json))
      .set("aggregates", std::move(aggregates_json))
      .set("merged_metrics", merged.to_json());
}

FleetRunner::FleetRunner(FleetConfig config) : config_(std::move(config)) {}

void FleetRunner::add(std::string name, ScenarioFn fn) {
  CSK_CHECK_MSG(fn != nullptr, "scenario body must be callable");
  scenarios_.push_back({std::move(name), std::move(fn)});
}

ShardResult FleetRunner::execute(const Scenario& scenario,
                                 std::size_t index) const {
  ShardResult out;
  out.index = index;
  out.name = scenario.name;
  out.seed = derive_seed(config_.root_seed, index);
  obs::MetricsRegistry registry;
  obs::TraceSink sink;  // shard-private, disabled: trace calls stay no-ops
  const auto wall0 = std::chrono::steady_clock::now();
  {
    // Install before the scenario builds anything, so components that cache
    // instrument pointers at construction resolve into the shard registry.
    obs::ScopedMetricsRegistry metrics_scope(registry);
    obs::ScopedTraceSink trace_scope(sink);
    const ShardContext ctx{index, out.seed};
    out.outcome = scenario.fn(ctx);
  }
  out.wall_ns = elapsed_ns(wall0);
  out.metrics = registry.snapshot();
  out.digest = make_digest(out.name, out.seed, out.outcome, out.metrics);
  return out;
}

ShardResult FleetRunner::run_shard(std::size_t index) const {
  CSK_CHECK_MSG(index < scenarios_.size(), "shard index out of range");
  return execute(scenarios_[index], index);
}

FleetReport FleetRunner::run() {
  return run_internal({}, std::vector<char>(scenarios_.size(), 0));
}

Result<FleetReport> FleetRunner::resume_from() {
  if (!config_.checkpoint.enabled()) {
    return failed_precondition(
        "resume_from needs FleetConfig::checkpoint.directory");
  }
  ckpt::CheckpointStore store(config_.checkpoint.directory);
  CSK_RETURN_IF_ERROR(store.init());
  CSK_ASSIGN_OR_RETURN(ckpt::FleetCheckpoint ckpt, store.load_latest());
  return run_resumed(ckpt);
}

Result<FleetReport> FleetRunner::resume_from(
    const std::string& checkpoint_file) {
  // load_file never touches the store directory, so an unconfigured policy
  // is fine here; the resumed run itself checkpoints only if configured.
  ckpt::CheckpointStore store(config_.checkpoint.directory);
  CSK_ASSIGN_OR_RETURN(ckpt::FleetCheckpoint ckpt,
                       store.load_file(checkpoint_file));
  return run_resumed(ckpt);
}

Result<FleetReport> FleetRunner::run_resumed(
    const ckpt::FleetCheckpoint& ckpt) {
  if (ckpt.root_seed != config_.root_seed) {
    return failed_precondition("checkpoint root seed " +
                               hex_seed(ckpt.root_seed) +
                               " does not match runner seed " +
                               hex_seed(config_.root_seed));
  }
  if (ckpt.shard_count != scenarios_.size()) {
    return failed_precondition(
        "checkpoint describes " + std::to_string(ckpt.shard_count) +
        " shards, runner has " + std::to_string(scenarios_.size()));
  }
  std::vector<ShardResult> restored_results(scenarios_.size());
  std::vector<char> restored(scenarios_.size(), 0);
  for (const ckpt::ShardRecord& rec : ckpt.completed) {
    if (rec.index >= scenarios_.size()) {
      return data_loss("checkpoint shard index " + std::to_string(rec.index) +
                       " out of range");
    }
    const auto i = static_cast<std::size_t>(rec.index);
    if (restored[i] != 0) {
      return data_loss("checkpoint records shard " + std::to_string(rec.index) +
                       " twice");
    }
    if (rec.name != scenarios_[i].name) {
      return failed_precondition("checkpoint shard " + std::to_string(i) +
                                 " is '" + rec.name + "', runner has '" +
                                 scenarios_[i].name + "'");
    }
    if (rec.seed != derive_seed(config_.root_seed, i)) {
      return failed_precondition("checkpoint shard " + std::to_string(i) +
                                 " seed does not derive from the root seed");
    }
    CSK_ASSIGN_OR_RETURN(restored_results[i], from_record(rec));
    restored[i] = 1;
  }
  return run_internal(std::move(restored_results), std::move(restored));
}

FleetReport FleetRunner::run_internal(
    std::vector<ShardResult> restored_results, std::vector<char> restored) {
  int workers = config_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  FleetReport report;
  report.workers = workers;
  report.audited = config_.audit;
  report.shards.resize(scenarios_.size());
  restored.resize(scenarios_.size(), 0);
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    if (restored[i] != 0) {
      report.shards[i] = std::move(restored_results[i]);
      ++report.resumed_shards;
    }
  }

  // Checkpoint machinery. `done` and the trigger counters are guarded by
  // ckpt_mu; a worker marks its shard done (and possibly cuts a checkpoint)
  // under the lock right after writing report.shards[i], so the writer
  // always sees fully-written results for every done shard.
  const CheckpointPolicy& policy = config_.checkpoint;
  std::unique_ptr<ckpt::CheckpointStore> store;
  std::mutex ckpt_mu;
  std::vector<char> done = restored;
  std::size_t completions_since_write = 0;
  auto last_write = std::chrono::steady_clock::now();
  if (policy.enabled()) {
    store = std::make_unique<ckpt::CheckpointStore>(policy.directory);
    if (policy.crash_hook) store->set_crash_hook(policy.crash_hook);
    const Status st = store->init();
    CSK_CHECK_MSG(st.is_ok(), st.to_string());
  }
  const auto cut_checkpoint = [&] {  // requires ckpt_mu
    const auto t0 = std::chrono::steady_clock::now();
    ckpt::FleetCheckpoint ckpt;
    ckpt.root_seed = config_.root_seed;
    ckpt.shard_count = scenarios_.size();
    for (std::size_t i = 0; i < scenarios_.size(); ++i) {
      if (done[i] != 0) ckpt.completed.push_back(to_record(report.shards[i]));
    }
    const auto written = store->write(ckpt);
    if (written.is_ok()) {
      ++report.checkpoints_written;
    } else {
      // A failed write never aborts the sweep: the shards are still in
      // memory and the next trigger (or the final cut) retries.
      ++report.checkpoint_write_failures;
      std::fprintf(stderr, "fleet: checkpoint write failed: %s\n",
                   written.status().to_string().c_str());
    }
    completions_since_write = 0;
    last_write = std::chrono::steady_clock::now();
    report.checkpoint_wall_ns += elapsed_ns(t0);
  };

  WorkStealingPool pool(workers);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(scenarios_.size());
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    if (restored[i] != 0) continue;
    tasks.push_back([this, i, &report, &policy, &ckpt_mu, &done,
                     &completions_since_write, &last_write, &cut_checkpoint] {
      report.shards[i] = execute(scenarios_[i], i);
      if (!policy.enabled()) return;
      std::lock_guard<std::mutex> lock(ckpt_mu);
      done[i] = 1;
      ++completions_since_write;
      const bool count_due = policy.every_shards > 0 &&
                             completions_since_write >= policy.every_shards;
      const bool time_due =
          policy.every_wall_seconds > 0.0 &&
          static_cast<double>(elapsed_ns(last_write)) / 1e9 >=
              policy.every_wall_seconds;
      const bool all_done =
          std::count(done.begin(), done.end(), char{1}) ==
          static_cast<std::ptrdiff_t>(done.size());
      // The final checkpoint is cut after the pool drains, not here.
      if ((count_due || time_due) && !all_done) cut_checkpoint();
    });
  }
  const auto wall0 = std::chrono::steady_clock::now();
  pool.run(std::move(tasks));
  report.wall_ns = elapsed_ns(wall0);
  report.steals = pool.steals();

  if (policy.enabled()) {
    // Final checkpoint: every shard completed, so a later resume_from()
    // restores the whole report without re-running anything.
    std::lock_guard<std::mutex> lock(ckpt_mu);
    done.assign(scenarios_.size(), 1);
    cut_checkpoint();
  }

  // Merge and aggregate in shard-index order: the result is a pure function
  // of the shard results, independent of how the pool scheduled them.
  for (const ShardResult& s : report.shards) report.merged.merge_from(s.metrics);
  std::map<std::string, std::vector<double>> by_key;
  for (const ShardResult& s : report.shards) {
    if (!s.ok()) continue;
    for (const auto& [k, v] : s.outcome.values) by_key[k].push_back(v);
  }
  for (const auto& [k, samples] : by_key) {
    report.aggregates.emplace(k, summarize(samples));
  }

  if (config_.audit) {
    // Audit covers re-executed shards only: restored shards were never run
    // in this process, and their digests were already verified at restore.
    const auto audit0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < scenarios_.size(); ++i) {
      if (restored[i] != 0) continue;
      const ShardResult serial = execute(scenarios_[i], i);
      if (serial.digest != report.shards[i].digest) {
        report.audit_diffs.push_back(
            {i, scenarios_[i].name,
             first_difference(report.shards[i].digest, serial.digest)});
      }
    }
    report.audit_wall_ns = elapsed_ns(audit0);
  }
  return report;
}

}  // namespace csk::fleet
