/// \file
/// csk::fleet — parallel execution of independent simulation scenarios.
///
/// The paper's evaluation (Fig 2–6, Tables II–IV) is a sweep of independent
/// cells, and every bench in this repo runs such cells one at a time on one
/// thread. The fleet runner shards them across host cores: each shard is a
/// self-contained universe — the scenario body builds its own World (hosts,
/// VMs, optional fault Injector) from the shard's derived seed, publishes
/// into a shard-private metrics registry and trace sink that the runner
/// installs thread-locally, and returns a small set of named result values.
/// Shards share no mutable state, so host-level parallelism cannot change
/// any simulated result.
///
/// That claim is not left to documentation: the runner carries an opt-in
/// *determinism audit*. With `FleetConfig::audit` set, every shard is
/// executed twice — once on the work-stealing pool, once serially on the
/// calling thread — and the two runs' digests (canonical serialization of
/// result values, fault log and metrics snapshot; no wall-clock anywhere)
/// are byte-compared. "Same seed ⇒ same scenario" becomes a machine-checked
/// property of every audited sweep.
///
/// Seeding: shard i runs with `derive_seed(root_seed, i)` (common/rng), so
/// one root seed reproduces the entire fleet, and any single shard can be
/// re-run in isolation from its printed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ckpt/ckpt.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "fault/fault.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace csk::fleet {

/// What the runner hands a scenario body: its position and seed universe.
struct ShardContext {
  std::size_t index = 0;
  /// derive_seed(FleetConfig::root_seed, index) — the only randomness a
  /// scenario may use (via Rng(seed) / World(seed) / FaultPlan::seed).
  std::uint64_t seed = 0;
};

/// What a scenario body returns.
struct ShardOutcome {
  /// Named KPIs ("total_s", "downtime_ms", ...). The runner aggregates
  /// same-named values across shards into fleet-level percentiles.
  std::map<std::string, double> values;
  /// Delivered-fault log when the scenario armed an Injector; part of the
  /// determinism digest (same seed ⇒ same fault schedule).
  std::vector<fault::InjectedFault> faults;
  /// Non-OK marks the shard failed; the error is carried into the report.
  Status status = Status::ok();
};

/// A scenario body. Must be self-contained: everything it touches is built
/// inside the call from `ctx.seed` (thread-confined by construction), and
/// it observes only the thread-local obs::metrics() / obs::tracer() the
/// runner installed for it.
using ScenarioFn = std::function<ShardOutcome(const ShardContext&)>;

struct ShardResult {
  std::size_t index = 0;
  std::string name;
  std::uint64_t seed = 0;
  ShardOutcome outcome;
  obs::MetricsSnapshot metrics;
  /// Canonical serialization of every simulated fact (values, status,
  /// fault log, metrics) — the unit of byte-comparison for determinism
  /// audits. Contains no wall-clock.
  std::string digest;
  /// Host wall-clock spent executing the shard. Never part of the digest.
  std::int64_t wall_ns = 0;

  bool ok() const { return outcome.status.is_ok(); }
};

/// One shard whose pooled and serial executions disagreed.
struct AuditDiff {
  std::size_t index = 0;
  std::string name;
  std::string detail;  // where the digests diverge
};

/// When and where the runner cuts crash-consistent checkpoints. A policy
/// with an empty directory disables checkpointing entirely (zero overhead,
/// behavior identical to the pre-checkpoint runner).
struct CheckpointPolicy {
  /// Checkpoint store directory; empty = checkpointing off.
  std::string directory;
  /// Cut a checkpoint every N shard completions (0 = no count trigger).
  std::size_t every_shards = 0;
  /// Cut a checkpoint when this much host wall-clock has passed since the
  /// last one (0 = no time trigger). Either trigger firing cuts one.
  double every_wall_seconds = 0.0;
  /// Test-only crash injection forwarded to the store (see ckpt::CrashHook).
  ckpt::CrashHook crash_hook;

  bool enabled() const { return !directory.empty(); }
};

struct FleetConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int workers = 0;
  /// Root of the per-shard seed derivation.
  std::uint64_t root_seed = 0xF1EE7C5Cull;
  /// Re-run every shard serially after the pooled pass and byte-compare
  /// digests (doubles the work; that is the price of proof).
  bool audit = false;
  /// Crash-consistency: periodic durable snapshots of completed shards.
  CheckpointPolicy checkpoint;
};

struct FleetReport {
  std::vector<ShardResult> shards;  // by shard index
  /// Shard snapshots merged in index order (counters add, histograms pool,
  /// gauges last-writer-wins) — identical for any worker count.
  obs::MetricsSnapshot merged;
  /// Per-KPI summary (count/mean/stddev/min/p50/p95/max) across OK shards.
  std::map<std::string, SampleSummary> aggregates;

  int workers = 1;
  std::size_t steals = 0;        // pool stat: tasks that migrated workers
  std::int64_t wall_ns = 0;      // pooled pass, host wall-clock
  std::int64_t audit_wall_ns = 0;  // serial audit pass; 0 when not audited
  bool audited = false;
  std::vector<AuditDiff> audit_diffs;  // empty = determinism held

  // Checkpoint/resume accounting. All host-side bookkeeping: none of these
  // fields enter deterministic_json(), and a resumed run's deterministic
  // bytes equal an uninterrupted run's even though these differ.
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_write_failures = 0;
  std::int64_t checkpoint_wall_ns = 0;
  std::size_t resumed_shards = 0;  // shards restored instead of executed

  std::size_t failed_shards() const;

  /// Canonical JSON of the simulated facts only (per-shard digests, merged
  /// metrics, aggregates) — byte-identical across runs and worker counts
  /// for the same scenarios and root seed. The determinism tests compare
  /// exactly these bytes.
  std::string deterministic_json() const;

  /// Full report including wall-clock and pool stats. NOT deterministic —
  /// benches embed it for humans and tooling, never for byte-comparison.
  obs::JsonValue to_json() const;
};

class FleetRunner {
 public:
  explicit FleetRunner(FleetConfig config = {});

  /// Adds one scenario; its shard index is the insertion position.
  void add(std::string name, ScenarioFn fn);

  std::size_t shards() const { return scenarios_.size(); }
  const FleetConfig& config() const { return config_; }

  /// Executes every shard on the pool (plus serially when auditing) and
  /// assembles the report. Callable repeatedly; runs are independent. With
  /// `config().checkpoint` enabled, cuts durable checkpoints per the policy
  /// (including a final one covering every shard).
  FleetReport run();

  /// Resumes from the newest usable checkpoint in the policy directory:
  /// shards recorded complete are restored bit-for-bit (their digests are
  /// re-derived and verified — kDataLoss on mismatch), the rest re-run from
  /// their derived seeds. The merged report is byte-identical (per
  /// deterministic_json) to an uninterrupted run. kNotFound when the
  /// directory holds no usable checkpoint; kFailedPrecondition when the
  /// checkpoint does not describe this runner (seed/shard mismatch).
  Result<FleetReport> resume_from();

  /// Same, but from one explicit checkpoint file.
  Result<FleetReport> resume_from(const std::string& checkpoint_file);

  /// Executes a single shard in isolation on the calling thread — the
  /// audit's serial half, also handy for reproducing one shard from a
  /// report by index.
  ShardResult run_shard(std::size_t index) const;

 private:
  struct Scenario {
    std::string name;
    ScenarioFn fn;
  };

  ShardResult execute(const Scenario& scenario, std::size_t index) const;
  Result<FleetReport> run_resumed(const ckpt::FleetCheckpoint& ckpt);
  /// Shared body of run()/resume_from(): executes every shard whose
  /// `restored[i]` flag is false, installs the restored results for the
  /// rest, checkpoints per policy, merges, aggregates, audits.
  FleetReport run_internal(std::vector<ShardResult> restored_results,
                           std::vector<char> restored);

  FleetConfig config_;
  std::vector<Scenario> scenarios_;
};

}  // namespace csk::fleet
