#include "fleet/pool.h"

#include <thread>
#include <utility>

#include "common/status.h"

namespace csk::fleet {

struct WorkStealingPool::Shard {
  std::mutex mu;
  std::deque<std::function<void()>> tasks;
};

WorkStealingPool::WorkStealingPool(int workers) : workers_(workers) {
  CSK_CHECK_MSG(workers >= 1, "pool needs at least one worker");
}

std::function<void()> WorkStealingPool::take(std::vector<Shard>& shards,
                                             int self) {
  {
    Shard& own = shards[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      auto task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  for (int offset = 1; offset < workers_; ++offset) {
    Shard& victim =
        shards[static_cast<std::size_t>((self + offset) % workers_)];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      auto task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return {};
}

void WorkStealingPool::run(std::vector<std::function<void()>> tasks) {
  std::vector<Shard> shards(static_cast<std::size_t>(workers_));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    shards[i % static_cast<std::size_t>(workers_)].tasks.push_back(
        std::move(tasks[i]));
  }
  auto worker_main = [this, &shards](int self) {
    for (;;) {
      std::function<void()> task = take(shards, self);
      if (!task) return;
      task();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) threads.emplace_back(worker_main, w);
  for (std::thread& t : threads) t.join();
}

}  // namespace csk::fleet
