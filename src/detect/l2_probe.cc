#include "detect/l2_probe.h"

#include "guestos/costs.h"
#include "obs/metrics.h"

namespace csk::detect {

const char* guest_probe_verdict_name(GuestProbeVerdict verdict) {
  switch (verdict) {
    case GuestProbeVerdict::kLooksSingleLevel: return "LOOKS_SINGLE_LEVEL";
    case GuestProbeVerdict::kNestedSuspected: return "NESTED_SUSPECTED";
    case GuestProbeVerdict::kClockTampering: return "CLOCK_TAMPERING";
    case GuestProbeVerdict::kInconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

GuestTimingProbe::GuestTimingProbe(const hv::TimingModel* timing,
                                   GuestProbeConfig config)
    : timing_(timing), config_(config) {
  CSK_CHECK(timing != nullptr);
}

GuestProbeReport GuestTimingProbe::run(const vmm::VirtualMachine& vm) const {
  if (stall_probe_) {
    const SimDuration stall = stall_probe_();
    if (stall > SimDuration::zero() &&
        config_.probe_timeout > SimDuration::zero() &&
        stall > config_.probe_timeout) {
      GuestProbeReport degraded;
      degraded.verdict = GuestProbeVerdict::kInconclusive;
      degraded.inconclusive_cause =
          "probe stalled " + stall.to_string() + ", exceeding the " +
          config_.probe_timeout.to_string() + " probe timeout";
      degraded.explanation =
          "the probe could not complete within its timeout; no verdict "
          "either way (graceful degradation, never a false SINGLE_LEVEL)";
      obs::metrics()
          .counter("detect.guest_probe.runs",
                   {{"verdict", guest_probe_verdict_name(degraded.verdict)}})
          .add();
      return degraded;
    }
  }
  struct ProbeOp {
    const char* name;
    hv::OpCost cost;
    bool exit_heavy;
  };
  hv::OpCost fork_exit = guestos::fork_cost();
  fork_exit += guestos::exit_cost();
  hv::OpCost arith;  // 1M integer divides: the clock cross-check
  arith.cpu_ns = 5.94e6;
  const ProbeOp ops[] = {
      {"pipe latency", guestos::pipe_latency_cost(), true},
      {"AF_UNIX latency", guestos::af_unix_latency_cost(), true},
      {"fork+exit", fork_exit, true},
      {"1M integer div", arith, false},
  };

  GuestProbeReport report;
  int anomalies = 0;
  int deflated_arith = 0;
  for (const ProbeOp& op : ops) {
    GuestProbeReading r;
    r.op = op.name;
    r.exit_heavy = op.exit_heavy;
    // Expectation: "I rented an ordinary (single-level) cloud VM."
    r.expected_us = timing_->price(op.cost, hv::Layer::kL1).micros_f();
    const SimDuration actual = timing_->price(op.cost, vm.layer());
    r.observed_us = vm.guest_observed(actual).micros_f();
    r.ratio = r.observed_us / r.expected_us;
    if (op.exit_heavy && r.ratio > config_.anomaly_ratio) ++anomalies;
    // Arithmetic cannot legitimately run much *faster* than hardware: an
    // observed/expected ratio well below 1 means the clock is deflated.
    if (!op.exit_heavy && r.ratio < 0.8) ++deflated_arith;
    obs::metrics()
        .histogram("detect.guest_probe.observed_us", {{"op", r.op}})
        .observe(r.observed_us);
    report.readings.push_back(std::move(r));
  }

  if (anomalies >= config_.anomalies_required) {
    report.verdict = GuestProbeVerdict::kNestedSuspected;
    report.explanation =
        "exit-heavy primitives are an order of magnitude above single-level "
        "expectations while arithmetic is flat: a second hypervisor is "
        "multiplying our exits";
  } else if (deflated_arith > 0) {
    report.verdict = GuestProbeVerdict::kClockTampering;
    report.explanation =
        "IPC timings look normal but an arithmetic-bound loop finished "
        "impossibly fast: the clock we measure with has been scaled — "
        "which is itself §VI-A's point: L2 measurements are attacker data";
  } else {
    report.verdict = GuestProbeVerdict::kLooksSingleLevel;
    report.explanation = "all probes within single-level expectations";
  }
  obs::metrics()
      .counter("detect.guest_probe.runs",
               {{"verdict", guest_probe_verdict_name(report.verdict)}})
      .add();
  return report;
}

}  // namespace csk::detect
