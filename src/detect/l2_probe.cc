#include "detect/l2_probe.h"

#include <algorithm>
#include <functional>

#include "guestos/costs.h"
#include "obs/metrics.h"

namespace csk::detect {

namespace {

// Shared verdict logic: classifies a completed (conclusive) set of readings
// under `config`. Used by run() and by guest_probe_verdict_at so a swept
// threshold reproduces exactly what a live probe would have said.
GuestProbeVerdict classify_readings(const std::vector<GuestProbeReading>& readings,
                                    const GuestProbeConfig& config) {
  int anomalies = 0;
  int deflated_arith = 0;
  for (const GuestProbeReading& r : readings) {
    if (r.exit_heavy && r.ratio > config.anomaly_ratio) ++anomalies;
    if (!r.exit_heavy && r.ratio < 0.8) ++deflated_arith;
  }
  if (anomalies >= config.anomalies_required) {
    return GuestProbeVerdict::kNestedSuspected;
  }
  if (deflated_arith > 0) return GuestProbeVerdict::kClockTampering;
  return GuestProbeVerdict::kLooksSingleLevel;
}

}  // namespace

double GuestProbeReport::nested_score(int anomalies_required) const {
  if (anomalies_required <= 0) anomalies_required = 1;
  std::vector<double> ratios;
  for (const GuestProbeReading& r : readings) {
    if (r.exit_heavy) ratios.push_back(r.ratio);
  }
  if (ratios.size() < static_cast<std::size_t>(anomalies_required)) return 0;
  std::sort(ratios.begin(), ratios.end(), std::greater<double>());
  return ratios[static_cast<std::size_t>(anomalies_required) - 1];
}

double GuestProbeReport::arith_ratio() const {
  for (const GuestProbeReading& r : readings) {
    if (!r.exit_heavy) return r.ratio;
  }
  return 0;
}

GuestProbeVerdict guest_probe_verdict_at(const GuestProbeReport& report,
                                         const GuestProbeConfig& config) {
  if (report.verdict == GuestProbeVerdict::kInconclusive) {
    return GuestProbeVerdict::kInconclusive;
  }
  return classify_readings(report.readings, config);
}

const char* guest_probe_verdict_name(GuestProbeVerdict verdict) {
  switch (verdict) {
    case GuestProbeVerdict::kLooksSingleLevel: return "LOOKS_SINGLE_LEVEL";
    case GuestProbeVerdict::kNestedSuspected: return "NESTED_SUSPECTED";
    case GuestProbeVerdict::kClockTampering: return "CLOCK_TAMPERING";
    case GuestProbeVerdict::kInconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

GuestTimingProbe::GuestTimingProbe(const hv::TimingModel* timing,
                                   GuestProbeConfig config)
    : timing_(timing), config_(config) {
  CSK_CHECK(timing != nullptr);
}

GuestProbeReport GuestTimingProbe::run(const vmm::VirtualMachine& vm) const {
  if (stall_probe_) {
    const SimDuration stall = stall_probe_();
    if (stall > SimDuration::zero() &&
        config_.probe_timeout > SimDuration::zero() &&
        stall > config_.probe_timeout) {
      GuestProbeReport degraded;
      degraded.verdict = GuestProbeVerdict::kInconclusive;
      degraded.inconclusive_cause =
          "probe stalled " + stall.to_string() + ", exceeding the " +
          config_.probe_timeout.to_string() + " probe timeout";
      degraded.explanation =
          "the probe could not complete within its timeout; no verdict "
          "either way (graceful degradation, never a false SINGLE_LEVEL)";
      obs::metrics()
          .counter("detect.guest_probe.runs",
                   {{"verdict", guest_probe_verdict_name(degraded.verdict)}})
          .add();
      return degraded;
    }
  }
  struct ProbeOp {
    const char* name;
    hv::OpCost cost;
    bool exit_heavy;
  };
  hv::OpCost fork_exit = guestos::fork_cost();
  fork_exit += guestos::exit_cost();
  hv::OpCost arith;  // 1M integer divides: the clock cross-check
  arith.cpu_ns = 5.94e6;
  const ProbeOp ops[] = {
      {"pipe latency", guestos::pipe_latency_cost(), true},
      {"AF_UNIX latency", guestos::af_unix_latency_cost(), true},
      {"fork+exit", fork_exit, true},
      {"1M integer div", arith, false},
  };

  GuestProbeReport report;
  for (const ProbeOp& op : ops) {
    GuestProbeReading r;
    r.op = op.name;
    r.exit_heavy = op.exit_heavy;
    // Expectation: "I rented an ordinary (single-level) cloud VM."
    r.expected_us = timing_->price(op.cost, hv::Layer::kL1).micros_f();
    const SimDuration actual = timing_->price(op.cost, vm.layer());
    if (sink_) {
      attacker::ProbeObservation obs;
      obs.kind = attacker::ProbeObservationKind::kExitBurst;
      obs.cost = op.cost;
      obs.layer = vm.layer();
      sink_(obs);
    }
    r.observed_us = vm.guest_observed(actual).micros_f();
    // Arithmetic cannot legitimately run much *faster* than hardware: an
    // observed/expected ratio well below 1 means the clock is deflated —
    // classify_readings counts that as the deflated-arith cross-check.
    r.ratio = r.observed_us / r.expected_us;
    obs::metrics()
        .histogram("detect.guest_probe.observed_us", {{"op", r.op}})
        .observe(r.observed_us);
    report.readings.push_back(std::move(r));
  }

  report.verdict = classify_readings(report.readings, config_);
  if (report.verdict == GuestProbeVerdict::kNestedSuspected) {
    report.explanation =
        "exit-heavy primitives are an order of magnitude above single-level "
        "expectations while arithmetic is flat: a second hypervisor is "
        "multiplying our exits";
  } else if (report.verdict == GuestProbeVerdict::kClockTampering) {
    report.explanation =
        "IPC timings look normal but an arithmetic-bound loop finished "
        "impossibly fast: the clock we measure with has been scaled — "
        "which is itself §VI-A's point: L2 measurements are attacker data";
  } else {
    report.explanation = "all probes within single-level expectations";
  }
  obs::metrics()
      .counter("detect.guest_probe.runs",
               {{"verdict", guest_probe_verdict_name(report.verdict)}})
      .add();
  return report;
}

}  // namespace csk::detect
