/// \file
/// In-guest (L2-side) detection attempt, and why the paper rejects it (§VI-A).
///
/// A tenant could try to detect CloudSkulk from inside their own VM: nested
/// virtualization makes exit-heavy OS primitives (pipe round trips, fork)
/// roughly an order of magnitude slower than single-level virtualization,
/// while arithmetic stays flat — a timing fingerprint measurable with
/// nothing but gettimeofday.
///
/// GuestTimingProbe implements exactly that: it runs lmbench-style probes
/// *as the guest observes them* (through the guest's virtualized clock) and
/// compares against the latencies a single-level guest of the advertised
/// hardware should see.
///
/// The catch — and the reason the paper deploys its detector at L0 — is
/// that the guest's clock belongs to the attacker: L1 can scale the TSC the
/// victim reads (VirtualMachine::set_tsc_scaling), deflating the observed
/// latencies back to innocent values. The probe also measures an
/// arithmetic-bound loop as a cross-check; naive uniform time dilation
/// distorts that too, so a careful probe can notice the *inconsistency* —
/// and a careful attacker then needs per-instruction-class time
/// virtualization, an arms race the tenant fights on hostile ground.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "attacker/observation.h"
#include "common/status.h"
#include "common/time.h"
#include "hv/timing_model.h"
#include "vmm/vm.h"

namespace csk::detect {

struct GuestProbeConfig {
  /// Observed/expected ratio above which an op counts as anomalous.
  double anomaly_ratio = 3.0;
  /// Anomalous exit-heavy ops needed to call it nested.
  int anomalies_required = 2;
  /// Probe-stall budget (fault injection): a stall longer than this
  /// degrades the run to kInconclusive. zero() = tolerate any stall.
  SimDuration probe_timeout = SimDuration::zero();
};

struct GuestProbeReading {
  std::string op;
  double observed_us = 0;   // what the guest's own clock reports
  double expected_us = 0;   // single-level (L1) expectation
  double ratio = 0;
  bool exit_heavy = false;  // pipe/fork-class vs arithmetic-class
};

enum class GuestProbeVerdict {
  kLooksSingleLevel,     // timings consistent with an ordinary cloud VM
  kNestedSuspected,      // exit-heavy ops anomalously slow
  kClockTampering,       // exit-heavy ops "fine" but arithmetic impossibly
                         // fast — the clock itself is lying
  kInconclusive,         // probe stalled past its timeout: no claim either
                         // way — crucially, never a false "single level"
};

const char* guest_probe_verdict_name(GuestProbeVerdict verdict);

struct GuestProbeReport {
  std::vector<GuestProbeReading> readings;
  GuestProbeVerdict verdict = GuestProbeVerdict::kLooksSingleLevel;
  std::string explanation;
  /// Why the run degraded, when verdict == kInconclusive.
  std::string inconclusive_cause;

  /// Threshold-free nestedness score: the k-th largest exit-heavy
  /// observed/expected ratio (k = anomalies_required). The probe reaches
  /// `anomalies_required` anomalies at anomaly threshold r exactly when
  /// this score exceeds r, so a campaign can sweep r over a recorded
  /// report. 0 when fewer than k exit-heavy readings exist (in particular
  /// for an inconclusive run, which measured nothing).
  double nested_score(int anomalies_required = 2) const;
  /// Observed/expected ratio of the arithmetic cross-check (0 if absent).
  /// Well below 1 means the guest's clock is deflated (TSC scaling).
  double arith_ratio() const;
};

/// Re-derives the verdict the probe would have produced under a different
/// config, from the recorded readings alone (no re-run). kInconclusive
/// stays kInconclusive — it never degrades to a "single level" claim.
GuestProbeVerdict guest_probe_verdict_at(const GuestProbeReport& report,
                                         const GuestProbeConfig& config);

class GuestTimingProbe {
 public:
  GuestTimingProbe(const hv::TimingModel* timing,
                   GuestProbeConfig config = {});

  /// Runs the probe inside `vm` — latencies are priced at the VM's true
  /// layer but reported through its (possibly attacker-scaled) clock.
  GuestProbeReport run(const vmm::VirtualMachine& vm) const;

  /// Fault-injection hook: returns the remaining duration of an active
  /// probe stall (zero when healthy). The probe has no simulator access,
  /// so a stall beyond `probe_timeout` degrades the run to kInconclusive;
  /// a shorter stall is simply absorbed. Installed by csk::fault::Injector.
  void set_stall_probe(std::function<SimDuration()> probe) {
    stall_probe_ = std::move(probe);
  }

  /// Probe-observation plane (src/attacker): each probe op is an exit burst
  /// the interposed L1's exit handler services — emitted as kExitBurst
  /// between pricing the op and reading the guest clock, which is exactly
  /// the window a probe-triggered TSC policy adapts in. Null (the default)
  /// emits nothing; the pre-existing probe runs byte-for-byte.
  void set_observation_sink(attacker::ObservationSink sink) {
    sink_ = std::move(sink);
  }

 private:
  const hv::TimingModel* timing_;
  GuestProbeConfig config_;
  std::function<SimDuration()> stall_probe_;
  attacker::ObservationSink sink_;
};

}  // namespace csk::detect
