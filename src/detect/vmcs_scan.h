/// \file
/// Baseline detector: hypervisor memory forensics (paper §VI-E).
///
/// Models Graziano et al.'s volatility extension: scan VM memory for VMCS
/// structures by their hard-coded revision-id signature. Finds an L1
/// hypervisor when (a) the guest actually uses VT-x and (b) the scanner
/// knows the revision id in use — the two brittleness points the paper
/// contrasts with its software-only dedup approach.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "vmm/host.h"

namespace csk::detect {

struct VmcsScanConfig {
  /// Revision ids the scanner's signature database knows.
  std::vector<std::uint32_t> known_revision_ids = {
      vmm::VirtualMachine::kDefaultVmcsRevisionId};
};

struct VmcsScanReport {
  struct Finding {
    VmId vm;
    std::string vm_name;
    std::uint32_t revision_id = 0;
    std::uint64_t pages_with_signature = 0;
  };
  std::uint64_t pages_scanned = 0;
  std::vector<Finding> findings;  // VMs containing an L1 hypervisor
  bool hypervisor_found() const { return !findings.empty(); }

  /// Threshold-free score: total signature pages across all findings. A
  /// campaign sweeps a min-pages threshold over this without re-scanning.
  std::uint64_t total_signature_pages() const {
    std::uint64_t total = 0;
    for (const Finding& f : findings) total += f.pages_with_signature;
    return total;
  }
  /// Stricter call: some VM carries at least `min_pages` signature pages
  /// (min_pages == 1 reproduces hypervisor_found()).
  bool hypervisor_found_at(std::uint64_t min_pages) const {
    for (const Finding& f : findings) {
      if (f.pages_with_signature >= min_pages) return true;
    }
    return false;
  }
};

class VmcsScanDetector {
 public:
  explicit VmcsScanDetector(vmm::Host* host, VmcsScanConfig config = {});

  /// Scans every top-level VM's memory on the host.
  VmcsScanReport scan();

 private:
  vmm::Host* host_;
  VmcsScanConfig config_;
};

}  // namespace csk::detect
