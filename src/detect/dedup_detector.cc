#include "detect/dedup_detector.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace csk::detect {

DedupVerdict dedup_verdict_at(const DedupDetectionReport& report,
                              double merged_ratio_threshold) {
  if (report.verdict == DedupVerdict::kInconclusive) {
    return DedupVerdict::kInconclusive;
  }
  const bool step1 = report.t1_vs_t0 > merged_ratio_threshold;
  const bool step2 = report.t2_vs_t0 > merged_ratio_threshold;
  if (!step1) return DedupVerdict::kImpersonationBroken;
  return step2 ? DedupVerdict::kNestedVmDetected : DedupVerdict::kNoNestedVm;
}

const char* dedup_verdict_name(DedupVerdict verdict) {
  switch (verdict) {
    case DedupVerdict::kNoNestedVm: return "NO_NESTED_VM";
    case DedupVerdict::kNestedVmDetected: return "NESTED_VM_DETECTED";
    case DedupVerdict::kImpersonationBroken: return "IMPERSONATION_BROKEN";
    case DedupVerdict::kInconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

DedupDetector::DedupDetector(vmm::Host* host, DedupDetectorConfig config)
    : host_(host), config_(config) {
  CSK_CHECK(host != nullptr);
  CSK_CHECK(config_.file_pages > 0);
  // File-A: a randomly chosen file (the paper used an mp3) whose pages are
  // unique — byte-backed so that all equality below is literal content
  // equality, not hash hand-waving.
  Rng rng = host_->world()->rng().fork();
  file_.reserve(config_.file_pages);
  for (std::size_t i = 0; i < config_.file_pages; ++i) {
    mem::PageBytes bytes(mem::kPageSize);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    file_.push_back(mem::PageData::from_bytes(std::move(bytes)));
  }
}

Status DedupDetector::seed_guest(guestos::GuestOS* os) const {
  CSK_CHECK(os != nullptr);
  if (!os->fs().exists(config_.file_name)) {
    CSK_RETURN_IF_ERROR(os->fs().create(
        config_.file_name, file_,
        static_cast<std::uint64_t>(file_.size()) * mem::kPageSize));
  }
  return os->load_file(config_.file_name).status();
}

PageTimings DedupDetector::measure_baseline() {
  // File-A resident only in this (non-mergeable) buffer: every write is a
  // regular write. This is t0.
  mem::AddressSpace buffer(&host_->phys(), config_.file_pages + 8,
                           "detector-baseline");
  PageTimings t;
  t.us.reserve(config_.file_pages);
  for (std::size_t i = 0; i < config_.file_pages; ++i) {
    buffer.write_page(Gfn(i), file_[i]);
  }
  for (std::size_t i = 0; i < config_.file_pages; ++i) {
    mem::PageBytes bytes = *file_[i].bytes;
    bytes[1] ^= 0xA5;
    const mem::WriteResult w =
        buffer.write_page(Gfn(i), mem::PageData::from_bytes(std::move(bytes)));
    t.us.push_back(w.cost.micros_f());
    obs::metrics()
        .histogram("detect.dedup.page_write_us", {{"phase", "t0"}})
        .observe(w.cost.micros_f());
  }
  t.summary = summarize(t.us);
  return t;
}

PageTimings DedupDetector::load_wait_measure(const std::string& label) {
  // A fresh buffer per step, like re-running the detection binary.
  mem::AddressSpace buffer(&host_->phys(), config_.file_pages + 8,
                           "detector-" + label + "-" +
                               std::to_string(buffer_serial_++));
  for (std::size_t i = 0; i < config_.file_pages; ++i) {
    buffer.write_page(Gfn(i), file_[i]);
  }
  host_->ksm().register_region(&buffer);
  const SimTime wait_start = host_->world()->simulator().now();
  host_->world()->simulator().run_for(config_.merge_wait);
  obs::tracer().complete("detect.dedup.merge_wait[" + label + "]", wait_start,
                         config_.merge_wait, "detect");

  PageTimings t;
  t.us.reserve(config_.file_pages);
  obs::Histogram& probe_hist =
      obs::metrics().histogram("detect.dedup.page_write_us", {{"phase", label}});
  for (std::size_t i = 0; i < config_.file_pages; ++i) {
    // Test write: touch one byte of the page. If ksmd merged the page with
    // a VM copy, this pays the copy-on-write break.
    mem::PageBytes bytes = *file_[i].bytes;
    bytes[0] ^= 0x5A;
    const mem::WriteResult w =
        buffer.write_page(Gfn(i), mem::PageData::from_bytes(std::move(bytes)));
    t.us.push_back(w.cost.micros_f());
    probe_hist.observe(w.cost.micros_f());
  }
  t.summary = summarize(t.us);
  host_->ksm().unregister_region(&buffer);
  return t;
}

bool DedupDetector::ride_out_stall(const std::string& step,
                                   std::string* cause) {
  if (!stall_probe_) return true;
  const SimDuration stall = stall_probe_();
  if (stall <= SimDuration::zero()) return true;
  if (config_.probe_timeout > SimDuration::zero() &&
      stall > config_.probe_timeout) {
    *cause = "probe stalled " + stall.to_string() + " before step " + step +
             ", exceeding the " + config_.probe_timeout.to_string() +
             " probe timeout";
    obs::metrics()
        .counter("detect.dedup.probe_stalls", {{"outcome", "timeout"}})
        .add();
    return false;
  }
  // Within budget (or no budget configured): wait the stall out, advancing
  // the simulated clock so the injector's window actually elapses.
  obs::metrics()
      .counter("detect.dedup.probe_stalls", {{"outcome", "waited"}})
      .add();
  obs::tracer().instant("detect.dedup.stall_wait[" + step + "]",
                        host_->world()->simulator().now(), "detect");
  host_->world()->simulator().run_for(stall);
  return true;
}

Result<DedupDetectionReport> DedupDetector::run(guestos::GuestOS* victim_os) {
  CSK_CHECK(victim_os != nullptr);
  if (!victim_os->file_cached(config_.file_name)) {
    return failed_precondition(
        "File-A not in the guest's page cache; seed_guest() first");
  }

  if (config_.rerandomize_contents) {
    // Fresh File-A every run: new random bytes, pushed into the victim at
    // fresh gfns (replace_file), so a mirror watch armed on the previous
    // cache pages is stranded. The push itself crosses whatever relays the
    // web channel — observable, hence the kFileAPush emission.
    Rng rng = host_->world()->rng().fork();
    std::vector<mem::PageData> fresh;
    fresh.reserve(config_.file_pages);
    for (std::size_t i = 0; i < config_.file_pages; ++i) {
      mem::PageBytes bytes(mem::kPageSize);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
      fresh.push_back(mem::PageData::from_bytes(std::move(bytes)));
    }
    file_ = std::move(fresh);
    CSK_RETURN_IF_ERROR(
        victim_os
            ->replace_file(config_.file_name, file_,
                           static_cast<std::uint64_t>(file_.size()) *
                               mem::kPageSize)
            .status());
    if (sink_) {
      attacker::ProbeObservation obs;
      obs.kind = attacker::ProbeObservationKind::kFileAPush;
      obs.file_name = config_.file_name;
      obs.file_pages = &file_;
      sink_(obs);
    }
  }

  DedupDetectionReport report;
  const SimTime protocol_start = host_->world()->simulator().now();
  const auto inconclusive = [&](std::string cause) {
    report.protocol_time =
        host_->world()->simulator().now() - protocol_start;
    report.verdict = DedupVerdict::kInconclusive;
    report.inconclusive_cause = std::move(cause);
    report.explanation =
        "the probe could not complete within its timeout; no verdict "
        "either way (graceful degradation, never a false CLEAN)";
    obs::metrics()
        .counter("detect.dedup.runs",
                 {{"verdict", dedup_verdict_name(report.verdict)}})
        .add();
    return report;
  };

  std::string cause;
  if (!ride_out_stall("t0", &cause)) return inconclusive(std::move(cause));
  report.t0 = measure_baseline();
  const double t0_mean = report.t0.summary.mean;
  CSK_CHECK(t0_mean > 0);

  // ---- Step 1 -------------------------------------------------------------
  if (!ride_out_stall("t1", &cause)) return inconclusive(std::move(cause));
  report.t1 = load_wait_measure("t1");
  report.t1_vs_t0 = report.t1.summary.mean / t0_mean;
  report.step1_merged =
      report.t1.summary.mean > config_.merged_ratio_threshold * t0_mean;

  // ---- Guest-side change: File-A -> File-A-v2 ------------------------------
  CSK_RETURN_IF_ERROR(victim_os->perturb_cached_file(config_.file_name));

  // ---- Step 2 -------------------------------------------------------------
  if (!ride_out_stall("t2", &cause)) return inconclusive(std::move(cause));
  report.t2 = load_wait_measure("t2");
  report.t2_vs_t0 = report.t2.summary.mean / t0_mean;
  report.step2_merged =
      report.t2.summary.mean > config_.merged_ratio_threshold * t0_mean;

  report.t1_t2_separation = separation_score(report.t1.us, report.t2.us);
  report.protocol_time = host_->world()->simulator().now() - protocol_start;

  if (!report.step1_merged) {
    report.verdict = DedupVerdict::kImpersonationBroken;
    report.explanation =
        "File-A never merged: the observed VM does not hold File-A in "
        "memory, so the VM the host sees is not the VM the user runs — "
        "tampering evident without timing analysis";
  } else if (report.step2_merged) {
    report.verdict = DedupVerdict::kNestedVmDetected;
    report.explanation =
        "t2 is as slow as t1: a memory image that never saw the guest's "
        "change still holds File-A — an interposed L1 hypervisor "
        "(CloudSkulk) is present";
  } else {
    report.verdict = DedupVerdict::kNoNestedVm;
    report.explanation =
        "t1 slow (merged), t2 fast (unmerged after the guest's change): "
        "the guest's memory is exactly the memory the host sees";
  }
  obs::metrics()
      .counter("detect.dedup.runs",
               {{"verdict", dedup_verdict_name(report.verdict)}})
      .add();
  obs::metrics().gauge("detect.dedup.last_t1_t2_separation")
      .set(report.t1_t2_separation);
  return report;
}

}  // namespace csk::detect
