/// \file
/// Baseline detector: VMI fingerprinting (paper §VI-E).
///
/// A single-level VMI tool reconstructs a guest's OS identity and process
/// list from kernel data structures at known guest-physical locations, and
/// compares them with what the administrator expects that VM to look like.
/// CloudSkulk evades it by running the same OS and the same-looking process
/// mix in L1 and hiding the giveaway processes — and a nested guest's
/// structures are unreachable across the double semantic gap (§VI-D2).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "guestos/os.h"
#include "vmm/host.h"

namespace csk::detect {

/// What the administrator believes about one guest.
struct VmBaseline {
  std::string vm_name;
  guestos::OsIdentity identity;
  /// Process names that must be present (e.g. the tenant's service).
  std::vector<std::string> expected_processes;
  /// Process names whose presence is suspicious (qemu inside the guest…).
  std::vector<std::string> forbidden_processes = {"qemu-system-x86", "kvm"};
};

struct VmiFingerprintReport {
  struct Anomaly {
    std::string vm_name;
    std::string what;
  };
  std::vector<Anomaly> anomalies;
  std::uint64_t vms_checked = 0;
  std::uint64_t semantic_gap_failures = 0;  // unparseable proc tables
  bool suspicious() const { return !anomalies.empty(); }

  /// Threshold-free score for campaign sweeps: how many distinct baseline
  /// violations the introspection found.
  std::uint64_t anomaly_count() const { return anomalies.size(); }
  /// Stricter call at a swept threshold (min_anomalies == 1 reproduces
  /// suspicious()).
  bool suspicious_at(std::uint64_t min_anomalies) const {
    return anomaly_count() >= min_anomalies;
  }
};

class VmiFingerprintDetector {
 public:
  explicit VmiFingerprintDetector(vmm::Host* host);

  /// Introspects every top-level VM against its baseline (VMs without a
  /// baseline are checked for forbidden processes only).
  VmiFingerprintReport check(const std::vector<VmBaseline>& baselines);

 private:
  vmm::Host* host_;
};

}  // namespace csk::detect
