#include "detect/vmi_fingerprint.h"

#include <algorithm>

#include "obs/metrics.h"

namespace csk::detect {

VmiFingerprintDetector::VmiFingerprintDetector(vmm::Host* host)
    : host_(host) {
  CSK_CHECK(host != nullptr);
}

VmiFingerprintReport VmiFingerprintDetector::check(
    const std::vector<VmBaseline>& baselines) {
  VmiFingerprintReport report;
  for (vmm::VirtualMachine* vm : host_->vms()) {
    ++report.vms_checked;
    const auto bytes = vm->memory().read_bytes(Gfn(guestos::kProcTableGfn));
    if (!bytes) {
      ++report.semantic_gap_failures;
      report.anomalies.push_back(
          {vm->name(), "kernel structures not found at expected location"});
      continue;
    }
    auto parsed = guestos::parse_proc_table(*bytes);
    if (!parsed.is_ok()) {
      ++report.semantic_gap_failures;
      report.anomalies.push_back(
          {vm->name(), "proc table unparseable (semantic gap)"});
      continue;
    }

    const VmBaseline* baseline = nullptr;
    for (const VmBaseline& b : baselines) {
      if (b.vm_name == vm->name()) {
        baseline = &b;
        break;
      }
    }

    auto has_proc = [&](const std::string& name) {
      return std::any_of(parsed->procs.begin(), parsed->procs.end(),
                         [&](const guestos::Process& p) {
                           return p.name == name;
                         });
    };

    const std::vector<std::string> forbidden =
        baseline ? baseline->forbidden_processes
                 : std::vector<std::string>{"qemu-system-x86", "kvm"};
    for (const std::string& name : forbidden) {
      if (has_proc(name)) {
        report.anomalies.push_back(
            {vm->name(), "forbidden process visible: " + name});
      }
    }
    if (baseline != nullptr) {
      if (!(parsed->identity == baseline->identity)) {
        report.anomalies.push_back(
            {vm->name(), "OS identity mismatch: expected " +
                             baseline->identity.kernel_version + ", saw " +
                             parsed->identity.kernel_version});
      }
      for (const std::string& name : baseline->expected_processes) {
        if (!has_proc(name)) {
          report.anomalies.push_back(
              {vm->name(), "expected process missing: " + name});
        }
      }
    }
  }
  obs::metrics().counter("detect.vmi.vms_checked").add(report.vms_checked);
  obs::metrics().counter("detect.vmi.anomalies").add(report.anomalies.size());
  obs::metrics()
      .counter("detect.vmi.semantic_gap_failures")
      .add(report.semantic_gap_failures);
  return report;
}

}  // namespace csk::detect
