#include "detect/vmcs_scan.h"

#include <algorithm>

namespace csk::detect {

VmcsScanDetector::VmcsScanDetector(vmm::Host* host, VmcsScanConfig config)
    : host_(host), config_(std::move(config)) {
  CSK_CHECK(host != nullptr);
}

VmcsScanReport VmcsScanDetector::scan() {
  VmcsScanReport report;
  for (vmm::VirtualMachine* vm : host_->vms()) {
    VmcsScanReport::Finding finding;
    finding.vm = vm->id();
    finding.vm_name = vm->name();
    // Zero-copy sweep of resident pages: the visitor hands out references,
    // so scanning guest RAM never duplicates page payloads.
    vm->memory().visit_mapped([&](Gfn, const mem::PageData& page) {
      ++report.pages_scanned;
      const auto& bytes = page.bytes;
      if (!bytes || bytes->size() < 8) return;
      if ((*bytes)[0] != 'V' || (*bytes)[1] != 'M' || (*bytes)[2] != 'C' ||
          (*bytes)[3] != 'S') {
        return;
      }
      std::uint32_t rev = 0;
      for (int i = 0; i < 4; ++i) {
        rev |= static_cast<std::uint32_t>((*bytes)[4 + i]) << (8 * i);
      }
      if (std::find(config_.known_revision_ids.begin(),
                    config_.known_revision_ids.end(),
                    rev) == config_.known_revision_ids.end()) {
        return;  // unknown signature: the scanner walks right past it
      }
      finding.revision_id = rev;
      ++finding.pages_with_signature;
    });
    if (finding.pages_with_signature > 0) {
      report.findings.push_back(std::move(finding));
    }
  }
  return report;
}

}  // namespace csk::detect
