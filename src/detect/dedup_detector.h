/// \file
/// The paper's defense (§VI): memory-deduplication-based detection of a
/// nested-VM rootkit, run at L0.
///
/// Protocol (§VI-B):
///   Step 1  Load File-A (known to also be in the victim's memory, via the
///           cloud vendor's web interface) into an L0 buffer marked
///           mergeable; wait for ksmd; measure the per-page write time t1.
///           A COW-slow t1 proves File-A was merged with *some* VM copy.
///   Step 2  Have the guest change every page (File-A -> File-A-v2), load a
///           fresh File-A buffer in L0 again, wait, measure t2.
///
///   No rootkit:  the only guest copy changed, so nothing merges: t1 >> t2,
///                t2 ~ t0 (regular-write baseline).
///   CloudSkulk:  the impersonating L1 *also* holds File-A and did not see
///                the change, so the fresh buffer merges again: t1 ~ t2,
///                both >> t0.
///
/// t0 is measured against an unregistered buffer (File-A in no VM at all).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attacker/observation.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"
#include "guestos/os.h"
#include "vmm/host.h"

namespace csk::detect {

struct DedupDetectorConfig {
  std::string file_name = "file-a.mp3";
  /// 100 pages = 400 KiB, the paper's demonstration size. §VI-D argues a
  /// few pages suffice; the ablation bench sweeps this.
  std::size_t file_pages = 100;
  /// "Wait for a while" after loading, for ksmd to find and merge.
  SimDuration merge_wait = SimDuration::seconds(60);
  /// A timing population counts as merged when its mean exceeds the t0
  /// baseline mean by this factor.
  double merged_ratio_threshold = 3.0;
  /// Probe-stall budget: if a stall (fault injection — a hung ksmd, a
  /// thrashing host) exceeds this, the run degrades to kInconclusive
  /// instead of blocking. zero() = wait out any stall (old behavior).
  SimDuration probe_timeout = SimDuration::zero();
  /// Countermeasure to watch-based mirroring (src/attacker): every run()
  /// regenerates File-A with fresh random bytes and pushes the new version
  /// into the victim via GuestOS::replace_file — the victim's cache moves
  /// to fresh gfns, stranding any write watch the attacker armed on the
  /// old ones. Off by default (the pre-existing protocol, byte-for-byte).
  bool rerandomize_contents = false;
};

struct PageTimings {
  std::vector<double> us;  // one write-time sample per page, microseconds
  SampleSummary summary;
};

enum class DedupVerdict {
  /// t1 merged, t2 not: the guest's change broke sharing — the VM the
  /// vendor talks to is the VM whose memory L0 sees. Clean.
  kNoNestedVm,
  /// t1 and t2 both merged: something that did not see the guest's change
  /// still holds File-A — an impersonating L1. CloudSkulk detected.
  kNestedVmDetected,
  /// t1 never merged: File-A is not in the observed VM's memory at all.
  /// The impersonation already failed at a grosser level (§VI-B: such a
  /// difference is itself sufficient evidence of tampering).
  kImpersonationBroken,
  /// The protocol could not complete (probe stalled past its timeout):
  /// no claim either way — crucially, never a false CLEAN. The cause is in
  /// `DedupDetectionReport::inconclusive_cause`.
  kInconclusive,
};

const char* dedup_verdict_name(DedupVerdict verdict);

struct DedupDetectionReport {
  PageTimings t0;
  PageTimings t1;
  PageTimings t2;
  bool step1_merged = false;
  bool step2_merged = false;
  DedupVerdict verdict = DedupVerdict::kImpersonationBroken;
  std::string explanation;
  /// Separation (in pooled stddevs) between t1 and t2 populations.
  double t1_t2_separation = 0.0;
  /// Why the run degraded, when verdict == kInconclusive.
  std::string inconclusive_cause;
  /// Threshold-free scores: each step's mean write time relative to the t0
  /// baseline mean. A step "merged" at threshold r iff its ratio > r, so a
  /// campaign can sweep r over a recorded report without re-running the
  /// protocol. Both stay 0 when the run degraded to kInconclusive before
  /// the corresponding step measured.
  double t1_vs_t0 = 0.0;
  double t2_vs_t0 = 0.0;
  /// The continuous nested-VM score: how slow step-2 writes stayed after
  /// the guest's change broke any honest sharing. ~1 for a clean host,
  /// ~t1_vs_t0 when a stale L1 copy keeps re-merging (CloudSkulk).
  double nested_score() const { return t2_vs_t0; }
  /// End-to-end simulated time the protocol consumed (both merge waits,
  /// stall ride-outs, measurements) — the paper's detection latency.
  SimDuration protocol_time;
};

/// Re-derives the verdict the protocol would have produced at a different
/// `merged_ratio_threshold`, from the recorded ratios alone (no re-run).
/// kInconclusive stays kInconclusive: an incomplete protocol has nothing to
/// re-threshold — in particular it never degrades to a CLEAN verdict.
DedupVerdict dedup_verdict_at(const DedupDetectionReport& report,
                              double merged_ratio_threshold);

class DedupDetector {
 public:
  /// Runs at L0 on `host`. The detector needs the cooperation channel the
  /// paper describes: a way to place File-A into the guest and later ask
  /// the guest to modify it — the vendor's web interface to the VM user.
  DedupDetector(vmm::Host* host, DedupDetectorConfig config = {});

  /// Generates File-A's contents (distinct per detector instance).
  /// Exposed so scenarios can seed the same bytes into guests.
  const std::vector<mem::PageData>& file_pages() const { return file_; }

  /// Installs File-A into a guest's FS and page cache (the web-interface
  /// push; in scenario 2 the attacker's L1 mirrors this into itself).
  Status seed_guest(guestos::GuestOS* os) const;

  /// Full two-step protocol against the guest the user controls (wherever
  /// it actually runs). Advances the simulation during waits.
  Result<DedupDetectionReport> run(guestos::GuestOS* victim_os);

  /// Fault-injection hook: returns the remaining duration of an active
  /// probe stall at the current simulated time (zero when healthy). The
  /// detector consults it before each protocol step; a stall longer than
  /// `probe_timeout` degrades the run to kInconclusive. Installed by
  /// csk::fault::Injector; null (the default) means never stalled.
  void set_stall_probe(std::function<SimDuration()> probe) {
    stall_probe_ = std::move(probe);
  }

  /// Probe-observation plane (src/attacker): the detector's observable side
  /// effects — here, File-A pushes into the guest — are delivered to the
  /// sink at the moment they happen, modeling what an interposed L1 can see
  /// of this protocol. Null (the default) emits nothing and runs the
  /// pre-existing code path byte-for-byte.
  void set_observation_sink(attacker::ObservationSink sink) {
    sink_ = std::move(sink);
  }

 private:
  /// Measures the regular-write baseline on an unregistered buffer.
  PageTimings measure_baseline();
  /// Loads File-A into a fresh mergeable L0 buffer, waits, measures.
  PageTimings load_wait_measure(const std::string& label);
  /// Handles an active stall before `step`: waits it out (advancing the
  /// sim) if within budget, or sets `cause` and returns false to degrade.
  bool ride_out_stall(const std::string& step, std::string* cause);

  vmm::Host* host_;
  DedupDetectorConfig config_;
  std::vector<mem::PageData> file_;
  std::function<SimDuration()> stall_probe_;
  attacker::ObservationSink sink_;
  int buffer_serial_ = 0;
};

}  // namespace csk::detect
