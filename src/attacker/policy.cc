#include "attacker/policy.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "guestos/costs.h"
#include "guestos/os.h"
#include "vmm/vm.h"

namespace csk::attacker {

const char* attacker_policy_kind_name(AttackerPolicyKind kind) {
  switch (kind) {
    case AttackerPolicyKind::kStatic: return "STATIC";
    case AttackerPolicyKind::kReactiveMirror: return "REACTIVE_MIRROR";
    case AttackerPolicyKind::kProbeTriggeredTsc: return "PROBE_TRIGGERED_TSC";
  }
  return "?";
}

AttackerPolicy::AttackerPolicy(AttackerPolicyConfig config)
    : config_(config) {}

AttackerPolicy::~AttackerPolicy() = default;

void AttackerPolicy::arm(const AttackerContext& ctx) {
  CSK_CHECK(ctx.world != nullptr);
  CSK_CHECK(ctx.host != nullptr);
  CSK_CHECK(ctx.rootkit_vm != nullptr);
  CSK_CHECK(ctx.victim_vm != nullptr);
  CSK_CHECK_MSG(!armed_, "policy armed twice");
  ctx_ = ctx;
  armed_ = true;
}

void AttackerPolicy::observe(const ProbeObservation& obs) {
  if (obs.kind == ProbeObservationKind::kFileAPush) reseed_facade(obs);
}

void AttackerPolicy::disarm() { armed_ = false; }

ObservationSink AttackerPolicy::sink() {
  return [this](const ProbeObservation& obs) {
    ++stats_.observations;
    observe(obs);
  };
}

void AttackerPolicy::apply_static_evasions(bool apply_tsc) {
  if (ctx_.careful_hiding) {
    guestos::GuestOS* l1 = ctx_.rootkit_vm->os();
    for (const char* name : {"qemu-system-x86", "kvm"}) {
      if (auto p = l1->find_process_by_name(name); p.is_ok()) {
        (void)l1->hide_process(p->pid);
      }
    }
  }
  if (apply_tsc && ctx_.tsc_scaling) {
    // §VI-A: deflate the victim's clock so exit-heavy probes read as
    // single-level (pipe latency is the giveaway the attacker targets).
    const double scale =
        ctx_.world->timing().price(guestos::pipe_latency_cost(),
                                   hv::Layer::kL1) /
        ctx_.world->timing().price(guestos::pipe_latency_cost(),
                                   hv::Layer::kL2);
    ctx_.victim_vm->set_tsc_scaling(scale);
  }
}

void AttackerPolicy::reseed_facade(const ProbeObservation& obs) {
  if (!armed_ || obs.file_pages == nullptr) return;
  guestos::GuestOS* l1 = ctx_.rootkit_vm->os();
  if (!l1->file_cached(obs.file_name)) return;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(obs.file_pages->size()) * mem::kPageSize;
  if (l1->replace_file(obs.file_name, *obs.file_pages, bytes).is_ok()) {
    ++stats_.facade_reseeds;
  }
}

namespace {

/// kStatic: the seed-drawn evasions and nothing reactive beyond the
/// push-mirroring every impersonating L1 already performs.
class StaticPolicy final : public AttackerPolicy {
 public:
  explicit StaticPolicy(AttackerPolicyConfig config)
      : AttackerPolicy(config) {}
  ~StaticPolicy() override { disarm(); }

  void arm(const AttackerContext& ctx) override {
    AttackerPolicy::arm(ctx);
    apply_static_evasions(/*apply_tsc=*/true);
  }
};

/// kReactiveMirror: static evasions plus a write-protection watch on the
/// victim's File-A cache pages, mirrored synchronously into the L1 facade.
class ReactiveMirrorPolicy final : public AttackerPolicy {
 public:
  explicit ReactiveMirrorPolicy(AttackerPolicyConfig config)
      : AttackerPolicy(config), rng_(0) {}
  ~ReactiveMirrorPolicy() override { disarm(); }

  void arm(const AttackerContext& ctx) override {
    AttackerPolicy::arm(ctx);
    apply_static_evasions(/*apply_tsc=*/true);
    rng_ = Rng(ctx.seed);
  }

  void on_guest_seeded() override { rebuild_watch(); }

  void observe(const ProbeObservation& obs) override {
    switch (obs.kind) {
      case ProbeObservationKind::kFileAPush:
        // The push crosses the relay either way; whether the *watch* follows
        // the victim's cache to its fresh gfns is the gamble. A stranded
        // watch never sees the v2 writes, so the facade rots and step 2
        // re-merges — re-randomization's recovery path.
        reseed_facade(obs);
        if (rng_.chance(config_.mirror_rescan_fraction)) {
          rebuild_watch();
          ++stats_.watch_rescans;
        }
        return;
      case ProbeObservationKind::kFileAPageWrite:
        mirror_page(obs);
        return;
      case ProbeObservationKind::kExitBurst:
        return;
    }
  }

  void disarm() override {
    if (armed() && ctx_.victim_vm != nullptr) {
      ctx_.victim_vm->os()->memory()->clear_page_watch();
    }
    watch_index_.clear();
    AttackerPolicy::disarm();
  }

 private:
  void rebuild_watch() {
    auto gfns = ctx_.victim_vm->os()->cached_gfns(ctx_.file_name);
    if (!gfns.is_ok()) return;
    watch_index_.clear();
    for (std::size_t i = 0; i < gfns->size(); ++i) {
      watch_index_[(*gfns)[i].value()] = i;
    }
    ctx_.victim_vm->os()->memory()->watch_pages(
        *gfns, [this](Gfn gfn, const mem::PageData& page) {
          ProbeObservation obs;
          obs.kind = ProbeObservationKind::kFileAPageWrite;
          obs.file_name = ctx_.file_name;
          obs.gfn = gfn.value();
          obs.page = &page;
          ++stats_.observations;
          observe(obs);
        });
  }

  void mirror_page(const ProbeObservation& obs) {
    const auto it = watch_index_.find(obs.gfn);
    if (it == watch_index_.end() || obs.page == nullptr) return;
    guestos::GuestOS* l1 = ctx_.rootkit_vm->os();
    auto l1_gfns = l1->cached_gfns(ctx_.file_name);
    if (!l1_gfns.is_ok() || it->second >= l1_gfns->size()) return;
    // Pre-split the facade page before rewriting it: a lazily taken COW
    // fault during the detector's measurement window is exactly the timing
    // signal the mirror exists to suppress.
    if (!l1->memory()->is_view()) {
      const auto un =
          ctx_.host->ksm().unshare_page(l1->memory(), (*l1_gfns)[it->second]);
      if (un.was_shared) ++stats_.pages_unshared;
    }
    mem::PageData copy = *obs.page;  // obs.page borrows the in-flight write
    if (l1->modify_cached_page(ctx_.file_name, it->second, std::move(copy))
            .is_ok()) {
      ++stats_.pages_mirrored;
    }
    // One write-protection trap per mirrored write, billed at the victim's
    // layer: reacting is not free.
    hv::OpCost trap;
    trap.n_exits = 1;
    stats_.victim_overhead +=
        ctx_.world->timing().price(trap, ctx_.victim_vm->layer());
  }

  Rng rng_;
  /// Victim-view gfn -> File-A page index, matching the armed watch set.
  std::unordered_map<std::uint64_t, std::size_t> watch_index_;
};

/// kProbeTriggeredTsc: a dynamic TimingModel price observer in place of the
/// statically drawn scaling decision.
class ProbeTriggeredTscPolicy final : public AttackerPolicy {
 public:
  explicit ProbeTriggeredTscPolicy(AttackerPolicyConfig config)
      : AttackerPolicy(config) {}
  ~ProbeTriggeredTscPolicy() override { disarm(); }

  void arm(const AttackerContext& ctx) override {
    AttackerPolicy::arm(ctx);
    // Hiding still applies; the static TSC draw does not — this policy's
    // whole point is replacing it with the hook below.
    apply_static_evasions(/*apply_tsc=*/false);
    ctx_.world->mutable_timing().set_price_observer(
        [this](const hv::OpCost& cost, hv::Layer layer, SimDuration) {
          ProbeObservation obs;
          obs.kind = ProbeObservationKind::kExitBurst;
          obs.cost = cost;
          obs.layer = layer;
          ++stats_.observations;
          observe(obs);
        });
  }

  void observe(const ProbeObservation& obs) override {
    if (obs.kind != ProbeObservationKind::kExitBurst) {
      AttackerPolicy::observe(obs);
      return;
    }
    // The price() calls below re-enter the observer when this event arrived
    // through a detector sink rather than the (self-latching) hv hook.
    if (in_observe_) return;
    in_observe_ = true;
    adapt(obs);
    in_observe_ = false;
  }

  void disarm() override {
    if (armed()) ctx_.world->mutable_timing().clear_price_observer();
    AttackerPolicy::disarm();
  }

 private:
  void adapt(const ProbeObservation& obs) {
    if (obs.layer != ctx_.victim_vm->layer()) return;
    double scale = 1.0;
    if (obs.trap_weight() >= config_.tsc_trigger_weight) {
      // Deflate exactly to the single-level expectation for *this* op
      // window — per-op-class time virtualization, the arms-race endpoint
      // §VI-A sketches. Arithmetic windows fall through to 1.0 so the
      // cross-check reads an honest clock.
      const hv::TimingModel& timing = ctx_.world->timing();
      const double honest = timing.price(obs.cost, hv::Layer::kL1) /
                            timing.price(obs.cost, obs.layer);
      scale = std::clamp(honest, config_.tsc_deflation_floor, 1.0);
    }
    if (scale != ctx_.victim_vm->tsc_scaling()) {
      ctx_.victim_vm->set_tsc_scaling(scale);
      ++stats_.tsc_adjustments;
    }
  }

  bool in_observe_ = false;
};

}  // namespace

std::unique_ptr<AttackerPolicy> make_policy(
    const AttackerPolicyConfig& config) {
  switch (config.kind) {
    case AttackerPolicyKind::kStatic:
      return std::make_unique<StaticPolicy>(config);
    case AttackerPolicyKind::kReactiveMirror:
      return std::make_unique<ReactiveMirrorPolicy>(config);
    case AttackerPolicyKind::kProbeTriggeredTsc:
      return std::make_unique<ProbeTriggeredTscPolicy>(config);
  }
  CSK_CHECK_MSG(false, "unknown attacker policy kind");
  return nullptr;
}

}  // namespace csk::attacker
