/// \file
/// The probe-observation event plane.
///
/// CloudSkulk's position in the stack is symmetric: the detector watches the
/// guest through KSM, but the interposed L1 watches the detector right back.
/// Every probe perturbs state the nest can see — File-A pushes arrive through
/// the attacker's own relay, the victim's File-A-v2 writes land in pages the
/// L1 maps, and an exit-heavy probe loop is literally a burst of traps
/// through the L1 exit handler (the impossibility argument: no perfect
/// hypervisor hides its own perturbation). This header types those channels
/// as ProbeObservation events; detect:: emits them, the campaign routes them
/// into an AttackerPolicy (policy.h), and reactive policies answer
/// mid-protocol.
///
/// Emission is strictly opt-in: a detector with no sink installed runs
/// byte-for-byte the code it always ran.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hv/layer.h"
#include "hv/timing_model.h"
#include "mem/phys_mem.h"

namespace csk::attacker {

enum class ProbeObservationKind {
  /// The vendor's web interface pushed File-A contents into the guest —
  /// which, under impersonation, means *through the attacker's relay*. The
  /// payload (`file_pages`) is the attacker's to copy; this is why static
  /// mirroring of the initial seed needs no reactivity at all.
  kFileAPush,
  /// The victim wrote one page of a watched file (the File-A -> v2
  /// perturbation, seen via the L1's write-protection watch on exactly
  /// those pages). `gfn` is the victim-view gfn, `page` the new content.
  kFileAPageWrite,
  /// The L1 exit handler serviced an exit-heavy operation window: `cost`
  /// and `layer` describe what was priced. Arithmetic-only ops show up too
  /// (trap_weight() == 0) — a policy distinguishes probe loops from
  /// ordinary compute by weight, not by being told.
  kExitBurst,
};

inline const char* probe_observation_kind_name(ProbeObservationKind kind) {
  switch (kind) {
    case ProbeObservationKind::kFileAPush: return "FILE_A_PUSH";
    case ProbeObservationKind::kFileAPageWrite: return "FILE_A_PAGE_WRITE";
    case ProbeObservationKind::kExitBurst: return "EXIT_BURST";
  }
  return "?";
}

/// One event on the plane. Pointer fields borrow from the emitter and are
/// valid only for the duration of the sink call — policies copy what they
/// keep (the same lifetime rule as AddressSpace::read_page_ref).
struct ProbeObservation {
  ProbeObservationKind kind;
  /// kFileAPush / kFileAPageWrite: the file involved.
  std::string file_name;
  /// kFileAPageWrite: victim-view gfn being written.
  std::uint64_t gfn = 0;
  /// kFileAPageWrite: the content landing there (borrowed).
  const mem::PageData* page = nullptr;
  /// kFileAPush: the full pushed contents (borrowed).
  const std::vector<mem::PageData>* file_pages = nullptr;
  /// kExitBurst: the op batch and the layer it was priced at.
  hv::OpCost cost;
  hv::Layer layer = hv::Layer::kL0;

  /// How loudly a kExitBurst op traps through the L1: context switches and
  /// faults each pay exits when virtualized, explicit exits trivially so.
  double trap_weight() const { return cost.n_ctxsw + cost.n_faults + cost.n_exits; }
};

/// The delivery channel: detectors call the sink synchronously at the point
/// the observable side effect happens. Null sink = nothing is observable.
using ObservationSink = std::function<void(const ProbeObservation&)>;

}  // namespace csk::attacker
