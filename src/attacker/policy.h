/// \file
/// AttackerPolicy: the attacker as a strategy, not a coin flip.
///
/// PR 7's campaign drew every evasion (hidden processes, TSC scaling) once
/// per shard from the seed and froze it — a *static* attacker. The paper's
/// §VI-E threat discussion and ROADMAP's attacker-adaptation item both say
/// the real adversary watches the detectors and answers mid-protocol. This
/// module extracts the evasion logic out of src/campaign behind an
/// AttackerPolicy interface fed by the probe-observation plane
/// (observation.h):
///
///   kStatic            Exactly the seed-drawn evasions the campaign always
///                      applied, byte-for-byte (the default everywhere; all
///                      pre-existing reports are produced under it). Its one
///                      "reaction" is push-mirroring: File-A contents pushed
///                      through the attacker's relay re-seed the L1 facade,
///                      because the baseline CloudSkulk impersonation already
///                      does that on the initial seed.
///   kReactiveMirror    Write-protection watch on the victim's File-A pages
///                      (AddressSpace::watch_pages): when the victim turns
///                      File-A into v2, the policy eagerly unshares the L1
///                      facade page (KsmDaemon::unshare_page) and mirrors the
///                      new content into it — so the detector's step-2 buffer
///                      finds nothing stale to merge with and the dedup
///                      protocol concludes NO_NESTED_VM. Defeated (with
///                      probability 1 - mirror_rescan_fraction) by File-A
///                      re-randomization, which moves the victim's cache to
///                      fresh gfns and strands the watch.
///   kProbeTriggeredTsc Replaces the statically drawn TSC scaling with a
///                      dynamic hv::TimingModel price observer: exit-heavy
///                      op windows priced at the victim's layer deflate the
///                      victim's clock to the single-level expectation, and
///                      arithmetic windows reset it to 1.0 — defeating both
///                      the L2 probe's anomaly ratios and its arithmetic
///                      cross-check.
///
/// DetectionCampaign arms one policy per infected shard and sweeps
/// policy x detector; bench_adaptive_attacker quantifies what each policy
/// costs the calibrated operating points.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "attacker/observation.h"
#include "common/rng.h"
#include "common/time.h"
#include "vmm/host.h"

namespace csk::attacker {

enum class AttackerPolicyKind {
  kStatic,
  kReactiveMirror,
  kProbeTriggeredTsc,
};

const char* attacker_policy_kind_name(AttackerPolicyKind kind);

struct AttackerPolicyConfig {
  AttackerPolicyKind kind = AttackerPolicyKind::kStatic;
  /// kReactiveMirror: probability the policy re-discovers the victim's
  /// File-A cache pages after a kFileAPush replaced them (per push). Below
  /// 1.0, re-randomized File-A strands the watch on freed gfns with the
  /// complementary probability — the knob that makes the bench's
  /// "re-randomization buys detection back" witness quantitative.
  double mirror_rescan_fraction = 0.5;
  /// kProbeTriggeredTsc: minimum trap weight (ctxsw + faults + exits) of a
  /// priced op window before the policy deflates the victim's clock;
  /// lighter windows reset the scale to 1.0 (the arithmetic cross-check
  /// must run at honest speed).
  double tsc_trigger_weight = 0.5;
  /// kProbeTriggeredTsc: lower clamp on the dynamic scale (a clock running
  /// 50x fast is its own tell).
  double tsc_deflation_floor = 0.02;
};

/// What the policy did, for campaign values and the bench.
struct AttackerStats {
  std::uint64_t observations = 0;
  std::uint64_t pages_mirrored = 0;
  std::uint64_t pages_unshared = 0;
  std::uint64_t facade_reseeds = 0;
  std::uint64_t watch_rescans = 0;
  std::uint64_t tsc_adjustments = 0;
  /// Simulated time the policy's reactions cost the victim (one
  /// write-protection trap per mirrored page) — evasion is not free.
  SimDuration victim_overhead;
};

/// Everything a policy needs to act, handed over at arm() time. Pointers
/// borrow from the campaign cell and outlive the policy.
struct AttackerContext {
  vmm::World* world = nullptr;
  vmm::Host* host = nullptr;
  /// The impersonating L1 (rootkit) VM; its OS holds the File-A facade.
  vmm::VirtualMachine* rootkit_vm = nullptr;
  /// The nested victim the detectors actually talk to.
  vmm::VirtualMachine* victim_vm = nullptr;
  std::string file_name;
  /// Seed-drawn shard traits the static evasions are conditioned on (kept
  /// outside AttackerPolicyConfig so kStatic reproduces the seed draws
  /// byte-for-byte).
  bool careful_hiding = false;
  bool tsc_scaling = false;
  /// Policy-private randomness stream (derive_seed(shard, 3)).
  std::uint64_t seed = 0;
};

class AttackerPolicy {
 public:
  virtual ~AttackerPolicy();
  AttackerPolicy(const AttackerPolicy&) = delete;
  AttackerPolicy& operator=(const AttackerPolicy&) = delete;

  AttackerPolicyKind kind() const { return config_.kind; }
  const char* name() const { return attacker_policy_kind_name(config_.kind); }
  const AttackerPolicyConfig& config() const { return config_; }
  const AttackerStats& stats() const { return stats_; }

  /// Takes position in the freshly installed nest: applies the static
  /// evasions and installs whatever hooks the policy listens through.
  virtual void arm(const AttackerContext& ctx);

  /// Called once File-A is seeded into both the victim and the facade —
  /// the earliest moment a page watch has gfns to arm on.
  virtual void on_guest_seeded() {}

  /// One event from the observation plane (or from the policy's own hooks).
  virtual void observe(const ProbeObservation& obs);

  /// Uninstalls hooks. Idempotent; the destructor calls it.
  virtual void disarm();

  /// The sink to hand detect::*::set_observation_sink — counts and routes
  /// into observe().
  ObservationSink sink();

 protected:
  explicit AttackerPolicy(AttackerPolicyConfig config);

  /// The seed evasion block, verbatim: hide qemu/kvm in the L1 task list
  /// when the shard drew careful hiding, and (when `apply_tsc`) scale the
  /// victim's TSC by the statically computed pipe-latency ratio when the
  /// shard drew TSC scaling.
  void apply_static_evasions(bool apply_tsc);

  /// kFileAPush: mirror the pushed contents into the L1 facade (all
  /// policies — the push travels through the attacker's own relay).
  void reseed_facade(const ProbeObservation& obs);

  bool armed() const { return armed_; }

  AttackerPolicyConfig config_;
  AttackerContext ctx_;
  AttackerStats stats_;
  bool armed_ = false;
};

/// Builds the policy `config.kind` names.
std::unique_ptr<AttackerPolicy> make_policy(const AttackerPolicyConfig& config);

}  // namespace csk::attacker
