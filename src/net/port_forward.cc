#include "net/port_forward.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace csk::net {

PortForwarder::PortForwarder(SimNetwork* network, NetAddr listen,
                             NetAddr target, std::string name)
    : network_(network),
      listen_(std::move(listen)),
      target_(std::move(target)),
      name_(std::move(name)) {
  CSK_CHECK(network != nullptr);
  if (hot_path_counters_enabled()) {
    c_zero_copy_bytes_ = &obs::metrics().counter("net.tap_zero_copy_bytes");
  }
}

PortForwarder::~PortForwarder() { stop(); }

Status PortForwarder::start() {
  if (endpoint_.valid()) return Status::ok();
  auto bound = network_->bind(listen_, [this](Packet p) { on_packet(std::move(p)); });
  if (!bound.is_ok()) return bound.status();
  endpoint_ = bound.value();
  return Status::ok();
}

void PortForwarder::stop() {
  if (restart_event_.valid()) {
    (void)restart_sim_->cancel(restart_event_);
    restart_event_ = EventId::invalid();
  }
  if (!endpoint_.valid()) return;
  network_->unbind(endpoint_);
  endpoint_ = EndpointId::invalid();
}

void PortForwarder::enable_auto_restart(sim::Simulator* simulator,
                                        RetryPolicy policy) {
  CSK_CHECK(simulator != nullptr);
  restart_sim_ = simulator;
  restart_policy_ = policy;
}

void PortForwarder::interrupt() {
  ++stats_.interrupts;
  obs::metrics().counter("net.forwarder.interrupts").add();
  if (endpoint_.valid()) {
    network_->unbind(endpoint_);
    endpoint_ = EndpointId::invalid();
  }
  if (restart_sim_ != nullptr && restart_policy_.retries_enabled()) {
    restart_attempt_ = 0;
    schedule_restart();
  }
}

void PortForwarder::schedule_restart() {
  // Attempt k (0-based) waits the geometric backoff_delay(policy, k); the
  // attempt budget is max_attempts - 1, mirroring "retries after the crash".
  if (restart_attempt_ >= restart_policy_.max_attempts - 1) {
    CSK_WARN << "forwarder " << name_ << " gave up rebinding "
             << listen_.to_string();
    return;
  }
  if (restart_event_.valid()) return;  // one pending attempt at a time
  const SimDuration delay = backoff_delay(restart_policy_, restart_attempt_);
  restart_event_ = restart_sim_->schedule_after(delay, [this] {
    restart_event_ = EventId::invalid();
    try_restart();
  });
}

void PortForwarder::try_restart() {
  ++restart_attempt_;
  ++stats_.restart_attempts;
  const Status st = start();
  if (st.is_ok()) {
    ++stats_.restarts;
    obs::metrics().counter("net.forwarder.restarts").add();
    obs::tracer().instant("forwarder.restart[" + name_ + "]",
                          restart_sim_->now(), "net");
    return;
  }
  CSK_WARN << "forwarder " << name_ << " rebind failed: " << st.to_string();
  schedule_restart();
}

void PortForwarder::add_tap(PacketTap* tap) {
  CSK_CHECK(tap != nullptr);
  taps_.push_back(tap);
}

void PortForwarder::remove_tap(PacketTap* tap) {
  if (inspect_depth_ > 0) {
    // Called from inside a tap callback: erasing would invalidate the
    // index walk in on_packet, so null the slot and defer the erase until
    // the walk unwinds.
    for (PacketTap*& t : taps_) {
      if (t == tap) {
        t = nullptr;
        taps_need_compact_ = true;
      }
    }
    return;
  }
  taps_.erase(std::remove(taps_.begin(), taps_.end(), tap), taps_.end());
}

void PortForwarder::on_packet(Packet pkt) {
  // A packet whose source address is exactly the current target travels
  // server -> client; everything else is client -> server. (Node equality
  // alone is not enough: on a single host, clients and servers share the
  // node name — the paper's whole attack runs on one machine.)
  const bool reverse = pkt.src == target_ && flows_.contains(pkt.conn);

  const auto dir =
      reverse ? PacketTap::Direction::kReverse : PacketTap::Direction::kForward;
  // Index iteration with a snapshotted bound: a tap may remove any tap
  // (nulled slot, skipped below, compacted after the walk) or add new ones
  // (beyond `n_taps`, first seeing the next packet) from inside inspect().
  const char* const payload_in = pkt.payload.data();
  bool tap_dropped = false;
  ++inspect_depth_;
  const std::size_t n_taps = taps_.size();
  for (std::size_t i = 0; i < n_taps && !tap_dropped; ++i) {
    PacketTap* tap = taps_[i];
    if (tap == nullptr) continue;  // removed during this inspection
    tap_dropped = tap->inspect(pkt, dir) == PacketTap::Verdict::kDrop;
  }
  --inspect_depth_;
  if (inspect_depth_ == 0 && taps_need_compact_) {
    taps_.erase(std::remove(taps_.begin(), taps_.end(), nullptr), taps_.end());
    taps_need_compact_ = false;
  }
  if (tap_dropped) {
    ++stats_.dropped_by_tap;
    return;
  }
  // The whole tap chain ran without duplicating the payload buffer iff the
  // packet still aliases the buffer it arrived with (a tamperer rewrite
  // swaps buffers and is deliberately not counted).
  if (c_zero_copy_bytes_ != nullptr && n_taps > 0 &&
      pkt.payload.data() == payload_in) {
    c_zero_copy_bytes_->add(pkt.payload.size());
  }

  if (reverse) {
    auto it = flows_.find(pkt.conn);
    const NetAddr client = it->second;
    ++stats_.replies;
    // Masquerade: to whoever is upstream the reply must appear to come from
    // the address they connected to, and stay routed through us. This is
    // what lets forwarder chains (host -> GuestX -> nested victim) relay
    // replies hop by hop.
    pkt.src = listen_;
    pkt.reply_to = listen_;
    network_->send(client, std::move(pkt));
    return;
  }

  // Forward direction: remember where replies must go, then NAT.
  flows_.emplace(pkt.conn, pkt.reply_to);
  pkt.reply_to = listen_;
  ++stats_.forwarded;
  network_->send(target_, std::move(pkt));
}

}  // namespace csk::net
