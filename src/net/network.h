/// \file
/// SimNetwork: the transport fabric of the simulation.
///
/// Endpoints bind a (node, port) address and receive packets via callback.
/// Links between node pairs have latency, bandwidth and per-packet CPU cost;
/// a per-link serialization horizon models back-to-back transmission, so
/// bulk flows see realistic throughput and competing flows share capacity.
/// The CloudSkulk scenario runs on one physical machine, so most traffic
/// rides the loopback model — which is exactly why the paper's in-host
/// migration completes in seconds rather than minutes.
///
/// ## Delivery modes
///
/// Arrival times are computed identically in both modes (serialization +
/// latency + fault-hook adjustments, per packet); the modes differ only in
/// how the simulator event that *runs the receive handler* is scheduled:
///
///   * kPerPacket (default) — one simulator event per packet, the legacy
///     path. Handler runs at exactly the packet's arrival time.
///   * kBurst — all in-flight packets sit in one arrival-ordered queue and
///     a single self-rearming pump event drains every packet that is due.
///     The pump for the earliest undelivered arrival T fires at
///     T + burst_window(), so back-to-back traffic (a netperf blast, a
///     migration stream, a chatty fleet) coalesces into one event per
///     burst instead of one per packet — the NIC-interrupt-moderation
///     analogue. Handlers may observe now() up to burst_window() after the
///     packet's true arrival; with a zero window the pump fires at T itself
///     and the mode is *timing-exact* with kPerPacket (the golden
///     equivalence suite in net_test.cc proves byte-identical behavior).
///
/// Invariants both modes share, proven by the net equivalence tier:
///   * delivery order is global arrival order (FIFO among equal arrivals,
///     in send order) — identical across modes;
///   * NetworkStats, per-link stats and payload bytes are identical;
///   * the fault hook is consulted once per send(), *before* any batching,
///     so fault schedules are mode-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace csk::obs {
class Counter;
}  // namespace csk::obs

namespace csk::net {

/// Opt-in hot-path counters (`net.bursts`, `net.batched_packets`,
/// `net.tap_zero_copy_bytes`), published like the `mem.*` family: off by
/// default so the fabric hot path stays store-free; benches and the
/// zero-copy property tests flip them on. Takes effect for SimNetwork /
/// PortForwarder instances constructed *after* the call (instances cache
/// Counter pointers at construction, mirroring mem::AddressSpace).
void set_hot_path_counters_enabled(bool enabled);
bool hot_path_counters_enabled();

/// Delivery handler for a bound endpoint. Invoked with an rvalue so the
/// fabric hands the packet over without intermediate copies; a handler may
/// take `Packet` by value (taking ownership via one move) or
/// `const Packet&` — both bind to the rvalue.
using RecvHandler = std::function<void(Packet&&)>;

/// What a fault hook decides for one packet about to cross the fabric.
/// `drop` consumes the packet after link serialization (the sender still
/// paid the wire time, as with real tail-drop); `extra_latency` is added to
/// the arrival time (jitter / degraded path).
struct FaultDecision {
  bool drop = false;
  SimDuration extra_latency = SimDuration::zero();
};

/// Consulted once per send() when installed (csk::fault installs one; the
/// default fabric is perfect and never calls it). Must be deterministic for
/// a given packet sequence — draw randomness only from a seeded Rng. In
/// burst mode the hook still runs at send() time, before the packet joins
/// any burst: batching never changes what the injector sees or decides.
using FaultHook =
    std::function<FaultDecision(const Packet&, const std::string& src_node,
                                const std::string& dst_node)>;

/// Properties of the path between two nodes (order-independent key).
struct LinkModel {
  SimDuration latency = SimDuration::micros(30);
  double bytes_per_sec = 1.25e9;           // 10 GbE default
  SimDuration per_packet_cpu = SimDuration::micros(2);

  static LinkModel loopback() {
    return LinkModel{SimDuration::micros(5), 6.0e9, SimDuration::micros(1)};
  }
};

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_unbound = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t packets_dropped_fault = 0;  // consumed by the fault hook
  std::uint64_t packets_delayed_fault = 0;  // arrival postponed by the hook
};

/// Traffic serialized onto one link (counted at send(), after the wire time
/// is charged and before any fault tail-drop — identical across delivery
/// modes by construction).
struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// How receive-handler events are scheduled; see the file comment.
enum class DeliveryMode {
  kPerPacket,  // legacy: one simulator event per packet
  kBurst,      // coalesced: one pump event drains all due arrivals
};

class SimNetwork {
 public:
  explicit SimNetwork(sim::Simulator* simulator);
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Binds an endpoint; fails with ALREADY_EXISTS if the address is taken.
  Result<EndpointId> bind(const NetAddr& addr, RecvHandler handler);

  /// Releases an endpoint; packets in flight to it are dropped on arrival.
  /// This contract is delivery-time, not send-time: in burst mode a packet
  /// whose arrival has passed but whose burst has not yet been pumped is
  /// still in flight, so an unbind racing a pending burst counts every such
  /// packet in `packets_dropped_unbound` exactly as the per-packet path
  /// counts a packet unbound before its arrival event fires.
  void unbind(EndpointId id);

  bool is_bound(const NetAddr& addr) const;

  /// Address of a bound endpoint.
  Result<NetAddr> address_of(EndpointId id) const;

  /// Sets the path model between two nodes (symmetric).
  void set_link(const std::string& node_a, const std::string& node_b,
                LinkModel model);
  void set_default_link(LinkModel model) { default_link_ = model; }
  void set_loopback_link(LinkModel model) { loopback_link_ = model; }

  /// Sends `pkt` to `dst`. The packet is delivered asynchronously after
  /// link serialization + latency; if nothing is bound at `dst` on arrival
  /// it is counted as dropped. Returns the scheduled arrival time (the
  /// receive handler runs at that time in kPerPacket mode, and at most
  /// burst_window() later in kBurst mode).
  SimTime send(const NetAddr& dst, Packet pkt);

  /// Installs (or, with nullptr, removes) the fault hook. At most one hook
  /// is active; the injector owns composition of concurrent fault windows.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  bool has_fault_hook() const { return fault_hook_ != nullptr; }

  /// Selects how delivery events are scheduled. Switching modes with
  /// packets in flight is safe: already-queued burst packets drain via the
  /// pending pump, already-scheduled per-packet events fire as scheduled.
  void set_delivery_mode(DeliveryMode mode) { mode_ = mode; }
  DeliveryMode delivery_mode() const { return mode_; }

  /// Burst coalescing horizon (kBurst only): the pump for the earliest
  /// undelivered arrival T fires at T + window, so every packet arriving
  /// within the window rides the same event. Zero (the default) keeps the
  /// pump timing-exact with the per-packet path. Precondition: window >= 0.
  void set_burst_window(SimDuration window);
  SimDuration burst_window() const { return burst_window_; }

  /// Packets still queued for a future pump (kBurst only; test/obs helper).
  std::size_t packets_in_flight() const { return flight_count_; }

  /// Allocates a fresh connection id for a new flow.
  ConnId new_conn() { return conn_ids_.next(); }

  const NetworkStats& stats() const { return stats_; }

  /// Cumulative traffic on the (a, b) link, zero if it never carried any.
  LinkStats link_stats(const std::string& a, const std::string& b) const;

  /// The earliest time a new packet of `bytes` from `src_node` to
  /// `dst_node` would finish arriving, without sending (planning helper).
  ///
  /// Contract — this is a *model-shape* estimate, deliberately cheaper and
  /// more optimistic than send():
  ///   * it prices an idle link (the serialization horizon `busy_until` is
  ///     ignored, so queued bulk traffic makes real arrivals later);
  ///   * the fault hook is never consulted — injected `extra_latency`
  ///     jitter and drops do not show up here;
  ///   * burst mode adds up to burst_window() before the receive handler
  ///     runs, which the estimate also excludes.
  /// Use it for planning (migration pacing, timeouts), never as a promise
  /// of when — or whether — a handler will see the packet.
  SimTime estimate_arrival(const std::string& src_node,
                           const std::string& dst_node,
                           std::uint64_t bytes) const;

 private:
  struct LinkState;

  /// One packet queued for burst delivery. `order` is the global send
  /// order, the tie-break that reproduces the simulator's FIFO-among-equal-
  /// timestamps dispatch, so burst delivery order is bit-identical to the
  /// per-packet path. The destination is stored as the carrying link plus
  /// which end + port, not a NetAddr: the link's node names live in the
  /// stable links_ map key, so queueing a packet never copies, moves or
  /// destroys a destination string.
  struct InFlight {
    SimTime arrival;
    std::uint64_t order = 0;
    LinkState* link = nullptr;
    std::uint16_t dst_port = 0;
    bool dst_is_b = false;  // destination is the link key's second node
    Packet pkt;
  };
  struct FlightLater {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.order > b.order;
    }
  };

  /// Contiguous FIFO for a link's in-flight burst packets. A vector plus a
  /// head cursor beats std::deque here: libstdc++ deque chunks are 512 B,
  /// i.e. one allocation per ~3 InFlight elements and a pointer chase per
  /// chunk on drain, whereas this is sequential writes on enqueue and
  /// sequential prefetchable reads on drain, with capacity reused across
  /// bursts (the drained prefix is reclaimed whenever the FIFO empties).
  struct FlightFifo {
    std::vector<InFlight> items;
    std::size_t head = 0;
    bool empty() const { return head == items.size(); }
    InFlight& front() { return items[head]; }
    const InFlight& back() const { return items.back(); }
    template <typename... Args>
    void emplace_back(Args&&... args) {
      items.emplace_back(std::forward<Args>(args)...);
    }
    void pop_front() {
      if (++head == items.size()) {
        items.clear();
        head = 0;
      }
    }
  };

  struct LinkState {
    LinkModel model;
    SimTime busy_until;  // serialization horizon
    LinkStats stats;
    /// Burst mode: this link's in-flight packets in arrival order. A link
    /// serializes, so arrivals are monotonic and enqueue is an O(1)
    /// push_back; the rare out-of-order arrival (fault jitter, a remodel
    /// that shrinks latency) falls back to the overflow heap.
    FlightFifo burst_q;
    /// The link's endpoints, aliasing the links_ map key (node-based map,
    /// never erased, so the strings are stable for the fabric's lifetime).
    const std::string* end_a = nullptr;
    const std::string* end_b = nullptr;
  };

  /// Heterogeneous map keys: lets send()/deliver-path lookups run on
  /// string_views of the packet's own addresses, so the hot path never
  /// materializes a std::pair<std::string, ...> (two allocations) per
  /// packet just to probe a map.
  struct NodePairLess {
    using is_transparent = void;
    using View = std::pair<std::string_view, std::string_view>;
    static View view(const std::pair<std::string, std::string>& p) {
      return {p.first, p.second};
    }
    static View view(const View& p) { return p; }
    bool operator()(const auto& a, const auto& b) const {
      return view(a) < view(b);
    }
  };
  struct AddrKey {
    using View = std::pair<std::string_view, std::uint16_t>;
    static View view(const std::pair<std::string, std::uint16_t>& p) {
      return {p.first, p.second};
    }
    static View view(const View& p) { return p; }
  };
  struct AddrHash {
    using is_transparent = void;
    std::size_t operator()(const auto& a) const {
      // Inline FNV-1a: node names are a few characters, short enough that
      // the loop beats a call into the library's generic string hash on
      // every delivery.
      const AddrKey::View v = AddrKey::view(a);
      std::size_t h = 14695981039346656037ull;
      for (const char c : v.first) {
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      }
      return h * 8191u + v.second;
    }
  };
  struct AddrEq {
    using is_transparent = void;
    bool operator()(const auto& a, const auto& b) const {
      return AddrKey::view(a) == AddrKey::view(b);
    }
  };

  /// One source of due packets in the burst pump's K-way merge: a link's
  /// FIFO (`src` points at it) or the overflow heap (`src == nullptr`).
  /// The key is the source's front element, so the merge structure stays
  /// tiny (one entry per active source, not per packet).
  struct MergeEntry {
    SimTime arrival;
    std::uint64_t order = 0;
    LinkState* src = nullptr;
  };
  struct MergeLater {
    bool operator()(const MergeEntry& a, const MergeEntry& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.order > b.order;
    }
  };

  /// Resolves the (a, b) link, memoizing the last hit: bulk flows (netperf
  /// blasts, migration streams) send thousands of packets down one link
  /// back to back, so the common case is two string compares, not a map
  /// walk. Pointers into links_ are stable (node-based map, never erased).
  LinkState& link_state(const std::string& a, const std::string& b);
  const LinkModel& link_model(const std::string& a,
                              const std::string& b) const;

  /// Shared delivery body (binding lookup, stats, handler) — the one place
  /// a packet reaches a receiver, used by both modes. Takes the destination
  /// as (node, port) views so the burst path can deliver straight out of a
  /// link's stable key strings without materializing a NetAddr.
  void deliver_now(std::string_view node, std::uint16_t port, Packet&& pkt);

  /// Queues on `link` for burst delivery and (re)arms the pump if `arrival`
  /// became the earliest undelivered packet.
  void enqueue_burst(LinkState& link, SimTime arrival, const NetAddr& dst,
                     Packet pkt);
  /// Inserts into the sorted merge run. When a source is re-keyed after a
  /// pop its new front is usually the latest key among active sources
  /// (links interleave near-equal arrivals round-robin), so the common case
  /// is an O(1) tail append; anything else is a small memmove insert among
  /// the <= one-entry-per-source live suffix.
  void merge_insert(MergeEntry e);
  void merge_pop_front();
  void pump();

  sim::Simulator* simulator_;
  FaultHook fault_hook_;
  LinkModel default_link_;
  LinkModel loopback_link_ = LinkModel::loopback();
  std::map<std::pair<std::string, std::string>, LinkState, NodePairLess>
      links_;
  std::string memo_a_, memo_b_;     // last link_state() query, as passed
  LinkState* memo_link_ = nullptr;
  std::unordered_map<EndpointId, NetAddr> endpoint_addrs_;
  std::unordered_map<std::pair<std::string, std::uint16_t>,
                     std::pair<EndpointId, RecvHandler>, AddrHash, AddrEq>
      bindings_;
  IdAllocator<EndpointId> endpoint_ids_;
  IdAllocator<ConnId> conn_ids_;
  NetworkStats stats_;

  // Burst-delivery state (inactive in kPerPacket mode). Packets live in
  // per-link FIFOs (LinkState::burst_q) or overflow_; merge_ is the K-way
  // merge over source fronts: a sorted-ascending run of live entries at
  // [merge_head_, end), drained by cursor and compacted periodically (the
  // live suffix is bounded by one entry per active source, so the merge
  // never sifts a heap per packet). Invariant: a nonempty link FIFO has
  // exactly one live merge_ entry, keyed by its front; overflow_'s sentinel
  // entries may go stale (lazy deletion) and are discarded when popped.
  DeliveryMode mode_ = DeliveryMode::kPerPacket;
  SimDuration burst_window_ = SimDuration::zero();
  std::vector<MergeEntry> merge_;     // sorted by (arrival, order)
  std::size_t merge_head_ = 0;        // first live merge_ entry
  std::vector<InFlight> overflow_;    // min-heap: out-of-order arrivals
  std::size_t flight_count_ = 0;
  std::uint64_t flight_order_ = 0;
  EventId pump_event_ = EventId::invalid();
  SimTime pump_due_;
  bool pumping_ = false;
  // Cached opt-in hot-path counters (null when disabled at construction).
  obs::Counter* c_bursts_ = nullptr;
  obs::Counter* c_batched_packets_ = nullptr;
};

}  // namespace csk::net
