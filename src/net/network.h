/// \file
/// SimNetwork: the transport fabric of the simulation.
///
/// Endpoints bind a (node, port) address and receive packets via callback.
/// Links between node pairs have latency, bandwidth and per-packet CPU cost;
/// a per-link serialization horizon models back-to-back transmission, so
/// bulk flows see realistic throughput and competing flows share capacity.
/// The CloudSkulk scenario runs on one physical machine, so most traffic
/// rides the loopback model — which is exactly why the paper's in-host
/// migration completes in seconds rather than minutes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace csk::net {

/// Delivery handler for a bound endpoint.
using RecvHandler = std::function<void(Packet)>;

/// What a fault hook decides for one packet about to cross the fabric.
/// `drop` consumes the packet after link serialization (the sender still
/// paid the wire time, as with real tail-drop); `extra_latency` is added to
/// the arrival time (jitter / degraded path).
struct FaultDecision {
  bool drop = false;
  SimDuration extra_latency = SimDuration::zero();
};

/// Consulted once per send() when installed (csk::fault installs one; the
/// default fabric is perfect and never calls it). Must be deterministic for
/// a given packet sequence — draw randomness only from a seeded Rng.
using FaultHook =
    std::function<FaultDecision(const Packet&, const std::string& src_node,
                                const std::string& dst_node)>;

/// Properties of the path between two nodes (order-independent key).
struct LinkModel {
  SimDuration latency = SimDuration::micros(30);
  double bytes_per_sec = 1.25e9;           // 10 GbE default
  SimDuration per_packet_cpu = SimDuration::micros(2);

  static LinkModel loopback() {
    return LinkModel{SimDuration::micros(5), 6.0e9, SimDuration::micros(1)};
  }
};

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_unbound = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t packets_dropped_fault = 0;  // consumed by the fault hook
  std::uint64_t packets_delayed_fault = 0;  // arrival postponed by the hook
};

class SimNetwork {
 public:
  explicit SimNetwork(sim::Simulator* simulator);
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Binds an endpoint; fails with ALREADY_EXISTS if the address is taken.
  Result<EndpointId> bind(const NetAddr& addr, RecvHandler handler);

  /// Releases an endpoint; packets in flight to it are dropped on arrival.
  void unbind(EndpointId id);

  bool is_bound(const NetAddr& addr) const;

  /// Address of a bound endpoint.
  Result<NetAddr> address_of(EndpointId id) const;

  /// Sets the path model between two nodes (symmetric).
  void set_link(const std::string& node_a, const std::string& node_b,
                LinkModel model);
  void set_default_link(LinkModel model) { default_link_ = model; }
  void set_loopback_link(LinkModel model) { loopback_link_ = model; }

  /// Sends `pkt` to `dst`. The packet is delivered asynchronously after
  /// link serialization + latency; if nothing is bound at `dst` on arrival
  /// it is counted as dropped. Returns the scheduled arrival time.
  SimTime send(const NetAddr& dst, Packet pkt);

  /// Installs (or, with nullptr, removes) the fault hook. At most one hook
  /// is active; the injector owns composition of concurrent fault windows.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  bool has_fault_hook() const { return fault_hook_ != nullptr; }

  /// Allocates a fresh connection id for a new flow.
  ConnId new_conn() { return conn_ids_.next(); }

  const NetworkStats& stats() const { return stats_; }

  /// The earliest time a new packet of `bytes` from `src_node` to
  /// `dst_node` would finish arriving, without sending (planning helper).
  SimTime estimate_arrival(const std::string& src_node,
                           const std::string& dst_node,
                           std::uint64_t bytes) const;

 private:
  struct LinkState {
    LinkModel model;
    SimTime busy_until;  // serialization horizon
  };

  LinkState& link_state(const std::string& a, const std::string& b);
  const LinkModel& link_model(const std::string& a,
                              const std::string& b) const;

  sim::Simulator* simulator_;
  FaultHook fault_hook_;
  LinkModel default_link_;
  LinkModel loopback_link_ = LinkModel::loopback();
  std::map<std::pair<std::string, std::string>, LinkState> links_;
  std::unordered_map<EndpointId, NetAddr> endpoint_addrs_;
  std::map<std::pair<std::string, std::uint16_t>, std::pair<EndpointId, RecvHandler>> bindings_;
  IdAllocator<EndpointId> endpoint_ids_;
  IdAllocator<ConnId> conn_ids_;
  NetworkStats stats_;
};

}  // namespace csk::net
