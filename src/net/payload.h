/// \file
/// Zero-copy packet payloads.
///
/// A PayloadRef is a refcounted view of an immutable byte buffer — the
/// net-layer analogue of mem::PageBytesRef. Copying a Packet (tap fan-out,
/// forwarder relays, burst queues, receivers stashing packets) bumps a
/// refcount instead of duplicating the bytes; mutation is copy-out/modify/
/// rebuild, exactly how mem::PageData treats shared pages. The RITM taps
/// and the sync-mirror forwarding path depend on this: a passive sniffer
/// observing a 64 KiB bulk segment must not double the fabric's memory
/// traffic just by looking at it.
///
/// The buffer identity (`data()`, `shares_buffer_with()`) and refcount
/// (`use_count()`) are observable on purpose: the zero-copy property tests
/// assert that payloads cross the tap chain without duplication.
///
/// The refcount is intentionally NON-atomic. Packets are shard-local: each
/// fleet shard owns its Simulator + SimNetwork and payload buffers never
/// cross shard threads (the fleet runner's isolation invariant, exercised
/// under TSan by the net_tsan_smoke target). An atomic refcount would put
/// two uncontended-but-lock-prefixed RMWs on every packet copy/destroy in
/// the fabric hot path for a sharing pattern that cannot occur.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace csk::net {

class PayloadRef {
 public:
  /// Empty payload; owns no buffer.
  PayloadRef() = default;

  /// Wraps `text` in a fresh shared buffer (one allocation, no copy beyond
  /// the move). Implicit so call sites read like the old std::string field.
  PayloadRef(std::string text)
      : buf_(text.empty() ? nullptr : new Buf(std::move(text))) {}
  PayloadRef(const char* text) : PayloadRef(std::string(text)) {}
  PayloadRef(std::string_view text) : PayloadRef(std::string(text)) {}

  PayloadRef(const PayloadRef& other) : buf_(other.buf_) { acquire(); }
  PayloadRef(PayloadRef&& other) noexcept : buf_(other.buf_) {
    other.buf_ = nullptr;
  }
  PayloadRef& operator=(const PayloadRef& other) {
    if (other.buf_ != buf_) {
      release();
      buf_ = other.buf_;
      acquire();
    }
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& other) noexcept {
    if (this != &other) {
      release();
      buf_ = other.buf_;
      other.buf_ = nullptr;
    }
    return *this;
  }
  ~PayloadRef() { release(); }

  std::string_view view() const {
    return buf_ ? std::string_view(buf_->text) : std::string_view();
  }

  /// The shared buffer (a static empty string when unset). Stable for as
  /// long as any PayloadRef references it.
  const std::string& str() const {
    static const std::string kEmpty;
    return buf_ ? buf_->text : kEmpty;
  }

  std::size_t size() const { return buf_ ? buf_->text.size() : 0; }
  bool empty() const { return size() == 0; }

  /// std::string-compatible conveniences, so tap/tamperer code reads the
  /// same as it did against the old std::string field.
  std::size_t find(std::string_view needle, std::size_t pos = 0) const {
    return view().find(needle, pos);
  }
  std::string substr(std::size_t pos = 0,
                     std::size_t n = std::string::npos) const {
    return std::string(view().substr(pos, n));
  }

  // ------------------------------------------------ zero-copy observability

  /// Buffer identity probe (nullptr when empty).
  const char* data() const { return buf_ ? buf_->text.data() : nullptr; }

  /// True when both refs alias the exact same buffer (no bytes compared).
  bool shares_buffer_with(const PayloadRef& other) const {
    return buf_ != nullptr && buf_ == other.buf_;
  }

  /// References alive on the underlying buffer (0 when empty).
  long use_count() const {
    return buf_ ? static_cast<long>(buf_->refs) : 0;
  }

  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    return a.buf_ == b.buf_ || a.view() == b.view();
  }
  friend bool operator==(const PayloadRef& a, std::string_view b) {
    return a.view() == b;
  }
  // Disambiguates literals (otherwise both the PayloadRef and string_view
  // overloads are viable via one implicit conversion each).
  friend bool operator==(const PayloadRef& a, const char* b) {
    return a.view() == std::string_view(b);
  }
  friend std::ostream& operator<<(std::ostream& os, const PayloadRef& p) {
    return os << '"' << p.view() << '"';
  }

 private:
  struct Buf {
    explicit Buf(std::string t) : text(std::move(t)) {}
    std::size_t refs = 1;  // non-atomic by design: payloads are shard-local
    const std::string text;
  };

  void acquire() {
    if (buf_ != nullptr) ++buf_->refs;
  }
  void release() {
    if (buf_ != nullptr && --buf_->refs == 0) delete buf_;
  }

  Buf* buf_ = nullptr;
};

}  // namespace csk::net
