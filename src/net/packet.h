/// \file
/// Simulated network packets.
///
/// Packets carry a small typed header plus an application payload behind a
/// shared immutable buffer (net::PayloadRef): copying a Packet — tap
/// fan-out, forwarder relays, burst queues — never copies the bytes.
/// `wire_bytes` is the size charged against link bandwidth; the payload may
/// be a compact stand-in for much larger simulated data (a 1 MiB migration
/// chunk carries a textual descriptor but bills 1 MiB on the wire).
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.h"
#include "net/payload.h"

namespace csk::net {

/// Application-level protocol tag, used by RITM services to classify
/// intercepted traffic the way a real middlebox would parse ports/contents.
enum class ProtoKind {
  kGeneric,
  kSshKeystroke,   // interactive SSH input (keylogger target)
  kSshOutput,
  kHttpRequest,
  kHttpResponse,
  kSmtpMail,
  kMigrationChunk, // live-migration RAM data
  kNetperfBulk,    // benchmark stream
};

const char* proto_kind_name(ProtoKind kind);

/// A network address is a (node name, port) pair. Node names are stable
/// strings like "host0", "guest0", "guestX", "victim-client".
struct NetAddr {
  std::string node;
  Port port;

  bool operator==(const NetAddr& o) const {
    return node == o.node && port == o.port;
  }
  std::string to_string() const {
    return node + ":" + std::to_string(port.value());
  }
};

struct Packet {
  ConnId conn;               // flow identifier (monotonic per connection)
  std::uint64_t seq = 0;     // sequence within the flow
  ProtoKind kind = ProtoKind::kGeneric;
  NetAddr src;               // original sender (informational)
  NetAddr reply_to;          // where responses should go (rewritten by NAT)
  std::uint64_t wire_bytes = 0;
  PayloadRef payload;  // shared immutable bytes; copying shares, never dups
};

}  // namespace csk::net
