#include "net/network.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace csk::net {

namespace {
bool g_hot_path_counters = false;
}  // namespace

void set_hot_path_counters_enabled(bool enabled) {
  g_hot_path_counters = enabled;
}

bool hot_path_counters_enabled() { return g_hot_path_counters; }

const char* proto_kind_name(ProtoKind kind) {
  switch (kind) {
    case ProtoKind::kGeneric: return "generic";
    case ProtoKind::kSshKeystroke: return "ssh-keystroke";
    case ProtoKind::kSshOutput: return "ssh-output";
    case ProtoKind::kHttpRequest: return "http-request";
    case ProtoKind::kHttpResponse: return "http-response";
    case ProtoKind::kSmtpMail: return "smtp-mail";
    case ProtoKind::kMigrationChunk: return "migration-chunk";
    case ProtoKind::kNetperfBulk: return "netperf-bulk";
  }
  return "unknown";
}

SimNetwork::SimNetwork(sim::Simulator* simulator) : simulator_(simulator) {
  CSK_CHECK(simulator != nullptr);
  if (g_hot_path_counters) {
    c_bursts_ = &obs::metrics().counter("net.bursts");
    c_batched_packets_ = &obs::metrics().counter("net.batched_packets");
  }
}

Result<EndpointId> SimNetwork::bind(const NetAddr& addr, RecvHandler handler) {
  CSK_CHECK(handler != nullptr);
  if (is_bound(addr)) {
    return already_exists("address in use: " + addr.to_string());
  }
  const EndpointId id = endpoint_ids_.next();
  bindings_.emplace(std::make_pair(addr.node, addr.port.value()),
                    std::make_pair(id, std::move(handler)));
  endpoint_addrs_.emplace(id, addr);
  return id;
}

void SimNetwork::unbind(EndpointId id) {
  auto it = endpoint_addrs_.find(id);
  if (it == endpoint_addrs_.end()) return;
  auto bit = bindings_.find(AddrKey::View(it->second.node,
                                           it->second.port.value()));
  if (bit != bindings_.end()) bindings_.erase(bit);
  endpoint_addrs_.erase(it);
}

bool SimNetwork::is_bound(const NetAddr& addr) const {
  return bindings_.find(AddrKey::View(addr.node, addr.port.value())) !=
         bindings_.end();
}

Result<NetAddr> SimNetwork::address_of(EndpointId id) const {
  auto it = endpoint_addrs_.find(id);
  if (it == endpoint_addrs_.end()) return not_found("unknown endpoint");
  return it->second;
}

void SimNetwork::set_link(const std::string& node_a, const std::string& node_b,
                          LinkModel model) {
  auto key = node_a <= node_b ? std::make_pair(node_a, node_b)
                              : std::make_pair(node_b, node_a);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_.emplace(key, LinkState{model, SimTime::origin(), LinkStats{}, {}})
             .first;
    it->second.end_a = &it->first.first;
    it->second.end_b = &it->first.second;
  } else {
    it->second.model = model;  // horizon and stats survive a remodel
  }
}

void SimNetwork::set_burst_window(SimDuration window) {
  CSK_CHECK(window >= SimDuration::zero());
  burst_window_ = window;
}

SimNetwork::LinkState& SimNetwork::link_state(const std::string& a,
                                              const std::string& b) {
  if (memo_link_ != nullptr && a == memo_a_ && b == memo_b_) {
    return *memo_link_;
  }
  const NodePairLess::View key =
      a <= b ? NodePairLess::View(a, b) : NodePairLess::View(b, a);
  auto it = links_.find(key);
  if (it == links_.end()) {
    const LinkModel model = (a == b) ? loopback_link_ : default_link_;
    it = links_
             .emplace(std::make_pair(std::string(key.first),
                                     std::string(key.second)),
                      LinkState{model, SimTime::origin(), LinkStats{}, {}})
             .first;
    it->second.end_a = &it->first.first;
    it->second.end_b = &it->first.second;
  }
  memo_a_ = a;
  memo_b_ = b;
  memo_link_ = &it->second;
  return *memo_link_;
}

const LinkModel& SimNetwork::link_model(const std::string& a,
                                        const std::string& b) const {
  const NodePairLess::View key =
      a <= b ? NodePairLess::View(a, b) : NodePairLess::View(b, a);
  auto it = links_.find(key);
  if (it != links_.end()) return it->second.model;
  return (a == b) ? loopback_link_ : default_link_;
}

LinkStats SimNetwork::link_stats(const std::string& a,
                                 const std::string& b) const {
  const NodePairLess::View key =
      a <= b ? NodePairLess::View(a, b) : NodePairLess::View(b, a);
  auto it = links_.find(key);
  return it != links_.end() ? it->second.stats : LinkStats{};
}

SimTime SimNetwork::send(const NetAddr& dst, Packet pkt) {
  ++stats_.packets_sent;
  LinkState& link = link_state(pkt.src.node, dst.node);
  const SimTime now = simulator_->now();
  // Serialization: a link transmits one packet at a time; senders queue
  // behind the link's busy horizon (back-to-back bulk transfer).
  const SimTime depart = std::max(now, link.busy_until);
  const double tx_seconds =
      static_cast<double>(pkt.wire_bytes) / link.model.bytes_per_sec;
  const SimTime tx_done =
      depart + SimDuration::from_seconds(tx_seconds) + link.model.per_packet_cpu;
  link.busy_until = tx_done;
  ++link.stats.packets_sent;
  link.stats.bytes_sent += pkt.wire_bytes;
  SimTime arrival = tx_done + link.model.latency;

  // The fault hook runs here, once per send() and before any batching:
  // burst coalescing only changes how the delivery *event* is scheduled,
  // never what the injector observes or decides.
  if (fault_hook_) {
    const FaultDecision fd = fault_hook_(pkt, pkt.src.node, dst.node);
    if (fd.drop) {
      // Tail-drop after serialization: the sender spent the wire time, the
      // receiver never hears about it. Transport-level recovery (chunk
      // retransmits, forwarder restarts) is the affected component's job.
      ++stats_.packets_dropped_fault;
      obs::metrics().counter("net.fault.packets_dropped").add();
      CSK_DEBUG << "drop (fault) " << dst.to_string();
      return arrival;
    }
    if (fd.extra_latency > SimDuration::zero()) {
      ++stats_.packets_delayed_fault;
      obs::metrics().counter("net.fault.packets_delayed").add();
      arrival += fd.extra_latency;
    }
  }

  if (mode_ == DeliveryMode::kBurst) {
    enqueue_burst(link, arrival, dst, std::move(pkt));
    return arrival;
  }

  simulator_->schedule_at(arrival, [this, dst, p = std::move(pkt)]() mutable {
    deliver_now(dst.node, dst.port.value(), std::move(p));
  });
  return arrival;
}

void SimNetwork::deliver_now(std::string_view node, std::uint16_t port,
                             Packet&& pkt) {
  auto it = bindings_.find(AddrKey::View(node, port));
  if (it == bindings_.end()) {
    ++stats_.packets_dropped_unbound;
    CSK_DEBUG << "drop (unbound) " << node << ":" << port;
    return;
  }
  ++stats_.packets_delivered;
  stats_.bytes_delivered += pkt.wire_bytes;
  it->second.second(std::move(pkt));
}

void SimNetwork::merge_insert(MergeEntry e) {
  if (merge_.empty() || !MergeLater{}(merge_.back(), e)) {
    merge_.push_back(e);  // the common case: the new key is the latest
    return;
  }
  auto pos = std::upper_bound(
      merge_.begin() + static_cast<std::ptrdiff_t>(merge_head_), merge_.end(),
      e, [](const MergeEntry& a, const MergeEntry& b) {
        return MergeLater{}(b, a);  // ascending: earlier arrivals first
      });
  merge_.insert(pos, e);
}

void SimNetwork::merge_pop_front() {
  ++merge_head_;
  if (merge_head_ == merge_.size()) {
    merge_.clear();
    merge_head_ = 0;
  } else if (merge_head_ >= 64 && merge_head_ * 2 >= merge_.size()) {
    // Reclaim the drained prefix once it dominates; the surviving suffix is
    // bounded by one entry per active source, so this memmove is amortized
    // noise across the >= 64 pops that earned it.
    merge_.erase(merge_.begin(),
                 merge_.begin() + static_cast<std::ptrdiff_t>(merge_head_));
    merge_head_ = 0;
  }
}

void SimNetwork::enqueue_burst(LinkState& link, SimTime arrival,
                               const NetAddr& dst, Packet pkt) {
  ++flight_count_;
  const std::uint64_t order = flight_order_++;
  // Encode the destination as (link, end, port): the link key's node strings
  // outlive every in-flight packet, so the queue entry carries no NetAddr
  // and enqueue/drain never copy, move or destroy a destination string.
  const bool dst_is_b = dst.node == *link.end_b;
  const std::uint16_t dst_port = dst.port.value();
  bool new_front = false;
  if (link.burst_q.empty() || arrival >= link.burst_q.back().arrival) {
    // Fast path: the link serializes, so arrivals are monotonic and this
    // is a plain FIFO append — no per-packet heap traffic at all. Only an
    // empty->nonempty transition changes the source's front, and only a
    // changed front can change what the merge heap orders on.
    new_front = link.burst_q.empty();
    link.burst_q.emplace_back(arrival, order, &link, dst_port, dst_is_b,
                              std::move(pkt));
    if (new_front) merge_insert(MergeEntry{arrival, order, &link});
  } else {
    // Out-of-order arrival (fault jitter, or a remodel that shrank the
    // latency below queued traffic's): overflow heap, with a fresh merge
    // sentinel whenever the overflow front moved earlier. Superseded
    // sentinels go stale and are discarded by the pump (lazy deletion).
    new_front = overflow_.empty() || arrival < overflow_.front().arrival;
    overflow_.emplace_back(arrival, order, &link, dst_port, dst_is_b,
                           std::move(pkt));
    std::push_heap(overflow_.begin(), overflow_.end(), FlightLater{});
    if (new_front) merge_insert(MergeEntry{arrival, order, nullptr});
  }
  if (pumping_) return;  // the running pump re-arms after draining
  if (!new_front) return;  // earliest undelivered arrival unchanged
  const SimTime due = arrival + burst_window_;
  if (pump_event_.valid() && due >= pump_due_) return;
  if (pump_event_.valid()) (void)simulator_->cancel(pump_event_);
  pump_due_ = due;
  pump_event_ = simulator_->schedule_at(due, [this] { pump(); });
}

void SimNetwork::pump() {
  pump_event_ = EventId::invalid();
  pumping_ = true;
  const SimTime now = simulator_->now();
  std::uint64_t drained = 0;
  // Drain every due packet in (arrival, send-order) order — the exact order
  // the per-packet path's simulator events would dispatch in — by merging
  // the per-link FIFO fronts (plus the overflow heap) through merge_. A
  // handler sending new due traffic (zero-cost self-loops) extends this
  // same drain, matching the simulator's same-timestamp FIFO. Each source
  // is re-keyed on its new front *before* its popped packet is delivered,
  // so reentrant sends from inside the handler observe the invariant.
  while (!merge_.empty() && merge_[merge_head_].arrival <= now) {
    const MergeEntry e = merge_[merge_head_];
    merge_pop_front();
    InFlight f;
    if (e.src == nullptr) {
      if (overflow_.empty() || overflow_.front().arrival != e.arrival ||
          overflow_.front().order != e.order) {
        continue;  // stale sentinel: its packet was delivered or superseded
      }
      std::pop_heap(overflow_.begin(), overflow_.end(), FlightLater{});
      f = std::move(overflow_.back());
      overflow_.pop_back();
      if (!overflow_.empty()) {
        merge_insert(MergeEntry{overflow_.front().arrival,
                                overflow_.front().order, nullptr});
      }
    } else {
      f = std::move(e.src->burst_q.front());
      e.src->burst_q.pop_front();
      if (!e.src->burst_q.empty()) {
        merge_insert(MergeEntry{e.src->burst_q.front().arrival,
                                e.src->burst_q.front().order, e.src});
      }
    }
    --flight_count_;
    ++drained;
    // The next delivery's source is already decided (the merge front), so
    // pull its queued InFlight toward the core while this packet's handler
    // runs — at fleet scale the per-link FIFOs live in L3, not L2.
    if (!merge_.empty() && merge_[merge_head_].src != nullptr) {
      __builtin_prefetch(&merge_[merge_head_].src->burst_q.front());
    }
    const std::string& dst_node = f.dst_is_b ? *f.link->end_b : *f.link->end_a;
    deliver_now(dst_node, f.dst_port, std::move(f.pkt));
  }
  pumping_ = false;
  if (c_bursts_ != nullptr && drained > 0) {
    c_bursts_->add();
    c_batched_packets_->add(drained);
  }
  if (!merge_.empty()) {
    pump_due_ = merge_[merge_head_].arrival + burst_window_;
    pump_event_ = simulator_->schedule_at(pump_due_, [this] { pump(); });
  }
}

SimTime SimNetwork::estimate_arrival(const std::string& src_node,
                                     const std::string& dst_node,
                                     std::uint64_t bytes) const {
  const LinkModel& m = link_model(src_node, dst_node);
  const double tx_seconds = static_cast<double>(bytes) / m.bytes_per_sec;
  return simulator_->now() + SimDuration::from_seconds(tx_seconds) +
         m.per_packet_cpu + m.latency;
}

}  // namespace csk::net
