#include "net/network.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace csk::net {

const char* proto_kind_name(ProtoKind kind) {
  switch (kind) {
    case ProtoKind::kGeneric: return "generic";
    case ProtoKind::kSshKeystroke: return "ssh-keystroke";
    case ProtoKind::kSshOutput: return "ssh-output";
    case ProtoKind::kHttpRequest: return "http-request";
    case ProtoKind::kHttpResponse: return "http-response";
    case ProtoKind::kSmtpMail: return "smtp-mail";
    case ProtoKind::kMigrationChunk: return "migration-chunk";
    case ProtoKind::kNetperfBulk: return "netperf-bulk";
  }
  return "unknown";
}

SimNetwork::SimNetwork(sim::Simulator* simulator) : simulator_(simulator) {
  CSK_CHECK(simulator != nullptr);
}

Result<EndpointId> SimNetwork::bind(const NetAddr& addr, RecvHandler handler) {
  CSK_CHECK(handler != nullptr);
  const auto key = std::make_pair(addr.node, addr.port.value());
  if (bindings_.contains(key)) {
    return already_exists("address in use: " + addr.to_string());
  }
  const EndpointId id = endpoint_ids_.next();
  bindings_.emplace(key, std::make_pair(id, std::move(handler)));
  endpoint_addrs_.emplace(id, addr);
  return id;
}

void SimNetwork::unbind(EndpointId id) {
  auto it = endpoint_addrs_.find(id);
  if (it == endpoint_addrs_.end()) return;
  bindings_.erase(std::make_pair(it->second.node, it->second.port.value()));
  endpoint_addrs_.erase(it);
}

bool SimNetwork::is_bound(const NetAddr& addr) const {
  return bindings_.contains(std::make_pair(addr.node, addr.port.value()));
}

Result<NetAddr> SimNetwork::address_of(EndpointId id) const {
  auto it = endpoint_addrs_.find(id);
  if (it == endpoint_addrs_.end()) return not_found("unknown endpoint");
  return it->second;
}

void SimNetwork::set_link(const std::string& node_a, const std::string& node_b,
                          LinkModel model) {
  auto key = node_a <= node_b ? std::make_pair(node_a, node_b)
                              : std::make_pair(node_b, node_a);
  links_[key] = LinkState{model, links_.contains(key) ? links_[key].busy_until
                                                      : SimTime::origin()};
}

SimNetwork::LinkState& SimNetwork::link_state(const std::string& a,
                                              const std::string& b) {
  auto key = a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = links_.find(key);
  if (it != links_.end()) return it->second;
  const LinkModel model = (a == b) ? loopback_link_ : default_link_;
  return links_.emplace(key, LinkState{model, SimTime::origin()}).first->second;
}

const LinkModel& SimNetwork::link_model(const std::string& a,
                                        const std::string& b) const {
  auto key = a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = links_.find(key);
  if (it != links_.end()) return it->second.model;
  return (a == b) ? loopback_link_ : default_link_;
}

SimTime SimNetwork::send(const NetAddr& dst, Packet pkt) {
  ++stats_.packets_sent;
  LinkState& link = link_state(pkt.src.node, dst.node);
  const SimTime now = simulator_->now();
  // Serialization: a link transmits one packet at a time; senders queue
  // behind the link's busy horizon (back-to-back bulk transfer).
  const SimTime depart = std::max(now, link.busy_until);
  const double tx_seconds =
      static_cast<double>(pkt.wire_bytes) / link.model.bytes_per_sec;
  const SimTime tx_done =
      depart + SimDuration::from_seconds(tx_seconds) + link.model.per_packet_cpu;
  link.busy_until = tx_done;
  SimTime arrival = tx_done + link.model.latency;

  if (fault_hook_) {
    const FaultDecision fd = fault_hook_(pkt, pkt.src.node, dst.node);
    if (fd.drop) {
      // Tail-drop after serialization: the sender spent the wire time, the
      // receiver never hears about it. Transport-level recovery (chunk
      // retransmits, forwarder restarts) is the affected component's job.
      ++stats_.packets_dropped_fault;
      obs::metrics().counter("net.fault.packets_dropped").add();
      CSK_DEBUG << "drop (fault) " << dst.to_string();
      return arrival;
    }
    if (fd.extra_latency > SimDuration::zero()) {
      ++stats_.packets_delayed_fault;
      obs::metrics().counter("net.fault.packets_delayed").add();
      arrival += fd.extra_latency;
    }
  }

  simulator_->schedule_at(arrival, [this, dst, p = std::move(pkt)]() mutable {
    auto it = bindings_.find(std::make_pair(dst.node, dst.port.value()));
    if (it == bindings_.end()) {
      ++stats_.packets_dropped_unbound;
      CSK_DEBUG << "drop (unbound) " << dst.to_string();
      return;
    }
    ++stats_.packets_delivered;
    stats_.bytes_delivered += p.wire_bytes;
    it->second.second(std::move(p));
  });
  return arrival;
}

SimTime SimNetwork::estimate_arrival(const std::string& src_node,
                                     const std::string& dst_node,
                                     std::uint64_t bytes) const {
  const LinkModel& m = link_model(src_node, dst_node);
  const double tx_seconds = static_cast<double>(bytes) / m.bytes_per_sec;
  return simulator_->now() + SimDuration::from_seconds(tx_seconds) +
         m.per_packet_cpu + m.latency;
}

}  // namespace csk::net
