/// \file
/// Port forwarding with interception taps.
///
/// QEMU user-mode networking forwards a host port into a guest; CloudSkulk
/// relies on that to keep the victim's SSH endpoint stable across the attack
/// (paper §III-A) and to route migration data HOST:AAAA -> ROOTKIT:BBBB
/// (paper §IV-A). A PortForwarder binds a listen address, NATs flows to a
/// target address, and relays replies back. Taps observe — and, for the
/// attacker's *active* services, mutate or drop — everything that crosses,
/// which is precisely the RITM position the paper describes.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace csk::net {

/// Interception hook. Taps may rewrite the payload in place; returning
/// kDrop consumes the packet.
class PacketTap {
 public:
  enum class Verdict { kPass, kDrop };
  /// kForward = client -> server, kReverse = server -> client.
  enum class Direction { kForward, kReverse };

  virtual ~PacketTap() = default;
  virtual Verdict inspect(Packet& pkt, Direction dir) = 0;
};

struct ForwarderStats {
  std::uint64_t forwarded = 0;
  std::uint64_t replies = 0;
  std::uint64_t dropped_by_tap = 0;
  std::uint64_t interrupts = 0;        // times the forwarder was torn down
  std::uint64_t restarts = 0;          // successful automatic rebinds
  std::uint64_t restart_attempts = 0;  // rebind tries, including failures
};

class PortForwarder {
 public:
  /// Forwards `listen` -> `target`. Call start() to bind.
  PortForwarder(SimNetwork* network, NetAddr listen, NetAddr target,
                std::string name = "fwd");
  ~PortForwarder();
  PortForwarder(const PortForwarder&) = delete;
  PortForwarder& operator=(const PortForwarder&) = delete;

  Status start();
  void stop();
  bool running() const { return endpoint_.valid(); }

  const NetAddr& listen_addr() const { return listen_; }
  const NetAddr& target_addr() const { return target_; }

  /// Retargets future forwarded flows (used when the rootkit swaps the
  /// backend from Guest0 to the nested VM). Existing flow NAT survives.
  void set_target(NetAddr target) { target_ = std::move(target); }

  /// Taps run in registration order on both directions. Not owned.
  ///
  /// Reentrancy: both calls are safe from inside a tap's inspect() (a tap
  /// may remove itself or any other tap). A tap removed mid-inspection is
  /// skipped for the rest of the current packet; a tap added mid-inspection
  /// first sees the *next* packet. The removed tap is never dereferenced
  /// again, so `delete`-after-remove from inside a callback is safe too.
  void add_tap(PacketTap* tap);
  void remove_tap(PacketTap* tap);

  /// Opt-in crash recovery: after interrupt() the forwarder re-binds itself
  /// with exponential backoff (`policy`, see common/retry.h) instead of
  /// staying down. Off by default — a plain forwarder behaves exactly as
  /// before this API existed.
  void enable_auto_restart(sim::Simulator* simulator, RetryPolicy policy);

  /// Simulates the forwarder process dying (fault injection): the endpoint
  /// unbinds and in-flight packets towards it drop on arrival. With
  /// auto-restart enabled, rebind attempts follow the backoff schedule;
  /// without it, the forwarder stays down until start() is called again.
  void interrupt();

  const ForwarderStats& stats() const { return stats_; }

 private:
  void on_packet(Packet pkt);
  void schedule_restart();
  void try_restart();

  SimNetwork* network_;
  NetAddr listen_;
  NetAddr target_;
  std::string name_;
  EndpointId endpoint_ = EndpointId::invalid();
  // Null entries are taps removed from inside an in-progress inspection;
  // they are compacted away once the tap walk unwinds (see on_packet).
  std::vector<PacketTap*> taps_;
  int inspect_depth_ = 0;
  bool taps_need_compact_ = false;
  // conn -> the client's original reply address (NAT table).
  std::unordered_map<ConnId, NetAddr> flows_;
  ForwarderStats stats_;
  // Cached opt-in hot-path counter (null when disabled at construction);
  // counts payload bytes that crossed the tap chain without buffer
  // duplication (see net::set_hot_path_counters_enabled).
  obs::Counter* c_zero_copy_bytes_ = nullptr;
  // Crash-recovery state (inactive unless enable_auto_restart() was called).
  sim::Simulator* restart_sim_ = nullptr;
  RetryPolicy restart_policy_;
  int restart_attempt_ = 0;
  EventId restart_event_ = EventId::invalid();
};

}  // namespace csk::net
