#include "guestos/fs.h"

#include <utility>

namespace csk::guestos {

Status SimFs::create(const std::string& name,
                     std::vector<mem::PageData> pages,
                     std::uint64_t size_bytes) {
  if (files_.contains(name)) return already_exists("file exists: " + name);
  files_.emplace(name, SimFile{name, size_bytes, std::move(pages)});
  return Status::ok();
}

Status SimFs::create_unique(const std::string& name, std::uint64_t size_bytes,
                            Rng& rng) {
  std::vector<mem::PageData> pages;
  const std::size_t n = (size_bytes + mem::kPageSize - 1) / mem::kPageSize;
  pages.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pages.push_back(mem::PageData::synthetic(ContentHash{rng.next_u64() | 1}));
  }
  return create(name, std::move(pages), size_bytes);
}

Status SimFs::create_random_bytes(const std::string& name,
                                  std::uint64_t size_bytes, Rng& rng) {
  std::vector<mem::PageData> pages;
  const std::size_t n = (size_bytes + mem::kPageSize - 1) / mem::kPageSize;
  pages.reserve(n);
  std::uint64_t remaining = size_bytes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = static_cast<std::size_t>(
        remaining < mem::kPageSize ? remaining : mem::kPageSize);
    mem::PageBytes bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    pages.push_back(mem::PageData::from_bytes(std::move(bytes)));
    remaining -= len;
  }
  return create(name, std::move(pages), size_bytes);
}

Status SimFs::remove(const std::string& name) {
  if (files_.erase(name) == 0) return not_found("no such file: " + name);
  return Status::ok();
}

Result<const SimFile*> SimFs::open(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return not_found("no such file: " + name);
  return &it->second;
}

Status SimFs::write_page(const std::string& name, std::size_t page_index,
                         mem::PageData data) {
  auto it = files_.find(name);
  if (it == files_.end()) return not_found("no such file: " + name);
  if (page_index >= it->second.pages.size()) {
    return invalid_argument("page index beyond end of file");
  }
  it->second.pages[page_index] = std::move(data);
  return Status::ok();
}

std::vector<std::string> SimFs::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, f] : files_) out.push_back(name);
  return out;
}

}  // namespace csk::guestos
