/// \file
/// GuestOS: the operating system running inside a simulated machine.
///
/// Models the pieces of a Linux guest the paper's experiments touch:
///   * a process table (fork/execve/exit; `ps` for recon and VMI);
///   * a page cache — loading a file materializes its pages in the machine's
///     address space, which is what makes File-A visible to host-side KSM;
///   * kernel data structures at *known guest-physical locations*: VMI tools
///     reconstruct OS state by parsing these raw pages, and the two-layer
///     semantic gap of nested VMs (paper §VI-D2) falls out naturally — a
///     nested guest's structures live somewhere inside the parent's RAM
///     where a single-level VMI scanner does not know to look;
///   * region allocation for hosting a nested VM's "physical" memory.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "guestos/fs.h"
#include "hv/timing_model.h"
#include "mem/addr_space.h"

namespace csk::guestos {

/// Fingerprintable identity of an installed OS.
struct OsIdentity {
  std::string os_name = "Fedora 22";
  std::string kernel_version = "4.4.14-200.fc22.x86_64";
  std::string hostname = "guest";

  bool operator==(const OsIdentity&) const = default;
};

struct Process {
  Pid pid;
  Pid parent;
  std::string name;      // comm
  std::string cmdline;   // full command line (recon reads this via ps -ef)
  bool alive = true;
  /// DKSM-style rootkit concealment: excluded from the kernel's visible
  /// task list (ps, VMI). Attackers controlling a kernel can do this.
  bool hidden = false;
};

/// Guest-physical page that holds the serialized process table — the "known
/// kernel data structure location" VMI relies on. Identical for every guest
/// running this kernel build.
inline constexpr std::uint64_t kProcTableGfn = 8;
/// First page available to the general-purpose allocator.
inline constexpr std::uint64_t kFirstAllocatableGfn = 16;

class GuestOS {
 public:
  /// `memory` outlives the OS. The OS owns gfn layout within it.
  /// `ram_pages` bounds ordinary allocations (the machine's actual RAM);
  /// pages beyond it up to the address-space size form the overcommit arena
  /// used only for large regions (a nested guest's RAM lives there, lazily
  /// materialized — Linux overcommit in one line). 0 means "all of it".
  GuestOS(mem::AddressSpace* memory, OsIdentity identity, Rng rng,
          std::size_t ram_pages = 0);
  GuestOS(const GuestOS&) = delete;
  GuestOS& operator=(const GuestOS&) = delete;

  const OsIdentity& identity() const { return identity_; }
  mem::AddressSpace* memory() { return memory_; }
  const mem::AddressSpace* memory() const { return memory_; }
  SimFs& fs() { return fs_; }
  const SimFs& fs() const { return fs_; }
  Rng& rng() { return rng_; }

  // --- processes ---

  /// Boots userspace: init plus the usual daemons.
  void boot();
  bool booted() const { return booted_; }

  /// Starts a process (cheap administrative spawn for scenario setup).
  Pid spawn(const std::string& name, const std::string& cmdline = "",
            Pid parent = Pid(1));

  Status kill(Pid pid);

  /// Hides a live process from ps/VMI views (attacker-controlled kernel).
  Status hide_process(Pid pid);
  Result<Process> find_process(Pid pid) const;
  /// Finds the first live process whose name matches exactly.
  Result<Process> find_process_by_name(const std::string& name) const;
  std::vector<Process> ps() const;  // live processes only

  // --- page cache ---

  /// Loads a file's pages into guest memory. Idempotent: re-loading an
  /// already cached file returns the existing gfns.
  Result<std::vector<Gfn>> load_file(const std::string& name);

  bool file_cached(const std::string& name) const {
    return page_cache_.contains(name);
  }
  Result<std::vector<Gfn>> cached_gfns(const std::string& name) const;

  /// Drops a file from the cache, freeing its gfns.
  Status evict_file(const std::string& name);

  /// Atomically replaces a cached file's contents with `pages`, caching the
  /// new version at *fresh* gfns before the old ones are freed — page-cache
  /// LRU semantics: the new pages land in newly allocated cache pages while
  /// the stale ones are still resident, so the new gfns never alias the old
  /// set (even permuted). The dedup detector's File-A re-randomization
  /// depends on this: an attacker watch armed on the old gfns goes stale
  /// instead of silently tracking the reload. Returns the new gfns.
  Result<std::vector<Gfn>> replace_file(const std::string& name,
                                        std::vector<mem::PageData> pages,
                                        std::uint64_t size_bytes);

  /// Rewrites one page of a cached file, both on "disk" and in memory —
  /// how the victim turns File-A into File-A-v2 (paper §VI-B step 2).
  Status modify_cached_page(const std::string& name, std::size_t page_index,
                            mem::PageData data);

  /// Convenience: slightly perturbs every page of a cached byte-backed
  /// file (flips one byte per page).
  Status perturb_cached_file(const std::string& name);

  // --- memory regions (nested-VM hosting) ---

  /// Reserves `num_pages` contiguous-by-index gfns (for a nested guest's
  /// RAM, device buffers, ...). The pages are touched (materialized).
  Result<std::vector<Gfn>> allocate_region(std::size_t num_pages);
  void free_region(const std::vector<Gfn>& region);

  /// Dirties `n` random allocatable pages with fresh synthetic content —
  /// the write-side effect of running workloads. Returns total write cost.
  SimDuration dirty_random_pages(std::size_t n);

  /// Dirties `n` pages walking cyclically through the resident working set
  /// (fresh page each write until the set wraps). This is the write pattern
  /// sustained workloads present to migration dirty logging: nearly every
  /// write in a round hits a page not yet retransmitted.
  SimDuration dirty_pages_cyclic(std::size_t n);

  /// Materializes the boot working set: `mib` MiB of resident pages with
  /// unique synthetic content (what a freshly booted distro keeps in RAM).
  /// Determines how many non-zero pages live migration must move.
  Status touch_boot_working_set(std::uint64_t mib);

  /// Re-points the OS at a different (already identically populated)
  /// address space. Used exactly once per live migration, when the OS state
  /// is transplanted from the source VM to the destination VM whose RAM now
  /// holds the same contents at the same gfns.
  void rebind_memory(mem::AddressSpace* memory) {
    CSK_CHECK(memory != nullptr);
    // The destination must cover the machine's RAM; its *arena* may be
    // smaller than the source's (a nested destination's address space is
    // exactly RAM-sized).
    CSK_CHECK_MSG(memory->size_pages() >= ram_pages_,
                  "migration destination RAM smaller than source");
    memory_ = memory;
  }

 private:
  void refresh_proc_table_page();
  Result<Gfn> alloc_gfn();

  mem::AddressSpace* memory_;
  OsIdentity identity_;
  Rng rng_;
  SimFs fs_;
  bool booted_ = false;

  std::map<Pid, Process> procs_;
  std::int32_t next_pid_ = 1;

  std::map<std::string, std::vector<Gfn>> page_cache_;
  /// Pages the dirty walkers must not recycle (live page cache, kernel
  /// pages): workload churn hits anonymous memory, not cached files.
  std::unordered_set<std::uint64_t> pinned_gfns_;
  std::size_t ram_pages_ = 0;
  std::uint64_t bump_low_ = kFirstAllocatableGfn;   // ordinary allocations
  std::uint64_t bump_high_ = 0;                     // region arena cursor
  std::vector<Gfn> free_gfns_;
  std::vector<Gfn> free_region_gfns_;
  std::uint64_t dirty_cursor_ = kFirstAllocatableGfn;
};

/// Serializes a process list the way the simulated kernel lays it out in
/// the proc-table page (used by GuestOS and parsed by VMI tools).
std::string serialize_proc_table(const OsIdentity& identity,
                                 const std::vector<Process>& procs);

/// Parses a proc-table page. Returns NOT_FOUND if the bytes do not look
/// like a proc table (VMI hitting the semantic gap).
struct ParsedProcTable {
  OsIdentity identity;
  std::vector<Process> procs;
};
Result<ParsedProcTable> parse_proc_table(const mem::PageBytes& bytes);

}  // namespace csk::guestos
